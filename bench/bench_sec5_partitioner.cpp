/// Sec. V partitioning ablation: the paper uses 3-D k-means to cluster the
/// boundary-element point cloud and reports it "works much better than
/// space-filling curves for partitioning points on the surface of a complex
/// geometry". This bench quantifies that claim: k-means vs Morton order on a
/// pseudo-hemoglobin surface — cluster tightness, skeleton ranks,
/// factorization time and accuracy.
#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(4096 * scale());
  Rng rng(1);
  const PointCloud pts = molecule_surface(n, rng);
  const double diam = cloud_diameter(pts);
  const YukawaKernel kernel(2.0 / diam, 1e-4 * diam);

  Table t({"partitioner", "sum leaf radii", "max skeleton rank",
           "factor time (s)", "residual"});
  for (const Partitioner part : {Partitioner::KMeans, Partitioner::Morton}) {
    const ClusterTree tree = ClusterTree::build(pts, 64, rng, part);
    double radii = 0.0;
    for (int c = 0; c < tree.n_clusters(tree.depth()); ++c)
      radii += tree.node(tree.depth(), c).radius;

    H2BuildOptions ho;
    ho.admissibility = {Admissibility::Strong, 1.0};
    ho.tol = 1e-8;
    ho.max_rank = 64;
    const H2Matrix a(tree, kernel, ho);
    UlvOptions uo;
    uo.tol = 1e-6;
    uo.max_rank = 64;
    Timer tf;
    const UlvFactorization f(a, uo);
    const double ft = tf.seconds();

    Matrix b = Matrix::random(n, 1, rng);
    Matrix x = b;
    f.solve(x);
    Matrix ax(n, 1);
    kernel_matvec(kernel, tree.points(), x, ax);

    t.add_row({part == Partitioner::KMeans ? "k-means (paper)" : "Morton SFC",
               Table::fmt(radii, 2), std::to_string(f.stats().max_rank),
               Table::fmt(ft, 3), Table::fmt_sci(rel_error_fro(ax, b), 1)});
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "Sec. V: k-means vs space-filling-curve partitioning "
                "(pseudo-hemoglobin, N=%d)", n);
  emit(t, title, "sec5_partitioner");
  std::printf("paper shape check: k-means yields tighter clusters on the\n"
              "complex surface, hence better-behaved near fields and a\n"
              "faster/more accurate factorization.\n");
  return 0;
}
