/// Micro-benchmarks of the dense linear-algebra substrate — the kernels every
/// solver in this repository is built from.
///
/// Two modes:
///   (default)  google-benchmark cells, for interactive kernel work.
///   --gate     self-timed naive-vs-blocked sweep. Writes BENCH_LINALG.json
///              (one JSON object per line, awk-parseable like
///              BENCH_MEMORY.json) and exits nonzero unless the blocked gemm
///              sustains >= 2x the naive GFlop/s at n in {64, 128, 256} —
///              the PR acceptance bar CI's bench-smoke job enforces. Ratios
///              (not absolute rates) are what the gate and the committed
///              trajectory compare: both sides of each ratio run on the same
///              host in the same process, so the number is portable across
///              machines in a way raw GFlop/s never is.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "linalg/batch.hpp"
#include "linalg/gemm_kernel.hpp"
#include "linalg/linalg.hpp"
#include "linalg/naive.hpp"
#include "util/flops.hpp"
#include "util/rng.hpp"

namespace {

using namespace h2;

// ---------------------------------------------------------------------------
// google-benchmark cells
// ---------------------------------------------------------------------------

void set_gflops(benchmark::State& state, double flops_per_iter) {
  state.counters["GFlop/s"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, 2.0 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  // The pre-blocked kernels (linalg/naive.hpp): the baseline the --gate
  // ratios measure against.
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    naive::gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, 2.0 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_Getrf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Matrix a0 = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix a = a0;
    std::vector<int> piv;
    getrf(a, piv);
    benchmark::DoNotOptimize(a.data());
  }
  set_gflops(state, static_cast<double>(flops::getrf(n, n)));
}
BENCHMARK(BM_Getrf)->Arg(64)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Matrix spd = Matrix::random(n, n, rng);
  Matrix a0 = matmul(spd, spd, Trans::No, Trans::Yes);
  add_identity(a0, n);
  for (auto _ : state) {
    Matrix a = a0;
    potrf(a);
    benchmark::DoNotOptimize(a.data());
  }
  set_gflops(state, static_cast<double>(flops::potrf(n)));
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256);

void BM_PivotedQr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Matrix a = Matrix::random(n, 4 * n, rng);
  for (auto _ : state) {
    const PivotedQr qr = pivoted_qr(a, 1e-8);
    benchmark::DoNotOptimize(qr.rank);
  }
}
BENCHMARK(BM_PivotedQr)->Arg(64)->Arg(128);

void BM_HouseholderQr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const Matrix a0 = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix a = a0;
    std::vector<double> tau;
    householder_qr(a, tau);
    benchmark::DoNotOptimize(a.data());
  }
  set_gflops(state, static_cast<double>(flops::geqrf(n, n)));
}
BENCHMARK(BM_HouseholderQr)->Arg(64)->Arg(128)->Arg(256);

void BM_Trsm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  Matrix l = Matrix::random(n, n, rng);
  add_identity(l, 2.0 * n);
  const Matrix b0 = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix b = b0;
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
    benchmark::DoNotOptimize(b.data());
  }
  set_gflops(state, static_cast<double>(flops::trsm_left(n, n)));
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBatch(benchmark::State& state) {
  // The ULV leaf pattern: many small products sharing one left operand.
  const int n = static_cast<int>(state.range(0));
  constexpr int kTasks = 32;
  Rng rng(7);
  const Matrix a = Matrix::random(n, n, rng);
  std::vector<Matrix> bs, cs;
  for (int t = 0; t < kTasks; ++t) {
    bs.push_back(Matrix::random(n, n, rng));
    cs.emplace_back(n, n);
  }
  std::vector<GemmTask> tasks;
  for (int t = 0; t < kTasks; ++t)
    tasks.push_back(
        {1.0, a, Trans::No, bs[t], Trans::No, 0.0, cs[t]});
  for (auto _ : state) {
    gemm_batch(tasks);
    benchmark::DoNotOptimize(cs[0].data());
  }
  set_gflops(state, 2.0 * n * n * n * kTasks);
}
BENCHMARK(BM_GemmBatch)->Arg(64)->Arg(128);

// ---------------------------------------------------------------------------
// --gate mode
// ---------------------------------------------------------------------------

/// Best seconds/call over several timed trials (each trial long enough to
/// dwarf clock resolution). Best-of, not mean-of: the gate wants the kernels'
/// capability, not the host's scheduling noise.
template <typename F>
double time_best(F&& f) {
  using clock = std::chrono::steady_clock;
  // Calibrate reps to ~30 ms per trial.
  int reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (int r = 0; r < reps; ++r) f();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    if (dt > 0.03 || reps > (1 << 20)) break;
    reps *= 4;
  }
  double best = 1e300;
  for (int trial = 0; trial < 5; ++trial) {
    const auto t0 = clock::now();
    for (int r = 0; r < reps; ++r) f();
    const double dt =
        std::chrono::duration<double>(clock::now() - t0).count() / reps;
    best = std::min(best, dt);
  }
  return best;
}

/// The pre-PR Householder QR: plain reflector loop, default compile flags —
/// reproduced here as the baseline for the qr ratio cell (qr.cpp's own
/// unblocked path only runs below the blocking threshold).
void reference_qr(MatrixView a, std::vector<double>& tau) {
  const int m = a.rows(), n = a.cols();
  const int k = m < n ? m : n;
  tau.assign(k, 0.0);
  for (int p = 0; p < k; ++p) {
    double* cp = a.col(p);
    double xnorm2 = 0.0;
    for (int i = p + 1; i < m; ++i) xnorm2 += cp[i] * cp[i];
    if (xnorm2 != 0.0) {
      const double alpha = cp[p];
      double beta = std::sqrt(alpha * alpha + xnorm2);
      if (alpha > 0.0) beta = -beta;
      tau[p] = (beta - alpha) / beta;
      const double inv = 1.0 / (alpha - beta);
      for (int i = p + 1; i < m; ++i) cp[i] *= inv;
      cp[p] = beta;
    }
    if (tau[p] == 0.0) continue;
    for (int j = p + 1; j < n; ++j) {
      double* cj = a.col(j);
      double w = cj[p];
      for (int i = p + 1; i < m; ++i) w += cp[i] * cj[i];
      w *= tau[p];
      cj[p] -= w;
      for (int i = p + 1; i < m; ++i) cj[i] -= w * cp[i];
    }
  }
}

struct Cell {
  std::string op;
  int n;
  double naive_gflops, blocked_gflops;
  double ratio() const { return blocked_gflops / naive_gflops; }
};

int run_gate() {
  const GemmTiling tiling = gemm_tiling();
  std::printf("# BENCH_LINALG gate (isa=%s mr=%d nr=%d mc=%d kc=%d nc=%d)\n",
              tiling.isa, tiling.mr, tiling.nr, tiling.mc, tiling.kc,
              tiling.nc);
  std::printf("| op | n | naive GF/s | blocked GF/s | ratio |\n");
  std::printf("|---|---|---|---|---|\n");

  std::vector<Cell> cells;
  Rng rng(1);
  for (const int n : {64, 128, 256}) {
    const Matrix a = Matrix::random(n, n, rng);
    const Matrix b = Matrix::random(n, n, rng);
    Matrix c(n, n);
    const double fl = 2.0 * n * n * n;
    const double tn = time_best(
        [&] { naive::gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c); });
    const double tb = time_best(
        [&] { gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c); });
    cells.push_back({"gemm", n, fl / tn * 1e-9, fl / tb * 1e-9});
  }
  for (const int n : {64, 128, 256}) {
    // The mixed-precision payoff cell: fp32 blocked gemm against fp64
    // blocked gemm (columns: naive = fp64 blocked, blocked = fp32 blocked).
    // Half the bytes through the packing hierarchy and twice the lanes per
    // vector register should buy well over 1.6x; the gate enforces it on
    // hosts with a real SIMD kernel (the generic-ISA fallback carries no
    // lane-width promise).
    const Matrix a = Matrix::random(n, n, rng);
    const Matrix b = Matrix::random(n, n, rng);
    Matrix c(n, n);
    const MatrixF af = to_f32(a), bf = to_f32(b);
    MatrixF cf(n, n);
    const double fl = 2.0 * n * n * n;
    const double t64 =
        time_best([&] { gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c); });
    const double t32 =
        time_best([&] { gemm(1.0, af, Trans::No, bf, Trans::No, 0.0, cf); });
    cells.push_back({"gemm_f32", n, fl / t64 * 1e-9, fl / t32 * 1e-9});
  }
  for (const int n : {128, 256}) {
    Matrix l = Matrix::random(n, n, rng);
    add_identity(l, 2.0 * n);
    const Matrix b0 = Matrix::random(n, n, rng);
    Matrix b(n, n);
    const double fl = static_cast<double>(flops::trsm_left(n, n));
    const double tn = time_best([&] {
      copy_into(b0, b);
      naive::trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
    });
    const double tb = time_best([&] {
      copy_into(b0, b);
      trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
    });
    cells.push_back({"trsm", n, fl / tn * 1e-9, fl / tb * 1e-9});
  }
  for (const int n : {128, 256}) {
    const Matrix a0 = Matrix::random(n, n, rng);
    Matrix a(n, n);
    std::vector<double> tau;
    const double fl = static_cast<double>(flops::geqrf(n, n));
    const double tn = time_best([&] {
      copy_into(a0, a);
      reference_qr(a, tau);
    });
    const double tb = time_best([&] {
      copy_into(a0, a);
      householder_qr(a, tau);
    });
    cells.push_back({"qr", n, fl / tn * 1e-9, fl / tb * 1e-9});
  }
  {
    // Batched vs looped gemm, shared left operand (the pack-cache case).
    const int n = 64;
    constexpr int kTasks = 32;
    const Matrix a = Matrix::random(n, n, rng);
    std::vector<Matrix> bs, cs;
    for (int t = 0; t < kTasks; ++t) {
      bs.push_back(Matrix::random(n, n, rng));
      cs.emplace_back(n, n);
    }
    std::vector<GemmTask> tasks;
    for (int t = 0; t < kTasks; ++t)
      tasks.push_back({1.0, a, Trans::No, bs[t], Trans::No, 0.0, cs[t]});
    const double fl = 2.0 * n * n * n * kTasks;
    const double tl = time_best([&] {
      for (int t = 0; t < kTasks; ++t)
        gemm(1.0, a, Trans::No, bs[t], Trans::No, 0.0, cs[t]);
    });
    const double tb = time_best([&] { gemm_batch(tasks); });
    cells.push_back({"gemm_batch_vs_loop", n, fl / tl * 1e-9, fl / tb * 1e-9});
  }

  std::FILE* json = std::fopen("BENCH_LINALG.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_LINALG.json\n");
    return 1;
  }
  std::fprintf(json, "{\"bench\": \"micro_linalg\", \"isa\": \"%s\"}\n",
               tiling.isa);
  bool ok = true;
  for (const Cell& cell : cells) {
    std::printf("| %s | %d | %.2f | %.2f | %.2f |\n", cell.op.c_str(), cell.n,
                cell.naive_gflops, cell.blocked_gflops, cell.ratio());
    std::fprintf(json,
                 "{\"op\": \"%s\", \"n\": %d, \"naive_gflops\": %.3f, "
                 "\"blocked_gflops\": %.3f, \"ratio\": %.3f}\n",
                 cell.op.c_str(), cell.n, cell.naive_gflops,
                 cell.blocked_gflops, cell.ratio());
    if (cell.op == "gemm" && cell.ratio() < 2.0) {
      std::printf("GATE FAIL: gemm n=%d ratio %.2f < 2.0\n", cell.n,
                  cell.ratio());
      ok = false;
    }
    if (cell.op == "gemm_f32" && cell.ratio() < 1.6 &&
        std::strcmp(tiling.isa, "generic") != 0) {
      std::printf("GATE FAIL: gemm_f32 n=%d ratio %.2f < 1.6\n", cell.n,
                  cell.ratio());
      ok = false;
    }
  }
  std::fclose(json);
  std::printf(
      "linalg gate: %s (gemm >= 2x naive, gemm_f32 >= 1.6x fp64 blocked "
      "at n in {64,128,256})\n",
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--gate") == 0) return run_gate();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
