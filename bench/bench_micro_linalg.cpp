/// google-benchmark micro-benchmarks of the dense linear-algebra substrate —
/// the kernels every solver in this repository is built from. Useful for
/// calibrating the absolute times in the figure benches against the paper's
/// MKL-based numbers.
#include <benchmark/benchmark.h>

#include "linalg/linalg.hpp"
#include "util/rng.hpp"

namespace {

using namespace h2;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Getrf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Matrix a0 = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix a = a0;
    std::vector<int> piv;
    getrf(a, piv);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Getrf)->Arg(64)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  Matrix spd = Matrix::random(n, n, rng);
  Matrix a0 = matmul(spd, spd, Trans::No, Trans::Yes);
  add_identity(a0, n);
  for (auto _ : state) {
    Matrix a = a0;
    potrf(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256);

void BM_PivotedQr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Matrix a = Matrix::random(n, 4 * n, rng);
  for (auto _ : state) {
    const PivotedQr qr = pivoted_qr(a, 1e-8);
    benchmark::DoNotOptimize(qr.rank);
  }
}
BENCHMARK(BM_PivotedQr)->Arg(64)->Arg(128);

void BM_Trsm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  Matrix l = Matrix::random(n, n, rng);
  add_identity(l, 2.0 * n);
  const Matrix b0 = Matrix::random(n, n, rng);
  for (auto _ : state) {
    Matrix b = b0;
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
