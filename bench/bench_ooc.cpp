/// Out-of-core factor store bench: factorize + solve the standard cube
/// problem twice through the h2::Solver facade — fully in RAM, then with the
/// spill/prefetch tier capped at ~0.25x the measured in-RAM factor footprint
/// — and report what the disk tier costs:
///
///   slowdown_factor — OOC (factor+solve) wall over in-RAM wall,
///   slowdown_solve  — the solve sweep alone (the serving-path number),
///   hit_rate        — fraction of step-acquired blocks already resident
///                     when the sweep needed them (the prefetcher's score),
///   peak_over_budget — serve-phase peak resident factor bytes relative to
///                     budget + one block (must be <= 1 by design).
///
/// The OOC answers are checked bitwise against the in-RAM ones (spilling
/// moves bytes, never transforms them). Writes ooc.csv and BENCH_OOC.json
/// (one cell per line for the CI awk gate). With --gate, exits nonzero on
/// bitwise divergence or a prefetch hit rate under 90%.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "api/solver.hpp"

#include "bench_common.hpp"

namespace {

using namespace h2;

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols())) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace h2::bench;
  const bool gate =
      argc > 1 && std::string(argv[1]) == "--gate";

  const int n = static_cast<int>(4096 * scale());
  const int nrhs = 4;
  Rng rng(42);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  SolverConfig cfg;
  const SolverOptions base = SolverOptions{}
                                 .with_leaf_size(cfg.leaf)
                                 .with_eta(cfg.eta)
                                 .with_tol(cfg.tol)
                                 .with_max_rank(cfg.max_rank);
  const Matrix b = Matrix::random(n, nrhs, rng);

  // In-RAM reference: its persistent factor footprint sets the OOC budget.
  Timer t_ram;
  const Solver ram = Solver::build(pts, kernel, base);
  const double ram_factor_s = t_ram.seconds();
  Timer t_ram_solve;
  const Matrix x_ram = ram.solve(b);
  const double ram_solve_s = t_ram_solve.seconds();
  const UlvStats* rst = ram.ulv_stats();
  const std::uint64_t factor_bytes = rst != nullptr ? rst->final_block_bytes : 0;

  // OOC run at a quarter of that footprint.
  const double budget_mb =
      0.25 * static_cast<double>(factor_bytes) / (1 << 20);
  const std::string spill_parent =
      (std::filesystem::temp_directory_path() /
       ("h2-bench-ooc-" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(spill_parent);

  Timer t_ooc;
  const Solver ooc = Solver::build(pts, kernel,
                                   SolverOptions(base)
                                       .with_spill_dir(spill_parent)
                                       .with_spill_budget_mb(budget_mb)
                                       .with_spill_threads(2));
  const double ooc_factor_s = t_ooc.seconds();
  Timer t_ooc_solve;
  const Matrix x_ooc = ooc.solve(b);
  const double ooc_solve_s = t_ooc_solve.seconds();

  const bool bitwise = bitwise_equal(x_ram, x_ooc);
  const SpillStats ss = ooc.spill_stats();
  const std::uint64_t steps = ss.step_hits + ss.step_misses;
  const double hit_rate =
      steps > 0 ? static_cast<double>(ss.step_hits) / static_cast<double>(steps)
                : 1.0;
  const double slowdown_factor =
      ram_factor_s > 0 ? ooc_factor_s / ram_factor_s : 0.0;
  const double slowdown_solve =
      ram_solve_s > 0 ? ooc_solve_s / ram_solve_s : 0.0;
  const double peak_over_budget =
      static_cast<double>(ss.peak_resident_bytes) /
      static_cast<double>(ss.budget_bytes + ss.max_block_bytes);

  Table t({"run", "factor (s)", "solve (s)", "resident factor (MiB)",
           "spilled (MiB)", "hit rate"});
  t.add_row({"in-RAM", Table::fmt(ram_factor_s, 2), Table::fmt(ram_solve_s, 3),
             Table::fmt(static_cast<double>(factor_bytes) / (1 << 20), 1), "-",
             "-"});
  t.add_row({"OOC 0.25x", Table::fmt(ooc_factor_s, 2),
             Table::fmt(ooc_solve_s, 3),
             Table::fmt(static_cast<double>(ss.budget_bytes) / (1 << 20), 1),
             Table::fmt(static_cast<double>(ss.spilled_bytes) / (1 << 20), 1),
             Table::fmt(hit_rate, 3)});
  char title[128];
  std::snprintf(title, sizeof(title),
                "Out-of-core factor store, N=%d, tol=%.0e, budget=0.25x", n,
                cfg.tol);
  emit(t, title, "ooc");
  std::printf("slowdown: factor %.2fx, solve %.2fx; prefetch hit rate %.3f; "
              "peak/(budget+block) %.2f; bitwise %s\n",
              slowdown_factor, slowdown_solve, hit_rate, peak_over_budget,
              bitwise ? "IDENTICAL" : "DIVERGED");

  std::ofstream js("BENCH_OOC.json");
  js << "{\n  \"bench\": \"ooc\",\n  \"n\": " << n
     << ",\n  \"tol\": " << cfg.tol << ",\n  \"nrhs\": " << nrhs
     << ",\n  \"factor_bytes\": " << factor_bytes
     << ",\n  \"budget_bytes\": " << ss.budget_bytes
     << ",\n  \"cells\": [\n"
     << "    {\"key\": \"slowdown_factor\", \"value\": " << slowdown_factor
     << "},\n"
     << "    {\"key\": \"slowdown_solve\", \"value\": " << slowdown_solve
     << "},\n"
     << "    {\"key\": \"hit_rate\", \"value\": " << hit_rate << "},\n"
     << "    {\"key\": \"peak_over_budget\", \"value\": " << peak_over_budget
     << "},\n"
     << "    {\"key\": \"bitwise\", \"value\": " << (bitwise ? 1 : 0) << "}\n"
     << "  ]\n}\n";
  std::printf("(JSON trajectory written to BENCH_OOC.json)\n");

  {
    std::error_code ec;
    std::filesystem::remove_all(spill_parent, ec);
  }

  int failed = 0;
  if (!bitwise) {
    std::printf("FAILED: out-of-core solution diverged bitwise from the "
                "in-RAM one\n");
    failed = 1;
  }
  if (gate && hit_rate < 0.90) {
    std::printf("FAILED: prefetch hit rate %.3f under the 0.90 gate\n",
                hit_rate);
    failed = 1;
  }
  return failed;
}
