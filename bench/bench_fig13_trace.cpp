/// Fig. 13: execution traces through the task runtime. The paper shows
/// PaRSEC's red (overhead) vs green (useful work) tasks and blames poor
/// strong scaling on task grain vs runtime overhead. Here we execute BOTH
/// real DAGs — the tiled-Cholesky BLR baseline and the dependency-free
/// H2-ULV factorization — on concurrent workers, dump each trace (CSV with
/// task/label/owner/level/worker/span columns, one lane per worker), show
/// that the ULV trace overlaps tasks from ADJACENT TREE LEVELS (the
/// merge→fill edges at work: no level barrier exists), and quantify
/// overhead-vs-useful both measured and modeled.
#include <algorithm>
#include <cinttypes>

#include "dist/schedule_sim.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(2048 * scale());
  const int threads = static_cast<int>(env::get_int("H2_TRACE_THREADS", 4));
  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  SolverConfig cfg;
  cfg.tol = 1e-6;

  // ---- The ULV factorization through its own task DAG, concurrently.
  const UlvRun ulv = run_ulv(pts, kernel, cfg, /*record_tasks=*/true, threads);
  const ExecStats& uex = ulv.stats.exec;
  TaskGraph::write_trace_csv(uex, "fig13_ulv_trace.csv");

  Table tu({"task kind", "count", "total (s)", "mean (us)", "max (us)"});
  for (const std::string label :
       {"assemble", "fill", "basis", "project", "eliminate", "col_solve",
        "schur", "merge"}) {
    int count = 0;
    double total = 0.0, longest = 0.0;
    for (const auto& r : uex.records) {
      if (r.label != label) continue;
      ++count;
      total += r.duration();
      longest = std::max(longest, r.duration());
    }
    tu.add_row({label, std::to_string(count), Table::fmt(total, 4),
                Table::fmt(count ? 1e6 * total / count : 0.0, 1),
                Table::fmt(1e6 * longest, 1)});
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Fig. 13 (ULV): dependency-driven task trace, N=%d, %d workers",
                n, threads);
  emit(tu, title, "fig13_ulv_task_stats");

  // Cross-level overlap: with no barrier between levels, spans of level L
  // and level L-1 tasks interleave on the worker lanes — the structural
  // difference to a bulk-synchronous schedule. Only pipeline tasks count:
  // ry and assemble are dependency-free roots whose overlap any executor
  // would show, so they are excluded from the claim.
  auto pipeline_task = [](const TaskRecord& r) {
    return r.level >= 0 && r.label != "ry" && r.label != "assemble";
  };
  // Bucket the pipeline tasks by level, then count overlapping (span, span)
  // pairs between ADJACENT buckets with two sorted arrays and binary
  // searches — near-linear, where the naive all-pairs scan grows
  // quadratically with H2_BENCH_SCALE. A span [s_a, e_a) overlaps
  // [s_b, e_b) iff s_b < e_a and e_b > s_a, so against a sorted bucket the
  // count is #(starts < e_a) - #(ends <= s_a).
  int max_level = -1;
  for (const auto& r : uex.records)
    if (pipeline_task(r)) max_level = std::max(max_level, r.level);
  std::vector<std::vector<int>> by_level(max_level + 1);
  for (std::size_t i = 0; i < uex.records.size(); ++i)
    if (pipeline_task(uex.records[i]))
      by_level[uex.records[i].level].push_back(static_cast<int>(i));
  long overlap_pairs = 0;
  int example_a = -1, example_b = -1;
  for (int lvl = 0; lvl + 1 <= max_level; ++lvl) {
    const std::vector<int>& upper = by_level[lvl + 1];
    std::vector<double> starts, ends;
    for (const int b : upper) {
      starts.push_back(uex.records[b].t_start);
      ends.push_back(uex.records[b].t_end);
    }
    std::sort(starts.begin(), starts.end());
    std::sort(ends.begin(), ends.end());
    for (const int a : by_level[lvl]) {
      const auto& ra = uex.records[a];
      const long n_started =
          std::lower_bound(starts.begin(), starts.end(), ra.t_end) -
          starts.begin();
      const long n_finished =
          std::upper_bound(ends.begin(), ends.end(), ra.t_start) - ends.begin();
      const long c = n_started - n_finished;
      overlap_pairs += c;
      if (c > 0 && example_a < 0) {
        example_a = a;
        for (const int b : upper) {
          const auto& rb = uex.records[b];
          if (ra.t_start < rb.t_end && rb.t_start < ra.t_end) {
            example_b = b;
            break;
          }
        }
      }
    }
  }
  std::printf("ULV tasks executed   : %zu on %d workers (wall %.4f s, useful "
              "%.4f s, overhead+idle %.1f %%)\n",
              uex.records.size(), uex.n_workers, uex.wall_seconds,
              uex.useful_seconds, 100.0 * uex.overhead_fraction());
  std::printf("scheduler            : %s + %s; per-worker executed/stolen:",
              uex.schedule_policy, uex.priority_policy);
  for (std::size_t wi = 0; wi < uex.worker_counters.size(); ++wi)
    std::printf(" w%zu=%" PRIu64 "/%" PRIu64, wi,
                uex.worker_counters[wi].executed,
                uex.worker_counters[wi].stolen);
  std::printf("\n");
  std::printf("adjacent-level overlapping task pairs: %ld  (bulk-synchronous "
              "phase loops would give 0)\n", overlap_pairs);
  if (overlap_pairs > 0) {
    const auto& ra = uex.records[example_a];
    const auto& rb = uex.records[example_b];
    std::printf("  e.g. %s(owner %d, level %d) ran concurrently with "
                "%s(owner %d, level %d)\n",
                ra.label.c_str(), ra.owner, ra.level, rb.label.c_str(),
                rb.owner, rb.level);
  }

  // ---- The BLR baseline through the same runtime.
  const BlrRun blr = run_blr(pts, kernel, cfg, threads);
  const ExecStats& ex = blr.exec;
  TaskGraph::write_trace_csv(ex, "fig13_trace.csv");

  // Per-label task statistics (grain distribution).
  Table t({"task kind", "count", "total (s)", "mean (us)", "max (us)"});
  for (const std::string label : {"potrf", "trsm", "gemm"}) {
    int count = 0;
    double total = 0.0, longest = 0.0;
    for (const auto& r : ex.records) {
      if (r.label != label) continue;
      ++count;
      total += r.duration();
      longest = std::max(longest, r.duration());
    }
    t.add_row({label, std::to_string(count), Table::fmt(total, 4),
               Table::fmt(count ? 1e6 * total / count : 0.0, 1),
               Table::fmt(1e6 * longest, 1)});
  }
  std::snprintf(title, sizeof(title),
                "Fig. 13: BLR task trace, N=%d, %d workers", n, threads);
  emit(t, title, "fig13_task_stats");

  std::printf("tasks executed       : %zu\n", ex.records.size());
  std::printf("wall time            : %.4f s on %d workers\n", ex.wall_seconds,
              ex.n_workers);
  std::printf("useful task time     : %.4f s\n", ex.useful_seconds);
  std::printf("overhead+idle        : %.1f %% of worker-time (the paper's "
              "red-vs-green ratio)\n", 100.0 * ex.overhead_fraction());

  // Model the same DAG with explicit per-task runtime overhead to show the
  // grain sensitivity PaRSEC exhibits in the paper.
  ScheduleInput in;
  in.durations.resize(ex.records.size());
  for (const auto& r : ex.records) in.durations[r.id] = r.duration();
  in.successors = blr.successors;
  // Two regimes: our scalar-kernel task durations, and the same durations
  // divided by 100 to emulate the paper's MKL-speed tiles, where the task
  // grain approaches the runtime overhead (the red tasks of Fig. 13).
  Table t2({"task grain", "per-task overhead", "64-core makespan (s)",
            "efficiency"});
  for (const double speedup : {1.0, 100.0}) {
    ScheduleInput scaled = in;
    for (double& d : scaled.durations) d /= speedup;
    for (const double ov : {0.0, 20e-6, 100e-6}) {
      scaled.per_task_overhead = ov;
      const auto res = list_schedule(scaled, 64, CommModel{});
      t2.add_row({speedup == 1.0 ? "measured (scalar)" : "measured / 100 (MKL-like)",
                  Table::fmt(1e6 * ov, 0) + " us", Table::fmt(res.makespan, 5),
                  Table::fmt(res.efficiency(64), 3)});
    }
  }
  emit(t2, "Fig. 13 (model): runtime overhead vs 64-core efficiency",
       "fig13_overhead_model");
  std::printf("(per-task traces written to fig13_ulv_trace.csv and "
              "fig13_trace.csv)\n");
  return 0;
}
