/// Fig. 13: execution trace of the BLR baseline through the task runtime —
/// the paper shows PaRSEC's red (overhead) vs green (useful work) tasks and
/// blames poor strong scaling on task grain vs runtime overhead. Here we
/// execute the real tiled-Cholesky DAG, dump the trace (CSV, one lane per
/// worker), and quantify overhead-vs-useful both measured and modeled.
#include <algorithm>

#include "dist/schedule_sim.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(2048 * scale());
  const int threads = static_cast<int>(env::get_int("H2_TRACE_THREADS", 4));
  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  SolverConfig cfg;
  cfg.tol = 1e-6;

  const BlrRun blr = run_blr(pts, kernel, cfg, threads);
  const ExecStats& ex = blr.exec;
  TaskGraph::write_trace_csv(ex, "fig13_trace.csv");

  // Per-label task statistics (grain distribution).
  Table t({"task kind", "count", "total (s)", "mean (us)", "max (us)"});
  for (const std::string label : {"potrf", "trsm", "gemm"}) {
    int count = 0;
    double total = 0.0, longest = 0.0;
    for (const auto& r : ex.records) {
      if (r.label != label) continue;
      ++count;
      total += r.duration();
      longest = std::max(longest, r.duration());
    }
    t.add_row({label, std::to_string(count), Table::fmt(total, 4),
               Table::fmt(count ? 1e6 * total / count : 0.0, 1),
               Table::fmt(1e6 * longest, 1)});
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "Fig. 13: BLR task trace, N=%d, %d workers", n, threads);
  emit(t, title, "fig13_task_stats");

  std::printf("tasks executed       : %zu\n", ex.records.size());
  std::printf("wall time            : %.4f s on %d workers\n", ex.wall_seconds,
              ex.n_workers);
  std::printf("useful task time     : %.4f s\n", ex.useful_seconds);
  std::printf("overhead+idle        : %.1f %% of worker-time (the paper's "
              "red-vs-green ratio)\n", 100.0 * ex.overhead_fraction());

  // Model the same DAG with explicit per-task runtime overhead to show the
  // grain sensitivity PaRSEC exhibits in the paper.
  ScheduleInput in;
  in.durations.resize(ex.records.size());
  for (const auto& r : ex.records) in.durations[r.id] = r.duration();
  in.successors = blr.successors;
  // Two regimes: our scalar-kernel task durations, and the same durations
  // divided by 100 to emulate the paper's MKL-speed tiles, where the task
  // grain approaches the runtime overhead (the red tasks of Fig. 13).
  Table t2({"task grain", "per-task overhead", "64-core makespan (s)",
            "efficiency"});
  for (const double speedup : {1.0, 100.0}) {
    ScheduleInput scaled = in;
    for (double& d : scaled.durations) d /= speedup;
    for (const double ov : {0.0, 20e-6, 100e-6}) {
      scaled.per_task_overhead = ov;
      const auto res = list_schedule(scaled, 64, CommModel{});
      t2.add_row({speedup == 1.0 ? "measured (scalar)" : "measured / 100 (MKL-like)",
                  Table::fmt(1e6 * ov, 0) + " us", Table::fmt(res.makespan, 5),
                  Table::fmt(res.efficiency(64), 3)});
    }
  }
  emit(t2, "Fig. 13 (model): runtime overhead vs 64-core efficiency",
       "fig13_overhead_model");
  std::printf("(full per-task trace written to fig13_trace.csv)\n");
  return 0;
}
