/// Table I: empirical factorization complexity of the low-rank structure
/// zoo on one 3-D problem family — BLR (flat, independent bases), BLR^2
/// (flat, shared bases), HSS (hierarchical, weak admissibility) and H^2
/// (hierarchical, strong admissibility) — plus the paper's motivating
/// observation that HSS ranks grow with N for 3-D geometry while H^2 ranks
/// stay bounded.
#include "hodlr/hodlr.hpp"

#include "bench_common.hpp"

namespace {

struct Obs {
  double flops;
  int rank;
  /// Peak live factorization block-bytes (blockmem window); 0 for the BLR
  /// and HODLR baselines, whose storage isn't block-tracked.
  double peak_bytes = 0.0;
};

}  // namespace

int main() {
  using namespace h2;
  using namespace h2::bench;

  const std::vector<int> sizes = size_sweep({512, 1024, 2048});

  std::vector<double> xs;
  std::vector<std::vector<Obs>> data(5);  // BLR, BLR2, HODLR, HSS, H2

  for (const int n : sizes) {
    xs.push_back(n);
    Rng rng(1);
    const PointCloud pts = uniform_cube(n, rng);
    const LaplaceKernel kernel(1e-4);

    {  // BLR at LORAPO's grown-with-N tile (see bench_common.hpp)
      SolverConfig cfg;
      cfg.tol = 1e-6;
      cfg.leaf = blr_tile_for(n);
      const BlrRun r = run_blr(pts, kernel, cfg);
      data[0].push_back({static_cast<double>(r.factor_flops), r.max_rank});
    }
    // HSS/BLR^2 run un-capped so the 3-D weak-admissibility rank growth —
    // the paper's motivation — is visible; H^2 runs with the bounded
    // skeleton rank that strong admissibility affords.
    auto ulv_run = [&](Admissibility adm, int leaf, int cap) {
      const ClusterTree tree = ClusterTree::build(pts, leaf, rng);
      H2BuildOptions ho;
      ho.admissibility = {adm, 1.0};
      ho.tol = 1e-8;
      ho.max_rank = cap;
      const H2Matrix a(tree, kernel, ho);
      UlvOptions uo;
      uo.tol = 1e-6;
      uo.max_rank = cap;
      flops::reset();
      const UlvFactorization f(a, uo);
      return Obs{static_cast<double>(flops::total()), f.stats().max_rank,
                 static_cast<double>(f.stats().peak_block_bytes)};
    };
    data[1].push_back(ulv_run(Admissibility::Weak, (n + 1) / 2, -1));  // BLR^2
    {  // HODLR: independent bases, weak admissibility, recursive SMW.
      const ClusterTree tree = ClusterTree::build(pts, 64, rng);
      flops::reset();
      const HodlrMatrix hodlr(tree, kernel, {1e-6, -1});
      data[2].push_back(
          {static_cast<double>(flops::total()), hodlr.max_rank_used()});
    }
    data[3].push_back(ulv_run(Admissibility::Weak, 64, -1));    // HSS
    data[4].push_back(ulv_run(Admissibility::Strong, 64, 64));  // H^2

    std::printf("done N=%d\n", n);
  }

  const char* names[5] = {"BLR (indep, flat)", "BLR2 (shared, flat)",
                          "HODLR (indep, weak)", "HSS (shared, weak)",
                          "H2 (shared, strong)"};
  const char* paper[5] = {"O(N^2)", "O(N^1.8)", "O(N log^2 N) / grows 3-D",
                          "O(N) 1-D / grows 3-D", "O(N)"};
  Table t({"structure", "flops @ each N", "max rank @ each N",
           "peak blk MB @ each N", "fitted O(N^x)", "paper"});
  for (int s = 0; s < 5; ++s) {
    std::string fl, rk, pk;
    std::vector<double> ys;
    for (const Obs& o : data[s]) {
      fl += Table::fmt_sci(o.flops, 1) + " ";
      rk += std::to_string(o.rank) + " ";
      pk += o.peak_bytes > 0.0 ? Table::fmt(o.peak_bytes / 1e6, 1) + " " : "- ";
      ys.push_back(o.flops);
    }
    t.add_row({names[s], fl, rk, pk, Table::fmt(fitted_exponent(xs, ys), 2),
               paper[s]});
  }
  std::printf("peak RSS over the whole sweep: %.1f MB (block-tracked peaks "
              "above are\nper-factorization windows)\n",
              peak_rss_bytes() / 1e6);
  emit(t, "Table I: empirical complexity of the low-rank structures",
       "table1_complexity");
  std::printf(
      "paper shape check: weak-admissibility ranks (HODLR/HSS) grow with N\n"
      "on 3-D geometry, H2 ranks stay bounded: HSS ranks %d -> %d, H2 ranks\n"
      "%d -> %d.\n",
      data[3].front().rank, data[3].back().rank, data[4].front().rank,
      data[4].back().rank);
  return 0;
}
