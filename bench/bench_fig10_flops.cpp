/// Fig. 10: floating-point operations vs problem size (PAPI_FP_OPS in the
/// paper; exact analytic flop counters here), tol 1e-8, same setup as
/// Fig. 9b. Paper's shape: the ULV performs MORE flops than BLR at these
/// sizes (extra basis/fill work + larger shared-basis ranks), but grows O(N)
/// vs BLR's O(N^2).
#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const std::vector<int> sizes = size_sweep({1024, 2048, 4096});

  Table t({"N", "ULV flops", "BLR flops", "ULV/BLR", "ULV max rank",
           "BLR max rank"});
  std::vector<double> xs, ulv_fl, blr_fl;
  for (const int n : sizes) {
    Rng rng(1);
    const PointCloud pts = uniform_cube(n, rng);
    const LaplaceKernel kernel(1e-4);
    SolverConfig cfg;
    cfg.tol = 1e-8;
    cfg.max_rank = 120;
    const UlvRun ulv = run_ulv(pts, kernel, cfg);
    SolverConfig bcfg = cfg;
    bcfg.leaf = blr_tile_for(n);
    const BlrRun blr = run_blr(pts, kernel, bcfg);
    xs.push_back(n);
    ulv_fl.push_back(static_cast<double>(ulv.factor_flops));
    blr_fl.push_back(static_cast<double>(blr.factor_flops));
    t.add_row({std::to_string(n),
               Table::fmt_sci(static_cast<double>(ulv.factor_flops), 2),
               Table::fmt_sci(static_cast<double>(blr.factor_flops), 2),
               Table::fmt(static_cast<double>(ulv.factor_flops) /
                              static_cast<double>(blr.factor_flops), 2),
               std::to_string(ulv.max_rank), std::to_string(blr.max_rank)});
  }
  emit(t, "Fig. 10: factorization flops vs N (tol=1e-8)", "fig10_flops");
  std::printf("fitted exponent: ULV O(N^%.2f) [paper: ~1]   BLR O(N^%.2f) "
              "[paper: ~2]\n",
              fitted_exponent(xs, ulv_fl), fitted_exponent(xs, blr_fl));
  std::printf("paper shape check: ULV flops exceed BLR at small N (shared "
              "bases + ULV transforms cost more; paper reports upper-level "
              "ranks up to 180 vs BLR's 50): %s\n",
              ulv_fl.front() > blr_fl.front() ? "yes" : "no");
  return 0;
}
