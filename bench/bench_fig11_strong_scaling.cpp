/// Fig. 11 (a,b): shared-memory strong scaling on up to 128 cores for a
/// fixed problem size. On this single-core host the curves are produced by
/// the scheduling simulator: the REAL factorizations run serially with
/// per-task timing, and the measured task durations are replayed through
/// each method's true dependency structure. For the ULV that structure IS
/// the executed TaskGraph (UlvStats::dag/exec — the same DAG the TaskDag
/// executor ran and bench_fig13_trace plots), with fill→basis→project→
/// eliminate chains per block row and merge→fill edges across levels; the
/// BLR baseline replays its trailing-dependency tiled-Cholesky DAG plus
/// PaRSEC-like per-task runtime overhead.
#include <cinttypes>

#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(4096 * scale());
  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  SolverConfig cfg;
  cfg.leaf = 64;  // small leaf: the ULV's optimum (Fig. 12), many block rows
  cfg.tol = 1e-6;
  cfg.max_rank = 64;

  const UlvRun ulv = run_ulv(pts, kernel, cfg, /*record_tasks=*/true);
  SolverConfig bcfg = cfg;
  bcfg.leaf = blr_tile_for(n);  // large tile: the BLR's optimum (Fig. 12)
  const BlrRun blr = run_blr(pts, kernel, bcfg);

  UlvDistModel ulv_model{&ulv.stats, &ulv.structure};
  std::size_t ulv_edges = 0;
  for (const auto& succ : ulv.stats.dag.successors) ulv_edges += succ.size();
  std::printf("ULV replay input: the recorded execution DAG (%d tasks, %zu "
              "edges)\n", ulv.stats.dag.n_tasks(), ulv_edges);

  ScheduleInput blr_in;
  blr_in.durations.resize(blr.exec.records.size());
  for (const auto& r : blr.exec.records) blr_in.durations[r.id] = r.duration();
  blr_in.successors = blr.successors;
  // PaRSEC-like runtime overhead per task (the red tasks of Fig. 13).
  blr_in.per_task_overhead = kRuntimeOverhead;
  const CommModel none;

  Table t({"cores", "ULV time (s)", "ULV speedup", "BLR time (s)",
           "BLR speedup"});
  const double ulv_t1 = ulv_model.shared_memory_time(1);
  const double blr_t1 = list_schedule(blr_in, 1, none).makespan;
  for (const int p : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double tu = ulv_model.shared_memory_time(p);
    const double tb = list_schedule(blr_in, p, none).makespan;
    t.add_row({std::to_string(p), Table::fmt(tu, 4), Table::fmt(ulv_t1 / tu, 1),
               Table::fmt(tb, 4), Table::fmt(blr_t1 / tb, 1)});
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Fig. 11: strong scaling, N=%d (measured task durations "
                "replayed on P simulated cores)", n);
  emit(t, title, "fig11_strong_scaling");
  std::printf(
      "paper shape check: the dependency-free ULV keeps scaling to high core\n"
      "counts while the BLR DAG saturates on its critical path + runtime\n"
      "overhead (ULV speedup at 128 cores: %.0fx, BLR: %.0fx).\n",
      ulv_t1 / ulv_model.shared_memory_time(128),
      blr_t1 / list_schedule(blr_in, 128, none).makespan);

  // ---- One mechanism, two figures: the SAME recorded DAG replayed under
  // the subtree RankMap (Fig. 16's process-tree pinning). "pinned, no comm"
  // isolates what the owner map alone costs vs free placement — the
  // replicated top levels serialize on rank 0 — and "pinned + comm" adds
  // the alpha-beta charges on cross-rank edges (the Fig. 16 ULV curve at
  // this N). The gap between the three columns is the placement/comm price
  // the distributed design pays on top of raw dependency freedom.
  Table tr({"ranks", "free placement (s)", "pinned, no comm (s)",
            "pinned + comm (s)", "cross-rank edges", "MB shipped"});
  const CommModel comm;  // 2 us latency, 10 GB/s
  for (const int p : {1, 2, 4, 8, 16, 32}) {
    const ScheduleInput pinned = ulv_model.distributed_input(p);
    // Cross-rank traffic is fixed by the owner map, not the schedule: count
    // the edges whose endpoints live on different ranks and the recorded
    // payload they carry. The punchline: "pinned + comm" hugs "pinned, no
    // comm" even with a third of the edges crossing — a ~200 KB message is
    // ~20 us at 10 GB/s and arrives at a rank still draining its own
    // subtree, so transfers hide behind the backlog. The distributed price
    // at these sizes is the pinning itself (the replicated top levels
    // serialize on rank 0), not the messages.
    std::size_t cross = 0;
    double bytes = 0.0;
    for (std::size_t u = 0; u < pinned.successors.size(); ++u)
      for (const int v : pinned.successors[u]) {
        // Edges into control sinks (the release tasks) synchronize without
        // moving data — skip them, as list_schedule's charging does.
        if (static_cast<std::size_t>(v) < pinned.control_sink.size() &&
            pinned.control_sink[static_cast<std::size_t>(v)] != 0)
          continue;
        if (pinned.owner[u] != pinned.owner[static_cast<std::size_t>(v)]) {
          ++cross;
          if (u < pinned.out_bytes.size()) bytes += pinned.out_bytes[u];
        }
      }
    tr.add_row({std::to_string(p),
                Table::fmt(ulv_model.shared_memory_time(p), 4),
                Table::fmt(list_schedule(pinned, p, none).makespan, 4),
                // == ulv_model.time(p, comm): same pinned input, real comm
                Table::fmt(list_schedule(pinned, p, comm).makespan, 4),
                std::to_string(cross), Table::fmt(bytes / 1e6, 2)});
  }
  emit(tr, "Fig. 11 (rank map): the same recorded DAG under the Fig. 16 "
           "subtree partition", "fig11_rank_map");

  // ---- The real executor on real workers: the work-stealing scheduler's
  // own counters. Unlike the replay above this factorization runs the DAG
  // concurrently (WorkSteal + CriticalPath, the defaults), so the per-lane
  // executed/stolen split shows how much of the load balance came from
  // stealing rather than from the initial submission.
  const int real_workers = 4;
  const UlvRun steal_run =
      run_ulv(pts, kernel, cfg, /*record_tasks=*/true, real_workers);
  const ExecStats& sx = steal_run.stats.exec;
  Table tw({"worker", "executed", "stolen"});
  for (std::size_t wi = 0; wi < sx.worker_counters.size(); ++wi)
    tw.add_row({std::to_string(wi),
                std::to_string(sx.worker_counters[wi].executed),
                std::to_string(sx.worker_counters[wi].stolen)});
  std::snprintf(title, sizeof(title),
                "Fig. 11 (executor): per-worker execute/steal counters, "
                "schedule=%s priority=%s, %d workers",
                sx.schedule_policy, sx.priority_policy, sx.n_workers);
  emit(tw, title, "fig11_steal_counters");
  std::printf("real DAG execution: %zu tasks on %d workers in %.4f s; "
              "%" PRIu64 " tasks arrived by stealing\n",
              sx.records.size(), sx.n_workers, sx.wall_seconds,
              sx.total_steals());
  return 0;
}
