/// Solve-side throughput: fast direct solvers earn their keep on SOLVE
/// REUSE — one factorization amortized over many right-hand sides (Ho &
/// Greengard). This harness factorizes once and measures RHS/s three ways:
///
///   1. single-RHS latency (nrhs=1, back to back),
///   2. blocked multi-RHS (one solve carrying many columns),
///   3. pipelined batches (independent solves running concurrently on a
///      shared pool — the h2::Solver::solve_batch path),
///
/// each under BOTH solve executors (the bulk-synchronous PhaseLoops sweep
/// vs the recorded-DAG TaskDag executor) and several worker counts. All
/// cells produce bitwise-identical solutions; only the schedule differs.
/// Writes solve_throughput.csv and BENCH_SOLVE.json (the solve-side perf
/// trajectory seed).
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

#include "bench_common.hpp"

namespace {

struct Cell {
  std::string mode;       // "latency" / "blocked" / "pipelined"
  std::string executor;   // "loop" / "dag"
  int workers;
  int n_solves;
  int nrhs_per_solve;
  double seconds;
  [[nodiscard]] double rhs_per_s() const {
    return n_solves * nrhs_per_solve / seconds;
  }
};

}  // namespace

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(2048 * scale());
  const int reps = static_cast<int>(env::get_int("H2_SOLVE_REPS", 16));
  Rng rng(42);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  SolverConfig cfg;
  cfg.tol = 1e-6;

  const ClusterTree tree = ClusterTree::build(pts, cfg.leaf, rng);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, cfg.eta};
  ho.tol = 1e-2 * cfg.tol;
  ho.max_rank = cfg.max_rank;
  const H2Matrix a(tree, kernel, ho);

  // One factorization per solve executor; the factors themselves are
  // bitwise identical (ulv_solve_dag_test), so every cell solves the same
  // operator.
  auto factor = [&](UlvExecutor solve_exec, ThreadPool* pool) {
    UlvOptions uo;
    uo.tol = cfg.tol;
    uo.max_rank = cfg.max_rank;
    uo.solve_executor = solve_exec;
    uo.pool = pool;
    return std::make_unique<UlvFactorization>(a, uo);
  };

  const Matrix b1 = Matrix::random(n, 1, rng);
  const Matrix b_block = Matrix::random(n, reps, rng);

  std::vector<Cell> cells;
  Matrix x_ref, x_block_ref;  // bitwise cross-checks across every cell
  bool diverged = false;
  for (const UlvExecutor sexec :
       {UlvExecutor::PhaseLoops, UlvExecutor::TaskDag}) {
    const char* ename = sexec == UlvExecutor::TaskDag ? "dag" : "loop";
    for (const int workers : {1, 4}) {
      ThreadPool pool(workers);
      const auto f = factor(sexec, &pool);

      // 1. Single-RHS latency, back to back.
      {
        Matrix x = b1;
        Timer t;
        for (int r = 0; r < reps; ++r) {
          x = b1;
          f->solve(x);
        }
        cells.push_back({"latency", ename, workers, reps, 1, t.seconds()});
        if (x_ref.empty()) x_ref = x;
        if (rel_error_fro(x, x_ref) != 0.0) {
          std::printf("!! executor %s/%d diverged on nrhs=1\n", ename, workers);
          diverged = true;
        }
      }
      // 2. One blocked solve carrying `reps` columns.
      {
        Matrix x = b_block;
        Timer t;
        f->solve(x);
        cells.push_back({"blocked", ename, workers, 1, reps, t.seconds()});
        if (x_block_ref.empty()) x_block_ref = x;
        if (rel_error_fro(x, x_block_ref) != 0.0) {
          std::printf("!! blocked %s/%d diverged\n", ename, workers);
          diverged = true;
        }
      }
      // 3. Pipelined independent solves: whole solves run concurrently on
      //    the pool's workers (each falls back to its inline sweep — the
      //    h2::Solver::solve_batch / solve_async path).
      {
        std::vector<Matrix> xs(reps, b1);
        Timer t;
        for (int r = 0; r < reps; ++r)
          pool.submit([&f, &xs, r] { f->solve(xs[r]); });
        pool.wait_idle();
        cells.push_back({"pipelined", ename, workers, reps, 1, t.seconds()});
        for (const Matrix& x : xs)
          if (rel_error_fro(x, x_ref) != 0.0) {
            std::printf("!! pipelined %s/%d diverged\n", ename, workers);
            diverged = true;
          }
      }
    }
  }

  Table t({"mode", "solve executor", "workers", "solves", "nrhs/solve",
           "total (s)", "RHS/s"});
  for (const Cell& c : cells)
    t.add_row({c.mode, c.executor, std::to_string(c.workers),
               std::to_string(c.n_solves), std::to_string(c.nrhs_per_solve),
               Table::fmt(c.seconds, 4), Table::fmt(c.rhs_per_s(), 1)});
  char title[128];
  std::snprintf(title, sizeof(title),
                "Solve throughput, N=%d, tol=%.0e (%d RHS per cell)", n,
                cfg.tol, reps);
  emit(t, title, "solve_throughput");

  // JSON trajectory seed: one self-contained record per cell.
  std::ofstream js("BENCH_SOLVE.json");
  js << "{\n  \"bench\": \"solve_throughput\",\n  \"n\": " << n
     << ",\n  \"tol\": " << cfg.tol
     << ",\n  \"host_cores\": " << std::thread::hardware_concurrency()
     << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    js << "    {\"mode\": \"" << c.mode << "\", \"executor\": \"" << c.executor
       << "\", \"workers\": " << c.workers << ", \"solves\": " << c.n_solves
       << ", \"nrhs_per_solve\": " << c.nrhs_per_solve
       << ", \"seconds\": " << c.seconds
       << ", \"rhs_per_s\": " << c.rhs_per_s() << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::printf("(JSON trajectory written to BENCH_SOLVE.json)\n");
  if (diverged) {
    std::printf("FAILED: solve executors disagreed — see !! lines above\n");
    return 1;
  }
  return 0;
}
