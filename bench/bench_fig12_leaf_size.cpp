/// Fig. 12: impact of the leaf (tile) size at fixed N on 32 cores.
/// Paper's shape: the ULV is best at a SMALL leaf (more tree levels, more
/// parallel block rows), while BLR wants LARGE tiles (fewer, fatter tasks
/// to amortize runtime overhead) — the two curves move in opposite
/// directions.
#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(2048 * scale());
  const int cores = 32;
  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);

  Table t({"leaf size", "ULV time (s)", "BLR time (s)", "ULV max rank",
           "BLR max rank"});
  std::vector<int> leaves{32, 64, 128, 256, 512};
  double best_ulv = 1e30, best_blr = 1e30;
  int best_ulv_leaf = 0, best_blr_leaf = 0;
  for (const int leaf : leaves) {
    if (leaf * 2 > n) continue;
    SolverConfig cfg;
    cfg.leaf = leaf;
    cfg.tol = 1e-6;
    cfg.max_rank = std::min(leaf, 80);
    const UlvRun ulv = run_ulv(pts, kernel, cfg, /*record_tasks=*/true);
    const BlrRun blr = run_blr(pts, kernel, cfg);

    UlvDistModel model{&ulv.stats, &ulv.structure};
    const double tu = model.shared_memory_time(cores);

    ScheduleInput in;
    in.durations.resize(blr.exec.records.size());
    for (const auto& r : blr.exec.records) in.durations[r.id] = r.duration();
    in.successors = blr.successors;
    in.per_task_overhead = kRuntimeOverhead;
    const double tb = list_schedule(in, cores, CommModel{}).makespan;

    if (tu < best_ulv) {
      best_ulv = tu;
      best_ulv_leaf = leaf;
    }
    if (tb < best_blr) {
      best_blr = tb;
      best_blr_leaf = leaf;
    }
    t.add_row({std::to_string(leaf), Table::fmt(tu, 4), Table::fmt(tb, 4),
               std::to_string(ulv.max_rank), std::to_string(blr.max_rank)});
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "Fig. 12: time vs leaf size (N=%d, %d simulated cores)", n,
                cores);
  emit(t, title, "fig12_leaf_size");
  std::printf("paper shape check: ULV optimum at a small leaf (%d), BLR "
              "optimum at a larger leaf (%d): %s\n",
              best_ulv_leaf, best_blr_leaf,
              best_ulv_leaf <= best_blr_leaf ? "yes" : "no");
  return 0;
}
