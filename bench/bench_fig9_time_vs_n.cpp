/// Fig. 9 (a,b): single-core factorization time vs problem size, our
/// dependency-free H2-ULV vs the BLR baseline (LORAPO substitute), at two
/// accuracy targets. The paper's shape: BLR is faster at small N despite its
/// O(N^2) complexity (the ULV does more flops); the ULV's O(N) slope takes
/// over as N grows.
#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const std::vector<int> sizes = size_sweep({1024, 2048, 4096});

  for (const double tol : {1e-6, 1e-8}) {
    Table t({"N", "ULV time (s)", "ULV resid", "BLR time (s)", "BLR resid",
             "ULV t(2N)/t(N)", "BLR t(2N)/t(N)"});
    std::vector<double> xs, ulv_ts, blr_ts;
    for (const int n : sizes) {
      Rng rng(1);
      const PointCloud pts = uniform_cube(n, rng);
      const LaplaceKernel kernel(1e-4);
      SolverConfig cfg;
      cfg.tol = tol;
      cfg.max_rank = tol <= 1e-8 ? 120 : 80;
      const UlvRun ulv = run_ulv(pts, kernel, cfg);
      SolverConfig bcfg = cfg;
      bcfg.leaf = blr_tile_for(n);
      const BlrRun blr = run_blr(pts, kernel, bcfg);
      xs.push_back(n);
      ulv_ts.push_back(ulv.factor_seconds);
      blr_ts.push_back(blr.factor_seconds);
      const std::size_t k = xs.size();
      t.add_row({std::to_string(n), Table::fmt(ulv.factor_seconds, 3),
                 Table::fmt_sci(ulv.residual, 1),
                 Table::fmt(blr.factor_seconds, 3),
                 Table::fmt_sci(blr.residual, 1),
                 k > 1 ? Table::fmt(ulv_ts[k - 1] / ulv_ts[k - 2], 2) : "-",
                 k > 1 ? Table::fmt(blr_ts[k - 1] / blr_ts[k - 2], 2) : "-"});
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig. 9: factorization time vs N (tol=%.0e, 1 core)", tol);
    emit(t, title, tol <= 1e-8 ? "fig9b_time_vs_n" : "fig9a_time_vs_n");
    std::printf(
        "doubling ratio targets: ULV -> 2 (O(N)), BLR -> 4 (O(N^2)); fitted\n"
        "exponents over this range: ULV O(N^%.2f) [paper ~1, approached from\n"
        "above as constant top-level work amortizes], BLR O(N^%.2f) [paper "
        "~2].\n",
        fitted_exponent(xs, ulv_ts), fitted_exponent(xs, blr_ts));
    std::printf("paper shape check: BLR faster at small N on one core -> %s\n",
                blr_ts.front() < ulv_ts.front() ? "yes" : "no");
  }
  return 0;
}
