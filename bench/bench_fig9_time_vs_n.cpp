/// Fig. 9 (a,b): single-core factorization time vs problem size, our
/// dependency-free H2-ULV vs the BLR baseline (LORAPO substitute), at two
/// accuracy targets. The paper's shape: BLR is faster at small N despite its
/// O(N^2) complexity (the ULV does more flops); the ULV's O(N) slope takes
/// over as N grows.
///
/// Also the repo's memory bench: each ULV row reports the factorization's
/// peak and final live block-bytes (the blockmem window ExecStats carries)
/// plus the process peak RSS, and at the largest N a retain-everything rerun
/// (release_blocks=false) measures what the DAG's release tasks save. The
/// peak/retain ratio must stay <= 0.5 — the bench exits nonzero otherwise —
/// and every cell lands in BENCH_MEMORY.json, the trajectory seed the CI
/// bench-smoke job diffs against (>20% peak block-bytes growth fails).
#include <fstream>

#include "bench_common.hpp"

namespace {

struct MemCell {
  double tol;
  int n;
  bool release;
  std::uint64_t peak_block_bytes;
  std::uint64_t final_block_bytes;
  std::uint64_t peak_rss_bytes;
  double factor_seconds;
};

}  // namespace

int main() {
  using namespace h2;
  using namespace h2::bench;

  const std::vector<int> sizes = size_sweep({1024, 2048, 4096});
  std::vector<MemCell> mem;
  double release_peak = 0.0, retain_peak = 0.0;  // largest N, tol=1e-6

  for (const double tol : {1e-6, 1e-8}) {
    Table t({"N", "ULV time (s)", "ULV resid", "ULV peak blk MB",
             "ULV final blk MB", "peak RSS MB", "BLR time (s)", "BLR resid",
             "ULV t(2N)/t(N)", "BLR t(2N)/t(N)"});
    std::vector<double> xs, ulv_ts, blr_ts;
    for (const int n : sizes) {
      Rng rng(1);
      const PointCloud pts = uniform_cube(n, rng);
      const LaplaceKernel kernel(1e-4);
      SolverConfig cfg;
      cfg.tol = tol;
      cfg.max_rank = tol <= 1e-8 ? 120 : 80;
      const UlvRun ulv = run_ulv(pts, kernel, cfg);
      mem.push_back({tol, n, true, ulv.stats.peak_block_bytes,
                     ulv.stats.final_block_bytes, peak_rss_bytes(),
                     ulv.factor_seconds});
      SolverConfig bcfg = cfg;
      bcfg.leaf = blr_tile_for(n);
      const BlrRun blr = run_blr(pts, kernel, bcfg);
      xs.push_back(n);
      ulv_ts.push_back(ulv.factor_seconds);
      blr_ts.push_back(blr.factor_seconds);
      const std::size_t k = xs.size();
      t.add_row({std::to_string(n), Table::fmt(ulv.factor_seconds, 3),
                 Table::fmt_sci(ulv.residual, 1),
                 Table::fmt(ulv.stats.peak_block_bytes / 1e6, 1),
                 Table::fmt(ulv.stats.final_block_bytes / 1e6, 1),
                 Table::fmt(peak_rss_bytes() / 1e6, 1),
                 Table::fmt(blr.factor_seconds, 3),
                 Table::fmt_sci(blr.residual, 1),
                 k > 1 ? Table::fmt(ulv_ts[k - 1] / ulv_ts[k - 2], 2) : "-",
                 k > 1 ? Table::fmt(blr_ts[k - 1] / blr_ts[k - 2], 2) : "-"});
      if (tol == 1e-6 && n == sizes.back()) {
        release_peak = static_cast<double>(ulv.stats.peak_block_bytes);
        // Retain-everything ablation: same problem, release tasks off. Its
        // peak is the old behaviour — every fill-in, generator and skeleton
        // block of every level alive at once until the destructor.
        SolverConfig keep = cfg;
        keep.release_blocks = false;
        const UlvRun held = run_ulv(pts, kernel, keep);
        retain_peak = static_cast<double>(held.stats.peak_block_bytes);
        mem.push_back({tol, n, false, held.stats.peak_block_bytes,
                       held.stats.final_block_bytes, peak_rss_bytes(),
                       held.factor_seconds});
      }
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig. 9: factorization time vs N (tol=%.0e, 1 core)", tol);
    emit(t, title, tol <= 1e-8 ? "fig9b_time_vs_n" : "fig9a_time_vs_n");
    std::printf(
        "doubling ratio targets: ULV -> 2 (O(N)), BLR -> 4 (O(N^2)); fitted\n"
        "exponents over this range: ULV O(N^%.2f) [paper ~1, approached from\n"
        "above as constant top-level work amortizes], BLR O(N^%.2f) [paper "
        "~2].\n",
        fitted_exponent(xs, ulv_ts), fitted_exponent(xs, blr_ts));
    std::printf("paper shape check: BLR faster at small N on one core -> %s\n",
                blr_ts.front() < ulv_ts.front() ? "yes" : "no");
  }

  // JSON trajectory seed: one self-contained record per (tol, N) cell, plus
  // the retain ablation. CI reruns this bench at H2_BENCH_SCALE=0.5 and
  // fails if any matching cell's peak_block_bytes grew >20% over this file.
  std::ofstream js("BENCH_MEMORY.json");
  js << "{\n  \"bench\": \"fig9_memory\",\n  \"executor\": \"dag\",\n"
     << "  \"workers\": 1,\n  \"cells\": [\n";
  for (std::size_t i = 0; i < mem.size(); ++i) {
    const MemCell& c = mem[i];
    js << "    {\"tol\": " << c.tol << ", \"n\": " << c.n
       << ", \"release\": " << (c.release ? "true" : "false")
       << ", \"peak_block_bytes\": " << c.peak_block_bytes
       << ", \"final_block_bytes\": " << c.final_block_bytes
       << ", \"peak_rss_bytes\": " << c.peak_rss_bytes
       << ", \"factor_seconds\": " << c.factor_seconds << "}"
       << (i + 1 < mem.size() ? "," : "") << "\n";
  }
  js << "  ]\n}\n";
  std::printf("(JSON trajectory written to BENCH_MEMORY.json)\n");

  const double ratio = retain_peak > 0.0 ? release_peak / retain_peak : 1.0;
  std::printf(
      "memory check at N=%d, tol=1e-06: peak block-bytes %.1f MB with release "
      "tasks\nvs %.1f MB retaining everything -> ratio %.2f (acceptance: "
      "<= 0.50)\n",
      sizes.back(), release_peak / 1e6, retain_peak / 1e6, ratio);
  if (ratio > 0.5) {
    std::printf("FAILED: release-task peak exceeds 50%% of the "
                "retain-everything peak\n");
    return 1;
  }
  return 0;
}
