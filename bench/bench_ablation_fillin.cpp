/// Ablation of the paper's two key design choices (Sec. III):
///  1. fill-in-augmented shared bases (Eqs. 27-28) vs plain low-rank bases —
///     the augmentation is what makes the dropped non-skeleton updates
///     negligible;
///  2. dependency-free parallel elimination vs the sequential Sec. II.D
///     right-looking flow with trailing updates — same math, no parallelism.
#include "dist/ulv_dist_model.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const int n = static_cast<int>(2048 * scale());
  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  const ClusterTree tree = ClusterTree::build(pts, 128, rng);

  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 1.0};
  ho.tol = 1e-8;
  ho.max_rank = 80;
  const H2Matrix a(tree, kernel, ho);

  struct Variant {
    const char* name;
    bool fillin;
    UlvMode mode;
  };
  const Variant variants[] = {
      {"parallel + fill-in bases (paper)", true, UlvMode::Parallel},
      {"parallel, plain bases", false, UlvMode::Parallel},
      {"sequential (Sec. II.D) + fill-in bases", true, UlvMode::Sequential},
      {"sequential, plain bases", false, UlvMode::Sequential},
  };

  Table t({"variant", "factor (s)", "residual", "dropped mass", "max rank",
           "64-core model (s)"});
  for (const auto& v : variants) {
    UlvOptions uo;
    uo.tol = 1e-6;
    uo.max_rank = 80;
    uo.fillin_augmentation = v.fillin;
    uo.mode = v.mode;
    uo.measure_dropped = true;
    uo.record_tasks = true;
    // Durations feed the 64-core model: record contention-free on 1 worker
    // so Parallel and Sequential variants are measured alike.
    uo.n_workers = 1;
    Timer tf;
    const UlvFactorization f(a, uo);
    const double ft = tf.seconds();

    Matrix b = Matrix::random(n, 1, rng);
    Matrix x = b;
    f.solve(x);
    Matrix ax(n, 1);
    kernel_matvec(kernel, tree.points(), x, ax);

    // Parallelism model: in Sequential mode the per-level elimination is one
    // serial chain, so the modeled parallel time is (roughly) the serial
    // elimination plus parallelizable setup; for the Parallel mode every
    // phase scales.
    UlvDistModel model{&f.stats(), &a.structure()};
    double t64 = model.shared_memory_time(64);
    if (v.mode == UlvMode::Sequential) {
      // The eliminate tasks of each level form a serial chain.
      double elim = 0.0;
      for (const auto& task : f.stats().tasks)
        if (std::string(task.kind) == "eliminate") elim += task.seconds;
      t64 = std::max(t64, elim);
    }
    t.add_row({v.name, Table::fmt(ft, 3), Table::fmt_sci(rel_error_fro(ax, b), 1),
               Table::fmt_sci(std::sqrt(f.stats().dropped_mass), 1),
               std::to_string(f.stats().max_rank), Table::fmt(t64, 4)});
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "Ablation: fill-in bases and dependency-free elimination "
                "(N=%d, tol=1e-6)", n);
  emit(t, title, "ablation_fillin");
  std::printf(
      "paper shape check: plain bases leave O(1) dropped mass and orders of\n"
      "magnitude worse residual; the sequential mode matches the parallel\n"
      "mode's accuracy but cannot use many cores.\n");
  return 0;
}
