#pragma once

/// Shared helpers for the paper-figure bench harnesses.
///
/// Every bench prints a markdown table with the same rows/series as the
/// paper's figure and writes a CSV next to it. Problem sizes default to what
/// a single scalar core handles in seconds-to-minutes; set H2_BENCH_SCALE=2
/// (4, 8, ...) to double (quadruple, ...) them on bigger machines, or a
/// fraction (0.5) to shrink them — single-size benches scale N directly,
/// size-sweep benches (fig9, fig10, table1) extend or trim their size list
/// via size_sweep(). The CI bench-smoke job runs at 0.5.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "blr/blr_matrix.hpp"
#include "core/ulv_factorization.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/assembly.hpp"
#include "kernels/kernel.hpp"
#include "util/env.hpp"
#include "util/flops.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace h2::bench {

/// Process-lifetime peak resident set in bytes (0 where unsupported). RSS
/// is monotone, so per-run deltas need the runs ordered small-to-large; the
/// benches print it as corroboration for the block-bytes counter, which IS
/// windowed per factorization.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

inline double scale() {
  const double s = env::get_double("H2_BENCH_SCALE", 1.0);
  return s > 0.0 ? s : 1.0;
}

/// The standard size sweep: H2_BENCH_SCALE=2 (4, ...) doubles the largest
/// entry once (twice, ...) per power of two, while a fractional scale trims
/// entries from the large end — so 0.5 shrinks the sweep benches too, not
/// just the single-size ones. Always keeps at least one size.
inline std::vector<int> size_sweep(std::vector<int> base) {
  for (long s = 1; s < scale(); s *= 2) base.push_back(base.back() * 2);
  for (double s = scale(); s < 1.0 && base.size() > 1; s *= 2) base.pop_back();
  return base;
}

/// PaRSEC-like per-task runtime overhead used when replaying the BLR task
/// DAG. The paper's Fig. 13 trace shows overhead tasks "almost similar" in
/// size to the useful tasks; our scalar kernels are ~50x slower per task
/// than the paper's MKL tiles, so the equivalent grain-to-overhead ratio
/// puts the modeled overhead at O(1 ms) per task. The dependency-free ULV
/// needs no task runtime (the paper's point), so no overhead applies to it.
constexpr double kRuntimeOverhead = 1e-3;

/// LORAPO's optimal tile grows with N (paper Fig. 12 finds 2048 optimal at
/// N=131072, ~5.7 sqrt(N)); the BLR benches follow the same rule so the
/// baseline keeps its O(N^2) complexity rather than the fixed-tile O(N^3/m).
inline int blr_tile_for(int n) {
  int t = 128;
  while (t * t < 16 * n && t < 2048) t *= 2;  // ~4 sqrt(N), power of two
  return t;
}

/// Default solver parameters used across the benches (paper Sec. IV setup,
/// adapted to this substrate; see EXPERIMENTS.md).
struct SolverConfig {
  int leaf = 128;
  double eta = 1.0;
  double tol = 1e-6;
  int max_rank = 80;  ///< skeleton-rank cap (the paper's ranks saturate ~180)
  double kernel_pv = 1e-4;
  /// Free factorization temporaries (fill-ins, generators, skeleton blocks)
  /// as their last DAG consumer retires. Default on; the memory benches flip
  /// it off once to measure the retain-everything peak they compare against.
  bool release_blocks = true;
};

struct UlvRun {
  double build_seconds = 0.0;
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;
  std::uint64_t factor_flops = 0;
  int max_rank = 0;
  double residual = 0.0;
  UlvStats stats;
  BlockStructure structure;
};

/// Build + factorize + solve with the dependency-free H2-ULV ("OUR CODE" in
/// the paper's figures); residual via streamed dense matvec. The TaskDag
/// executor runs on `n_workers` — the default of 1 keeps the recorded
/// per-task durations contention-free, which is what the scheduling
/// simulator replays (measure once serially, replay on P simulated cores);
/// pass more workers to watch the DAG actually overlap (bench_fig13_trace).
inline UlvRun run_ulv(const PointCloud& pts, const Kernel& kernel,
                      const SolverConfig& cfg, bool record_tasks = false,
                      int n_workers = 1) {
  UlvRun out;
  Rng rng(42);
  const ClusterTree tree = ClusterTree::build(pts, cfg.leaf, rng);

  Timer tb;
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, cfg.eta};
  ho.tol = 1e-2 * cfg.tol;
  ho.max_rank = cfg.max_rank;
  const H2Matrix a(tree, kernel, ho);
  out.build_seconds = tb.seconds();
  out.structure = a.structure();

  UlvOptions uo;
  uo.tol = cfg.tol;
  uo.max_rank = cfg.max_rank;
  uo.record_tasks = record_tasks;
  uo.n_workers = n_workers;
  uo.release_blocks = cfg.release_blocks;
  flops::reset();
  Timer tf;
  const UlvFactorization f(a, uo);
  out.factor_seconds = tf.seconds();
  out.factor_flops = flops::total();
  out.max_rank = f.stats().max_rank;
  out.stats = f.stats();

  const int n = tree.n_points();
  Matrix b = Matrix::random(n, 1, rng);
  Matrix x = b;
  Timer ts;
  // Core-API contract: solve() is in TREE ordering, so the residual matvec
  // below runs over tree.points() (the reordered cloud), keeping b, x, and
  // the operator in one indexing. Point-ordered callers use h2::Solver.
  f.solve(x);
  out.solve_seconds = ts.seconds();
  Matrix ax(n, 1);
  kernel_matvec(kernel, tree.points(), x, ax);
  out.residual = rel_error_fro(ax, b);
  return out;
}

struct BlrRun {
  double build_seconds = 0.0;
  double factor_seconds = 0.0;
  std::uint64_t factor_flops = 0;
  int max_rank = 0;
  double residual = 0.0;
  ExecStats exec;
  std::vector<std::vector<int>> successors;
  std::vector<int> owner_rows;
  std::vector<int> owner_cols;
  int n_tiles = 0;
};

/// Build + factorize + solve with the adaptive-rank BLR Cholesky baseline
/// ("LORAPO" in the paper's figures).
inline BlrRun run_blr(const PointCloud& pts, const Kernel& kernel,
                      const SolverConfig& cfg, int n_threads = 1) {
  BlrRun out;
  Rng rng(42);
  const ClusterTree tree = ClusterTree::build(pts, cfg.leaf, rng);

  Timer tb;
  BlrOptions bo;
  bo.tol = cfg.tol;
  bo.n_threads = n_threads;
  BlrMatrix blr(tree, kernel, bo);
  out.build_seconds = tb.seconds();

  flops::reset();
  Timer tf;
  out.exec = blr.factorize();
  out.factor_seconds = tf.seconds();
  out.factor_flops = flops::total();
  out.max_rank = blr.max_rank_used();
  out.successors = blr.graph().successors();
  out.owner_rows.reserve(blr.graph().meta().size());
  for (const TaskMeta& m : blr.graph().meta()) out.owner_rows.push_back(m.owner);
  out.owner_cols = blr.task_owner_col();
  out.n_tiles = blr.n_tiles();

  const int n = tree.n_points();
  Matrix b = Matrix::random(n, 1, rng);
  Matrix x = b;
  blr.solve(x);
  Matrix ax(n, 1);
  kernel_matvec(kernel, tree.points(), x, ax);
  out.residual = rel_error_fro(ax, b);
  return out;
}

/// Least-squares slope of log(y) vs log(x): the empirical complexity
/// exponent printed under each scaling table.
inline double fitted_exponent(const std::vector<double>& x,
                              const std::vector<double>& y) {
  const int n = static_cast<int>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

inline void emit(const Table& t, const std::string& title,
                 const std::string& csv_name) {
  std::printf("\n## %s\n\n%s\n", title.c_str(), t.markdown().c_str());
  const std::string path = csv_name + ".csv";
  if (t.write_csv(path)) std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace h2::bench
