/// Fig. 16: distributed-memory strong scaling on the hemoglobin
/// boundary-element problem (Yukawa potential on molecular surfaces) for two
/// problem sizes, up to thousands of cores. Substitution (DESIGN.md): the
/// geometry is our pseudo-hemoglobin crowd, and the cluster is simulated —
/// real measured task durations replayed through the paper's process-tree
/// partitioning for the ULV (subtree RankMap pinning with the alpha-beta
/// model charged on every cross-rank DAG edge — CommCharging::EdgeCharged,
/// the same mechanism Fig. 11 replays without comm; the closed-form
/// per-level Allgather term survives as the Analytic ablation, compared
/// side by side below), and through a block-cyclic task DAG with alpha-beta
/// communication and runtime overhead for the BLR baseline.
#include <cstdlib>

#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const std::vector<int> sizes{static_cast<int>(2048 * scale()),
                               static_cast<int>(4096 * scale())};
  const std::vector<int> ranks{8, 16, 32, 64, 128, 256, 512, 1024};
  // The edge-vs-analytic P sweep stays in the regime where ranks still split
  // real subtrees at these N (the headline table shows the saturated tail).
  const std::vector<int> sweep_ranks{1, 2, 4, 8, 16};
  const CommModel comm;  // 2 us latency, 10 GB/s

  Table t({"cores", "ULV N=" + std::to_string(sizes[0]),
           "ULV N=" + std::to_string(sizes[1]),
           "BLR N=" + std::to_string(sizes[0]),
           "BLR N=" + std::to_string(sizes[1])});
  Table tc({"ranks", "edge N=" + std::to_string(sizes[0]),
            "analytic N=" + std::to_string(sizes[0]),
            "edge N=" + std::to_string(sizes[1]),
            "analytic N=" + std::to_string(sizes[1])});

  std::vector<std::vector<double>> ulv_times(sizes.size()),
      blr_times(sizes.size()), edge_times(sizes.size()),
      analytic_times(sizes.size());
  std::vector<double> nocomm_serial(sizes.size(), 0.0);
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const int n = sizes[si];
    Rng rng(1);
    const PointCloud pts = crowded_molecules(n, rng, 8);
    const double diam = cloud_diameter(pts);
    const YukawaKernel kernel(2.0 / diam, 1e-4 * diam);
    SolverConfig cfg;
    cfg.leaf = 64;
    cfg.tol = 1e-6;
    cfg.max_rank = 64;

    const UlvRun ulv = run_ulv(pts, kernel, cfg, /*record_tasks=*/true);
    UlvDistModel model{&ulv.stats, &ulv.structure};

    SolverConfig bcfg = cfg;
    bcfg.leaf = blr_tile_for(n);
    const BlrRun blr = run_blr(pts, kernel, bcfg);
    ScheduleInput in;
    const int nt = static_cast<int>(blr.exec.records.size());
    in.durations.resize(nt);
    for (const auto& r : blr.exec.records) in.durations[r.id] = r.duration();
    in.successors = blr.successors;
    in.per_task_overhead = kRuntimeOverhead;
    // 2-D block-cyclic tile ownership; each task's output is one tile.
    in.owner.resize(nt);
    for (int t = 0; t < nt; ++t)
      in.owner[t] = blr.owner_rows[t] + blr.n_tiles * blr.owner_cols[t];
    const double tile_bytes = 8.0 * bcfg.leaf * bcfg.leaf;
    in.out_bytes.assign(in.durations.size(), tile_bytes);

    for (const int p : ranks) {
      // The 8..1024-rank tail is where the paper's figure lives, far beyond
      // what these miniature substitute problems can really split (their
      // subtree count runs out by P ~ 16-64). The closed-form Allgather
      // model extrapolates that regime — redundant upper levels keep the
      // communicator from growing — so the headline table charges Analytic;
      // the EdgeCharged default is exact about the recorded DAG and is
      // compared head-to-head in the P sweep below, where ranks still own
      // real subtrees.
      ulv_times[si].push_back(model.time(p, comm, CommCharging::Analytic));
      blr_times[si].push_back(list_schedule(in, p, comm).makespan);
    }
    // One recorded DAG, two charging modes: the rank-map edge charges vs the
    // closed-form Allgather term, over the strong-scaling P sweep.
    nocomm_serial[si] = model.shared_memory_time(1);
    for (const int p : sweep_ranks) {
      edge_times[si].push_back(model.time(p, comm, CommCharging::EdgeCharged));
      analytic_times[si].push_back(
          model.time(p, comm, CommCharging::Analytic));
    }
  }
  for (std::size_t pi = 0; pi < ranks.size(); ++pi) {
    t.add_row({std::to_string(ranks[pi]), Table::fmt(ulv_times[0][pi], 4),
               Table::fmt(ulv_times[1][pi], 4), Table::fmt(blr_times[0][pi], 4),
               Table::fmt(blr_times[1][pi], 4)});
  }
  emit(t, "Fig. 16: distributed strong scaling, Yukawa pseudo-hemoglobin "
          "(simulated ranks, measured task durations, analytic tail "
          "extrapolation)",
       "fig16_distributed");

  for (std::size_t pi = 0; pi < sweep_ranks.size(); ++pi) {
    tc.add_row({std::to_string(sweep_ranks[pi]),
                Table::fmt(edge_times[0][pi], 4),
                Table::fmt(analytic_times[0][pi], 4),
                Table::fmt(edge_times[1][pi], 4),
                Table::fmt(analytic_times[1][pi], 4)});
  }
  emit(tc, "Fig. 16 (charging ablation): cross-rank edge charges vs the "
           "analytic Allgather term, same recorded DAG",
       "fig16_edge_vs_analytic");

  const double gap_small = blr_times[0].back() / ulv_times[0].back();
  const double gap_large = blr_times[1].back() / ulv_times[1].back();
  std::printf(
      "paper shape check: at the most cores the ULV leads BLR by %.2fx at\n"
      "N=%d and %.2fx at N=%d — the gap widens with N (%s), which is the\n"
      "paper's mechanism for its 4700x at N=954k on 10240 cores (O(N) vs\n"
      "O(N^2) + runtime overhead).\n",
      gap_small, sizes[0], gap_large, sizes[1],
      gap_large > gap_small ? "yes" : "no");

  // Sanity gate (CI): at P=1 the rank map puts every task on rank 0, so the
  // edge-charged time must equal the no-comm replay bitwise even under a
  // real CommModel — any drift means phantom communication is being charged.
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    if (edge_times[si][0] != nocomm_serial[si]) {
      std::fprintf(stderr,
                   "FAIL: P=1 edge-charged time %.17g != no-comm replay "
                   "%.17g at N=%d\n",
                   edge_times[si][0], nocomm_serial[si], sizes[si]);
      return EXIT_FAILURE;
    }
  }
  std::printf("P=1 sanity: edge-charged == no-comm replay at both sizes "
              "(alpha-beta charges only real cross-rank edges). OK\n");
  return 0;
}
