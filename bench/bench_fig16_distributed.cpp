/// Fig. 16: distributed-memory strong scaling on the hemoglobin
/// boundary-element problem (Yukawa potential on molecular surfaces) for two
/// problem sizes, up to thousands of cores. Substitution (DESIGN.md): the
/// geometry is our pseudo-hemoglobin crowd, and the cluster is simulated —
/// real measured task durations replayed through the paper's process-tree
/// partitioning (redundant upper levels + split-communicator Allgathers)
/// for the ULV, and through a block-cyclic task DAG with alpha-beta
/// communication and runtime overhead for the BLR baseline.
#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"

#include "bench_common.hpp"

int main() {
  using namespace h2;
  using namespace h2::bench;

  const std::vector<int> sizes{static_cast<int>(2048 * scale()),
                               static_cast<int>(4096 * scale())};
  const std::vector<int> ranks{8, 16, 32, 64, 128, 256, 512, 1024};
  const CommModel comm;  // 2 us latency, 10 GB/s

  Table t({"cores", "ULV N=" + std::to_string(sizes[0]),
           "ULV N=" + std::to_string(sizes[1]),
           "BLR N=" + std::to_string(sizes[0]),
           "BLR N=" + std::to_string(sizes[1])});

  std::vector<std::vector<double>> ulv_times(sizes.size()),
      blr_times(sizes.size());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const int n = sizes[si];
    Rng rng(1);
    const PointCloud pts = crowded_molecules(n, rng, 8);
    const double diam = cloud_diameter(pts);
    const YukawaKernel kernel(2.0 / diam, 1e-4 * diam);
    SolverConfig cfg;
    cfg.leaf = 64;
    cfg.tol = 1e-6;
    cfg.max_rank = 64;

    const UlvRun ulv = run_ulv(pts, kernel, cfg, /*record_tasks=*/true);
    UlvDistModel model{&ulv.stats, &ulv.structure};

    SolverConfig bcfg = cfg;
    bcfg.leaf = blr_tile_for(n);
    const BlrRun blr = run_blr(pts, kernel, bcfg);
    ScheduleInput in;
    const int nt = static_cast<int>(blr.exec.records.size());
    in.durations.resize(nt);
    for (const auto& r : blr.exec.records) in.durations[r.id] = r.duration();
    in.successors = blr.successors;
    in.per_task_overhead = kRuntimeOverhead;
    // 2-D block-cyclic tile ownership; each task's output is one tile.
    in.owner.resize(nt);
    for (int t = 0; t < nt; ++t)
      in.owner[t] = blr.owner_rows[t] + blr.n_tiles * blr.owner_cols[t];
    const double tile_bytes = 8.0 * bcfg.leaf * bcfg.leaf;
    in.out_bytes.assign(in.durations.size(), tile_bytes);

    for (const int p : ranks) {
      ulv_times[si].push_back(model.time(p, comm));
      blr_times[si].push_back(list_schedule(in, p, comm).makespan);
    }
  }
  for (std::size_t pi = 0; pi < ranks.size(); ++pi) {
    t.add_row({std::to_string(ranks[pi]), Table::fmt(ulv_times[0][pi], 4),
               Table::fmt(ulv_times[1][pi], 4), Table::fmt(blr_times[0][pi], 4),
               Table::fmt(blr_times[1][pi], 4)});
  }
  emit(t, "Fig. 16: distributed strong scaling, Yukawa pseudo-hemoglobin "
          "(simulated ranks, measured task durations)",
       "fig16_distributed");

  const double gap_small = blr_times[0].back() / ulv_times[0].back();
  const double gap_large = blr_times[1].back() / ulv_times[1].back();
  std::printf(
      "paper shape check: at the most cores the ULV leads BLR by %.2fx at\n"
      "N=%d and %.2fx at N=%d — the gap widens with N (%s), which is the\n"
      "paper's mechanism for its 4700x at N=954k on 10240 cores (O(N) vs\n"
      "O(N^2) + runtime overhead).\n",
      gap_small, sizes[0], gap_large, sizes[1],
      gap_large > gap_small ? "yes" : "no");
  return 0;
}
