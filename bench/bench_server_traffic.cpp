/// Serving-tier traffic bench: synthetic open-loop Poisson arrivals against
/// one cached factorization, at increasing offered rates, in two admission
/// modes:
///
///   latency — every request solved the moment it arrives (coalesce off),
///   batched — concurrently-arriving single-RHS requests ride one blocked
///             sweep under the ~1 ms admission deadline (the h2::Server
///             default),
///
/// both under the server's deterministic (width-stable) contract, so the
/// comparison isolates pure batching: every cell's answers are bitwise
/// identical to the serial references, checked per request. Offered rates
/// are multiples of the measured single-RHS capacity mu; at saturation the
/// batched mode must sustain >= 1.5x the latency mode's throughput (the PR
/// acceptance bar — exit is nonzero otherwise, and nonzero on any bitwise
/// divergence). Writes server_traffic.csv and BENCH_SERVER.json (cells plus
/// per-rate batched/latency throughput ratios, one record per line for the
/// CI awk gate).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/server.hpp"

#include "bench_common.hpp"

namespace {

using namespace h2;

Matrix column(const Matrix& m, int j) {
  Matrix c(m.rows(), 1);
  std::memcpy(c.data(), m.view().col(j),
              sizeof(double) * static_cast<std::size_t>(m.rows()));
  return c;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<std::size_t>(a.rows())) == 0;
}

struct Cell {
  double rate_mult;   // offered rate as a multiple of single-RHS capacity
  const char* mode;   // "latency" / "batched"
  double offered_rps;
  double rps;         // achieved throughput (completed / wall)
  double p50_ms, p99_ms;
  double mean_batch;  // rhs_served / backend_solves
};

}  // namespace

int main() {
  using namespace h2::bench;

  const int n = static_cast<int>(2048 * scale());
  const int clients = static_cast<int>(env::get_int("H2_SERVER_CLIENTS", 8));
  const int requests = static_cast<int>(std::max<long>(
      48, env::get_int("H2_SERVER_REQUESTS", static_cast<long>(96 * scale()))));
  // Each cell replays its schedule this many times and reports the BEST
  // throughput: on a small shared host a single scheduler hiccup can halve
  // one replay's wall time, and stalls only ever push throughput down, so
  // max-of-reps is the stable estimator the CI ratio gate needs.
  const int reps = static_cast<int>(std::max<long>(1, env::get_int("H2_SERVER_REPS", 3)));
  const int distinct = 16;  // distinct rhs columns cycled through the traffic
  Rng rng(42);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-4);
  SolverConfig cfg;
  cfg.tol = 1e-6;
  const SolverOptions sopt = SolverOptions{}
                                 .with_leaf_size(cfg.leaf)
                                 .with_eta(cfg.eta)
                                 .with_tol(cfg.tol)
                                 .with_max_rank(cfg.max_rank);
  const Matrix B = Matrix::random(n, distinct, rng);

  // Serial references + single-RHS capacity mu, measured in the same
  // deterministic (width-stable) mode every traffic cell runs under — so
  // rate multiples and the 1.5x bar are relative to what latency mode can
  // actually do, and every traffic answer can be checked bitwise.
  std::vector<Matrix> refs;
  double mu;
  {
    Server cal(ServerOptions{}.with_coalesce(false));
    const Server::FactorHandle f = cal.acquire(pts, kernel, sopt);
    refs.reserve(distinct);
    for (int j = 0; j < distinct; ++j)
      refs.push_back(f.solver().solve(column(B, j)));  // also warms the path
    const int cal_reps = 8;
    Timer t;
    for (int r = 0; r < cal_reps; ++r) (void)cal.solve(f, column(B, r % distinct));
    mu = cal_reps / t.seconds();
  }
  std::printf("N=%d, single-RHS capacity mu = %.1f solves/s "
              "(deterministic mode), %d clients, %d requests/cell\n",
              n, mu, clients, requests);

  std::atomic<int> divergent{0};
  auto run_cell = [&](double rate_mult, bool batched) -> Cell {
    const double rate = rate_mult * mu;
    Server server(batched ? ServerOptions{}
                          : ServerOptions{}.with_coalesce(false));
    const Server::FactorHandle f = server.acquire(pts, kernel, sopt);

    // Open-loop Poisson schedule: exponential inter-arrivals, seeded by the
    // rate only, so both modes replay the IDENTICAL arrival process.
    std::mt19937_64 g(static_cast<std::uint64_t>(rate_mult * 1024) + 7);
    std::exponential_distribution<double> inter(rate);
    std::vector<double> arrival(static_cast<std::size_t>(requests));
    double at = 0.0;
    for (double& a : arrival) a = (at += inter(g));

    double best_rps = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<std::thread> cs;
      cs.reserve(static_cast<std::size_t>(clients));
      const auto t0 = std::chrono::steady_clock::now();
      for (int c = 0; c < clients; ++c) {
        cs.emplace_back([&, c] {
          for (int i = c; i < requests; i += clients) {
            std::this_thread::sleep_until(
                t0 + std::chrono::duration<double>(arrival[static_cast<std::size_t>(i)]));
            const Matrix x = server.solve(f, column(B, i % distinct));
            if (!bitwise_equal(x, refs[static_cast<std::size_t>(i % distinct)]))
              ++divergent;
          }
        });
      }
      for (std::thread& th : cs) th.join();
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      best_rps = std::max(best_rps, requests / elapsed);
    }
    // Latency percentiles / batch shape come from the accumulated metrics
    // window across all replays — same arrival process each time.
    const ServerStats st = server.stats();
    return {rate_mult,
            batched ? "batched" : "latency",
            rate,
            best_rps,
            st.p50_ms,
            st.p99_ms,
            static_cast<double>(st.rhs_served) /
                static_cast<double>(std::max<std::uint64_t>(1, st.backend_solves))};
  };

  const std::vector<double> rate_mults = {0.25, 1.0, 2.0, 4.0};
  std::vector<Cell> cells;
  for (const double rm : rate_mults) {
    cells.push_back(run_cell(rm, /*batched=*/false));
    cells.push_back(run_cell(rm, /*batched=*/true));
  }

  Table t({"rate (x mu)", "mode", "offered req/s", "achieved req/s", "p50 (ms)",
           "p99 (ms)", "mean batch"});
  for (const Cell& c : cells)
    t.add_row({Table::fmt(c.rate_mult, 2), c.mode, Table::fmt(c.offered_rps, 1),
               Table::fmt(c.rps, 1), Table::fmt(c.p50_ms, 2),
               Table::fmt(c.p99_ms, 2), Table::fmt(c.mean_batch, 2)});
  char title[160];
  std::snprintf(title, sizeof(title),
                "Server traffic, N=%d, tol=%.0e, open-loop Poisson, %d clients",
                n, cfg.tol, clients);
  emit(t, title, "server_traffic");

  // Per-rate batched/latency throughput ratios: the host-portable trajectory
  // the CI gate diffs (both sides of each ratio are measured on one host).
  std::vector<std::pair<double, double>> ratios;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2)
    ratios.emplace_back(cells[i].rate_mult, cells[i + 1].rps / cells[i].rps);

  std::ofstream js("BENCH_SERVER.json");
  js << "{\n  \"bench\": \"server_traffic\",\n  \"n\": " << n
     << ",\n  \"tol\": " << cfg.tol << ",\n  \"clients\": " << clients
     << ",\n  \"requests_per_cell\": " << requests
     << ",\n  \"replays_per_cell\": " << reps
     << ",\n  \"host_cores\": " << std::thread::hardware_concurrency()
     << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    js << "    {\"rate_mult\": " << c.rate_mult << ", \"mode\": \"" << c.mode
       << "\", \"offered_rps\": " << c.offered_rps << ", \"rps\": " << c.rps
       << ", \"p50_ms\": " << c.p50_ms << ", \"p99_ms\": " << c.p99_ms
       << ", \"mean_batch\": " << c.mean_batch << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  js << "  ],\n  \"ratios\": [\n";
  for (std::size_t i = 0; i < ratios.size(); ++i)
    js << "    {\"rate_mult\": " << ratios[i].first
       << ", \"ratio\": " << ratios[i].second << "}"
       << (i + 1 < ratios.size() ? "," : "") << "\n";
  js << "  ]\n}\n";
  std::printf("(JSON trajectory written to BENCH_SERVER.json)\n");

  int failed = 0;
  if (divergent.load() != 0) {
    std::printf("FAILED: %d request(s) diverged bitwise from the serial "
                "references\n",
                divergent.load());
    failed = 1;
  }
  const double sat_ratio = ratios.back().second;
  std::printf("saturation check: batched/latency throughput at %.2gx mu = "
              "%.2fx (bar: >= 1.5x)\n",
              ratios.back().first, sat_ratio);
  if (sat_ratio < 1.5) {
    std::printf("FAILED: batched throughput under 1.5x latency mode at "
                "saturation\n");
    failed = 1;
  }
  return failed;
}
