#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;
using testing_support::ulv_solution_error;

/// Parameterized accuracy sweep: every kernel x geometry x admissibility
/// combination must solve to (a modest multiple of) the compression
/// tolerance, mirroring the paper's relative-L2-vs-dense-LU metric.
struct AccCase {
  Geometry geo;
  KernelKind kernel;
  Admissibility adm;
  double tol;
  double budget;  ///< acceptable error
};

class UlvAccuracyTest : public ::testing::TestWithParam<AccCase> {};

TEST_P(UlvAccuracyTest, SolutionErrorWithinBudget) {
  const AccCase c = GetParam();
  const Problem p = make_problem(400, 32, c.geo, c.kernel);
  H2BuildOptions ho;
  ho.admissibility = {c.adm, 0.75};
  ho.tol = 1e-2 * c.tol;
  UlvOptions u;
  u.tol = c.tol;
  const double err = ulv_solution_error(p, ho, u);
  EXPECT_LT(err, c.budget)
      << "geometry=" << static_cast<int>(c.geo)
      << " kernel=" << static_cast<int>(c.kernel)
      << " adm=" << static_cast<int>(c.adm) << " tol=" << c.tol;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsGeometries, UlvAccuracyTest,
    ::testing::Values(
        AccCase{Geometry::Cube, KernelKind::Laplace, Admissibility::Strong, 1e-8, 1e-4},
        AccCase{Geometry::Cube, KernelKind::Laplace, Admissibility::Weak, 1e-8, 1e-4},
        AccCase{Geometry::Cube, KernelKind::Yukawa, Admissibility::Strong, 1e-8, 1e-4},
        AccCase{Geometry::Sphere, KernelKind::Laplace, Admissibility::Strong, 1e-8, 1e-4},
        AccCase{Geometry::Sphere, KernelKind::Yukawa, Admissibility::Weak, 1e-8, 1e-4},
        AccCase{Geometry::Molecule, KernelKind::Yukawa, Admissibility::Strong, 1e-8, 1e-4},
        AccCase{Geometry::Molecule, KernelKind::Laplace, Admissibility::Strong, 1e-8, 1e-4},
        AccCase{Geometry::Crowded, KernelKind::Yukawa, Admissibility::Strong, 1e-8, 1e-4},
        // Covariance kernels with a small nugget are worse-conditioned, so
        // the dense-reference comparison amplifies the compression error.
        AccCase{Geometry::Cube, KernelKind::Gaussian, Admissibility::Strong, 1e-8, 2e-3},
        AccCase{Geometry::Cube, KernelKind::Matern, Admissibility::Strong, 1e-8, 2e-3}));

/// Error must track the tolerance knob (the paper's accuracy-controllability
/// claim).
class UlvToleranceTest : public ::testing::TestWithParam<double> {};

TEST_P(UlvToleranceTest, ErrorScalesWithTolerance) {
  const double tol = GetParam();
  const Problem p = make_problem(400, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-2 * tol;
  UlvOptions u;
  u.tol = tol;
  const double err = ulv_solution_error(p, ho, u);
  // The kernel matrix's conditioning puts a floor under the achievable
  // solution error regardless of the compression tolerance.
  EXPECT_LT(err, std::max(1e3 * tol, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Tols, UlvToleranceTest,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10));

TEST(UlvAccuracy, TighterToleranceIsMoreAccurate) {
  const Problem p = make_problem(400, 32, Geometry::Cube, KernelKind::Laplace);
  double prev = 1.0;
  int improvements = 0;
  for (const double tol : {1e-3, 1e-6, 1e-10}) {
    H2BuildOptions ho;
    ho.admissibility = {Admissibility::Strong, 0.75};
    ho.tol = 1e-2 * tol;
    UlvOptions u;
    u.tol = tol;
    const double err = ulv_solution_error(p, ho, u);
    if (err < prev) ++improvements;
    prev = err;
  }
  EXPECT_GE(improvements, 2);
}

/// Residual-based check at a size where a dense reference is still cheap,
/// using the streamed matvec (the method benches use at large N).
TEST(UlvAccuracy, ResidualSmallViaStreamedMatvec) {
  const Problem p = make_problem(600, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-10;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  Rng rng(9);
  const Matrix b = Matrix::random(600, 1, rng);
  Matrix x = b;
  f.solve(x);
  Matrix ax(600, 1);
  kernel_matvec(*p.kernel, p.tree->points(), x, ax);
  EXPECT_LT(rel_error_fro(ax, b), 1e-4);
}

/// Different leaf sizes must all converge (Fig. 12's knob).
class UlvLeafSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(UlvLeafSizeTest, SolvesAtAnyLeafSize) {
  const Problem p =
      make_problem(512, GetParam(), Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-10;
  UlvOptions u;
  u.tol = 1e-8;
  const double err = ulv_solution_error(p, ho, u);
  EXPECT_LT(err, 1e-4) << "leaf=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Leaves, UlvLeafSizeTest,
                         ::testing::Values(16, 32, 64, 128, 256));

}  // namespace
}  // namespace h2
