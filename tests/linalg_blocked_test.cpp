// Property tests for the blocked/packed kernel substrate (gemm_kernel.hpp):
// every blocked kernel is checked against the retained naive reference
// (linalg/naive.hpp) over rectangular and odd shapes, strided sub-views,
// alpha/beta edge cases, and the batched entry points are checked bitwise
// against the equivalent loops (that equality is what lets the ULV bodies
// batch without perturbing cross-executor determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "linalg/batch.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/gemm_kernel.hpp"
#include "linalg/lu.hpp"
#include "linalg/naive.hpp"
#include "linalg/qr.hpp"
#include "util/flops.hpp"
#include "util/rng.hpp"

namespace h2 {
namespace {

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double d = 0.0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      d = std::max(d, std::fabs(a(i, j) - b(i, j)));
  return d;
}

bool bitwise_equal(ConstMatrixView a, ConstMatrixView b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      if (a(i, j) != b(i, j)) return false;
  return true;
}

TEST(GemmTiling, ReportsSaneConstants) {
  const GemmTiling t = gemm_tiling();
  EXPECT_GE(t.mr, 4);
  EXPECT_GE(t.nr, 4);
  EXPECT_EQ(t.mc % t.mr, 0);
  EXPECT_GT(t.kc, 0);
  EXPECT_GT(t.nc, 0);
  EXPECT_NE(t.isa, nullptr);
}

TEST(BlockedGemm, MatchesNaiveAcrossShapesAndTransposes) {
  // Odd, rectangular, and microtile-straddling shapes: exact multiples of the
  // register tile, one off either way, and skinny panels.
  const int dims[] = {1, 3, 7, 16, 17, 31, 64, 65, 96, 130};
  Rng rng(7);
  for (const int m : dims) {
    for (const int n : dims) {
      const int k = ((m + n) % 5 + 1) * 13;  // odd inner dims, up to 65
      for (const Trans ta : {Trans::No, Trans::Yes}) {
        for (const Trans tb : {Trans::No, Trans::Yes}) {
          const Matrix a = (ta == Trans::No) ? Matrix::random(m, k, rng)
                                             : Matrix::random(k, m, rng);
          const Matrix b = (tb == Trans::No) ? Matrix::random(k, n, rng)
                                             : Matrix::random(n, k, rng);
          Matrix c0 = Matrix::random(m, n, rng);
          Matrix c1 = Matrix::from(c0);
          naive::gemm(0.5, a, ta, b, tb, -2.0, c0);
          gemm(0.5, a, ta, b, tb, -2.0, c1);
          EXPECT_LT(max_abs_diff(c0, c1), 1e-12 * std::max(1, k))
              << "m=" << m << " n=" << n << " k=" << k
              << " ta=" << int(ta) << " tb=" << int(tb);
        }
      }
    }
  }
}

TEST(BlockedGemm, LargeSquareMatchesNaive) {
  Rng rng(11);
  const int n = 333;  // forces multiple MC/KC tiles with edge microtiles
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c0(n, n), c1(n, n);
  naive::gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c0);
  gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c1);
  EXPECT_LT(max_abs_diff(c0, c1), 1e-10);
}

TEST(BlockedGemm, StridedSubviewsMatchNaive) {
  // Operands and output living inside a larger parent (ld > rows).
  Rng rng(13);
  Matrix pa = Matrix::random(200, 200, rng);
  Matrix pb = Matrix::random(200, 200, rng);
  Matrix pc0 = Matrix::random(200, 200, rng);
  Matrix pc1 = Matrix::from(pc0);
  const int m = 97, n = 65, k = 83;
  ConstMatrixView a = pa.block(3, 5, m, k);
  ConstMatrixView b = pb.block(11, 2, k, n);
  naive::gemm(-1.5, a, Trans::No, b, Trans::No, 1.0, pc0.block(7, 9, m, n));
  gemm(-1.5, a, Trans::No, b, Trans::No, 1.0, pc1.block(7, 9, m, n));
  EXPECT_LT(max_abs_diff(pc0, pc1), 1e-11);
  // The parent outside the written block is untouched bitwise.
  for (int j = 0; j < 200; ++j)
    for (int i = 0; i < 200; ++i)
      if (i < 7 || i >= 7 + m || j < 9 || j >= 9 + n) {
        ASSERT_EQ(pc0(i, j), pc1(i, j)) << i << "," << j;
      }
}

TEST(BlockedGemm, BetaZeroOverwritesNaNPoisonedC) {
  // beta == 0 must be a full overwrite, never 0 * C (which would keep NaNs).
  Rng rng(17);
  const int n = 150;  // blocked path
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      c(i, j) = std::numeric_limits<double>::quiet_NaN();
  gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) ASSERT_FALSE(std::isnan(c(i, j)));
  // Same for the small-size (naive) dispatch.
  Matrix cs(4, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i)
      cs(i, j) = std::numeric_limits<double>::quiet_NaN();
  gemm(1.0, a.block(0, 0, 4, 4), Trans::No, b.block(0, 0, 4, 4), Trans::No,
       0.0, cs);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) ASSERT_FALSE(std::isnan(cs(i, j)));
}

TEST(BlockedGemm, AlphaZeroLeavesScaledCAndSkipsProduct) {
  Rng rng(19);
  const Matrix a = Matrix::random(140, 140, rng);
  const Matrix b = Matrix::random(140, 140, rng);
  Matrix c = Matrix::random(140, 140, rng);
  const Matrix c0 = Matrix::from(c);
  gemm(0.0, a, Trans::No, b, Trans::No, 3.0, c);
  for (int j = 0; j < 140; ++j)
    for (int i = 0; i < 140; ++i) ASSERT_EQ(c(i, j), 3.0 * c0(i, j));
}

TEST(BlockedTrsm, AllSideUploTransDiagCombosMatchNaive) {
  Rng rng(23);
  for (const int t : {65, 97, 130}) {  // above the blocking threshold
    for (const Side side : {Side::Left, Side::Right}) {
      const int m = (side == Side::Left) ? t : 44;
      const int n = (side == Side::Left) ? 37 : t;
      for (const UpLo uplo : {UpLo::Lower, UpLo::Upper}) {
        for (const Trans trans : {Trans::No, Trans::Yes}) {
          for (const Diag diag : {Diag::NonUnit, Diag::Unit}) {
            Matrix a = Matrix::random(t, t, rng);
            if (diag == Diag::Unit) {
              // A unit triangle with O(1) off-diagonal entries is
              // exponentially ill-conditioned; keep row sums below 1 so the
              // comparison measures the kernels, not error amplification.
              scale(1.0 / t, a);
            }
            for (int i = 0; i < t; ++i) a(i, i) += t;  // well-conditioned
            Matrix b0 = Matrix::random(m, n, rng);
            Matrix b1 = Matrix::from(b0);
            naive::trsm(side, uplo, trans, diag, 0.5, a, b0);
            trsm(side, uplo, trans, diag, 0.5, a, b1);
            EXPECT_LT(max_abs_diff(b0, b1), 1e-11)
                << "t=" << t << " side=" << int(side) << " uplo=" << int(uplo)
                << " trans=" << int(trans) << " diag=" << int(diag);
          }
        }
      }
    }
  }
}

TEST(BlockedGetrf, FactorizationReconstructsAndPivotsLikeUnblocked) {
  Rng rng(29);
  for (const int n : {65, 130, 200}) {
    Matrix a0 = Matrix::random(n, n, rng);
    for (int i = 0; i < n; ++i) a0(i, i) += 2.0;
    Matrix lu = Matrix::from(a0);
    std::vector<int> piv;
    getrf(lu, piv);
    ASSERT_EQ(static_cast<int>(piv.size()), n);
    for (int p = 0; p < n; ++p) {
      ASSERT_GE(piv[p], p);
      ASSERT_LT(piv[p], n);
    }
    // P A = L U: apply the recorded swaps to A, rebuild L * U.
    Matrix pa = Matrix::from(a0);
    laswp(pa, piv, /*forward=*/true);
    Matrix l(n, n), u(n, n);
    for (int j = 0; j < n; ++j) {
      l(j, j) = 1.0;
      for (int i = j + 1; i < n; ++i) l(i, j) = lu(i, j);
      for (int i = 0; i <= j; ++i) u(i, j) = lu(i, j);
    }
    const Matrix rec = matmul(l, u);
    EXPECT_LT(max_abs_diff(pa, rec), 1e-10 * n) << "n=" << n;
    // And solves still work through getrs on the blocked factors.
    Matrix x = Matrix::random(n, 3, rng);
    const Matrix bb = matmul(a0, x);
    Matrix sol = Matrix::from(bb);
    getrs(lu, piv, sol);
    EXPECT_LT(max_abs_diff(sol, x), 1e-8 * n);
  }
}

TEST(BlockedPotrf, ReconstructsAndPreservesUpperTriangle) {
  Rng rng(31);
  for (const int n : {65, 130}) {
    // SPD via A = M M^T + n I.
    const Matrix m0 = Matrix::random(n, n, rng);
    Matrix a(n, n);
    gemm(1.0, m0, Trans::No, m0, Trans::Yes, 0.0, a);
    add_identity(a, static_cast<double>(n));
    const Matrix orig = Matrix::from(a);
    potrf(a);
    // The strict upper triangle is untouched (potrf's documented contract —
    // the blocked panel update must not leak into it).
    for (int j = 1; j < n; ++j)
      for (int i = 0; i < j; ++i) ASSERT_EQ(a(i, j), orig(i, j));
    Matrix l(n, n);
    for (int j = 0; j < n; ++j)
      for (int i = j; i < n; ++i) l(i, j) = a(i, j);
    Matrix rec(n, n);
    gemm(1.0, l, Trans::No, l, Trans::Yes, 0.0, rec);
    for (int j = 0; j < n; ++j)
      for (int i = j; i < n; ++i)
        ASSERT_NEAR(rec(i, j), orig(i, j), 1e-9 * n) << i << "," << j;
  }
}

TEST(BlockedQr, FactorizationReconstructsTallAndWide) {
  Rng rng(37);
  const int shapes[][2] = {{130, 70}, {70, 130}, {96, 96}, {65, 33}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1];
    const Matrix a0 = Matrix::random(m, n, rng);
    Matrix qr = Matrix::from(a0);
    std::vector<double> tau;
    householder_qr(qr, tau);
    const Matrix q = form_q(qr, tau, m);
    const Matrix r = extract_r(qr);
    // Q orthonormal.
    Matrix qtq(m, m);
    gemm(1.0, q, Trans::Yes, q, Trans::No, 0.0, qtq);
    add_identity(qtq, -1.0);
    double dev = 0.0;
    for (int j = 0; j < m; ++j)
      for (int i = 0; i < m; ++i) dev = std::max(dev, std::fabs(qtq(i, j)));
    EXPECT_LT(dev, 1e-12 * m) << m << "x" << n;
    // Q R == A (R is min(m,n) x n; use the matching Q columns).
    const int k = m < n ? m : n;
    const Matrix rec = matmul(q.block(0, 0, m, k), r);
    EXPECT_LT(max_abs_diff(rec, a0), 1e-11 * m) << m << "x" << n;
  }
}

TEST(Batched, GemmBatchBitwiseEqualsLoop) {
  Rng rng(41);
  std::vector<Matrix> as, bs, c_loop, c_batch;
  const int shapes[][3] = {{64, 64, 64}, {33, 65, 17}, {64, 64, 64},
                           {5, 3, 4},    {128, 32, 64}, {64, 64, 64}};
  for (const auto& s : shapes) {
    as.push_back(Matrix::random(s[0], s[2], rng));
    bs.push_back(Matrix::random(s[2], s[1], rng));
    c_loop.push_back(Matrix::random(s[0], s[1], rng));
    c_batch.push_back(Matrix::from(c_loop.back()));
  }
  // Shared left operand across several entries (the ULV pattern the pack
  // cache exists for): reuse as[0] for every same-shape entry.
  std::vector<GemmTask> tasks;
  for (std::size_t t = 0; t < as.size(); ++t) {
    const Matrix& a = (as[t].rows() == 64 && as[t].cols() == 64) ? as[0] : as[t];
    gemm(-0.5, a, Trans::No, bs[t], Trans::No, 2.0, c_loop[t]);
    tasks.push_back(
        {-0.5, a, Trans::No, bs[t], Trans::No, 2.0, c_batch[t]});
  }
  gemm_batch(tasks);
  for (std::size_t t = 0; t < as.size(); ++t)
    EXPECT_TRUE(bitwise_equal(c_loop[t], c_batch[t])) << "task " << t;
}

TEST(Batched, GemmBatchBitwiseWithOutputFeedingLaterInput) {
  // Task 0 writes C0; task 1 reads C0 as its A operand. The pack cache must
  // not serve task 1 a panel packed before task 0 ran.
  Rng rng(43);
  const int n = 96;
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  Matrix c0_l(n, n), c1_l(n, n), c0_b(n, n), c1_b(n, n);
  // Prime then loop.
  gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c0_l);
  gemm(1.0, c0_l, Trans::No, b, Trans::No, 0.0, c1_l);
  std::vector<GemmTask> tasks{
      {1.0, a, Trans::No, b, Trans::No, 0.0, c0_b},
      {1.0, c0_b, Trans::No, b, Trans::No, 0.0, c1_b},
  };
  gemm_batch(tasks);
  EXPECT_TRUE(bitwise_equal(c0_l, c0_b));
  EXPECT_TRUE(bitwise_equal(c1_l, c1_b));
}

TEST(Batched, TrsmBatchBitwiseEqualsLoop) {
  Rng rng(47);
  const int t = 130;
  Matrix a = Matrix::random(t, t, rng);
  for (int i = 0; i < t; ++i) a(i, i) += t;
  std::vector<Matrix> b_loop, b_batch;
  std::vector<TrsmTask> tasks;
  for (int x = 0; x < 4; ++x) {
    b_loop.push_back(Matrix::random(t, 20 + x, rng));
    b_batch.push_back(Matrix::from(b_loop.back()));
  }
  for (int x = 0; x < 4; ++x) {
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, a, b_loop[x]);
    tasks.push_back({Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, a,
                     b_batch[x]});
  }
  trsm_batch(tasks);
  for (int x = 0; x < 4; ++x)
    EXPECT_TRUE(bitwise_equal(b_loop[x], b_batch[x])) << "task " << x;
}

TEST(Batched, QrBatchBitwiseEqualsLoop) {
  Rng rng(53);
  std::vector<Matrix> a_loop, a_batch;
  std::vector<std::vector<double>> tau_loop(4), tau_batch(4);
  for (int x = 0; x < 4; ++x) {
    a_loop.push_back(Matrix::random(90, 40, rng));  // blocked QR path
    a_batch.push_back(Matrix::from(a_loop.back()));
  }
  std::vector<QrTask> tasks;
  for (int x = 0; x < 4; ++x) {
    householder_qr(a_loop[x], tau_loop[x]);
    tasks.push_back({a_batch[x], &tau_batch[x]});
  }
  qr_batch(tasks);
  for (int x = 0; x < 4; ++x) {
    EXPECT_TRUE(bitwise_equal(a_loop[x], a_batch[x])) << "task " << x;
    ASSERT_EQ(tau_loop[x].size(), tau_batch[x].size());
    for (std::size_t p = 0; p < tau_loop[x].size(); ++p)
      ASSERT_EQ(tau_loop[x][p], tau_batch[x][p]);
  }
}

TEST(Flops, BlockedKernelsReportSameAnalyticCountsAsBefore) {
  // The blocked paths must not double-count their internal gemms: public
  // entries report the analytic formula exactly once (fig10 accounting).
  Rng rng(59);
  const int n = 130;
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n);
  flops::reset();
  gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c);
  EXPECT_EQ(flops::total(), flops::gemm(n, n, n));

  Matrix tb = Matrix::random(n, 20, rng);
  Matrix tri = Matrix::from(a);
  for (int i = 0; i < n; ++i) tri(i, i) += n;
  flops::reset();
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, tri, tb);
  EXPECT_EQ(flops::total(), flops::trsm_left(n, 20));

  Matrix lu = Matrix::from(tri);
  std::vector<int> piv;
  flops::reset();
  getrf(lu, piv);
  EXPECT_EQ(flops::total(), flops::getrf(n, n));

  Matrix spd(n, n);
  gemm(1.0, a, Trans::No, a, Trans::Yes, 0.0, spd);
  add_identity(spd, static_cast<double>(n));
  flops::reset();
  potrf(spd);
  EXPECT_EQ(flops::total(), flops::potrf(n));

  Matrix qr = Matrix::from(a);
  std::vector<double> tau;
  flops::reset();
  householder_qr(qr, tau);
  EXPECT_EQ(flops::total(), flops::geqrf(n, n));
}

}  // namespace
}  // namespace h2
