#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "linalg/norms.hpp"
#include "util/rng.hpp"

namespace h2 {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, BlockViewsAliasStorage) {
  Matrix m(4, 4);
  MatrixView b = m.block(1, 2, 2, 2);
  b(0, 0) = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
  EXPECT_EQ(b.ld(), 4);
  EXPECT_EQ(b.rows(), 2);
}

TEST(Matrix, NestedBlocks) {
  Matrix m(6, 6);
  m(3, 4) = 5.0;
  ConstMatrixView outer = m.block(2, 2, 4, 4);
  ConstMatrixView inner = outer.block(1, 2, 2, 2);
  EXPECT_EQ(inner(0, 0), 5.0);
}

TEST(Matrix, Transposed) {
  Rng rng(1);
  const Matrix a = Matrix::random(3, 5, rng);
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 5);
  ASSERT_EQ(t.cols(), 3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 5; ++j) EXPECT_EQ(a(i, j), t(j, i));
}

TEST(Matrix, CopyFromView) {
  Rng rng(2);
  const Matrix a = Matrix::random(4, 4, rng);
  const Matrix b = Matrix::from(a.block(1, 1, 2, 3));
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_EQ(b(i, j), a(1 + i, 1 + j));
}

TEST(Matrix, ResizeDiscardsContents) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, HconcatShapesAndValues) {
  Rng rng(3);
  const Matrix a = Matrix::random(3, 2, rng);
  const Matrix b = Matrix::random(3, 4, rng);
  const Matrix c = hconcat({a, b});
  ASSERT_EQ(c.rows(), 3);
  ASSERT_EQ(c.cols(), 6);
  EXPECT_EQ(c(1, 1), a(1, 1));
  EXPECT_EQ(c(2, 3), b(2, 1));
}

TEST(Matrix, VconcatShapesAndValues) {
  Rng rng(4);
  const Matrix a = Matrix::random(2, 3, rng);
  const Matrix b = Matrix::random(4, 3, rng);
  const Matrix c = vconcat({a, b});
  ASSERT_EQ(c.rows(), 6);
  ASSERT_EQ(c.cols(), 3);
  EXPECT_EQ(c(0, 2), a(0, 2));
  EXPECT_EQ(c(3, 0), b(1, 0));
}

TEST(Matrix, ConcatWithEmptyBlocks) {
  const Matrix a(3, 0);
  const Matrix b(3, 2);
  const Matrix c = hconcat({a, b});
  EXPECT_EQ(c.cols(), 2);
  const Matrix d = vconcat({Matrix(0, 2), Matrix(3, 2)});
  EXPECT_EQ(d.rows(), 3);
}

TEST(Norms, FrobeniusAndMax) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = -4.0;
  EXPECT_DOUBLE_EQ(norm_fro(m), 5.0);
  EXPECT_DOUBLE_EQ(norm_max(m), 4.0);
}

TEST(Norms, RelativeError) {
  Matrix a(1, 2), b(1, 2);
  b(0, 0) = 3.0;
  b(0, 1) = 4.0;
  a(0, 0) = 3.0;
  a(0, 1) = 4.5;
  EXPECT_NEAR(rel_error_fro(a, b), 0.1, 1e-15);
  EXPECT_NEAR(rel_error_fro(b, b), 0.0, 1e-15);
}

}  // namespace
}  // namespace h2
