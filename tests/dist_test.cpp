#include <gtest/gtest.h>

#include "blr/blr_matrix.hpp"
#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

ScheduleInput chain(int n, double dur) {
  ScheduleInput in;
  in.durations.assign(n, dur);
  in.successors.resize(n);
  for (int i = 0; i + 1 < n; ++i) in.successors[i].push_back(i + 1);
  return in;
}

ScheduleInput independent(int n, double dur) {
  ScheduleInput in;
  in.durations.assign(n, dur);
  in.successors.resize(n);
  return in;
}

TEST(ScheduleSim, ChainIsSerialRegardlessOfWorkers) {
  const ScheduleInput in = chain(10, 1.0);
  const CommModel cm;
  EXPECT_NEAR(list_schedule(in, 1, cm).makespan, 10.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 8, cm).makespan, 10.0, 1e-12);
  EXPECT_NEAR(critical_path(in), 10.0, 1e-12);
}

TEST(ScheduleSim, IndependentTasksScalePerfectly) {
  const ScheduleInput in = independent(64, 1.0);
  const CommModel cm;
  EXPECT_NEAR(list_schedule(in, 1, cm).makespan, 64.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 8, cm).makespan, 8.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 64, cm).makespan, 1.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 64, cm).efficiency(64), 1.0, 1e-9);
}

TEST(ScheduleSim, MakespanBounds) {
  // Random-ish DAG: makespan must sit between critical path and serial time.
  ScheduleInput in;
  const int n = 50;
  Rng rng(1);
  in.durations.resize(n);
  in.successors.resize(n);
  for (int i = 0; i < n; ++i) {
    in.durations[i] = rng.uniform(0.1, 1.0);
    for (int j = i + 1; j < n; ++j)
      if (rng.uniform() < 0.08) in.successors[i].push_back(j);
  }
  const CommModel cm;
  const double serial = list_schedule(in, 1, cm).makespan;
  const double p4 = list_schedule(in, 4, cm).makespan;
  const double cp = critical_path(in);
  EXPECT_LE(cp, p4 + 1e-9);
  EXPECT_LE(p4, serial + 1e-9);
  EXPECT_GE(p4, serial / 4 - 1e-9);
}

TEST(ScheduleSim, PerTaskOverheadHurtsSmallTasks) {
  ScheduleInput in = independent(100, 1e-4);
  in.per_task_overhead = 1e-4;  // overhead comparable to work: Fig. 13 regime
  const CommModel cm;
  const double t = list_schedule(in, 4, cm).makespan;
  EXPECT_NEAR(t, 100.0 / 4 * 2e-4, 1e-9);
  EXPECT_NEAR(list_schedule(in, 4, cm).efficiency(4), 0.5, 1e-6);
}

TEST(ScheduleSim, CommCostDelaysCrossWorkerEdges) {
  // Two tasks in a chain with large output: pinning them to different
  // workers pays the alpha-beta cost; same worker does not.
  ScheduleInput in = chain(2, 1.0);
  in.out_bytes = {1e9, 1e9};
  CommModel cm;
  cm.alpha = 0.0;
  cm.beta = 1e-9;  // 1 GB/s -> 1 s transfer
  in.owner = {0, 0};
  EXPECT_NEAR(list_schedule(in, 2, cm).makespan, 2.0, 1e-9);
  in.owner = {0, 1};
  EXPECT_NEAR(list_schedule(in, 2, cm).makespan, 3.0, 1e-9);
}

TEST(ScheduleSim, PinnedOwnersSerializeSharedWorker) {
  ScheduleInput in = independent(10, 1.0);
  in.owner.assign(10, 3);  // all pinned to one worker
  const CommModel cm;
  EXPECT_NEAR(list_schedule(in, 8, cm).makespan, 10.0, 1e-12);
}

TEST(UlvDistModel, SharedMemoryModelScalesAndSaturates) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.n_workers = 1;  // contention-free durations for the replay model
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  const double t1 = model.shared_memory_time(1);
  const double t4 = model.shared_memory_time(4);
  const double t64 = model.shared_memory_time(64);
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t4, t1);
  EXPECT_GE(t1 / t4, 1.5);   // real speedup
  EXPECT_LE(t1 / t4, 4.01);  // bounded by worker count
  EXPECT_LE(t64, t4);
}

TEST(UlvDistModel, DistributedModelMonotoneAndCommBounded) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.n_workers = 1;  // contention-free durations for the replay model
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  const CommModel cm;
  const double t1 = model.time(1, cm);
  const double t4 = model.time(4, cm);
  const double t16 = model.time(16, cm);
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t4, t1);
  EXPECT_LE(t16, t4 + 1e-6);
}

TEST(BlrDistReplay, DagReplayShowsLimitedScaling) {
  // Replaying the measured BLR DAG: speedup exists but is capped by the
  // trailing-dependency critical path.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  BlrOptions o;
  o.tol = 1e-6;
  BlrMatrix blr(*p.tree, *p.kernel, o);
  const ExecStats stats = blr.factorize();
  ScheduleInput in;
  in.durations.resize(stats.records.size());
  for (const auto& r : stats.records) in.durations[r.id] = r.duration();
  in.successors = blr.graph().successors();
  const CommModel cm;
  const double t1 = list_schedule(in, 1, cm).makespan;
  const double t16 = list_schedule(in, 16, cm).makespan;
  const double cp = critical_path(in);
  EXPECT_LT(t16, t1);
  EXPECT_GE(t16, cp - 1e-12);
  // Scaling is capped by the critical path fraction.
  EXPECT_LT(t1 / t16, 17.0);
}

}  // namespace
}  // namespace h2
