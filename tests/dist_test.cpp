#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "blr/blr_matrix.hpp"
#include "dist/rank_map.hpp"
#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

ScheduleInput chain(int n, double dur) {
  ScheduleInput in;
  in.durations.assign(n, dur);
  in.successors.resize(n);
  for (int i = 0; i + 1 < n; ++i) in.successors[i].push_back(i + 1);
  return in;
}

ScheduleInput independent(int n, double dur) {
  ScheduleInput in;
  in.durations.assign(n, dur);
  in.successors.resize(n);
  return in;
}

TEST(ScheduleSim, ChainIsSerialRegardlessOfWorkers) {
  const ScheduleInput in = chain(10, 1.0);
  const CommModel cm;
  EXPECT_NEAR(list_schedule(in, 1, cm).makespan, 10.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 8, cm).makespan, 10.0, 1e-12);
  EXPECT_NEAR(critical_path(in), 10.0, 1e-12);
}

TEST(ScheduleSim, IndependentTasksScalePerfectly) {
  const ScheduleInput in = independent(64, 1.0);
  const CommModel cm;
  EXPECT_NEAR(list_schedule(in, 1, cm).makespan, 64.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 8, cm).makespan, 8.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 64, cm).makespan, 1.0, 1e-12);
  EXPECT_NEAR(list_schedule(in, 64, cm).efficiency(64), 1.0, 1e-9);
}

TEST(ScheduleSim, MakespanBounds) {
  // Random-ish DAG: makespan must sit between critical path and serial time.
  ScheduleInput in;
  const int n = 50;
  Rng rng(1);
  in.durations.resize(n);
  in.successors.resize(n);
  for (int i = 0; i < n; ++i) {
    in.durations[i] = rng.uniform(0.1, 1.0);
    for (int j = i + 1; j < n; ++j)
      if (rng.uniform() < 0.08) in.successors[i].push_back(j);
  }
  const CommModel cm;
  const double serial = list_schedule(in, 1, cm).makespan;
  const double p4 = list_schedule(in, 4, cm).makespan;
  const double cp = critical_path(in);
  EXPECT_LE(cp, p4 + 1e-9);
  EXPECT_LE(p4, serial + 1e-9);
  EXPECT_GE(p4, serial / 4 - 1e-9);
}

TEST(ScheduleSim, PerTaskOverheadHurtsSmallTasks) {
  ScheduleInput in = independent(100, 1e-4);
  in.per_task_overhead = 1e-4;  // overhead comparable to work: Fig. 13 regime
  const CommModel cm;
  const double t = list_schedule(in, 4, cm).makespan;
  EXPECT_NEAR(t, 100.0 / 4 * 2e-4, 1e-9);
  EXPECT_NEAR(list_schedule(in, 4, cm).efficiency(4), 0.5, 1e-6);
}

TEST(ScheduleSim, CommCostDelaysCrossWorkerEdges) {
  // Two tasks in a chain with large output: pinning them to different
  // workers pays the alpha-beta cost; same worker does not.
  ScheduleInput in = chain(2, 1.0);
  in.out_bytes = {1e9, 1e9};
  CommModel cm;
  cm.alpha = 0.0;
  cm.beta = 1e-9;  // 1 GB/s -> 1 s transfer
  in.owner = {0, 0};
  EXPECT_NEAR(list_schedule(in, 2, cm).makespan, 2.0, 1e-9);
  in.owner = {0, 1};
  EXPECT_NEAR(list_schedule(in, 2, cm).makespan, 3.0, 1e-9);
}

TEST(ScheduleSim, ControlSinksPayNoCommOnCrossWorkerEdges) {
  // Producer pinned to worker 0 with a 1 MB payload; a data consumer and a
  // control sink (a release task in the ULV DAG) each on their own remote
  // worker: the consumer pays alpha + beta * bytes, the sink starts the
  // moment the producer finishes.
  ScheduleInput in;
  in.durations = {1.0, 0.5, 0.5};
  in.successors = {{1, 2}, {}, {}};
  in.out_bytes = {1e6, 0.0, 0.0};
  in.owner = {0, 1, 2};
  in.control_sink = {0, 0, 1};
  CommModel comm;
  comm.alpha = 0.25;
  comm.beta = 1e-6;  // 1 MB costs 1 s on the wire
  const ScheduleResult res = list_schedule(in, 3, comm);
  EXPECT_DOUBLE_EQ(res.start[2], 1.0);  // sink: producer finish, no charge
  EXPECT_DOUBLE_EQ(res.start[1], 1.0 + 0.25 + 1.0);  // consumer: charged
}

TEST(ScheduleSim, PinnedOwnersSerializeSharedWorker) {
  ScheduleInput in = independent(10, 1.0);
  in.owner.assign(10, 3);  // all pinned to one worker
  const CommModel cm;
  EXPECT_NEAR(list_schedule(in, 8, cm).makespan, 10.0, 1e-12);
}

TEST(UlvDistModel, SharedMemoryModelScalesAndSaturates) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.n_workers = 1;  // contention-free durations for the replay model
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  const double t1 = model.shared_memory_time(1);
  const double t4 = model.shared_memory_time(4);
  const double t64 = model.shared_memory_time(64);
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t4, t1);
  EXPECT_GE(t1 / t4, 1.5);   // real speedup
  EXPECT_LE(t1 / t4, 4.01);  // bounded by worker count
  EXPECT_LE(t64, t4);
}

TEST(UlvDistModel, AnalyticChargingMonotoneAndCommBounded) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.n_workers = 1;  // contention-free durations for the replay model
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  const CommModel cm;
  // The analytic ablation (free placement + closed-form Allgather term) is
  // monotone in p by construction; the edge-charged default saturates on
  // small problems instead — covered by the EdgeCharged tests below.
  const double t1 = model.time(1, cm, CommCharging::Analytic);
  const double t4 = model.time(4, cm, CommCharging::Analytic);
  const double t16 = model.time(16, cm, CommCharging::Analytic);
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t4, t1);
  // Once the replayed DAG saturates (possible by p=4 on this small problem
  // when a contention spike inflates one recorded duration), the shared-time
  // gain from 4 -> 16 can be zero — then t16 may exceed t4 by exactly the
  // Allgather term's extra rounds. Bound the excess by the model's own comm
  // increment instead of a fixed microsecond slack.
  const double comm_step =
      model.comm_seconds(16, cm) - model.comm_seconds(4, cm);
  EXPECT_GE(comm_step, 0.0);
  EXPECT_LE(t16, t4 + comm_step + 1e-9);
}

// ---------------------------------------------------------------------------
// RankMap: the subtree-partition owner map (paper Fig. 8 process tree).
// ---------------------------------------------------------------------------

TEST(RankMap, SubtreePartitionIsContiguousBalancedAndComplete) {
  for (const int depth : {3, 5, 6}) {
    for (const int p : {1, 2, 3, 4, 5, 8}) {
      const RankMap map(depth, p);
      ASSERT_LE(p, 1 << map.split_level()) << "split level too shallow";
      const std::vector<int> owners = map.subtree_owners();
      // Contiguous: owners are non-decreasing in lid order, so each rank's
      // subtrees (and hence its reordered point range) form one run.
      EXPECT_TRUE(std::is_sorted(owners.begin(), owners.end()))
          << "depth " << depth << " p " << p;
      // Complete: every rank owns at least one subtree when there are
      // enough, and nobody outside [0, p) owns anything.
      std::set<int> distinct(owners.begin(), owners.end());
      EXPECT_EQ(static_cast<int>(distinct.size()), p);
      EXPECT_EQ(*distinct.begin(), 0);
      EXPECT_EQ(*distinct.rbegin(), p - 1);
      // Balanced: subtree counts per rank differ by at most one.
      std::vector<int> count(static_cast<std::size_t>(p), 0);
      for (const int r : owners) ++count[static_cast<std::size_t>(r)];
      const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
      EXPECT_LE(*hi - *lo, 1) << "depth " << depth << " p " << p;
    }
  }
}

TEST(RankMap, CoversAllLeavesAndInheritsSubtreeOwner) {
  const int depth = 5;
  const RankMap map(depth, 4);
  for (int lid = 0; lid < (1 << depth); ++lid) {
    const int r = map.rank_of(depth, lid);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 4);
    // A leaf's owner is its split-level ancestor's owner.
    EXPECT_EQ(r, map.rank_of(map.split_level(),
                             lid >> (depth - map.split_level())));
  }
  // Top levels (above the split) are the replicated part of the process
  // tree: charged to rank 0.
  for (int level = 0; level < map.split_level(); ++level)
    for (int lid = 0; lid < (1 << level); ++lid)
      EXPECT_EQ(map.rank_of(level, lid), 0);
}

TEST(RankMap, MoreRanksThanSubtreesDegradesGracefully) {
  // depth 3 -> 8 leaves, 32 ranks: the split clamps to the leaf level, each
  // leaf keeps exactly one owner in [0, 32), and surplus ranks simply idle.
  const RankMap map(3, 32);
  EXPECT_EQ(map.split_level(), 3);
  std::set<int> used;
  for (int lid = 0; lid < 8; ++lid) {
    const int r = map.rank_of(3, lid);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 32);
    EXPECT_TRUE(used.insert(r).second) << "leaf " << lid << " shares rank " << r;
  }
  EXPECT_EQ(static_cast<int>(used.size()), 8);  // one distinct owner per leaf
  EXPECT_EQ(map.rank_of(0, 0), 0);
}

TEST(RankMap, RejectsNonsense) {
  EXPECT_THROW(RankMap(-1, 4), std::invalid_argument);
  EXPECT_THROW(RankMap(3, 0), std::invalid_argument);
  const RankMap map(3, 2);
  EXPECT_THROW(static_cast<void>(map.rank_of(2, 4)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(map.rank_of(-1, 0)), std::invalid_argument);
  // Below the leaf level is outside the tree too, even when lid < 2^level.
  EXPECT_THROW(static_cast<void>(map.rank_of(4, 0)), std::invalid_argument);
}

TEST(RankMap, TaskRanksFollowOwnerLevelMetadata) {
  DagRecord rec;
  rec.meta = {{"fill", 0, 2}, {"merge", 1, 1}, {"top", 0, 0}, {"misc", 3, -1}};
  rec.successors.resize(4);
  const RankMap map(2, 4);  // split level 2: level-2 lids map 1:1 to ranks
  const std::vector<int> ranks = map.task_ranks(rec);
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_EQ(ranks[0], map.rank_of(2, 0));
  EXPECT_EQ(ranks[1], 0);  // level 1 < split level: replicated top
  EXPECT_EQ(ranks[2], 0);
  EXPECT_EQ(ranks[3], -1);  // untagged tasks stay unpinned
}

// ---------------------------------------------------------------------------
// Edge-charged distributed model: the recorded DAG + the rank map.
// ---------------------------------------------------------------------------

/// One recorded factorization shared by the EdgeCharged tests (the
/// factorization is the expensive part; the model calls are cheap).
class EdgeChargedModel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    problem_ = new Problem(
        make_problem(512, 32, Geometry::Cube, KernelKind::Laplace));
    H2BuildOptions ho;
    ho.admissibility = {Admissibility::Strong, 0.75};
    ho.tol = 1e-8;
    h_ = new H2Matrix(*problem_->tree, *problem_->kernel, ho);
    UlvOptions u;
    u.tol = 1e-6;
    u.record_tasks = true;
    u.n_workers = 1;  // contention-free durations for the replay model
    f_ = new UlvFactorization(*h_, u);
  }
  static void TearDownTestSuite() {
    delete f_;
    delete h_;
    delete problem_;
    f_ = nullptr;
    h_ = nullptr;
    problem_ = nullptr;
  }
  [[nodiscard]] static UlvDistModel model() {
    return UlvDistModel{&f_->stats(), &h_->structure()};
  }

  static Problem* problem_;
  static H2Matrix* h_;
  static UlvFactorization* f_;
};

Problem* EdgeChargedModel::problem_ = nullptr;
H2Matrix* EdgeChargedModel::h_ = nullptr;
UlvFactorization* EdgeChargedModel::f_ = nullptr;

TEST_F(EdgeChargedModel, RecordsPerTaskPayloads) {
  const UlvDistModel m = model();
  ASSERT_TRUE(m.has_recorded_dag());
  const DagRecord& dag = f_->stats().dag;
  ASSERT_EQ(static_cast<int>(dag.out_bytes.size()), dag.n_tasks());
  double total = 0.0;
  for (int t = 0; t < dag.n_tasks(); ++t) {
    EXPECT_GE(dag.out_bytes[t], 0.0);
    total += dag.out_bytes[t];
    // Every merge ships the merged parent block up the process tree.
    if (dag.meta[t].label == "merge") {
      EXPECT_GT(dag.out_bytes[t], 0.0);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST_F(EdgeChargedModel, ReleaseTasksAreControlSinksAndNeverChargedComm) {
  // The factorization's release tasks only synchronize ("last consumer
  // retired — free the blocks"); replay_input marks them as control sinks
  // so cross-rank edges into them pay no alpha-beta cost: a free is a local
  // reference-count decrement, not a message.
  const UlvDistModel m = model();
  const ScheduleInput in = m.replay_input();
  ASSERT_EQ(in.control_sink.size(), in.durations.size());
  const DagRecord& dag = f_->stats().dag;
  int n_sinks = 0;
  for (int t = 0; t < dag.n_tasks(); ++t) {
    const bool is_release = dag.meta[t].label.rfind("release", 0) == 0;
    EXPECT_EQ(in.control_sink[t] != 0, is_release) << dag.meta[t].label;
    n_sinks += is_release;
  }
  ASSERT_GT(n_sinks, 0);  // release_blocks defaults on

  // With subtree pinning the release tasks DO have cross-rank in-edges (ry
  // consumers span subtrees), so the marking is load-bearing: erasing it
  // charges those edges too, and with every task pinned the list schedule
  // is order-stable, so added arrival delays can only push finishes later.
  const ScheduleInput pinned = m.distributed_input(4);
  const ScheduleResult placed = list_schedule(pinned, 4, CommModel{});
  int cross_into_sinks = 0;
  for (std::size_t u = 0; u < pinned.successors.size(); ++u)
    for (const int v : pinned.successors[u])
      if (pinned.control_sink[v] != 0 && placed.worker[u] != placed.worker[v])
        ++cross_into_sinks;
  EXPECT_GT(cross_into_sinks, 0);

  CommModel expensive;
  expensive.alpha = 10.0;
  ScheduleInput unmarked = pinned;
  unmarked.control_sink.clear();
  const double marked_span = list_schedule(pinned, 4, expensive).makespan;
  const double unmarked_span = list_schedule(unmarked, 4, expensive).makespan;
  EXPECT_LE(marked_span, unmarked_span);
}

TEST_F(EdgeChargedModel, DistributedInputPinsEveryTaskToItsRank) {
  const UlvDistModel m = model();
  for (const int p : {1, 4}) {
    const ScheduleInput in = m.distributed_input(p);
    ASSERT_EQ(in.owner.size(), in.durations.size());
    for (const int r : in.owner) {
      EXPECT_GE(r, 0);  // every factorization task carries (owner, level)
      EXPECT_LT(r, p);
    }
    if (p > 1) {
      const std::set<int> used(in.owner.begin(), in.owner.end());
      EXPECT_EQ(static_cast<int>(used.size()), p) << "idle rank at p=" << p;
    }
  }
}

TEST_F(EdgeChargedModel, PEqualsOneMatchesTheNoCommReplayExactly) {
  // The CI sanity gate: at p = 1 no edge crosses ranks, so the edge-charged
  // time IS the no-comm replay time — bitwise, not approximately.
  const UlvDistModel m = model();
  const CommModel cm;  // real latencies: must still not be charged at p = 1
  EXPECT_EQ(m.time(1, cm, CommCharging::EdgeCharged),
            m.shared_memory_time(1));
}

TEST_F(EdgeChargedModel, EdgeChargingDominatesAnalyticWithoutInvertingOrder) {
  const UlvDistModel m = model();
  const CommModel cm;
  std::vector<double> edge_times;
  for (const int p : {1, 2, 4, 8}) {
    const double edge = m.time(p, cm, CommCharging::EdgeCharged);
    const double analytic = m.time(p, cm, CommCharging::Analytic);
    // At fixed N the honest charging can only add cost over the optimistic
    // one — rank-map pinning restricts the free placement and every
    // cross-rank edge pays the alpha-beta model, so the edge-vs-analytic
    // ordering must never invert at any p (a config must not look FASTER
    // under the more faithful model).
    EXPECT_GE(edge, analytic - 1e-12) << "p=" << p;
    edge_times.push_back(edge);
  }
  // Strong scaling still exists in the regime where ranks split real work
  // (depth 4 -> 16 leaves): p = 2 and p = 4 beat their predecessors. Beyond
  // that the pinned model is ALLOWED to saturate — that realism (replicated
  // top levels serialize on rank 0, comm grows with the split) is exactly
  // what the analytic term could not predict.
  EXPECT_LT(edge_times[1], edge_times[0]);
  EXPECT_LT(edge_times[2], edge_times[1]);
}

TEST(UlvDistModelFallback, FlatLogHasNoRecordedDagAndFallsBackToAnalytic) {
  // PhaseLoops + record_tasks: only the flat log exists, so EdgeCharged
  // silently degrades to the analytic charging instead of pretending it
  // knows edges it never saw.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.executor = UlvExecutor::PhaseLoops;
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  EXPECT_FALSE(model.has_recorded_dag());
  const CommModel cm;
  for (const int ranks : {1, 4}) {
    EXPECT_EQ(model.time(ranks, cm, CommCharging::EdgeCharged),
              model.time(ranks, cm, CommCharging::Analytic));
  }
}

TEST(BlrDistReplay, DagReplayShowsLimitedScaling) {
  // Replaying the measured BLR DAG: speedup exists but is capped by the
  // trailing-dependency critical path.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  BlrOptions o;
  o.tol = 1e-6;
  BlrMatrix blr(*p.tree, *p.kernel, o);
  const ExecStats stats = blr.factorize();
  ScheduleInput in;
  in.durations.resize(stats.records.size());
  for (const auto& r : stats.records) in.durations[r.id] = r.duration();
  in.successors = blr.graph().successors();
  const CommModel cm;
  const double t1 = list_schedule(in, 1, cm).makespan;
  const double t16 = list_schedule(in, 16, cm).makespan;
  const double cp = critical_path(in);
  EXPECT_LT(t16, t1);
  EXPECT_GE(t16, cp - 1e-12);
  // Scaling is capped by the critical path fraction.
  EXPECT_LT(t1 / t16, 17.0);
}

}  // namespace
}  // namespace h2
