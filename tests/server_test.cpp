// The serving tier (src/server/): factorization cache correctness (hits
// bitwise-identical to cold builds, parameterized kernels never collide,
// eviction under a tight budget cannot break an in-flight solve), admission
// batching (a deadline-coalesced batch equals the same requests solved
// serially, bit for bit), the width-stable solve contract underneath it,
// and the ServerStats metrics surface. The concurrency tests double as the
// TSan/ASan coverage of the admission queue and eviction paths.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include <unistd.h>

#include "server/server.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols())) == 0;
}

Matrix column(const Matrix& m, int j) {
  Matrix c(m.rows(), 1);
  std::memcpy(c.data(), m.view().col(j),
              sizeof(double) * static_cast<std::size_t>(m.rows()));
  return c;
}

SolverOptions cheap_opts() {
  return SolverOptions{}.with_tol(1e-6).with_max_rank(60);
}

TEST(WidthStableSolve, BatchColumnsBitwiseEqualSingleRhsSolves) {
  // The primitive the server's determinism contract rests on: with
  // width_stable_solve, gemm dispatch ignores nrhs, so each solution
  // column's bits are independent of how many columns ride along.
  Rng rng(11);
  const PointCloud pts = uniform_cube(512, rng);
  const LaplaceKernel kern(1e-2);
  const Solver s =
      Solver::build(pts, kern, cheap_opts().with_width_stable_solve(true));
  const Matrix b = Matrix::random(512, 12, rng);
  const Matrix x = s.solve(b);
  for (int j = 0; j < b.cols(); ++j)
    EXPECT_TRUE(bitwise_equal(column(x, j), s.solve(column(b, j)))) << j;
}

TEST(ServerCache, HitReturnsBitwiseIdenticalSolutionsToColdBuild) {
  Rng rng(3);
  const PointCloud pts = uniform_cube(512, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(512, 1, rng);

  Server server;
  const Server::FactorHandle cold = server.acquire(pts, kern, cheap_opts());
  const Matrix x_cold = server.solve(cold, b);

  const Server::FactorHandle hit = server.acquire(pts, kern, cheap_opts());
  const Matrix x_hit = server.solve(hit, b);
  EXPECT_TRUE(bitwise_equal(x_cold, x_hit));

  // A private facade build with the same numerics (the server forces
  // width_stable_solve under its default deterministic mode) agrees bitwise
  // — the cache changes WHERE the factorization lives, never the answer.
  const Solver private_build =
      Solver::build(pts, kern, cheap_opts().with_width_stable_solve(true));
  EXPECT_TRUE(bitwise_equal(x_cold, private_build.solve(b)));

  const ServerStats st = server.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.resident_bytes, 0u);
}

TEST(ServerCache, KernelParametersAndOptionsDiscriminateEntries) {
  // Same kernel NAME, different parameter: the probe digest must separate
  // them (a name-only key would serve one kernel's answers for the other).
  Rng rng(4);
  const PointCloud pts = uniform_cube(256, rng);
  Server server;
  (void)server.acquire(pts, LaplaceKernel(1e-2), cheap_opts());
  (void)server.acquire(pts, LaplaceKernel(2e-2), cheap_opts());
  // Numerics options discriminate too; execution knobs do not.
  (void)server.acquire(pts, LaplaceKernel(1e-2), cheap_opts().with_tol(1e-4));
  (void)server.acquire(pts, LaplaceKernel(1e-2), cheap_opts().with_workers(2));
  const ServerStats st = server.stats();
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 3u);
}

TEST(ServerCache, EvictionUnderTightBudgetNeverInvalidatesHeldHandle) {
  // Budget of one byte: every completed build evicts everything else. A
  // handle acquired before the churn must keep solving — bitwise stably —
  // while entries fall out of the cache around it, including DURING its
  // solves (the concurrent churn thread).
  Rng rng(6);
  const PointCloud pts = uniform_cube(384, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(384, 1, rng);

  Server server(ServerOptions{}.with_cache_budget_bytes(1));
  const Server::FactorHandle f = server.acquire(pts, kern, cheap_opts());
  const Matrix x_ref = server.solve(f, b);

  std::vector<Matrix> during;
  std::thread solver_thread([&] {
    for (int i = 0; i < 24; ++i) during.push_back(server.solve(f, b));
  });
  for (int i = 0; i < 6; ++i) {
    Rng r2(100 + i);
    const PointCloud other = uniform_cube(256, r2);
    (void)server.acquire(other, kern, cheap_opts());  // evicts predecessors
  }
  solver_thread.join();

  const ServerStats st = server.stats();
  EXPECT_GE(st.evictions, 5u);
  EXPECT_EQ(st.entries, 1u);  // only the newest survives a 1-byte budget
  for (const Matrix& x : during) EXPECT_TRUE(bitwise_equal(x, x_ref));

  // The handle's entry was itself evicted by the churn; shared ownership
  // keeps it serving identically after the cache let go.
  EXPECT_TRUE(bitwise_equal(server.solve(f, b), x_ref));
  EXPECT_GT(f.resident_bytes(), 0u);
}

TEST(ServerAdmission, CoalescedBatchBitwiseEqualsSerialSolves) {
  // T concurrent single-RHS requests: whatever mix of solo sweeps and
  // deadline-coalesced batches the timing produces, every answer must be
  // bitwise the serial one. The retry loop additionally demands we actually
  // OBSERVE a coalesced sweep (width >= 2) at least once.
  Rng rng(8);
  const PointCloud pts = uniform_cube(512, rng);
  const LaplaceKernel kern(1e-2);
  const int kThreads = 8;
  const Matrix b = Matrix::random(512, kThreads, rng);

  Server server(
      ServerOptions{}.with_batch_deadline_us(20000).with_max_batch(4));
  const Server::FactorHandle f = server.acquire(pts, kern, cheap_opts());

  std::vector<Matrix> serial;
  for (int j = 0; j < kThreads; ++j)
    serial.push_back(f.solver().solve(column(b, j)));

  for (int round = 0; round < 50; ++round) {
    std::vector<Matrix> got(kThreads);
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int j = 0; j < kThreads; ++j)
      clients.emplace_back(
          [&, j] { got[static_cast<std::size_t>(j)] = server.solve(f, column(b, j)); });
    for (std::thread& t : clients) t.join();
    for (int j = 0; j < kThreads; ++j)
      ASSERT_TRUE(bitwise_equal(got[static_cast<std::size_t>(j)],
                                serial[static_cast<std::size_t>(j)]))
          << "round " << round << " column " << j;
    if (server.stats().coalesced_requests > 0) break;
  }
  const ServerStats st = server.stats();
  EXPECT_GT(st.coalesced_requests, 0u) << "no coalesced sweep in 50 rounds";
  EXPECT_EQ(st.queue_depth, 0u);
  // Every request above went through width <= max_batch sweeps.
  for (int bkt = 3; bkt < ServerStats::kBatchBuckets; ++bkt)
    EXPECT_EQ(st.batch_hist[static_cast<std::size_t>(bkt)], 0u);
}

TEST(ServerAdmission, MultiColumnRequestsBypassTheQueue) {
  Rng rng(9);
  const PointCloud pts = uniform_cube(384, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(384, 3, rng);
  Server server;
  const Server::FactorHandle f = server.acquire(pts, kern, cheap_opts());
  EXPECT_TRUE(bitwise_equal(server.solve(f, b), f.solver().solve(b)));
  const ServerStats st = server.stats();
  EXPECT_EQ(st.rhs_served, 3u);
  EXPECT_EQ(st.backend_solves, 1u);
  EXPECT_EQ(st.batch_hist[2], 1u);  // one sweep in the 3-4 bucket
}

TEST(ServerStatsSurface, CountsAndLatencyPercentilesPopulate) {
  Rng rng(10);
  const PointCloud pts = uniform_cube(256, rng);
  const LaplaceKernel kern(1e-2);
  Server server;
  const Server::FactorHandle f = server.acquire(pts, kern, cheap_opts());
  const Matrix b = Matrix::random(256, 1, rng);
  for (int i = 0; i < 5; ++i) (void)server.solve(f, b);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 5u);
  EXPECT_EQ(st.rhs_served, 5u);
  EXPECT_EQ(st.backend_solves, 5u);
  EXPECT_EQ(st.batch_hist[0], 5u);
  EXPECT_EQ(st.budget_bytes, server.options().cache_budget_bytes);
  EXPECT_GT(st.p50_ms, 0.0);
  EXPECT_GE(st.p99_ms, st.p50_ms);

  EXPECT_EQ(server.clear(), 1u);
  EXPECT_EQ(server.stats().entries, 0u);
  EXPECT_EQ(server.stats().evictions, 1u);
  // The handle survives clear() like any eviction.
  (void)server.solve(f, b);
}

TEST(ServerConcurrency, ManyClientsTwoProblemsStayIsolated) {
  // N threads hammer two different factorizations through one server —
  // acquire (all hits after the first) + coalesced solves, interleaved.
  // Answers must never cross problems and must match the serial references.
  Rng rng(12);
  const PointCloud pts_a = uniform_cube(384, rng);
  const PointCloud pts_b = uniform_cube(384, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix rhs = Matrix::random(384, 1, rng);

  Server server;
  const Server::FactorHandle fa = server.acquire(pts_a, kern, cheap_opts());
  const Server::FactorHandle fb = server.acquire(pts_b, kern, cheap_opts());
  const Matrix ref_a = fa.solver().solve(rhs);
  const Matrix ref_b = fb.solver().solve(rhs);
  ASSERT_FALSE(bitwise_equal(ref_a, ref_b));

  const int kThreads = 8;
  std::vector<int> bad(kThreads, 0);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        const Server::FactorHandle f =
            server.acquire(use_a ? pts_a : pts_b, kern, cheap_opts());
        const Matrix x = server.solve(f, rhs);
        if (!bitwise_equal(x, use_a ? ref_a : ref_b))
          ++bad[static_cast<std::size_t>(t)];
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(bad[static_cast<std::size_t>(t)], 0) << t;
  const ServerStats st = server.stats();
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads) * 6);
  EXPECT_EQ(st.queue_depth, 0u);
}

/// Scratch directory under the system temp dir (unique per process + use),
/// removed recursively on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("h2-server-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(ServerSpillTier, DemotedEntryPromotesBitwiseUnderConcurrentSolves) {
  // With a spill directory, a 1-byte budget demotes the older entry instead
  // of destroying it. The held handle must keep solving it (demand-faulting
  // from disk) bitwise; a later acquire of the same key must promote it —
  // exactly once, whatever the concurrency — WITHOUT a rebuild, and serve
  // bitwise the cold build's answers throughout.
  Rng rng(31);
  const PointCloud pts_a = uniform_cube(384, rng);
  const PointCloud pts_b = uniform_cube(256, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(384, 1, rng);
  TempDir tmp;

  Server server(ServerOptions{}
                    .with_cache_budget_bytes(1)
                    .with_spill_dir(tmp.path));
  const Server::FactorHandle fa = server.acquire(pts_a, kern, cheap_opts());
  const Matrix x_ref = server.solve(fa, b);

  // Building the second problem sheds the first — to disk, not to oblivion.
  (void)server.acquire(pts_b, kern, cheap_opts());
  {
    const ServerStats st = server.stats();
    EXPECT_EQ(st.demotions, 1u);
    EXPECT_EQ(st.demoted_entries, 1u);
    EXPECT_GT(st.demoted_bytes, 0u);
    EXPECT_GE(st.evictions, st.demotions) << "demotions must count as evictions";
  }
  // The held handle keeps the demoted entry solvable AND promotable.
  EXPECT_TRUE(bitwise_equal(server.solve(fa, b), x_ref));

  // Concurrent re-acquires + solves on the held handle: promotion is
  // single-flight (the counter says once), answers never waver.
  const int kThreads = 4;
  std::vector<int> bad(2 * kThreads, 0);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const Server::FactorHandle f = server.acquire(pts_a, kern, cheap_opts());
      if (!bitwise_equal(server.solve(f, b), x_ref))
        ++bad[static_cast<std::size_t>(t)];
    });
    clients.emplace_back([&, t] {
      if (!bitwise_equal(server.solve(fa, b), x_ref))
        ++bad[static_cast<std::size_t>(kThreads + t)];
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < 2 * kThreads; ++i)
    EXPECT_EQ(bad[static_cast<std::size_t>(i)], 0) << i;

  const ServerStats st = server.stats();
  EXPECT_EQ(st.promotions, 1u) << "promotion was not single-flight";
  EXPECT_EQ(st.misses, 2u) << "a demoted entry was rebuilt instead of promoted";
  // Counters reconcile: every promotion rode a hit; what was demoted is
  // either still demoted or was promoted back.
  EXPECT_GE(st.hits, st.promotions);
  EXPECT_EQ(st.demotions, st.promotions + st.demoted_entries);
}

TEST(ServerSpillTier, ClearDropsDemotedEntriesWithoutDoubleCounting) {
  Rng rng(32);
  const PointCloud pts_a = uniform_cube(256, rng);
  const PointCloud pts_b = uniform_cube(192, rng);
  const LaplaceKernel kern(1e-2);
  TempDir tmp;
  Server server(ServerOptions{}
                    .with_cache_budget_bytes(1)
                    .with_spill_dir(tmp.path));
  (void)server.acquire(pts_a, kern, cheap_opts());
  (void)server.acquire(pts_b, kern, cheap_opts());  // demotes pts_a's entry
  ASSERT_EQ(server.stats().demoted_entries, 1u);
  ASSERT_EQ(server.stats().entries, 1u);  // the resident gauge excludes it

  EXPECT_EQ(server.clear(), 2u);  // both entries dropped...
  const ServerStats st = server.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.demoted_entries, 0u);
  EXPECT_EQ(st.demoted_bytes, 0u);
  // ...but the demoted one was already counted when it left RAM.
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.demotions, 1u);
}

TEST(ServerApi, EmptyHandleAndBadOptionsThrow) {
  Server server;
  const Server::FactorHandle empty;
  EXPECT_FALSE(empty.valid());
  Matrix b(4, 1);
  EXPECT_THROW((void)server.solve(empty, b), std::logic_error);
  EXPECT_THROW((void)empty.solver(), std::logic_error);
  EXPECT_THROW(Server(ServerOptions{}.with_max_batch(0)), std::invalid_argument);
  EXPECT_THROW(Server(ServerOptions{}.with_batch_deadline_us(-1)),
               std::invalid_argument);
  EXPECT_THROW(Server(ServerOptions{}.with_cache_budget_bytes(0)),
               std::invalid_argument);
  EXPECT_THROW(Server(ServerOptions{}.with_spill_dir("/nonexistent/h2-spill")),
               std::invalid_argument);
}

TEST(ServerCache, DigestCoversEveryNumericsOptionAndNoExecutionKnob) {
  // Regression audit of the factorization-cache key: EVERY option that can
  // change a solution's bits must perturb the digest (a collision would
  // serve one configuration's answers for another), and options that only
  // change HOW the identical bits are computed must not (an over-keyed
  // cache silently stops amortizing). Adding a numerics field to
  // SolverOptions without teaching digest_options about it fails here.
  Rng rng(6);
  const PointCloud pts = uniform_cube(256, rng);
  const LaplaceKernel kern(1e-2);
  Server server;
  (void)server.acquire(pts, kern, cheap_opts());
  std::uint64_t want_misses = 1;
  auto expect_miss = [&](const SolverOptions& o, const char* what) {
    (void)server.acquire(pts, kern, o);
    ++want_misses;
    EXPECT_EQ(server.stats().misses, want_misses) << "numerics knob '" << what
                                                  << "' did not miss";
  };
  auto expect_hit = [&](const SolverOptions& o, const char* what) {
    (void)server.acquire(pts, kern, o);
    EXPECT_EQ(server.stats().misses, want_misses)
        << "execution knob '" << what << "' perturbed the cache key";
  };
  // Numerics-relevant: each perturbation must build a new entry.
  expect_miss(cheap_opts().with_structure(SolverStructure::HODLR), "structure");
  expect_miss(cheap_opts().with_leaf_size(64), "leaf_size");
  expect_miss(cheap_opts().with_partitioner(Partitioner::Morton),
              "partitioner");
  expect_miss(cheap_opts().with_seed(7), "seed");
  expect_miss(cheap_opts().with_eta(1.25), "eta");
  expect_miss(cheap_opts().with_tol(1e-5), "tol");
  expect_miss(cheap_opts().with_build_tol_factor(5e-2), "build_tol_factor");
  expect_miss(cheap_opts().with_max_rank(40), "max_rank");
  expect_miss(cheap_opts().with_mode(UlvMode::Sequential), "mode");
  {
    SolverOptions o = cheap_opts();
    o.fill_tol_factor = 0.5;
    expect_miss(o, "fill_tol_factor");
  }
  {
    SolverOptions o = cheap_opts();
    o.fillin_augmentation = false;
    expect_miss(o, "fillin_augmentation");
  }
  expect_miss(cheap_opts().with_precision(Precision::F32), "precision");
  expect_miss(cheap_opts()
                  .with_precision(Precision::F32)
                  .with_refine_tol(1e-7),
              "refine_tol");
  expect_miss(cheap_opts()
                  .with_precision(Precision::F32)
                  .with_max_refine_iters(2),
              "max_refine_iters");
  // Execution-only: identical bits by the determinism contract, so the
  // first entry must be reused.
  expect_hit(cheap_opts().with_executor(UlvExecutor::PhaseLoops), "executor");
  expect_hit(cheap_opts().with_solve_executor(UlvExecutor::PhaseLoops),
             "solve_executor");
  expect_hit(cheap_opts().with_schedule(UlvSchedule::Fifo), "schedule");
  expect_hit(cheap_opts().with_priority(UlvPriority::None), "priority");
  expect_hit(cheap_opts().with_workers(3), "n_workers");
  expect_hit(cheap_opts().with_record_tasks(true), "record_tasks");
  expect_hit(cheap_opts().with_spill_budget_mb(512.0), "spill_budget_mb");
  expect_hit(cheap_opts().with_spill_threads(3), "spill_threads");
}

}  // namespace
}  // namespace h2
