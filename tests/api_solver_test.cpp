#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/solver.hpp"
#include "runtime/thread_pool.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

/// A small point-order problem: the facade's contract is that b and x refer
/// to the CALLER's point indexing, so references are computed on the
/// original cloud, no permutation in sight.
struct PointOrderProblem {
  PointCloud pts;
  std::unique_ptr<Kernel> kernel;
  Matrix b;
};

PointOrderProblem make_point_order_problem(int n, int nrhs) {
  PointOrderProblem p;
  Rng rng(5);
  p.pts = uniform_cube(n, rng);
  p.kernel = std::make_unique<LaplaceKernel>(1e-2);
  p.b = Matrix::random(n, nrhs, rng);
  return p;
}

TEST(ApiSolver, FiveLineQuickstartSolvesInPointOrder) {
  const PointOrderProblem p = make_point_order_problem(512, 1);

  // The whole pipeline behind one call; everything below is user code.
  const Solver solver =
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8));
  const Matrix x = solver.solve(p.b);

  // Residual straight on the ORIGINAL cloud: no tree ordering anywhere.
  const Matrix a = kernel_dense(*p.kernel, p.pts);
  Matrix ax(512, 1);
  gemm(1.0, a, Trans::No, x, Trans::No, 0.0, ax);
  EXPECT_LT(rel_error_fro(ax, p.b), 1e-5);
  EXPECT_EQ(solver.n(), 512);
  EXPECT_EQ(solver.structure(), SolverStructure::H2);
  ASSERT_NE(solver.ulv_stats(), nullptr);
  EXPECT_GT(solver.max_rank_used(), 0);
  EXPECT_TRUE(std::isfinite(solver.logabsdet()));
}

TEST(ApiSolver, SolveMatchesInPlacePlusPermutation) {
  // solve() == to_tree_order -> solve_in_place -> from_tree_order, bitwise.
  const PointOrderProblem p = make_point_order_problem(384, 3);
  const Solver solver =
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8));
  const Matrix x = solver.solve(p.b);
  Matrix manual = solver.tree().to_tree_order(p.b);
  solver.solve_in_place(manual);
  const Matrix x_manual = solver.tree().from_tree_order(manual);
  EXPECT_EQ(rel_error_fro(x, x_manual), 0.0);
}

TEST(ApiSolver, BatchAndAsyncMatchSerialSolvesBitwise) {
  const int n = 384;
  PointOrderProblem p = make_point_order_problem(n, 1);
  const Solver solver =
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8));

  Rng rng(11);
  std::vector<Matrix> rhs;
  for (int i = 0; i < 5; ++i) rhs.push_back(Matrix::random(n, 1 + i % 3, rng));

  std::vector<Matrix> serial;
  for (const Matrix& b : rhs) serial.push_back(solver.solve(b));

  const std::vector<Matrix> batched = solver.solve_batch(rhs);
  ASSERT_EQ(batched.size(), rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i)
    EXPECT_EQ(rel_error_fro(batched[i], serial[i]), 0.0) << "batch rhs " << i;

  SolveHandle h = solver.solve_async(rhs[0]);
  h.wait();
  EXPECT_TRUE(h.ready());
  const Matrix x_async = h.get();
  EXPECT_EQ(rel_error_fro(x_async, serial[0]), 0.0);
}

TEST(ApiSolver, HandlesOutliveTheSolver) {
  // SolveHandle shares ownership of the factorization: dropping the Solver
  // while solves are in flight is safe.
  const int n = 384;
  PointOrderProblem p = make_point_order_problem(n, 2);
  SolveHandle h = [&] {
    const Solver solver =
        Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8));
    return solver.solve_async(p.b);
  }();  // solver destroyed here
  const Matrix x = h.get();
  const Matrix a = kernel_dense(*p.kernel, p.pts);
  Matrix ax(n, 2);
  gemm(1.0, a, Trans::No, x, Trans::No, 0.0, ax);
  EXPECT_LT(rel_error_fro(ax, p.b), 1e-5);
}

TEST(ApiSolver, AbandonedAsyncSolveOnAPrivatePoolIsSafe) {
  // With n_workers > 0 the Impl owns a private pool. If the queued async
  // task held the LAST Impl reference and ran on that pool, releasing it
  // there would destroy the pool from its own worker (self-join ->
  // terminate). solve_async therefore pipelines on the global pool; this
  // drops every handle and solver reference immediately to prove the
  // teardown path is safe.
  const int n = 256;
  PointOrderProblem p = make_point_order_problem(n, 1);
  {
    const Solver solver = Solver::build(
        p.pts, *p.kernel,
        SolverOptions{}.with_tol(1e-8).with_workers(2));
    (void)solver.solve_async(p.b);  // handle discarded, solver dropped next
  }
  ThreadPool::global().wait_idle();  // the abandoned task must finish cleanly
}

TEST(ApiSolver, AsyncFromThePoolItselfDoesNotDeadlock) {
  // A solve_async issued from a worker of the pipelining pool runs inline
  // instead of deadlocking behind itself.
  const int n = 256;
  PointOrderProblem p = make_point_order_problem(n, 1);
  ThreadPool pool(1);
  const Solver solver = Solver::build(
      p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8).with_pool(&pool));
  const Matrix direct = solver.solve(p.b);
  Matrix nested;
  pool.submit([&] { nested = solver.solve_async(p.b).get(); });
  pool.wait_idle();
  EXPECT_EQ(rel_error_fro(nested, direct), 0.0);
}

TEST(ApiSolver, EveryStructureSolvesTheSameSystem) {
  // One geometry, four representations — the facade's structure switch.
  // All four must solve the (SPD) Laplace system; the hierarchical shared-
  // basis families to their tolerance, the baselines to theirs.
  const int n = 512;
  const PointOrderProblem p = make_point_order_problem(n, 1);
  const Matrix a = kernel_dense(*p.kernel, p.pts);
  for (const SolverStructure st :
       {SolverStructure::H2, SolverStructure::HSS, SolverStructure::BLR,
        SolverStructure::HODLR}) {
    const Solver solver = Solver::build(
        p.pts, *p.kernel,
        SolverOptions{}.with_structure(st).with_tol(1e-8).with_leaf_size(64));
    const Matrix x = solver.solve(p.b);
    Matrix ax(n, 1);
    gemm(1.0, a, Trans::No, x, Trans::No, 0.0, ax);
    EXPECT_LT(rel_error_fro(ax, p.b), 1e-4) << "structure " << static_cast<int>(st);
    EXPECT_TRUE(std::isfinite(solver.logabsdet()));
    // BLR may legitimately store every near-field tile dense (rank 0).
    if (st != SolverStructure::BLR) {
      EXPECT_GT(solver.max_rank_used(), 0);
    }
    if (st == SolverStructure::H2 || st == SolverStructure::HSS)
      EXPECT_NE(solver.ulv_stats(), nullptr);
    else
      EXPECT_EQ(solver.ulv_stats(), nullptr);
  }
}

TEST(ApiSolver, MultiRhsSolveMatchesUlvCore) {
  // The facade adds permutation, not arithmetic: a hand-wired core-API
  // pipeline over the facade's OWN tree must agree bitwise.
  const PointOrderProblem p = make_point_order_problem(384, 4);
  const Solver solver = Solver::build(
      p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8).with_leaf_size(32));

  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-10;  // the facade's build_tol_factor * tol
  const H2Matrix h(solver.tree(), *p.kernel, ho);
  UlvOptions uo;
  uo.tol = 1e-8;
  const UlvFactorization f(h, uo);

  Matrix x_core = solver.tree().to_tree_order(p.b);
  f.solve(x_core);
  const Matrix x_facade = solver.solve(p.b);
  EXPECT_EQ(
      rel_error_fro(x_facade, solver.tree().from_tree_order(x_core)), 0.0);
}

TEST(ApiSolver, SolveStatsSurfaceThroughFacadeAndHandle) {
  const PointOrderProblem p = make_point_order_problem(384, 2);
  // n_workers > 0: the facade owns ONE private pool, so direct solves run
  // the DAG on it — and async solves pipelining on the GLOBAL pool still
  // execute their inner DAG on the private one, so the handle's stats
  // snapshot is populated too.
  const Solver solver = Solver::build(
      p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8).with_workers(2));
  EXPECT_TRUE(solver.last_solve_stats().records.empty()) << "before any solve";

  const Matrix x = solver.solve(p.b);
  const ExecStats direct = solver.last_solve_stats();
  ASSERT_FALSE(direct.records.empty());
  EXPECT_EQ(direct.n_workers, 2);
  std::uint64_t executed = 0;
  for (const auto& w : direct.worker_counters) executed += w.executed;
  EXPECT_EQ(executed, direct.records.size());

  SolveHandle handle = solver.solve_async(p.b);
  const Matrix x_async = handle.get();
  EXPECT_EQ(rel_error_fro(x_async, x), 0.0);
  EXPECT_FALSE(handle.stats().records.empty());
  EXPECT_EQ(handle.stats().n_workers, 2);

  // With the DEFAULT pool wiring an async solve pipelines on the global
  // pool and runs its sweep inline — no new DAG trace. The handle must
  // come back EMPTY rather than re-serving the direct solve's stale trace
  // as its own.
  const Solver global_solver =
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8));
  (void)global_solver.solve(p.b);  // populates last_solve_stats
  ASSERT_FALSE(global_solver.last_solve_stats().records.empty());
  SolveHandle inline_handle = global_solver.solve_async(p.b);
  (void)inline_handle.get();
  EXPECT_TRUE(inline_handle.stats().records.empty());
}

TEST(ApiSolver, OptionsValidation) {
  const PointOrderProblem p = make_point_order_problem(64, 1);
  EXPECT_THROW(Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(0.0)),
               std::invalid_argument);
  EXPECT_THROW(
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_leaf_size(1)),
      std::invalid_argument);
  EXPECT_THROW(
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_workers(-1)),
      std::invalid_argument);
  EXPECT_THROW(Solver::build(p.pts, *p.kernel, SolverOptions{}.with_eta(0.0)),
               std::invalid_argument);

  // Shape errors throw instead of corrupting memory in Release builds.
  const Solver solver =
      Solver::build(p.pts, *p.kernel, SolverOptions{}.with_tol(1e-8));
  Matrix short_rhs(32, 1);
  EXPECT_THROW((void)solver.solve(short_rhs), std::invalid_argument);
  EXPECT_THROW(solver.solve_in_place(short_rhs), std::invalid_argument);
}

}  // namespace
}  // namespace h2
