#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#include "runtime/thread_pool.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

H2BuildOptions strong_opts(double tol) {
  H2BuildOptions o;
  o.admissibility = {Admissibility::Strong, 0.75};
  o.tol = tol * 1e-2;
  return o;
}

/// Factor + solve one fixed system; returns everything the comparisons need.
struct RunResult {
  Matrix x;
  double logabsdet = 0.0;
  double residual = 0.0;  ///< relative ||Ax - b|| against the dense kernel
  UlvStats stats;
};

RunResult run(const Problem& p, const H2Matrix& h, UlvOptions u) {
  const int n = p.tree->n_points();
  const UlvFactorization f(h, u);
  Rng rng(7);
  Matrix b = Matrix::random(n, 1, rng);
  RunResult r;
  r.x = b;
  f.solve(r.x);
  r.logabsdet = f.logabsdet();
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  Matrix ax(n, 1);
  gemm(1.0, a, Trans::No, r.x, Trans::No, 0.0, ax);
  r.residual = rel_error_fro(ax, b);
  r.stats = f.stats();
  return r;
}

TEST(UlvDag, NoIntraLevelEliminateEliminateEdges) {
  // The acceptance property of the whole design: the built DAG realizes the
  // paper's "no trailing sub-matrix dependencies" — block-row eliminations
  // of one level are pairwise independent tasks.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 2;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());
  ASSERT_EQ(f.stats().exec.records.size(), dag.meta.size());

  int n_eliminate = 0, eliminate_out_edges = 0;
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label != "eliminate") continue;
    ++n_eliminate;
    for (const TaskId s : dag.successors[t]) {
      ++eliminate_out_edges;
      EXPECT_FALSE(dag.meta[s].label == "eliminate" &&
                   dag.meta[s].level == dag.meta[t].level)
          << "trailing dependency: eliminate #" << t << " -> eliminate #" << s
          << " at level " << dag.meta[t].level;
    }
  }
  // Sanity: the property is vacuous without eliminate tasks and their edges.
  EXPECT_GT(n_eliminate, 0);
  EXPECT_GT(eliminate_out_edges, 0);
}

TEST(UlvDag, MergeToFillEdgesLinkAdjacentLevels) {
  // Cross-level overlap hinges on merge -> {fill, basis, project} edges:
  // a parent block row may start its pipeline as soon as ITS four child
  // merges are done, not when the whole child level is.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 1;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());

  int merge_to_fill = 0, barrier_like = 0;
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label != "merge") continue;
    for (const TaskId s : dag.successors[t]) {
      if (dag.meta[s].label == "fill") ++merge_to_fill;
      // A bulk-synchronous encoding would route levels through one hub task.
      if (dag.meta[s].label == "barrier") ++barrier_like;
    }
  }
  EXPECT_GT(merge_to_fill, 0);
  EXPECT_EQ(barrier_like, 0);
}

TEST(UlvDag, WorkerCountDoesNotChangeTheAnswer) {
  // Every task performs the same block operations in the same order, so the
  // factorization is bitwise reproducible across worker counts — scheduling
  // only changes WHEN a task runs, never what it computes.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions u;
  u.tol = 1e-9;
  u.n_workers = 1;
  const RunResult r1 = run(p, h, u);
  EXPECT_LT(r1.residual, 1e-5);
  for (const int workers : {2, 4}) {
    UlvOptions uk = u;
    uk.n_workers = workers;
    const RunResult rk = run(p, h, uk);
    EXPECT_LE(rel_error_fro(rk.x, r1.x), 1e-14) << workers << " workers";
    EXPECT_EQ(rk.logabsdet, r1.logabsdet) << workers << " workers";
  }
}

TEST(UlvDag, SchedulerMatrixIsBitwiseIdentical) {
  // Scheduling policy and worker count may only change WHEN a task runs —
  // every cell of the {Fifo, WorkSteal} x {None, CriticalPath} x {1, 4, 8}
  // matrix must reproduce the single-worker FIFO baseline bit for bit.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions ref;
  ref.tol = 1e-9;
  ref.n_workers = 1;
  ref.schedule = UlvSchedule::Fifo;
  ref.priority = UlvPriority::None;
  const RunResult r1 = run(p, h, ref);
  EXPECT_LT(r1.residual, 1e-5);
  for (const UlvSchedule sched : {UlvSchedule::Fifo, UlvSchedule::WorkSteal}) {
    for (const UlvPriority prio :
         {UlvPriority::None, UlvPriority::CriticalPath}) {
      for (const int workers : {1, 4, 8}) {
        if (sched == ref.schedule && prio == ref.priority && workers == 1)
          continue;  // the baseline itself
        UlvOptions u = ref;
        u.schedule = sched;
        u.priority = prio;
        u.n_workers = workers;
        const RunResult rk = run(p, h, u);
        const std::string cell =
            std::string(sched == UlvSchedule::Fifo ? "fifo" : "worksteal") +
            " x " + (prio == UlvPriority::None ? "none" : "critical-path") +
            " x " + std::to_string(workers) + " workers";
        EXPECT_EQ(rel_error_fro(rk.x, r1.x), 0.0) << cell;
        EXPECT_EQ(rk.logabsdet, r1.logabsdet) << cell;
      }
    }
  }
}

TEST(UlvDag, DefaultPolicyIsWorkStealWithCriticalPath) {
  const UlvOptions defaults;
  EXPECT_EQ(defaults.schedule, UlvSchedule::WorkSteal);
  EXPECT_EQ(defaults.priority, UlvPriority::CriticalPath);

  // The recorded execution reports the policy it ran under, one counter lane
  // per worker, and every task accounted for exactly once.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 4;
  const UlvFactorization f(h, u);
  const ExecStats& ex = f.stats().exec;
  EXPECT_STREQ(ex.schedule_policy, "worksteal");
  EXPECT_STREQ(ex.priority_policy, "critical-path");
  ASSERT_EQ(ex.worker_counters.size(), 4u);
  std::uint64_t executed = 0;
  for (const auto& w : ex.worker_counters) executed += w.executed;
  EXPECT_EQ(executed, static_cast<std::uint64_t>(f.stats().dag.n_tasks()));
  // Priorities rode along in the record: the final dense top task sits at
  // the end of every chain, so its bottom level is the minimum.
  const DagRecord& dag = f.stats().dag;
  ASSERT_EQ(dag.priority.size(), dag.meta.size());
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label != "top") continue;
    for (const double pr : dag.priority) EXPECT_GE(pr, dag.priority[t]);
  }
}

TEST(UlvDag, AgreesWithSequentialBaseline) {
  // The DAG executor must reproduce the Sequential (Sec. II.D) ablation's
  // numbers to within the factorization tolerance: same logabsdet to ~1e-8
  // relative, and a solve residual at the tolerance the bases admit.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions dag;
  dag.tol = 1e-9;
  dag.n_workers = 4;
  UlvOptions seq = dag;
  seq.mode = UlvMode::Sequential;
  const RunResult rd = run(p, h, dag);
  const RunResult rs = run(p, h, seq);
  EXPECT_LT(rd.residual, 1e-5);
  EXPECT_LT(rs.residual, 1e-5);
  EXPECT_NEAR(rd.logabsdet, rs.logabsdet, 1e-8 * std::abs(rs.logabsdet));
  EXPECT_LE(rel_error_fro(rd.x, rs.x), 1e-4);
}

TEST(UlvDag, MatchesPhaseLoopsAblationBitwise) {
  // TaskDag and the bulk-synchronous PhaseLoops ablation share the same
  // phase bodies; the executors must be indistinguishable in the output.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions dag;
  dag.tol = 1e-9;
  dag.n_workers = 2;
  UlvOptions loops = dag;
  loops.executor = UlvExecutor::PhaseLoops;
  const RunResult rd = run(p, h, dag);
  const RunResult rl = run(p, h, loops);
  EXPECT_EQ(rd.logabsdet, rl.logabsdet);
  EXPECT_LE(rel_error_fro(rd.x, rl.x), 1e-14);
}

TEST(UlvDag, DroppedMassDiagnosticsMatchPhaseLoops) {
  // measure_dropped reads the solved strips full-width, so its DAG tasks
  // need col_solve edges to every dense neighbor; with those in place the
  // accumulated mass matches the bulk-synchronous ablation up to the
  // mutex-ordered floating-point summation.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions dag;
  dag.tol = 1e-8;
  dag.measure_dropped = true;
  dag.n_workers = 4;
  UlvOptions loops = dag;
  loops.executor = UlvExecutor::PhaseLoops;
  const UlvFactorization fd(h, dag);
  const UlvFactorization fl(h, loops);
  EXPECT_GT(fl.stats().dropped_mass, 0.0);
  EXPECT_NEAR(fd.stats().dropped_mass, fl.stats().dropped_mass,
              1e-10 * fl.stats().dropped_mass);
}

TEST(UlvDag, DeprecatedUseThreadsStillWorks) {
  // The pre-Executor API: use_threads selects pool-parallel phase loops.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.use_threads = true;
  ThreadPool pool(3);
  u.pool = &pool;
  const RunResult r = run(p, h, u);
  EXPECT_LT(r.residual, 1e-4);
  EXPECT_TRUE(r.stats.dag.empty());  // bulk-synchronous: no DAG recorded
}

TEST(UlvDag, FactorizingFromAPoolWorkerDoesNotDeadlock) {
  // A factorization submitted onto the very pool the DAG would execute on
  // must fall back to a private pool — a worker blocking on work queued
  // behind itself would hang forever.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  ThreadPool pool(1);
  std::atomic<bool> solved{false};
  pool.submit([&] {
    UlvOptions u;
    u.tol = 1e-8;
    u.pool = &pool;  // deliberately the pool this task runs on
    const UlvFactorization f(h, u);
    solved = std::isfinite(f.logabsdet());
  });
  pool.wait_idle();
  EXPECT_TRUE(solved.load());
}

TEST(UlvDag, RecordedDagCoversEveryPhaseAndLevel) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 2;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());
  for (const std::string kind :
       {"assemble", "ry", "project_lr", "fill", "basis", "project",
        "eliminate", "col_solve", "schur", "merge", "top"}) {
    int count = 0;
    for (const TaskMeta& m : dag.meta) count += (m.label == kind);
    EXPECT_GT(count, 0) << kind;
  }
  for (int level = 1; level <= f.depth(); ++level) {
    int count = 0;
    for (const TaskMeta& m : dag.meta) count += (m.level == level);
    EXPECT_GT(count, 0) << "level " << level;
  }
  // The trace carries the same metadata per record.
  for (const TaskRecord& r : f.stats().exec.records) {
    ASSERT_GE(r.id, 0);
    EXPECT_EQ(r.label, dag.meta[r.id].label);
    EXPECT_EQ(r.owner, dag.meta[r.id].owner);
    EXPECT_EQ(r.level, dag.meta[r.id].level);
    EXPECT_LE(r.t_start, r.t_end);
  }
}

}  // namespace
}  // namespace h2
