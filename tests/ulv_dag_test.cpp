#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

H2BuildOptions strong_opts(double tol) {
  H2BuildOptions o;
  o.admissibility = {Admissibility::Strong, 0.75};
  o.tol = tol * 1e-2;
  return o;
}

/// Factor + solve one fixed system; returns everything the comparisons need.
struct RunResult {
  Matrix x;
  double logabsdet = 0.0;
  double residual = 0.0;  ///< relative ||Ax - b|| against the dense kernel
  UlvStats stats;
};

RunResult run(const Problem& p, const H2Matrix& h, UlvOptions u) {
  const int n = p.tree->n_points();
  const UlvFactorization f(h, u);
  Rng rng(7);
  Matrix b = Matrix::random(n, 1, rng);
  RunResult r;
  r.x = b;
  f.solve(r.x);
  r.logabsdet = f.logabsdet();
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  Matrix ax(n, 1);
  gemm(1.0, a, Trans::No, r.x, Trans::No, 0.0, ax);
  r.residual = rel_error_fro(ax, b);
  r.stats = f.stats();
  return r;
}

TEST(UlvDag, NoIntraLevelEliminateEliminateEdges) {
  // The acceptance property of the whole design: the built DAG realizes the
  // paper's "no trailing sub-matrix dependencies" — block-row eliminations
  // of one level are pairwise independent tasks.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 2;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());
  ASSERT_EQ(f.stats().exec.records.size(), dag.meta.size());

  int n_eliminate = 0, eliminate_out_edges = 0;
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label != "eliminate") continue;
    ++n_eliminate;
    for (const TaskId s : dag.successors[t]) {
      ++eliminate_out_edges;
      EXPECT_FALSE(dag.meta[s].label == "eliminate" &&
                   dag.meta[s].level == dag.meta[t].level)
          << "trailing dependency: eliminate #" << t << " -> eliminate #" << s
          << " at level " << dag.meta[t].level;
    }
  }
  // Sanity: the property is vacuous without eliminate tasks and their edges.
  EXPECT_GT(n_eliminate, 0);
  EXPECT_GT(eliminate_out_edges, 0);
}

TEST(UlvDag, MergeToFillEdgesLinkAdjacentLevels) {
  // Cross-level overlap hinges on merge -> {fill, basis, project} edges:
  // a parent block row may start its pipeline as soon as ITS four child
  // merges are done, not when the whole child level is.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 1;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());

  int merge_to_fill = 0, barrier_like = 0;
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label != "merge") continue;
    for (const TaskId s : dag.successors[t]) {
      if (dag.meta[s].label == "fill") ++merge_to_fill;
      // A bulk-synchronous encoding would route levels through one hub task.
      if (dag.meta[s].label == "barrier") ++barrier_like;
    }
  }
  EXPECT_GT(merge_to_fill, 0);
  EXPECT_EQ(barrier_like, 0);
}

TEST(UlvDag, WorkerCountDoesNotChangeTheAnswer) {
  // Every task performs the same block operations in the same order, so the
  // factorization is bitwise reproducible across worker counts — scheduling
  // only changes WHEN a task runs, never what it computes.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions u;
  u.tol = 1e-9;
  u.n_workers = 1;
  const RunResult r1 = run(p, h, u);
  EXPECT_LT(r1.residual, 1e-5);
  for (const int workers : {2, 4}) {
    UlvOptions uk = u;
    uk.n_workers = workers;
    const RunResult rk = run(p, h, uk);
    EXPECT_LE(rel_error_fro(rk.x, r1.x), 1e-14) << workers << " workers";
    EXPECT_EQ(rk.logabsdet, r1.logabsdet) << workers << " workers";
  }
}

TEST(UlvDag, SchedulerMatrixIsBitwiseIdentical) {
  // Scheduling policy and worker count may only change WHEN a task runs —
  // every cell of the {Fifo, WorkSteal} x {None, CriticalPath} x {1, 4, 8}
  // matrix must reproduce the single-worker FIFO baseline bit for bit.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions ref;
  ref.tol = 1e-9;
  ref.n_workers = 1;
  ref.schedule = UlvSchedule::Fifo;
  ref.priority = UlvPriority::None;
  const RunResult r1 = run(p, h, ref);
  EXPECT_LT(r1.residual, 1e-5);
  for (const UlvSchedule sched : {UlvSchedule::Fifo, UlvSchedule::WorkSteal}) {
    for (const UlvPriority prio :
         {UlvPriority::None, UlvPriority::CriticalPath}) {
      for (const int workers : {1, 4, 8}) {
        if (sched == ref.schedule && prio == ref.priority && workers == 1)
          continue;  // the baseline itself
        UlvOptions u = ref;
        u.schedule = sched;
        u.priority = prio;
        u.n_workers = workers;
        const RunResult rk = run(p, h, u);
        const std::string cell =
            std::string(sched == UlvSchedule::Fifo ? "fifo" : "worksteal") +
            " x " + (prio == UlvPriority::None ? "none" : "critical-path") +
            " x " + std::to_string(workers) + " workers";
        EXPECT_EQ(rel_error_fro(rk.x, r1.x), 0.0) << cell;
        EXPECT_EQ(rk.logabsdet, r1.logabsdet) << cell;
      }
    }
  }
}

TEST(UlvDag, DefaultPolicyIsWorkStealWithCriticalPath) {
  const UlvOptions defaults;
  EXPECT_EQ(defaults.schedule, UlvSchedule::WorkSteal);
  EXPECT_EQ(defaults.priority, UlvPriority::CriticalPath);

  // The recorded execution reports the policy it ran under, one counter lane
  // per worker, and every task accounted for exactly once.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 4;
  const UlvFactorization f(h, u);
  const ExecStats& ex = f.stats().exec;
  EXPECT_STREQ(ex.schedule_policy, "worksteal");
  EXPECT_STREQ(ex.priority_policy, "critical-path");
  ASSERT_EQ(ex.worker_counters.size(), 4u);
  std::uint64_t executed = 0;
  for (const auto& w : ex.worker_counters) executed += w.executed;
  EXPECT_EQ(executed, static_cast<std::uint64_t>(f.stats().dag.n_tasks()));
  // Priorities rode along in the record: the final dense top task sits at
  // the end of every chain, so its bottom level is the minimum.
  const DagRecord& dag = f.stats().dag;
  ASSERT_EQ(dag.priority.size(), dag.meta.size());
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label != "top") continue;
    for (const double pr : dag.priority) EXPECT_GE(pr, dag.priority[t]);
  }
}

TEST(UlvDag, AgreesWithSequentialBaseline) {
  // The DAG executor must reproduce the Sequential (Sec. II.D) ablation's
  // numbers to within the factorization tolerance: same logabsdet to ~1e-8
  // relative, and a solve residual at the tolerance the bases admit.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions dag;
  dag.tol = 1e-9;
  dag.n_workers = 4;
  UlvOptions seq = dag;
  seq.mode = UlvMode::Sequential;
  const RunResult rd = run(p, h, dag);
  const RunResult rs = run(p, h, seq);
  EXPECT_LT(rd.residual, 1e-5);
  EXPECT_LT(rs.residual, 1e-5);
  EXPECT_NEAR(rd.logabsdet, rs.logabsdet, 1e-8 * std::abs(rs.logabsdet));
  EXPECT_LE(rel_error_fro(rd.x, rs.x), 1e-4);
}

TEST(UlvDag, MatchesPhaseLoopsAblationBitwise) {
  // TaskDag and the bulk-synchronous PhaseLoops ablation share the same
  // phase bodies; the executors must be indistinguishable in the output.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  UlvOptions dag;
  dag.tol = 1e-9;
  dag.n_workers = 2;
  UlvOptions loops = dag;
  loops.executor = UlvExecutor::PhaseLoops;
  const RunResult rd = run(p, h, dag);
  const RunResult rl = run(p, h, loops);
  EXPECT_EQ(rd.logabsdet, rl.logabsdet);
  EXPECT_LE(rel_error_fro(rd.x, rl.x), 1e-14);
}

TEST(UlvDag, DroppedMassDiagnosticsMatchPhaseLoops) {
  // measure_dropped reads the solved strips full-width, so its DAG tasks
  // need col_solve edges to every dense neighbor; with those in place the
  // accumulated mass matches the bulk-synchronous ablation up to the
  // mutex-ordered floating-point summation.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions dag;
  dag.tol = 1e-8;
  dag.measure_dropped = true;
  dag.n_workers = 4;
  UlvOptions loops = dag;
  loops.executor = UlvExecutor::PhaseLoops;
  const UlvFactorization fd(h, dag);
  const UlvFactorization fl(h, loops);
  EXPECT_GT(fl.stats().dropped_mass, 0.0);
  EXPECT_NEAR(fd.stats().dropped_mass, fl.stats().dropped_mass,
              1e-10 * fl.stats().dropped_mass);
}

TEST(UlvDag, DeprecatedUseThreadsStillWorks) {
  // The pre-Executor API: use_threads selects pool-parallel phase loops.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.use_threads = true;
  ThreadPool pool(3);
  u.pool = &pool;
  const RunResult r = run(p, h, u);
  EXPECT_LT(r.residual, 1e-4);
  EXPECT_TRUE(r.stats.dag.empty());  // bulk-synchronous: no DAG recorded
}

TEST(UlvDag, FactorizingFromAPoolWorkerDoesNotDeadlock) {
  // A factorization submitted onto the very pool the DAG would execute on
  // must fall back to a private pool — a worker blocking on work queued
  // behind itself would hang forever.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  ThreadPool pool(1);
  std::atomic<bool> solved{false};
  pool.submit([&] {
    UlvOptions u;
    u.tol = 1e-8;
    u.pool = &pool;  // deliberately the pool this task runs on
    const UlvFactorization f(h, u);
    solved = std::isfinite(f.logabsdet());
  });
  pool.wait_idle();
  EXPECT_TRUE(solved.load());
}

TEST(UlvDag, RecordedDagCoversEveryPhaseAndLevel) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 2;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());
  for (const std::string kind :
       {"assemble", "ry", "project_lr", "fill", "basis", "project",
        "eliminate", "col_solve", "schur", "merge", "top"}) {
    int count = 0;
    for (const TaskMeta& m : dag.meta) count += (m.label == kind);
    EXPECT_GT(count, 0) << kind;
  }
  for (int level = 1; level <= f.depth(); ++level) {
    int count = 0;
    for (const TaskMeta& m : dag.meta) count += (m.level == level);
    EXPECT_GT(count, 0) << "level " << level;
  }
  // The trace carries the same metadata per record.
  for (const TaskRecord& r : f.stats().exec.records) {
    ASSERT_GE(r.id, 0);
    EXPECT_EQ(r.label, dag.meta[r.id].label);
    EXPECT_EQ(r.owner, dag.meta[r.id].owner);
    EXPECT_EQ(r.level, dag.meta[r.id].level);
    EXPECT_LE(r.t_start, r.t_end);
  }
}

// ---------------------------------------------------------------------------
// Block lifetime & peak memory (the release tasks wired into the DAG).
// ---------------------------------------------------------------------------

// Sanitizer builds pay a 2-10x slowdown; the memory properties below hold at
// every size (measured ratios ~0.37-0.41 from N=1024 to N=4096), so they run
// scaled down there and at the full regression size everywhere else.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kMemN = 1024;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kMemN = 1024;
#else
constexpr int kMemN = 4096;
#endif
#else
constexpr int kMemN = 4096;
#endif

/// Factor + solve without the dense-kernel residual (too heavy at kMemN).
struct MemRun {
  Matrix x;
  double logabsdet = 0.0;
  UlvStats stats;
};

MemRun mem_run(const H2Matrix& h, int n, UlvOptions u) {
  const UlvFactorization f(h, u);
  Rng rng(7);
  MemRun r;
  r.x = Matrix::random(n, 1, rng);
  f.solve(r.x);
  r.logabsdet = f.logabsdet();
  r.stats = f.stats();
  return r;
}

TEST(UlvDag, ReleaseTasksBoundPeakFactorizationMemory) {
  // The memory regression gate: with release tasks the factorization's peak
  // tracked block bytes must stay (a) under half of the retain-everything
  // ablation's peak and (b) under the summed task payloads of the two
  // heaviest adjacent levels — the "O(two active levels), not O(whole
  // tree)" bound the release design exists for. Results must be bitwise
  // identical across release x executor x worker count throughout.
  const Problem p =
      make_problem(kMemN, 128, Geometry::Sphere, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));

  UlvOptions retain;
  retain.tol = 1e-6;
  retain.n_workers = 1;
  retain.release_blocks = false;
  const MemRun base = mem_run(h, kMemN, retain);
  // Retaining everything means the high-water mark IS the end state.
  EXPECT_EQ(base.stats.peak_block_bytes, base.stats.final_block_bytes);
  ASSERT_GT(base.stats.peak_block_bytes, 0u);

  DagRecord recorded;  // from the 1-worker TaskDag release run below
  std::uint64_t recorded_peak = 0;
  std::uint64_t released_final = 0;
  for (const UlvExecutor ex : {UlvExecutor::TaskDag, UlvExecutor::PhaseLoops}) {
    for (const int workers : {1, 4}) {
      UlvOptions u = retain;
      u.release_blocks = true;
      u.executor = ex;
      u.n_workers = workers;
      u.record_tasks = (ex == UlvExecutor::TaskDag && workers == 1);
      const MemRun r = mem_run(h, kMemN, u);
      const std::string cell =
          std::string(ex == UlvExecutor::TaskDag ? "TaskDag" : "PhaseLoops") +
          " x " + std::to_string(workers) + " workers";
      // Releases only ever free dead blocks: bitwise identical results.
      EXPECT_EQ(rel_error_fro(r.x, base.x), 0.0) << cell;
      EXPECT_EQ(r.logabsdet, base.logabsdet) << cell;
      // The 50% acceptance gate (measured ~0.37-0.41 across sizes).
      EXPECT_LE(r.stats.peak_block_bytes, base.stats.peak_block_bytes / 2)
          << cell;
      // What survives is exactly the persistent factor, identical across
      // executors and worker counts (same bitwise blocks), and the peak
      // hugs it — releases fire as soon as the last consumer retires.
      EXPECT_GE(r.stats.peak_block_bytes, r.stats.final_block_bytes) << cell;
      if (released_final == 0)
        released_final = r.stats.final_block_bytes;
      else
        EXPECT_EQ(r.stats.final_block_bytes, released_final) << cell;
      if (u.record_tasks) {
        recorded = r.stats.dag;
        recorded_peak = r.stats.peak_block_bytes;
      }
    }
  }
  // The retained ablation holds the factor PLUS the whole workspace.
  EXPECT_LT(released_final, base.stats.final_block_bytes);

  // Adjacent-levels bound, from the recorded per-task payloads: peak tracked
  // bytes <= sum of the two heaviest adjacent levels' task output bytes
  // (measured ~0.4x of it; C = 1 leaves >2x headroom without letting an
  // O(whole tree) regression through).
  ASSERT_FALSE(recorded.empty());
  ASSERT_FALSE(recorded.out_bytes.empty());
  std::vector<double> level_bytes;
  for (int t = 0; t < recorded.n_tasks(); ++t) {
    const int l = recorded.meta[t].level;
    if (l < 0) continue;
    if (l >= static_cast<int>(level_bytes.size()))
      level_bytes.resize(l + 1, 0.0);
    level_bytes[l] += recorded.out_bytes[t];
  }
  ASSERT_GE(level_bytes.size(), 2u);
  double heaviest_adjacent = 0.0;
  for (std::size_t l = 0; l + 1 < level_bytes.size(); ++l)
    heaviest_adjacent =
        std::max(heaviest_adjacent, level_bytes[l] + level_bytes[l + 1]);
  ASSERT_GT(heaviest_adjacent, 0.0);
  ASSERT_GT(recorded_peak, 0u);
  EXPECT_LE(static_cast<double>(recorded_peak), heaviest_adjacent);
}

TEST(UlvDag, RecordedReleaseTasksHaveConsumerEdgesAndNoPayload) {
  // Structure of the recorded DAG with releases: every per-resource release
  // depends on its producer AND each consumer (the dependency counter is the
  // block's reference count), carries no payload, and is absent entirely
  // when release_blocks is off.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  u.n_workers = 2;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.stats().dag;
  ASSERT_FALSE(dag.empty());

  std::vector<int> preds(dag.n_tasks(), 0);
  for (TaskId t = 0; t < dag.n_tasks(); ++t)
    for (const TaskId s : dag.successors[t]) ++preds[s];

  int n_release = 0, n_release_level = 0;
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    const std::string& label = dag.meta[t].label;
    if (label == "release") {
      ++n_release;
      // Producer + at least one consumer: ry factors, fill spaces and
      // skeleton blocks all have real readers.
      EXPECT_GE(preds[t], 2) << "release #" << t;
    } else if (label == "release_level") {
      ++n_release_level;
      EXPECT_GE(preds[t], 1) << "release_level #" << t;
    } else {
      continue;
    }
    EXPECT_EQ(dag.out_bytes[t], 0.0) << "release tasks move no data";
    EXPECT_GE(dag.meta[t].level, 1);
  }
  EXPECT_GT(n_release, 0);
  EXPECT_EQ(n_release_level, f.depth());

  // Release tasks outrank every compute task under the critical-path
  // policy: a ready release (microseconds, frees megabytes) must not queue
  // behind a level's compute.
  ASSERT_FALSE(dag.priority.empty());
  double max_compute = 0.0, min_release = 0.0;
  bool first_release = true;
  for (TaskId t = 0; t < dag.n_tasks(); ++t) {
    if (dag.meta[t].label.rfind("release", 0) == 0) {
      min_release = first_release ? dag.priority[t]
                                  : std::min(min_release, dag.priority[t]);
      first_release = false;
    } else {
      max_compute = std::max(max_compute, dag.priority[t]);
    }
  }
  EXPECT_GT(min_release, max_compute);

  // The retain-everything ablation records a release-free DAG.
  UlvOptions keep = u;
  keep.release_blocks = false;
  const UlvFactorization fk(h, keep);
  for (const TaskMeta& m : fk.stats().dag.meta)
    EXPECT_NE(m.label.rfind("release", 0), 0u) << m.label;
}

TEST(UlvDag, FreeTimePayloadCaptureMatchesRetainEverything) {
  // out_bytes used to be computed post-execution over retained state; they
  // are now captured inside each task the moment its outputs exist. With
  // release_blocks off nothing is ever freed, so the free-time values must
  // equal what the post-hoc sweep would have read — and the release run's
  // compute prefix (task ids are allocated before any release task) must
  // carry exactly the same payloads, or releasing corrupted the capture.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions rel;
  rel.tol = 1e-8;
  rel.record_tasks = true;
  rel.n_workers = 4;
  UlvOptions keep = rel;
  keep.release_blocks = false;
  const UlvFactorization fr(h, rel);
  const UlvFactorization fk(h, keep);
  const DagRecord& dr = fr.stats().dag;
  const DagRecord& dk = fk.stats().dag;
  ASSERT_FALSE(dr.out_bytes.empty());
  ASSERT_FALSE(dk.out_bytes.empty());
  ASSERT_GT(dr.n_tasks(), dk.n_tasks());  // the release tasks
  double total = 0.0;
  for (TaskId t = 0; t < dk.n_tasks(); ++t) {
    ASSERT_EQ(dr.meta[t].label, dk.meta[t].label);
    EXPECT_EQ(dr.out_bytes[t], dk.out_bytes[t])
        << dk.meta[t].label << " #" << t;
    total += dk.out_bytes[t];
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace h2
