#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"

namespace h2 {
namespace {

TEST(Cloud, UniformCubeInUnitBox) {
  Rng rng(1);
  const PointCloud pts = uniform_cube(500, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.z, 1.0);
  }
  EXPECT_GT(cloud_diameter(pts), 1.0);
  EXPECT_LT(cloud_diameter(pts), 1.8);
}

TEST(Cloud, SphereSurfaceOnSphere) {
  Rng rng(2);
  const PointCloud pts = sphere_surface(300, rng, {1, 2, 3}, 2.0);
  ASSERT_EQ(pts.size(), 300u);
  for (const auto& p : pts)
    EXPECT_NEAR(dist(p, Point{1, 2, 3}), 2.0, 1e-9);
}

TEST(Cloud, MoleculeSurfaceIsExposed) {
  Rng rng(3);
  const PointCloud pts = molecule_surface(400, rng);
  ASSERT_EQ(pts.size(), 400u);
  // Non-degenerate, blob-scaled geometry.
  const double d = cloud_diameter(pts);
  EXPECT_GT(d, 1.0);
  EXPECT_LT(d, 30.0);
}

TEST(Cloud, CrowdedMoleculesCountAndSpread) {
  Rng rng(4);
  const PointCloud pts = crowded_molecules(800, rng, 8);
  ASSERT_EQ(pts.size(), 800u);
  EXPECT_GT(cloud_diameter(pts), 7.0);  // spans multiple grid cells
}

class TreeTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeTest, PartitionIsAPermutation) {
  const int n = GetParam();
  Rng rng(n);
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, 32, rng);
  ASSERT_EQ(tree.n_points(), n);
  std::set<int> seen(tree.perm().begin(), tree.perm().end());
  EXPECT_EQ(static_cast<int>(seen.size()), n);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(tree.points()[i].x, pts[tree.perm()[i]].x);
}

TEST_P(TreeTest, FullBinaryBalancedTree) {
  const int n = GetParam();
  Rng rng(n + 1);
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, 32, rng);
  const int depth = tree.depth();
  EXPECT_LE(1 << depth, n);
  for (int l = 0; l <= depth; ++l) {
    int total = 0;
    int prev_end = 0;
    for (int c = 0; c < tree.n_clusters(l); ++c) {
      const ClusterNode& nd = tree.node(l, c);
      EXPECT_EQ(nd.begin, prev_end);  // contiguous, ordered
      prev_end = nd.end;
      total += nd.size();
      if (l == depth) {
        EXPECT_LE(nd.size(), 32);
        EXPECT_GE(nd.size(), 1);
      }
    }
    EXPECT_EQ(total, n);
  }
  // Sibling sizes differ by at most one (median splits).
  for (int c = 0; c + 1 < tree.n_clusters(depth); c += 2) {
    EXPECT_LE(std::abs(tree.node(depth, c).size() -
                       tree.node(depth, c + 1).size()),
              1);
  }
}

TEST_P(TreeTest, BoundingSpheresContainPoints) {
  const int n = GetParam();
  Rng rng(n + 2);
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  for (int l = 0; l <= tree.depth(); ++l)
    for (int c = 0; c < tree.n_clusters(l); ++c) {
      const ClusterNode& nd = tree.node(l, c);
      for (const auto& p : tree.cluster_points(l, c))
        EXPECT_LE(dist(p, nd.center), nd.radius + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeTest, ::testing::Values(33, 64, 100, 257, 1024));

TEST(Tree, SinglePointAndTinyClouds) {
  Rng rng(5);
  for (const int n : {1, 2, 3}) {
    const PointCloud pts = uniform_cube(n, rng);
    const ClusterTree tree = ClusterTree::build(pts, 8, rng);
    EXPECT_EQ(tree.depth(), 0);
    EXPECT_EQ(tree.node(0, 0).size(), n);
  }
}

TEST(Tree, DuplicatePointsDoNotBreakPartitioning) {
  Rng rng(6);
  PointCloud pts(64, Point{0.5, 0.5, 0.5});  // all identical
  const ClusterTree tree = ClusterTree::build(pts, 8, rng);
  EXPECT_GE(tree.depth(), 3);
  for (int c = 0; c < tree.n_clusters(tree.depth()); ++c)
    EXPECT_EQ(tree.node(tree.depth(), c).size(), 64 / tree.n_clusters(tree.depth()));
}

TEST(Tree, KMeansSeparatesTwoBlobs) {
  Rng rng(7);
  PointCloud pts;
  for (int i = 0; i < 64; ++i) {
    const PointCloud a = sphere_surface(1, rng, {0, 0, 0}, 0.5);
    const PointCloud b = sphere_surface(1, rng, {10, 0, 0}, 0.5);
    pts.push_back(a[0]);
    pts.push_back(b[0]);
  }
  const ClusterTree tree = ClusterTree::build(pts, 64, rng);
  ASSERT_EQ(tree.depth(), 1);
  // Each level-1 cluster should be one blob: radius << blob separation.
  EXPECT_LT(tree.node(1, 0).radius, 2.0);
  EXPECT_LT(tree.node(1, 1).radius, 2.0);
  EXPECT_GT(dist(tree.node(1, 0).center, tree.node(1, 1).center), 8.0);
}

TEST(Tree, OrderRoundTrip) {
  Rng rng(8);
  const PointCloud pts = uniform_cube(100, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  std::vector<double> orig(100);
  for (int i = 0; i < 100; ++i) orig[i] = i * 1.5;
  const auto treeord = tree.to_tree_order(orig);
  const auto back = tree.to_original_order(treeord);
  EXPECT_EQ(back, orig);
  EXPECT_EQ(treeord[0], 1.5 * tree.perm()[0]);
}

TEST(Tree, MatrixOrderRoundTripIsExact) {
  // The multi-RHS permutation helpers the h2::Solver facade routes
  // point-ordered right-hand sides through: pure data movement, so the
  // round trip is exact (bitwise), column by column.
  Rng rng(9);
  const int n = 257, nrhs = 5;
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  const Matrix x = Matrix::random(n, nrhs, rng);
  const Matrix treeord = tree.to_tree_order(x);
  const Matrix back = tree.from_tree_order(treeord);
  ASSERT_EQ(back.rows(), n);
  ASSERT_EQ(back.cols(), nrhs);
  for (int j = 0; j < nrhs; ++j)
    for (int i = 0; i < n; ++i) EXPECT_EQ(back(i, j), x(i, j));
  // Consistent with the vector helpers.
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(treeord(i, 0), x(tree.perm()[i], 0));
}

}  // namespace
}  // namespace h2
