// The fp32 lifecycle contracts that make Precision::F32 a first-class axis
// rather than a demo: fp32 runs are bitwise identical across executors,
// schedules, and worker counts (the same determinism contract fp64 carries);
// fp32 factor blocks survive SpillStore round-trips bit for bit at HALF the
// fp64 spill bytes; the fp32 peak factor footprint lands at half of fp64's
// (<= 0.55x with slack); and the recorded DAG reports fp32 task payloads at
// their real byte sizes with the flop counts unchanged.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols())) == 0;
}

H2BuildOptions strong_opts(double tol) {
  H2BuildOptions o;
  o.admissibility = {Admissibility::Strong, 0.75};
  o.tol = tol * 1e-2;
  return o;
}

UlvOptions f32_opts(double tol) {
  UlvOptions u;
  u.tol = tol;
  u.precision = Precision::F32;
  return u;
}

/// Fixed b from Rng(7), solved in place (fp64 in/out; the engine rounds to
/// fp32 internally under Precision::F32).
Matrix solve_fixed(const Problem& p, const UlvFactorization& f) {
  Rng rng(7);
  Matrix x = Matrix::random(p.tree->n_points(), 1, rng);
  f.solve(x);
  return x;
}

/// Scratch directory under the system temp dir, removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("h2-prec-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(PrecisionDeterminism, F32BitwiseAcrossExecutorsSchedulesAndWorkers) {
  // The determinism contract is per-precision: an fp32 factorization + solve
  // must be bitwise identical no matter which executor ran it, which queue
  // discipline the pool used, or how many workers raced — exactly the
  // guarantee the fp64 path already carries.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));

  UlvOptions ref = f32_opts(1e-6);
  ref.n_workers = 1;
  const UlvFactorization fref(h, ref);
  const Matrix x_ref = solve_fixed(p, fref);
  const double ld_ref = fref.logabsdet();
  ASSERT_EQ(fref.precision(), Precision::F32);

  const UlvExecutor executors[] = {UlvExecutor::TaskDag,
                                   UlvExecutor::PhaseLoops};
  const UlvSchedule schedules[] = {UlvSchedule::Fifo, UlvSchedule::WorkSteal};
  const int workers[] = {1, 4, 8};
  for (const UlvExecutor ex : executors) {
    for (const UlvSchedule sc : schedules) {
      for (const int w : workers) {
        UlvOptions u = f32_opts(1e-6);
        u.executor = ex;
        u.solve_executor = ex;
        u.schedule = sc;
        u.n_workers = w;
        const UlvFactorization f(h, u);
        EXPECT_TRUE(bitwise_equal(solve_fixed(p, f), x_ref))
            << "executor " << static_cast<int>(ex) << " schedule "
            << static_cast<int>(sc) << " workers " << w;
        EXPECT_EQ(f.logabsdet(), ld_ref);
      }
    }
  }
}

TEST(PrecisionDeterminism, F32SpillRoundTripsBitwiseAtHalfTheBytes) {
  // Spilling moves bytes, never transforms them — so an fp32 factorization
  // forced through a budget-0 (pure disk) spill tier must reproduce the
  // in-RAM fp32 answer bit for bit. And because fp32 blocks are written at
  // their real element size, the same blocks spill at exactly half the fp64
  // payload bytes.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));

  const UlvFactorization fref(h, f32_opts(1e-6));
  const Matrix x_ref = solve_fixed(p, fref);

  TempDir tmp;
  auto spill_opts = [&](Precision prec) {
    UlvOptions u;
    u.tol = 1e-6;
    u.precision = prec;
    u.spill_dir = tmp.path;
    u.spill_budget_bytes = 0;  // nothing stays resident between sweeps
    return u;
  };
  const UlvFactorization f32(h, spill_opts(Precision::F32));
  EXPECT_TRUE(bitwise_equal(solve_fixed(p, f32), x_ref));
  const UlvStats s32 = f32.stats();
  ASSERT_GT(s32.spilled_blocks, 0u) << "nothing ever hit the disk";
  ASSERT_GT(s32.spilled_bytes, 0u);

  const UlvFactorization f64(h, spill_opts(Precision::F64));
  const UlvStats s64 = f64.stats();
  EXPECT_EQ(s32.spilled_blocks, s64.spilled_blocks)
      << "precision changed WHICH blocks spill";
  EXPECT_EQ(2 * s32.spilled_bytes, s64.spilled_bytes)
      << "fp32 blocks must spill at half the fp64 payload";
}

TEST(PrecisionDeterminism, F32PeakFactorBytesAtMostHalfOfF64) {
  // The acceptance bound on the tentpole's memory claim: with byte-true
  // accounting, the fp32 factorization's peak resident factor bytes come in
  // at <= 0.55x the fp64 peak (0.5 exactly, plus slack for the fp64
  // reflectors/pivot scratch that does not shrink). The fp64 factorization
  // is scoped so it is destroyed before the fp32 one builds — the peak gauge
  // is a process-global high-water mark measured per factorization window.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));

  std::uint64_t peak64 = 0;
  {
    UlvOptions u;
    u.tol = 1e-6;
    const UlvFactorization f(h, u);
    peak64 = f.stats().peak_block_bytes;
  }
  ASSERT_GT(peak64, 0u);

  const UlvFactorization f(h, f32_opts(1e-6));
  const std::uint64_t peak32 = f.stats().peak_block_bytes;
  ASSERT_GT(peak32, 0u);
  EXPECT_LE(static_cast<double>(peak32), 0.55 * static_cast<double>(peak64))
      << "fp32 peak " << peak32 << " vs fp64 peak " << peak64;
}

TEST(PrecisionDeterminism, RecordedOutBytesHalvedAndFlopsUnchanged) {
  // Truthful accounting under the precision axis: the recorded DAG for an
  // fp32 run has the same tasks and the same flop count as the fp64 run
  // (ranks are fixed by the shared fp64 H2 skeleton; flops count operations,
  // not bytes), while every recorded task payload is exactly half — bytes
  // are sizeof(T)-true, not hard-coded 8.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));

  auto rec_opts = [](Precision prec) {
    UlvOptions u;
    u.tol = 1e-6;
    u.precision = prec;
    u.record_tasks = true;
    u.executor = UlvExecutor::TaskDag;
    return u;
  };
  const UlvFactorization f64(h, rec_opts(Precision::F64));
  const UlvFactorization f32(h, rec_opts(Precision::F32));
  const UlvStats s64 = f64.stats();
  const UlvStats s32 = f32.stats();

  ASSERT_FALSE(s64.dag.empty());
  ASSERT_EQ(s64.dag.n_tasks(), s32.dag.n_tasks());
  EXPECT_EQ(s64.factor_flops, s32.factor_flops);

  ASSERT_EQ(s64.dag.out_bytes.size(), s64.dag.n_tasks());
  ASSERT_EQ(s32.dag.out_bytes.size(), s32.dag.n_tasks());
  double total64 = 0.0;
  int recorded = 0;
  for (std::size_t t = 0; t < s64.dag.out_bytes.size(); ++t) {
    const double b64 = s64.dag.out_bytes[t];
    const double b32 = s32.dag.out_bytes[t];
    if (b64 <= 0.0) {
      EXPECT_LE(b32, 0.0) << "task " << t << " (" << s64.dag.meta[t].label
                          << ") recorded bytes only under fp32";
      continue;
    }
    ++recorded;
    total64 += b64;
    EXPECT_EQ(b32, 0.5 * b64)
        << "task " << t << " (" << s64.dag.meta[t].label << ")";
  }
  EXPECT_GT(recorded, 0) << "no task ever recorded an output payload";
  EXPECT_GT(total64, 0.0);
}

TEST(PrecisionDeterminism, F32FinalBlockBytesHalved) {
  // The settled factorization (what a long-lived Solver actually holds)
  // shrinks by exactly the element-size ratio: identical block shapes, half
  // the bytes. The gauge is process-global live bytes, so the fp64
  // factorization is scoped out before the fp32 one builds.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));
  std::uint64_t final64 = 0;
  {
    UlvOptions u64;
    u64.tol = 1e-6;
    const UlvFactorization f64(h, u64);
    final64 = f64.stats().final_block_bytes;
  }
  ASSERT_GT(final64, 0u);
  const UlvFactorization f32(h, f32_opts(1e-6));
  EXPECT_EQ(2 * f32.stats().final_block_bytes, final64);
}

}  // namespace
}  // namespace h2
