#include <gtest/gtest.h>

#include "core/refine.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;
using testing_support::ulv_solution_error;

H2BuildOptions build_opts(Admissibility adm, double tol) {
  H2BuildOptions o;
  o.admissibility = {adm, 0.75};
  o.tol = 1e-2 * tol;
  return o;
}

TEST(UlvExtended, NonPowerOfTwoSizes) {
  for (const int n : {250, 301, 509}) {
    const Problem p =
        make_problem(n, 32, Geometry::Cube, KernelKind::Laplace, n);
    UlvOptions u;
    u.tol = 1e-9;
    const double err =
        ulv_solution_error(p, build_opts(Admissibility::Strong, 1e-9), u);
    EXPECT_LT(err, 1e-4) << "n=" << n;
  }
}

TEST(UlvExtended, TinyLeafDeepTree) {
  const Problem p = make_problem(256, 8, Geometry::Cube, KernelKind::Laplace);
  EXPECT_EQ(p.tree->depth(), 5);
  UlvOptions u;
  u.tol = 1e-9;
  const double err =
      ulv_solution_error(p, build_opts(Admissibility::Strong, 1e-9), u);
  EXPECT_LT(err, 1e-4);
}

TEST(UlvExtended, SequentialEqualsParallelForWeakAdmissibility) {
  // With weak admissibility there are no cross-block Schur terms, so the two
  // modes compute the identical factorization.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Weak, 1e-8));
  UlvOptions up;
  up.tol = 1e-8;
  UlvOptions us = up;
  us.mode = UlvMode::Sequential;
  const UlvFactorization fp(h, up);
  const UlvFactorization fs(h, us);
  Rng rng(5);
  const Matrix b = Matrix::random(256, 1, rng);
  Matrix xp = b, xs = b;
  fp.solve(xp);
  fs.solve(xs);
  EXPECT_LT(rel_error_fro(xs, xp), 1e-12);
  EXPECT_NEAR(fp.logabsdet(), fs.logabsdet(), 1e-10 * std::abs(fp.logabsdet()));
}

TEST(UlvExtended, SolveIsDeterministic) {
  const Problem p = make_problem(300, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Strong, 1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f1(h, u);
  const UlvFactorization f2(h, u);
  Rng rng(6);
  const Matrix b = Matrix::random(300, 2, rng);
  Matrix x1 = b, x2 = b;
  f1.solve(x1);
  f2.solve(x2);
  EXPECT_LT(rel_error_fro(x1, x2), 1e-15);
}

TEST(UlvExtended, ZeroRhsGivesZeroSolution) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Strong, 1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  Matrix b(256, 1);
  f.solve(b);
  EXPECT_EQ(norm_fro(b), 0.0);
}

TEST(UlvExtended, LinearityOfSolve) {
  // F^-1(a b1 + b2) == a F^-1 b1 + F^-1 b2 — the factorization is a fixed
  // linear operator.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Strong, 1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  Rng rng(7);
  const Matrix b1 = Matrix::random(256, 1, rng);
  const Matrix b2 = Matrix::random(256, 1, rng);
  Matrix combo(256, 1);
  for (int i = 0; i < 256; ++i) combo(i, 0) = 2.5 * b1(i, 0) + b2(i, 0);
  Matrix x1 = b1, x2 = b2, xc = combo;
  f.solve(x1);
  f.solve(x2);
  f.solve(xc);
  Matrix want(256, 1);
  for (int i = 0; i < 256; ++i) want(i, 0) = 2.5 * x1(i, 0) + x2(i, 0);
  EXPECT_LT(rel_error_fro(xc, want), 1e-12);
}

TEST(UlvExtended, IterativeRefinementRecoversDigits) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  // Accurate representation, sloppy factorization: refinement should recover
  // the representation's accuracy.
  H2BuildOptions ho = build_opts(Admissibility::Strong, 1e-10);
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-4;
  const UlvFactorization f(h, u);
  Rng rng(8);
  const Matrix b = Matrix::random(512, 1, rng);

  Matrix x0 = b;
  f.solve(x0);
  Matrix ax(512, 1);
  h.matvec(x0, ax);
  const double r0 = rel_error_fro(ax, b);

  Matrix x = b;
  f.solve(x);
  const double r3 = ulv_refine(h, f, b, x, 3);
  EXPECT_LT(r3, 1e-2 * r0);
  EXPECT_LT(r3, 1e-8);
}

TEST(UlvExtended, RefinementIsANoOpOnExactSolves) {
  const Problem p = make_problem(128, 64, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Weak, 1e-12));
  UlvOptions u;
  u.tol = 1e-12;
  const UlvFactorization f(h, u);
  Rng rng(9);
  const Matrix b = Matrix::random(128, 1, rng);
  Matrix x = b;
  f.solve(x);
  const double rel = ulv_refine(h, f, b, x, 2);
  EXPECT_LT(rel, 1e-10);
}

TEST(UlvExtended, HssRankGrowsWithNButH2RankBounded) {
  // The paper's motivating observation (Secs. I, III): weak admissibility in
  // 3-D forces the off-diagonal block rank to grow with N; strong
  // admissibility keeps it bounded.
  int hss_prev = 0, hss_last = 0, h2_last = 0;
  for (const int n : {256, 512, 1024}) {
    const Problem p =
        make_problem(n, 32, Geometry::Cube, KernelKind::Laplace, 3);
    UlvOptions u;
    u.tol = 1e-8;
    const H2Matrix hss(*p.tree, *p.kernel, build_opts(Admissibility::Weak, 1e-8));
    const H2Matrix h2m(*p.tree, *p.kernel, build_opts(Admissibility::Strong, 1e-8));
    const UlvFactorization f1(hss, u);
    const UlvFactorization f2(h2m, u);
    hss_prev = hss_last;
    hss_last = f1.stats().max_rank;
    h2_last = f2.stats().max_rank;
  }
  EXPECT_GT(hss_last, hss_prev * 1.2) << "HSS rank should keep growing";
  EXPECT_GT(hss_last, h2_last) << "HSS rank should exceed H2's";
}

TEST(UlvExtended, StatsTimersAreConsistent) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Strong, 1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  EXPECT_GT(f.stats().factor_seconds, 0.0);
  EXPECT_GE(f.stats().factor_seconds, f.stats().setup_seconds);
  EXPECT_GT(f.stats().factor_flops, 0u);
}

TEST(UlvExtended, CrowdedGeometryDeterminantFinite) {
  const Problem p = make_problem(512, 64, Geometry::Crowded, KernelKind::Yukawa);
  const H2Matrix h(*p.tree, *p.kernel, build_opts(Admissibility::Strong, 1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  const double ld = f.logabsdet();
  EXPECT_TRUE(std::isfinite(ld));
}

}  // namespace
}  // namespace h2
