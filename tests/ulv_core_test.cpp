#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;
using testing_support::ulv_solution_error;

H2BuildOptions weak_opts(double tol) {
  H2BuildOptions o;
  o.admissibility = {Admissibility::Weak, 0.0};
  o.tol = tol * 1e-2;
  return o;
}
H2BuildOptions strong_opts(double tol, double eta = 0.75) {
  H2BuildOptions o;
  o.admissibility = {Admissibility::Strong, eta};
  o.tol = tol * 1e-2;
  return o;
}

TEST(UlvCore, HssUlvSolvesWeakAdmissibility) {
  // Weak admissibility + multilevel = the HSS-ULV of Sec. II.C.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  UlvOptions u;
  u.tol = 1e-9;
  const double err = ulv_solution_error(p, weak_opts(1e-9), u);
  EXPECT_LT(err, 1e-6);
}

TEST(UlvCore, Blr2UlvSingleLevel) {
  // Leaf size >= n/2 gives depth 1: the BLR^2-ULV of Sec. II.B.
  const Problem p = make_problem(128, 64, Geometry::Cube, KernelKind::Laplace);
  EXPECT_EQ(p.tree->depth(), 1);
  UlvOptions u;
  u.tol = 1e-9;
  const double err = ulv_solution_error(p, weak_opts(1e-9), u);
  EXPECT_LT(err, 1e-6);
}

TEST(UlvCore, H2UlvSolvesStrongAdmissibility) {
  // The paper's contribution: strong admissibility, fill-in-augmented bases,
  // no trailing dependencies.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  UlvOptions u;
  u.tol = 1e-9;
  const double err = ulv_solution_error(p, strong_opts(1e-9), u);
  EXPECT_LT(err, 1e-5);
}

TEST(UlvCore, DegenerateSingleClusterFallsBackToDenseLu) {
  const Problem p = make_problem(24, 32, Geometry::Cube, KernelKind::Laplace);
  EXPECT_EQ(p.tree->depth(), 0);
  UlvOptions u;
  const double err = ulv_solution_error(p, strong_opts(1e-8), u);
  EXPECT_LT(err, 1e-10);
}

TEST(UlvCore, MultipleRightHandSides) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho = strong_opts(1e-10);
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-10;
  const UlvFactorization f(h, u);
  Rng rng(3);
  Matrix b = Matrix::random(256, 4, rng);
  Matrix x = b;
  f.solve(x);
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  const Matrix x_ref = lu_solve(a, b);
  EXPECT_LT(rel_error_fro(x, x_ref), 1e-5);
}

TEST(UlvCore, SequentialModeMatchesParallelMode) {
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  UlvOptions par;
  par.tol = 1e-9;
  UlvOptions seq = par;
  seq.mode = UlvMode::Sequential;
  const double e_par = ulv_solution_error(p, strong_opts(1e-9), par);
  const double e_seq = ulv_solution_error(p, strong_opts(1e-9), seq);
  EXPECT_LT(e_par, 1e-5);
  EXPECT_LT(e_seq, 1e-5);
}

TEST(UlvCore, FillinAugmentationIsRequiredForStrongAdmissibility) {
  // The paper's central ablation: without folding the pre-computed fill-ins
  // into the shared bases, the dropped cross-block updates are O(1) and the
  // solve degrades by orders of magnitude.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  UlvOptions with;
  with.tol = 1e-9;
  with.measure_dropped = true;
  UlvOptions without = with;
  without.fillin_augmentation = false;
  UlvStats s_with, s_without;
  const double e_with = ulv_solution_error(p, strong_opts(1e-9), with, &s_with);
  const double e_without =
      ulv_solution_error(p, strong_opts(1e-9), without, &s_without);
  EXPECT_LT(e_with, 1e-5);
  EXPECT_GT(e_without, 10 * e_with);
  EXPECT_LT(s_with.dropped_mass, s_without.dropped_mass);
}

TEST(UlvCore, WeakAdmissibilityDropsNothing) {
  // HSS-ULV has no cross-block Schur terms at all: dropped mass must be 0.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  UlvOptions u;
  u.tol = 1e-8;
  u.measure_dropped = true;
  UlvStats stats;
  (void)ulv_solution_error(p, weak_opts(1e-8), u, &stats);
  EXPECT_EQ(stats.dropped_mass, 0.0);
}

TEST(UlvCore, LogAbsDetMatchesDense) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Matern);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-10));
  UlvOptions u;
  u.tol = 1e-10;
  const UlvFactorization f(h, u);
  Matrix a = kernel_dense(*p.kernel, p.tree->points());
  std::vector<int> piv;
  getrf(a, piv);
  const double want = lu_logabsdet(a, piv);
  EXPECT_NEAR(f.logabsdet(), want, 1e-4 * std::abs(want));
}

TEST(UlvCore, ThreadedExecutionMatchesSerial) {
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  UlvOptions serial;
  serial.tol = 1e-9;
  UlvOptions threaded = serial;
  threaded.use_threads = true;
  ThreadPool pool(4);
  threaded.pool = &pool;
  const double e1 = ulv_solution_error(p, strong_opts(1e-9), serial);
  const double e2 = ulv_solution_error(p, strong_opts(1e-9), threaded);
  EXPECT_LT(e1, 1e-5);
  EXPECT_LT(e2, 1e-5);
}

TEST(UlvCore, RanksAreRecordedAndBounded) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-6));
  UlvOptions u;
  u.tol = 1e-6;
  const UlvFactorization f(h, u);
  const UlvStats& s = f.stats();
  ASSERT_EQ(static_cast<int>(s.ranks.size()), p.tree->depth() + 1);
  for (int l = p.tree->depth(); l >= 1; --l)
    EXPECT_EQ(static_cast<int>(s.ranks[l].size()), 1 << l);
  EXPECT_GT(s.max_rank, 0);
  // Leaf ranks are bounded by the leaf size; upper-level ranks may exceed it
  // (the paper reports up to ~180 at upper levels vs 50 at BLR leaves).
  for (const int r : s.ranks[p.tree->depth()]) EXPECT_LE(r, 32);
  EXPECT_LE(s.max_rank, 128);
}

TEST(UlvCore, MaxRankCapRespected) {
  const Problem p = make_problem(512, 64, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-10));
  UlvOptions u;
  u.tol = 1e-12;
  u.max_rank = 9;
  const UlvFactorization f(h, u);
  EXPECT_LE(f.stats().max_rank, 9);
}

TEST(UlvCore, TaskRecordingCoversAllLevels) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.record_tasks = true;
  const UlvFactorization f(h, u);
  const auto& tasks = f.stats().tasks;
  EXPECT_FALSE(tasks.empty());
  std::vector<bool> level_seen(p.tree->depth() + 1, false);
  for (const auto& t : tasks) {
    ASSERT_GE(t.level, 0);
    ASSERT_LE(t.level, p.tree->depth());
    level_seen[t.level] = true;
    EXPECT_GE(t.seconds, 0.0);
  }
  for (int l = 0; l <= p.tree->depth(); ++l) EXPECT_TRUE(level_seen[l]);
}

}  // namespace
}  // namespace h2
