#include <gtest/gtest.h>

#include "core/refine.hpp"
#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

TEST(Refine, ConvergesMonotonically) {
  const Problem p = make_problem(400, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-12;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-3;  // deliberately sloppy factorization
  const UlvFactorization f(h, u);
  Rng rng(1);
  const Matrix b = Matrix::random(400, 1, rng);
  double prev = 1e30;
  for (const int iters : {0, 1, 2, 4}) {
    Matrix x = b;
    f.solve(x);
    const double rel = ulv_refine(h, f, b, x, iters);
    EXPECT_LE(rel, prev * 1.01) << "iters=" << iters;
    prev = rel;
  }
  EXPECT_LT(prev, 1e-7);
}

TEST(Refine, TargetStopsEarly) {
  const Problem p = make_problem(300, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-12;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  const UlvFactorization f(h, u);
  Rng rng(2);
  const Matrix b = Matrix::random(300, 1, rng);
  Matrix x = b;
  f.solve(x);
  const double rel = ulv_refine(h, f, b, x, 10, 1e-3);
  EXPECT_LE(rel, 1e-3);
}

TEST(Refine, MultipleRhs) {
  const Problem p = make_problem(300, 32, Geometry::Cube, KernelKind::Yukawa);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-12;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-4;
  const UlvFactorization f(h, u);
  Rng rng(3);
  const Matrix b = Matrix::random(300, 3, rng);
  Matrix x = b;
  f.solve(x);
  const double rel = ulv_refine(h, f, b, x, 4);
  EXPECT_LT(rel, 1e-8);
}

TEST(UlvDistModel, MoreRanksNeverSlowerUnderAnalyticCharging) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.n_workers = 1;  // contention-free durations for the replay model
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  CommModel zero_comm;
  zero_comm.alpha = 0.0;
  zero_comm.beta = 0.0;
  // The ANALYTIC mode is a free-placement schedule plus a closed-form comm
  // term: with zero comm, more ranks can never hurt. The edge-charged mode
  // deliberately does NOT have this property — rank-map pinning serializes
  // the replicated top levels on rank 0, so small problems saturate (the
  // realistic behavior dist_test pins down separately).
  double prev = 1e300;
  for (const int pcount : {1, 2, 4, 8, 16, 32, 64}) {
    const double t = model.time(pcount, zero_comm, CommCharging::Analytic);
    EXPECT_LE(t, prev + 1e-12) << "p=" << pcount;
    prev = t;
  }
}

TEST(UlvDistModel, CommunicationAddsCostAtScale) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-8;
  const H2Matrix h(*p.tree, *p.kernel, ho);
  UlvOptions u;
  u.tol = 1e-6;
  u.record_tasks = true;
  u.n_workers = 1;  // contention-free durations for the replay model
  const UlvFactorization f(h, u);
  UlvDistModel model{&f.stats(), &h.structure()};
  CommModel zero;
  zero.alpha = 0.0;
  zero.beta = 0.0;
  CommModel slow;
  slow.alpha = 1e-3;
  slow.beta = 1e-6;
  EXPECT_GT(model.time(16, slow), model.time(16, zero));
  EXPECT_EQ(model.time(1, slow), model.time(1, zero));  // 1 rank: no comm
}

TEST(ScheduleSim, OutBytesIgnoredWhenColocated) {
  ScheduleInput in;
  in.durations = {1.0, 1.0};
  in.successors = {{1}, {}};
  in.owner = {2, 2};
  in.out_bytes = {1e12, 1e12};
  CommModel cm;
  cm.alpha = 1.0;
  cm.beta = 1.0;
  EXPECT_NEAR(list_schedule(in, 4, cm).makespan, 2.0, 1e-12);
}

TEST(ScheduleSim, EmptyDagIsFree) {
  ScheduleInput in;
  EXPECT_EQ(list_schedule(in, 4, CommModel{}).makespan, 0.0);
  EXPECT_EQ(critical_path(in), 0.0);
}

TEST(ScheduleSim, SingleWorkerMatchesSerialSum) {
  Rng rng(4);
  ScheduleInput in;
  const int n = 30;
  in.durations.resize(n);
  in.successors.resize(n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    in.durations[i] = rng.uniform(0.1, 1.0);
    total += in.durations[i];
    if (i > 0 && rng.uniform() < 0.3) in.successors[i - 1].push_back(i);
  }
  EXPECT_NEAR(list_schedule(in, 1, CommModel{}).makespan, total, 1e-9);
}

}  // namespace
}  // namespace h2
