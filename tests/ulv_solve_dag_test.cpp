#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

H2BuildOptions strong_opts(double tol) {
  H2BuildOptions o;
  o.admissibility = {Admissibility::Strong, 0.75};
  o.tol = tol * 1e-2;
  return o;
}

Matrix random_rhs(int n, int nrhs) {
  Rng rng(7);
  return Matrix::random(n, nrhs, rng);
}

TEST(UlvSolveDag, MultiRhsBitwiseAcrossSolveExecutorMatrix) {
  // The redesigned solve: every cell of {PhaseLoops, TaskDag-solve} x
  // {Fifo, WorkSteal} x {1, 4, 8} workers must reproduce the bulk-
  // synchronous single-worker sweep BIT FOR BIT, for one and many
  // right-hand sides — scheduling changes when a task runs, never what it
  // computes.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-9));
  const int n = p.tree->n_points();
  for (const int nrhs : {1, 4, 33}) {
    const Matrix b = random_rhs(n, nrhs);
    UlvOptions ref;
    ref.tol = 1e-9;
    ref.n_workers = 1;
    ref.schedule = UlvSchedule::Fifo;
    ref.solve_executor = UlvExecutor::PhaseLoops;
    const UlvFactorization f_ref(h, ref);
    Matrix x_ref = b;
    f_ref.solve(x_ref);

    // Sanity: the reference solves the system at all.
    const Matrix a = kernel_dense(*p.kernel, p.tree->points());
    Matrix ax(n, nrhs);
    gemm(1.0, a, Trans::No, x_ref, Trans::No, 0.0, ax);
    EXPECT_LT(rel_error_fro(ax, b), 1e-5) << "nrhs " << nrhs;

    for (const UlvExecutor sexec :
         {UlvExecutor::PhaseLoops, UlvExecutor::TaskDag}) {
      for (const UlvSchedule sched :
           {UlvSchedule::Fifo, UlvSchedule::WorkSteal}) {
        for (const int workers : {1, 4, 8}) {
          UlvOptions u = ref;
          u.solve_executor = sexec;
          u.schedule = sched;
          u.n_workers = workers;
          const UlvFactorization f(h, u);
          Matrix x = b;
          f.solve(x);
          const std::string cell =
              std::string(sexec == UlvExecutor::TaskDag ? "dag-solve"
                                                        : "loop-solve") +
              " x " + (sched == UlvSchedule::Fifo ? "fifo" : "worksteal") +
              " x " + std::to_string(workers) + " workers, nrhs " +
              std::to_string(nrhs);
          EXPECT_EQ(rel_error_fro(x, x_ref), 0.0) << cell;
        }
      }
    }
  }
}

TEST(UlvSolveDag, RecordedPlanMirrorsForwardSweepReversed) {
  // The plan is recorded once at factorization time: a forward half
  // (fwd_xform -> fwd_subst -> fwd_down -> fwd_merge, rooted at "top") and
  // a backward half whose tasks are the forward tasks' twins and whose
  // edges are EXACTLY the forward edges reversed.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  const DagRecord& dag = f.solve_dag();
  ASSERT_FALSE(dag.empty());

  // Locate "top": forward tasks are [0, top), backward twins are
  // [top + 1, 2 top + 1) with bwd(t) = top + 1 + t.
  TaskId top = -1;
  for (TaskId t = 0; t < dag.n_tasks(); ++t)
    if (dag.meta[t].label == "top") top = t;
  ASSERT_GE(top, 0);
  ASSERT_EQ(dag.n_tasks(), 2 * top + 1);

  auto twin_label = [](const std::string& l) -> std::string {
    if (l == "fwd_xform") return "bwd_combine";
    if (l == "fwd_subst") return "bwd_y";
    if (l == "fwd_down") return "bwd_xs";
    if (l == "fwd_merge") return "bwd_split";
    return "?";
  };
  auto has_edge = [&dag](TaskId u_, TaskId v_) {
    for (const TaskId s : dag.successors[u_])
      if (s == v_) return true;
    return false;
  };
  int checked = 0;
  for (TaskId t = 0; t < top; ++t) {
    const TaskMeta& m = dag.meta[t];
    const TaskMeta& b = dag.meta[top + 1 + t];
    EXPECT_EQ(b.label, twin_label(m.label)) << "task " << t;
    EXPECT_EQ(b.owner, m.owner);
    EXPECT_EQ(b.level, m.level);
    for (const TaskId v : dag.successors[t]) {
      if (v == top) {
        EXPECT_TRUE(has_edge(top, top + 1 + t)) << "top turning point";
      } else {
        EXPECT_TRUE(has_edge(top + 1 + v, top + 1 + t))
            << "forward edge " << t << "->" << v << " not reversed";
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
  // No backward task leaks an edge into the forward half, and the backward
  // half carries exactly as many edges as the forward half.
  int fwd_edges = 0, bwd_edges = 0, turning_edges = 0;
  for (TaskId t = 0; t < dag.n_tasks(); ++t)
    for (const TaskId v : dag.successors[t]) {
      if (t == top) {
        ++turning_edges;
        EXPECT_GT(v, top);
      } else if (t < top) {
        ++fwd_edges;
        EXPECT_LE(v, top);
      } else {
        ++bwd_edges;
        EXPECT_GT(v, top);
      }
    }
  EXPECT_EQ(turning_edges, 1);  // the reversed fwd_merge -> top edge
  EXPECT_EQ(fwd_edges, bwd_edges + 1);  // fwd_merge -> top reverses to it

  // Critical-path priorities rode along, and the forward half dominates the
  // backward half through the "top" turning point.
  ASSERT_EQ(static_cast<int>(dag.priority.size()), dag.n_tasks());
  for (TaskId t = 0; t < top; ++t)
    EXPECT_GT(dag.priority[t], dag.priority[top + 1 + t])
        << "forward task " << t << " vs its backward twin";
}

TEST(UlvSolveDag, PhaseLoopsSolveRecordsNoPlan) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.solve_executor = UlvExecutor::PhaseLoops;
  const UlvFactorization f(h, u);
  EXPECT_TRUE(f.solve_dag().empty());
}

TEST(UlvSolveDag, PriorityNoneLeavesThePlanUnranked) {
  // The None-vs-CriticalPath scheduling ablation covers the solve: under
  // None the recorded plan carries NO priorities (DagRecord's contract),
  // so the executor really runs submission order, not a hidden ranking.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.priority = UlvPriority::None;
  const UlvFactorization f(h, u);
  ASSERT_FALSE(f.solve_dag().empty());
  EXPECT_TRUE(f.solve_dag().priority.empty());
  // And it still solves, bitwise equal to the ranked default.
  const int n = p.tree->n_points();
  const Matrix b = random_rhs(n, 2);
  Matrix x_none = b;
  f.solve(x_none);
  UlvOptions ranked = u;
  ranked.priority = UlvPriority::CriticalPath;
  const UlvFactorization fr(h, ranked);
  Matrix x_ranked = b;
  fr.solve(x_ranked);
  EXPECT_EQ(rel_error_fro(x_none, x_ranked), 0.0);
}

TEST(UlvSolveDag, DagSolveSurfacesExecStatsWithBusyWorkers) {
  // solve_via_dag used to DISCARD its ExecStats; now the most recent DAG
  // solve's trace is readable through last_solve_stats(), and on a
  // multi-worker pool every worker lane actually executes tasks.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.n_workers = 2;  // private solve pool: a fixed, asserted lane count
  const UlvFactorization f(h, u);
  EXPECT_TRUE(f.last_solve_stats().records.empty()) << "stats before any solve";

  const int n = p.tree->n_points();
  const Matrix b = random_rhs(n, 3);
  const int n_tasks = f.solve_dag().n_tasks();
  ASSERT_GT(n_tasks, 0);

  bool every_worker_executed = false;
  for (int attempt = 0; attempt < 20 && !every_worker_executed; ++attempt) {
    Matrix x = b;
    f.solve(x);
    const ExecStats st = f.last_solve_stats();
    ASSERT_EQ(static_cast<int>(st.records.size()), n_tasks);
    EXPECT_EQ(st.n_workers, 2);
    EXPECT_GT(st.wall_seconds, 0.0);
    ASSERT_EQ(st.worker_counters.size(), 2u);
    std::uint64_t executed = 0;
    for (const auto& w : st.worker_counters) executed += w.executed;
    EXPECT_EQ(executed, static_cast<std::uint64_t>(n_tasks));
    every_worker_executed = std::all_of(
        st.worker_counters.begin(), st.worker_counters.end(),
        [](const ThreadPool::WorkerCounters& w) { return w.executed > 0; });
  }
  // Work stealing spreads a ~100+-task DAG across 2 workers essentially
  // always; the attempt loop only shields against a pathological schedule.
  EXPECT_TRUE(every_worker_executed);

  // The ablation sweep reports nothing — the surface is exact about which
  // executor produced what.
  UlvOptions loops = u;
  loops.solve_executor = UlvExecutor::PhaseLoops;
  const UlvFactorization fl(h, loops);
  Matrix x = b;
  fl.solve(x);
  EXPECT_TRUE(fl.last_solve_stats().records.empty());
}

TEST(UlvSolveDag, SolveTraceCsvHookWritesEveryTask) {
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  u.n_workers = 1;
  const UlvFactorization f(h, u);
  const char* path = "ulv_solve_trace_test.csv";
  ::setenv("H2_SOLVE_TRACE", path, 1);
  Matrix x = random_rhs(p.tree->n_points(), 2);
  f.solve(x);
  ::unsetenv("H2_SOLVE_TRACE");

  std::ifstream csv(path);
  ASSERT_TRUE(csv.good()) << "H2_SOLVE_TRACE produced no file";
  std::string line;
  int data_lines = 0;
  bool header = false, fwd = false, bwd = false;
  while (std::getline(csv, line)) {
    if (line.rfind('#', 0) == 0) continue;  // policy/counter comments
    if (line.rfind("task,label,owner,level,worker", 0) == 0) {
      header = true;
      continue;
    }
    ++data_lines;
    if (line.find("fwd_xform") != std::string::npos) fwd = true;
    if (line.find("bwd_combine") != std::string::npos) bwd = true;
  }
  EXPECT_TRUE(header);
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(bwd);
  EXPECT_EQ(data_lines, f.solve_dag().n_tasks());
  std::remove(path);
}

TEST(UlvSolveDag, SolveFromAPoolWorkerDoesNotDeadlock) {
  // A solve submitted onto the very pool the DAG would execute on falls
  // back to the (bitwise-identical) inline sweep — whole solves pipeline
  // across workers instead of blocking on work queued behind themselves.
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  ThreadPool pool(2);
  UlvOptions u;
  u.tol = 1e-8;
  u.pool = &pool;
  const UlvFactorization f(h, u);
  const int n = p.tree->n_points();
  const Matrix b = random_rhs(n, 2);
  Matrix x_direct = b;
  f.solve(x_direct);

  Matrix x_worker = b;
  std::atomic<bool> done{false};
  pool.submit([&] {
    f.solve(x_worker);
    done = true;
  });
  pool.wait_idle();
  ASSERT_TRUE(done.load());
  EXPECT_EQ(rel_error_fro(x_worker, x_direct), 0.0);
}

TEST(UlvSolveDag, ConcurrentSolvesShareOneFactorization) {
  // The solve-reuse story: one factorization, many concurrent solves. Each
  // solve owns its scratch, so racing solves must agree bitwise with the
  // serial answers.
  const Problem p = make_problem(384, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(h, u);
  const int n = p.tree->n_points();
  constexpr int kBatch = 6;
  std::vector<Matrix> rhs, serial;
  for (int i = 0; i < kBatch; ++i) {
    Rng rng(100 + i);
    rhs.push_back(Matrix::random(n, 3, rng));
    serial.push_back(rhs.back());
    f.solve(serial.back());
  }
  ThreadPool pool(4);
  std::vector<Matrix> parallel = rhs;
  for (int i = 0; i < kBatch; ++i)
    pool.submit([&f, &parallel, i] { f.solve(parallel[i]); });
  pool.wait_idle();
  for (int i = 0; i < kBatch; ++i)
    EXPECT_EQ(rel_error_fro(parallel[i], serial[i]), 0.0) << "rhs " << i;
}

TEST(UlvSolveDag, ValidateRejectsNonsenseAndMapsUseThreads) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const H2Matrix h(*p.tree, *p.kernel, strong_opts(1e-8));
  UlvOptions bad;
  bad.tol = 0.0;
  EXPECT_THROW(UlvFactorization(h, bad), std::invalid_argument);
  bad = UlvOptions{};
  bad.tol = -1e-8;
  EXPECT_THROW(UlvFactorization(h, bad), std::invalid_argument);
  bad = UlvOptions{};
  bad.fill_tol_factor = 0.0;
  EXPECT_THROW(UlvFactorization(h, bad), std::invalid_argument);
  bad = UlvOptions{};
  bad.n_workers = -2;
  EXPECT_THROW(UlvFactorization(h, bad), std::invalid_argument);

  // The deprecated alias now maps EXPLICITLY onto the PhaseLoops executors:
  // no DAG is recorded for the factorization or the solve.
  UlvOptions legacy;
  legacy.tol = 1e-8;
  legacy.use_threads = true;
  legacy.record_tasks = true;
  const UlvFactorization f(h, legacy);
  EXPECT_TRUE(f.stats().dag.empty());
  EXPECT_TRUE(f.solve_dag().empty());

  UlvOptions norm;
  norm.use_threads = true;
  norm.validate();
  EXPECT_EQ(norm.executor, UlvExecutor::PhaseLoops);
  EXPECT_EQ(norm.solve_executor, UlvExecutor::PhaseLoops);
}

}  // namespace
}  // namespace h2
