#include <gtest/gtest.h>

#include <cmath>

#include "linalg/linalg.hpp"
#include "util/rng.hpp"

namespace h2 {
namespace {

Matrix random_spd(int n, Rng& rng) {
  const Matrix b = Matrix::random(n, n, rng);
  Matrix a = matmul(b, b, Trans::No, Trans::Yes);
  add_identity(a, 0.5 * n);
  return a;
}

class LuTest : public ::testing::TestWithParam<int> {};

TEST_P(LuTest, ReconstructsPA) {
  const int n = GetParam();
  Rng rng(n);
  const Matrix a = Matrix::random(n, n, rng);
  Matrix lu = a;
  std::vector<int> piv;
  getrf(lu, piv);

  // Rebuild L * U and compare against P A.
  Matrix l = Matrix::identity(n), u(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      (i > j ? l(i, j) : u(i, j)) = lu(i, j);
  const Matrix prod = matmul(l, u);
  Matrix pa = a;
  laswp(pa, piv, true);
  EXPECT_LT(rel_error_fro(prod, pa), 1e-12);
}

TEST_P(LuTest, SolvesLinearSystem) {
  const int n = GetParam();
  Rng rng(n + 1);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix x_true = Matrix::random(n, 2, rng);
  const Matrix b = matmul(a, x_true);
  const Matrix x = lu_solve(a, b);
  EXPECT_LT(rel_error_fro(x, x_true), 1e-9);
}

TEST_P(LuTest, TransposedSolve) {
  const int n = GetParam();
  Rng rng(n + 2);
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix x_true = Matrix::random(n, 1, rng);
  Matrix b(n, 1);
  gemm(1.0, a, Trans::Yes, x_true, Trans::No, 0.0, b);
  Matrix lu = a;
  std::vector<int> piv;
  getrf(lu, piv);
  getrs(lu, piv, b, Trans::Yes);
  EXPECT_LT(rel_error_fro(b, x_true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuTest, ::testing::Values(1, 2, 3, 5, 8, 17, 33, 64));

TEST(Lu, ThrowsOnExactSingularity) {
  Matrix a(2, 2);  // all zeros
  std::vector<int> piv;
  EXPECT_THROW(getrf(a.view(), piv), NumericalError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;  // antidiagonal: needs the row swap
  Rng rng(1);
  const Matrix x_true = Matrix::random(2, 1, rng);
  const Matrix b = matmul(a, x_true);
  const Matrix x = lu_solve(a, b);
  EXPECT_LT(rel_error_fro(x, x_true), 1e-13);
}

TEST(Lu, LogAbsDetMatchesDiagonalProduct) {
  Rng rng(12);
  const int n = 20;
  const Matrix a = random_spd(n, rng);
  Matrix lu = a;
  std::vector<int> piv;
  getrf(lu, piv);
  int sign = 0;
  const double lad = lu_logabsdet(lu, piv, &sign);
  // SPD: determinant is positive; cross-check with Cholesky:
  // det = prod diag(L)^2.
  Matrix l = a;
  potrf(l);
  double lad_chol = 0.0;
  for (int i = 0; i < n; ++i) lad_chol += 2.0 * std::log(l(i, i));
  EXPECT_EQ(sign, 1);
  EXPECT_NEAR(lad, lad_chol, 1e-8 * std::fabs(lad_chol));
}

class CholTest : public ::testing::TestWithParam<int> {};

TEST_P(CholTest, ReconstructsSpdMatrix) {
  const int n = GetParam();
  Rng rng(n + 7);
  const Matrix a = random_spd(n, rng);
  Matrix l = a;
  potrf(l);
  // Zero out the strict upper triangle before forming L L^T.
  Matrix lclean(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) lclean(i, j) = l(i, j);
  const Matrix rebuilt = matmul(lclean, lclean, Trans::No, Trans::Yes);
  EXPECT_LT(rel_error_fro(rebuilt, a), 1e-12);
}

TEST_P(CholTest, SolvesSpdSystem) {
  const int n = GetParam();
  Rng rng(n + 8);
  const Matrix a = random_spd(n, rng);
  const Matrix x_true = Matrix::random(n, 3, rng);
  const Matrix b = matmul(a, x_true);
  Matrix l = a;
  potrf(l);
  Matrix x = b;
  potrs(l, x);
  EXPECT_LT(rel_error_fro(x, x_true), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholTest, ::testing::Values(1, 2, 5, 16, 33, 64));

TEST(Chol, ThrowsOnIndefiniteMatrix) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = -1.0;
  EXPECT_THROW(potrf(a.view()), NumericalError);
}

TEST(Laswp, ForwardThenBackwardIsIdentity) {
  Rng rng(3);
  Matrix b = Matrix::random(6, 2, rng);
  const Matrix b0 = b;
  std::vector<int> piv{3, 1, 5, 3};
  laswp(b, piv, true);
  laswp(b, piv, false);
  EXPECT_LT(rel_error_fro(b, b0), 1e-15);
}

}  // namespace
}  // namespace h2
