#pragma once

#include <memory>

#include "core/ulv_factorization.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/assembly.hpp"
#include "kernels/kernel.hpp"
#include "linalg/linalg.hpp"

namespace h2::testing_support {

struct Problem {
  PointCloud pts;  // original ordering (unused after tree build)
  std::unique_ptr<ClusterTree> tree;
  std::unique_ptr<Kernel> kernel;
};

enum class Geometry { Cube, Sphere, Molecule, Crowded };
enum class KernelKind { Laplace, Yukawa, Gaussian, Matern };

inline Problem make_problem(int n, int leaf, Geometry geo, KernelKind kk,
                            std::uint64_t seed = 42) {
  Problem p;
  Rng rng(seed);
  switch (geo) {
    case Geometry::Cube: p.pts = uniform_cube(n, rng); break;
    case Geometry::Sphere: p.pts = sphere_surface(n, rng); break;
    case Geometry::Molecule: p.pts = molecule_surface(n, rng); break;
    case Geometry::Crowded: p.pts = crowded_molecules(n, rng, 8); break;
  }
  switch (kk) {
    case KernelKind::Laplace:
      p.kernel = std::make_unique<LaplaceKernel>(1e-2 * cloud_diameter(p.pts));
      break;
    case KernelKind::Yukawa:
      p.kernel = std::make_unique<YukawaKernel>(
          1.0 / cloud_diameter(p.pts), 1e-2 * cloud_diameter(p.pts));
      break;
    case KernelKind::Gaussian:
      p.kernel = std::make_unique<GaussianKernel>(
          0.3 * cloud_diameter(p.pts), 1e-2);
      break;
    case KernelKind::Matern:
      p.kernel = std::make_unique<Matern32Kernel>(
          0.3 * cloud_diameter(p.pts), 1e-2);
      break;
  }
  p.tree = std::make_unique<ClusterTree>(ClusterTree::build(p.pts, leaf, rng));
  return p;
}

/// Factorize + solve a random system and return the relative L2 error of the
/// solution against a dense-LU reference (the paper's Sec. IV metric).
inline double ulv_solution_error(const Problem& p, const H2BuildOptions& hopt,
                                 const UlvOptions& uopt,
                                 UlvStats* stats_out = nullptr) {
  const H2Matrix h(*p.tree, *p.kernel, hopt);
  const UlvFactorization f(h, uopt);
  if (stats_out != nullptr) *stats_out = f.stats();

  const int n = p.tree->n_points();
  Rng rng(7);
  Matrix b = Matrix::random(n, 1, rng);
  Matrix x = b;
  // Core-API contract: solve() works in TREE ordering. A random b needs no
  // permutation, but the reference matrix must then be evaluated on the
  // tree-ordered points (p.tree->points()), not the original cloud — the
  // h2::Solver facade is the point-ordering path.
  f.solve(x);

  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  const Matrix x_ref = lu_solve(a, b);
  return rel_error_fro(x, x_ref);
}

}  // namespace h2::testing_support
