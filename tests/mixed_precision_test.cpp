// The mixed-precision accuracy gate: under Precision::F32 every structure
// family factors (or stores) its factorization in fp32 and recovers fp64-
// grade residuals through iterative refinement against the retained fp64
// operator. The battery pins the contract end to end — fp32+refine reaches
// the fp64 path's residual (within 10x) across {H2, HSS, BLR, HODLR} and
// kernels, refinement iteration counts stay bounded, and a deliberately
// unreachable refine_tol reports a typed non-convergence instead of looping
// or throwing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

/// Relative residual ||A x - b|| / ||b|| against the dense kernel matrix in
/// the caller's POINT ordering (the facade's ordering contract).
double dense_residual(const Problem& p, const Matrix& x, const Matrix& b) {
  const Matrix a = kernel_dense(*p.kernel, p.pts);
  Matrix ax(x.rows(), x.cols());
  gemm(1.0, a, Trans::No, x, Trans::No, 0.0, ax);
  return rel_error_fro(ax, b);
}

struct Cell {
  SolverStructure structure;
  const char* name;
};

TEST(MixedPrecision, F32PlusRefineMatchesF64ResidualAcrossStructures) {
  const Cell cells[] = {
      {SolverStructure::H2, "H2"},
      {SolverStructure::HSS, "HSS"},
      {SolverStructure::BLR, "BLR"},
      {SolverStructure::HODLR, "HODLR"},
  };
  const KernelKind kernels[] = {KernelKind::Laplace, KernelKind::Matern};
  for (const Cell& c : cells) {
    for (const KernelKind kk : kernels) {
      const std::string tag =
          std::string(c.name) + "/" +
          (kk == KernelKind::Laplace ? "laplace" : "matern");
      const Problem p = make_problem(400, 64, Geometry::Cube, kk);
      const int n = static_cast<int>(p.pts.size());
      Rng rng(7);
      const Matrix b = Matrix::random(n, 1, rng);
      const SolverOptions base = SolverOptions{}
                                     .with_structure(c.structure)
                                     .with_leaf_size(64)
                                     .with_tol(1e-8);

      const Solver s64 = Solver::build(p.pts, *p.kernel, base);
      const double r64 = dense_residual(p, s64.solve(b), b);
      ASSERT_GT(r64, 0.0) << tag;

      // Target exactly the fp64 path's residual: the acceptance claim is
      // that an fp32-sized factor plus refinement reaches it (within 10x),
      // not merely some fixed absolute accuracy.
      const Solver s32 =
          Solver::build(p.pts, *p.kernel,
                        SolverOptions(base)
                            .with_precision(Precision::F32)
                            .with_refine_tol(r64));
      const double r32 = dense_residual(p, s32.solve(b), b);
      EXPECT_LE(r32, 10.0 * r64) << tag << ": fp64 path " << r64
                                 << ", fp32+refine " << r32;

      // Refinement converges at the fp32 rate (~3 decades per step), so the
      // iteration count stays small — the loop never becomes the solve.
      const RefineResult rr = s32.last_refine();
      EXPECT_LE(rr.iterations, 8) << tag;
      EXPECT_GT(rr.rel_residual, 0.0) << tag;
    }
  }
}

TEST(MixedPrecision, UnreachableRefineTolReportsTypedNonConvergence) {
  // A target below everything fp64 arithmetic can represent as a relative
  // residual: the loop must stop at its iteration cap (or the stagnation
  // floor), hand back the refined solution it DID reach, and say so in the
  // typed status — not loop, not throw.
  const Problem p =
      make_problem(400, 64, Geometry::Cube, KernelKind::Laplace);
  const int n = static_cast<int>(p.pts.size());
  Rng rng(7);
  const Matrix b = Matrix::random(n, 1, rng);
  const Solver s = Solver::build(p.pts, *p.kernel,
                                 SolverOptions{}
                                     .with_tol(1e-8)
                                     .with_precision(Precision::F32)
                                     .with_refine_tol(1e-30)
                                     .with_max_refine_iters(4));
  const Matrix x = s.solve(b);
  const RefineResult rr = s.last_refine();
  EXPECT_FALSE(rr.converged);
  EXPECT_LE(rr.iterations, 4);
  EXPECT_GT(rr.rel_residual, 1e-30);
  // Non-convergence toward an absurd target is not failure to refine: the
  // solution still carries fp64-grade accuracy.
  EXPECT_LT(dense_residual(p, x, b), 1e-6);
}

TEST(MixedPrecision, RefineTolZeroDefaultsToTolAndConverges) {
  const Problem p =
      make_problem(400, 64, Geometry::Cube, KernelKind::Laplace);
  const int n = static_cast<int>(p.pts.size());
  Rng rng(7);
  const Matrix b = Matrix::random(n, 1, rng);
  const Solver s = Solver::build(
      p.pts, *p.kernel,
      SolverOptions{}.with_tol(1e-8).with_precision(Precision::F32));
  (void)s.solve(b);
  const RefineResult rr = s.last_refine();
  EXPECT_TRUE(rr.converged);
  EXPECT_LE(rr.rel_residual, 1e-8);  // refined to tol, the documented default
  EXPECT_GE(rr.iterations, 1);       // a raw fp32 solve cannot sit at 1e-8
}

TEST(MixedPrecision, F64SolverNeverRefines) {
  const Problem p =
      make_problem(256, 64, Geometry::Cube, KernelKind::Laplace);
  const int n = static_cast<int>(p.pts.size());
  Rng rng(7);
  const Matrix b = Matrix::random(n, 1, rng);
  const Solver s = Solver::build(p.pts, *p.kernel, SolverOptions{});
  (void)s.solve(b);
  const RefineResult rr = s.last_refine();  // default-constructed status
  EXPECT_EQ(rr.iterations, 0);
  EXPECT_EQ(rr.rel_residual, 0.0);
  EXPECT_TRUE(rr.converged);
}

TEST(MixedPrecision, EnvVariableSelectsPrecision) {
  ::setenv("H2_PRECISION", "f32", 1);
  EXPECT_EQ(solver_default_precision(), Precision::F32);
  ::setenv("H2_PRECISION", "FP32", 1);
  EXPECT_EQ(solver_default_precision(), Precision::F32);
  ::setenv("H2_PRECISION", "single", 1);
  EXPECT_EQ(solver_default_precision(), Precision::F32);
  ::setenv("H2_PRECISION", "f64", 1);
  EXPECT_EQ(solver_default_precision(), Precision::F64);
  ::setenv("H2_PRECISION", "nonsense", 1);
  EXPECT_EQ(solver_default_precision(), Precision::F64);
  ::unsetenv("H2_PRECISION");
  EXPECT_EQ(solver_default_precision(), Precision::F64);
}

TEST(MixedPrecision, ValidateRejectsNonsense) {
  const Problem p =
      make_problem(64, 32, Geometry::Cube, KernelKind::Laplace);
  EXPECT_THROW(
      (void)Solver::build(p.pts, *p.kernel,
                          SolverOptions{}.with_refine_tol(-1.0)),
      std::invalid_argument);
  EXPECT_THROW(
      (void)Solver::build(p.pts, *p.kernel,
                          SolverOptions{}.with_max_refine_iters(0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace h2
