#include <gtest/gtest.h>

#include "blr/blr_matrix.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

TEST(Blr, FactorizeAndSolveMatchesDense) {
  const Problem p = make_problem(400, 32, Geometry::Cube, KernelKind::Laplace);
  BlrOptions o;
  o.tol = 1e-9;
  BlrMatrix blr(*p.tree, *p.kernel, o);
  blr.factorize();
  Rng rng(1);
  const Matrix b = Matrix::random(400, 2, rng);
  Matrix x = b;
  blr.solve(x);
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  const Matrix x_ref = lu_solve(a, b);
  EXPECT_LT(rel_error_fro(x, x_ref), 1e-5);
}

TEST(Blr, AdaptiveRanksAreSmallForFarTiles) {
  const Problem p = make_problem(512, 64, Geometry::Cube, KernelKind::Laplace);
  BlrOptions o;
  o.tol = 1e-6;
  BlrMatrix blr(*p.tree, *p.kernel, o);
  EXPECT_GT(blr.max_rank_used(), 0);
  EXPECT_LT(blr.max_rank_used(), 32);  // cap = tile/2 = 32; far tiles smaller
  EXPECT_LT(blr.memory_bytes(), 8ull * 512 * 512);
}

TEST(Blr, LogDetMatchesDense) {
  const Problem p = make_problem(300, 32, Geometry::Cube, KernelKind::Matern);
  BlrOptions o;
  o.tol = 1e-10;
  BlrMatrix blr(*p.tree, *p.kernel, o);
  blr.factorize();
  Matrix a = kernel_dense(*p.kernel, p.tree->points());
  std::vector<int> piv;
  getrf(a, piv);
  const double want = lu_logabsdet(a, piv);
  EXPECT_NEAR(blr.logabsdet(), want, 1e-5 * std::abs(want));
}

TEST(Blr, TaskGraphHasTrailingDependencies) {
  // The point of the comparison: BLR's DAG depth grows with the tile count
  // (trailing sub-matrix dependencies), unlike the dependency-free ULV.
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  BlrOptions o;
  o.tol = 1e-6;
  BlrMatrix blr(*p.tree, *p.kernel, o);
  const ExecStats stats = blr.factorize();
  const int nb = blr.n_tiles();
  EXPECT_EQ(nb, 16);
  // Tiled Cholesky task count: nb potrf + nb(nb-1)/2 trsm + sum_k k(k+1)/2.
  const int expected =
      nb + nb * (nb - 1) / 2 + nb * (nb - 1) * (nb + 1) / 6;
  EXPECT_EQ(blr.graph().n_tasks(), expected);
  EXPECT_EQ(static_cast<int>(stats.records.size()), expected);
  // potrf(k) transitively depends on potrf(k-1): the DAG is deep.
  EXPECT_GT(stats.useful_seconds, 0.0);
}

TEST(Blr, ParallelExecutionMatchesSerial) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  BlrOptions o1;
  o1.tol = 1e-8;
  BlrMatrix b1(*p.tree, *p.kernel, o1);
  b1.factorize();
  BlrOptions o4 = o1;
  o4.n_threads = 4;
  BlrMatrix b4(*p.tree, *p.kernel, o4);
  b4.factorize();
  Rng rng(2);
  const Matrix rhs = Matrix::random(256, 1, rng);
  Matrix x1 = rhs, x4 = rhs;
  b1.solve(x1);
  b4.solve(x4);
  EXPECT_LT(rel_error_fro(x4, x1), 1e-8);
}

TEST(Blr, ToleranceControlsAccuracy) {
  const Problem p = make_problem(300, 32, Geometry::Cube, KernelKind::Laplace);
  double prev_err = 1.0;
  int improvements = 0;
  for (const double tol : {1e-3, 1e-6, 1e-9}) {
    BlrOptions o;
    o.tol = tol;
    BlrMatrix blr(*p.tree, *p.kernel, o);
    blr.factorize();
    Rng rng(3);
    const Matrix b = Matrix::random(300, 1, rng);
    Matrix x = b;
    blr.solve(x);
    const Matrix a = kernel_dense(*p.kernel, p.tree->points());
    const double err = rel_error_fro(x, lu_solve(a, b));
    if (err < prev_err) ++improvements;
    prev_err = err;
  }
  EXPECT_GE(improvements, 2);
}

}  // namespace
}  // namespace h2
