// Corner-case semantics of the scheduling simulator, beyond what the seed
// dist_test locks down: degenerate DAGs, the owner-wrapping rule, error
// reporting, and the regime where communication makes MORE workers SLOWER.
#include <gtest/gtest.h>

#include <stdexcept>

#include "dist/schedule_sim.hpp"
#include "dist/ulv_dist_model.hpp"

namespace h2 {
namespace {

TEST(ScheduleSimEdge, EmptyDagIsFreeAndPerfectlyEfficient) {
  const ScheduleInput in;
  const CommModel cm;
  const ScheduleResult r = list_schedule(in, 4, cm);
  EXPECT_EQ(r.makespan, 0.0);
  EXPECT_EQ(r.total_work, 0.0);
  EXPECT_EQ(r.efficiency(1), 1.0);  // by convention: no capacity wasted
  EXPECT_EQ(r.efficiency(64), 1.0);
  EXPECT_EQ(critical_path(in), 0.0);
}

TEST(ScheduleSimEdge, SingleTaskIgnoresWorkerCount) {
  ScheduleInput in;
  in.durations = {2.5};
  const CommModel cm;
  for (const int p : {1, 2, 64}) {
    const ScheduleResult r = list_schedule(in, p, cm);
    EXPECT_NEAR(r.makespan, 2.5, 1e-12) << "p=" << p;
    EXPECT_EQ(r.worker[0], 0);
  }
  EXPECT_NEAR(list_schedule(in, 1, cm).efficiency(1), 1.0, 1e-12);
}

TEST(ScheduleSimEdge, ZeroDurationTasksAreInstantaneous) {
  ScheduleInput in;
  in.durations.assign(5, 0.0);
  in.successors = {{1}, {2}, {3}, {4}, {}};
  const CommModel zero{0.0, 0.0};
  EXPECT_EQ(list_schedule(in, 2, zero).makespan, 0.0);
  EXPECT_EQ(critical_path(in), 0.0);
  // ... unless the runtime charges per-task overhead: a chain of five empty
  // tasks still costs five overheads (the Fig. 13 pathology in the limit).
  in.per_task_overhead = 1e-3;
  EXPECT_NEAR(list_schedule(in, 2, zero).makespan, 5e-3, 1e-15);
}

TEST(ScheduleSimEdge, EfficiencyOnOneWorkerIsExactlyOne) {
  // Any DAG without overhead keeps a single worker 100% busy.
  ScheduleInput in;
  in.durations = {0.3, 0.7, 0.5, 0.25};
  in.successors = {{2}, {2}, {}, {}};
  const CommModel cm;
  const ScheduleResult r = list_schedule(in, 1, cm);
  EXPECT_NEAR(r.makespan, 1.75, 1e-12);
  EXPECT_NEAR(r.efficiency(1), 1.0, 1e-12);
}

TEST(ScheduleSimEdge, OwnerIndicesWrapAroundWorkerCount) {
  // Block-cyclic semantics: owner ids larger than the worker count wrap,
  // exactly like tile owners mapped onto a smaller rank grid (Fig. 16).
  ScheduleInput in;
  in.durations = {1.0, 1.0};
  in.successors.resize(2);
  const CommModel cm;
  in.owner = {4, 9};  // 4 % 4 = 0, 9 % 4 = 1: distinct workers
  EXPECT_NEAR(list_schedule(in, 4, cm).makespan, 1.0, 1e-12);
  in.owner = {4, 8};  // both wrap to worker 0: serialized
  EXPECT_NEAR(list_schedule(in, 4, cm).makespan, 2.0, 1e-12);
  in.owner = {-1, -1};  // negative = unpinned: free placement
  EXPECT_NEAR(list_schedule(in, 4, cm).makespan, 1.0, 1e-12);
}

TEST(ScheduleSimEdge, DiamondWhereCommunicationMakesFewerWorkersFaster) {
  // Diamond 0 -> {1, 2} -> 3 with heavy outputs, pinned round-robin. On one
  // worker every owner wraps to rank 0 and no byte moves (4 s); on four
  // workers every edge crosses ranks and the transfers dominate. More
  // hardware, worse time — the communication cliff of Fig. 16.
  ScheduleInput in;
  in.durations.assign(4, 1.0);
  in.successors = {{1, 2}, {3}, {3}, {}};
  in.owner = {0, 1, 2, 3};
  in.out_bytes.assign(4, 1e10);
  CommModel cm;
  cm.alpha = 0.0;
  cm.beta = 1e-9;  // 10 s per edge
  const double t1 = list_schedule(in, 1, cm).makespan;
  const double t4 = list_schedule(in, 4, cm).makespan;
  EXPECT_NEAR(t1, 4.0, 1e-9);
  EXPECT_NEAR(t4, 23.0, 1e-9);  // 1 + 10 + 1 + 10 + 1
  EXPECT_LT(t1, t4);
}

TEST(ScheduleSimEdge, BottomLevelsMatchCriticalPathAndValidate) {
  // The now-public priority computation (shared with TaskGraph's
  // critical-path mode): max over roots equals the critical path, and the
  // per-task overhead is charged per hop.
  ScheduleInput in;
  in.durations = {1.0, 2.0, 4.0, 0.5};  // 0 -> 1 -> 2, 3 isolated
  in.successors = {{1}, {2}};
  const std::vector<double> bl = bottom_levels(in);
  ASSERT_EQ(bl.size(), 4u);
  EXPECT_DOUBLE_EQ(bl[0], 7.0);
  EXPECT_DOUBLE_EQ(bl[1], 6.0);
  EXPECT_DOUBLE_EQ(bl[2], 4.0);
  EXPECT_DOUBLE_EQ(bl[3], 0.5);
  EXPECT_DOUBLE_EQ(bl[0], critical_path(in));

  in.per_task_overhead = 0.25;
  EXPECT_DOUBLE_EQ(bottom_levels(in)[0], 7.75);  // three hops on the chain

  ScheduleInput bad;
  bad.durations = {1.0};
  bad.successors = {{7}};
  EXPECT_THROW(bottom_levels(bad), std::invalid_argument);
  ScheduleInput cyclic;
  cyclic.durations = {1.0, 1.0};
  cyclic.successors = {{1}, {0}};
  EXPECT_THROW(bottom_levels(cyclic), std::logic_error);
}

TEST(ScheduleSimEdge, InvalidInputsThrow) {
  ScheduleInput in;
  in.durations = {1.0};
  const CommModel cm;
  EXPECT_THROW(list_schedule(in, 0, cm), std::invalid_argument);
  in.successors = {{7}};  // successor index out of range
  EXPECT_THROW(list_schedule(in, 2, cm), std::invalid_argument);
  EXPECT_THROW(critical_path(in), std::invalid_argument);
  ScheduleInput cyc;
  cyc.durations = {1.0, 1.0};
  cyc.successors = {{1}, {0}};
  EXPECT_THROW(list_schedule(cyc, 2, cm), std::logic_error);
  EXPECT_THROW(critical_path(cyc), std::logic_error);
}

TEST(UlvDistModelEdge, EmptyModelPredictsZero) {
  const UlvDistModel model{};
  const CommModel cm;
  EXPECT_EQ(model.shared_memory_time(4), 0.0);
  EXPECT_EQ(model.time(16, cm), 0.0);
  EXPECT_EQ(model.comm_seconds(16, cm), 0.0);
  EXPECT_EQ(model.level_bytes(1), 0.0);
}

}  // namespace
}  // namespace h2
