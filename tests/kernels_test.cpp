#include <gtest/gtest.h>

#include <cmath>

#include "geometry/cloud.hpp"
#include "kernels/assembly.hpp"
#include "kernels/kernel.hpp"
#include "linalg/linalg.hpp"
#include "util/flops.hpp"
#include "util/rng.hpp"

namespace h2 {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Kernels, LaplaceValues) {
  const LaplaceKernel k(1e-3);
  const Point a{0, 0, 0}, b{1, 0, 0};
  EXPECT_NEAR(k.eval(a, b), 1.0 / (4.0 * kPi * 1.001), 1e-14);
  // Regularized diagonal is finite.
  EXPECT_NEAR(k.eval(a, a), 1.0 / (4.0 * kPi * 1e-3), 1e-9);
}

TEST(Kernels, YukawaDecaysFasterThanLaplace) {
  const LaplaceKernel lap(1e-3);
  const YukawaKernel yuk(2.0, 1e-3);
  const Point a{0, 0, 0};
  for (const double r : {0.5, 1.0, 2.0, 4.0}) {
    const Point b{r, 0, 0};
    EXPECT_LT(yuk.eval(a, b), lap.eval(a, b));
  }
  // Ratio matches exp(-alpha r).
  const Point b{1.5, 0, 0};
  EXPECT_NEAR(yuk.eval(a, b) / lap.eval(a, b), std::exp(-2.0 * 1.5), 1e-12);
}

TEST(Kernels, SymmetryOfAllKernels) {
  Rng rng(1);
  const LaplaceKernel k1;
  const YukawaKernel k2(1.3);
  const GaussianKernel k3(0.7, 1e-2);
  const Matern32Kernel k4(0.7, 1e-2);
  for (int trial = 0; trial < 50; ++trial) {
    const Point a{rng.uniform(), rng.uniform(), rng.uniform()};
    const Point b{rng.uniform(), rng.uniform(), rng.uniform()};
    for (const Kernel* k :
         std::initializer_list<const Kernel*>{&k1, &k2, &k3, &k4})
      EXPECT_DOUBLE_EQ(k->eval(a, b), k->eval(b, a)) << k->name();
  }
}

TEST(Kernels, GaussianNuggetOnlyOnDiagonal) {
  const GaussianKernel k(0.5, 0.25);
  const Point a{0.1, 0.2, 0.3};
  EXPECT_NEAR(k.eval(a, a), 1.25, 1e-14);
  const Point b{0.1, 0.2, 0.300001};
  EXPECT_LT(k.eval(a, b), 1.0 + 1e-9);
}

TEST(Assembly, BlockMatchesEval) {
  Rng rng(2);
  const PointCloud pts = uniform_cube(20, rng);
  const LaplaceKernel k;
  const Matrix a = kernel_block(k, {pts.data(), 8}, {pts.data() + 8, 12});
  ASSERT_EQ(a.rows(), 8);
  ASSERT_EQ(a.cols(), 12);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 12; ++j)
      EXPECT_DOUBLE_EQ(a(i, j), k.eval(pts[i], pts[8 + j]));
}

TEST(Assembly, DenseMatrixIsSymmetric) {
  Rng rng(3);
  const PointCloud pts = uniform_cube(50, rng);
  const YukawaKernel k(1.0);
  const Matrix a = kernel_dense(k, pts);
  EXPECT_LT(rel_error_fro(a.transposed(), a), 1e-15);
}

TEST(Assembly, KernelMatricesAreSpd) {
  // Completely monotone radial kernels are SPD on distinct points; this is
  // what justifies the Cholesky-based BLR baseline (LORAPO does Cholesky).
  Rng rng(4);
  const PointCloud pts = uniform_cube(80, rng);
  for (const Kernel* k : std::initializer_list<const Kernel*>{
           new LaplaceKernel(1e-3), new YukawaKernel(1.0, 1e-3),
           new GaussianKernel(0.5, 1e-2), new Matern32Kernel(0.5, 1e-2)}) {
    Matrix a = kernel_dense(*k, pts);
    EXPECT_NO_THROW(potrf(a.view())) << k->name();
    delete k;
  }
}

TEST(Assembly, StreamedMatvecMatchesDense) {
  Rng rng(5);
  const PointCloud pts = uniform_cube(300, rng);
  const LaplaceKernel k;
  const Matrix a = kernel_dense(k, pts);
  const Matrix x = Matrix::random(300, 2, rng);
  const Matrix want = matmul(a, x);
  Matrix got(300, 2);
  kernel_matvec(k, pts, x, got);
  EXPECT_LT(rel_error_fro(got, want), 1e-13);
}

TEST(Assembly, FlopAccountingNonzero) {
  Rng rng(6);
  const PointCloud pts = uniform_cube(32, rng);
  const LaplaceKernel k;
  flops::reset();
  (void)kernel_dense(k, pts);
  EXPECT_GE(flops::total(), 32u * 32u * k.flops_per_eval());
  flops::reset();
}

}  // namespace
}  // namespace h2
