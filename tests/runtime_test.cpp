#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>

#include "runtime/block_pool.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool.hpp"

namespace h2 {
namespace {

/// Scoped H2_THREADS override (restores the previous value on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = (old != nullptr);
    if (value == nullptr)
      unsetenv(name);
    else
      setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](int i) { ++hits[i]; }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(3);
  int calls = 0;
  parallel_for(5, 5, [&](int) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](int i) { EXPECT_EQ(i, 7); ++calls; }, &pool);
  EXPECT_EQ(calls, 1);
}

TEST(TaskGraph, RespectsDependencies) {
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lk(m);
    order.push_back(v);
  };
  const TaskId a = g.add_task([&] { push(0); }, "a");
  const TaskId b = g.add_task([&] { push(1); }, "b");
  const TaskId c = g.add_task([&] { push(2); }, "c");
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  const ExecStats stats = g.execute(4);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(stats.records.size(), 3u);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g;
  std::atomic<int> stage{0};
  const TaskId src = g.add_task([&] { stage = 1; });
  std::vector<TaskId> mids;
  std::atomic<int> mid_seen_src{0};
  for (int i = 0; i < 8; ++i) {
    mids.push_back(g.add_task([&] {
      if (stage.load() >= 1) ++mid_seen_src;
    }));
    g.add_dependency(src, mids.back());
  }
  std::atomic<bool> sink_ok{false};
  const TaskId sink = g.add_task([&] { sink_ok = (mid_seen_src.load() == 8); });
  for (const TaskId m : mids) g.add_dependency(m, sink);
  g.execute(4);
  EXPECT_TRUE(sink_ok.load());
}

TEST(TaskGraph, TraceRecordsAreComplete) {
  TaskGraph g;
  for (int i = 0; i < 10; ++i) g.add_task([] {}, "work");
  const ExecStats stats = g.execute(2);
  for (const auto& r : stats.records) {
    EXPECT_GE(r.worker, 0);
    EXPECT_LE(r.t_start, r.t_end);
    EXPECT_EQ(r.label, "work");
  }
  EXPECT_GE(stats.overhead_fraction(), 0.0);
  EXPECT_LE(stats.overhead_fraction(), 1.0);
}

TEST(TaskGraph, ExecuteTwiceThrows) {
  TaskGraph g;
  g.add_task([] {});
  g.execute(1);
  EXPECT_THROW(g.execute(1), std::logic_error);
}

TEST(TaskGraph, EmptyGraphCompletes) {
  TaskGraph g;
  const ExecStats stats = g.execute(2);
  EXPECT_EQ(stats.records.size(), 0u);
}

TEST(TaskGraph, ManyIndependentTasksAllRun) {
  TaskGraph g;
  std::vector<std::atomic<int>> hits(200);
  for (int i = 0; i < 200; ++i)
    g.add_task([&hits, i] { ++hits[i]; });
  g.execute(8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGraph, TraceCsvWritable) {
  TaskGraph g;
  g.add_task([] {}, "x");
  const ExecStats stats = g.execute(1);
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  EXPECT_TRUE(TaskGraph::write_trace_csv(stats, path));
}

TEST(TaskGraph, CycleErrorNamesStuckTasks) {
  TaskGraph g;
  const TaskId a = g.add_task([] {}, "alpha");
  const TaskId b = g.add_task([] {}, "beta");
  g.add_task([] {}, "free");
  g.add_dependency(a, b);
  g.add_dependency(b, a);
  try {
    g.execute(2);
    FAIL() << "cycle not detected";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 of 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beta"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("free"), std::string::npos) << msg;
  }
}

TEST(TaskGraph, CycleDetectedBeforeAnyTaskRuns) {
  TaskGraph g;
  std::atomic<int> ran{0};
  const TaskId a = g.add_task([&] { ++ran; }, "a");
  const TaskId b = g.add_task([&] { ++ran; }, "b");
  g.add_task([&] { ++ran; }, "independent");
  g.add_dependency(a, b);
  g.add_dependency(b, a);
  EXPECT_THROW(g.execute(2), std::logic_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, ExecutesOnBorrowedPool) {
  // The pool-backed executor must not spawn its own workers: two graphs run
  // back-to-back through one pool, and worker lanes stay inside [0, size).
  ThreadPool pool(3);
  for (int round = 0; round < 2; ++round) {
    TaskGraph g;
    std::atomic<int> sum{0};
    std::vector<TaskId> ids;
    for (int i = 0; i < 20; ++i)
      ids.push_back(g.add_task([&sum, i] { sum += i; }, "add"));
    for (int i = 1; i < 20; i += 2) g.add_dependency(ids[i - 1], ids[i]);
    const ExecStats stats = g.execute(pool);
    EXPECT_EQ(sum.load(), 190);
    EXPECT_EQ(stats.n_workers, 3);
    for (const auto& r : stats.records) {
      EXPECT_GE(r.worker, 0);
      EXPECT_LT(r.worker, 3);
    }
  }
  pool.wait_idle();
}

TEST(TaskGraph, MetadataReachesRecordsAndCsv) {
  TaskGraph g;
  g.add_task([] {}, "basis", /*owner=*/7, /*level=*/2);
  g.add_task([] {}, "merge", /*owner=*/3, /*level=*/1);
  const ExecStats stats = g.execute(1);
  ASSERT_EQ(stats.records.size(), 2u);
  EXPECT_EQ(stats.records[0].owner, 7);
  EXPECT_EQ(stats.records[0].level, 2);
  EXPECT_EQ(stats.records[1].owner, 3);
  EXPECT_EQ(stats.records[1].level, 1);

  const std::string path = ::testing::TempDir() + "/trace_meta_test.csv";
  ASSERT_TRUE(TaskGraph::write_trace_csv(stats, path));
  std::ifstream f(path);
  // `#` comment lines carry the scheduling policy and per-worker counters
  // ahead of the column header.
  std::string line;
  int comments = 0;
  bool policy_comment = false;
  while (std::getline(f, line) && line.rfind("#", 0) == 0) {
    ++comments;
    if (line.find("schedule=") != std::string::npos) policy_comment = true;
  }
  EXPECT_GE(comments, 2);  // policy line + one worker-counter line
  EXPECT_TRUE(policy_comment);
  EXPECT_EQ(line, "task,label,owner,level,worker,t_start,t_end");
  std::string row;
  ASSERT_TRUE(std::getline(f, row));
  EXPECT_EQ(row.rfind("0,basis,7,2,", 0), 0u) << row;
}

TEST(TaskGraph, RecordExportsMetaAndEdges) {
  TaskGraph g;
  const TaskId a = g.add_task([] {}, "fill", 0, 3);
  const TaskId b = g.add_task([] {}, "basis", 0, 3);
  g.add_dependency(a, b);
  const DagRecord rec = g.record();
  ASSERT_EQ(rec.n_tasks(), 2);
  EXPECT_EQ(rec.meta[a].label, "fill");
  EXPECT_EQ(rec.meta[b].level, 3);
  ASSERT_EQ(rec.successors[a].size(), 1u);
  EXPECT_EQ(rec.successors[a][0], b);
  // No priority policy ran: the record advertises that as an EMPTY vector,
  // not a full-length all-zeros one a replayer could mistake for real ranks.
  EXPECT_TRUE(rec.priority.empty());
  // Same contract for payloads: nothing recorded -> empty, so the dist
  // model never charges phantom zero-byte messages as if measured.
  EXPECT_TRUE(rec.out_bytes.empty());

  // Once any payload is set (legal even after execute(): sizes are often
  // only known post-run), the full-length vector is exported.
  g.set_out_bytes(b, 4096.0);
  const DagRecord with_bytes = g.record();
  ASSERT_EQ(with_bytes.out_bytes.size(), 2u);
  EXPECT_DOUBLE_EQ(with_bytes.out_bytes[a], 0.0);
  EXPECT_DOUBLE_EQ(with_bytes.out_bytes[b], 4096.0);
}

TEST(ThreadPool, CurrentIdentifiesOwningPool) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      if (ThreadPool::current() == &pool) ++hits;
    });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 8);
  EXPECT_EQ(ThreadPool::current(), nullptr);  // still not a pool thread
}

TEST(ThreadPool, WorkerIndexIsStableAndScoped) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);  // caller owns no pool
  ThreadPool pool(4);
  std::mutex m;
  std::vector<int> seen;
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      std::lock_guard<std::mutex> lk(m);
      seen.push_back(ThreadPool::worker_index());
    });
  pool.wait_idle();
  ASSERT_EQ(seen.size(), 64u);
  for (const int w : seen) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
  }
}

TEST(ThreadPool, EnvThreadsUnsetFallsBackToHardware) {
  const ScopedEnv guard("H2_THREADS", nullptr);
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  EXPECT_EQ(ThreadPool::env_threads(), hw);
}

TEST(ThreadPool, EnvThreadsParsesValidValue) {
  const ScopedEnv guard("H2_THREADS", "3");
  EXPECT_EQ(ThreadPool::env_threads(), 3);
}

TEST(ThreadPool, EnvThreadsInvalidValuesAllFallBackToHardware) {
  // Garbage, partial parses, zero and negative values are rejected the same
  // way: the variable is ignored and the hardware fallback applies.
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (const char* bad : {"abc", "3cows", "", "1.5", "0", "-1", "-32"}) {
    const ScopedEnv guard("H2_THREADS", bad);
    EXPECT_EQ(ThreadPool::env_threads(), hw) << '"' << bad << '"';
  }
}

TEST(ThreadPool, EnvThreadsHugeValuesClampToCap) {
  for (const char* huge : {"4097", "999999", "9223372036854775807"}) {
    const ScopedEnv guard("H2_THREADS", huge);
    EXPECT_EQ(ThreadPool::env_threads(), 1024) << '"' << huge << '"';
  }
}

TEST(ThreadPool, EnvThreadsOverflowFallsBackToHardware) {
  // Past LONG_MAX strtol saturates and sets ERANGE; env::get_int treats that
  // as unparsable (the saturated value is not what was configured), so the
  // hardware fallback applies instead of the 1024 clamp.
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const ScopedEnv guard("H2_THREADS", "99999999999999999999999");
  EXPECT_EQ(ThreadPool::env_threads(), hw);
}

TEST(ThreadPool, EnvThreadsExplicitSignAccepted) {
  const ScopedEnv guard("H2_THREADS", "+6");
  EXPECT_EQ(ThreadPool::env_threads(), 6);
}

TEST(ThreadPool, DefaultsToWorkStealing) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.policy(), ThreadPool::QueuePolicy::WorkSteal);
  EXPECT_STREQ(pool.policy_name(), "worksteal");
  ThreadPool fifo(2, ThreadPool::QueuePolicy::Fifo);
  EXPECT_STREQ(fifo.policy_name(), "fifo");
}

TEST(ThreadPool, SingleWorkerNeverSteals) {
  // A worker cannot steal from itself: with one lane every task is local.
  ThreadPool pool(1, ThreadPool::QueuePolicy::WorkSteal);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
  const auto counters = pool.worker_counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].executed, 50u);
  EXPECT_EQ(counters[0].stolen, 0u);
}

TEST(ThreadPool, StarvedWorkerActuallySteals) {
  // All sub-tasks are pushed onto ONE worker's local deque (the root task
  // submits them from inside the pool); the other worker has nothing and
  // must steal from the loaded deque's FIFO end to participate at all.
  ThreadPool pool(2, ThreadPool::QueuePolicy::WorkSteal);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 64; ++i)
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        ++count;
      });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
  const auto counters = pool.worker_counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].executed + counters[1].executed, 65u);
  EXPECT_GE(counters[0].stolen + counters[1].stolen, 1u);
}

TEST(ThreadPool, FifoPolicyRunsHighestPriorityFirst) {
  // One worker, a gate task blocking it, three prioritized tasks queued
  // behind: the shared queue must release them highest priority first.
  // (If the worker has not yet claimed the gate, the gate's priority 10
  // still sorts it first, so the observed order is identical.)
  ThreadPool pool(1, ThreadPool::QueuePolicy::Fifo);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); }, /*priority=*/10.0);
  std::vector<int> order;
  for (const int p : {1, 3, 2})
    pool.submit([&order, p] { order.push_back(p); },
                static_cast<double>(p));
  gate.set_value();
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(ThreadPool, FifoPolicyKeepsSubmissionOrderOnEqualPriority) {
  ThreadPool pool(1, ThreadPool::QueuePolicy::Fifo);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); }, /*priority=*/10.0);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  gate.set_value();
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGraph, ExecuteFromOwnPoolWorkerThrows) {
  // A worker feeding a graph to its own pool would block on work queued
  // behind itself; the guard turns the silent deadlock into an error.
  ThreadPool pool(1);
  std::atomic<bool> threw{false};
  pool.submit([&] {
    TaskGraph g;
    g.add_task([] {});
    try {
      g.execute(pool);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw.load());
}

TEST(TaskGraph, CriticalPathPrioritiesAreBottomLevels) {
  // a -> b -> c chain plus an isolated d: the bottom level (in tasks) of a
  // node is the longest chain hanging off it, itself included.
  TaskGraph g;
  const TaskId a = g.add_task([] {}, "a");
  const TaskId b = g.add_task([] {}, "b");
  const TaskId c = g.add_task([] {}, "c");
  const TaskId d = g.add_task([] {}, "d");
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  g.set_critical_path_priorities();
  const std::vector<double>& p = g.priorities();
  EXPECT_DOUBLE_EQ(p[a], 3.0);
  EXPECT_DOUBLE_EQ(p[b], 2.0);
  EXPECT_DOUBLE_EQ(p[c], 1.0);
  EXPECT_DOUBLE_EQ(p[d], 1.0);
  // Priorities travel with the callable-free record.
  const DagRecord rec = g.record();
  ASSERT_EQ(rec.priority.size(), 4u);
  EXPECT_DOUBLE_EQ(rec.priority[a], 3.0);
}

TEST(TaskGraph, ExecStatsCarryPolicyAndPerRunCounters) {
  ThreadPool pool(1);  // WorkSteal by default
  for (int round = 0; round < 2; ++round) {
    TaskGraph g;
    const int n = 16 + round;
    for (int i = 0; i < n; ++i) g.add_task([] {}, "t");
    g.set_critical_path_priorities();
    const ExecStats stats = g.execute(pool);
    EXPECT_STREQ(stats.schedule_policy, "worksteal");
    EXPECT_STREQ(stats.priority_policy, "critical-path");
    ASSERT_EQ(stats.worker_counters.size(), 1u);
    // Deltas, not the pool's cumulative counters: round 2 sees only its own.
    EXPECT_EQ(stats.worker_counters[0].executed,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(stats.total_steals(), 0u);  // one worker cannot steal
  }
}

TEST(TaskGraph, PrioritizedExecutionStillRespectsDependencies) {
  // Priorities may only reorder READY tasks: give the chain's tail a huge
  // priority and the dependency order must still win.
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lk(m);
    order.push_back(v);
  };
  const TaskId a = g.add_task([&] { push(0); }, "a");
  const TaskId b = g.add_task([&] { push(1); }, "b");
  const TaskId c = g.add_task([&] { push(2); }, "c");
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  g.set_priority(c, 1000.0);
  g.set_priority(a, 0.5);
  const ExecStats stats = g.execute(4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_STREQ(stats.priority_policy, "custom");
}

TEST(TaskGraph, SetPriorityRefinesCriticalPathWithoutReclassifying) {
  // The factorization boosts its release tasks AFTER the structural policy
  // ran; the record must keep reporting "critical-path" (refinement, not a
  // hand-rolled ordering) while carrying the overridden value.
  TaskGraph g;
  const TaskId a = g.add_task([] {}, "a");
  const TaskId b = g.add_task([] {}, "b");
  g.add_dependency(a, b);
  g.set_critical_path_priorities();
  g.set_priority(b, 99.0);
  const ExecStats stats = g.execute(1);
  EXPECT_STREQ(stats.priority_policy, "critical-path");
  const DagRecord rec = g.record();
  ASSERT_EQ(rec.priority.size(), 2u);
  EXPECT_EQ(rec.priority[b], 99.0);
}

TEST(TaskGraph, OutBytesCapturedInsideTasksReachTheRecord) {
  // Free-time capture: a task may report its own payload from inside its
  // body (the ULV tasks do — their byte counts depend on ranks the numerics
  // just chose, and the inputs of a post-hoc sweep get released mid-run).
  TaskGraph g;
  std::vector<TaskId> ids(8, -1);
  for (int i = 0; i < 8; ++i) {
    const auto id = std::make_shared<TaskId>(-1);
    ids[i] = g.add_task([&g, id, i] { g.set_out_bytes(*id, 100.0 + i); });
    *id = ids[i];
  }
  g.execute(4);
  const DagRecord rec = g.record();
  ASSERT_EQ(rec.out_bytes.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rec.out_bytes[ids[i]], 100.0 + i);
}

TEST(TaskGraph, ExecStatsTrackBlockMemoryWindow) {
  // execute() opens a blockmem window: peak_block_bytes is the high-water
  // mark of charges made by the tasks, live_block_bytes what they left
  // allocated.
  blockmem::discharge(blockmem::live());  // isolate from prior tests
  TaskGraph g;
  const TaskId a = g.add_task([] { blockmem::charge(1000); }, "alloc");
  const TaskId b = g.add_task([] { blockmem::discharge(600); }, "free");
  g.add_dependency(a, b);
  const ExecStats stats = g.execute(1);
  EXPECT_GE(stats.peak_block_bytes, 1000u);
  EXPECT_EQ(stats.live_block_bytes, 400u);
  blockmem::discharge(400);  // leave the process-global counter clean
}

TEST(BlockPool, RecyclesStorageAndTracksStats) {
  BlockPool pool(64 << 20);
  Matrix m = pool.make(10, 20);
  EXPECT_EQ(m.rows(), 10);
  EXPECT_EQ(m.cols(), 20);
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j) EXPECT_EQ(m(i, j), 0.0);
  EXPECT_EQ(pool.stats().fresh, 1u);
  pool.recycle(std::move(m));
  EXPECT_EQ(pool.stats().parked, 1u);
  EXPECT_GE(pool.stats().cached_bytes, 200u * 8u);
  // A smaller block in the same power-of-two class reuses the parked
  // storage — and comes back zeroed.
  Matrix r = pool.make(12, 16);  // 192 <= 200 doubles, same bucket
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  for (int i = 0; i < r.rows(); ++i)
    for (int j = 0; j < r.cols(); ++j) EXPECT_EQ(r(i, j), 0.0);
}

TEST(BlockPool, CapBoundsCachedBytesAndTrimEmpties) {
  BlockPool pool(1000 * 8);  // cap: 1000 doubles
  Matrix big = pool.make(40, 40);  // 1600 doubles: over the cap
  Matrix ok = pool.make(10, 10);
  pool.recycle(std::move(big));
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  pool.recycle(std::move(ok));
  EXPECT_EQ(pool.stats().parked, 1u);
  EXPECT_GT(pool.stats().cached_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  // Empty matrices are a no-op, not a cache entry.
  pool.recycle(Matrix());
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
}

TEST(BlockPool, MakeNeverHandsBackTooSmallStorage) {
  BlockPool pool(64 << 20);
  pool.recycle(pool.make(4, 4));  // park 16 doubles
  Matrix m = pool.make(5, 5);     // same size-class bucket, but 25 > 16
  EXPECT_EQ(m.rows() * m.cols(), 25);
  EXPECT_EQ(pool.stats().fresh, 2u);  // the 4x4 and the 5x5
  EXPECT_EQ(pool.stats().reused, 0u);
}

TEST(BlockPool, StorageIsCacheLineAligned) {
  // The blocked kernels' aligned panel loads rely on every Matrix — fresh or
  // recycled through the pool — starting on a kMatrixAlign boundary.
  auto aligned = [](const Matrix& m) {
    return reinterpret_cast<std::uintptr_t>(m.data()) % kMatrixAlign == 0;
  };
  BlockPool pool(64 << 20);
  for (const int n : {1, 3, 17, 64, 129}) {
    Matrix fresh(n, n);
    EXPECT_TRUE(aligned(fresh)) << "fresh n=" << n;
    Matrix pooled = pool.make(n, n);
    EXPECT_TRUE(aligned(pooled)) << "pooled fresh n=" << n;
    pool.recycle(std::move(pooled));
    Matrix reused = pool.make(n, n);
    EXPECT_TRUE(aligned(reused)) << "pooled reused n=" << n;
  }
}

}  // namespace
}  // namespace h2
