#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/task_graph.hpp"
#include "runtime/thread_pool.hpp"

namespace h2 {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](int i) { ++hits[i]; }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(3);
  int calls = 0;
  parallel_for(5, 5, [&](int) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](int i) { EXPECT_EQ(i, 7); ++calls; }, &pool);
  EXPECT_EQ(calls, 1);
}

TEST(TaskGraph, RespectsDependencies) {
  TaskGraph g;
  std::vector<int> order;
  std::mutex m;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lk(m);
    order.push_back(v);
  };
  const TaskId a = g.add_task([&] { push(0); }, "a");
  const TaskId b = g.add_task([&] { push(1); }, "b");
  const TaskId c = g.add_task([&] { push(2); }, "c");
  g.add_dependency(a, b);
  g.add_dependency(b, c);
  const ExecStats stats = g.execute(4);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(stats.records.size(), 3u);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g;
  std::atomic<int> stage{0};
  const TaskId src = g.add_task([&] { stage = 1; });
  std::vector<TaskId> mids;
  std::atomic<int> mid_seen_src{0};
  for (int i = 0; i < 8; ++i) {
    mids.push_back(g.add_task([&] {
      if (stage.load() >= 1) ++mid_seen_src;
    }));
    g.add_dependency(src, mids.back());
  }
  std::atomic<bool> sink_ok{false};
  const TaskId sink = g.add_task([&] { sink_ok = (mid_seen_src.load() == 8); });
  for (const TaskId m : mids) g.add_dependency(m, sink);
  g.execute(4);
  EXPECT_TRUE(sink_ok.load());
}

TEST(TaskGraph, TraceRecordsAreComplete) {
  TaskGraph g;
  for (int i = 0; i < 10; ++i) g.add_task([] {}, "work");
  const ExecStats stats = g.execute(2);
  for (const auto& r : stats.records) {
    EXPECT_GE(r.worker, 0);
    EXPECT_LE(r.t_start, r.t_end);
    EXPECT_EQ(r.label, "work");
  }
  EXPECT_GE(stats.overhead_fraction(), 0.0);
  EXPECT_LE(stats.overhead_fraction(), 1.0);
}

TEST(TaskGraph, ExecuteTwiceThrows) {
  TaskGraph g;
  g.add_task([] {});
  g.execute(1);
  EXPECT_THROW(g.execute(1), std::logic_error);
}

TEST(TaskGraph, EmptyGraphCompletes) {
  TaskGraph g;
  const ExecStats stats = g.execute(2);
  EXPECT_EQ(stats.records.size(), 0u);
}

TEST(TaskGraph, ManyIndependentTasksAllRun) {
  TaskGraph g;
  std::vector<std::atomic<int>> hits(200);
  for (int i = 0; i < 200; ++i)
    g.add_task([&hits, i] { ++hits[i]; });
  g.execute(8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGraph, TraceCsvWritable) {
  TaskGraph g;
  g.add_task([] {}, "x");
  const ExecStats stats = g.execute(1);
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  EXPECT_TRUE(TaskGraph::write_trace_csv(stats, path));
}

}  // namespace
}  // namespace h2
