#include <gtest/gtest.h>

#include <cmath>

#include "linalg/linalg.hpp"
#include "util/rng.hpp"

namespace h2 {
namespace {

double orthogonality_error(ConstMatrixView q) {
  const Matrix qtq = matmul(q, q, Trans::Yes, Trans::No);
  return rel_error_fro(qtq, Matrix::identity(q.cols()));
}

/// Random m x n matrix of exact rank r with singular values ~ geometric decay.
Matrix rank_deficient(int m, int n, int r, Rng& rng) {
  const Matrix u = Matrix::random(m, r, rng);
  Matrix v = Matrix::random(n, r, rng);
  for (int k = 0; k < r; ++k) {
    const double s = std::pow(0.5, k);
    for (int i = 0; i < n; ++i) v(i, k) *= s;
  }
  return matmul(u, v, Trans::No, Trans::Yes);
}

struct QrShape {
  int m, n;
};
class QrTest : public ::testing::TestWithParam<QrShape> {};

TEST_P(QrTest, HouseholderReconstructs) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  const Matrix a = Matrix::random(m, n, rng);
  Matrix qr = a;
  std::vector<double> tau;
  householder_qr(qr, tau);
  const int k = std::min(m, n);
  const Matrix q = form_q(qr, tau, k);
  EXPECT_LT(orthogonality_error(q), 1e-13);
  const Matrix r = extract_r(qr);
  const Matrix rebuilt = matmul(q, r);
  EXPECT_LT(rel_error_fro(rebuilt, a), 1e-13);
}

TEST_P(QrTest, FullQIsSquareOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(m + 7 * n);
  const Matrix a = Matrix::random(m, n, rng);
  Matrix qr = a;
  std::vector<double> tau;
  householder_qr(qr, tau);
  const Matrix q = form_q(qr, tau, m);
  ASSERT_EQ(q.rows(), m);
  ASSERT_EQ(q.cols(), m);
  EXPECT_LT(orthogonality_error(q), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrTest,
                         ::testing::Values(QrShape{1, 1}, QrShape{5, 3},
                                           QrShape{3, 5}, QrShape{16, 16},
                                           QrShape{33, 8}, QrShape{8, 33},
                                           QrShape{64, 17}));

TEST(PivotedQr, FullRankReconstruction) {
  Rng rng(10);
  const Matrix a = Matrix::random(12, 9, rng);
  const PivotedQr f = pivoted_qr(a, 0.0);
  EXPECT_EQ(f.rank, 9);
  EXPECT_LT(orthogonality_error(f.q), 1e-13);
  // A(:, jpvt[k]) == (Q R)(:, k).
  const Matrix qr = matmul(f.q.block(0, 0, 12, f.rank), f.r);
  for (int k = 0; k < 9; ++k)
    for (int i = 0; i < 12; ++i)
      EXPECT_NEAR(qr(i, k), a(i, f.jpvt[k]), 1e-12);
}

TEST(PivotedQr, DetectsExactRank) {
  Rng rng(11);
  for (const int r : {0, 1, 3, 7}) {
    const Matrix a = r == 0 ? Matrix(20, 15) : rank_deficient(20, 15, r, rng);
    const PivotedQr f = pivoted_qr(a, 1e-10);
    EXPECT_EQ(f.rank, r);
  }
}

TEST(PivotedQr, ToleranceTruncationBoundsError) {
  Rng rng(12);
  const Matrix a = rank_deficient(30, 25, 20, rng);  // decaying spectrum
  for (const double tol : {1e-2, 1e-4, 1e-6}) {
    const PivotedQr f = pivoted_qr(a, tol);
    const Matrix approx = [&] {
      Matrix qr = matmul(f.q.block(0, 0, 30, f.rank), f.r);
      // Undo pivoting: approx(:, jpvt[k]) = qr(:, k).
      Matrix out(30, 25);
      for (int k = 0; k < 25; ++k)
        for (int i = 0; i < 30; ++i) out(i, f.jpvt[k]) = qr(i, k);
      return out;
    }();
    // Column-pivoted QR truncation error is bounded by ~sqrt(n-r)*tol*|A|.
    EXPECT_LT(rel_error_fro(approx, a), 50 * tol);
    // And the rank should shrink as tol grows.
    EXPECT_LE(f.rank, 20);
  }
}

TEST(PivotedQr, MaxRankCap) {
  Rng rng(13);
  const Matrix a = Matrix::random(16, 16, rng);
  const PivotedQr f = pivoted_qr(a, 0.0, 5);
  EXPECT_EQ(f.rank, 5);
  EXPECT_EQ(f.q.rows(), 16);
  EXPECT_EQ(f.q.cols(), 16);
  EXPECT_LT(orthogonality_error(f.q), 1e-13);
}

TEST(PivotedQr, ZeroMatrixHasRankZeroIdentityQ) {
  const Matrix a(6, 4);
  const PivotedQr f = pivoted_qr(a, 1e-12);
  EXPECT_EQ(f.rank, 0);
  EXPECT_LT(rel_error_fro(f.q, Matrix::identity(6)), 1e-15);
}

TEST(PivotedQr, EmptyConcatenation) {
  const Matrix a(5, 0);
  const PivotedQr f = pivoted_qr(a, 1e-8);
  EXPECT_EQ(f.rank, 0);
  ASSERT_EQ(f.q.rows(), 5);
  ASSERT_EQ(f.q.cols(), 5);
}

TEST(Svd, ReconstructsAndOrders) {
  Rng rng(20);
  for (const auto& [m, n] : {std::pair{10, 6}, {6, 10}, {8, 8}, {1, 5}}) {
    const Matrix a = Matrix::random(m, n, rng);
    const Svd svd = jacobi_svd(a);
    const int k = std::min(m, n);
    ASSERT_EQ(static_cast<int>(svd.sigma.size()), k);
    for (int i = 1; i < k; ++i) EXPECT_LE(svd.sigma[i], svd.sigma[i - 1] + 1e-14);
    Matrix us = svd.u;
    for (int j = 0; j < k; ++j)
      for (int i = 0; i < m; ++i) us(i, j) *= svd.sigma[j];
    const Matrix rebuilt = matmul(us, svd.v, Trans::No, Trans::Yes);
    EXPECT_LT(rel_error_fro(rebuilt, a), 1e-11);
    EXPECT_LT(orthogonality_error(svd.u.block(0, 0, m, k)), 1e-10);
    EXPECT_LT(orthogonality_error(svd.v.block(0, 0, n, k)), 1e-10);
  }
}

TEST(Svd, SingularValuesOfKnownMatrix) {
  // diag(3, 2) embedded in 3x2.
  Matrix a(3, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  const Svd svd = jacobi_svd(a);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-13);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-13);
}

TEST(Svd, TruncationRank) {
  std::vector<double> sigma{10.0, 1.0, 1e-3, 1e-9, 0.0};
  EXPECT_EQ(svd_truncation_rank(sigma, 1e-2), 2);
  EXPECT_EQ(svd_truncation_rank(sigma, 1e-6), 3);
  EXPECT_EQ(svd_truncation_rank(sigma, 0.0), 4);
  EXPECT_EQ(svd_truncation_rank(sigma, 1e-6, 1), 1);
  EXPECT_EQ(svd_truncation_rank({}, 1e-2), 0);
}

}  // namespace
}  // namespace h2
