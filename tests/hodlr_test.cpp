#include <gtest/gtest.h>

#include "hodlr/hodlr.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;

TEST(Hodlr, SolvesAgainstDenseReference) {
  const Problem p = make_problem(400, 32, Geometry::Cube, KernelKind::Laplace);
  HodlrMatrix::Options o;
  o.tol = 1e-10;
  const HodlrMatrix hodlr(*p.tree, *p.kernel, o);
  Rng rng(1);
  const Matrix b = Matrix::random(400, 2, rng);
  Matrix x = b;
  hodlr.solve(x);
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  const Matrix x_ref = lu_solve(a, b);
  EXPECT_LT(rel_error_fro(x, x_ref), 1e-6);
}

TEST(Hodlr, DegenerateSingleLeafIsDenseLu) {
  const Problem p = make_problem(30, 64, Geometry::Cube, KernelKind::Laplace);
  EXPECT_EQ(p.tree->depth(), 0);
  const HodlrMatrix hodlr(*p.tree, *p.kernel, {1e-10, -1});
  Rng rng(2);
  const Matrix b = Matrix::random(30, 1, rng);
  Matrix x = b;
  hodlr.solve(x);
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  EXPECT_LT(rel_error_fro(x, lu_solve(a, b)), 1e-11);
}

TEST(Hodlr, ToleranceControlsAccuracy) {
  const Problem p = make_problem(300, 32, Geometry::Cube, KernelKind::Yukawa);
  const Matrix a = kernel_dense(*p.kernel, p.tree->points());
  Rng rng(3);
  const Matrix b = Matrix::random(300, 1, rng);
  const Matrix x_ref = lu_solve(a, b);
  double prev = 1.0;
  int improved = 0;
  for (const double tol : {1e-3, 1e-6, 1e-10}) {
    const HodlrMatrix hodlr(*p.tree, *p.kernel, {tol, -1});
    Matrix x = b;
    hodlr.solve(x);
    const double err = rel_error_fro(x, x_ref);
    if (err < prev) ++improved;
    prev = err;
  }
  EXPECT_GE(improved, 2);
  EXPECT_LT(prev, 1e-6);
}

TEST(Hodlr, LogDetMatchesDense) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Matern);
  const HodlrMatrix hodlr(*p.tree, *p.kernel, {1e-11, -1});
  Matrix a = kernel_dense(*p.kernel, p.tree->points());
  std::vector<int> piv;
  getrf(a, piv);
  const double want = lu_logabsdet(a, piv);
  EXPECT_NEAR(hodlr.logabsdet(), want, 1e-5 * std::abs(want));
}

TEST(Hodlr, RankGrowsWithNIn3D) {
  // Weak admissibility + independent bases: like HSS, the off-diagonal rank
  // grows with N on 3-D geometry (Table I's O(N log^2 N) needs bounded rank,
  // which 3-D denies — the paper's motivation for strong admissibility).
  int prev = 0;
  for (const int n : {256, 512, 1024}) {
    const Problem p =
        make_problem(n, 32, Geometry::Cube, KernelKind::Laplace, 3);
    const HodlrMatrix hodlr(*p.tree, *p.kernel, {1e-8, -1});
    EXPECT_GE(hodlr.max_rank_used(), prev);
    prev = hodlr.max_rank_used();
  }
  EXPECT_GT(prev, 24);
}

TEST(Hodlr, MultipleRhsConsistentWithSingle) {
  const Problem p = make_problem(256, 32, Geometry::Cube, KernelKind::Laplace);
  const HodlrMatrix hodlr(*p.tree, *p.kernel, {1e-9, -1});
  Rng rng(4);
  const Matrix b = Matrix::random(256, 3, rng);
  Matrix all = b;
  hodlr.solve(all);
  for (int c = 0; c < 3; ++c) {
    Matrix one = Matrix::from(b.block(0, c, 256, 1));
    hodlr.solve(one);
    EXPECT_LT(rel_error_fro(one, Matrix::from(all.block(0, c, 256, 1))), 1e-12);
  }
}

TEST(MortonTree, PartitionIsValidAndContiguous) {
  Rng rng(5);
  const PointCloud pts = uniform_cube(500, rng);
  const ClusterTree tree =
      ClusterTree::build(pts, 32, rng, Partitioner::Morton);
  ASSERT_EQ(tree.n_points(), 500);
  int prev_end = 0;
  for (int c = 0; c < tree.n_clusters(tree.depth()); ++c) {
    EXPECT_EQ(tree.node(tree.depth(), c).begin, prev_end);
    prev_end = tree.node(tree.depth(), c).end;
  }
  EXPECT_EQ(prev_end, 500);
}

TEST(MortonTree, SolverWorksOnMortonPartition) {
  Rng rng(6);
  const PointCloud pts = uniform_cube(400, rng);
  const ClusterTree tree =
      ClusterTree::build(pts, 32, rng, Partitioner::Morton);
  const LaplaceKernel k(1e-2);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, 0.75};
  ho.tol = 1e-10;
  const H2Matrix a(tree, k, ho);
  UlvOptions u;
  u.tol = 1e-8;
  const UlvFactorization f(a, u);
  const Matrix b = Matrix::random(400, 1, rng);
  Matrix x = b;
  f.solve(x);
  const Matrix ad = kernel_dense(k, tree.points());
  EXPECT_LT(rel_error_fro(x, lu_solve(ad, b)), 1e-4);
}

TEST(MortonTree, KMeansBeatsMortonOnComplexSurfaces) {
  // The paper's Sec. V claim: k-means clusters complex surface geometry
  // better than space-filling curves — measured as tighter clusters
  // (smaller total bounding radius) at the leaf level.
  Rng rng(7);
  const PointCloud pts = molecule_surface(1024, rng);
  const ClusterTree km = ClusterTree::build(pts, 64, rng, Partitioner::KMeans);
  const ClusterTree mo = ClusterTree::build(pts, 64, rng, Partitioner::Morton);
  double km_r = 0.0, mo_r = 0.0;
  for (int c = 0; c < km.n_clusters(km.depth()); ++c) {
    km_r += km.node(km.depth(), c).radius;
    mo_r += mo.node(mo.depth(), c).radius;
  }
  EXPECT_LT(km_r, mo_r);
}

}  // namespace
}  // namespace h2
