#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/env.hpp"
#include "util/flops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace h2 {
namespace {

TEST(Flops, AccumulatesAndResets) {
  flops::reset();
  flops::add(100);
  flops::add(23);
  EXPECT_EQ(flops::total(), 123u);
  flops::reset();
  EXPECT_EQ(flops::total(), 0u);
}

TEST(Flops, SumsAcrossThreads) {
  flops::reset();
  std::thread a([] { flops::add(40); });
  std::thread b([] { flops::add(2); });
  a.join();
  b.join();
  flops::add(1);
  EXPECT_EQ(flops::total(), 43u);
  flops::reset();
}

TEST(Flops, AnalyticFormulas) {
  EXPECT_EQ(flops::gemm(2, 3, 4), 48u);
  EXPECT_EQ(flops::trsm_left(4, 2), 32u);
  EXPECT_EQ(flops::trsm_right(4, 2), 16u);
  EXPECT_EQ(flops::potrf(3), 9u);
  EXPECT_GT(flops::getrf(8, 8), 0u);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, UniformIndexBounded) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Env, FallbacksAndParsing) {
  EXPECT_EQ(env::get_int("H2_TEST_UNSET_VAR_XYZ", 5), 5);
  EXPECT_DOUBLE_EQ(env::get_double("H2_TEST_UNSET_VAR_XYZ", 2.5), 2.5);
  EXPECT_EQ(env::get_string("H2_TEST_UNSET_VAR_XYZ", "d"), "d");
  setenv("H2_TEST_SET_VAR", "12", 1);
  EXPECT_EQ(env::get_int("H2_TEST_SET_VAR", 5), 12);
  setenv("H2_TEST_SET_VAR", "1.5e-3", 1);
  EXPECT_DOUBLE_EQ(env::get_double("H2_TEST_SET_VAR", 0.0), 1.5e-3);
  setenv("H2_TEST_SET_VAR", "junk", 1);
  EXPECT_EQ(env::get_int("H2_TEST_SET_VAR", 9), 9);
  unsetenv("H2_TEST_SET_VAR");
}

TEST(Env, OutOfRangeValuesFallBack) {
  // strtol/strtod saturate out-of-range inputs (LONG_MAX, +/-HUGE_VAL, or
  // ~0 on underflow) and only report it via errno == ERANGE. A saturated
  // value is not what was configured, so these keep the fallback rather
  // than silently returning the clamp.
  setenv("H2_TEST_SET_VAR", "99999999999999999999999", 1);
  EXPECT_EQ(env::get_int("H2_TEST_SET_VAR", 7), 7);
  setenv("H2_TEST_SET_VAR", "-99999999999999999999999", 1);
  EXPECT_EQ(env::get_int("H2_TEST_SET_VAR", 7), 7);
  setenv("H2_TEST_SET_VAR", "1e400", 1);
  EXPECT_DOUBLE_EQ(env::get_double("H2_TEST_SET_VAR", 3.5), 3.5);
  setenv("H2_TEST_SET_VAR", "-1e400", 1);
  EXPECT_DOUBLE_EQ(env::get_double("H2_TEST_SET_VAR", 3.5), 3.5);
  setenv("H2_TEST_SET_VAR", "1e-400", 1);  // underflow, also ERANGE
  EXPECT_DOUBLE_EQ(env::get_double("H2_TEST_SET_VAR", 3.5), 3.5);
  // In-range values still parse after the errno checks.
  setenv("H2_TEST_SET_VAR", "1024", 1);
  EXPECT_EQ(env::get_int("H2_TEST_SET_VAR", 7), 1024);
  unsetenv("H2_TEST_SET_VAR");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Table, MarkdownAndCsv) {
  Table t({"N", "time"});
  t.add_row({"16", "1.5"});
  t.add_row({"32", "3.0"});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| N "), std::string::npos);
  EXPECT_NE(md.find("| 32 |"), std::string::npos);
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("N,time"), std::string::npos);
  EXPECT_NE(csv.find("32,3.0"), std::string::npos);
  EXPECT_EQ(t.n_rows(), 2u);
}

TEST(Table, Formatting) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_sci(12345.0, 2), "1.23e+04");
}

}  // namespace
}  // namespace h2
