#include <gtest/gtest.h>

#include "blr/blr_matrix.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

using testing_support::Geometry;
using testing_support::KernelKind;
using testing_support::make_problem;
using testing_support::Problem;
using testing_support::ulv_solution_error;

// ---------- strided-view paths of the linalg kernels ----------

TEST(StridedViews, GemmOnSubBlocks) {
  Rng rng(1);
  Matrix big_a = Matrix::random(10, 10, rng);
  Matrix big_b = Matrix::random(10, 10, rng);
  Matrix big_c(10, 10);
  // Operate on interior blocks (ld != rows).
  ConstMatrixView a = big_a.block(2, 3, 5, 4);
  ConstMatrixView b = big_b.block(1, 2, 4, 6);
  MatrixView c = big_c.block(3, 1, 5, 6);
  gemm(1.0, a, Trans::No, b, Trans::No, 0.0, c);
  const Matrix want = matmul(Matrix::from(a), Matrix::from(b));
  EXPECT_LT(rel_error_fro(Matrix::from(c), want), 1e-14);
  // Entries outside the C block must stay zero.
  EXPECT_EQ(big_c(0, 0), 0.0);
  EXPECT_EQ(big_c(9, 9), 0.0);
}

TEST(StridedViews, GetrfAndTrsmOnSubBlocks) {
  Rng rng(2);
  Matrix big = Matrix::random(12, 12, rng);
  add_identity(big, 6.0);
  MatrixView a = big.block(4, 4, 6, 6);
  const Matrix a_copy = Matrix::from(a);
  std::vector<int> piv;
  getrf(a, piv);
  Matrix rhs = Matrix::random(6, 2, rng);
  Matrix x = rhs;
  getrs(a, piv, x);
  const Matrix ax = matmul(a_copy, x);
  EXPECT_LT(rel_error_fro(ax, rhs), 1e-10);
}

TEST(StridedViews, PivotedQrOnSubBlock) {
  Rng rng(3);
  Matrix big = Matrix::random(20, 20, rng);
  ConstMatrixView a = big.block(5, 5, 8, 10);
  const PivotedQr f = pivoted_qr(a, 0.0);
  EXPECT_EQ(f.rank, 8);
  const Matrix qtq = matmul(f.q, f.q, Trans::Yes, Trans::No);
  EXPECT_LT(rel_error_fro(qtq, Matrix::identity(8)), 1e-12);
}

TEST(StridedViews, LaswpOnSubBlock) {
  Rng rng(4);
  Matrix big = Matrix::random(8, 8, rng);
  MatrixView b = big.block(2, 2, 4, 3);
  const Matrix before = Matrix::from(b);
  std::vector<int> piv{2, 3, 2};
  laswp(b, piv, true);
  laswp(b, piv, false);
  EXPECT_LT(rel_error_fro(Matrix::from(b), before), 1e-15);
}

// ---------- admissibility / eta sweeps ----------

class EtaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(EtaSweepTest, UlvAccurateForAnyEta) {
  const double eta = GetParam();
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Strong, eta};
  ho.tol = 1e-10;
  UlvOptions u;
  u.tol = 1e-8;
  const double err = ulv_solution_error(p, ho, u);
  EXPECT_LT(err, 1e-4) << "eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(Etas, EtaSweepTest,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0));

TEST(EtaSweep, LargerEtaMeansFewerAdmissiblePairs) {
  Rng rng(5);
  const PointCloud pts = uniform_cube(512, rng);
  const ClusterTree tree = ClusterTree::build(pts, 32, rng);
  std::size_t prev = static_cast<std::size_t>(-1);
  for (const double eta : {0.5, 1.0, 2.0}) {
    const BlockStructure s(tree, {Admissibility::Strong, eta});
    std::size_t total = 0;
    for (int l = 1; l <= s.depth(); ++l) total += s.admissible_pairs(l).size();
    EXPECT_LE(total, prev);
    prev = total;
  }
}

// ---------- ACA separation properties ----------

TEST(AcaProperties, RankDecreasesWithSeparation) {
  Rng rng(6);
  const PointCloud rows = sphere_surface(128, rng, {0, 0, 0}, 1.0);
  const LaplaceKernel k(1e-4);
  int prev = 1 << 30;
  for (const double sep : {3.0, 6.0, 12.0, 24.0}) {
    const PointCloud cols = sphere_surface(128, rng, {sep, 0, 0}, 1.0);
    const LowRank lr = aca_compress(k, rows, cols, 1e-8);
    EXPECT_LE(lr.rank(), prev) << "sep=" << sep;
    prev = lr.rank();
  }
  // Far apart: a handful of multipole-like directions (partial-pivot ACA
  // slightly overshoots the optimal rank).
  EXPECT_LE(prev, 12);
}

TEST(AcaProperties, ExactOnTinyBlocks) {
  Rng rng(7);
  const PointCloud rows = uniform_cube(3, rng);
  PointCloud cols = uniform_cube(2, rng);
  for (auto& c : cols) c.x += 4.0;
  const LaplaceKernel k(1e-4);
  const LowRank lr = aca_compress(k, rows, cols, 1e-14);
  const Matrix exact = kernel_block(k, rows, cols);
  EXPECT_LT(rel_error_fro(lr.to_dense(), exact), 1e-10);
}

TEST(AcaProperties, HandlesConstantBlock) {
  // A rank-1 constant matrix must compress to rank 1, not stall.
  class ConstKernel final : public Kernel {
   public:
    double eval(const Point&, const Point&) const override { return 3.5; }
    std::string name() const override { return "const"; }
  };
  Rng rng(8);
  const PointCloud rows = uniform_cube(20, rng);
  const PointCloud cols = uniform_cube(15, rng);
  const ConstKernel k;
  const LowRank lr = aca_compress(k, rows, cols, 1e-10);
  EXPECT_EQ(lr.rank(), 1);
  EXPECT_NEAR(lr.to_dense()(4, 7), 3.5, 1e-12);
}

// ---------- solvers on alternate partitions/geometries ----------

TEST(AltPartitions, BlrSolvesOnMortonTree) {
  Rng rng(9);
  const PointCloud pts = uniform_cube(400, rng);
  const ClusterTree tree =
      ClusterTree::build(pts, 64, rng, Partitioner::Morton);
  const LaplaceKernel k(1e-2);
  BlrOptions o;
  o.tol = 1e-9;
  BlrMatrix blr(tree, k, o);
  blr.factorize();
  const Matrix b = Matrix::random(400, 1, rng);
  Matrix x = b;
  blr.solve(x);
  const Matrix a = kernel_dense(k, tree.points());
  EXPECT_LT(rel_error_fro(x, lu_solve(a, b)), 1e-5);
}

TEST(AltPartitions, UlvOnSphereSurfaceWeakAdm) {
  const Problem p = make_problem(384, 32, Geometry::Sphere, KernelKind::Gaussian);
  H2BuildOptions ho;
  ho.admissibility = {Admissibility::Weak, 0.0};
  ho.tol = 1e-10;
  UlvOptions u;
  u.tol = 1e-8;
  EXPECT_LT(ulv_solution_error(p, ho, u), 1e-3);
}

TEST(AltPartitions, DeterministicAcrossIdenticalBuilds) {
  // Same seed, same partitioner: identical trees and identical solves.
  Rng rng_a(11), rng_b(11);
  const PointCloud pts = molecule_surface(256, rng_a);
  Rng rng_c(11);
  const PointCloud pts2 = molecule_surface(256, rng_c);
  ASSERT_EQ(pts.size(), pts2.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(pts[i].x, pts2[i].x);
}

// ---------- flop accounting sanity across solvers ----------

TEST(FlopAccounting, UlvFlopsScaleWithTolerance) {
  const Problem p = make_problem(512, 32, Geometry::Cube, KernelKind::Laplace);
  std::uint64_t loose = 0, tight = 0;
  for (const double tol : {1e-3, 1e-10}) {
    H2BuildOptions ho;
    ho.admissibility = {Admissibility::Strong, 0.75};
    ho.tol = 1e-2 * tol;
    const H2Matrix h(*p.tree, *p.kernel, ho);
    UlvOptions u;
    u.tol = tol;
    const UlvFactorization f(h, u);
    (tol > 1e-6 ? loose : tight) = f.stats().factor_flops;
  }
  EXPECT_GT(tight, loose);  // tighter tolerance -> larger ranks -> more work
}

}  // namespace
}  // namespace h2
