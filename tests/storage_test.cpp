// The storage tier (src/storage/): out-of-core factorization correctness —
// solves with the spill/prefetch store enabled are bitwise identical to
// in-RAM across executors and worker counts while resident factor bytes stay
// under the budget (plus one block of slack); demote/promote round-trips;
// fault injection (truncated files, corrupted payloads, a full disk) turning
// into diagnosable errors that name the file and block, never a silently
// wrong answer; and spill-file cleanup on destruction including error paths.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "api/solver.hpp"
#include "storage/spill_store.hpp"
#include "test_helpers.hpp"

namespace h2 {
namespace {

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<std::size_t>(a.rows()) *
                         static_cast<std::size_t>(a.cols())) == 0;
}

SolverOptions cheap_opts() {
  return SolverOptions{}.with_tol(1e-6).with_max_rank(60);
}

/// Scratch directory under the system temp dir (unique per process + use),
/// removed recursively on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("h2-storage-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(OutOfCore, BitwiseIdenticalToInRamAcrossExecutorsAndWorkers) {
  // The tentpole contract: spilling moves factor bytes, never transforms
  // them, so an out-of-core solve at HALF the in-RAM factor footprint must
  // reproduce the in-RAM answer bit for bit — under both executors, serial
  // and parallel — while the store's resident gauge respects the budget up
  // to one block of slack.
  Rng rng(21);
  const PointCloud pts = uniform_cube(512, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(512, 2, rng);

  const Solver ref = Solver::build(pts, kern, cheap_opts());
  const Matrix x_ref = ref.solve(b);
  const double ld_ref = ref.logabsdet();
  const UlvStats* rst = ref.ulv_stats();
  ASSERT_NE(rst, nullptr);
  ASSERT_GT(rst->final_block_bytes, 0u);
  const double budget_mb =
      0.5 * static_cast<double>(rst->final_block_bytes) / (1 << 20);

  TempDir tmp;
  struct Cfg {
    UlvExecutor ex;
    int workers;
  };
  const Cfg cfgs[] = {{UlvExecutor::TaskDag, 1},
                      {UlvExecutor::TaskDag, 4},
                      {UlvExecutor::PhaseLoops, 1},
                      {UlvExecutor::PhaseLoops, 4}};
  for (const Cfg& c : cfgs) {
    const Solver s = Solver::build(pts, kern,
                                   cheap_opts()
                                       .with_executor(c.ex)
                                       .with_solve_executor(c.ex)
                                       .with_workers(c.workers)
                                       .with_spill_dir(tmp.path)
                                       .with_spill_budget_mb(budget_mb)
                                       .with_spill_threads(2));
    EXPECT_TRUE(bitwise_equal(s.solve(b), x_ref))
        << "executor " << static_cast<int>(c.ex) << " workers " << c.workers;
    EXPECT_EQ(s.logabsdet(), ld_ref);

    const SpillStats ss = s.spill_stats();
    EXPECT_GT(ss.blocks, 0u);
    EXPECT_GT(ss.spilled_blocks, 0u) << "nothing ever hit the disk";
    EXPECT_GT(ss.evictions, 0u) << "budget never forced a payload out";
    EXPECT_LE(ss.budget_bytes, rst->final_block_bytes / 2 + 1);
    // The acceptance bound: over the serve phase, resident factor bytes
    // never exceed the budget by more than one (required) block.
    EXPECT_LE(ss.peak_resident_bytes, ss.budget_bytes + ss.max_block_bytes);

    // UlvStats carries the adoption totals for operators reading ulv_stats.
    const UlvStats* st = s.ulv_stats();
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->spilled_blocks, ss.blocks);
    EXPECT_EQ(st->spilled_bytes, ss.block_bytes);
  }
}

TEST(OutOfCore, DagSolveReportsPrefetchCounters) {
  Rng rng(22);
  const PointCloud pts = uniform_cube(512, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(512, 1, rng);
  TempDir tmp;
  // Budget 0: a pure disk tier, so every solve step must fault or prefetch —
  // the ExecStats deltas of the DAG solve have to see that traffic.
  const Solver s = Solver::build(
      pts, kern,
      cheap_opts().with_spill_dir(tmp.path).with_spill_budget_mb(0.0));
  const Matrix x = s.solve(b);
  (void)x;
  const ExecStats ex = s.last_solve_stats();
  EXPECT_GT(ex.prefetch_hits + ex.prefetch_misses, 0u);
  const SpillStats ss = s.spill_stats();
  EXPECT_EQ(ex.prefetch_hits + ex.prefetch_misses, ss.step_hits + ss.step_misses);
}

TEST(OutOfCore, DemotePromoteRoundTripIsBitwise) {
  Rng rng(23);
  const PointCloud pts = uniform_cube(384, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(384, 1, rng);
  TempDir tmp;

  // Built fully in RAM (no spill configured): demotion attaches the store
  // lazily, registers every factor block, and drains it to disk.
  Solver s = Solver::build(pts, kern, cheap_opts());
  const Matrix x_ref = s.solve(b);
  EXPECT_EQ(s.spill_stats().blocks, 0u);

  ASSERT_TRUE(s.demote_to_disk(tmp.path));
  EXPECT_GT(s.spill_stats().blocks, 0u);
  EXPECT_EQ(s.spill_stats().resident_bytes, 0u) << "demotion left bytes in RAM";
  // A demoted factorization still serves (demand-faulting per step)...
  EXPECT_TRUE(bitwise_equal(s.solve(b), x_ref));
  // ...and promotes back wholesale.
  s.promote();
  EXPECT_GT(s.spill_stats().resident_bytes, 0u);
  EXPECT_TRUE(bitwise_equal(s.solve(b), x_ref));
  EXPECT_EQ(s.logabsdet(), Solver::build(pts, kern, cheap_opts()).logabsdet());

  // Backends without the block store have no disk tier to demote into.
  Solver blr = Solver::build(
      pts, kern, cheap_opts().with_structure(SolverStructure::BLR));
  EXPECT_FALSE(blr.demote_to_disk(tmp.path));
}

TEST(OutOfCore, OptionsValidationRejectsBadSpillConfig) {
  Rng rng(24);
  const PointCloud pts = uniform_cube(64, rng);
  const LaplaceKernel kern(1e-2);
  TempDir tmp;
  EXPECT_THROW(
      Solver::build(pts, kern,
                    cheap_opts().with_spill_dir("/nonexistent/h2-spill")),
      std::invalid_argument);
  EXPECT_THROW(Solver::build(pts, kern, cheap_opts().with_spill_budget_mb(-1)),
               std::invalid_argument);
  EXPECT_THROW(
      Solver::build(
          pts, kern,
          cheap_opts().with_spill_dir(tmp.path).with_spill_threads(0)),
      std::invalid_argument);
  // Zero writer threads without a spill tier is inert, not an error.
  (void)Solver::build(pts, kern, cheap_opts().with_spill_threads(0));
}

TEST(OutOfCore, SpillFilesCleanedUpOnSolverDestruction) {
  Rng rng(25);
  const PointCloud pts = uniform_cube(256, rng);
  const LaplaceKernel kern(1e-2);
  const Matrix b = Matrix::random(256, 1, rng);
  TempDir tmp;
  {
    const Solver s = Solver::build(
        pts, kern,
        cheap_opts().with_spill_dir(tmp.path).with_spill_budget_mb(0.0));
    (void)s.solve(b);
    EXPECT_FALSE(std::filesystem::is_empty(tmp.path))
        << "no spill directory was ever created";
  }
  EXPECT_TRUE(std::filesystem::is_empty(tmp.path))
      << "solver destruction left spill files behind";
}

TEST(SpillStoreFaults, TruncatedFileThrowsNamingFileAndBlock) {
  TempDir tmp;
  std::string dir;
  {
    Rng rng(26);
    Matrix m = Matrix::random(24, 16, rng);
    SpillStore store({tmp.path, 1ull << 30, 1});
    dir = store.directory();
    const SpillStore::SlotId id = store.adopt(&m, "dense L1 (0,0)");
    store.quiesce();
    store.set_budget(0);  // payload dropped; the file is now the only copy
    ASSERT_EQ(store.stats().resident_bytes, 0u);

    std::filesystem::resize_file(store.file_path(id), 10);
    try {
      store.pin({id});
      FAIL() << "reading a truncated spill file did not throw";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
      EXPECT_NE(msg.find(store.file_path(id)), std::string::npos) << msg;
      EXPECT_NE(msg.find("dense L1 (0,0)"), std::string::npos) << msg;
    }
    // The store is poisoned: every entry point rethrows, nothing serves a
    // half-read block.
    EXPECT_THROW(store.pin({id}), std::runtime_error);
    EXPECT_THROW(store.quiesce(), std::runtime_error);
  }
  EXPECT_FALSE(std::filesystem::exists(dir))
      << "failed store left its directory behind";
}

TEST(SpillStoreFaults, CorruptPayloadFailsTheChecksum) {
  TempDir tmp;
  Rng rng(27);
  Matrix m = Matrix::random(24, 16, rng);
  SpillStore store({tmp.path, 1ull << 30, 1});
  const SpillStore::SlotId id = store.adopt(&m, "q L2 c3");
  store.quiesce();
  store.set_budget(0);

  {  // Flip one payload byte behind the 40-byte header.
    std::fstream f(store.file_path(id),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(40 + 100);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(40 + 100);
    f.write(&c, 1);
  }
  try {
    store.pin({id});
    FAIL() << "reading a corrupt spill file did not throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find(store.file_path(id)), std::string::npos) << msg;
    EXPECT_NE(msg.find("q L2 c3"), std::string::npos) << msg;
  }
}

TEST(SpillStoreFaults, FullDiskSurfacesOnQuiesceNamingFileAndBlock) {
  TempDir tmp;
  std::string dir;
  std::string path;
  {
    Rng rng(28);
    Matrix m = Matrix::random(24, 16, rng);
    SpillStore store({tmp.path, 1ull << 30, 1});
    dir = store.directory();
    store.fail_next_writes_for_testing(1);
    const SpillStore::SlotId id = store.adopt(&m, "top_lu");
    path = store.file_path(id);
    try {
      store.quiesce();
      FAIL() << "an out-of-space spill write did not surface";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("No space left on device"), std::string::npos) << msg;
      EXPECT_NE(msg.find(path), std::string::npos) << msg;
      EXPECT_NE(msg.find("top_lu"), std::string::npos) << msg;
    }
    EXPECT_THROW(store.adopt(&m, "again"), std::runtime_error);
  }
  // Cleanup on the throw path too: the half-written file and the directory
  // are gone with the store.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(dir));
}

}  // namespace
}  // namespace h2
