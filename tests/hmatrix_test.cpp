#include <gtest/gtest.h>

#include <set>

#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/kernel.hpp"
#include "linalg/linalg.hpp"

namespace h2 {
namespace {

TEST(Admissibility, WeakAdmitsAllOffDiagonal) {
  Rng rng(1);
  const PointCloud pts = uniform_cube(128, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  const AdmissibilityConfig weak{Admissibility::Weak, 0.0};
  for (int c = 1; c < tree.n_clusters(tree.depth()); ++c) {
    EXPECT_TRUE(is_admissible(tree.node(tree.depth(), 0),
                              tree.node(tree.depth(), c), weak));
  }
  EXPECT_FALSE(is_admissible(tree.node(2, 1), tree.node(2, 1), weak));
}

TEST(Admissibility, StrongRequiresSeparation) {
  const AdmissibilityConfig strong{Admissibility::Strong, 1.0};
  ClusterNode a, b;
  a.level = b.level = 3;
  a.lid = 0;
  b.lid = 5;
  a.center = {0, 0, 0};
  b.center = {3, 0, 0};
  a.radius = b.radius = 1.0;
  EXPECT_TRUE(is_admissible(a, b, strong));
  b.center = {1.5, 0, 0};
  EXPECT_FALSE(is_admissible(a, b, strong));
}

class StructureTest
    : public ::testing::TestWithParam<std::pair<Admissibility, int>> {};

TEST_P(StructureTest, BlocksTileTheMatrixExactly) {
  const auto [adm, n] = GetParam();
  Rng rng(n);
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  const BlockStructure s(tree, {adm, 0.75});

  // Paint every (row, col) element covered by a stored block; each must be
  // painted exactly once.
  std::vector<int> paint(static_cast<std::size_t>(n) * n, 0);
  auto mark = [&](int level, int i, int j) {
    const ClusterNode& ri = tree.node(level, i);
    const ClusterNode& cj = tree.node(level, j);
    for (int r = ri.begin; r < ri.end; ++r)
      for (int c = cj.begin; c < cj.end; ++c)
        ++paint[static_cast<std::size_t>(r) * n + c];
  };
  for (int l = 1; l <= s.depth(); ++l)
    for (const auto& [i, j] : s.admissible_pairs(l)) mark(l, i, j);
  for (const auto& [i, j] : s.inadmissible_pairs(s.depth())) mark(s.depth(), i, j);
  for (const int p : paint) EXPECT_EQ(p, 1);
}

TEST_P(StructureTest, PairListsAreSymmetric) {
  const auto [adm, n] = GetParam();
  Rng rng(n + 1);
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  const BlockStructure s(tree, {adm, 0.75});
  for (int l = 1; l <= s.depth(); ++l) {
    for (const auto& [i, j] : s.admissible_pairs(l))
      EXPECT_TRUE(s.is_admissible_at(l, j, i));
    for (const auto& [i, j] : s.inadmissible_pairs(l))
      EXPECT_TRUE(s.is_inadmissible_at(l, j, i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StructureTest,
    ::testing::Values(std::pair{Admissibility::Weak, 128},
                      std::pair{Admissibility::Strong, 128},
                      std::pair{Admissibility::Strong, 300},
                      std::pair{Admissibility::Weak, 67}));

TEST(Structure, WeakHasNoOffDiagonalDenseBlocks) {
  Rng rng(9);
  const PointCloud pts = uniform_cube(256, rng);
  const ClusterTree tree = ClusterTree::build(pts, 16, rng);
  const BlockStructure s(tree, {Admissibility::Weak, 0.0});
  for (const auto& [i, j] : s.inadmissible_pairs(s.depth())) EXPECT_EQ(i, j);
  EXPECT_EQ(s.max_dense_row_size(), 1);
}

TEST(Structure, StrongHasBoundedDenseRow) {
  Rng rng(10);
  const PointCloud pts = uniform_cube(512, rng);
  const ClusterTree tree = ClusterTree::build(pts, 32, rng);
  const BlockStructure s(tree, {Admissibility::Strong, 0.75});
  EXPECT_GT(s.max_dense_row_size(), 1);   // 3-D: some near-field neighbors
  EXPECT_LT(s.max_dense_row_size(), 17);  // but O(1), not O(N/m)
}

TEST(LowRankAca, MatchesDenseCompression) {
  Rng rng(2);
  const PointCloud pts = uniform_cube(200, rng);
  // Two well-separated groups: a genuinely low-rank interaction.
  PointCloud rows(pts.begin(), pts.begin() + 100);
  PointCloud cols;
  for (int i = 100; i < 200; ++i)
    cols.push_back(pts[i] + Point{5.0, 0.0, 0.0});
  const LaplaceKernel k;
  const Matrix exact = kernel_block(k, rows, cols);
  for (const double tol : {1e-4, 1e-8, 1e-10}) {
    const LowRank lr = aca_compress(k, rows, cols, tol);
    EXPECT_LT(rel_error_fro(lr.to_dense(), exact), 20 * tol) << "tol=" << tol;
    EXPECT_LT(lr.rank(), 40);
  }
}

TEST(LowRankAca, RankGrowsAsToleranceShrinks) {
  Rng rng(3);
  const PointCloud rows = sphere_surface(150, rng, {0, 0, 0}, 1.0);
  const PointCloud cols = sphere_surface(150, rng, {4, 0, 0}, 1.0);
  const LaplaceKernel k;
  int prev = 0;
  for (const double tol : {1e-2, 1e-5, 1e-9}) {
    const LowRank lr = aca_compress(k, rows, cols, tol);
    EXPECT_GE(lr.rank(), prev);
    prev = lr.rank();
  }
  EXPECT_GT(prev, 3);
}

TEST(LowRankDense, CompressAndRecompress) {
  Rng rng(4);
  const Matrix u = Matrix::random(40, 6, rng);
  const Matrix v = Matrix::random(30, 6, rng);
  const Matrix a = matmul(u, v, Trans::No, Trans::Yes);
  const LowRank lr = compress_dense(a, 1e-12);
  EXPECT_EQ(lr.rank(), 6);
  EXPECT_LT(rel_error_fro(lr.to_dense(), a), 1e-10);

  // Concatenating a block with itself doubles rank; recompression restores it.
  LowRank doubled;
  doubled.u = hconcat({lr.u, lr.u});
  doubled.v = hconcat({lr.v, lr.v});
  const LowRank rec = recompress(doubled, 1e-10);
  EXPECT_EQ(rec.rank(), 6);
  Matrix twice = a;
  scale(2.0, twice);
  EXPECT_LT(rel_error_fro(rec.to_dense(), twice), 1e-9);
}

class H2BuildTest : public ::testing::TestWithParam<Admissibility> {};

TEST_P(H2BuildTest, ConstructionErrorBounded) {
  Rng rng(5);
  const PointCloud pts = uniform_cube(400, rng);
  const ClusterTree tree = ClusterTree::build(pts, 32, rng);
  const LaplaceKernel k;
  H2BuildOptions opt;
  opt.admissibility = {GetParam(), 0.75};
  opt.tol = 1e-7;
  const H2Matrix h(tree, k, opt);
  const Matrix exact = kernel_dense(k, tree.points());
  EXPECT_LT(rel_error_fro(h.to_dense(), exact), 1e-5);
  EXPECT_GT(h.max_rank_used(), 0);
  // At this small size the multi-level storage overhead dominates; real
  // compression is asserted by the complexity benches at larger N.
  EXPECT_LT(h.memory_bytes(), 2 * 8ull * 400 * 400);
}

TEST_P(H2BuildTest, MatvecMatchesDense) {
  Rng rng(6);
  const PointCloud pts = uniform_cube(300, rng);
  const ClusterTree tree = ClusterTree::build(pts, 32, rng);
  const YukawaKernel k(0.8);
  H2BuildOptions opt;
  opt.admissibility = {GetParam(), 0.75};
  opt.tol = 1e-8;
  const H2Matrix h(tree, k, opt);
  const Matrix x = Matrix::random(300, 3, rng);
  Matrix y(300, 3);
  h.matvec(x, y);
  const Matrix want = matmul(kernel_dense(k, tree.points()), x);
  EXPECT_LT(rel_error_fro(y, want), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Both, H2BuildTest,
                         ::testing::Values(Admissibility::Weak,
                                           Admissibility::Strong));

}  // namespace
}  // namespace h2
