#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "util/rng.hpp"

namespace h2 {
namespace {

/// Reference triple-loop GEMM.
Matrix naive_gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                  Trans tb, double beta, Matrix c) {
  const int m = c.rows(), n = c.cols();
  const int k = (ta == Trans::No) ? a.cols() : a.rows();
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      double s = 0.0;
      for (int l = 0; l < k; ++l) {
        const double av = (ta == Trans::No) ? a(i, l) : a(l, i);
        const double bv = (tb == Trans::No) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  return c;
}

struct GemmCase {
  int m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  const GemmCase p = GetParam();
  Rng rng(99);
  const Matrix a = (p.ta == Trans::No) ? Matrix::random(p.m, p.k, rng)
                                       : Matrix::random(p.k, p.m, rng);
  const Matrix b = (p.tb == Trans::No) ? Matrix::random(p.k, p.n, rng)
                                       : Matrix::random(p.n, p.k, rng);
  Matrix c0 = Matrix::random(p.m, p.n, rng);
  const Matrix want = naive_gemm(p.alpha, a, p.ta, b, p.tb, p.beta, c0);
  Matrix got = c0;
  gemm(p.alpha, a, p.ta, b, p.tb, p.beta, got);
  EXPECT_LT(rel_error_fro(got, want), 1e-13) << "m=" << p.m << " n=" << p.n;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GemmTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{3, 4, 5, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{3, 4, 5, Trans::No, Trans::No, -2.0, 0.5},
        GemmCase{7, 2, 9, Trans::Yes, Trans::No, 1.0, 1.0},
        GemmCase{4, 6, 3, Trans::No, Trans::Yes, 0.5, -1.0},
        GemmCase{5, 5, 5, Trans::Yes, Trans::Yes, 1.0, 0.0},
        GemmCase{16, 16, 16, Trans::No, Trans::No, 1.0, 1.0},
        GemmCase{33, 17, 25, Trans::No, Trans::No, 2.0, 0.0},
        GemmCase{33, 17, 25, Trans::Yes, Trans::No, 1.0, 0.0},
        GemmCase{33, 17, 25, Trans::No, Trans::Yes, 1.0, 0.0},
        GemmCase{33, 17, 25, Trans::Yes, Trans::Yes, 1.0, 0.0},
        GemmCase{64, 64, 1, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{1, 64, 64, Trans::Yes, Trans::No, 1.0, 0.0}));

TEST(Gemm, EmptyDimensionsAreNoOps) {
  Matrix c(3, 3);
  c(0, 0) = 5.0;
  gemm(1.0, Matrix(3, 0), Trans::No, Matrix(0, 3), Trans::No, 1.0, c);
  EXPECT_EQ(c(0, 0), 5.0);  // k = 0 with beta = 1: C unchanged
  gemm(1.0, Matrix(3, 0), Trans::No, Matrix(0, 3), Trans::No, 0.0, c);
  EXPECT_EQ(c(0, 0), 0.0);  // beta = 0 clears C even with k = 0
}

TEST(Gemm, MatmulConvenience) {
  Rng rng(5);
  const Matrix a = Matrix::random(3, 4, rng);
  const Matrix b = Matrix::random(4, 2, rng);
  const Matrix c = matmul(a, b);
  const Matrix want = naive_gemm(1.0, a, Trans::No, b, Trans::No, 0.0, Matrix(3, 2));
  EXPECT_LT(rel_error_fro(c, want), 1e-14);
}

struct TrsmCase {
  Side side;
  UpLo uplo;
  Trans trans;
  Diag diag;
  int m, n;
};

class TrsmTest : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(TrsmTest, SolvesTriangularSystem) {
  const TrsmCase p = GetParam();
  Rng rng(7);
  const int t = (p.side == Side::Left) ? p.m : p.n;
  // Well-conditioned triangular matrix: random + dominant diagonal.
  Matrix a = Matrix::random(t, t, rng);
  for (int i = 0; i < t; ++i) a(i, i) = 4.0 + i * 0.1;
  const Matrix b = Matrix::random(p.m, p.n, rng);
  Matrix x = b;
  trsm(p.side, p.uplo, p.trans, p.diag, 1.0, a, x);

  // Check op(T) X = B (Left) or X op(T) = B (Right), with T the selected
  // triangle of `a` (unit diagonal if requested).
  Matrix tri(t, t);
  for (int i = 0; i < t; ++i)
    for (int j = 0; j < t; ++j) {
      const bool in_tri = (p.uplo == UpLo::Lower) ? (i >= j) : (i <= j);
      if (i == j)
        tri(i, j) = (p.diag == Diag::Unit) ? 1.0 : a(i, j);
      else if (in_tri)
        tri(i, j) = a(i, j);
    }
  Matrix lhs(p.m, p.n);
  if (p.side == Side::Left)
    gemm(1.0, tri, p.trans, x, Trans::No, 0.0, lhs);
  else
    gemm(1.0, x, Trans::No, tri, p.trans, 0.0, lhs);
  EXPECT_LT(rel_error_fro(lhs, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmTest,
    ::testing::Values(
        TrsmCase{Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 8, 5},
        TrsmCase{Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 8, 5},
        TrsmCase{Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 8, 5},
        TrsmCase{Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 8, 5},
        TrsmCase{Side::Left, UpLo::Upper, Trans::Yes, Diag::Unit, 8, 5},
        TrsmCase{Side::Right, UpLo::Lower, Trans::No, Diag::NonUnit, 5, 8},
        TrsmCase{Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 5, 8},
        TrsmCase{Side::Right, UpLo::Upper, Trans::No, Diag::Unit, 5, 8},
        TrsmCase{Side::Right, UpLo::Lower, Trans::Yes, Diag::NonUnit, 5, 8},
        TrsmCase{Side::Right, UpLo::Upper, Trans::Yes, Diag::NonUnit, 5, 8},
        TrsmCase{Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1, 1},
        TrsmCase{Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 17, 33}));

TEST(Blas, AxpyAndScale) {
  Rng rng(8);
  const Matrix x = Matrix::random(4, 3, rng);
  Matrix y = Matrix::random(4, 3, rng);
  const Matrix y0 = y;
  axpy(2.0, x, y);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 4; ++i)
      EXPECT_NEAR(y(i, j), y0(i, j) + 2.0 * x(i, j), 1e-14);
  scale(0.5, y);
  EXPECT_NEAR(y(0, 0), 0.5 * (y0(0, 0) + 2.0 * x(0, 0)), 1e-14);
}

TEST(Blas, AddIdentity) {
  Matrix a(3, 3);
  add_identity(a, 2.5);
  EXPECT_EQ(a(0, 0), 2.5);
  EXPECT_EQ(a(2, 2), 2.5);
  EXPECT_EQ(a(0, 1), 0.0);
}

}  // namespace
}  // namespace h2
