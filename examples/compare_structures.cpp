/// Side-by-side comparison of the low-rank structures of the paper's
/// Table I on one problem: BLR (flat, independent basis), BLR^2 (flat,
/// shared basis = depth-1 ULV), HSS (hierarchical, weak admissibility) and
/// H^2 (hierarchical, strong admissibility) — time, flops, rank, accuracy.
#include <cstdio>
#include <string>

#include "blr/blr_matrix.hpp"
#include "core/ulv_factorization.hpp"
#include "hodlr/hodlr.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/assembly.hpp"
#include "util/env.hpp"
#include "util/flops.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  std::string name;
  double seconds;
  double flops;
  int rank;
  double residual;
};

Row run_ulv(const std::string& name, const h2::ClusterTree& tree,
            const h2::Kernel& kernel, h2::Admissibility adm, double tol,
            int leaf_override_depth) {
  using namespace h2;
  H2BuildOptions hopt;
  hopt.admissibility = {adm, 0.75};
  hopt.tol = 1e-2 * tol;
  const H2Matrix a(tree, kernel, hopt);
  UlvOptions uopt;
  uopt.tol = tol;
  flops::reset();
  Timer t;
  const UlvFactorization f(a, uopt);
  const double secs = t.seconds();
  const double fl = static_cast<double>(flops::total());

  const int n = tree.n_points();
  Rng rng(3);
  const Matrix b = Matrix::random(n, 1, rng);
  Matrix x = b;
  f.solve(x);
  Matrix ax(n, 1);
  kernel_matvec(kernel, tree.points(), x, ax);
  (void)leaf_override_depth;
  return {name, secs, fl, f.stats().max_rank, rel_error_fro(ax, b)};
}

}  // namespace

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 4096));
  const double tol = env::get_double("H2_TOL", 1e-8);
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));

  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(pts, leaf, rng);
  // Depth-1 tree: the flat BLR^2 structure of paper Sec. II.B.
  const ClusterTree flat = ClusterTree::build(pts, (n + 1) / 2, rng);
  const LaplaceKernel kernel(1e-2);

  std::vector<Row> rows;

  {  // BLR (independent bases, flat) via the LORAPO-substitute Cholesky.
    BlrOptions o;
    o.tol = tol;
    BlrMatrix blr(tree, kernel, o);
    flops::reset();
    Timer t;
    blr.factorize();
    const double secs = t.seconds();
    const double fl = static_cast<double>(flops::total());
    const Matrix b = Matrix::random(n, 1, rng);
    Matrix x = b;
    blr.solve(x);
    Matrix ax(n, 1);
    kernel_matvec(kernel, tree.points(), x, ax);
    rows.push_back({"BLR  (flat, indep. basis)", secs, fl, blr.max_rank_used(),
                    rel_error_fro(ax, b)});
  }
  {  // HODLR (independent bases, weak admissibility, recursive SMW).
    flops::reset();
    Timer t;
    const HodlrMatrix hodlr(tree, kernel, {tol, -1});
    const double secs = t.seconds();
    const double fl = static_cast<double>(flops::total());
    const Matrix b = Matrix::random(n, 1, rng);
    Matrix x = b;
    hodlr.solve(x);
    Matrix ax(n, 1);
    kernel_matvec(kernel, tree.points(), x, ax);
    rows.push_back({"HODLR (hier., indep. basis)", secs, fl,
                    hodlr.max_rank_used(), rel_error_fro(ax, b)});
  }
  rows.push_back(run_ulv("BLR2 (flat, shared basis)", flat, kernel,
                         Admissibility::Weak, tol, 1));
  rows.push_back(
      run_ulv("HSS  (hier., weak adm.)", tree, kernel, Admissibility::Weak, tol, 0));
  rows.push_back(
      run_ulv("H2   (hier., strong adm.)", tree, kernel, Admissibility::Strong, tol, 0));

  Table table({"structure", "factor time (s)", "factor flops", "max rank",
               "residual"});
  for (const auto& r : rows)
    table.add_row({r.name, Table::fmt(r.seconds, 3), Table::fmt_sci(r.flops, 2),
                   std::to_string(r.rank), Table::fmt_sci(r.residual, 2)});
  std::printf("Table-I structures on Laplace cube, N=%d, tol=%.0e\n\n%s\n", n,
              tol, table.markdown().c_str());
  std::printf(
      "Expected shape: HSS ranks grow with N in 3-D, H2 ranks stay bounded;\n"
      "BLR is cheap at small N but scales O(N^2) vs O(N) (see bench_table1).\n");
  return 0;
}
