/// Side-by-side comparison of the low-rank structures of the paper's
/// Table I on one problem, all through the h2::Solver facade's structure
/// switch: BLR (flat, independent basis), HODLR (hierarchical, independent
/// basis), BLR^2 (flat, shared basis = depth-1 ULV), HSS (hierarchical, weak
/// admissibility) and H^2 (hierarchical, strong admissibility) — time,
/// flops, rank, accuracy.
#include <cstdio>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "kernels/assembly.hpp"
#include "linalg/norms.hpp"
#include "util/env.hpp"
#include "util/flops.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Row {
  std::string name;
  double seconds;
  double flops;
  int rank;
  double residual;
};

Row run(const std::string& name, const h2::PointCloud& pts,
        const h2::Kernel& kernel, const h2::SolverOptions& opt) {
  using namespace h2;
  // Solver::build is the whole pipeline (clustering + assembly +
  // factorization), so the table reports it as such — bench_table1 is the
  // factorize-only complexity measurement.
  flops::reset();
  Timer t;
  const Solver solver = Solver::build(pts, kernel, opt);
  const double secs = t.seconds();
  const double fl = static_cast<double>(flops::total());

  const int n = solver.n();
  Rng rng(3);
  const Matrix b = Matrix::random(n, 1, rng);
  const Matrix x = solver.solve(b);
  Matrix ax(n, 1);
  kernel_matvec(kernel, pts, x, ax);
  return {name, secs, fl, solver.max_rank_used(), rel_error_fro(ax, b)};
}

}  // namespace

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 4096));
  const double tol = env::get_double("H2_TOL", 1e-8);
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));

  Rng rng(1);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-2);
  const SolverOptions base = SolverOptions{}.with_tol(tol).with_leaf_size(leaf);

  std::vector<Row> rows;
  rows.push_back(run("BLR  (flat, indep. basis)", pts, kernel,
                     SolverOptions(base).with_structure(SolverStructure::BLR)));
  rows.push_back(
      run("HODLR (hier., indep. basis)", pts, kernel,
          SolverOptions(base).with_structure(SolverStructure::HODLR)));
  // Depth-1 tree: the flat BLR^2 structure of paper Sec. II.B.
  rows.push_back(run("BLR2 (flat, shared basis)", pts, kernel,
                     SolverOptions(base)
                         .with_structure(SolverStructure::HSS)
                         .with_leaf_size((n + 1) / 2)));
  rows.push_back(run("HSS  (hier., weak adm.)", pts, kernel,
                     SolverOptions(base).with_structure(SolverStructure::HSS)));
  rows.push_back(run("H2   (hier., strong adm.)", pts, kernel,
                     SolverOptions(base).with_structure(SolverStructure::H2)));

  Table table({"structure", "build+factor (s)", "build+factor flops",
               "max rank", "residual"});
  for (const auto& r : rows)
    table.add_row({r.name, Table::fmt(r.seconds, 3), Table::fmt_sci(r.flops, 2),
                   std::to_string(r.rank), Table::fmt_sci(r.residual, 2)});
  std::printf("Table-I structures on Laplace cube, N=%d, tol=%.0e\n\n%s\n", n,
              tol, table.markdown().c_str());
  std::printf(
      "Expected shape: HSS ranks grow with N in 3-D, H2 ranks stay bounded;\n"
      "BLR is cheap at small N but scales O(N^2) vs O(N) (see bench_table1).\n");
  return 0;
}
