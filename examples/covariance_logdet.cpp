/// Gaussian-process log-likelihood for a large spatial dataset — the
/// "determinant of covariance matrices in statistics" application the paper's
/// introduction motivates. One h2::Solver gives both the solve (for the
/// quadratic form) and log|det| in O(N); observations, solution, and the
/// residual check all live in the caller's POINT ordering.
#include <cmath>
#include <cstdio>

#include "api/solver.hpp"
#include "kernels/assembly.hpp"
#include "linalg/linalg.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 8192));
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));
  const double tol = env::get_double("H2_TOL", 1e-8);

  // Spatial sites in a unit cube; Matern-3/2 covariance with a nugget.
  // Correlation length and nugget are env-tunable: longer correlations make
  // K smoother but worse conditioned (the nugget bounds the conditioning,
  // and with it the achievable residual).
  Rng rng(11);
  const PointCloud sites = uniform_cube(n, rng);
  const Matern32Kernel cov(env::get_double("H2_GP_LENGTH", 0.25),
                           env::get_double("H2_GP_NUGGET", 1e-2));

  Timer t_build;
  const Solver gp = Solver::build(
      sites, cov, SolverOptions{}.with_tol(tol).with_leaf_size(leaf));
  const double build_s = t_build.seconds();

  // Synthetic observations y; evaluate the GP log-likelihood
  //   -1/2 (y^T K^-1 y + log det K + n log 2 pi).
  const Matrix y = Matrix::random_normal(n, 1, rng);
  const Matrix alpha = gp.solve(y);
  double quad = 0.0;
  for (int i = 0; i < n; ++i) quad += y(i, 0) * alpha(i, 0);
  const double logdet = gp.logabsdet();
  constexpr double kLog2Pi = 1.8378770664093454836;
  const double loglik = -0.5 * (quad + logdet + n * kLog2Pi);

  Matrix ka(n, 1);
  kernel_matvec(cov, sites, alpha, ka);

  std::printf("sites              : %d\n", n);
  std::printf("build+factorize    : %.3f s (flops %.3e)\n", build_s,
              gp.ulv_stats() != nullptr
                  ? static_cast<double>(gp.ulv_stats()->factor_flops)
                  : 0.0);
  std::printf("relative residual |K alpha - y|/|y| = %.3e\n",
              rel_error_fro(ka, y));
  std::printf("log det K          : %.6f\n", logdet);
  std::printf("y^T K^-1 y         : %.6f\n", quad);
  std::printf("GP log-likelihood  : %.6f\n", loglik);

  // Small-N cross-check against a dense Cholesky when feasible.
  if (n <= 2048) {
    Matrix kd = kernel_dense(cov, sites);
    std::vector<int> piv;
    getrf(kd, piv);
    std::printf("dense logdet check : %.6f (|diff| %.2e)\n",
                lu_logabsdet(kd, piv),
                std::fabs(lu_logabsdet(kd, piv) - logdet));
  }
  return 0;
}
