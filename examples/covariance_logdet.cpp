/// Gaussian-process log-likelihood for a large spatial dataset — the
/// "determinant of covariance matrices in statistics" application the paper's
/// introduction motivates. The ULV factorization provides both the solve
/// (for the quadratic form) and log|det| in O(N).
#include <cmath>
#include <cstdio>

#include "core/ulv_factorization.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/assembly.hpp"
#include "kernels/kernel.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 8192));
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));
  const double tol = env::get_double("H2_TOL", 1e-8);

  // Spatial sites in a unit cube; Matern-3/2 covariance with a nugget.
  Rng rng(11);
  const PointCloud sites = uniform_cube(n, rng);
  const ClusterTree tree = ClusterTree::build(sites, leaf, rng);
  const Matern32Kernel cov(0.25, 1e-2);

  H2BuildOptions hopt;
  hopt.admissibility = {Admissibility::Strong, 0.75};
  hopt.tol = 1e-2 * tol;
  const H2Matrix k(tree, cov, hopt);

  UlvOptions uopt;
  uopt.tol = tol;
  Timer t_factor;
  const UlvFactorization chol(k, uopt);
  const double factor_s = t_factor.seconds();

  // Synthetic observations y; evaluate the GP log-likelihood
  //   -1/2 (y^T K^-1 y + log det K + n log 2 pi).
  Matrix y = Matrix::random_normal(n, 1, rng);
  Matrix alpha = y;
  chol.solve(alpha);
  double quad = 0.0;
  for (int i = 0; i < n; ++i) quad += y(i, 0) * alpha(i, 0);
  const double logdet = chol.logabsdet();
  constexpr double kLog2Pi = 1.8378770664093454836;
  const double loglik = -0.5 * (quad + logdet + n * kLog2Pi);

  std::printf("sites              : %d\n", n);
  std::printf("factorization time : %.3f s (flops %.3e)\n", factor_s,
              static_cast<double>(chol.stats().factor_flops));
  std::printf("log det K          : %.6f\n", logdet);
  std::printf("y^T K^-1 y         : %.6f\n", quad);
  std::printf("GP log-likelihood  : %.6f\n", loglik);

  // Small-N cross-check against a dense Cholesky when feasible.
  if (n <= 2048) {
    Matrix kd = kernel_dense(cov, tree.points());
    std::vector<int> piv;
    getrf(kd, piv);
    std::printf("dense logdet check : %.6f (|diff| %.2e)\n",
                lu_logabsdet(kd, piv),
                std::fabs(lu_logabsdet(kd, piv) - logdet));
  }
  return 0;
}
