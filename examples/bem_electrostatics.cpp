/// Implicit-solvent bio-molecular electrostatics (paper Sec. V): a
/// collocation boundary-element system on the surface of a pseudo-hemoglobin
/// (union-of-spheres molecule, Fig. 14) — or a crowded environment of many
/// molecules (Fig. 15) — with the Yukawa / screened-Coulomb kernel.
/// Solves for surface charges that reproduce a prescribed potential, all in
/// the caller's point ordering through the h2::Solver facade.
#include <cstdio>

#include "api/solver.hpp"
#include "kernels/assembly.hpp"
#include "linalg/norms.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 8192));
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));
  const int n_molecules = static_cast<int>(env::get_int("H2_MOLECULES", 8));
  const double tol = env::get_double("H2_TOL", 1e-8);

  Rng rng(7);
  const PointCloud pts = n_molecules > 1 ? crowded_molecules(n, rng, n_molecules)
                                         : molecule_surface(n, rng);
  std::printf("BEM collocation points: %d on %d molecule(s), diameter %.2f\n",
              n, n_molecules, cloud_diameter(pts));

  // k-means-based clustering handles the complex surface geometry (the paper
  // found this "works much better than space-filling curves" here) — the
  // facade's default partitioner.
  const double diam = cloud_diameter(pts);
  const YukawaKernel kernel(2.0 / diam, 1e-2 * diam);
  Timer t_build;
  const Solver bem = Solver::build(
      pts, kernel, SolverOptions{}.with_tol(tol).with_leaf_size(leaf));
  const double build_s = t_build.seconds();

  // Prescribed boundary potential: unit potential on the surface (the
  // classic capacitance-style problem); solve G q = phi for charges q.
  Matrix phi(n, 1);
  for (int i = 0; i < n; ++i) phi(i, 0) = 1.0;
  Timer t_solve;
  const Matrix q = bem.solve(phi);
  const double solve_s = t_solve.seconds();

  Matrix gq(n, 1);
  kernel_matvec(kernel, pts, q, gq);
  double total_charge = 0.0;
  for (int i = 0; i < n; ++i) total_charge += q(i, 0);

  std::printf("build+factorize %.3f s | solve %.3f s\n", build_s, solve_s);
  std::printf("relative residual |Gq-phi|/|phi| = %.3e\n",
              rel_error_fro(gq, phi));
  std::printf("total induced charge    = %.6f\n", total_charge);
  std::printf("max skeleton rank       = %d\n", bem.max_rank_used());
  return 0;
}
