/// Implicit-solvent bio-molecular electrostatics (paper Sec. V): a
/// collocation boundary-element system on the surface of a pseudo-hemoglobin
/// (union-of-spheres molecule, Fig. 14) — or a crowded environment of many
/// molecules (Fig. 15) — with the Yukawa / screened-Coulomb kernel.
/// Solves for surface charges that reproduce a prescribed potential.
#include <cstdio>
#include <string>

#include "core/ulv_factorization.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/assembly.hpp"
#include "kernels/kernel.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 8192));
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));
  const int n_molecules = static_cast<int>(env::get_int("H2_MOLECULES", 8));
  const double tol = env::get_double("H2_TOL", 1e-8);

  Rng rng(7);
  const PointCloud pts = n_molecules > 1 ? crowded_molecules(n, rng, n_molecules)
                                         : molecule_surface(n, rng);
  std::printf("BEM collocation points: %d on %d molecule(s), diameter %.2f\n",
              n, n_molecules, cloud_diameter(pts));

  // k-means-based clustering handles the complex surface geometry (the paper
  // found this "works much better than space-filling curves" here).
  const ClusterTree tree = ClusterTree::build(pts, leaf, rng);
  const double diam = cloud_diameter(pts);
  const YukawaKernel kernel(2.0 / diam, 1e-2 * diam);

  H2BuildOptions hopt;
  hopt.admissibility = {Admissibility::Strong, 0.75};
  hopt.tol = 1e-2 * tol;
  Timer t_build;
  const H2Matrix a(tree, kernel, hopt);
  const double build_s = t_build.seconds();

  UlvOptions uopt;
  uopt.tol = tol;
  Timer t_factor;
  const UlvFactorization lu(a, uopt);
  const double factor_s = t_factor.seconds();

  // Prescribed boundary potential: unit potential on the surface (the
  // classic capacitance-style problem); solve G q = phi for charges q.
  Matrix phi(n, 1);
  for (int i = 0; i < n; ++i) phi(i, 0) = 1.0;
  Matrix q = phi;
  Timer t_solve;
  lu.solve(q);
  const double solve_s = t_solve.seconds();

  Matrix gq(n, 1);
  kernel_matvec(kernel, tree.points(), q, gq);
  double total_charge = 0.0;
  for (int i = 0; i < n; ++i) total_charge += q(i, 0);

  std::printf("build %.3f s | factorize %.3f s | solve %.3f s\n", build_s,
              factor_s, solve_s);
  std::printf("residual |Gq-phi|/|phi| = %.3e\n", rel_error_fro(gq, phi));
  std::printf("total induced charge    = %.6f\n", total_charge);
  std::printf("max skeleton rank       = %d\n", lu.stats().max_rank);
  return 0;
}
