/// Quickstart: build an H^2 representation of a 3-D Laplace kernel matrix,
/// factorize it with the dependency-free ULV solver, and check the solution
/// against the right-hand side — the minimal end-to-end use of the library
/// (paper Sec. IV setup).
#include <cstdio>

#include "core/ulv_factorization.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "kernels/assembly.hpp"
#include "kernels/kernel.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 4096));
  const int leaf = static_cast<int>(env::get_int("H2_LEAF", 128));
  const double tol = env::get_double("H2_TOL", 1e-8);

  // 1. Geometry: N unit charges uniformly distributed in the unit cube.
  Rng rng(42);
  const PointCloud pts = uniform_cube(n, rng);

  // 2. Cluster tree (recursive balanced 2-means) + Laplace Green's function.
  const ClusterTree tree = ClusterTree::build(pts, leaf, rng);
  const LaplaceKernel kernel(1e-2);

  // 3. H^2 construction: strong admissibility, ACA-compressed far field.
  const int max_rank = static_cast<int>(env::get_int("H2_MAX_RANK", 120));
  H2BuildOptions hopt;
  hopt.admissibility = {Admissibility::Strong, env::get_double("H2_ETA", 0.75)};
  hopt.tol = 1e-2 * tol;
  hopt.max_rank = max_rank;
  Timer t_build;
  const H2Matrix a(tree, kernel, hopt);
  std::printf("build     : %7.3f s  (max ACA rank %d)\n", t_build.seconds(),
              a.max_rank_used());

  // 4. Dependency-free ULV factorization (the paper's contribution).
  UlvOptions uopt;
  uopt.tol = tol;
  uopt.max_rank = max_rank;
  Timer t_factor;
  const UlvFactorization lu(a, uopt);
  std::printf("factorize : %7.3f s  (setup %.3f s, max skeleton rank %d)\n",
              t_factor.seconds(), lu.stats().setup_seconds,
              lu.stats().max_rank);

  // 5. Solve A x = b and report the residual via a streamed dense matvec.
  Matrix b = Matrix::random(n, 1, rng);
  Matrix x = b;
  Timer t_solve;
  lu.solve(x);
  std::printf("solve     : %7.3f s\n", t_solve.seconds());

  Matrix ax(n, 1);
  kernel_matvec(kernel, tree.points(), x, ax);
  std::printf("relative residual |Ax-b|/|b| = %.3e\n", rel_error_fro(ax, b));
  std::printf("log|det A| = %.6f\n", lu.logabsdet());
  return 0;
}
