/// Quickstart: solve a 3-D Laplace kernel system with the dependency-free
/// ULV direct solver through the h2::Solver facade — the minimal end-to-end
/// use of the library (paper Sec. IV setup). Everything stays in the
/// caller's POINT ordering: the facade handles clustering, assembly,
/// factorization, and the tree permutation internally.
#include <cstdio>

#include "api/solver.hpp"
#include "kernels/assembly.hpp"
#include "linalg/norms.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

int main() {
  using namespace h2;
  const int n = static_cast<int>(env::get_int("H2_N", 4096));
  const double tol = env::get_double("H2_TOL", 1e-8);

  // The five lines that matter: points + kernel in, solution out.
  Rng rng(42);
  const PointCloud pts = uniform_cube(n, rng);
  const LaplaceKernel kernel(1e-2);
  Timer t_build;
  const Solver solver = Solver::build(
      pts, kernel,
      SolverOptions{}
          .with_tol(tol)
          .with_leaf_size(static_cast<int>(env::get_int("H2_LEAF", 128)))
          .with_max_rank(static_cast<int>(env::get_int("H2_MAX_RANK", 120)))
          .with_eta(env::get_double("H2_ETA", 0.75)));
  const double build_s = t_build.seconds();
  const Matrix b = Matrix::random(n, 1, rng);
  Timer t_solve;
  const Matrix x = solver.solve(b);
  const double solve_s = t_solve.seconds();

  // Residual directly on the original cloud — x is in point ordering.
  Matrix ax(n, 1);
  kernel_matvec(kernel, pts, x, ax);
  std::printf("build+factorize : %7.3f s  (max skeleton rank %d)\n", build_s,
              solver.max_rank_used());
  std::printf("solve           : %7.3f s\n", solve_s);
  std::printf("relative residual |Ax-b|/|b| = %.3e\n", rel_error_fro(ax, b));
  std::printf("log|det A| = %.6f\n", solver.logabsdet());
  return 0;
}
