#pragma once

#include "core/ulv_options.hpp"
#include "dist/schedule_sim.hpp"
#include "hmatrix/block_structure.hpp"

namespace h2 {

/// Performance model of the dependency-free ULV factorization on p workers,
/// built from one *measured* serial run (`UlvOptions::record_tasks`).
///
/// Mapping to the paper's figures:
///  - Fig. 11 (shared-memory strong scaling): `shared_memory_time(p)`
///    replays the recorded per-task durations through the ULV's true
///    dependency structure — within a phase of a level (fill, basis,
///    project, eliminate, merge) every block row is independent (the
///    paper's Sec. III contribution), while consecutive phases are
///    separated by a barrier. No task-runtime overhead is charged: the
///    static structure needs no dynamic dependency tracking.
///  - Fig. 12 (leaf size): smaller leaves mean more block rows per phase,
///    i.e. wider phase groups in the replayed DAG.
///  - Fig. 16 (distributed strong scaling): `time(p, comm)` adds the
///    process-tree communication of the paper's distributed design — after
///    each level's elimination the surviving skeleton blocks are
///    all-gathered inside split communicators before the merged parent
///    level proceeds (redundant upper levels). Each level transition costs
///    ceil(log2(q)) alpha-latencies plus beta times the level's skeleton
///    payload, where q = min(p, block rows at the level): above the level
///    where p exceeds the cluster count the work is replicated and the
///    communicator stops growing.
///
/// Aggregate-initializable: `UlvDistModel{&f.stats(), &h.structure()}`.
struct UlvDistModel {
  const UlvStats* stats = nullptr;            ///< must outlive the model
  const BlockStructure* structure = nullptr;  ///< must outlive the model

  /// The recorded task DAG as simulator input. When the factorization ran
  /// under the TaskDag executor (UlvStats::dag/exec populated), this is the
  /// REAL executed DAG — measured durations on the true edge structure, so
  /// simulated schedules respect (only) the actual dependencies and may
  /// overlap phases and levels. Otherwise it falls back to the flat
  /// UlvTaskRecord log: one task per recorded block task, consecutive
  /// (level, kind) runs forming independent phase groups separated by
  /// zero-duration barrier tasks.
  [[nodiscard]] ScheduleInput replay_input() const;

  /// Predicted factorization time on p shared-memory cores (no
  /// communication, no runtime overhead) — the Fig. 11 "OUR CODE" curve.
  [[nodiscard]] double shared_memory_time(int p) const;

  /// Predicted factorization time on p distributed ranks: the replayed
  /// compute schedule plus the per-level split-communicator Allgathers —
  /// the Fig. 16 ULV curve. With p = 1 no communication is charged.
  [[nodiscard]] double time(int p, const CommModel& comm) const;

  /// Communication seconds charged by time(p, comm) on top of the compute
  /// schedule (0 for p <= 1).
  [[nodiscard]] double comm_seconds(int p, const CommModel& comm) const;

  /// Bytes of skeleton data surviving `level`'s elimination: for each
  /// cluster, its rank^2 skeleton block replicated across the diagonal,
  /// dense-neighbor, and admissible couplings that the merge re-assembles.
  [[nodiscard]] double level_bytes(int level) const;
};

}  // namespace h2
