#pragma once

#include "core/ulv_options.hpp"
#include "dist/rank_map.hpp"
#include "dist/schedule_sim.hpp"
#include "hmatrix/block_structure.hpp"

namespace h2 {

/// How UlvDistModel::time charges communication on p ranks.
enum class CommCharging {
  /// Charge the alpha-beta CommModel on every CROSS-RANK DAG EDGE of the
  /// recorded factorization DAG (message size = the producer task's recorded
  /// block payload), with every task pinned to its RankMap owner — the same
  /// subtree-partition process tree the paper distributes over. This is the
  /// default: one mechanism (the recorded DAG + the rank map) behind both
  /// the shared-memory Fig. 11 replay and the distributed Fig. 16 curve.
  EdgeCharged,
  /// The pre-rank-map closed-form term: per-level split-communicator
  /// Allgather costs (ceil(log2 q) latencies + beta times the surviving
  /// skeleton payload) added on top of the free-placement compute schedule.
  /// Kept as the ablation — it knows level sizes but not which edges
  /// actually cross ranks.
  Analytic,
};

/// Performance model of the dependency-free ULV factorization on p workers,
/// built from one *measured* serial run (`UlvOptions::record_tasks`).
///
/// Mapping to the paper's figures:
///  - Fig. 11 (shared-memory strong scaling): `shared_memory_time(p)`
///    replays the recorded per-task durations through the ULV's true
///    dependency structure — within a phase of a level (fill, basis,
///    project, eliminate, merge) every block row is independent (the
///    paper's Sec. III contribution), while consecutive phases are
///    separated by a barrier. No task-runtime overhead is charged: the
///    static structure needs no dynamic dependency tracking.
///  - Fig. 12 (leaf size): smaller leaves mean more block rows per phase,
///    i.e. wider phase groups in the replayed DAG.
///  - Fig. 16 (distributed strong scaling): `time(p, comm)` replays the SAME
///    recorded DAG with every task pinned to its RankMap rank (subtree
///    partition, replicated top levels) and the alpha-beta CommModel charged
///    on every edge whose endpoints live on different ranks
///    (CommCharging::EdgeCharged, the default); the pre-rank-map analytic
///    per-level Allgather term survives as CommCharging::Analytic.
///
/// Aggregate-initializable: `UlvDistModel{&f.stats(), &h.structure()}`.
struct UlvDistModel {
  const UlvStats* stats = nullptr;            ///< must outlive the model
  const BlockStructure* structure = nullptr;  ///< must outlive the model

  /// The recorded task DAG as simulator input. When the factorization ran
  /// under the TaskDag executor (UlvStats::dag/exec populated), this is the
  /// REAL executed DAG — measured durations on the true edge structure, so
  /// simulated schedules respect (only) the actual dependencies and may
  /// overlap phases and levels. Otherwise it falls back to the flat
  /// UlvTaskRecord log: one task per recorded block task, consecutive
  /// (level, kind) runs forming independent phase groups separated by
  /// zero-duration barrier tasks.
  [[nodiscard]] ScheduleInput replay_input() const;

  /// replay_input() made rank-aware for p ranks: every task pinned to its
  /// RankMap owner (ScheduleInput::owner — the same pinning contract every
  /// simulator consumer uses) and carrying the block payload the
  /// factorization recorded per task (ScheduleInput::out_bytes), so
  /// list_schedule charges the CommModel on exactly the cross-rank edges.
  /// Requires the real recorded DAG; with only the flat fallback log (no
  /// per-task owner/level/payload) the input comes back unpinned, equal to
  /// replay_input().
  [[nodiscard]] ScheduleInput distributed_input(int p) const;

  /// Whether a real recorded DAG backs this model (TaskDag executor with
  /// record_tasks). EdgeCharged charging needs this AND a non-null
  /// `structure` (the rank map reads the tree depth from it); when either
  /// is missing, time() silently falls back to Analytic and
  /// distributed_input() comes back unpinned.
  [[nodiscard]] bool has_recorded_dag() const;

  /// Predicted factorization time on p shared-memory cores (no
  /// communication, no runtime overhead) — the Fig. 11 "OUR CODE" curve.
  [[nodiscard]] double shared_memory_time(int p) const;

  /// Predicted factorization time on p distributed ranks — the Fig. 16 ULV
  /// curve. EdgeCharged (default) replays the rank-pinned DAG through
  /// list_schedule with the alpha-beta model on cross-rank edges; Analytic
  /// adds the closed-form per-level Allgather term to the free-placement
  /// schedule instead. With p = 1 neither mode charges any communication,
  /// and EdgeCharged equals shared_memory_time(1) exactly (the CI sanity
  /// gate). Without a recorded DAG, EdgeCharged falls back to Analytic.
  [[nodiscard]] double time(int p, const CommModel& comm,
                            CommCharging charging =
                                CommCharging::EdgeCharged) const;

  /// Communication seconds charged by the ANALYTIC mode on top of the
  /// compute schedule (0 for p <= 1).
  [[nodiscard]] double comm_seconds(int p, const CommModel& comm) const;

  /// Bytes of skeleton data surviving `level`'s elimination: for each
  /// cluster, its rank^2 skeleton block replicated across the diagonal,
  /// dense-neighbor, and admissible couplings that the merge re-assembles.
  /// (The Analytic mode's per-level Allgather payload.)
  [[nodiscard]] double level_bytes(int level) const;
};

}  // namespace h2
