#include "dist/rank_map.hpp"

#include <stdexcept>
#include <string>

namespace h2 {

RankMap::RankMap(int depth, int n_ranks) : depth_(depth), n_ranks_(n_ranks) {
  if (depth < 0)
    throw std::invalid_argument("RankMap: depth must be >= 0 (got " +
                                std::to_string(depth) + ")");
  if (n_ranks < 1)
    throw std::invalid_argument("RankMap: need at least one rank (got " +
                                std::to_string(n_ranks) + ")");
  // Shallowest level with >= n_ranks clusters, clamped to the leaf level
  // (beyond that there is nothing left to split — surplus ranks idle).
  int level = 0;
  while (level < depth && (1 << level) < n_ranks) ++level;
  split_level_ = level;
}

int RankMap::rank_of(int level, int lid) const {
  if (level < 0 || level > depth_ || lid < 0 || lid >= (1 << level))
    throw std::invalid_argument("RankMap: cluster (" + std::to_string(level) +
                                ", " + std::to_string(lid) +
                                ") is outside the tree");
  if (level < split_level_) return 0;  // replicated top of the process tree
  const long subtree = lid >> (level - split_level_);
  const long n_subtrees = 1L << split_level_;
  // Contiguous block deal: subtrees [r * S / P, (r+1) * S / P) go to rank r.
  // With S >= P every rank gets at least one subtree; with S < P (more ranks
  // than leaves) the map hits only every (P / S)-th rank and the rest idle.
  return static_cast<int>(subtree * n_ranks_ / n_subtrees);
}

std::vector<int> RankMap::subtree_owners() const {
  std::vector<int> owners(static_cast<std::size_t>(1) << split_level_);
  for (int lid = 0; lid < static_cast<int>(owners.size()); ++lid)
    owners[static_cast<std::size_t>(lid)] = rank_of(split_level_, lid);
  return owners;
}

std::vector<int> RankMap::task_ranks(const DagRecord& rec) const {
  std::vector<int> ranks(static_cast<std::size_t>(rec.n_tasks()), -1);
  for (int t = 0; t < rec.n_tasks(); ++t) {
    const TaskMeta& m = rec.meta[static_cast<std::size_t>(t)];
    if (m.level < 0) continue;  // untagged: leave the scheduler free
    // Clamp levels beyond the recorded tree (defensive; factorization DAGs
    // only carry levels in [0, depth]).
    const int level = m.level > depth_ ? depth_ : m.level;
    const int lid = m.owner < 0 ? 0 : m.owner;
    ranks[static_cast<std::size_t>(t)] =
        lid < (1 << level) ? rank_of(level, lid) : 0;
  }
  return ranks;
}

}  // namespace h2
