#include "dist/schedule_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "runtime/task_graph.hpp"

namespace h2 {

namespace {

/// successors[i] for inputs whose successor list is shorter than the task
/// count (trailing tasks without successors need no explicit entry).
const std::vector<int>& successors_of(const ScheduleInput& in, int i) {
  static const std::vector<int> kNone;
  return static_cast<std::size_t>(i) < in.successors.size()
             ? in.successors[static_cast<std::size_t>(i)]
             : kNone;
}

void validate(const ScheduleInput& in) {
  const int n = static_cast<int>(in.durations.size());
  if (static_cast<int>(in.successors.size()) > n)
    throw std::invalid_argument("schedule_sim: more successor lists than tasks");
  for (int i = 0; i < n; ++i)
    for (const int s : successors_of(in, i))
      if (s < 0 || s >= n)
        throw std::invalid_argument("schedule_sim: successor index out of range");
}

}  // namespace

std::vector<double> bottom_levels(const ScheduleInput& in) {
  // Delegates to the runtime-layer primitive so the simulator and the real
  // executor (TaskGraph::set_critical_path_priorities) share one policy.
  validate(in);
  return bottom_levels(static_cast<int>(in.durations.size()), in.successors,
                       in.durations, in.per_task_overhead);
}

ScheduleResult list_schedule(const ScheduleInput& in, int workers,
                             const CommModel& comm) {
  if (workers < 1)
    throw std::invalid_argument("schedule_sim: need at least one worker");
  validate(in);
  const int n = static_cast<int>(in.durations.size());

  ScheduleResult res;
  res.start.assign(n, 0.0);
  res.finish.assign(n, 0.0);
  res.worker.assign(n, -1);
  for (const double d : in.durations) res.total_work += d;
  if (n == 0) return res;

  const std::vector<double> priority = bottom_levels(in);

  std::vector<std::vector<int>> preds(n);
  std::vector<int> n_unscheduled_preds(n, 0);
  for (int i = 0; i < n; ++i)
    for (const int s : successors_of(in, i)) {
      preds[s].push_back(i);
      ++n_unscheduled_preds[s];
    }

  // Ready tasks by (bottom level desc, id asc) — ties broken by submission
  // order so replayed traces keep their recorded order.
  const auto higher = [&](int a, int b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a > b;
  };
  std::priority_queue<int, std::vector<int>, decltype(higher)> ready(higher);
  for (int i = 0; i < n; ++i)
    if (n_unscheduled_preds[i] == 0) ready.push(i);

  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);
  const auto bytes_of = [&](int i) {
    return static_cast<std::size_t>(i) < in.out_bytes.size()
               ? in.out_bytes[static_cast<std::size_t>(i)]
               : 0.0;
  };
  // Earliest start of task i on worker w: the worker must be free and every
  // input must have arrived (cross-worker inputs pay the alpha-beta cost —
  // unless i is a control sink, whose edges synchronize without moving data).
  const auto is_control_sink = [&](int i) {
    return static_cast<std::size_t>(i) < in.control_sink.size() &&
           in.control_sink[static_cast<std::size_t>(i)] != 0;
  };
  const auto earliest_start = [&](int i, int w) {
    double t = worker_free[static_cast<std::size_t>(w)];
    const bool sink = is_control_sink(i);
    for (const int q : preds[i]) {
      const double arrival =
          res.finish[q] +
          (sink || res.worker[q] == w ? 0.0 : comm.cost(bytes_of(q)));
      t = std::max(t, arrival);
    }
    return t;
  };

  while (!ready.empty()) {
    const int i = ready.top();
    ready.pop();
    int w = -1;
    if (static_cast<std::size_t>(i) < in.owner.size() && in.owner[i] >= 0) {
      // Pinned: out-of-range owners wrap around (block-cyclic placement).
      w = in.owner[i] % workers;
    } else {
      double best = 0.0;
      for (int c = 0; c < workers; ++c) {
        const double t = earliest_start(i, c);
        if (w < 0 || t < best) {
          w = c;
          best = t;
        }
      }
    }
    res.worker[i] = w;
    res.start[i] = earliest_start(i, w);
    res.finish[i] = res.start[i] + in.durations[i] + in.per_task_overhead;
    worker_free[static_cast<std::size_t>(w)] = res.finish[i];
    res.makespan = std::max(res.makespan, res.finish[i]);
    for (const int s : successors_of(in, i))
      if (--n_unscheduled_preds[s] == 0) ready.push(s);
  }
  return res;
}

double critical_path(const ScheduleInput& in) {
  validate(in);
  const int n = static_cast<int>(in.durations.size());
  if (n == 0) return 0.0;
  // Bottom levels without the per-task overhead: durations only.
  const std::vector<double> bl =
      bottom_levels(n, in.successors, in.durations, 0.0);
  return *std::max_element(bl.begin(), bl.end());
}

}  // namespace h2
