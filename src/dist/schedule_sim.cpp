#include "dist/schedule_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace h2 {

namespace {

/// successors[i] for inputs whose successor list is shorter than the task
/// count (trailing tasks without successors need no explicit entry).
const std::vector<int>& successors_of(const ScheduleInput& in, int i) {
  static const std::vector<int> kNone;
  return static_cast<std::size_t>(i) < in.successors.size()
             ? in.successors[static_cast<std::size_t>(i)]
             : kNone;
}

void validate(const ScheduleInput& in) {
  const int n = static_cast<int>(in.durations.size());
  if (static_cast<int>(in.successors.size()) > n)
    throw std::invalid_argument("schedule_sim: more successor lists than tasks");
  for (int i = 0; i < n; ++i)
    for (const int s : successors_of(in, i))
      if (s < 0 || s >= n)
        throw std::invalid_argument("schedule_sim: successor index out of range");
}

/// Kahn topological order; throws std::logic_error on cycles.
std::vector<int> topo_order(const ScheduleInput& in) {
  const int n = static_cast<int>(in.durations.size());
  std::vector<int> indeg(n, 0);
  for (int i = 0; i < n; ++i)
    for (const int s : successors_of(in, i)) ++indeg[s];
  std::vector<int> order;
  order.reserve(n);
  for (int i = 0; i < n; ++i)
    if (indeg[i] == 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (const int s : successors_of(in, order[head]))
      if (--indeg[s] == 0) order.push_back(s);
  if (static_cast<int>(order.size()) != n)
    throw std::logic_error("schedule_sim: dependency cycle");
  return order;
}

/// bottom_level[i] = longest remaining occupancy (duration + overhead) path
/// starting at i — the classic list-scheduling priority.
std::vector<double> bottom_levels(const ScheduleInput& in,
                                  const std::vector<int>& order) {
  const int n = static_cast<int>(in.durations.size());
  std::vector<double> bl(n, 0.0);
  for (int k = n - 1; k >= 0; --k) {
    const int i = order[k];
    double tail = 0.0;
    for (const int s : successors_of(in, i)) tail = std::max(tail, bl[s]);
    bl[i] = in.durations[i] + in.per_task_overhead + tail;
  }
  return bl;
}

}  // namespace

ScheduleResult list_schedule(const ScheduleInput& in, int workers,
                             const CommModel& comm) {
  if (workers < 1)
    throw std::invalid_argument("schedule_sim: need at least one worker");
  validate(in);
  const int n = static_cast<int>(in.durations.size());

  ScheduleResult res;
  res.start.assign(n, 0.0);
  res.finish.assign(n, 0.0);
  res.worker.assign(n, -1);
  for (const double d : in.durations) res.total_work += d;
  if (n == 0) return res;

  const std::vector<int> order = topo_order(in);
  const std::vector<double> priority = bottom_levels(in, order);

  std::vector<std::vector<int>> preds(n);
  std::vector<int> n_unscheduled_preds(n, 0);
  for (int i = 0; i < n; ++i)
    for (const int s : successors_of(in, i)) {
      preds[s].push_back(i);
      ++n_unscheduled_preds[s];
    }

  // Ready tasks by (bottom level desc, id asc) — ties broken by submission
  // order so replayed traces keep their recorded order.
  const auto higher = [&](int a, int b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a > b;
  };
  std::priority_queue<int, std::vector<int>, decltype(higher)> ready(higher);
  for (int i = 0; i < n; ++i)
    if (n_unscheduled_preds[i] == 0) ready.push(i);

  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);
  const auto bytes_of = [&](int i) {
    return static_cast<std::size_t>(i) < in.out_bytes.size()
               ? in.out_bytes[static_cast<std::size_t>(i)]
               : 0.0;
  };
  // Earliest start of task i on worker w: the worker must be free and every
  // input must have arrived (cross-worker inputs pay the alpha-beta cost).
  const auto earliest_start = [&](int i, int w) {
    double t = worker_free[static_cast<std::size_t>(w)];
    for (const int q : preds[i]) {
      const double arrival =
          res.finish[q] + (res.worker[q] == w ? 0.0 : comm.cost(bytes_of(q)));
      t = std::max(t, arrival);
    }
    return t;
  };

  while (!ready.empty()) {
    const int i = ready.top();
    ready.pop();
    int w = -1;
    if (static_cast<std::size_t>(i) < in.owner.size() && in.owner[i] >= 0) {
      // Pinned: out-of-range owners wrap around (block-cyclic placement).
      w = in.owner[i] % workers;
    } else {
      double best = 0.0;
      for (int c = 0; c < workers; ++c) {
        const double t = earliest_start(i, c);
        if (w < 0 || t < best) {
          w = c;
          best = t;
        }
      }
    }
    res.worker[i] = w;
    res.start[i] = earliest_start(i, w);
    res.finish[i] = res.start[i] + in.durations[i] + in.per_task_overhead;
    worker_free[static_cast<std::size_t>(w)] = res.finish[i];
    res.makespan = std::max(res.makespan, res.finish[i]);
    for (const int s : successors_of(in, i))
      if (--n_unscheduled_preds[s] == 0) ready.push(s);
  }
  return res;
}

double critical_path(const ScheduleInput& in) {
  validate(in);
  const int n = static_cast<int>(in.durations.size());
  if (n == 0) return 0.0;
  const std::vector<int> order = topo_order(in);
  std::vector<double> bl(n, 0.0);
  double best = 0.0;
  for (int k = n - 1; k >= 0; --k) {
    const int i = order[k];
    double tail = 0.0;
    for (const int s : successors_of(in, i)) tail = std::max(tail, bl[s]);
    bl[i] = in.durations[i] + tail;
    best = std::max(best, bl[i]);
  }
  return best;
}

}  // namespace h2
