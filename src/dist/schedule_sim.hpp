#pragma once

#include <cstdint>
#include <vector>

namespace h2 {

/// Distributed / many-core scheduling simulator (src/dist).
///
/// The paper's scaling figures are produced on machines we do not have, so
/// the repo replays *measured* task DAGs on simulated workers instead:
///  - Fig. 11 (shared-memory strong scaling): the recorded ULV / BLR task
///    durations are list-scheduled on P virtual cores;
///  - Fig. 13 (trace / runtime overhead): `per_task_overhead` models the
///    PaRSEC-like red tasks whose grain rivals the useful work;
///  - Fig. 16 (distributed strong scaling): `owner` pins tasks to ranks
///    (block-cyclic tiles for the BLR baseline) and the alpha-beta
///    CommModel charges every cross-rank dependency edge.
///
/// The simulator is deliberately simple — classic list scheduling with
/// bottom-level priorities — because the paper's argument is structural:
/// a DAG without trailing sub-matrix dependencies has a short critical
/// path and therefore keeps scaling where the tiled-Cholesky DAG stalls.

/// Alpha-beta (latency-bandwidth) point-to-point communication model.
/// Defaults approximate a modern HPC interconnect: 2 us latency, 10 GB/s.
struct CommModel {
  double alpha = 2e-6;   ///< per-message latency in seconds
  double beta = 1e-10;   ///< seconds per byte (1e-10 = 10 GB/s)

  /// Time to move `bytes` between two distinct workers.
  [[nodiscard]] double cost(double bytes) const { return alpha + beta * bytes; }
};

/// A task DAG to be replayed on simulated workers.
struct ScheduleInput {
  /// Task execution times in seconds; the task count is durations.size().
  std::vector<double> durations;
  /// successors[i] = tasks that may not start before i finishes. May be
  /// shorter than durations (missing entries mean "no successors").
  std::vector<std::vector<int>> successors;
  /// Output payload of each task in bytes (consumed by every successor on a
  /// different worker). Empty means all-zero.
  std::vector<double> out_bytes;
  /// Optional pinning: task i must run on worker owner[i] % workers (e.g. a
  /// 2-D block-cyclic tile owner). Empty or negative entries mean the
  /// scheduler is free to place the task anywhere.
  std::vector<int> owner;
  /// control_sink[i] != 0 marks task i as pure control flow: its incoming
  /// edges synchronize but carry no payload, so cross-worker predecessors
  /// are NOT charged the alpha-beta cost into it. The ULV release tasks are
  /// the motivating case — a release is a local reference-count decrement
  /// triggered by its consumers retiring, not a message carrying their
  /// outputs (those were already charged on the real consumer edges). May
  /// be shorter than durations (missing entries mean "not a sink").
  std::vector<std::uint8_t> control_sink;
  /// Runtime overhead added to every task's occupancy (the paper's Fig. 13
  /// "red tasks"); it extends the worker's busy time and the successors'
  /// release time but does not count as useful work in efficiency().
  double per_task_overhead = 0.0;
};

/// Result of one simulated execution.
struct ScheduleResult {
  double makespan = 0.0;  ///< wall-clock of the simulated schedule
  /// Sum of task durations, overhead excluded (the "green" time).
  double total_work = 0.0;
  std::vector<double> start;   ///< per-task start time
  std::vector<double> finish;  ///< per-task finish time (incl. overhead)
  std::vector<int> worker;     ///< per-task placement

  /// Parallel efficiency on p workers: useful work over consumed capacity.
  /// An empty schedule is perfectly efficient by convention.
  [[nodiscard]] double efficiency(int p) const {
    if (p <= 0) return 0.0;
    if (makespan <= 0.0) return 1.0;
    return total_work / (static_cast<double>(p) * makespan);
  }
};

/// bottom_level[i] = longest remaining occupancy (duration + per-task
/// overhead) path starting at task i — the classic list-scheduling priority.
/// A ScheduleInput-shaped convenience over the runtime-layer primitive
/// (runtime/task_graph.hpp), which is the one implementation both the
/// simulator and the real executor's critical-path priorities rank by.
/// Throws std::invalid_argument on out-of-range successors, std::logic_error
/// on dependency cycles.
std::vector<double> bottom_levels(const ScheduleInput& in);

/// Replay the DAG on `workers` simulated workers with list scheduling
/// (bottom-level priority, earliest-start placement, data-affinity aware:
/// a successor prefers the worker already holding its inputs when that
/// starts it sooner). Throws std::invalid_argument if workers < 1 or a
/// successor index is out of range, std::logic_error on dependency cycles.
ScheduleResult list_schedule(const ScheduleInput& in, int workers,
                             const CommModel& comm);

/// Length of the longest dependency path, counting task durations only (no
/// communication, no per-task overhead): the makespan floor no worker count
/// can beat.
double critical_path(const ScheduleInput& in);

}  // namespace h2
