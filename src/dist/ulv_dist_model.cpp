#include "dist/ulv_dist_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace h2 {

ScheduleInput UlvDistModel::replay_input() const {
  ScheduleInput in;
  if (stats == nullptr) return in;

  // Preferred path: the factorization ran under the TaskDag executor and
  // recorded its real DAG — replay the measured durations through the TRUE
  // edge structure (fill→basis→project→eliminate per block row, schur→merge
  // toward the parent, merge→fill across levels), so simulated schedules
  // overlap phases and levels exactly where the real execution may.
  if (has_recorded_dag()) {
    const int n = stats->dag.n_tasks();
    in.durations.assign(n, 0.0);
    for (const TaskRecord& r : stats->exec.records)
      if (r.id >= 0 && r.id < n) in.durations[r.id] = r.duration();
    in.successors = stats->dag.successors;
    in.out_bytes = stats->dag.out_bytes;  // empty when none were recorded
    // The factorization's release tasks ("release"/"release_level") are pure
    // control flow: their edges only say "the last consumer retired, the
    // blocks may be freed" — no data crosses ranks on them (the consumers'
    // real outputs were charged on the consumer edges already). Mark them so
    // list_schedule skips the alpha-beta charge into them.
    in.control_sink.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i)
      if (stats->dag.meta[static_cast<std::size_t>(i)].label.rfind(
              "release", 0) == 0)
        in.control_sink[static_cast<std::size_t>(i)] = 1;
    return in;
  }
  if (stats->tasks.empty()) return in;

  const auto add_task = [&](double seconds) {
    in.durations.push_back(seconds);
    in.successors.emplace_back();
    return static_cast<int>(in.durations.size()) - 1;
  };

  // Fallback (flat UlvTaskRecord log, e.g. the PhaseLoops executor): tasks
  // are recorded in serial execution order; a change of (level, kind) marks
  // a phase boundary. Tasks inside one phase are independent block-row work
  // (the paper's point: no trailing sub-matrix dependencies), so they only
  // chain through zero-duration barrier tasks between phases.
  std::vector<int> group;
  int last_barrier = -1;
  int prev_level = 0;
  const char* prev_kind = nullptr;
  for (const UlvTaskRecord& rec : stats->tasks) {
    const bool new_group =
        prev_kind == nullptr ||
        (rec.level != prev_level || std::strcmp(rec.kind, prev_kind) != 0);
    if (new_group && !group.empty()) {
      const int barrier = add_task(0.0);
      for (const int t : group) in.successors[t].push_back(barrier);
      group.clear();
      last_barrier = barrier;
    }
    const int t = add_task(rec.seconds);
    if (last_barrier >= 0) in.successors[last_barrier].push_back(t);
    group.push_back(t);
    prev_level = rec.level;
    prev_kind = rec.kind;
  }
  return in;
}

bool UlvDistModel::has_recorded_dag() const {
  return stats != nullptr && !stats->dag.empty() &&
         stats->exec.records.size() == stats->dag.meta.size();
}

ScheduleInput UlvDistModel::distributed_input(int p) const {
  ScheduleInput in = replay_input();
  if (!has_recorded_dag() || structure == nullptr) return in;
  const RankMap map(structure->depth(), std::max(1, p));
  in.owner = map.task_ranks(stats->dag);
  return in;
}

double UlvDistModel::shared_memory_time(int p) const {
  CommModel shared;  // one address space: no communication
  shared.alpha = 0.0;
  shared.beta = 0.0;
  return list_schedule(replay_input(), std::max(1, p), shared).makespan;
}

double UlvDistModel::level_bytes(int level) const {
  if (stats == nullptr || structure == nullptr) return 0.0;
  if (level < 1 || level >= static_cast<int>(stats->ranks.size()) ||
      level > structure->depth())
    return 0.0;
  const std::vector<int>& ranks = stats->ranks[level];
  double bytes = 0.0;
  for (int i = 0; i < static_cast<int>(ranks.size()); ++i) {
    const double r = static_cast<double>(ranks[i]);
    const double couplings =
        1.0 +  // the diagonal S.S block
        static_cast<double>(structure->dense_cols(level, i).size()) +
        static_cast<double>(structure->admissible_cols(level, i).size());
    bytes += 8.0 * r * r * couplings;
  }
  return bytes;
}

double UlvDistModel::comm_seconds(int p, const CommModel& comm) const {
  if (p <= 1 || stats == nullptr || structure == nullptr) return 0.0;
  double total = 0.0;
  for (int level = 1; level < static_cast<int>(stats->ranks.size()); ++level) {
    const int nb = static_cast<int>(stats->ranks[level].size());
    // Split communicators: once p exceeds the cluster count the upper
    // levels run redundantly and the gather group stops growing.
    const int q = std::min(p, std::max(1, nb));
    if (q <= 1) continue;
    const double rounds = std::ceil(std::log2(static_cast<double>(q)));
    const double payload =
        level_bytes(level) * (static_cast<double>(q - 1) / q);
    total += rounds * comm.alpha + comm.beta * payload;
  }
  return total;
}

double UlvDistModel::time(int p, const CommModel& comm,
                          CommCharging charging) const {
  if (charging == CommCharging::EdgeCharged && has_recorded_dag() &&
      structure != nullptr) {
    // The rank map pins every task to its subtree owner and list_schedule
    // charges comm.cost(producer payload) on every edge whose endpoints
    // land on different ranks — at p = 1 there are none, so this equals
    // shared_memory_time(1) exactly.
    return list_schedule(distributed_input(p), std::max(1, p), comm).makespan;
  }
  return shared_memory_time(p) + comm_seconds(p, comm);
}

}  // namespace h2
