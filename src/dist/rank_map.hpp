#pragma once

#include <vector>

#include "runtime/task_graph.hpp"

namespace h2 {

/// Subtree-partition owner map for a full binary cluster tree: the paper's
/// process-tree layout (Fig. 8) as a pure function from (level, lid) to an
/// MPI-style rank in [0, n_ranks).
///
/// The tree is cut at the *split level* — the shallowest level with at least
/// as many clusters as ranks, clamped to the leaf level — and the split-level
/// clusters are dealt to ranks in contiguous runs, so each rank owns a set of
/// adjacent subtrees (adjacent in lid order means adjacent in the reordered
/// point range — contiguous data, like a 1-D block distribution of the
/// unknowns). Every cluster below the split level belongs to the rank of its
/// split-level ancestor; every cluster above it (the redundant top of the
/// process tree, which the paper replicates on all ranks) is charged to rank
/// 0 — replicated compute advances in lockstep on every rank, so its
/// wall-clock contribution is one rank's serial time, which pinning to a
/// single rank models exactly.
///
/// More ranks than leaves is handled gracefully: the split level clamps to
/// the leaf level, each leaf still gets exactly one owner, and the surplus
/// ranks simply idle (owners cover a subset of [0, n_ranks)).
class RankMap {
 public:
  /// Map for a tree with leaf level `depth` (root = level 0) on `n_ranks`
  /// ranks. Throws std::invalid_argument when depth < 0 or n_ranks < 1.
  RankMap(int depth, int n_ranks);

  /// Leaf level of the mapped tree (root = 0).
  [[nodiscard]] int depth() const { return depth_; }
  /// Number of ranks the tree is partitioned over.
  [[nodiscard]] int n_ranks() const { return n_ranks_; }

  /// The level the tree is cut at: ceil(log2(n_ranks)) clamped to [0, depth].
  /// Levels above it are replicated (rank 0), levels at or below it are
  /// owned by the rank of their split-level ancestor.
  [[nodiscard]] int split_level() const { return split_level_; }

  /// Owning rank of cluster (level, lid); lid in [0, 2^level).
  [[nodiscard]] int rank_of(int level, int lid) const;

  /// Owning rank of every split-level subtree, in lid order — a
  /// non-decreasing sequence (the contiguity the tests pin down).
  [[nodiscard]] std::vector<int> subtree_owners() const;

  /// Owning rank per task of a recorded DAG, through the task's
  /// (owner, level) metadata: the vector ScheduleInput::owner consumes, so
  /// the scheduling simulator pins every task to the rank the distributed
  /// model charges. Tasks without level metadata (level < 0) come back -1
  /// (unpinned).
  [[nodiscard]] std::vector<int> task_ranks(const DagRecord& rec) const;

 private:
  int depth_ = 0;
  int n_ranks_ = 1;
  int split_level_ = 0;
};

}  // namespace h2
