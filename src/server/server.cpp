#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "util/env.hpp"

namespace h2 {

namespace {

// ---------------------------------------------------------------------------
// Cache keying. The key must capture exactly what determines the solution
// bits: the geometry, the kernel (identity AND parameters — two Laplace
// kernels with different regularization must not collide, so the name is
// backed by probed evaluations), and the numerics-relevant options.
// Execution knobs (executor, schedule, workers, pools) are deliberately
// excluded: the solve is bitwise identical across them by construction.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void fnv_pod(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  fnv_bytes(h, &v, sizeof(v));
}

std::uint64_t digest_points(const PointCloud& pts) {
  std::uint64_t h = kFnvOffset;
  fnv_pod(h, pts.size());
  for (const Point& p : pts) {
    fnv_pod(h, p.x);
    fnv_pod(h, p.y);
    fnv_pod(h, p.z);
  }
  return h;
}

std::uint64_t digest_kernel(const Kernel& kernel, const PointCloud& pts) {
  // The kernel interface exposes no parameters, so probe it: evaluate at a
  // few deterministic point pairs of THIS cloud and hash the values. Any
  // parameter that changes the assembled matrix changes some evaluation;
  // pairs are spread across the cloud with a fixed stride walk so clustered
  // duplicates cannot mask the probe.
  std::uint64_t h = kFnvOffset;
  const std::size_t n = pts.size();
  if (n == 0) return h;
  std::size_t i = 0;
  for (int probe = 0; probe < 16; ++probe) {
    const std::size_t j = (i * 2654435761ULL + 97) % n;
    const double v = kernel.eval(pts[i], pts[j]);
    fnv_pod(h, v);
    i = (i + n / 17 + 1) % n;
  }
  return h;
}

std::uint64_t digest_options(const SolverOptions& o) {
  std::uint64_t h = kFnvOffset;
  fnv_pod(h, o.structure);
  fnv_pod(h, o.leaf_size);
  fnv_pod(h, o.partitioner);
  fnv_pod(h, o.seed);
  fnv_pod(h, o.eta);
  fnv_pod(h, o.tol);
  fnv_pod(h, o.build_tol_factor);
  fnv_pod(h, o.max_rank);
  fnv_pod(h, o.mode);
  fnv_pod(h, o.fill_tol_factor);
  fnv_pod(h, o.fillin_augmentation);
  fnv_pod(h, o.width_stable_solve);
  fnv_pod(h, o.precision);
  fnv_pod(h, o.refine_tol);
  fnv_pod(h, o.max_refine_iters);
  return h;
}

struct CacheKey {
  std::uint64_t points = 0;
  std::uint64_t kernel_probe = 0;
  std::uint64_t options = 0;
  std::string kernel_name;

  bool operator==(const CacheKey& o) const {
    return points == o.points && kernel_probe == o.kernel_probe &&
           options == o.options && kernel_name == o.kernel_name;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    std::uint64_t h = kFnvOffset;
    fnv_pod(h, k.points);
    fnv_pod(h, k.kernel_probe);
    fnv_pod(h, k.options);
    fnv_bytes(h, k.kernel_name.data(), k.kernel_name.size());
    return static_cast<std::size_t>(h);
  }
};

std::uint64_t footprint_bytes(const Solver& s) {
  // ULV backends report their persistent factor exactly (the bytes still
  // live when the factorization finished). BLR/HODLR do not run through
  // blockmem; estimate: n x leaf dense diagonal plus 2 * rank coupling
  // columns per point — the documented heuristic in docs/SERVER.md.
  if (const UlvStats* st = s.ulv_stats(); st != nullptr && st->final_block_bytes > 0)
    return st->final_block_bytes;
  const auto n = static_cast<std::uint64_t>(s.n());
  const auto width = static_cast<std::uint64_t>(
      std::max(1, 2 * s.max_rank_used()) + 128);
  return std::max<std::uint64_t>(n * width * sizeof(double), 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Cache entry: one factorization plus its build gate and admission queue.
// Entries are shared_ptr-owned by the cache AND by every FactorHandle, so
// eviction (dropping the cache's reference) never invalidates a client.
// ---------------------------------------------------------------------------

struct Server::FactorHandle::Entry {
  // Build gate (single-flight): losers of the acquire race block on `cv`
  // until `ready`; a failed build sets `error` and is removed from the map.
  std::mutex build_mu;
  std::condition_variable build_cv;
  bool ready = false;
  std::exception_ptr error;

  // Immutable once `ready`.
  std::optional<Solver> solver;
  std::uint64_t bytes = 0;
  bool coalesce_ok = false;  ///< admission batching applies (see Server ctor)
  /// True while the entry lives in the spill tier: its factor blocks are on
  /// disk (Solver::demote_to_disk), it is in the map but not the LRU, and
  /// its bytes are off resident_bytes. Guarded by Cache::mu. Held handles
  /// may still solve a demoted entry (each sweep demand-faults its blocks);
  /// the next acquire hit promotes it back wholesale.
  bool demoted = false;

  // Admission queue (one per factorization — requests only coalesce with
  // requests for the SAME bits).
  struct Waiter {
    const double* src = nullptr;  ///< caller's n x 1 column
    Matrix x;                     ///< the waiter's solution
    bool done = false;
    std::exception_ptr err;
  };
  std::mutex mu;
  std::condition_variable cv;
  bool busy = false;             ///< a sweep is in flight on this entry
  std::deque<Waiter*> queue;     ///< parked single-RHS requests, FIFO
};

// ---------------------------------------------------------------------------
// Cache + metrics state.
// ---------------------------------------------------------------------------

struct Server::Cache {
  using Entry = Server::FactorHandle::Entry;
  std::mutex mu;
  std::unordered_map<CacheKey, std::shared_ptr<Entry>, CacheKeyHash> map;
  std::list<CacheKey> lru;  ///< front = most recently acquired; demoted entries leave it
  std::uint64_t resident_bytes = 0;
  std::uint64_t demoted_entries = 0;  ///< entries in the map with demoted set
  std::uint64_t demoted_bytes = 0;    ///< bytes those entries held when resident

  void touch(const CacheKey& k) {
    // O(entries) walk; the cache holds few, large objects by design.
    auto it = std::find(lru.begin(), lru.end(), k);
    if (it != lru.end()) lru.splice(lru.begin(), lru, it);
  }
};

struct Server::Metrics {
  static constexpr std::size_t kWindow = 4096;  ///< latency sliding window
  mutable std::mutex mu;
  std::uint64_t hits = 0, misses = 0, evictions = 0;
  std::uint64_t demotions = 0, promotions = 0;
  std::uint64_t requests = 0, rhs_served = 0, backend_solves = 0;
  std::uint64_t coalesced_requests = 0;
  std::uint64_t queue_depth = 0;
  std::array<std::uint64_t, ServerStats::kBatchBuckets> batch_hist{};
  std::vector<double> latency_ms;  ///< ring buffer, kWindow capacity
  std::size_t latency_next = 0;
};

namespace {

int batch_bucket(int width) {
  if (width <= 1) return 0;
  if (width <= 2) return 1;
  if (width <= 4) return 2;
  if (width <= 8) return 3;
  if (width <= 16) return 4;
  if (width <= 32) return 5;
  return 6;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

std::uint64_t server_default_cache_bytes() {
  return static_cast<std::uint64_t>(
             std::max(1L, env::get_int("H2_SERVER_CACHE_MB", 256))) *
         (1ULL << 20);
}

long server_default_batch_us() {
  return std::max(0L, env::get_int("H2_SERVER_BATCH_US", 1000));
}

int server_default_max_batch() {
  return static_cast<int>(std::max(1L, env::get_int("H2_SERVER_MAX_BATCH", 64)));
}

std::string server_default_spill_dir() {
  return env::get_string("H2_SPILL_DIR", std::string());
}

void ServerOptions::validate() const {
  if (batch_deadline_us < 0)
    throw std::invalid_argument(
        "ServerOptions: batch_deadline_us must be >= 0 (got " +
        std::to_string(batch_deadline_us) + ")");
  if (max_batch < 1)
    throw std::invalid_argument("ServerOptions: max_batch must be >= 1 (got " +
                                std::to_string(max_batch) + ")");
  if (cache_budget_bytes == 0)
    throw std::invalid_argument(
        "ServerOptions: cache_budget_bytes must be > 0; the budget is a "
        "high-water mark, not a way to disable caching");
  if (!spill_dir.empty() && ::access(spill_dir.c_str(), W_OK) != 0)
    throw std::invalid_argument(
        "ServerOptions: spill_dir must name an existing writable directory "
        "(got '" + spill_dir +
        "'); demoted factorizations are spilled under it (H2_SPILL_DIR)");
}

Server::Server(ServerOptions opt)
    : opt_(opt),
      cache_(std::make_unique<Cache>()),
      metrics_(std::make_unique<Metrics>()) {
  opt_.validate();
  metrics_->latency_ms.reserve(Metrics::kWindow);
}

Server::~Server() = default;

const Solver& Server::FactorHandle::solver() const {
  if (e_ == nullptr || !e_->solver.has_value())
    throw std::logic_error("FactorHandle: empty handle");
  return *e_->solver;
}

std::uint64_t Server::FactorHandle::resident_bytes() const {
  if (e_ == nullptr) throw std::logic_error("FactorHandle: empty handle");
  return e_->bytes;
}

Server::FactorHandle Server::acquire(const PointCloud& points,
                                     const Kernel& kernel, SolverOptions opt) {
  if (opt_.deterministic) opt.width_stable_solve = true;
  CacheKey key{digest_points(points), digest_kernel(kernel, points),
               digest_options(opt), kernel.name()};

  std::shared_ptr<FactorHandle::Entry> entry;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    auto it = cache_->map.find(key);
    if (it != cache_->map.end()) {
      entry = it->second;
      if (entry->demoted) {
        // Promotion (single-flight by construction: the cache mutex is held
        // for the whole fault-in, so concurrent acquires of this key queue
        // behind it and find the entry already resident). A failed
        // promotion drops the entry — the next acquire rebuilds from
        // scratch rather than serving a half-read factor.
        try {
          entry->solver->promote();
        } catch (...) {
          cache_->demoted_entries -= 1;
          cache_->demoted_bytes -= entry->bytes;
          cache_->map.erase(it);
          throw;
        }
        entry->demoted = false;
        cache_->demoted_entries -= 1;
        cache_->demoted_bytes -= entry->bytes;
        cache_->lru.push_front(key);
        cache_->resident_bytes += entry->bytes;
        {
          std::lock_guard<std::mutex> mlk(metrics_->mu);
          ++metrics_->promotions;
          ++metrics_->hits;
        }
        // The promoted bytes may push the cache back over budget; shed
        // older entries, never the one just promoted.
        shed_cache_locked(entry.get());
      } else {
        cache_->touch(key);
        std::lock_guard<std::mutex> mlk(metrics_->mu);
        ++metrics_->hits;
      }
    } else {
      entry = std::make_shared<FactorHandle::Entry>();
      cache_->map.emplace(key, entry);
      cache_->lru.push_front(key);
      builder = true;
      std::lock_guard<std::mutex> mlk(metrics_->mu);
      ++metrics_->misses;
    }
  }

  if (builder) {
    // Build OUTSIDE the cache lock: other keys keep hitting while this one
    // factorizes; same-key acquires block on the entry's build gate only.
    try {
      Solver s = Solver::build(points, kernel, opt);
      const std::uint64_t bytes = footprint_bytes(s);
      const bool is_ulv = s.structure() == SolverStructure::H2 ||
                          s.structure() == SolverStructure::HSS;
      {
        std::lock_guard<std::mutex> lk(entry->build_mu);
        entry->solver.emplace(std::move(s));
        entry->bytes = bytes;
        // Coalescing needs the width-stable bitwise contract; only the ULV
        // solve provides it. Without `deterministic` the contract is waived
        // and every backend may batch.
        entry->coalesce_ok =
            opt_.coalesce && (!opt_.deterministic || is_ulv);
        entry->ready = true;
      }
      entry->build_cv.notify_all();

      std::lock_guard<std::mutex> lk(cache_->mu);
      cache_->resident_bytes += bytes;
      shed_cache_locked(entry.get());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(entry->build_mu);
        entry->error = std::current_exception();
        entry->ready = true;
      }
      entry->build_cv.notify_all();
      {
        // Failed builds leave no entry behind: the next acquire retries.
        std::lock_guard<std::mutex> lk(cache_->mu);
        cache_->map.erase(key);
        cache_->lru.remove(key);
      }
      throw;
    }
  } else {
    std::unique_lock<std::mutex> lk(entry->build_mu);
    entry->build_cv.wait(lk, [&] { return entry->ready; });
    if (entry->error) std::rethrow_exception(entry->error);
  }
  return FactorHandle(entry);
}

void Server::shed_cache_locked(const FactorHandle::Entry* protect) {
  // Evict least-recently-acquired READY entries until we fit — never
  // `protect` (the newest or just-promoted entry), so one over-budget
  // factorization still serves (the budget acts as a high-water mark).
  //
  // With a spill directory configured, eviction DEMOTES instead of
  // destroying: the victim's factor blocks move to spill files
  // (Solver::demote_to_disk blocks until the entry's in-flight solves
  // retire, then drains its store to disk) and the entry stays in the map —
  // off the LRU and the resident books, but promotable on the next hit for
  // the price of a disk read instead of a refactorization. Backends with no
  // disk tier (BLR/HODLR, demote_to_disk returns false) and demotion
  // failures fall back to the legacy destroy-on-evict; either way handles
  // and in-flight solves keep the entry alive.
  while (cache_->resident_bytes > opt_.cache_budget_bytes &&
         cache_->lru.size() > 1) {
    bool evicted = false;
    for (auto it = std::prev(cache_->lru.end());; --it) {
      auto mit = cache_->map.find(*it);
      if (mit->second.get() == protect) {
        if (it == cache_->lru.begin()) break;
        continue;
      }
      bool victim_ready;
      {
        std::lock_guard<std::mutex> block(mit->second->build_mu);
        victim_ready = mit->second->ready;
      }
      if (victim_ready) {
        const std::shared_ptr<FactorHandle::Entry> victim = mit->second;
        bool demoted = false;
        if (!opt_.spill_dir.empty()) {
          try {
            demoted = victim->solver->demote_to_disk(opt_.spill_dir);
          } catch (...) {
            demoted = false;  // spill failure: destroy instead, never serve
          }                   // a half-written factor
        }
        cache_->resident_bytes -= victim->bytes;
        cache_->lru.erase(it);
        if (demoted) {
          victim->demoted = true;
          cache_->demoted_entries += 1;
          cache_->demoted_bytes += victim->bytes;
        } else {
          cache_->map.erase(mit);
        }
        {
          std::lock_guard<std::mutex> mlk(metrics_->mu);
          ++metrics_->evictions;
          if (demoted) ++metrics_->demotions;
        }
        evicted = true;
        break;
      }
      if (it == cache_->lru.begin()) break;
    }
    if (!evicted) break;  // nothing evictable (everything building/newest)
  }
}

void Server::note_sweep(int width) {
  std::lock_guard<std::mutex> lk(metrics_->mu);
  ++metrics_->backend_solves;
  ++metrics_->batch_hist[static_cast<std::size_t>(batch_bucket(width))];
  if (width > 1) metrics_->coalesced_requests += static_cast<std::uint64_t>(width);
}

void Server::note_latency(double ms) {
  std::lock_guard<std::mutex> lk(metrics_->mu);
  if (metrics_->latency_ms.size() < Metrics::kWindow) {
    metrics_->latency_ms.push_back(ms);
  } else {
    metrics_->latency_ms[metrics_->latency_next] = ms;
    metrics_->latency_next = (metrics_->latency_next + 1) % Metrics::kWindow;
  }
}

Matrix Server::admit_one(const std::shared_ptr<FactorHandle::Entry>& e,
                         ConstMatrixView b) {
  // Single-RHS admission: idle entry -> solve now (latency mode); busy
  // entry -> park. When the in-flight sweep retires, the front parked
  // request becomes the LEADER: it waits up to the deadline (or max_batch)
  // for contemporaries, then sweeps the whole queue as one blocked solve.
  using clock = std::chrono::steady_clock;
  FactorHandle::Entry::Waiter w;
  w.src = b.data();

  std::unique_lock<std::mutex> lk(e->mu);
  if (!e->busy && e->queue.empty()) {
    // Idle entry: pure latency mode — solve right now, no queueing. (An
    // entry with parked requests is never overtaken: the newcomer parks
    // behind them instead, keeping admission FIFO.)
    e->busy = true;
    lk.unlock();
    Matrix x;
    std::exception_ptr err;
    try {
      x = e->solver->solve(b);
    } catch (...) {
      err = std::current_exception();
    }
    note_sweep(1);
    lk.lock();
    e->busy = false;
    const bool wake = !e->queue.empty();
    lk.unlock();
    if (wake) e->cv.notify_all();
    if (err) std::rethrow_exception(err);
    return x;
  }

  e->queue.push_back(&w);
  {
    std::lock_guard<std::mutex> mlk(metrics_->mu);
    ++metrics_->queue_depth;
  }
  e->cv.notify_all();  // a collecting leader counts queue growth

  for (;;) {
    e->cv.wait(lk, [&] {
      return w.done || (!e->busy && !e->queue.empty() && e->queue.front() == &w);
    });
    if (w.done) break;

    // Leader: collect up to the deadline, then sweep.
    e->busy = true;
    const auto deadline =
        clock::now() + std::chrono::microseconds(opt_.batch_deadline_us);
    while (static_cast<int>(e->queue.size()) < opt_.max_batch) {
      if (e->cv.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    const int take =
        std::min<int>(opt_.max_batch, static_cast<int>(e->queue.size()));
    std::vector<FactorHandle::Entry::Waiter*> batch(
        e->queue.begin(), e->queue.begin() + take);
    e->queue.erase(e->queue.begin(), e->queue.begin() + take);
    {
      std::lock_guard<std::mutex> mlk(metrics_->mu);
      metrics_->queue_depth -= static_cast<std::uint64_t>(take);
    }
    lk.unlock();

    const int n = e->solver->n();
    std::exception_ptr err;
    try {
      Matrix rhs(n, take);
      for (int j = 0; j < take; ++j)
        std::memcpy(rhs.view().col(j), batch[static_cast<std::size_t>(j)]->src,
                    sizeof(double) * static_cast<std::size_t>(n));
      const Matrix x = e->solver->solve(rhs);
      for (int j = 0; j < take; ++j) {
        Matrix& xj = batch[static_cast<std::size_t>(j)]->x;
        xj = Matrix(n, 1);
        std::memcpy(xj.data(), x.view().col(j),
                    sizeof(double) * static_cast<std::size_t>(n));
      }
    } catch (...) {
      err = std::current_exception();  // fans out to the whole batch
    }
    note_sweep(take);

    lk.lock();
    for (auto* m : batch) {
      m->err = err;
      m->done = true;
    }
    e->busy = false;
    lk.unlock();
    e->cv.notify_all();
    lk.lock();
  }
  lk.unlock();
  if (w.err) std::rethrow_exception(w.err);
  return std::move(w.x);
}

Matrix Server::solve(const FactorHandle& f, ConstMatrixView b) {
  if (!f.valid()) throw std::logic_error("Server::solve: empty FactorHandle");
  const auto& e = f.e_;
  {
    std::lock_guard<std::mutex> lk(metrics_->mu);
    ++metrics_->requests;
    metrics_->rhs_served += static_cast<std::uint64_t>(b.cols());
  }
  const auto t0 = std::chrono::steady_clock::now();
  Matrix x;
  if (b.cols() == 1 && e->coalesce_ok) {
    x = admit_one(e, b);
  } else {
    // Multi-column requests are already blocked sweeps; coalescing them
    // further would only add queueing. Solver::solve is concurrency-safe,
    // so they bypass the admission queue entirely.
    x = e->solver->solve(b);
    note_sweep(b.cols());
  }
  note_latency(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
  return x;
}

Matrix Server::solve(const PointCloud& points, const Kernel& kernel,
                     ConstMatrixView b, SolverOptions opt) {
  return solve(acquire(points, kernel, std::move(opt)), b);
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    // `entries` counts RESIDENT factorizations; demoted ones live in the
    // map (so hits still find them) but report through the demoted gauges.
    s.entries = cache_->map.size() - cache_->demoted_entries;
    s.resident_bytes = cache_->resident_bytes;
    s.demoted_entries = cache_->demoted_entries;
    s.demoted_bytes = cache_->demoted_bytes;
  }
  s.budget_bytes = opt_.cache_budget_bytes;
  std::lock_guard<std::mutex> lk(metrics_->mu);
  s.hits = metrics_->hits;
  s.misses = metrics_->misses;
  s.evictions = metrics_->evictions;
  s.demotions = metrics_->demotions;
  s.promotions = metrics_->promotions;
  s.requests = metrics_->requests;
  s.rhs_served = metrics_->rhs_served;
  s.backend_solves = metrics_->backend_solves;
  s.coalesced_requests = metrics_->coalesced_requests;
  s.batch_hist = metrics_->batch_hist;
  s.queue_depth = metrics_->queue_depth;
  s.p50_ms = percentile(metrics_->latency_ms, 0.50);
  s.p99_ms = percentile(metrics_->latency_ms, 0.99);
  return s;
}

std::size_t Server::clear() {
  std::lock_guard<std::mutex> lk(cache_->mu);
  const std::size_t n = cache_->map.size();
  // Demoted entries are dropped too, but only the resident ones count as
  // evictions here — the demoted ones were already counted when demoted.
  const std::size_t resident = cache_->lru.size();
  cache_->map.clear();
  cache_->lru.clear();
  cache_->resident_bytes = 0;
  cache_->demoted_entries = 0;
  cache_->demoted_bytes = 0;
  std::lock_guard<std::mutex> mlk(metrics_->mu);
  metrics_->evictions += resident;
  return n;
}

}  // namespace h2
