#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "api/solver.hpp"

/// \file server.hpp
/// \brief Solver-as-a-service: a factorization cache with admission batching
/// above the h2::Solver facade.
///
/// The whole point of a direct solver is amortization — factor once, answer
/// many right-hand sides fast. h2::Server is the tier that turns that into a
/// serving loop: it caches factorizations under a memory budget (LRU, keyed
/// by what actually determines the bits: points, kernel, and the numerics
/// options), hands out shared-ownership handles so eviction can never
/// invalidate an in-flight solve, and coalesces concurrently-arriving
/// single-RHS requests on the same factorization into blocked multi-RHS
/// sweeps under a small deadline — recovering the ~2x+ RHS/s advantage
/// blocked solves hold over one-at-a-time latency solves (BENCH_SOLVE /
/// BENCH_SERVER trajectories) without changing a single answer: under the
/// default deterministic mode a coalesced batch is bitwise equal to the same
/// requests solved serially. docs/SERVER.md is the design doc;
/// docs/TUNING.md lists the env knobs.
namespace h2 {

/// Default factorization-cache budget in bytes: H2_SERVER_CACHE_MB
/// (megabytes; default 256) at the moment the ServerOptions is constructed.
[[nodiscard]] std::uint64_t server_default_cache_bytes();

/// Default admission deadline in microseconds: H2_SERVER_BATCH_US
/// (default 1000 — the ~1 ms bound a parked request waits for company).
[[nodiscard]] long server_default_batch_us();

/// Default per-sweep batch cap: H2_SERVER_MAX_BATCH (default 64 columns).
[[nodiscard]] int server_default_max_batch();

/// Default spill directory for demoted cache entries: H2_SPILL_DIR (default
/// empty — eviction destroys entries instead of demoting them).
[[nodiscard]] std::string server_default_spill_dir();

/// Configuration of a Server. Defaults come from the environment (the
/// server_default_* helpers; see docs/TUNING.md), so an operator can retune
/// a deployment without recompiling; explicit assignment wins as usual.
struct ServerOptions {
  /// Factorization-cache memory budget in bytes (resident factorizations
  /// only — handles held by clients keep evicted entries alive but off the
  /// books). Crossing the budget evicts least-recently-acquired entries;
  /// the newest entry is never evicted, so one oversized factorization
  /// still serves (the budget then acts as a high-water mark).
  std::uint64_t cache_budget_bytes = server_default_cache_bytes();
  /// How long a parked request waits for company before its leader sweeps
  /// the queue anyway (microseconds). Bounds the latency cost of batching:
  /// a request pays at most one in-flight solve plus this deadline of
  /// queueing before its own sweep starts.
  long batch_deadline_us = server_default_batch_us();
  /// Most right-hand-side columns one coalesced sweep may carry.
  int max_batch = server_default_max_batch();
  /// Coalesce concurrently-arriving single-RHS requests on the same
  /// factorization into blocked sweeps (the throughput mode). `false`
  /// solves every request individually the moment it arrives (pure latency
  /// mode — what bench_server_traffic's baseline measures).
  bool coalesce = true;
  /// The determinism contract: build cached solvers with
  /// SolverOptions::width_stable_solve, making every solution column's bits
  /// independent of how many requests were coalesced around it — a batched
  /// sweep equals the same requests solved serially, bit for bit (ULV
  /// backends; BLR/HODLR requests are never coalesced under this flag
  /// since only the ULV solve is width-stable). Costs single-RHS latency
  /// (see UlvOptions::width_stable_solve); `false` trades the bitwise
  /// guarantee back for it.
  bool deterministic = true;
  /// When non-empty (an existing writable directory), eviction DEMOTES ULV
  /// entries instead of destroying them: the factor's blocks move to spill
  /// files under this directory (Solver::demote_to_disk) and the entry
  /// stays cached off the resident books, so the next acquire of the same
  /// key promotes it back (a disk read) instead of refactorizing — the
  /// cache becomes a RAM/disk tiered hierarchy. Empty (the default unless
  /// H2_SPILL_DIR is set) keeps the legacy destroy-on-evict behavior.
  /// Backends without a disk tier (BLR/HODLR) are always destroyed.
  std::string spill_dir = server_default_spill_dir();

  ServerOptions& with_cache_budget_bytes(std::uint64_t v) { cache_budget_bytes = v; return *this; }  ///< chain-set cache_budget_bytes
  ServerOptions& with_batch_deadline_us(long v) { batch_deadline_us = v; return *this; }  ///< chain-set batch_deadline_us
  ServerOptions& with_max_batch(int v) { max_batch = v; return *this; }  ///< chain-set max_batch
  ServerOptions& with_coalesce(bool v) { coalesce = v; return *this; }  ///< chain-set coalesce
  ServerOptions& with_deterministic(bool v) { deterministic = v; return *this; }  ///< chain-set deterministic
  ServerOptions& with_spill_dir(std::string v) { spill_dir = std::move(v); return *this; }  ///< chain-set spill_dir

  /// Throws std::invalid_argument on nonsensical inputs (negative deadline,
  /// max_batch < 1, spill_dir naming a missing or unwritable directory).
  void validate() const;
};

/// One snapshot of the server's metrics surface (Server::stats). Counters
/// are cumulative since construction; gauges (entries, resident_bytes,
/// queue_depth) are instantaneous. Field-by-field reference with worked
/// numbers: docs/SERVER.md.
struct ServerStats {
  /// Number of batch-size histogram buckets (widths 1, 2, 3-4, 5-8, 9-16,
  /// 17-32, >= 33).
  static constexpr int kBatchBuckets = 7;

  std::uint64_t hits = 0;        ///< acquire() calls served from the cache
  std::uint64_t misses = 0;      ///< acquire() calls that built (or joined a build)
  std::uint64_t evictions = 0;   ///< entries evicted to fit the budget
  /// Evictions that demoted the entry to the spill tier instead of
  /// destroying it (spill_dir configured, ULV backend). Every demotion is
  /// also counted in evictions, so `evictions - demotions` is the number of
  /// entries actually destroyed.
  std::uint64_t demotions = 0;
  /// Demoted entries promoted back to RAM by a later cache hit.
  std::uint64_t promotions = 0;
  std::uint64_t entries = 0;     ///< factorizations resident right now
  std::uint64_t resident_bytes = 0;  ///< bytes the resident entries account for
  std::uint64_t budget_bytes = 0;    ///< the configured cache budget
  std::uint64_t demoted_entries = 0;  ///< gauge: entries living in the spill tier
  std::uint64_t demoted_bytes = 0;    ///< gauge: bytes those demoted entries held
  std::uint64_t requests = 0;    ///< solve() calls accepted
  std::uint64_t rhs_served = 0;  ///< right-hand-side columns solved
  std::uint64_t backend_solves = 0;  ///< sweeps issued to h2::Solver::solve
  /// Requests that rode a coalesced sweep of width >= 2 (the admission
  /// queue's win; rhs_served - coalesced_requests went solo).
  std::uint64_t coalesced_requests = 0;
  /// Histogram of backend sweep widths: bucket upper bounds 1, 2, 4, 8,
  /// 16, 32, inf — batch_hist[0] counts single-column sweeps,
  /// batch_hist[6] sweeps of 33+ columns.
  std::array<std::uint64_t, kBatchBuckets> batch_hist{};
  std::uint64_t queue_depth = 0;  ///< requests parked in admission queues right now
  /// Median end-to-end solve() latency in milliseconds over a sliding
  /// window of the most recent requests (0 before any request completes).
  double p50_ms = 0.0;
  /// 99th-percentile solve() latency (same window as p50_ms).
  double p99_ms = 0.0;
};

/// The serving tier: a factorization cache + admission batching above the
/// h2::Solver facade.
///
///   h2::Server server;                       // knobs via env or ServerOptions
///   auto f = server.acquire(points, kernel,  // cache miss: builds; hit: reuses
///                           h2::SolverOptions{}.with_tol(1e-8));
///   h2::Matrix x = server.solve(f, b);       // single-RHS calls coalesce
///
/// Concurrency: every method is safe to call from many threads; that is the
/// design center — solve() calls arriving concurrently on the same handle
/// are what the admission queue coalesces. A Server must outlive its
/// acquire/solve calls; FactorHandles may outlive the Server.
class Server {
 public:
  /// Shared-ownership reference to one cached factorization. Handles keep
  /// the entry alive independently of the cache: eviction only drops the
  /// CACHE's reference, so in-flight solves (and clients holding the
  /// handle) are never invalidated — the entry is freed when the last
  /// holder lets go. Default-constructed handles are empty (valid() is
  /// false); using one throws.
  class FactorHandle {
   public:
    /// Empty handle; valid() is false until assigned from acquire().
    FactorHandle() = default;
    /// True when the handle references a factorization.
    [[nodiscard]] bool valid() const noexcept { return e_ != nullptr; }
    /// The underlying facade object — the escape hatch to everything the
    /// facade exposes (last_solve_stats(), logabsdet(), ulv_stats(), direct
    /// multi-RHS solve() bypassing admission). Throws std::logic_error on
    /// an empty handle.
    [[nodiscard]] const Solver& solver() const;
    /// Bytes this factorization accounts for against the cache budget:
    /// UlvStats::final_block_bytes when the backend reports it, else a
    /// documented size estimate (see docs/SERVER.md).
    [[nodiscard]] std::uint64_t resident_bytes() const;

   private:
    friend class Server;
    struct Entry;
    explicit FactorHandle(std::shared_ptr<Entry> e) : e_(std::move(e)) {}
    std::shared_ptr<Entry> e_;
  };

  /// A server with the given options (validated; defaults come from the
  /// environment — docs/TUNING.md).
  explicit Server(ServerOptions opt = {});
  /// Destruction requires no in-flight acquire/solve calls (clients holding
  /// FactorHandles are fine — entries outlive the cache).
  ~Server();
  Server(const Server&) = delete;             ///< one cache, one owner
  Server& operator=(const Server&) = delete;  ///< one cache, one owner

  /// Get-or-build the factorization for (points, kernel, opt): the cache is
  /// keyed by a digest of the point coordinates, the kernel's identity
  /// (name + probed evaluations, so differently-parameterized kernels of
  /// one family never collide), and the numerics-relevant options (tol,
  /// structure, leaf_size, ... — execution knobs like n_workers are
  /// excluded: they do not change the bits). Concurrent acquires of one key
  /// build once (single-flight); losers block until the build finishes.
  /// When `deterministic`, the build forces width_stable_solve. A build
  /// failure propagates to every waiter and leaves no cache entry behind.
  [[nodiscard]] FactorHandle acquire(const PointCloud& points,
                                     const Kernel& kernel,
                                     SolverOptions opt = {});

  /// Solve through the admission queue (point ordering, like
  /// Solver::solve). Single-column requests on a busy factorization park up
  /// to batch_deadline_us and ride one blocked sweep with their
  /// contemporaries; multi-column requests and requests on an idle
  /// factorization run immediately. Deterministic mode guarantees the
  /// answer is bitwise the one a private Solver::solve would have produced.
  /// Throws std::logic_error on an empty handle; rethrows backend errors.
  [[nodiscard]] Matrix solve(const FactorHandle& f, ConstMatrixView b);

  /// Convenience: acquire + solve in one call — the one-liner for clients
  /// that do not manage handles. The cache still amortizes: repeated calls
  /// with the same (points, kernel, opt) hit.
  [[nodiscard]] Matrix solve(const PointCloud& points, const Kernel& kernel,
                             ConstMatrixView b, SolverOptions opt = {});

  /// Snapshot the metrics surface (cheap; callable concurrently with
  /// traffic). Percentiles cover a sliding window of recent requests.
  [[nodiscard]] ServerStats stats() const;

  /// Drop every cached entry — resident AND demoted (outstanding
  /// FactorHandles keep theirs alive). Returns the total number of entries
  /// dropped. Only the resident ones count toward ServerStats::evictions;
  /// demoted entries were already counted when they left RAM. Mainly for
  /// tests and operational resets.
  std::size_t clear();

  /// The options this server runs with (env already resolved).
  [[nodiscard]] const ServerOptions& options() const noexcept { return opt_; }

 private:
  struct Cache;
  struct Metrics;

  [[nodiscard]] Matrix admit_one(const std::shared_ptr<FactorHandle::Entry>& e,
                                 ConstMatrixView b);
  /// The eviction loop (caller holds the cache mutex): demote-or-destroy
  /// least-recently-acquired entries until resident_bytes fits the budget,
  /// never touching `protect` (the newest or just-promoted entry).
  void shed_cache_locked(const FactorHandle::Entry* protect);
  void note_sweep(int width);
  void note_latency(double ms);

  ServerOptions opt_;
  std::unique_ptr<Cache> cache_;
  std::unique_ptr<Metrics> metrics_;
};

}  // namespace h2
