#include "geometry/cloud.hpp"

#include <algorithm>
#include <cmath>

namespace h2 {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Random unit vector.
Point random_direction(Rng& rng) {
  // Marsaglia: uniform on the sphere.
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = 2.0 * std::sqrt(1.0 - s);
  return {u * f, v * f, 1.0 - 2.0 * s};
}

/// Apply a random rotation (uniformly random axis + angle) around `center`.
struct Rotation {
  double m[3][3];
  static Rotation random(Rng& rng) {
    const Point axis = random_direction(rng);
    const double angle = rng.uniform(0.0, 2.0 * kPi);
    const double c = std::cos(angle), s = std::sin(angle), t = 1.0 - c;
    const double x = axis.x, y = axis.y, z = axis.z;
    Rotation r;
    r.m[0][0] = t * x * x + c;
    r.m[0][1] = t * x * y - s * z;
    r.m[0][2] = t * x * z + s * y;
    r.m[1][0] = t * x * y + s * z;
    r.m[1][1] = t * y * y + c;
    r.m[1][2] = t * y * z - s * x;
    r.m[2][0] = t * x * z - s * y;
    r.m[2][1] = t * y * z + s * x;
    r.m[2][2] = t * z * z + c;
    return r;
  }
  [[nodiscard]] Point apply(const Point& p) const {
    return {m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z,
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z,
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z};
  }
};

}  // namespace

PointCloud uniform_cube(int n, Rng& rng) {
  PointCloud pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return pts;
}

PointCloud sphere_surface(int n, Rng& rng, Point center, double radius) {
  PointCloud pts(n);
  const double golden = kPi * (3.0 - std::sqrt(5.0));
  for (int i = 0; i < n; ++i) {
    // Fibonacci lattice with small random jitter so points are never exactly
    // coincident across repeated shells.
    const double z = 1.0 - 2.0 * (i + 0.5) / n;
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    const double theta = golden * i + 0.01 * rng.uniform();
    pts[i] = {center.x + radius * r * std::cos(theta),
              center.y + radius * r * std::sin(theta), center.z + radius * z};
  }
  return pts;
}

PointCloud molecule_surface(int n, Rng& rng, int n_atoms) {
  // Build a compact blob of overlapping atom spheres via a short random
  // walk biased back toward the origin.
  struct Atom {
    Point c;
    double r;
  };
  std::vector<Atom> atoms;
  atoms.reserve(n_atoms);
  Point cur{0, 0, 0};
  for (int a = 0; a < n_atoms; ++a) {
    const double radius = rng.uniform(0.6, 1.1);
    atoms.push_back({cur, radius});
    const Point step = random_direction(rng) * rng.uniform(0.7, 1.2);
    cur = cur + step;
    cur = cur * 0.92;  // pull back toward the centroid: compact, globular
  }

  // Rejection-sample points on the union-of-spheres surface: a point on atom
  // a's sphere is on the exposed surface iff it is outside every other atom.
  PointCloud pts;
  pts.reserve(n);
  int attempts = 0;
  const int max_attempts = 200 * n + 10000;
  while (static_cast<int>(pts.size()) < n && attempts < max_attempts) {
    ++attempts;
    const auto& atom = atoms[rng.uniform_index(atoms.size())];
    const Point p = atom.c + random_direction(rng) * atom.r;
    bool exposed = true;
    for (const auto& other : atoms) {
      if (&other == &atom) continue;
      if (dist2(p, other.c) < other.r * other.r * (1.0 - 1e-12)) {
        exposed = false;
        break;
      }
    }
    if (exposed) pts.push_back(p);
  }
  // Extremely unlikely fallback: pad with sphere points so callers always
  // receive exactly n points.
  while (static_cast<int>(pts.size()) < n) {
    const auto& atom = atoms[rng.uniform_index(atoms.size())];
    pts.push_back(atom.c + random_direction(rng) * atom.r);
  }
  return pts;
}

PointCloud crowded_molecules(int n, Rng& rng, int n_molecules) {
  const int grid = static_cast<int>(std::ceil(std::cbrt(double(n_molecules))));
  const double spacing = 7.0;  // molecule diameter is ~5-6: close packing
  PointCloud pts;
  pts.reserve(n);
  int placed = 0;
  for (int gx = 0; gx < grid && placed < n_molecules; ++gx)
    for (int gy = 0; gy < grid && placed < n_molecules; ++gy)
      for (int gz = 0; gz < grid && placed < n_molecules; ++gz) {
        const int count = (placed == n_molecules - 1)
                              ? n - static_cast<int>(pts.size())
                              : n / n_molecules;
        PointCloud mol = molecule_surface(count, rng);
        const Rotation rot = Rotation::random(rng);
        const Point offset{gx * spacing + rng.uniform(-0.5, 0.5),
                           gy * spacing + rng.uniform(-0.5, 0.5),
                           gz * spacing + rng.uniform(-0.5, 0.5)};
        for (const auto& p : mol) pts.push_back(rot.apply(p) + offset);
        ++placed;
      }
  return pts;
}

double cloud_diameter(const PointCloud& pts) {
  if (pts.empty()) return 0.0;
  Point lo = pts.front(), hi = pts.front();
  for (const auto& p : pts) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  return (hi - lo).norm();
}

}  // namespace h2
