#pragma once

#include <vector>

#include "geometry/point.hpp"
#include "util/rng.hpp"

namespace h2 {

using PointCloud = std::vector<Point>;

/// n points i.i.d. uniform inside the unit cube [0,1]^3 (paper SSec. IV).
PointCloud uniform_cube(int n, Rng& rng);

/// n points on a sphere surface (quasi-uniform Fibonacci lattice with
/// random jitter).
PointCloud sphere_surface(int n, Rng& rng, Point center = {0, 0, 0},
                          double radius = 1.0);

/// Pseudo-hemoglobin: surface of a union of `n_atoms` overlapping spheres
/// arranged as a random compact blob; points sampled on the exposed surface.
/// Substitutes for the paper's hemoglobin boundary-element mesh (Fig. 14):
/// a non-convex molecular-like surface point cloud.
PointCloud molecule_surface(int n, Rng& rng, int n_atoms = 24);

/// Crowded environment of `n_molecules` pseudo-hemoglobins arranged on a
/// cubic grid with random orientations (Fig. 15). `n` is the total point
/// count, split evenly across molecules.
PointCloud crowded_molecules(int n, Rng& rng, int n_molecules = 8);

/// Axis-aligned bounding-box diameter of the cloud (used to scale kernel
/// regularization).
double cloud_diameter(const PointCloud& pts);

}  // namespace h2
