#pragma once

#include <cmath>

namespace h2 {

/// A point in 3-D space. The solver consumes nothing but point clouds
/// (the paper's collocation BEM "essentially turns the mesh into a cloud of
/// points", SSec. V).
struct Point {
  double x = 0.0, y = 0.0, z = 0.0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Point operator*(double s) const { return {x * s, y * s, z * s}; }

  [[nodiscard]] double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

inline double dist2(const Point& a, const Point& b) { return (a - b).norm2(); }
inline double dist(const Point& a, const Point& b) {
  return std::sqrt(dist2(a, b));
}
inline double dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

}  // namespace h2
