#pragma once

#include <span>
#include <vector>

#include "geometry/cloud.hpp"
#include "geometry/point.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace h2 {

/// One node of the (full, balanced, binary) cluster tree.
struct ClusterNode {
  int level = 0;    ///< 0 = root; depth() = leaf level
  int lid = 0;      ///< index within its level, 0 .. 2^level - 1
  int begin = 0;    ///< first reordered point index (inclusive)
  int end = 0;      ///< last reordered point index (exclusive)
  Point center;     ///< centroid of the cluster's points
  double radius = 0.0;  ///< bounding-sphere radius around `center`

  [[nodiscard]] int size() const { return end - begin; }
};

/// Geometry-adaptive full binary cluster tree built by recursive balanced
/// 2-means bisection.
///
/// The paper partitions points with 3-D k-means "enforcing the number of
/// clusters to always be a power of two" (SSec. V). We realize the same thing
/// as recursive 2-means: at each node, two centroids are found by Lloyd
/// iteration and the points are split at the median of their projection onto
/// the centroid axis, so sibling sizes differ by at most one and the tree is
/// always full — exactly the structure the process tree of Fig. 8 requires.
/// How points are assigned to clusters.
enum class Partitioner {
  /// Recursive balanced 2-means (the paper's choice for complex surfaces).
  KMeans,
  /// Morton (Z-order) space-filling curve: quantize, interleave bits, sort,
  /// split in halves. The paper found k-means "works much better than
  /// space-filling curves" on complex surface geometry — kept here to
  /// reproduce that comparison (bench/examples).
  Morton,
};

class ClusterTree {
 public:
  /// Build a tree over `pts`; leaves hold at most `leaf_size` points.
  static ClusterTree build(const PointCloud& pts, int leaf_size, Rng& rng,
                           Partitioner partitioner = Partitioner::KMeans);

  /// Leaf level (root is level 0); the tree has depth()+1 levels.
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] int n_points() const { return static_cast<int>(points_.size()); }
  [[nodiscard]] int n_clusters(int level) const { return 1 << level; }
  [[nodiscard]] int leaf_count() const { return 1 << depth_; }

  /// Points in tree order (contiguous per cluster).
  [[nodiscard]] const PointCloud& points() const { return points_; }
  /// perm()[i] = original index of reordered point i.
  [[nodiscard]] const std::vector<int>& perm() const { return perm_; }

  [[nodiscard]] const ClusterNode& node(int level, int lid) const {
    return nodes_[static_cast<std::size_t>((1 << level) - 1 + lid)];
  }
  /// The points belonging to cluster (level, lid), as a contiguous span.
  [[nodiscard]] std::span<const Point> cluster_points(int level, int lid) const {
    const ClusterNode& nd = node(level, lid);
    return {points_.data() + nd.begin, static_cast<std::size_t>(nd.size())};
  }

  /// Gather a vector in original ordering into tree ordering (and back).
  [[nodiscard]] std::vector<double> to_tree_order(
      const std::vector<double>& original) const;
  [[nodiscard]] std::vector<double> to_original_order(
      const std::vector<double>& tree_ordered) const;

  /// Row-permute an n x nrhs matrix from the caller's original point
  /// ordering into tree ordering — the ordering every factorization and
  /// matvec in this library works in. Inverse of from_tree_order:
  /// from_tree_order(to_tree_order(x)) == x exactly (pure data movement,
  /// no arithmetic). The h2::Solver facade routes point-ordered right-hand
  /// sides through these.
  [[nodiscard]] Matrix to_tree_order(ConstMatrixView original) const;
  [[nodiscard]] Matrix from_tree_order(ConstMatrixView tree_ordered) const;

 private:
  int depth_ = 0;
  PointCloud points_;
  std::vector<int> perm_;
  std::vector<ClusterNode> nodes_;  // heap order: (2^level - 1) + lid
};

}  // namespace h2
