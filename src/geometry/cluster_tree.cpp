#include "geometry/cluster_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace h2 {
namespace {

/// Two-centroid Lloyd iteration on pts[idx[begin:end]]; returns the axis
/// between the converged centroids (used as the split direction).
Point two_means_axis(const PointCloud& pts, std::span<int> idx, Rng& rng) {
  assert(idx.size() >= 2);
  // Seed: a random point, the point farthest from it, then the point farthest
  // from that one (a cheap approximate diameter).
  const Point seed = pts[idx[rng.uniform_index(idx.size())]];
  auto farthest_from = [&](const Point& q) {
    double best = -1.0;
    Point arg = q;
    for (const int i : idx) {
      const double d = dist2(pts[i], q);
      if (d > best) {
        best = d;
        arg = pts[i];
      }
    }
    return arg;
  };
  Point c0 = farthest_from(seed);
  Point c1 = farthest_from(c0);

  for (int iter = 0; iter < 8; ++iter) {
    Point s0{0, 0, 0}, s1{0, 0, 0};
    int n0 = 0, n1 = 0;
    for (const int i : idx) {
      const Point& p = pts[i];
      if (dist2(p, c0) <= dist2(p, c1)) {
        s0 = s0 + p;
        ++n0;
      } else {
        s1 = s1 + p;
        ++n1;
      }
    }
    if (n0 == 0 || n1 == 0) break;  // degenerate (e.g. all points identical)
    const Point nc0 = s0 * (1.0 / n0);
    const Point nc1 = s1 * (1.0 / n1);
    if (dist2(nc0, c0) + dist2(nc1, c1) < 1e-24) {
      c0 = nc0;
      c1 = nc1;
      break;
    }
    c0 = nc0;
    c1 = nc1;
  }
  return c1 - c0;
}

void bisect(const PointCloud& pts, std::span<int> idx, Rng& rng) {
  const Point axis = two_means_axis(pts, idx, rng);
  const std::size_t half = idx.size() / 2;
  // Median split along the centroid axis: balanced and geometry-adaptive.
  std::nth_element(idx.begin(), idx.begin() + half, idx.end(),
                   [&](int a, int b) {
                     return dot(pts[a], axis) < dot(pts[b], axis);
                   });
}

/// 63-bit Morton code: 21 bits per axis, interleaved x,y,z.
std::uint64_t morton_code(const Point& p, const Point& lo, double inv_extent) {
  auto quantize = [&](double v, double l) {
    const double t = (v - l) * inv_extent;
    const double clamped = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
    return static_cast<std::uint64_t>(clamped * ((1u << 21) - 1));
  };
  auto spread = [](std::uint64_t v) {
    v &= 0x1fffff;
    v = (v | v << 32) & 0x1f00000000ffffull;
    v = (v | v << 16) & 0x1f0000ff0000ffull;
    v = (v | v << 8) & 0x100f00f00f00f00full;
    v = (v | v << 4) & 0x10c30c30c30c30c3ull;
    v = (v | v << 2) & 0x1249249249249249ull;
    return v;
  };
  return spread(quantize(p.x, lo.x)) | (spread(quantize(p.y, lo.y)) << 1) |
         (spread(quantize(p.z, lo.z)) << 2);
}

}  // namespace

ClusterTree ClusterTree::build(const PointCloud& pts, int leaf_size, Rng& rng,
                               Partitioner partitioner) {
  assert(leaf_size >= 1);
  const int n = static_cast<int>(pts.size());
  ClusterTree tree;
  tree.depth_ = 0;
  // Median splits give leaves of size ceil(n / 2^depth) at most.
  while ((n + (1 << tree.depth_) - 1) / (1 << tree.depth_) > leaf_size)
    ++tree.depth_;
  // Guard: never create empty leaves.
  while (tree.depth_ > 0 && (1 << tree.depth_) > n) --tree.depth_;

  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;

  if (partitioner == Partitioner::Morton && n > 0) {
    Point lo = pts.front(), hi = pts.front();
    for (const auto& p : pts) {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      lo.z = std::min(lo.z, p.z);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
      hi.z = std::max(hi.z, p.z);
    }
    const double extent =
        std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-300});
    std::vector<std::uint64_t> code(n);
    for (int i = 0; i < n; ++i) code[i] = morton_code(pts[i], lo, 1.0 / extent);
    std::sort(idx.begin(), idx.end(),
              [&](int a, int b) { return code[a] < code[b]; });
  }

  const int n_nodes = (2 << tree.depth_) - 1;
  tree.nodes_.resize(n_nodes);

  // Level-order construction: split each node's index range in half.
  struct Range {
    int begin, end;
  };
  std::vector<Range> ranges{{0, n}};
  for (int level = 0; level <= tree.depth_; ++level) {
    std::vector<Range> next;
    next.reserve(ranges.size() * 2);
    for (int lid = 0; lid < static_cast<int>(ranges.size()); ++lid) {
      const Range r = ranges[lid];
      ClusterNode& nd = tree.nodes_[(1 << level) - 1 + lid];
      nd.level = level;
      nd.lid = lid;
      nd.begin = r.begin;
      nd.end = r.end;
      if (level < tree.depth_) {
        if (partitioner == Partitioner::KMeans) {
          std::span<int> range_idx(idx.data() + r.begin,
                                   static_cast<std::size_t>(r.end - r.begin));
          bisect(pts, range_idx, rng);
        }  // Morton: the global sort already ordered the range.
        const int mid = r.begin + (r.end - r.begin) / 2;
        next.push_back({r.begin, mid});
        next.push_back({mid, r.end});
      }
    }
    ranges = std::move(next);
  }

  tree.perm_ = idx;
  tree.points_.resize(n);
  for (int i = 0; i < n; ++i) tree.points_[i] = pts[idx[i]];

  // Centroids and bounding-sphere radii.
  for (auto& nd : tree.nodes_) {
    Point c{0, 0, 0};
    for (int i = nd.begin; i < nd.end; ++i) c = c + tree.points_[i];
    if (nd.size() > 0) c = c * (1.0 / nd.size());
    nd.center = c;
    double r2 = 0.0;
    for (int i = nd.begin; i < nd.end; ++i)
      r2 = std::max(r2, dist2(tree.points_[i], c));
    nd.radius = std::sqrt(r2);
  }
  return tree;
}

std::vector<double> ClusterTree::to_tree_order(
    const std::vector<double>& original) const {
  assert(original.size() == perm_.size());
  std::vector<double> out(original.size());
  for (std::size_t i = 0; i < perm_.size(); ++i) out[i] = original[perm_[i]];
  return out;
}

std::vector<double> ClusterTree::to_original_order(
    const std::vector<double>& tree_ordered) const {
  assert(tree_ordered.size() == perm_.size());
  std::vector<double> out(tree_ordered.size());
  for (std::size_t i = 0; i < perm_.size(); ++i) out[perm_[i]] = tree_ordered[i];
  return out;
}

Matrix ClusterTree::to_tree_order(ConstMatrixView original) const {
  assert(original.rows() == n_points());
  const int n = original.rows(), nrhs = original.cols();
  Matrix out(n, nrhs);
  for (int j = 0; j < nrhs; ++j)
    for (int i = 0; i < n; ++i) out(i, j) = original(perm_[i], j);
  return out;
}

Matrix ClusterTree::from_tree_order(ConstMatrixView tree_ordered) const {
  assert(tree_ordered.rows() == n_points());
  const int n = tree_ordered.rows(), nrhs = tree_ordered.cols();
  Matrix out(n, nrhs);
  for (int j = 0; j < nrhs; ++j)
    for (int i = 0; i < n; ++i) out(perm_[i], j) = tree_ordered(i, j);
  return out;
}

}  // namespace h2
