#include "linalg/batch.hpp"

#include "linalg/gemm_kernel.hpp"
#include "linalg/qr.hpp"

namespace h2 {

void gemm_batch(std::span<const GemmTask> tasks) {
  detail::PackCacheScope scope;
  for (const GemmTask& t : tasks)
    gemm(t.alpha, t.a, t.ta, t.b, t.tb, t.beta, t.c);
}

void trsm_batch(std::span<const TrsmTask> tasks) {
  detail::PackCacheScope scope;
  for (const TrsmTask& t : tasks)
    trsm(t.side, t.uplo, t.trans, t.diag, t.alpha, t.a, t.b);
}

void qr_batch(std::span<const QrTask> tasks) {
  detail::PackCacheScope scope;
  for (const QrTask& t : tasks) householder_qr(t.a, *t.tau);
}

}  // namespace h2
