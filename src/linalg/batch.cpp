#include "linalg/batch.hpp"

#include "linalg/gemm_kernel.hpp"
#include "linalg/qr.hpp"

namespace h2 {
namespace {

template <class T>
void gemm_batch_impl(std::span<const GemmTaskT<T>> tasks) {
  detail::PackCacheScope scope;
  for (const GemmTaskT<T>& t : tasks)
    gemm(t.alpha, t.a, t.ta, t.b, t.tb, t.beta, t.c);
}

template <class T>
void trsm_batch_impl(std::span<const TrsmTaskT<T>> tasks) {
  detail::PackCacheScope scope;
  for (const TrsmTaskT<T>& t : tasks)
    trsm(t.side, t.uplo, t.trans, t.diag, t.alpha, t.a, t.b);
}

template <class T>
void qr_batch_impl(std::span<const QrTaskT<T>> tasks) {
  detail::PackCacheScope scope;
  for (const QrTaskT<T>& t : tasks) householder_qr(t.a, *t.tau);
}

}  // namespace

void gemm_batch(std::span<const GemmTask> tasks) {
  gemm_batch_impl<double>(tasks);
}
void gemm_batch(std::span<const GemmTaskF> tasks) {
  gemm_batch_impl<float>(tasks);
}

void trsm_batch(std::span<const TrsmTask> tasks) {
  trsm_batch_impl<double>(tasks);
}
void trsm_batch(std::span<const TrsmTaskF> tasks) {
  trsm_batch_impl<float>(tasks);
}

void qr_batch(std::span<const QrTask> tasks) { qr_batch_impl<double>(tasks); }
void qr_batch(std::span<const QrTaskF> tasks) { qr_batch_impl<float>(tasks); }

}  // namespace h2
