#include "linalg/norms.hpp"

#include <cassert>
#include <cmath>

namespace h2 {

double norm_fro(ConstMatrixView a) {
  double s = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const double* cj = a.col(j);
    for (int i = 0; i < a.rows(); ++i) s += cj[i] * cj[i];
  }
  return std::sqrt(s);
}

double norm_max(ConstMatrixView a) {
  double s = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const double* cj = a.col(j);
    for (int i = 0; i < a.rows(); ++i) s = std::max(s, std::fabs(cj[i]));
  }
  return s;
}

double rel_error_fro(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double diff2 = 0.0, ref2 = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const double* aj = a.col(j);
    const double* bj = b.col(j);
    for (int i = 0; i < a.rows(); ++i) {
      const double d = aj[i] - bj[i];
      diff2 += d * d;
      ref2 += bj[i] * bj[i];
    }
  }
  return ref2 > 0.0 ? std::sqrt(diff2 / ref2) : std::sqrt(diff2);
}

}  // namespace h2
