#include "linalg/norms.hpp"

#include <cassert>
#include <cmath>

namespace h2 {
namespace {

template <class T>
double norm_fro_impl(ConstMatrixViewT<T> a) {
  double s = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const T* cj = a.col(j);
    for (int i = 0; i < a.rows(); ++i)
      s += static_cast<double>(cj[i]) * static_cast<double>(cj[i]);
  }
  return std::sqrt(s);
}

template <class T>
double norm_max_impl(ConstMatrixViewT<T> a) {
  double s = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const T* cj = a.col(j);
    for (int i = 0; i < a.rows(); ++i)
      s = std::max(s, std::fabs(static_cast<double>(cj[i])));
  }
  return s;
}

}  // namespace

double norm_fro(ConstMatrixView a) { return norm_fro_impl<double>(a); }
double norm_fro(ConstMatrixViewF a) { return norm_fro_impl<float>(a); }

double norm_max(ConstMatrixView a) { return norm_max_impl<double>(a); }
double norm_max(ConstMatrixViewF a) { return norm_max_impl<float>(a); }

double rel_error_fro(ConstMatrixView a, ConstMatrixView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double diff2 = 0.0, ref2 = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const double* aj = a.col(j);
    const double* bj = b.col(j);
    for (int i = 0; i < a.rows(); ++i) {
      const double d = aj[i] - bj[i];
      diff2 += d * d;
      ref2 += bj[i] * bj[i];
    }
  }
  return ref2 > 0.0 ? std::sqrt(diff2 / ref2) : std::sqrt(diff2);
}

}  // namespace h2
