#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>

namespace h2 {

template <class T>
MatrixT<T> MatrixT<T>::identity(int n) {
  MatrixT m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = T(1);
  return m;
}

template <class T>
MatrixT<T> MatrixT<T>::random(int rows, int cols, Rng& rng) {
  MatrixT m(rows, cols);
  T* d = m.data();
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  return m;
}

template <class T>
MatrixT<T> MatrixT<T>::random_normal(int rows, int cols, Rng& rng) {
  MatrixT m(rows, cols);
  T* d = m.data();
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<T>(rng.normal());
  return m;
}

template <class T>
MatrixT<T> MatrixT<T>::from(ConstMatrixViewT<T> v) {
  MatrixT m(v.rows(), v.cols());
  for (int j = 0; j < v.cols(); ++j)
    std::copy_n(v.col(j), v.rows(), m.data() + static_cast<std::size_t>(j) * v.rows());
  return m;
}

template <class T>
MatrixT<T> MatrixT<T>::transposed() const {
  MatrixT t(cols_, rows_);
  for (int j = 0; j < cols_; ++j)
    for (int i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
  return t;
}

template class ConstMatrixViewT<double>;
template class ConstMatrixViewT<float>;
template class MatrixViewT<double>;
template class MatrixViewT<float>;
template class MatrixT<double>;
template class MatrixT<float>;

namespace {

template <class T>
void copy_into_impl(ConstMatrixViewT<T> src, MatrixViewT<T> dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (int j = 0; j < src.cols(); ++j)
    std::copy_n(src.col(j), src.rows(), dst.col(j));
}

template <class From, class To>
void convert_into_impl(ConstMatrixViewT<From> src, MatrixViewT<To> dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (int j = 0; j < src.cols(); ++j) {
    const From* s = src.col(j);
    To* d = dst.col(j);
    for (int i = 0; i < src.rows(); ++i) d[i] = static_cast<To>(s[i]);
  }
}

template <class T>
MatrixT<T> hconcat_impl(const std::vector<ConstMatrixViewT<T>>& blocks) {
  if (blocks.empty()) return {};
  int cols = 0;
  const int rows = blocks.front().rows();
  for (const auto& b : blocks) {
    assert(b.rows() == rows);
    cols += b.cols();
  }
  MatrixT<T> out(rows, cols);
  int j0 = 0;
  for (const auto& b : blocks) {
    copy_into_impl<T>(b, out.block(0, j0, rows, b.cols()));
    j0 += b.cols();
  }
  return out;
}

template <class T>
MatrixT<T> vconcat_impl(const std::vector<ConstMatrixViewT<T>>& blocks) {
  if (blocks.empty()) return {};
  int rows = 0;
  const int cols = blocks.front().cols();
  for (const auto& b : blocks) {
    assert(b.cols() == cols);
    rows += b.rows();
  }
  MatrixT<T> out(rows, cols);
  int i0 = 0;
  for (const auto& b : blocks) {
    copy_into_impl<T>(b, out.block(i0, 0, b.rows(), cols));
    i0 += b.rows();
  }
  return out;
}

}  // namespace

void copy_into(ConstMatrixView src, MatrixView dst) { copy_into_impl(src, dst); }
void copy_into(ConstMatrixViewF src, MatrixViewF dst) {
  copy_into_impl(src, dst);
}

void convert_into(ConstMatrixView src, MatrixViewF dst) {
  convert_into_impl(src, dst);
}
void convert_into(ConstMatrixViewF src, MatrixView dst) {
  convert_into_impl(src, dst);
}

MatrixF to_f32(ConstMatrixView src) {
  MatrixF out(src.rows(), src.cols());
  convert_into(src, out);
  return out;
}

Matrix to_f64(ConstMatrixViewF src) {
  Matrix out(src.rows(), src.cols());
  convert_into(src, out);
  return out;
}

void round_through_f32(MatrixView m) {
  for (int j = 0; j < m.cols(); ++j) {
    double* col = m.col(j);
    for (int i = 0; i < m.rows(); ++i)
      col[i] = static_cast<double>(static_cast<float>(col[i]));
  }
}

Matrix hconcat(const std::vector<ConstMatrixView>& blocks) {
  return hconcat_impl(blocks);
}
MatrixF hconcat(const std::vector<ConstMatrixViewF>& blocks) {
  return hconcat_impl(blocks);
}

Matrix vconcat(const std::vector<ConstMatrixView>& blocks) {
  return vconcat_impl(blocks);
}
MatrixF vconcat(const std::vector<ConstMatrixViewF>& blocks) {
  return vconcat_impl(blocks);
}

}  // namespace h2
