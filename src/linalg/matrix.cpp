#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>

namespace h2 {

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  double* d = m.data();
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  for (std::size_t i = 0; i < n; ++i) d[i] = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix Matrix::random_normal(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  double* d = m.data();
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  for (std::size_t i = 0; i < n; ++i) d[i] = rng.normal();
  return m;
}

Matrix Matrix::from(ConstMatrixView v) {
  Matrix m(v.rows(), v.cols());
  copy_into(v, m);
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int j = 0; j < cols_; ++j)
    for (int i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
  return t;
}

void copy_into(ConstMatrixView src, MatrixView dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (int j = 0; j < src.cols(); ++j)
    std::copy_n(src.col(j), src.rows(), dst.col(j));
}

Matrix hconcat(const std::vector<ConstMatrixView>& blocks) {
  if (blocks.empty()) return {};
  int cols = 0;
  const int rows = blocks.front().rows();
  for (const auto& b : blocks) {
    assert(b.rows() == rows);
    cols += b.cols();
  }
  Matrix out(rows, cols);
  int j0 = 0;
  for (const auto& b : blocks) {
    copy_into(b, out.block(0, j0, rows, b.cols()));
    j0 += b.cols();
  }
  return out;
}

Matrix vconcat(const std::vector<ConstMatrixView>& blocks) {
  if (blocks.empty()) return {};
  int rows = 0;
  const int cols = blocks.front().cols();
  for (const auto& b : blocks) {
    assert(b.cols() == cols);
    rows += b.rows();
  }
  Matrix out(rows, cols);
  int i0 = 0;
  for (const auto& b : blocks) {
    copy_into(b, out.block(i0, 0, b.rows(), cols));
    i0 += b.rows();
  }
  return out;
}

}  // namespace h2
