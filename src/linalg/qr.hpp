#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace h2 {

/// In-place Householder QR (LAPACK geqrf layout: R on/above the diagonal,
/// reflector vectors below with implicit leading 1; tau holds the reflector
/// scales). The fp32 overload stores tau at the factor's own precision — the
/// reflectors are applied in fp32 arithmetic throughout.
void householder_qr(MatrixView a, std::vector<double>& tau);
void householder_qr(MatrixViewF a, std::vector<float>& tau);

/// Assemble the first `ncols` columns of Q from geqrf output, using the first
/// `nref` reflectors (nref = tau.size() by default when nref < 0).
Matrix form_q(ConstMatrixView qr, const std::vector<double>& tau, int ncols,
              int nref = -1);
MatrixF form_q(ConstMatrixViewF qr, const std::vector<float>& tau, int ncols,
               int nref = -1);

/// Extract the upper-trapezoidal R (k x n, k = min(m,n)) from geqrf output.
Matrix extract_r(ConstMatrixView qr);
MatrixF extract_r(ConstMatrixViewF qr);

/// Result of rank-revealing (column-pivoted) QR.
///
/// A(:, jpvt) ~= q(:, 0:rank) * r, with q a FULL m x m orthonormal matrix:
/// the first `rank` columns span the numerical column space of A (the
/// "skeleton" part U^S in the paper's notation) and the remaining m - rank
/// columns its orthogonal complement (the "redundant" part U^R). This full
/// square basis is exactly what the ULV factorization requires (Eqs. 2-3).
template <class T>
struct PivotedQrT {
  MatrixT<T> q;           ///< m x m orthonormal [U^S U^R]
  MatrixT<T> r;           ///< rank x n, R of the pivoted factorization
  std::vector<int> jpvt;  ///< jpvt[j] = original index of pivoted column j
  int rank = 0;
};
using PivotedQr = PivotedQrT<double>;
using PivotedQrF = PivotedQrT<float>;

/// Column-pivoted Householder QR truncated at `rel_tol` (relative to the
/// largest initial column norm) and optionally capped at `max_rank`.
/// rel_tol <= 0 keeps full numerical rank. The column-norm bookkeeping that
/// drives pivot order runs at the element precision, so fp32 pivot choices
/// (and hence ranks) may differ from fp64 on near-tie columns — that is part
/// of the precision's truncation slack, not a bug.
PivotedQr pivoted_qr(ConstMatrixView a, double rel_tol, int max_rank = -1);
PivotedQrF pivoted_qr(ConstMatrixViewF a, double rel_tol, int max_rank = -1);

}  // namespace h2
