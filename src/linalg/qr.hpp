#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace h2 {

/// In-place Householder QR (LAPACK geqrf layout: R on/above the diagonal,
/// reflector vectors below with implicit leading 1; tau holds the reflector
/// scales).
void householder_qr(MatrixView a, std::vector<double>& tau);

/// Assemble the first `ncols` columns of Q from geqrf output, using the first
/// `nref` reflectors (nref = tau.size() by default when nref < 0).
Matrix form_q(ConstMatrixView qr, const std::vector<double>& tau, int ncols,
              int nref = -1);

/// Extract the upper-trapezoidal R (k x n, k = min(m,n)) from geqrf output.
Matrix extract_r(ConstMatrixView qr);

/// Result of rank-revealing (column-pivoted) QR.
///
/// A(:, jpvt) ~= q(:, 0:rank) * r, with q a FULL m x m orthonormal matrix:
/// the first `rank` columns span the numerical column space of A (the
/// "skeleton" part U^S in the paper's notation) and the remaining m - rank
/// columns its orthogonal complement (the "redundant" part U^R). This full
/// square basis is exactly what the ULV factorization requires (Eqs. 2-3).
struct PivotedQr {
  Matrix q;               ///< m x m orthonormal [U^S U^R]
  Matrix r;               ///< rank x n, R of the pivoted factorization
  std::vector<int> jpvt;  ///< jpvt[j] = original index of pivoted column j
  int rank = 0;
};

/// Column-pivoted Householder QR truncated at `rel_tol` (relative to the
/// largest initial column norm) and optionally capped at `max_rank`.
/// rel_tol <= 0 keeps full numerical rank.
PivotedQr pivoted_qr(ConstMatrixView a, double rel_tol, int max_rank = -1);

}  // namespace h2
