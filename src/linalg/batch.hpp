#pragma once

#include <span>
#include <vector>

#include "linalg/blas.hpp"

/// Batched linalg entry points for the ULV leaf phases: a leaf task that
/// performs many small gemm/trsm/qr calls over sibling blocks submits them as
/// one batch. Each batch runs the SAME deterministic code path as the
/// equivalent loop of single calls — results are bitwise identical and flop
/// accounting is unchanged — but the batch enables the packed-panel
/// memoization (detail::PackCacheScope), so an operand shared across entries
/// (the eliminate triangle, a basis factor) is packed once instead of per
/// entry. Entries execute in order; aliasing between an entry's output and a
/// later entry's input is allowed (the pack cache invalidates on overlap).
///
/// The task structs are templated on the element precision; the unqualified
/// names keep their historical fp64 meaning and the F-suffixed aliases are
/// the fp32 siblings used by the mixed-precision ULV engine. Scalars stay
/// double in both (rounded at the kernel entry), so task-building code is
/// precision-agnostic.
namespace h2 {

template <class T>
struct GemmTaskT {
  double alpha;
  ConstMatrixViewT<T> a;
  Trans ta;
  ConstMatrixViewT<T> b;
  Trans tb;
  double beta;
  MatrixViewT<T> c;
};
using GemmTask = GemmTaskT<double>;
using GemmTaskF = GemmTaskT<float>;

template <class T>
struct TrsmTaskT {
  Side side;
  UpLo uplo;
  Trans trans;
  Diag diag;
  double alpha;
  ConstMatrixViewT<T> a;
  MatrixViewT<T> b;
};
using TrsmTask = TrsmTaskT<double>;
using TrsmTaskF = TrsmTaskT<float>;

template <class T>
struct QrTaskT {
  MatrixViewT<T> a;      ///< factored in place (QR layout)
  std::vector<T>* tau;   ///< reflector scales, resized by the call
};
using QrTask = QrTaskT<double>;
using QrTaskF = QrTaskT<float>;

/// Run every task as gemm(alpha, a, ta, b, tb, beta, c), in order.
void gemm_batch(std::span<const GemmTask> tasks);
void gemm_batch(std::span<const GemmTaskF> tasks);

/// Run every task as trsm(side, uplo, trans, diag, alpha, a, b), in order.
void trsm_batch(std::span<const TrsmTask> tasks);
void trsm_batch(std::span<const TrsmTaskF> tasks);

/// Run every task as householder_qr(a, *tau), in order.
void qr_batch(std::span<const QrTask> tasks);
void qr_batch(std::span<const QrTaskF> tasks);

}  // namespace h2
