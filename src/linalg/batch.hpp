#pragma once

#include <span>
#include <vector>

#include "linalg/blas.hpp"

/// Batched linalg entry points for the ULV leaf phases: a leaf task that
/// performs many small gemm/trsm/qr calls over sibling blocks submits them as
/// one batch. Each batch runs the SAME deterministic code path as the
/// equivalent loop of single calls — results are bitwise identical and flop
/// accounting is unchanged — but the batch enables the packed-panel
/// memoization (detail::PackCacheScope), so an operand shared across entries
/// (the eliminate triangle, a basis factor) is packed once instead of per
/// entry. Entries execute in order; aliasing between an entry's output and a
/// later entry's input is allowed (the pack cache invalidates on overlap).
namespace h2 {

struct GemmTask {
  double alpha;
  ConstMatrixView a;
  Trans ta;
  ConstMatrixView b;
  Trans tb;
  double beta;
  MatrixView c;
};

struct TrsmTask {
  Side side;
  UpLo uplo;
  Trans trans;
  Diag diag;
  double alpha;
  ConstMatrixView a;
  MatrixView b;
};

struct QrTask {
  MatrixView a;               ///< factored in place (QR layout)
  std::vector<double>* tau;   ///< reflector scales, resized by the call
};

/// Run every task as gemm(alpha, a, ta, b, tb, beta, c), in order.
void gemm_batch(std::span<const GemmTask> tasks);

/// Run every task as trsm(side, uplo, trans, diag, alpha, a, b), in order.
void trsm_batch(std::span<const TrsmTask> tasks);

/// Run every task as householder_qr(a, *tau), in order.
void qr_batch(std::span<const QrTask> tasks);

}  // namespace h2
