#include "linalg/naive.hpp"

#include <algorithm>
#include <cassert>

namespace h2::naive {
namespace {

// C(:,j) += sum_k A(:,k) * B(k,j): stride-1 inner loop (column-major sweet spot).
template <class T>
void gemm_nn(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  for (int j = 0; j < n; ++j) {
    T* cj = c.col(j);
    int l = 0;
    // Unroll over 4 columns of A to amortize the C column traffic.
    for (; l + 4 <= k; l += 4) {
      const T b0 = alpha * b(l, j), b1 = alpha * b(l + 1, j);
      const T b2 = alpha * b(l + 2, j), b3 = alpha * b(l + 3, j);
      const T* a0 = a.col(l);
      const T* a1 = a.col(l + 1);
      const T* a2 = a.col(l + 2);
      const T* a3 = a.col(l + 3);
      for (int i = 0; i < m; ++i)
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
    }
    for (; l < k; ++l) {
      const T bl = alpha * b(l, j);
      const T* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

// C(i,j) += alpha * dot(A(:,i), B(:,j)): stride-1 dot products.
template <class T>
void gemm_tn(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  const int m = c.rows(), n = c.cols(), k = a.rows();
  for (int j = 0; j < n; ++j) {
    const T* bj = b.col(j);
    for (int i = 0; i < m; ++i) {
      const T* ai = a.col(i);
      T s = T(0);
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      c(i, j) += alpha * s;
    }
  }
}

// C(:,j) += sum_k A(:,k) * B(j,k).
template <class T>
void gemm_nt(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  for (int j = 0; j < n; ++j) {
    T* cj = c.col(j);
    for (int l = 0; l < k; ++l) {
      const T bl = alpha * b(j, l);
      const T* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

// C(i,j) += alpha * dot(A(:,i), B(j,:)) -- B accessed row-wise (strided).
template <class T>
void gemm_tt(T alpha, ConstMatrixViewT<T> a, ConstMatrixViewT<T> b,
             MatrixViewT<T> c) {
  const int m = c.rows(), n = c.cols(), k = a.rows();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const T* ai = a.col(i);
      T s = T(0);
      for (int l = 0; l < k; ++l) s += ai[l] * b(j, l);
      c(i, j) += alpha * s;
    }
  }
}

template <class T>
void gemm_impl(T alpha, ConstMatrixViewT<T> a, Trans ta, ConstMatrixViewT<T> b,
               Trans tb, T beta, MatrixViewT<T> c) {
  const int m = c.rows(), n = c.cols();
  const int ka = (ta == Trans::No) ? a.cols() : a.rows();
  if (beta == T(0)) {
    for (int j = 0; j < n; ++j) std::fill_n(c.col(j), m, T(0));
  } else if (beta != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* cj = c.col(j);
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (m == 0 || n == 0 || ka == 0 || alpha == T(0)) return;

  if (ta == Trans::No && tb == Trans::No) gemm_nn(alpha, a, b, c);
  else if (ta == Trans::Yes && tb == Trans::No) gemm_tn(alpha, a, b, c);
  else if (ta == Trans::No && tb == Trans::Yes) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

template <class T>
void trsm_impl(Side side, UpLo uplo, Trans trans, Diag diag, T alpha,
               ConstMatrixViewT<T> a, MatrixViewT<T> b) {
  const int m = b.rows(), n = b.cols();
  if (m == 0 || n == 0) return;
  if (alpha != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* bj = b.col(j);
      for (int i = 0; i < m; ++i) bj[i] *= alpha;
    }
  }

  // Effective triangle after the transpose: op(A) lower iff
  // (uplo==Lower) xor (trans==Yes).
  const bool op_lower = (uplo == UpLo::Lower) != (trans == Trans::Yes);
  const bool unit = (diag == Diag::Unit);
  auto at = [&](int i, int j) -> T {
    return (trans == Trans::No) ? a(i, j) : a(j, i);
  };

  if (side == Side::Left) {
    // Solve op(A) X = B column by column.
    for (int j = 0; j < n; ++j) {
      T* bj = b.col(j);
      if (op_lower) {
        for (int i = 0; i < m; ++i) {
          T s = bj[i];
          for (int l = 0; l < i; ++l) s -= at(i, l) * bj[l];
          bj[i] = unit ? s : s / at(i, i);
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          T s = bj[i];
          for (int l = i + 1; l < m; ++l) s -= at(i, l) * bj[l];
          bj[i] = unit ? s : s / at(i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B: process columns of X in dependency order, using
    // stride-1 column updates.
    if (op_lower) {
      // X(:,j) determined from j = n-1 down to 0; X(:,j) then updates B(:,l<j).
      for (int j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        if (!unit) {
          const T inv = T(1) / at(j, j);
          for (int i = 0; i < m; ++i) bj[i] *= inv;
        }
        for (int l = 0; l < j; ++l) {
          const T f = at(j, l);
          if (f == T(0)) continue;
          T* bl = b.col(l);
          for (int i = 0; i < m; ++i) bl[i] -= f * bj[i];
        }
      }
    } else {
      for (int j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (!unit) {
          const T inv = T(1) / at(j, j);
          for (int i = 0; i < m; ++i) bj[i] *= inv;
        }
        for (int l = j + 1; l < n; ++l) {
          const T f = at(j, l);
          if (f == T(0)) continue;
          T* bl = b.col(l);
          for (int i = 0; i < m; ++i) bl[i] -= f * bj[i];
        }
      }
    }
  }
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c) {
  gemm_impl<double>(alpha, a, ta, b, tb, beta, c);
}

void gemm(double alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b,
          Trans tb, double beta, MatrixViewF c) {
  gemm_impl<float>(static_cast<float>(alpha), a, ta, b, tb,
                   static_cast<float>(beta), c);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  trsm_impl<double>(side, uplo, trans, diag, alpha, a, b);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixViewF a, MatrixViewF b) {
  trsm_impl<float>(side, uplo, trans, diag, static_cast<float>(alpha), a, b);
}

}  // namespace h2::naive
