#include "linalg/naive.hpp"

#include <algorithm>
#include <cassert>

namespace h2::naive {
namespace {

// C(:,j) += sum_k A(:,k) * B(k,j): stride-1 inner loop (column-major sweet spot).
void gemm_nn(double alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  for (int j = 0; j < n; ++j) {
    double* cj = c.col(j);
    int l = 0;
    // Unroll over 4 columns of A to amortize the C column traffic.
    for (; l + 4 <= k; l += 4) {
      const double b0 = alpha * b(l, j), b1 = alpha * b(l + 1, j);
      const double b2 = alpha * b(l + 2, j), b3 = alpha * b(l + 3, j);
      const double* a0 = a.col(l);
      const double* a1 = a.col(l + 1);
      const double* a2 = a.col(l + 2);
      const double* a3 = a.col(l + 3);
      for (int i = 0; i < m; ++i)
        cj[i] += b0 * a0[i] + b1 * a1[i] + b2 * a2[i] + b3 * a3[i];
    }
    for (; l < k; ++l) {
      const double bl = alpha * b(l, j);
      const double* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

// C(i,j) += alpha * dot(A(:,i), B(:,j)): stride-1 dot products.
void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.rows();
  for (int j = 0; j < n; ++j) {
    const double* bj = b.col(j);
    for (int i = 0; i < m; ++i) {
      const double* ai = a.col(i);
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
      c(i, j) += alpha * s;
    }
  }
}

// C(:,j) += sum_k A(:,k) * B(j,k).
void gemm_nt(double alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  for (int j = 0; j < n; ++j) {
    double* cj = c.col(j);
    for (int l = 0; l < k; ++l) {
      const double bl = alpha * b(j, l);
      const double* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += bl * al[i];
    }
  }
}

// C(i,j) += alpha * dot(A(:,i), B(j,:)) -- B accessed row-wise (strided).
void gemm_tt(double alpha, ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.rows();
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      const double* ai = a.col(i);
      double s = 0.0;
      for (int l = 0; l < k; ++l) s += ai[l] * b(j, l);
      c(i, j) += alpha * s;
    }
  }
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c) {
  const int m = c.rows(), n = c.cols();
  const int ka = (ta == Trans::No) ? a.cols() : a.rows();
  if (beta == 0.0) {
    for (int j = 0; j < n; ++j) std::fill_n(c.col(j), m, 0.0);
  } else if (beta != 1.0) {
    for (int j = 0; j < n; ++j) {
      double* cj = c.col(j);
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (m == 0 || n == 0 || ka == 0 || alpha == 0.0) return;

  if (ta == Trans::No && tb == Trans::No) gemm_nn(alpha, a, b, c);
  else if (ta == Trans::Yes && tb == Trans::No) gemm_tn(alpha, a, b, c);
  else if (ta == Trans::No && tb == Trans::Yes) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  const int m = b.rows(), n = b.cols();
  if (m == 0 || n == 0) return;
  if (alpha != 1.0) {
    for (int j = 0; j < n; ++j) {
      double* bj = b.col(j);
      for (int i = 0; i < m; ++i) bj[i] *= alpha;
    }
  }

  // Effective triangle after the transpose: op(A) lower iff
  // (uplo==Lower) xor (trans==Yes).
  const bool op_lower = (uplo == UpLo::Lower) != (trans == Trans::Yes);
  const bool unit = (diag == Diag::Unit);
  auto at = [&](int i, int j) -> double {
    return (trans == Trans::No) ? a(i, j) : a(j, i);
  };

  if (side == Side::Left) {
    // Solve op(A) X = B column by column.
    for (int j = 0; j < n; ++j) {
      double* bj = b.col(j);
      if (op_lower) {
        for (int i = 0; i < m; ++i) {
          double s = bj[i];
          for (int l = 0; l < i; ++l) s -= at(i, l) * bj[l];
          bj[i] = unit ? s : s / at(i, i);
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          double s = bj[i];
          for (int l = i + 1; l < m; ++l) s -= at(i, l) * bj[l];
          bj[i] = unit ? s : s / at(i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B: process columns of X in dependency order, using
    // stride-1 column updates.
    if (op_lower) {
      // X(:,j) determined from j = n-1 down to 0; X(:,j) then updates B(:,l<j).
      for (int j = n - 1; j >= 0; --j) {
        double* bj = b.col(j);
        if (!unit) {
          const double inv = 1.0 / at(j, j);
          for (int i = 0; i < m; ++i) bj[i] *= inv;
        }
        for (int l = 0; l < j; ++l) {
          const double f = at(j, l);
          if (f == 0.0) continue;
          double* bl = b.col(l);
          for (int i = 0; i < m; ++i) bl[i] -= f * bj[i];
        }
      }
    } else {
      for (int j = 0; j < n; ++j) {
        double* bj = b.col(j);
        if (!unit) {
          const double inv = 1.0 / at(j, j);
          for (int i = 0; i < m; ++i) bj[i] *= inv;
        }
        for (int l = j + 1; l < n; ++l) {
          const double f = at(j, l);
          if (f == 0.0) continue;
          double* bl = b.col(l);
          for (int i = 0; i < m; ++i) bl[i] -= f * bj[i];
        }
      }
    }
  }
}

}  // namespace h2::naive
