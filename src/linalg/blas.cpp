#include "linalg/blas.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/gemm_kernel.hpp"
#include "linalg/naive.hpp"
#include "util/flops.hpp"

namespace h2 {
namespace {

/// Blocked triangular solves panel the triangle in NB steps: the diagonal
/// block is solved by the unblocked kernel, the off-diagonal update is one
/// gemm — so trsm inherits the packed microkernel's flop rate.
constexpr int kTrsmNb = 64;

/// op(A)[r0:r0+m, c0:c0+n] as a view of A plus the Trans tag gemm expects.
template <class T>
ConstMatrixViewT<T> op_block(ConstMatrixViewT<T> a, Trans trans, int r0,
                             int c0, int m, int n) {
  return (trans == Trans::No) ? a.block(r0, c0, m, n) : a.block(c0, r0, n, m);
}

template <class T>
void trsm_left_blocked(UpLo uplo, Trans trans, Diag diag,
                       ConstMatrixViewT<T> a, MatrixViewT<T> b) {
  const int m = b.rows();
  const bool op_lower = (uplo == UpLo::Lower) != (trans == Trans::Yes);
  if (op_lower) {
    // Forward sweep: solve the diagonal block, eliminate it from the rows
    // below.
    for (int i0 = 0; i0 < m; i0 += kTrsmNb) {
      const int ib = std::min(kTrsmNb, m - i0);
      naive::trsm(Side::Left, uplo, trans, diag, 1.0, a.block(i0, i0, ib, ib),
                  b.block(i0, 0, ib, b.cols()));
      const int rest = m - i0 - ib;
      if (rest > 0) {
        detail::gemm_nocount(-1.0, op_block<T>(a, trans, i0 + ib, i0, rest, ib),
                             trans, b.block(i0, 0, ib, b.cols()), Trans::No,
                             1.0, b.block(i0 + ib, 0, rest, b.cols()));
      }
    }
  } else {
    // Backward sweep from the last panel.
    for (int i1 = m; i1 > 0; i1 -= kTrsmNb) {
      const int ib = std::min(kTrsmNb, i1);
      const int i0 = i1 - ib;
      naive::trsm(Side::Left, uplo, trans, diag, 1.0, a.block(i0, i0, ib, ib),
                  b.block(i0, 0, ib, b.cols()));
      if (i0 > 0) {
        detail::gemm_nocount(-1.0, op_block<T>(a, trans, 0, i0, i0, ib), trans,
                             b.block(i0, 0, ib, b.cols()), Trans::No, 1.0,
                             b.block(0, 0, i0, b.cols()));
      }
    }
  }
}

template <class T>
void trsm_right_blocked(UpLo uplo, Trans trans, Diag diag,
                        ConstMatrixViewT<T> a, MatrixViewT<T> b) {
  const int n = b.cols();
  const bool op_lower = (uplo == UpLo::Lower) != (trans == Trans::Yes);
  if (op_lower) {
    // X op(A) = B with op(A) lower: columns resolve back to front.
    for (int j1 = n; j1 > 0; j1 -= kTrsmNb) {
      const int jb = std::min(kTrsmNb, j1);
      const int j0 = j1 - jb;
      naive::trsm(Side::Right, uplo, trans, diag, 1.0, a.block(j0, j0, jb, jb),
                  b.block(0, j0, b.rows(), jb));
      if (j0 > 0) {
        detail::gemm_nocount(-1.0, b.block(0, j0, b.rows(), jb), Trans::No,
                             op_block<T>(a, trans, j0, 0, jb, j0), trans, 1.0,
                             b.block(0, 0, b.rows(), j0));
      }
    }
  } else {
    for (int j0 = 0; j0 < n; j0 += kTrsmNb) {
      const int jb = std::min(kTrsmNb, n - j0);
      naive::trsm(Side::Right, uplo, trans, diag, 1.0, a.block(j0, j0, jb, jb),
                  b.block(0, j0, b.rows(), jb));
      const int rest = n - j0 - jb;
      if (rest > 0) {
        detail::gemm_nocount(-1.0, b.block(0, j0, b.rows(), jb), Trans::No,
                             op_block<T>(a, trans, j0, j0 + jb, jb, rest),
                             trans, 1.0, b.block(0, j0 + jb, b.rows(), rest));
      }
    }
  }
}

template <class T>
void gemm_impl(double alpha, ConstMatrixViewT<T> a, Trans ta,
               ConstMatrixViewT<T> b, Trans tb, double beta,
               MatrixViewT<T> c) {
  const int m = (ta == Trans::No) ? a.rows() : a.cols();
  const int ka = (ta == Trans::No) ? a.cols() : a.rows();
  const int kb = (tb == Trans::No) ? b.rows() : b.cols();
  const int n = (tb == Trans::No) ? b.cols() : b.rows();
  assert(m == c.rows() && n == c.cols() && ka == kb);
  (void)kb;

  detail::gemm_nocount(alpha, a, ta, b, tb, beta, c);

  // Same totals the pre-blocked entry point reported: the multiply-add count
  // plus, when beta forced a real rescale, the scale() it used to call.
  if (beta != 0.0 && beta != 1.0)
    flops::add(static_cast<std::uint64_t>(m) * n);
  if (m != 0 && n != 0 && ka != 0 && alpha != 0.0)
    flops::add(flops::gemm(m, n, ka));
}

template <class T>
void trsm_impl(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
               ConstMatrixViewT<T> a, MatrixViewT<T> b) {
  const int m = b.rows(), n = b.cols();
  const int t = (side == Side::Left) ? m : n;
  assert(a.rows() == t && a.cols() == t);
  if (m == 0 || n == 0) return;
  if (alpha != 1.0) scale(alpha, b);
  if (t == 0) return;

  if (t <= kTrsmNb) {
    naive::trsm(side, uplo, trans, diag, 1.0, a, b);
  } else if (side == Side::Left) {
    trsm_left_blocked<T>(uplo, trans, diag, a, b);
  } else {
    trsm_right_blocked<T>(uplo, trans, diag, a, b);
  }
  detail::invalidate_packs(ConstMatrixViewT<T>(b));  // the naive sweeps wrote
                                                     // b without telling the
                                                     // batch pack cache
  flops::add(side == Side::Left ? flops::trsm_left(m, n)
                                : flops::trsm_right(m, n));
}

template <class T>
void axpy_impl(T alpha, ConstMatrixViewT<T> x, MatrixViewT<T> y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  for (int j = 0; j < x.cols(); ++j) {
    const T* xj = x.col(j);
    T* yj = y.col(j);
    for (int i = 0; i < x.rows(); ++i) yj[i] += alpha * xj[i];
  }
  flops::add(2ull * x.rows() * x.cols());
}

template <class T>
void scale_impl(T alpha, MatrixViewT<T> x) {
  for (int j = 0; j < x.cols(); ++j) {
    T* xj = x.col(j);
    for (int i = 0; i < x.rows(); ++i) xj[i] *= alpha;
  }
  flops::add(static_cast<std::uint64_t>(x.rows()) * x.cols());
}

template <class T>
void add_identity_impl(MatrixViewT<T> a, T alpha) {
  const int n = a.rows() < a.cols() ? a.rows() : a.cols();
  for (int i = 0; i < n; ++i) a(i, i) += alpha;
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c) {
  gemm_impl<double>(alpha, a, ta, b, tb, beta, c);
}

void gemm(double alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b,
          Trans tb, double beta, MatrixViewF c) {
  gemm_impl<float>(alpha, a, ta, b, tb, beta, c);
}

Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans ta, Trans tb) {
  const int m = (ta == Trans::No) ? a.rows() : a.cols();
  const int n = (tb == Trans::No) ? b.cols() : b.rows();
  Matrix c(m, n);
  gemm(1.0, a, ta, b, tb, 0.0, c);
  return c;
}

MatrixF matmul(ConstMatrixViewF a, ConstMatrixViewF b, Trans ta, Trans tb) {
  const int m = (ta == Trans::No) ? a.rows() : a.cols();
  const int n = (tb == Trans::No) ? b.cols() : b.rows();
  MatrixF c(m, n);
  gemm(1.0, a, ta, b, tb, 0.0, c);
  return c;
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b) {
  trsm_impl<double>(side, uplo, trans, diag, alpha, a, b);
}

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixViewF a, MatrixViewF b) {
  trsm_impl<float>(side, uplo, trans, diag, alpha, a, b);
}

void axpy(double alpha, ConstMatrixView x, MatrixView y) {
  axpy_impl<double>(alpha, x, y);
}

void axpy(double alpha, ConstMatrixViewF x, MatrixViewF y) {
  axpy_impl<float>(static_cast<float>(alpha), x, y);
}

void scale(double alpha, MatrixView x) { scale_impl<double>(alpha, x); }

void scale(double alpha, MatrixViewF x) {
  scale_impl<float>(static_cast<float>(alpha), x);
}

void add_identity(MatrixView a, double alpha) {
  add_identity_impl<double>(a, alpha);
}

void add_identity(MatrixViewF a, double alpha) {
  add_identity_impl<float>(a, static_cast<float>(alpha));
}

}  // namespace h2
