#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

#include "linalg/error.hpp"
#include "util/flops.hpp"

namespace h2 {

void potrf(MatrixView a) {
  assert(a.rows() == a.cols());
  const int n = a.rows();
  for (int j = 0; j < n; ++j) {
    // Update column j with previously computed columns (left-looking).
    double* cj = a.col(j);
    for (int l = 0; l < j; ++l) {
      const double f = a(j, l);
      if (f == 0.0) continue;
      const double* cl = a.col(l);
      for (int i = j; i < n; ++i) cj[i] -= f * cl[i];
    }
    const double d = cj[j];
    if (!(d > 0.0)) throw NumericalError("potrf: matrix is not SPD");
    const double r = std::sqrt(d);
    cj[j] = r;
    const double inv = 1.0 / r;
    for (int i = j + 1; i < n; ++i) cj[i] *= inv;
  }
  flops::add(flops::potrf(n));
}

void potrs(ConstMatrixView l, MatrixView b) {
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
  trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, b);
}

}  // namespace h2
