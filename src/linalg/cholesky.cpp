#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "linalg/error.hpp"
#include "linalg/gemm_kernel.hpp"
#include "linalg/naive.hpp"
#include "util/flops.hpp"

namespace h2 {
namespace {

/// Blocked Cholesky updates each column panel with one gemm against the
/// already-factored columns, so the cubic term rides the packed microkernel.
constexpr int kPotrfNb = 64;

/// The pre-blocked left-looking column loop; no flop accounting (the public
/// entry reports the analytic count once).
template <class T>
void potrf_unblocked(MatrixViewT<T> a) {
  const int n = a.rows();
  for (int j = 0; j < n; ++j) {
    // Update column j with previously computed columns (left-looking).
    T* cj = a.col(j);
    for (int l = 0; l < j; ++l) {
      const T f = a(j, l);
      if (f == T(0)) continue;
      const T* cl = a.col(l);
      for (int i = j; i < n; ++i) cj[i] -= f * cl[i];
    }
    const T d = cj[j];
    if (!(d > T(0))) throw NumericalError("potrf: matrix is not SPD");
    const T r = std::sqrt(d);
    cj[j] = r;
    const T inv = T(1) / r;
    for (int i = j + 1; i < n; ++i) cj[i] *= inv;
  }
}

template <class T>
void potrf_impl(MatrixViewT<T> a) {
  assert(a.rows() == a.cols());
  const int n = a.rows();
  if (n <= kPotrfNb) {
    potrf_unblocked<T>(a);
    detail::invalidate_packs(ConstMatrixViewT<T>(a));
    flops::add(flops::potrf(n));
    return;
  }

  std::vector<T> upper;  // strict upper triangle of the diagonal block
  for (int j0 = 0; j0 < n; j0 += kPotrfNb) {
    const int jb = std::min(kPotrfNb, n - j0);
    if (j0 > 0) {
      // Left-looking panel update: A[j0:n, j0:j0+jb] -= L[j0:n, 0:j0] *
      // L[j0:j0+jb, 0:j0]^T. The gemm writes the whole rectangle, including
      // the diagonal block's strict upper triangle, which potrf's contract
      // leaves untouched — save and restore it around the update.
      upper.clear();
      for (int j = 1; j < jb; ++j)
        for (int i = 0; i < j; ++i) upper.push_back(a(j0 + i, j0 + j));
      detail::gemm_nocount(-1.0, a.block(j0, 0, n - j0, j0), Trans::No,
                           a.block(j0, 0, jb, j0), Trans::Yes, 1.0,
                           a.block(j0, j0, n - j0, jb));
      std::size_t u = 0;
      for (int j = 1; j < jb; ++j)
        for (int i = 0; i < j; ++i) a(j0 + i, j0 + j) = upper[u++];
    }
    potrf_unblocked<T>(a.block(j0, j0, jb, jb));
    const int rest = n - j0 - jb;
    if (rest > 0) {
      naive::trsm(Side::Right, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                  a.block(j0, j0, jb, jb), a.block(j0 + jb, j0, rest, jb));
    }
  }
  detail::invalidate_packs(ConstMatrixViewT<T>(a));
  flops::add(flops::potrf(n));
}

}  // namespace

void potrf(MatrixView a) { potrf_impl<double>(a); }
void potrf(MatrixViewF a) { potrf_impl<float>(a); }

void potrs(ConstMatrixView l, MatrixView b) {
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
  trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, b);
}

void potrs(ConstMatrixViewF l, MatrixViewF b) {
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
  trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, b);
}

}  // namespace h2
