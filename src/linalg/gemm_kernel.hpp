#pragma once

#include "linalg/blas.hpp"

/// The blocked gemm substrate: an MR x NR register-tiled microkernel fed by
/// A/B panels packed into aligned contiguous buffers, with MC/KC/NC cache
/// blocking (the BLIS/GotoBLAS decomposition). Public `gemm()` routes here
/// for every shape above the small-size threshold; the blocked trsm / getrf /
/// potrf / householder_qr are expressed in terms of these entry points so
/// every hot factor kernel inherits the microkernel's flop rate.
///
/// This translation unit is compiled with the best SIMD flags the host
/// compiler supports (-march=native when available, see CMakeLists), so the
/// per-arch tile constants below are chosen by the instruction set actually
/// in play. Results are deterministic for a given build, and both DAG
/// executors share this single code path — bitwise identity across executors
/// and worker counts is preserved. Results are NOT bitwise-stable against
/// the retained naive kernels (different summation order); tests compare the
/// two within floating-point tolerance.
namespace h2 {

/// The tile constants the blocked path was compiled with (per-arch):
/// mr x nr is the register microtile, mc/kc/nc the cache-block sizes.
struct GemmTiling {
  int mr, nr;     ///< microkernel register tile
  int mc, kc, nc; ///< cache blocking (A tile mc x kc, B panel kc x nc)
  const char* isa; ///< "avx512" | "avx2" | "generic"
};
[[nodiscard]] GemmTiling gemm_tiling() noexcept;
/// The fp32 microkernel's tile constants: same cache blocking, but MR spans
/// twice the elements per vector register (e.g. 32x8 on AVX-512 vs 16x8 for
/// fp64), which is where the fp32 path's bandwidth advantage comes from.
[[nodiscard]] GemmTiling gemm_tiling_f32() noexcept;

namespace detail {

/// Dispatch predicate: true when (m, n, k) is worth packing. Tiny DAG leaf
/// tasks (and degenerate shapes with a dimension below one microtile) stay
/// on the naive path so they never pay the packing overhead. Inside a
/// WidthStableScope the predicate ignores n entirely (see below), so a
/// gemm's path — and hence each output column's bits — cannot depend on how
/// many right-hand-side columns ride along.
[[nodiscard]] bool use_blocked(int m, int n, int k) noexcept;
/// fp32 dispatch predicate: same shape logic against the fp32 tile constants.
[[nodiscard]] bool use_blocked_f32(int m, int n, int k) noexcept;

/// C += alpha * op(A) * op(B) through the packed microkernel. No beta
/// handling, no flop accounting — callers pre-scale C and report flops once.
void gemm_accum_blocked(double alpha, ConstMatrixView a, Trans ta,
                        ConstMatrixView b, Trans tb, MatrixView c);
void gemm_accum_blocked(double alpha, ConstMatrixViewF a, Trans ta,
                        ConstMatrixViewF b, Trans tb, MatrixViewF c);

/// Full gemm semantics (beta pre-scale, small-size dispatch to the naive
/// kernels) WITHOUT flop accounting: what the blocked trsm/getrf/potrf/qr
/// call internally so the public entry points count each operation exactly
/// once (fig10's accounting stays truthful).
void gemm_nocount(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                  Trans tb, double beta, MatrixView c);
void gemm_nocount(double alpha, ConstMatrixViewF a, Trans ta,
                  ConstMatrixViewF b, Trans tb, double beta, MatrixViewF c);

/// Drop any memoized pack whose source range overlaps `written`. gemm itself
/// invalidates its own C; kernels that write through non-gemm paths (naive
/// trsm sweeps, panel factors, scratch refills) must call this after writing
/// so a later batched gemm cannot reuse a stale panel.
void invalidate_packs(ConstMatrixView written);
void invalidate_packs(ConstMatrixViewF written);

/// RAII enable of the packed-panel memoization used by the *_batch entry
/// points: while a scope is alive, a gemm whose A (or B) operand matches the
/// previously packed panel re-uses it instead of repacking. Only safe when
/// no task in the batch writes memory a later task reads through A/B — the
/// batch entry points guarantee that by invalidating on output overlap.
/// Scopes may not nest (the batch functions are the only intended users).
class PackCacheScope {
 public:
  PackCacheScope();
  ~PackCacheScope();
  PackCacheScope(const PackCacheScope&) = delete;
  PackCacheScope& operator=(const PackCacheScope&) = delete;
};

/// RAII enable (per thread) of WIDTH-STABLE gemm dispatch: while a scope
/// constructed with `enable = true` is alive on this thread, use_blocked
/// ignores the real column count and decides as if every gemm were NR
/// columns wide (`m >= MR && k >= 8 && m*k*NR >= threshold`). The blocked
/// path is perfectly column-local — each output column's bits depend only
/// on A and its own B column (edge microtiles compute the full zero-padded
/// NR-wide tile through the same microkernel) — so under a width-stable
/// scope a solve's per-column results are bitwise independent of how many
/// right-hand sides were batched together. This is the primitive behind
/// UlvOptions::width_stable_solve and the server's determinism contract:
/// a deadline-coalesced batch must equal the same requests solved serially.
///
/// Cost: single-column gemms above the width-stable threshold run the
/// packed microkernel at 1/NR useful lane occupancy instead of the naive
/// sweep. Scopes nest (each restores the previous state); a scope
/// constructed with `enable = false` is a no-op that leaves the thread's
/// current mode untouched, so call sites can gate on an option bool
/// without branching around the object.
class WidthStableScope {
 public:
  explicit WidthStableScope(bool enable);
  ~WidthStableScope();
  WidthStableScope(const WidthStableScope&) = delete;
  WidthStableScope& operator=(const WidthStableScope&) = delete;

 private:
  bool prev_;
};

}  // namespace detail
}  // namespace h2
