#pragma once

#include "linalg/blas.hpp"

/// The blocked gemm substrate: an MR x NR register-tiled microkernel fed by
/// A/B panels packed into aligned contiguous buffers, with MC/KC/NC cache
/// blocking (the BLIS/GotoBLAS decomposition). Public `gemm()` routes here
/// for every shape above the small-size threshold; the blocked trsm / getrf /
/// potrf / householder_qr are expressed in terms of these entry points so
/// every hot factor kernel inherits the microkernel's flop rate.
///
/// This translation unit is compiled with the best SIMD flags the host
/// compiler supports (-march=native when available, see CMakeLists), so the
/// per-arch tile constants below are chosen by the instruction set actually
/// in play. Results are deterministic for a given build, and both DAG
/// executors share this single code path — bitwise identity across executors
/// and worker counts is preserved. Results are NOT bitwise-stable against
/// the retained naive kernels (different summation order); tests compare the
/// two within floating-point tolerance.
namespace h2 {

/// The tile constants the blocked path was compiled with (per-arch):
/// mr x nr is the register microtile, mc/kc/nc the cache-block sizes.
struct GemmTiling {
  int mr, nr;     ///< microkernel register tile
  int mc, kc, nc; ///< cache blocking (A tile mc x kc, B panel kc x nc)
  const char* isa; ///< "avx512" | "avx2" | "generic"
};
[[nodiscard]] GemmTiling gemm_tiling() noexcept;

namespace detail {

/// Dispatch predicate: true when (m, n, k) is worth packing. Tiny DAG leaf
/// tasks (and degenerate shapes with a dimension below one microtile) stay
/// on the naive path so they never pay the packing overhead.
[[nodiscard]] bool use_blocked(int m, int n, int k) noexcept;

/// C += alpha * op(A) * op(B) through the packed microkernel. No beta
/// handling, no flop accounting — callers pre-scale C and report flops once.
void gemm_accum_blocked(double alpha, ConstMatrixView a, Trans ta,
                        ConstMatrixView b, Trans tb, MatrixView c);

/// Full gemm semantics (beta pre-scale, small-size dispatch to the naive
/// kernels) WITHOUT flop accounting: what the blocked trsm/getrf/potrf/qr
/// call internally so the public entry points count each operation exactly
/// once (fig10's accounting stays truthful).
void gemm_nocount(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                  Trans tb, double beta, MatrixView c);

/// Drop any memoized pack whose source range overlaps `written`. gemm itself
/// invalidates its own C; kernels that write through non-gemm paths (naive
/// trsm sweeps, panel factors, scratch refills) must call this after writing
/// so a later batched gemm cannot reuse a stale panel.
void invalidate_packs(ConstMatrixView written);

/// RAII enable of the packed-panel memoization used by the *_batch entry
/// points: while a scope is alive, a gemm whose A (or B) operand matches the
/// previously packed panel re-uses it instead of repacking. Only safe when
/// no task in the batch writes memory a later task reads through A/B — the
/// batch entry points guarantee that by invalidating on output overlap.
/// Scopes may not nest (the batch functions are the only intended users).
class PackCacheScope {
 public:
  PackCacheScope();
  ~PackCacheScope();
  PackCacheScope(const PackCacheScope&) = delete;
  PackCacheScope& operator=(const PackCacheScope&) = delete;
};

}  // namespace detail
}  // namespace h2
