#pragma once

/// Umbrella header for the dense linear-algebra substrate.
#include "linalg/blas.hpp"        // IWYU pragma: export
#include "linalg/cholesky.hpp"    // IWYU pragma: export
#include "linalg/error.hpp"       // IWYU pragma: export
#include "linalg/lu.hpp"          // IWYU pragma: export
#include "linalg/matrix.hpp"      // IWYU pragma: export
#include "linalg/norms.hpp"       // IWYU pragma: export
#include "linalg/qr.hpp"          // IWYU pragma: export
#include "linalg/svd.hpp"         // IWYU pragma: export
