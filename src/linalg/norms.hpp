#pragma once

#include "linalg/matrix.hpp"

namespace h2 {

/// Frobenius norm. Accumulated and returned in double at either storage
/// precision (norms feed convergence decisions, which must not drift with
/// the factor's word size).
double norm_fro(ConstMatrixView a);
double norm_fro(ConstMatrixViewF a);

/// Largest absolute entry.
double norm_max(ConstMatrixView a);
double norm_max(ConstMatrixViewF a);

/// ||A - B||_F / ||B||_F (relative to the reference B; returns ||A||_F when
/// B is exactly zero).
double rel_error_fro(ConstMatrixView a, ConstMatrixView b);

}  // namespace h2
