#pragma once

#include "linalg/matrix.hpp"

namespace h2 {

/// Frobenius norm.
double norm_fro(ConstMatrixView a);

/// Largest absolute entry.
double norm_max(ConstMatrixView a);

/// ||A - B||_F / ||B||_F (relative to the reference B; returns ||A||_F when
/// B is exactly zero).
double rel_error_fro(ConstMatrixView a, ConstMatrixView b);

}  // namespace h2
