#pragma once

#include "linalg/blas.hpp"

/// The pre-blocked reference kernels: straightforward column sweeps with no
/// packing, no register tiling, no cache blocking. Retained for three jobs:
///
///  1. correctness oracle — the property tests compare every blocked kernel
///     against these on random shapes;
///  2. small-size fast path — tiny DAG leaf tasks dispatch here so they never
///     pay packing overhead (see detail::use_blocked in gemm_kernel.hpp);
///  3. the bench_micro_linalg baseline the ">= 2x blocked GFlop/s" gate in
///     BENCH_LINALG.json measures against ("the current kernels" pre-PR).
///
/// None of these report to h2::flops — accounting happens once at the public
/// gemm()/trsm() entry points, whichever path they dispatch to.
namespace h2::naive {

/// C = alpha * op(A) * op(B) + beta * C, triple-loop column sweeps.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c);
/// fp32 overload (scalars stay double at the API and are rounded once at
/// entry, so call sites read identically at either precision).
void gemm(double alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b,
          Trans tb, double beta, MatrixViewF c);

/// Unblocked triangular solve (same contract as h2::trsm).
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixViewF a, MatrixViewF b);

}  // namespace h2::naive
