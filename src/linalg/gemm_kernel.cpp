#include "linalg/gemm_kernel.hpp"

#include <algorithm>
#include <cstring>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "linalg/aligned.hpp"
#include "linalg/naive.hpp"

namespace h2 {
namespace {

// ---------------------------------------------------------------------------
// Per-arch, per-precision tile constants. The microkernel keeps an MR x NR
// accumulator block in registers: MR is a small multiple of the vector width,
// NR is bounded by the register file (MR/W * NR + MR/W + 1 live vector
// registers). A vector register holds twice as many floats as doubles, so the
// fp32 tile spans twice the rows of the fp64 tile at the same register
// budget — that 2x element throughput (and the halved panel bytes) is the
// whole point of the mixed-precision path.
// ---------------------------------------------------------------------------
template <class T>
struct Tile;

#if defined(__AVX512F__)
template <>
struct Tile<double> {
  static constexpr int MR = 16, NR = 8;  // 2 zmm x 8 accumulators
};
template <>
struct Tile<float> {
  static constexpr int MR = 32, NR = 8;  // 2 zmm (16 lanes each) x 8
};
constexpr const char* kIsa = "avx512";
#elif defined(__AVX2__)
template <>
struct Tile<double> {
  static constexpr int MR = 8, NR = 6;  // 2 ymm x 6 accumulators
};
template <>
struct Tile<float> {
  static constexpr int MR = 16, NR = 6;  // 2 ymm (8 lanes each) x 6
};
constexpr const char* kIsa = "avx2";
#else
template <>
struct Tile<double> {
  static constexpr int MR = 4, NR = 4;  // scalar/SSE fallback
};
template <>
struct Tile<float> {
  static constexpr int MR = 4, NR = 4;
};
constexpr const char* kIsa = "generic";
#endif

// Cache blocking, shared across precisions: the packed A tile (MC x KC
// elements) lives in L2 while the packed B panel streams through it one
// KC x NR sliver (L1-resident) at a time. In fp32 the same element counts
// occupy half the bytes — the panels get roomier, never tighter.
constexpr int MC = 128, KC = 256, NC = 1024;

static_assert(MC % Tile<double>::MR == 0 && MC % Tile<float>::MR == 0,
              "A tile must hold whole row microtiles");

// ---------------------------------------------------------------------------
// Microkernel: C[0:MR, 0:NR] += sum_p Apanel[p*MR + i] * Bpanel[p*NR + j].
// Explicit intrinsics per ISA and element type: the accumulator block must
// live in registers for the whole k-loop, and compilers reliably spill a
// plain T[NR][MR] array to the stack (measured: ~2.5x slower than the naive
// kernels). The A-panel loads are aligned: the pack buffer is
// kMatrixAlign-aligned and each k-step advances a whole MR-row microtile.
// The template drivers below select the overload by element pointer type.
// ---------------------------------------------------------------------------
#if defined(__AVX512F__)

void ukr(int kc, const double* __restrict ap, const double* __restrict bp,
         double* __restrict c, int ldc) {
  constexpr int MR = Tile<double>::MR, NR = Tile<double>::NR;
  __m512d lo[NR], hi[NR];  // two zmm per C column: 16 of 32 registers
  for (int j = 0; j < NR; ++j) lo[j] = hi[j] = _mm512_setzero_pd();
  for (int p = 0; p < kc; ++p) {
    const __m512d a0 = _mm512_load_pd(ap);
    const __m512d a1 = _mm512_load_pd(ap + 8);
    ap += MR;
#pragma GCC unroll 8
    for (int j = 0; j < NR; ++j) {
      const __m512d bv = _mm512_set1_pd(bp[j]);
      lo[j] = _mm512_fmadd_pd(a0, bv, lo[j]);
      hi[j] = _mm512_fmadd_pd(a1, bv, hi[j]);
    }
    bp += NR;
  }
  for (int j = 0; j < NR; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    _mm512_storeu_pd(cj, _mm512_add_pd(_mm512_loadu_pd(cj), lo[j]));
    _mm512_storeu_pd(cj + 8, _mm512_add_pd(_mm512_loadu_pd(cj + 8), hi[j]));
  }
}

void ukr(int kc, const float* __restrict ap, const float* __restrict bp,
         float* __restrict c, int ldc) {
  constexpr int MR = Tile<float>::MR, NR = Tile<float>::NR;
  __m512 lo[NR], hi[NR];  // two zmm (16 floats each) per C column
  for (int j = 0; j < NR; ++j) lo[j] = hi[j] = _mm512_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const __m512 a0 = _mm512_load_ps(ap);
    const __m512 a1 = _mm512_load_ps(ap + 16);
    ap += MR;
#pragma GCC unroll 8
    for (int j = 0; j < NR; ++j) {
      const __m512 bv = _mm512_set1_ps(bp[j]);
      lo[j] = _mm512_fmadd_ps(a0, bv, lo[j]);
      hi[j] = _mm512_fmadd_ps(a1, bv, hi[j]);
    }
    bp += NR;
  }
  for (int j = 0; j < NR; ++j) {
    float* cj = c + static_cast<std::size_t>(j) * ldc;
    _mm512_storeu_ps(cj, _mm512_add_ps(_mm512_loadu_ps(cj), lo[j]));
    _mm512_storeu_ps(cj + 16, _mm512_add_ps(_mm512_loadu_ps(cj + 16), hi[j]));
  }
}

#elif defined(__AVX2__)

void ukr(int kc, const double* __restrict ap, const double* __restrict bp,
         double* __restrict c, int ldc) {
  constexpr int MR = Tile<double>::MR, NR = Tile<double>::NR;
  __m256d lo[NR], hi[NR];  // two ymm per C column: 12 of 16 registers
  for (int j = 0; j < NR; ++j) lo[j] = hi[j] = _mm256_setzero_pd();
  for (int p = 0; p < kc; ++p) {
    const __m256d a0 = _mm256_load_pd(ap);
    const __m256d a1 = _mm256_load_pd(ap + 4);
    ap += MR;
#pragma GCC unroll 6
    for (int j = 0; j < NR; ++j) {
      const __m256d bv = _mm256_set1_pd(bp[j]);
      lo[j] = _mm256_fmadd_pd(a0, bv, lo[j]);
      hi[j] = _mm256_fmadd_pd(a1, bv, hi[j]);
    }
    bp += NR;
  }
  for (int j = 0; j < NR; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    _mm256_storeu_pd(cj, _mm256_add_pd(_mm256_loadu_pd(cj), lo[j]));
    _mm256_storeu_pd(cj + 4, _mm256_add_pd(_mm256_loadu_pd(cj + 4), hi[j]));
  }
}

void ukr(int kc, const float* __restrict ap, const float* __restrict bp,
         float* __restrict c, int ldc) {
  constexpr int MR = Tile<float>::MR, NR = Tile<float>::NR;
  __m256 lo[NR], hi[NR];  // two ymm (8 floats each) per C column
  for (int j = 0; j < NR; ++j) lo[j] = hi[j] = _mm256_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const __m256 a0 = _mm256_load_ps(ap);
    const __m256 a1 = _mm256_load_ps(ap + 8);
    ap += MR;
#pragma GCC unroll 6
    for (int j = 0; j < NR; ++j) {
      const __m256 bv = _mm256_set1_ps(bp[j]);
      lo[j] = _mm256_fmadd_ps(a0, bv, lo[j]);
      hi[j] = _mm256_fmadd_ps(a1, bv, hi[j]);
    }
    bp += NR;
  }
  for (int j = 0; j < NR; ++j) {
    float* cj = c + static_cast<std::size_t>(j) * ldc;
    _mm256_storeu_ps(cj, _mm256_add_ps(_mm256_loadu_ps(cj), lo[j]));
    _mm256_storeu_ps(cj + 8, _mm256_add_ps(_mm256_loadu_ps(cj + 8), hi[j]));
  }
}

#else

template <class T>
void ukr_generic(int kc, const T* __restrict ap, const T* __restrict bp,
                 T* __restrict c, int ldc) {
  constexpr int MR = Tile<T>::MR, NR = Tile<T>::NR;
  T acc[NR][MR];
  for (int j = 0; j < NR; ++j)
    for (int i = 0; i < MR; ++i) acc[j][i] = T(0);
  for (int p = 0; p < kc; ++p) {
    const T* __restrict a = ap + static_cast<std::size_t>(p) * MR;
    const T* __restrict b = bp + static_cast<std::size_t>(p) * NR;
    for (int j = 0; j < NR; ++j) {
      const T bv = b[j];
      for (int i = 0; i < MR; ++i) acc[j][i] += a[i] * bv;
    }
  }
  for (int j = 0; j < NR; ++j) {
    T* cj = c + static_cast<std::size_t>(j) * ldc;
    for (int i = 0; i < MR; ++i) cj[i] += acc[j][i];
  }
}

void ukr(int kc, const double* ap, const double* bp, double* c, int ldc) {
  ukr_generic<double>(kc, ap, bp, c, ldc);
}
void ukr(int kc, const float* ap, const float* bp, float* c, int ldc) {
  ukr_generic<float>(kc, ap, bp, c, ldc);
}

#endif

// Edge variant: accumulate the full microtile into a scratch block, then add
// only the valid mr x nr corner into C. The padded lanes multiply packed
// zeros, so they never contaminate valid output.
template <class T>
void ukr_edge(int kc, const T* ap, const T* bp, T* c, int ldc, int mr,
              int nr) {
  constexpr int MR = Tile<T>::MR, NR = Tile<T>::NR;
  alignas(kMatrixAlign) T tmp[MR * NR];
  for (int x = 0; x < MR * NR; ++x) tmp[x] = T(0);
  ukr(kc, ap, bp, tmp, MR);
  for (int j = 0; j < nr; ++j) {
    T* cj = c + static_cast<std::size_t>(j) * ldc;
    for (int i = 0; i < mr; ++i) cj[i] += tmp[i + j * MR];
  }
}

// ---------------------------------------------------------------------------
// Packing. Apack: row-microtile panels, MR rows contiguous per k step,
// zero-padded to a whole microtile. Bpack: column panels, NR columns
// contiguous per k step, alpha folded in (so the A pack stays alpha-free and
// shareable across batched calls with different alphas).
// ---------------------------------------------------------------------------
template <class T>
struct Workspace {
  AlignedBufferT<T> apack, bpack;
};
template <class T>
Workspace<T>& workspace() {
  thread_local Workspace<T> w;
  return w;
}

// Shared-operand pack memoization for the *_batch entry points: remembers
// what the thread's apack/bpack currently hold. Consulted only inside a
// PackCacheScope. A key matches when the identical source region would be
// packed with identical geometry; [lo, hi) is the source view's address
// range, used to drop the cache when a batched task writes into it.
template <class T>
struct PackKey {
  const T* data = nullptr;
  const T* lo = nullptr;
  const T* hi = nullptr;
  int r0 = 0, c0 = 0, rows = 0, cols = 0, ld = 0;
  bool trans = false;
  T alpha = T(1);  // only meaningful for B packs
  bool valid = false;

  void set(ConstMatrixViewT<T> v, int r0_, int c0_, int rows_, int cols_,
           bool trans_, T alpha_) {
    data = v.data();
    lo = v.data();
    hi = v.data() + static_cast<std::size_t>(v.cols() - 1) * v.ld() + v.rows();
    r0 = r0_;
    c0 = c0_;
    rows = rows_;
    cols = cols_;
    ld = v.ld();
    trans = trans_;
    alpha = alpha_;
    valid = true;
  }
  [[nodiscard]] bool matches(ConstMatrixViewT<T> v, int r0_, int c0_,
                             int rows_, int cols_, bool trans_,
                             T alpha_) const {
    return valid && data == v.data() && ld == v.ld() && r0 == r0_ &&
           c0 == c0_ && rows == rows_ && cols == cols_ && trans == trans_ &&
           alpha == alpha_;
  }
};
template <class T>
struct PackCache {
  bool enabled = false;
  PackKey<T> a, b;
};
template <class T>
PackCache<T>& pack_cache() {
  thread_local PackCache<T> c;
  return c;
}

template <class T>
void invalidate_overlapping(ConstMatrixViewT<T> c) {
  PackCache<T>& pc = pack_cache<T>();
  if (!pc.enabled || c.empty()) return;
  const T* lo = c.data();
  const T* hi =
      c.data() + static_cast<std::size_t>(c.cols() - 1) * c.ld() + c.rows();
  auto overlaps = [&](const PackKey<T>& k) {
    return k.valid && k.lo < hi && lo < k.hi;
  };
  if (overlaps(pc.a)) pc.a.valid = false;
  if (overlaps(pc.b)) pc.b.valid = false;
}

/// Pack op(A)[i0:i0+mc, p0:p0+kcb] into MR-row microtile panels.
/// `trans` means the source is stored transposed (op reads a(p, i)).
template <class T>
void pack_a(ConstMatrixViewT<T> a, bool trans, int i0, int p0, int mc, int kcb,
            T* buf) {
  constexpr int MR = Tile<T>::MR;
  const int mtiles = (mc + MR - 1) / MR;
  for (int t = 0; t < mtiles; ++t) {
    const int ir = t * MR;
    const int mr = std::min(MR, mc - ir);
    T* dst = buf + static_cast<std::size_t>(t) * MR * kcb;
    if (!trans) {
      for (int p = 0; p < kcb; ++p) {
        const T* src = a.col(p0 + p) + i0 + ir;
        T* d = dst + static_cast<std::size_t>(p) * MR;
        for (int i = 0; i < mr; ++i) d[i] = src[i];
        for (int i = mr; i < MR; ++i) d[i] = T(0);
      }
    } else {
      // op(A)(i, p) = a(p, i): a source column holds one op-row, so walk the
      // contiguous source column per row i and scatter it across k slots.
      if (mr < MR) {
        for (int p = 0; p < kcb; ++p) {
          T* d = dst + static_cast<std::size_t>(p) * MR;
          for (int i = mr; i < MR; ++i) d[i] = T(0);
        }
      }
      for (int i = 0; i < mr; ++i) {
        const T* src = a.col(i0 + ir + i) + p0;
        T* d = dst + i;
        for (int p = 0; p < kcb; ++p)
          d[static_cast<std::size_t>(p) * MR] = src[p];
      }
    }
  }
}

/// Pack alpha * op(B)[p0:p0+kcb, j0:j0+nc] into NR-column panels.
template <class T>
void pack_b(T alpha, ConstMatrixViewT<T> b, bool trans, int p0, int j0,
            int kcb, int nc, T* buf) {
  constexpr int NR = Tile<T>::NR;
  const int ntiles = (nc + NR - 1) / NR;
  for (int t = 0; t < ntiles; ++t) {
    const int jr = t * NR;
    const int nr = std::min(NR, nc - jr);
    T* dst = buf + static_cast<std::size_t>(t) * NR * kcb;
    if (!trans) {
      if (nr < NR) {
        for (int p = 0; p < kcb; ++p) {
          T* d = dst + static_cast<std::size_t>(p) * NR;
          for (int j = nr; j < NR; ++j) d[j] = T(0);
        }
      }
      for (int j = 0; j < nr; ++j) {
        const T* src = b.col(j0 + jr + j) + p0;
        T* d = dst + j;
        for (int p = 0; p < kcb; ++p)
          d[static_cast<std::size_t>(p) * NR] = alpha * src[p];
      }
    } else {
      // op(B)(p, j) = b(j, p): source column p0 + p holds op-row p.
      for (int p = 0; p < kcb; ++p) {
        const T* src = b.col(p0 + p) + j0 + jr;
        T* d = dst + static_cast<std::size_t>(p) * NR;
        for (int j = 0; j < nr; ++j) d[j] = alpha * src[j];
        for (int j = nr; j < NR; ++j) d[j] = T(0);
      }
    }
  }
}

// Per-thread width-stable dispatch mode (detail::WidthStableScope). Kept
// thread_local because the solve bodies that open the scope execute on
// arbitrary pool workers — the mode must travel with the body, not with the
// caller that queued it. Shared by both precisions: a width-stable fp32
// solve keeps the same contract as the fp64 one.
thread_local bool width_stable_mode = false;

template <class T>
bool use_blocked_impl(int m, int n, int k) noexcept {
  constexpr int MR = Tile<T>::MR, NR = Tile<T>::NR;
  if (width_stable_mode) {
    // Width-stable: decide as if the gemm were NR columns wide, so the path
    // (and each column's summation order) cannot depend on how many columns
    // actually ride along. n == 0 still short-circuits in gemm itself.
    return m >= MR && k >= 8 && static_cast<long long>(m) * k * NR >= 16LL * 1024;
  }
  // Below one microtile in either output dimension, or with a trivial inner
  // dimension, packing costs more than it saves.
  if (m < MR || n < NR || k < 8) return false;
  // Tiny totals: the naive sweep finishes before the panels are even packed.
  return static_cast<long long>(m) * n * k >= 16LL * 1024;
}

template <class T>
void gemm_accum_blocked_impl(T alpha, ConstMatrixViewT<T> a, Trans ta,
                             ConstMatrixViewT<T> b, Trans tb,
                             MatrixViewT<T> c) {
  constexpr int MR = Tile<T>::MR, NR = Tile<T>::NR;
  const int m = c.rows(), n = c.cols();
  const int k = (ta == Trans::No) ? a.cols() : a.rows();
  const bool at = (ta == Trans::Yes), bt = (tb == Trans::Yes);

  Workspace<T>& w = workspace<T>();
  w.apack.resize(static_cast<std::size_t>(MC) * KC);
  w.bpack.resize(static_cast<std::size_t>(NC + NR) * KC);
  PackCache<T>& pc = pack_cache<T>();

  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int p0 = 0; p0 < k; p0 += KC) {
      const int kcb = std::min(KC, k - p0);
      if (!pc.enabled || !pc.b.matches(b, p0, jc, kcb, nc, bt, alpha)) {
        pack_b<T>(alpha, b, bt, p0, jc, kcb, nc, w.bpack.data());
        if (pc.enabled) pc.b.set(b, p0, jc, kcb, nc, bt, alpha);
      }
      for (int ic = 0; ic < m; ic += MC) {
        const int mc = std::min(MC, m - ic);
        if (!pc.enabled || !pc.a.matches(a, ic, p0, mc, kcb, at, T(1))) {
          pack_a<T>(a, at, ic, p0, mc, kcb, w.apack.data());
          if (pc.enabled) pc.a.set(a, ic, p0, mc, kcb, at, T(1));
        }
        // Macrokernel: stream B slivers against the resident A tile.
        for (int jr = 0; jr < nc; jr += NR) {
          const int nr = std::min(NR, nc - jr);
          const T* bp =
              w.bpack.data() + static_cast<std::size_t>(jr / NR) * NR * kcb;
          for (int ir = 0; ir < mc; ir += MR) {
            const int mr = std::min(MR, mc - ir);
            const T* ap =
                w.apack.data() + static_cast<std::size_t>(ir / MR) * MR * kcb;
            T* cp = c.col(jc + jr) + ic + ir;
            if (mr == MR && nr == NR) {
              ukr(kcb, ap, bp, cp, c.ld());
            } else {
              ukr_edge<T>(kcb, ap, bp, cp, c.ld(), mr, nr);
            }
          }
        }
      }
    }
  }
  if (pc.enabled) {
    // The buffers hold only the LAST packed tile; a multi-tile operand's key
    // must not survive into the next call.
    if (m > MC || k > KC) pc.a.valid = false;
    if (n > NC || k > KC) pc.b.valid = false;
    invalidate_overlapping<T>(c);
  }
}

template <class T>
void gemm_nocount_impl(T alpha, ConstMatrixViewT<T> a, Trans ta,
                       ConstMatrixViewT<T> b, Trans tb, T beta,
                       MatrixViewT<T> c) {
  const int m = c.rows(), n = c.cols();
  const int ka = (ta == Trans::No) ? a.cols() : a.rows();

  if (beta == T(0)) {
    for (int j = 0; j < n; ++j) std::fill_n(c.col(j), m, T(0));
  } else if (beta != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* cj = c.col(j);
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (m == 0 || n == 0 || ka == 0 || alpha == T(0)) return;

  if (use_blocked_impl<T>(m, n, ka)) {
    gemm_accum_blocked_impl<T>(alpha, a, ta, b, tb, c);
  } else {
    naive::gemm(alpha, a, ta, b, tb, 1.0, c);  // C pre-scaled above
    invalidate_overlapping<T>(c);
  }
}

}  // namespace

GemmTiling gemm_tiling() noexcept {
  return {Tile<double>::MR, Tile<double>::NR, MC, KC, NC, kIsa};
}

GemmTiling gemm_tiling_f32() noexcept {
  return {Tile<float>::MR, Tile<float>::NR, MC, KC, NC, kIsa};
}

namespace detail {

bool use_blocked(int m, int n, int k) noexcept {
  return use_blocked_impl<double>(m, n, k);
}

bool use_blocked_f32(int m, int n, int k) noexcept {
  return use_blocked_impl<float>(m, n, k);
}

void gemm_accum_blocked(double alpha, ConstMatrixView a, Trans ta,
                        ConstMatrixView b, Trans tb, MatrixView c) {
  gemm_accum_blocked_impl<double>(alpha, a, ta, b, tb, c);
}

void gemm_accum_blocked(double alpha, ConstMatrixViewF a, Trans ta,
                        ConstMatrixViewF b, Trans tb, MatrixViewF c) {
  gemm_accum_blocked_impl<float>(static_cast<float>(alpha), a, ta, b, tb, c);
}

void gemm_nocount(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
                  Trans tb, double beta, MatrixView c) {
  gemm_nocount_impl<double>(alpha, a, ta, b, tb, beta, c);
}

void gemm_nocount(double alpha, ConstMatrixViewF a, Trans ta,
                  ConstMatrixViewF b, Trans tb, double beta, MatrixViewF c) {
  gemm_nocount_impl<float>(static_cast<float>(alpha), a, ta, b, tb,
                           static_cast<float>(beta), c);
}

void invalidate_packs(ConstMatrixView written) {
  invalidate_overlapping<double>(written);
}

void invalidate_packs(ConstMatrixViewF written) {
  invalidate_overlapping<float>(written);
}

PackCacheScope::PackCacheScope() {
  pack_cache<double>().enabled = true;
  pack_cache<float>().enabled = true;
}

PackCacheScope::~PackCacheScope() {
  PackCache<double>& pd = pack_cache<double>();
  pd.enabled = false;
  pd.a.valid = pd.b.valid = false;
  PackCache<float>& pf = pack_cache<float>();
  pf.enabled = false;
  pf.a.valid = pf.b.valid = false;
}

WidthStableScope::WidthStableScope(bool enable) : prev_(width_stable_mode) {
  // enable == false leaves the thread's current mode untouched (the scope
  // degenerates to a no-op), so call sites can gate on an option bool.
  if (enable) width_stable_mode = true;
}

WidthStableScope::~WidthStableScope() { width_stable_mode = prev_; }

}  // namespace detail
}  // namespace h2
