#pragma once

#include <stdexcept>
#include <string>

namespace h2 {

/// Thrown when a factorization encounters an exactly singular pivot or a
/// non-SPD matrix where SPD is required.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace h2
