#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "linalg/aligned.hpp"
#include "util/rng.hpp"

namespace h2 {

class Matrix;

/// Non-owning read-only view of a column-major matrix with leading dimension.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }

  [[nodiscard]] double operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * ld_];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int ld() const { return ld_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] const double* col(int j) const {
    return data_ + static_cast<std::size_t>(j) * ld_;
  }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Sub-view of rows [i0, i0+m) x cols [j0, j0+n).
  [[nodiscard]] ConstMatrixView block(int i0, int j0, int m, int n) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_);
    return {data_ + static_cast<std::size_t>(i0) + static_cast<std::size_t>(j0) * ld_,
            m, n, ld_};
  }

 private:
  const double* data_ = nullptr;
  int rows_ = 0, cols_ = 0, ld_ = 1;
};

/// Non-owning mutable view; converts implicitly to ConstMatrixView.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }

  [[nodiscard]] double& operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * ld_];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int ld() const { return ld_; }
  [[nodiscard]] double* data() const { return data_; }
  [[nodiscard]] double* col(int j) const {
    return data_ + static_cast<std::size_t>(j) * ld_;
  }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] MatrixView block(int i0, int j0, int m, int n) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_);
    return {data_ + static_cast<std::size_t>(i0) + static_cast<std::size_t>(j0) * ld_,
            m, n, ld_};
  }

  operator ConstMatrixView() const { return {data_, rows_, cols_, ld_}; }  // NOLINT

 private:
  double* data_ = nullptr;
  int rows_ = 0, cols_ = 0, ld_ = 1;
};

/// Owning column-major dense matrix of doubles (leading dimension == rows).
/// The single value type used throughout the library; vectors are n x 1.
/// Storage is kMatrixAlign (64-byte) aligned — see aligned.hpp — so the
/// blocked kernels' packed panels and vector loads start on a cache line.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized r x c matrix.
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
    assert(rows >= 0 && cols >= 0);
  }
  /// Adopt `storage` (size must be rows * cols; its values are the matrix
  /// entries, column-major) — the recycling hook BlockPool::make builds on.
  Matrix(int rows, int cols, AlignedBuffer&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    assert(rows >= 0 && cols >= 0);
    assert(data_.size() ==
           static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  static Matrix identity(int n);
  /// Entries i.i.d. uniform in [-1, 1).
  static Matrix random(int rows, int cols, Rng& rng);
  /// Entries i.i.d. standard normal.
  static Matrix random_normal(int rows, int cols, Rng& rng);
  /// Deep copy of a view.
  static Matrix from(ConstMatrixView v);

  [[nodiscard]] double& operator()(int i, int j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * rows_];
  }
  [[nodiscard]] double operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * rows_];
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] MatrixView view() { return {data(), rows_, cols_, rows_}; }
  [[nodiscard]] ConstMatrixView view() const { return {data(), rows_, cols_, rows_}; }
  [[nodiscard]] MatrixView block(int i0, int j0, int m, int n) {
    return view().block(i0, j0, m, n);
  }
  [[nodiscard]] ConstMatrixView block(int i0, int j0, int m, int n) const {
    return view().block(i0, j0, m, n);
  }

  operator MatrixView() { return view(); }             // NOLINT
  operator ConstMatrixView() const { return view(); }  // NOLINT

  /// Discard contents and reshape to zero-filled r x c.
  void resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0);
  }
  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  [[nodiscard]] Matrix transposed() const;

  /// Move out the backing storage (capacity intact — what a pool recycles);
  /// the matrix is left empty (0 x 0). Rvalue-qualified so call sites spell
  /// the consumption: std::move(m).take_storage().
  [[nodiscard]] AlignedBuffer take_storage() && {
    rows_ = cols_ = 0;
    return std::move(data_);
  }

 private:
  int rows_ = 0, cols_ = 0;
  AlignedBuffer data_;
};

/// Copy `src` into `dst` (shapes must match).
void copy_into(ConstMatrixView src, MatrixView dst);

/// Horizontal concatenation [A0 A1 ...]; all blocks share the row count.
Matrix hconcat(const std::vector<ConstMatrixView>& blocks);
/// Vertical concatenation; all blocks share the column count.
Matrix vconcat(const std::vector<ConstMatrixView>& blocks);

}  // namespace h2
