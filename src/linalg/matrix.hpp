#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "linalg/aligned.hpp"
#include "util/rng.hpp"

namespace h2 {

template <class T>
class MatrixT;

/// Non-owning read-only view of a column-major matrix with leading dimension.
/// `T` is the element precision: double everywhere the library carries fp64
/// numerics, float on the mixed-precision factorization path. The unqualified
/// aliases (ConstMatrixView / MatrixView / Matrix) keep their historical fp64
/// meaning; the F-suffixed aliases are the fp32 siblings.
template <class T>
class ConstMatrixViewT {
 public:
  ConstMatrixViewT() = default;
  ConstMatrixViewT(const T* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }

  [[nodiscard]] T operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * ld_];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int ld() const { return ld_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] const T* col(int j) const {
    return data_ + static_cast<std::size_t>(j) * ld_;
  }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Sub-view of rows [i0, i0+m) x cols [j0, j0+n).
  [[nodiscard]] ConstMatrixViewT block(int i0, int j0, int m, int n) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_);
    return {data_ + static_cast<std::size_t>(i0) + static_cast<std::size_t>(j0) * ld_,
            m, n, ld_};
  }

 private:
  const T* data_ = nullptr;
  int rows_ = 0, cols_ = 0, ld_ = 1;
};

/// Non-owning mutable view; converts implicitly to ConstMatrixViewT<T>.
template <class T>
class MatrixViewT {
 public:
  MatrixViewT() = default;
  MatrixViewT(T* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }

  [[nodiscard]] T& operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * ld_];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int ld() const { return ld_; }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] T* col(int j) const {
    return data_ + static_cast<std::size_t>(j) * ld_;
  }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] MatrixViewT block(int i0, int j0, int m, int n) const {
    assert(i0 >= 0 && j0 >= 0 && i0 + m <= rows_ && j0 + n <= cols_);
    return {data_ + static_cast<std::size_t>(i0) + static_cast<std::size_t>(j0) * ld_,
            m, n, ld_};
  }

  operator ConstMatrixViewT<T>() const { return {data_, rows_, cols_, ld_}; }  // NOLINT

 private:
  T* data_ = nullptr;
  int rows_ = 0, cols_ = 0, ld_ = 1;
};

/// Owning column-major dense matrix (leading dimension == rows). The single
/// value type used throughout the library; vectors are n x 1. Storage is
/// kMatrixAlign (64-byte) aligned — see aligned.hpp — so the blocked kernels'
/// packed panels and vector loads start on a cache line.
template <class T>
class MatrixT {
 public:
  using value_type = T;
  using Buffer = AlignedBufferT<T>;

  MatrixT() = default;
  /// Zero-initialized r x c matrix.
  MatrixT(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              T(0)) {
    assert(rows >= 0 && cols >= 0);
  }
  /// Adopt `storage` (size must be rows * cols; its values are the matrix
  /// entries, column-major) — the recycling hook BlockPool::make builds on.
  MatrixT(int rows, int cols, Buffer&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    assert(rows >= 0 && cols >= 0);
    assert(data_.size() ==
           static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  static MatrixT identity(int n);
  /// Entries i.i.d. uniform in [-1, 1).
  static MatrixT random(int rows, int cols, Rng& rng);
  /// Entries i.i.d. standard normal.
  static MatrixT random_normal(int rows, int cols, Rng& rng);
  /// Deep copy of a view.
  static MatrixT from(ConstMatrixViewT<T> v);

  [[nodiscard]] T& operator()(int i, int j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * rows_];
  }
  [[nodiscard]] T operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) + static_cast<std::size_t>(j) * rows_];
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] MatrixViewT<T> view() { return {data(), rows_, cols_, rows_}; }
  [[nodiscard]] ConstMatrixViewT<T> view() const {
    return {data(), rows_, cols_, rows_};
  }
  [[nodiscard]] MatrixViewT<T> block(int i0, int j0, int m, int n) {
    return view().block(i0, j0, m, n);
  }
  [[nodiscard]] ConstMatrixViewT<T> block(int i0, int j0, int m, int n) const {
    return view().block(i0, j0, m, n);
  }

  operator MatrixViewT<T>() { return view(); }             // NOLINT
  operator ConstMatrixViewT<T>() const { return view(); }  // NOLINT

  /// Discard contents and reshape to zero-filled r x c.
  void resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                 T(0));
  }
  void set_zero() { std::fill(data_.begin(), data_.end(), T(0)); }

  [[nodiscard]] MatrixT transposed() const;

  /// Move out the backing storage (capacity intact — what a pool recycles);
  /// the matrix is left empty (0 x 0). Rvalue-qualified so call sites spell
  /// the consumption: std::move(m).take_storage().
  [[nodiscard]] Buffer take_storage() && {
    rows_ = cols_ = 0;
    return std::move(data_);
  }

 private:
  int rows_ = 0, cols_ = 0;
  Buffer data_;
};

extern template class ConstMatrixViewT<double>;
extern template class ConstMatrixViewT<float>;
extern template class MatrixViewT<double>;
extern template class MatrixViewT<float>;
extern template class MatrixT<double>;
extern template class MatrixT<float>;

/// The fp64 types — the historical names, used everywhere outside the
/// mixed-precision factorization path.
using ConstMatrixView = ConstMatrixViewT<double>;
using MatrixView = MatrixViewT<double>;
using Matrix = MatrixT<double>;
/// The fp32 siblings of the mixed-precision path.
using ConstMatrixViewF = ConstMatrixViewT<float>;
using MatrixViewF = MatrixViewT<float>;
using MatrixF = MatrixT<float>;

/// Copy `src` into `dst` (shapes must match). Concrete per-precision overloads
/// (not a template): template argument deduction would not consider the
/// implicit Matrix -> view conversions existing call sites rely on.
void copy_into(ConstMatrixView src, MatrixView dst);
void copy_into(ConstMatrixViewF src, MatrixViewF dst);

/// Precision conversion (shapes must match): fp64 -> fp32 rounds each entry
/// to nearest float; fp32 -> fp64 is exact.
void convert_into(ConstMatrixView src, MatrixViewF dst);
void convert_into(ConstMatrixViewF src, MatrixView dst);
/// Whole-matrix conversions built on convert_into.
[[nodiscard]] MatrixF to_f32(ConstMatrixView src);
[[nodiscard]] Matrix to_f64(ConstMatrixViewF src);
/// Round every entry through fp32 in place (x = double(float(x))): the
/// storage-rounding primitive backends without a native fp32 engine
/// (BLR/HODLR) use to emulate fp32 factor storage under Precision::F32.
void round_through_f32(MatrixView m);

/// Horizontal concatenation [A0 A1 ...]; all blocks share the row count.
Matrix hconcat(const std::vector<ConstMatrixView>& blocks);
MatrixF hconcat(const std::vector<ConstMatrixViewF>& blocks);
/// Vertical concatenation; all blocks share the column count.
Matrix vconcat(const std::vector<ConstMatrixView>& blocks);
MatrixF vconcat(const std::vector<ConstMatrixViewF>& blocks);

}  // namespace h2
