#pragma once

#include "linalg/matrix.hpp"

/// Level-1/2/3 dense kernels (BLAS substitute), column-major, exact flop
/// accounting via h2::flops. All routines are serial by design: parallelism
/// in this library lives at the block level (src/runtime), which keeps the
/// task-duration measurements used by the scheduling simulator honest.
namespace h2 {

enum class Trans : bool { No = false, Yes = true };
enum class Side : bool { Left, Right };
enum class UpLo : bool { Lower, Upper };
enum class Diag : bool { NonUnit, Unit };

/// C = alpha * op(A) * op(B) + beta * C. Each routine comes as a concrete
/// overload pair — fp64 and fp32 views with double scalar parameters (rounded
/// once at entry on the fp32 path) — instead of a template, so the implicit
/// Matrix -> view conversions at existing call sites keep working. Flop
/// accounting is precision-agnostic: a flop is a flop in fig10 regardless of
/// the word size it ran at.
void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b, Trans tb,
          double beta, MatrixView c);
void gemm(double alpha, ConstMatrixViewF a, Trans ta, ConstMatrixViewF b,
          Trans tb, double beta, MatrixViewF c);

/// Convenience: returns op(A) * op(B).
Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans ta = Trans::No,
              Trans tb = Trans::No);
MatrixF matmul(ConstMatrixViewF a, ConstMatrixViewF b, Trans ta = Trans::No,
               Trans tb = Trans::No);

/// Triangular solve, B <- alpha * op(A)^-1 * B (Left) or alpha * B * op(A)^-1
/// (Right). A is the triangular factor (uplo selects which triangle is read;
/// Diag::Unit means an implicit unit diagonal).
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixViewF a, MatrixViewF b);

/// Y += alpha * X (element-wise over equal-shape views).
void axpy(double alpha, ConstMatrixView x, MatrixView y);
void axpy(double alpha, ConstMatrixViewF x, MatrixViewF y);

/// X *= alpha.
void scale(double alpha, MatrixView x);
void scale(double alpha, MatrixViewF x);

/// A += alpha * I (on the leading square part).
void add_identity(MatrixView a, double alpha);
void add_identity(MatrixViewF a, double alpha);

}  // namespace h2
