#include "linalg/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/flops.hpp"

namespace h2 {

Svd jacobi_svd(ConstMatrixView a) {
  // Work on the tall orientation; swap U/V at the end if we transposed.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? Matrix::from(a).transposed() : Matrix::from(a);
  const int m = w.rows(), n = w.cols();
  Matrix v = Matrix::identity(n);

  const double tol = 1e-14;
  const int max_sweeps = 42;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = w.data() + static_cast<std::size_t>(p) * m;
        const double* cq = w.data() + static_cast<std::size_t>(q) * m;
        for (int i = 0; i < m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) continue;
        rotated = true;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        double* wp = w.data() + static_cast<std::size_t>(p) * m;
        double* wq = w.data() + static_cast<std::size_t>(q) * m;
        for (int i = 0; i < m; ++i) {
          const double x = wp[i], y = wq[i];
          wp[i] = cs * x - sn * y;
          wq[i] = sn * x + cs * y;
        }
        double* vp = v.data() + static_cast<std::size_t>(p) * n;
        double* vq = v.data() + static_cast<std::size_t>(q) * n;
        for (int i = 0; i < n; ++i) {
          const double x = vp[i], y = vq[i];
          vp[i] = cs * x - sn * y;
          vq[i] = sn * x + cs * y;
        }
      }
    }
    flops::add(6ull * m * n * n / 2);
    if (!rotated) break;
  }

  Svd out;
  out.sigma.resize(n);
  out.u = Matrix(m, n);
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    const double* cj = w.data() + static_cast<std::size_t>(j) * m;
    for (int i = 0; i < m; ++i) s += cj[i] * cj[i];
    s = std::sqrt(s);
    out.sigma[j] = s;
    if (s > 0.0) {
      const double inv = 1.0 / s;
      for (int i = 0; i < m; ++i) out.u(i, j) = cj[i] * inv;
    }
  }
  // Sort descending.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return out.sigma[x] > out.sigma[y]; });
  Svd sorted;
  sorted.sigma.resize(n);
  sorted.u = Matrix(m, n);
  sorted.v = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    const int src = order[j];
    sorted.sigma[j] = out.sigma[src];
    for (int i = 0; i < m; ++i) sorted.u(i, j) = out.u(i, src);
    for (int i = 0; i < n; ++i) sorted.v(i, j) = v(i, src);
  }
  if (transposed) std::swap(sorted.u, sorted.v);
  return sorted;
}

int svd_truncation_rank(const std::vector<double>& sigma, double rel_tol,
                        int max_rank) {
  if (sigma.empty()) return 0;
  const double cut = rel_tol > 0.0 ? rel_tol * sigma.front() : 0.0;
  int r = 0;
  for (const double s : sigma) {
    if (s <= cut || s == 0.0) break;
    ++r;
  }
  if (max_rank >= 0 && r > max_rank) r = max_rank;
  return r;
}

}  // namespace h2
