#pragma once

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace h2 {

/// In-place LU with partial pivoting (LAPACK getrf layout: unit-lower L below
/// the diagonal, U on and above; piv[k] = row swapped with row k at step k).
/// Throws NumericalError on an exactly zero pivot. The fp32 overload shares
/// the pivot vector type — indices carry no precision.
void getrf(MatrixView a, std::vector<int>& piv);
void getrf(MatrixViewF a, std::vector<int>& piv);

/// Solve op(LU) X = B in place given getrf output.
void getrs(ConstMatrixView lu, const std::vector<int>& piv, MatrixView b,
           Trans trans = Trans::No);
void getrs(ConstMatrixViewF lu, const std::vector<int>& piv, MatrixViewF b,
           Trans trans = Trans::No);

/// Apply (forward=true) or undo the getrf row interchanges to B's rows.
void laswp(MatrixView b, const std::vector<int>& piv, bool forward);
void laswp(MatrixViewF b, const std::vector<int>& piv, bool forward);

/// One-shot dense solve: returns X with A X = B (A and B by value; A is
/// factorized in place internally).
Matrix lu_solve(Matrix a, Matrix b);

/// log|det A| and optionally the sign, from getrf factors. Always accumulated
/// in double, whichever precision the factors are stored at.
double lu_logabsdet(ConstMatrixView lu, const std::vector<int>& piv,
                    int* sign = nullptr);
double lu_logabsdet(ConstMatrixViewF lu, const std::vector<int>& piv,
                    int* sign = nullptr);

}  // namespace h2
