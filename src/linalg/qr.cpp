#include "linalg/qr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <type_traits>
#include <utility>

#include "linalg/gemm_kernel.hpp"
#include "util/flops.hpp"

namespace h2 {
namespace {

/// Blocked QR panel width: reflectors are accumulated into a compact-WY
/// representation (V unit-lower trapezoid, T upper triangular) and the
/// trailing matrix is updated with three gemms instead of 2*kQrNb rank-1
/// sweeps.
constexpr int kQrNb = 32;

/// Generate an elementary reflector H = I - tau v v^T annihilating x(1:).
/// x(0) is replaced by beta, x(1:) by the reflector tail (v(0) == 1 implicit).
template <class T>
T make_reflector(T* x, int n) {
  if (n <= 1) return T(0);
  T xnorm2 = T(0);
  for (int i = 1; i < n; ++i) xnorm2 += x[i] * x[i];
  if (xnorm2 == T(0)) return T(0);
  const T alpha = x[0];
  T beta = std::sqrt(alpha * alpha + xnorm2);
  if (alpha > T(0)) beta = -beta;
  const T tau = (beta - alpha) / beta;
  const T inv = T(1) / (alpha - beta);
  for (int i = 1; i < n; ++i) x[i] *= inv;
  x[0] = beta;
  return tau;
}

/// Apply H = I - tau v v^T (v packed in col[k:], v0 implicit 1) to columns
/// [j0, j1) of `a`, restricted to rows [k, m).
template <class T>
void apply_reflector_left(MatrixViewT<T> a, int k, const T* v, T tau, int j0,
                          int j1) {
  if (tau == T(0)) return;
  const int m = a.rows();
  for (int j = j0; j < j1; ++j) {
    T* cj = a.col(j);
    T w = cj[k];
    for (int i = k + 1; i < m; ++i) w += v[i] * cj[i];
    w *= tau;
    cj[k] -= w;
    for (int i = k + 1; i < m; ++i) cj[i] -= w * v[i];
  }
}

/// Reusable per-thread scratch for the compact-WY update, so qr_batch calls
/// don't churn the allocator once the shapes repeat across leaf tasks. One
/// instance per element precision (the panels cannot be shared).
template <class T>
struct QrWorkspace {
  MatrixT<T> v;    ///< explicit reflector panel (unit diag, zeros above)
  MatrixT<T> t;    ///< compact-WY triangular factor
  MatrixT<T> vtv;  ///< V^T V (what larft consumes)
  MatrixT<T> w;    ///< V^T C staging block
};
template <class T>
QrWorkspace<T>& qr_workspace() {
  thread_local QrWorkspace<T> ws;
  return ws;
}

template <class T>
void householder_qr_impl(MatrixViewT<T> a, std::vector<T>& tau) {
  const int m = a.rows(), n = a.cols();
  const int k = m < n ? m : n;
  tau.assign(k, T(0));
  if (k <= kQrNb) {
    for (int p = 0; p < k; ++p) {
      T* cp = a.col(p);
      tau[p] = make_reflector(cp + p, m - p);
      apply_reflector_left<T>(a, p, cp, tau[p], p + 1, n);
    }
    detail::invalidate_packs(ConstMatrixViewT<T>(a));
    flops::add(flops::geqrf(m, n));
    return;
  }

  QrWorkspace<T>& ws = qr_workspace<T>();
  for (int p0 = 0; p0 < k; p0 += kQrNb) {
    const int pb = std::min(kQrNb, k - p0);
    // Factor the panel with the unblocked loop, applying each reflector only
    // within the panel's own columns.
    for (int p = p0; p < p0 + pb; ++p) {
      T* cp = a.col(p);
      tau[p] = make_reflector(cp + p, m - p);
      apply_reflector_left<T>(a, p, cp, tau[p], p + 1, p0 + pb);
    }
    const int rest = n - p0 - pb;
    if (rest <= 0) continue;

    // Materialize V (unit lower trapezoid of the panel) so the trailing
    // update is expressible as plain gemms.
    const int mm = m - p0;
    ws.v.resize(mm, pb);
    for (int j = 0; j < pb; ++j) {
      ws.v(j, j) = T(1);
      const T* cj = a.col(p0 + j);
      for (int i = j + 1; i < mm; ++i) ws.v(i, j) = cj[p0 + i];
    }
    detail::invalidate_packs(
        ConstMatrixViewT<T>(ws.v));  // scratch refilled in place

    // larft: T(0:j, j) = -tau_j * T(0:j, 0:j) * (V^T V)(0:j, j). Because
    // v_j vanishes above row j, the full dot products in V^T V are exactly
    // the partial sums larft needs.
    ws.vtv.resize(pb, pb);
    detail::gemm_nocount(1.0, ws.v, Trans::Yes, ws.v, Trans::No, 0.0, ws.vtv);
    ws.t.resize(pb, pb);
    for (int j = 0; j < pb; ++j) {
      const T tj = tau[p0 + j];
      for (int i = 0; i < j; ++i) {
        T s = T(0);
        for (int l = i; l < j; ++l) s += ws.t(i, l) * ws.vtv(l, j);
        ws.t(i, j) = -tj * s;
      }
      ws.t(j, j) = tj;
    }

    // Trailing update C = (I - V T^T V^T) C in three steps:
    // W = V^T C; W = T^T W (in-place triangular multiply); C -= V W.
    MatrixViewT<T> c = a.block(p0, p0 + pb, mm, rest);
    ws.w.resize(pb, rest);
    detail::gemm_nocount(1.0, ws.v, Trans::Yes, c, Trans::No, 0.0, ws.w);
    for (int jc = 0; jc < rest; ++jc) {
      T* wc = ws.w.view().col(jc);
      for (int i = pb - 1; i >= 0; --i) {
        T s = ws.t(i, i) * wc[i];
        for (int l = 0; l < i; ++l) s += ws.t(l, i) * wc[l];
        wc[i] = s;
      }
    }
    detail::invalidate_packs(
        ConstMatrixViewT<T>(ws.w));  // rewritten in place after the gemm
    detail::gemm_nocount(-1.0, ws.v, Trans::No, ws.w, Trans::No, 1.0, c);
  }
  detail::invalidate_packs(ConstMatrixViewT<T>(a));
  flops::add(flops::geqrf(m, n));
}

template <class T>
MatrixT<T> form_q_impl(ConstMatrixViewT<T> qr, const std::vector<T>& tau,
                       int ncols, int nref) {
  const int m = qr.rows();
  if (nref < 0) nref = static_cast<int>(tau.size());
  assert(ncols <= m);
  MatrixT<T> q(m, ncols);
  for (int j = 0; j < ncols && j < m; ++j) q(j, j) = T(1);
  MatrixViewT<T> qv = q;
  for (int p = nref - 1; p >= 0; --p)
    apply_reflector_left<T>(qv, p, qr.col(p), tau[p], 0, ncols);
  flops::add(2ull * m * ncols * static_cast<std::uint64_t>(nref));
  return q;
}

template <class T>
MatrixT<T> extract_r_impl(ConstMatrixViewT<T> qr) {
  const int m = qr.rows(), n = qr.cols();
  const int k = m < n ? m : n;
  MatrixT<T> r(k, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j && i < k; ++i) r(i, j) = qr(i, j);
  return r;
}

template <class T>
PivotedQrT<T> pivoted_qr_impl(ConstMatrixViewT<T> a, double rel_tol,
                              int max_rank) {
  const int m = a.rows(), n = a.cols();
  const int kmax0 = m < n ? m : n;
  const int kmax = (max_rank >= 0 && max_rank < kmax0) ? max_rank : kmax0;

  MatrixT<T> work = MatrixT<T>::from(a);
  MatrixViewT<T> w = work;
  std::vector<T> tau;
  tau.reserve(kmax);
  PivotedQrT<T> out;
  out.jpvt.resize(n);
  for (int j = 0; j < n; ++j) out.jpvt[j] = j;

  // Column norms (squared), with the classic downdate + recompute guard.
  std::vector<T> norm2(n), norm2_ref(n);
  T init_max = T(0);
  for (int j = 0; j < n; ++j) {
    T s = T(0);
    const T* cj = w.col(j);
    for (int i = 0; i < m; ++i) s += cj[i] * cj[i];
    norm2[j] = norm2_ref[j] = s;
    init_max = std::max(init_max, s);
  }
  flops::add(2ull * m * n);
  const T stop2 = (rel_tol > 0.0)
                      ? static_cast<T>(rel_tol * rel_tol) * init_max
                      : T(-1);

  int rank = 0;
  for (int p = 0; p < kmax; ++p) {
    // Pick the remaining column with the largest norm.
    int jmax = p;
    T vmax = norm2[p];
    for (int j = p + 1; j < n; ++j)
      if (norm2[j] > vmax) {
        vmax = norm2[j];
        jmax = j;
      }
    if (vmax <= stop2 || vmax == T(0)) break;
    if (jmax != p) {
      for (int i = 0; i < m; ++i) std::swap(w(i, p), w(i, jmax));
      std::swap(norm2[p], norm2[jmax]);
      std::swap(norm2_ref[p], norm2_ref[jmax]);
      std::swap(out.jpvt[p], out.jpvt[jmax]);
    }
    T* cp = w.col(p);
    const T t = make_reflector(cp + p, m - p);
    tau.push_back(t);
    apply_reflector_left<T>(w, p, cp, t, p + 1, n);
    ++rank;
    // Downdate remaining column norms; recompute on cancellation. The guard
    // threshold scales with the precision's epsilon, so fp32 recomputes as
    // eagerly (relative to its own noise floor) as fp64 does.
    constexpr T kGuard = std::is_same_v<T, float> ? T(1e-5) : T(1e-12);
    for (int j = p + 1; j < n; ++j) {
      const T wp = w(p, j);
      norm2[j] -= wp * wp;
      if (norm2[j] < kGuard * norm2_ref[j] || norm2[j] < T(0)) {
        T s = T(0);
        const T* cj = w.col(j);
        for (int i = p + 1; i < m; ++i) s += cj[i] * cj[i];
        norm2[j] = norm2_ref[j] = s;
      }
    }
  }
  flops::add(flops::geqrf(m, n));

  out.rank = rank;
  out.q = form_q_impl<T>(w, tau, m, rank);
  out.r = MatrixT<T>(rank, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < rank && i <= j; ++i) out.r(i, j) = w(i, j);
  // R is upper-trapezoidal in the pivoted ordering; rows beyond `rank` are
  // truncated (that is the low-rank approximation error).
  return out;
}

}  // namespace

void householder_qr(MatrixView a, std::vector<double>& tau) {
  householder_qr_impl<double>(a, tau);
}
void householder_qr(MatrixViewF a, std::vector<float>& tau) {
  householder_qr_impl<float>(a, tau);
}

Matrix form_q(ConstMatrixView qr, const std::vector<double>& tau, int ncols,
              int nref) {
  return form_q_impl<double>(qr, tau, ncols, nref);
}
MatrixF form_q(ConstMatrixViewF qr, const std::vector<float>& tau, int ncols,
               int nref) {
  return form_q_impl<float>(qr, tau, ncols, nref);
}

Matrix extract_r(ConstMatrixView qr) { return extract_r_impl<double>(qr); }
MatrixF extract_r(ConstMatrixViewF qr) { return extract_r_impl<float>(qr); }

PivotedQr pivoted_qr(ConstMatrixView a, double rel_tol, int max_rank) {
  return pivoted_qr_impl<double>(a, rel_tol, max_rank);
}
PivotedQrF pivoted_qr(ConstMatrixViewF a, double rel_tol, int max_rank) {
  return pivoted_qr_impl<float>(a, rel_tol, max_rank);
}

}  // namespace h2
