#include "linalg/qr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "linalg/gemm_kernel.hpp"
#include "util/flops.hpp"

namespace h2 {
namespace {

/// Blocked QR panel width: reflectors are accumulated into a compact-WY
/// representation (V unit-lower trapezoid, T upper triangular) and the
/// trailing matrix is updated with three gemms instead of 2*kQrNb rank-1
/// sweeps.
constexpr int kQrNb = 32;

/// Generate an elementary reflector H = I - tau v v^T annihilating x(1:).
/// x(0) is replaced by beta, x(1:) by the reflector tail (v(0) == 1 implicit).
double make_reflector(double* x, int n) {
  if (n <= 1) return 0.0;
  double xnorm2 = 0.0;
  for (int i = 1; i < n; ++i) xnorm2 += x[i] * x[i];
  if (xnorm2 == 0.0) return 0.0;
  const double alpha = x[0];
  double beta = std::sqrt(alpha * alpha + xnorm2);
  if (alpha > 0.0) beta = -beta;
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (int i = 1; i < n; ++i) x[i] *= inv;
  x[0] = beta;
  return tau;
}

/// Apply H = I - tau v v^T (v packed in col[k:], v0 implicit 1) to columns
/// [j0, j1) of `a`, restricted to rows [k, m).
void apply_reflector_left(MatrixView a, int k, const double* v, double tau,
                          int j0, int j1) {
  if (tau == 0.0) return;
  const int m = a.rows();
  for (int j = j0; j < j1; ++j) {
    double* cj = a.col(j);
    double w = cj[k];
    for (int i = k + 1; i < m; ++i) w += v[i] * cj[i];
    w *= tau;
    cj[k] -= w;
    for (int i = k + 1; i < m; ++i) cj[i] -= w * v[i];
  }
}

/// Reusable per-thread scratch for the compact-WY update, so qr_batch calls
/// don't churn the allocator once the shapes repeat across leaf tasks.
struct QrWorkspace {
  Matrix v;    ///< explicit reflector panel (unit diag, zeros above)
  Matrix t;    ///< compact-WY triangular factor
  Matrix vtv;  ///< V^T V (what larft consumes)
  Matrix w;    ///< V^T C staging block
};
QrWorkspace& qr_workspace() {
  thread_local QrWorkspace ws;
  return ws;
}

}  // namespace

void householder_qr(MatrixView a, std::vector<double>& tau) {
  const int m = a.rows(), n = a.cols();
  const int k = m < n ? m : n;
  tau.assign(k, 0.0);
  if (k <= kQrNb) {
    for (int p = 0; p < k; ++p) {
      double* cp = a.col(p);
      tau[p] = make_reflector(cp + p, m - p);
      apply_reflector_left(a, p, cp, tau[p], p + 1, n);
    }
    detail::invalidate_packs(a);
    flops::add(flops::geqrf(m, n));
    return;
  }

  QrWorkspace& ws = qr_workspace();
  for (int p0 = 0; p0 < k; p0 += kQrNb) {
    const int pb = std::min(kQrNb, k - p0);
    // Factor the panel with the unblocked loop, applying each reflector only
    // within the panel's own columns.
    for (int p = p0; p < p0 + pb; ++p) {
      double* cp = a.col(p);
      tau[p] = make_reflector(cp + p, m - p);
      apply_reflector_left(a, p, cp, tau[p], p + 1, p0 + pb);
    }
    const int rest = n - p0 - pb;
    if (rest <= 0) continue;

    // Materialize V (unit lower trapezoid of the panel) so the trailing
    // update is expressible as plain gemms.
    const int mm = m - p0;
    ws.v.resize(mm, pb);
    for (int j = 0; j < pb; ++j) {
      ws.v(j, j) = 1.0;
      const double* cj = a.col(p0 + j);
      for (int i = j + 1; i < mm; ++i) ws.v(i, j) = cj[p0 + i];
    }
    detail::invalidate_packs(ws.v);  // scratch refilled in place

    // larft: T(0:j, j) = -tau_j * T(0:j, 0:j) * (V^T V)(0:j, j). Because
    // v_j vanishes above row j, the full dot products in V^T V are exactly
    // the partial sums larft needs.
    ws.vtv.resize(pb, pb);
    detail::gemm_nocount(1.0, ws.v, Trans::Yes, ws.v, Trans::No, 0.0, ws.vtv);
    ws.t.resize(pb, pb);
    for (int j = 0; j < pb; ++j) {
      const double tj = tau[p0 + j];
      for (int i = 0; i < j; ++i) {
        double s = 0.0;
        for (int l = i; l < j; ++l) s += ws.t(i, l) * ws.vtv(l, j);
        ws.t(i, j) = -tj * s;
      }
      ws.t(j, j) = tj;
    }

    // Trailing update C = (I - V T^T V^T) C in three steps:
    // W = V^T C; W = T^T W (in-place triangular multiply); C -= V W.
    MatrixView c = a.block(p0, p0 + pb, mm, rest);
    ws.w.resize(pb, rest);
    detail::gemm_nocount(1.0, ws.v, Trans::Yes, c, Trans::No, 0.0, ws.w);
    for (int jc = 0; jc < rest; ++jc) {
      double* wc = ws.w.view().col(jc);
      for (int i = pb - 1; i >= 0; --i) {
        double s = ws.t(i, i) * wc[i];
        for (int l = 0; l < i; ++l) s += ws.t(l, i) * wc[l];
        wc[i] = s;
      }
    }
    detail::invalidate_packs(ws.w);  // rewritten in place after the gemm
    detail::gemm_nocount(-1.0, ws.v, Trans::No, ws.w, Trans::No, 1.0, c);
  }
  detail::invalidate_packs(a);
  flops::add(flops::geqrf(m, n));
}

Matrix form_q(ConstMatrixView qr, const std::vector<double>& tau, int ncols,
              int nref) {
  const int m = qr.rows();
  if (nref < 0) nref = static_cast<int>(tau.size());
  assert(ncols <= m);
  Matrix q(m, ncols);
  for (int j = 0; j < ncols && j < m; ++j) q(j, j) = 1.0;
  MatrixView qv = q;
  for (int p = nref - 1; p >= 0; --p)
    apply_reflector_left(qv, p, qr.col(p), tau[p], 0, ncols);
  flops::add(2ull * m * ncols * static_cast<std::uint64_t>(nref));
  return q;
}

Matrix extract_r(ConstMatrixView qr) {
  const int m = qr.rows(), n = qr.cols();
  const int k = m < n ? m : n;
  Matrix r(k, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j && i < k; ++i) r(i, j) = qr(i, j);
  return r;
}

PivotedQr pivoted_qr(ConstMatrixView a, double rel_tol, int max_rank) {
  const int m = a.rows(), n = a.cols();
  const int kmax0 = m < n ? m : n;
  const int kmax = (max_rank >= 0 && max_rank < kmax0) ? max_rank : kmax0;

  Matrix work = Matrix::from(a);
  MatrixView w = work;
  std::vector<double> tau;
  tau.reserve(kmax);
  PivotedQr out;
  out.jpvt.resize(n);
  for (int j = 0; j < n; ++j) out.jpvt[j] = j;

  // Column norms (squared), with the classic downdate + recompute guard.
  std::vector<double> norm2(n), norm2_ref(n);
  double init_max = 0.0;
  for (int j = 0; j < n; ++j) {
    double s = 0.0;
    const double* cj = w.col(j);
    for (int i = 0; i < m; ++i) s += cj[i] * cj[i];
    norm2[j] = norm2_ref[j] = s;
    init_max = std::max(init_max, s);
  }
  flops::add(2ull * m * n);
  const double stop2 =
      (rel_tol > 0.0) ? rel_tol * rel_tol * init_max : -1.0;

  int rank = 0;
  for (int p = 0; p < kmax; ++p) {
    // Pick the remaining column with the largest norm.
    int jmax = p;
    double vmax = norm2[p];
    for (int j = p + 1; j < n; ++j)
      if (norm2[j] > vmax) {
        vmax = norm2[j];
        jmax = j;
      }
    if (vmax <= stop2 || vmax == 0.0) break;
    if (jmax != p) {
      for (int i = 0; i < m; ++i) std::swap(w(i, p), w(i, jmax));
      std::swap(norm2[p], norm2[jmax]);
      std::swap(norm2_ref[p], norm2_ref[jmax]);
      std::swap(out.jpvt[p], out.jpvt[jmax]);
    }
    double* cp = w.col(p);
    const double t = make_reflector(cp + p, m - p);
    tau.push_back(t);
    apply_reflector_left(w, p, cp, t, p + 1, n);
    ++rank;
    // Downdate remaining column norms; recompute on cancellation.
    for (int j = p + 1; j < n; ++j) {
      const double wp = w(p, j);
      norm2[j] -= wp * wp;
      if (norm2[j] < 1e-12 * norm2_ref[j] || norm2[j] < 0.0) {
        double s = 0.0;
        const double* cj = w.col(j);
        for (int i = p + 1; i < m; ++i) s += cj[i] * cj[i];
        norm2[j] = norm2_ref[j] = s;
      }
    }
  }
  flops::add(flops::geqrf(m, n));

  out.rank = rank;
  out.q = form_q(w, tau, m, rank);
  out.r = Matrix(rank, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < rank && i <= j; ++i) out.r(i, j) = w(i, j);
  // R is upper-trapezoidal in the pivoted ordering; rows beyond `rank` are
  // truncated (that is the low-rank approximation error).
  return out;
}

}  // namespace h2
