#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace h2 {

/// Minimal alignment every Matrix / BlockPool buffer and every packed panel
/// is allocated at. 64 bytes = one x86 cache line and the widest vector
/// register (AVX-512), so the gemm microkernel can assume aligned loads from
/// packed panels and matrix storage never straddles a line at element 0.
inline constexpr std::size_t kMatrixAlign = 64;

/// std::vector-compatible allocator handing out kMatrixAlign-aligned blocks
/// through the aligned operator new (C++17). Stateless, so any two instances
/// compare equal and buffers can move freely between containers.
template <class T, std::size_t Align = kMatrixAlign>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Backing-storage type for MatrixT<T> and BlockPool at either precision: a
/// vector whose data() is always kMatrixAlign-aligned.
template <class T>
using AlignedBufferT = std::vector<T, AlignedAllocator<T>>;

/// The fp64 storage type (the historical name — most of the library's block
/// arithmetic runs at this precision).
using AlignedBuffer = AlignedBufferT<double>;
/// The fp32 storage type of the mixed-precision factorization path.
using AlignedBufferF = AlignedBufferT<float>;

}  // namespace h2
