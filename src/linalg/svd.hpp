#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace h2 {

/// Thin SVD A = U diag(sigma) V^T with singular values sorted descending.
struct Svd {
  Matrix u;                   ///< m x k
  std::vector<double> sigma;  ///< k, descending
  Matrix v;                   ///< n x k
};

/// One-sided Jacobi SVD; intended for the small skeleton/recompression
/// matrices (dimensions up to a few hundred).
Svd jacobi_svd(ConstMatrixView a);

/// Number of singular values above rel_tol * sigma[0], optionally capped.
int svd_truncation_rank(const std::vector<double>& sigma, double rel_tol,
                        int max_rank = -1);

}  // namespace h2
