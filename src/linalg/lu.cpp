#include "linalg/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "linalg/error.hpp"
#include "linalg/gemm_kernel.hpp"
#include "linalg/naive.hpp"
#include "util/flops.hpp"

namespace h2 {
namespace {

/// Blocked LU panels the columns in kGetrfNb steps: pivoted unblocked factor
/// of the tall panel, then one unit-lower trsm for U12 and one gemm for the
/// trailing submatrix (the cubic term rides the packed microkernel).
constexpr int kGetrfNb = 64;

/// The pre-blocked right-looking loop; `piv` entries are view-relative
/// absolute row indices (the same convention getrf always exposed). No flop
/// accounting — the public entry reports the analytic count once.
template <class T>
void getrf_unblocked(MatrixViewT<T> a, std::vector<int>& piv) {
  const int m = a.rows(), n = a.cols();
  const int k = m < n ? m : n;
  piv.assign(k, 0);
  for (int p = 0; p < k; ++p) {
    // Partial pivoting: largest magnitude in column p at/below the diagonal.
    int imax = p;
    T vmax = std::fabs(a(p, p));
    for (int i = p + 1; i < m; ++i) {
      const T v = std::fabs(a(i, p));
      if (v > vmax) {
        vmax = v;
        imax = i;
      }
    }
    piv[p] = imax;
    if (vmax == T(0)) throw NumericalError("getrf: exactly singular pivot");
    if (imax != p)
      for (int j = 0; j < n; ++j) std::swap(a(p, j), a(imax, j));

    const T inv = T(1) / a(p, p);
    T* cp = a.col(p);
    for (int i = p + 1; i < m; ++i) cp[i] *= inv;
    // Rank-1 trailing update, column by column (stride-1).
    for (int j = p + 1; j < n; ++j) {
      const T upj = a(p, j);
      if (upj == T(0)) continue;
      T* cj = a.col(j);
      for (int i = p + 1; i < m; ++i) cj[i] -= cp[i] * upj;
    }
  }
}

template <class T>
void getrf_impl(MatrixViewT<T> a, std::vector<int>& piv) {
  const int m = a.rows(), n = a.cols();
  const int k = m < n ? m : n;
  if (k <= kGetrfNb) {
    getrf_unblocked<T>(a, piv);
    detail::invalidate_packs(ConstMatrixViewT<T>(a));
    flops::add(flops::getrf(m, n));
    return;
  }

  piv.assign(k, 0);
  std::vector<int> ppiv;
  for (int p0 = 0; p0 < k; p0 += kGetrfNb) {
    const int pb = std::min(kGetrfNb, k - p0);
    getrf_unblocked<T>(a.block(p0, p0, m - p0, pb), ppiv);
    // Merge panel-local pivots into absolute indices and mirror the panel's
    // row swaps onto the columns outside it.
    for (int i = 0; i < pb; ++i) {
      piv[p0 + i] = p0 + ppiv[i];
      const int r1 = p0 + i, r2 = p0 + ppiv[i];
      if (r1 == r2) continue;
      for (int j = 0; j < p0; ++j) std::swap(a(r1, j), a(r2, j));
      for (int j = p0 + pb; j < n; ++j) std::swap(a(r1, j), a(r2, j));
    }
    const int rest = n - p0 - pb;
    if (rest > 0) {
      naive::trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0,
                  a.block(p0, p0, pb, pb), a.block(p0, p0 + pb, pb, rest));
      const int mrest = m - p0 - pb;
      if (mrest > 0) {
        detail::gemm_nocount(-1.0, a.block(p0 + pb, p0, mrest, pb), Trans::No,
                             a.block(p0, p0 + pb, pb, rest), Trans::No, 1.0,
                             a.block(p0 + pb, p0 + pb, mrest, rest));
      }
    }
  }
  detail::invalidate_packs(ConstMatrixViewT<T>(a));
  flops::add(flops::getrf(m, n));
}

template <class T>
void laswp_impl(MatrixViewT<T> b, const std::vector<int>& piv, bool forward) {
  const int k = static_cast<int>(piv.size());
  const int n = b.cols();
  auto swap_rows = [&](int r1, int r2) {
    if (r1 == r2) return;
    for (int j = 0; j < n; ++j) std::swap(b(r1, j), b(r2, j));
  };
  if (forward) {
    for (int p = 0; p < k; ++p) swap_rows(p, piv[p]);
  } else {
    for (int p = k - 1; p >= 0; --p) swap_rows(p, piv[p]);
  }
}

template <class T>
void getrs_impl(ConstMatrixViewT<T> lu, const std::vector<int>& piv,
                MatrixViewT<T> b, Trans trans) {
  assert(lu.rows() == lu.cols() && lu.rows() == b.rows());
  if (trans == Trans::No) {
    // A = P^T L U  =>  x = U^-1 L^-1 P b.
    laswp(b, piv, /*forward=*/true);
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, lu, b);
    trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, lu, b);
  } else {
    // A^T = U^T L^T P  =>  x = P^T L^-T U^-T b.
    trsm(Side::Left, UpLo::Upper, Trans::Yes, Diag::NonUnit, 1.0, lu, b);
    trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::Unit, 1.0, lu, b);
    laswp(b, piv, /*forward=*/false);
  }
}

template <class T>
double lu_logabsdet_impl(ConstMatrixViewT<T> lu, const std::vector<int>& piv,
                         int* sign) {
  const int n = lu.rows() < lu.cols() ? lu.rows() : lu.cols();
  double logdet = 0.0;
  int s = 1;
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(lu(i, i));
    logdet += std::log(std::fabs(d));
    if (d < 0.0) s = -s;
  }
  for (std::size_t p = 0; p < piv.size(); ++p)
    if (piv[p] != static_cast<int>(p)) s = -s;
  if (sign != nullptr) *sign = s;
  return logdet;
}

}  // namespace

void getrf(MatrixView a, std::vector<int>& piv) { getrf_impl<double>(a, piv); }
void getrf(MatrixViewF a, std::vector<int>& piv) { getrf_impl<float>(a, piv); }

void laswp(MatrixView b, const std::vector<int>& piv, bool forward) {
  laswp_impl<double>(b, piv, forward);
}
void laswp(MatrixViewF b, const std::vector<int>& piv, bool forward) {
  laswp_impl<float>(b, piv, forward);
}

void getrs(ConstMatrixView lu, const std::vector<int>& piv, MatrixView b,
           Trans trans) {
  getrs_impl<double>(lu, piv, b, trans);
}
void getrs(ConstMatrixViewF lu, const std::vector<int>& piv, MatrixViewF b,
           Trans trans) {
  getrs_impl<float>(lu, piv, b, trans);
}

Matrix lu_solve(Matrix a, Matrix b) {
  std::vector<int> piv;
  getrf(a, piv);
  getrs(a, piv, b);
  return b;
}

double lu_logabsdet(ConstMatrixView lu, const std::vector<int>& piv, int* sign) {
  return lu_logabsdet_impl<double>(lu, piv, sign);
}
double lu_logabsdet(ConstMatrixViewF lu, const std::vector<int>& piv,
                    int* sign) {
  return lu_logabsdet_impl<float>(lu, piv, sign);
}

}  // namespace h2
