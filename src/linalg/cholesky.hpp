#pragma once

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace h2 {

/// In-place lower Cholesky A = L L^T (upper triangle left untouched).
/// Throws NumericalError if A is not numerically SPD.
void potrf(MatrixView a);
void potrf(MatrixViewF a);

/// Solve A X = B in place given potrf's L.
void potrs(ConstMatrixView l, MatrixView b);
void potrs(ConstMatrixViewF l, MatrixViewF b);

}  // namespace h2
