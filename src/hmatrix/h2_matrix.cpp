#include "hmatrix/h2_matrix.hpp"

#include <cassert>

#include "linalg/blas.hpp"

namespace h2 {

H2Matrix::H2Matrix(const ClusterTree& tree, const Kernel& kernel,
                   const H2BuildOptions& opt)
    : tree_(&tree), opt_(opt), structure_(tree, opt.admissibility) {
  const int depth = tree.depth();
  lowrank_.resize(depth + 1);

  // Leaf near field: explicit kernel blocks (diagonal + inadmissible pairs).
  for (const auto& [i, j] : structure_.inadmissible_pairs(depth)) {
    leaf_dense_.emplace(
        std::make_pair(i, j),
        kernel_block(kernel, tree.cluster_points(depth, i),
                     tree.cluster_points(depth, j)));
  }

  // Far field: ACA factors per admissible pair, at every level.
  for (int l = 1; l <= depth; ++l) {
    for (const auto& [i, j] : structure_.admissible_pairs(l)) {
      lowrank_[l].emplace(
          std::make_pair(i, j),
          aca_compress(kernel, tree.cluster_points(l, i),
                       tree.cluster_points(l, j), opt.tol, opt.max_rank));
    }
  }
}

void H2Matrix::matvec(ConstMatrixView x, MatrixView y) const {
  const int n = tree_->n_points();
  assert(x.rows() == n && y.rows() == n && x.cols() == y.cols());
  (void)n;
  for (int j = 0; j < y.cols(); ++j) std::fill_n(y.col(j), y.rows(), 0.0);

  const int depth = tree_->depth();
  for (const auto& [key, d] : leaf_dense_) {
    const ClusterNode& ri = tree_->node(depth, key.first);
    const ClusterNode& cj = tree_->node(depth, key.second);
    gemm(1.0, d, Trans::No,
         x.block(cj.begin, 0, cj.size(), x.cols()), Trans::No, 1.0,
         y.block(ri.begin, 0, ri.size(), y.cols()));
  }
  for (int l = 1; l <= depth; ++l) {
    for (const auto& [key, lr] : lowrank_[l]) {
      if (lr.rank() == 0) continue;
      const ClusterNode& ri = tree_->node(l, key.first);
      const ClusterNode& cj = tree_->node(l, key.second);
      Matrix t(lr.rank(), x.cols());
      gemm(1.0, lr.v, Trans::Yes, x.block(cj.begin, 0, cj.size(), x.cols()),
           Trans::No, 0.0, t);
      gemm(1.0, lr.u, Trans::No, t, Trans::No, 1.0,
           y.block(ri.begin, 0, ri.size(), y.cols()));
    }
  }
}

Matrix H2Matrix::to_dense() const {
  const int n = tree_->n_points();
  Matrix a(n, n);
  const int depth = tree_->depth();
  for (const auto& [key, d] : leaf_dense_) {
    const ClusterNode& ri = tree_->node(depth, key.first);
    const ClusterNode& cj = tree_->node(depth, key.second);
    copy_into(d, a.block(ri.begin, cj.begin, ri.size(), cj.size()));
  }
  for (int l = 1; l <= depth; ++l) {
    for (const auto& [key, lr] : lowrank_[l]) {
      const ClusterNode& ri = tree_->node(l, key.first);
      const ClusterNode& cj = tree_->node(l, key.second);
      const Matrix d = lr.to_dense();
      copy_into(d, a.block(ri.begin, cj.begin, ri.size(), cj.size()));
    }
  }
  return a;
}

int H2Matrix::max_rank_used() const {
  int r = 0;
  for (const auto& level : lowrank_)
    for (const auto& [key, lr] : level) r = std::max(r, lr.rank());
  return r;
}

std::uint64_t H2Matrix::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [key, d] : leaf_dense_)
    bytes += 8ull * d.rows() * d.cols();
  for (const auto& level : lowrank_)
    for (const auto& [key, lr] : level)
      bytes += 8ull * (lr.rows() + lr.cols()) * lr.rank();
  return bytes;
}

}  // namespace h2
