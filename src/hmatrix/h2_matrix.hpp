#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "geometry/cluster_tree.hpp"
#include "hmatrix/block_structure.hpp"
#include "hmatrix/low_rank.hpp"
#include "kernels/assembly.hpp"
#include "linalg/matrix.hpp"

namespace h2 {

/// Construction parameters for an H^2 / HSS representation.
struct H2BuildOptions {
  AdmissibilityConfig admissibility;
  double tol = 1e-8;   ///< ACA relative tolerance for admissible blocks
  int max_rank = -1;   ///< optional rank cap for admissible blocks
};

/// The assembled hierarchical matrix: dense near-field blocks at the leaf
/// level plus low-rank (ACA-factorized, full-coordinate) admissible blocks
/// at every level. This is the input representation the ULV factorization
/// engine consumes; it is also independently usable (matvec, to_dense).
///
/// The referenced ClusterTree must outlive the H2Matrix.
class H2Matrix {
 public:
  H2Matrix(const ClusterTree& tree, const Kernel& kernel,
           const H2BuildOptions& opt);

  [[nodiscard]] const ClusterTree& tree() const { return *tree_; }
  [[nodiscard]] const BlockStructure& structure() const { return structure_; }
  [[nodiscard]] const H2BuildOptions& options() const { return opt_; }
  [[nodiscard]] int n() const { return tree_->n_points(); }

  /// Dense near-field block for an inadmissible leaf pair.
  [[nodiscard]] const Matrix& dense_block(int i, int j) const {
    return leaf_dense_.at({i, j});
  }
  /// Low-rank factors of an admissible pair stored at `level`.
  [[nodiscard]] const LowRank& lowrank_block(int level, int i, int j) const {
    return lowrank_[level].at({i, j});
  }

  /// y = A x, both in tree ordering (x, y are n x nrhs).
  void matvec(ConstMatrixView x, MatrixView y) const;

  /// Materialize the full matrix (validation sizes only).
  [[nodiscard]] Matrix to_dense() const;

  /// Largest ACA rank over all stored admissible blocks.
  [[nodiscard]] int max_rank_used() const;
  /// Total storage of all blocks, in bytes.
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  const ClusterTree* tree_;
  H2BuildOptions opt_;
  BlockStructure structure_;
  std::map<std::pair<int, int>, Matrix> leaf_dense_;
  std::vector<std::map<std::pair<int, int>, LowRank>> lowrank_;  // [level]
};

}  // namespace h2
