#include "hmatrix/block_structure.hpp"

#include <algorithm>
#include <cassert>

namespace h2 {

BlockStructure::BlockStructure(const ClusterTree& tree,
                               const AdmissibilityConfig& cfg) {
  depth_ = tree.depth();
  admissible_.resize(depth_ + 1);
  inadmissible_.resize(depth_ + 1);
  adm_cols_.resize(depth_ + 1);
  adm_rows_.resize(depth_ + 1);
  dense_cols_.resize(depth_ + 1);
  dense_rows_.resize(depth_ + 1);
  for (int l = 0; l <= depth_; ++l) {
    const int nb = tree.n_clusters(l);
    adm_cols_[l].resize(nb);
    adm_rows_[l].resize(nb);
    dense_cols_[l].resize(nb);
    dense_rows_[l].resize(nb);
  }

  // Dual traversal from the root pair: an admissible pair is stored at its
  // level; an inadmissible pair is recorded and, unless at the leaf,
  // subdivided into its four children pairs.
  inadmissible_[0].push_back({0, 0});
  for (int l = 0; l < depth_; ++l) {
    for (const auto& [pi, pj] : inadmissible_[l]) {
      for (int ci = 2 * pi; ci <= 2 * pi + 1; ++ci) {
        for (int cj = 2 * pj; cj <= 2 * pj + 1; ++cj) {
          const bool adm =
              is_admissible(tree.node(l + 1, ci), tree.node(l + 1, cj), cfg);
          auto& bucket = adm ? admissible_[l + 1] : inadmissible_[l + 1];
          bucket.push_back({ci, cj});
        }
      }
    }
  }

  for (int l = 1; l <= depth_; ++l) {
    for (const auto& [i, j] : admissible_[l]) {
      adm_cols_[l][i].push_back(j);
      adm_rows_[l][j].push_back(i);
    }
    for (const auto& [i, j] : inadmissible_[l]) {
      if (i == j) continue;
      dense_cols_[l][i].push_back(j);
      dense_rows_[l][j].push_back(i);
    }
  }
  for (int l = 1; l <= depth_; ++l) {
    for (auto& v : adm_cols_[l]) std::sort(v.begin(), v.end());
    for (auto& v : adm_rows_[l]) std::sort(v.begin(), v.end());
    for (auto& v : dense_cols_[l]) std::sort(v.begin(), v.end());
    for (auto& v : dense_rows_[l]) std::sort(v.begin(), v.end());
  }
}

bool BlockStructure::is_admissible_at(int level, int i, int j) const {
  const auto& cols = adm_cols_[level][i];
  return std::binary_search(cols.begin(), cols.end(), j);
}

bool BlockStructure::is_inadmissible_at(int level, int i, int j) const {
  if (i == j) {
    // The diagonal is inadmissible at every level by construction.
    return true;
  }
  const auto& cols = dense_cols_[level][i];
  return std::binary_search(cols.begin(), cols.end(), j);
}

int BlockStructure::max_dense_row_size() const {
  int best = 0;
  const auto& rows = dense_cols_[depth_];
  for (const auto& v : rows)
    best = std::max(best, static_cast<int>(v.size()) + 1);  // +1: diagonal
  return best;
}

}  // namespace h2
