#pragma once

#include "geometry/cluster_tree.hpp"

namespace h2 {

/// Which blocks may be approximated in low rank (paper Table I).
/// * Weak:   every same-level off-diagonal pair is admissible (HSS / BLR^2
///           structure; only the diagonal is dense).
/// * Strong: a pair is admissible only when the clusters are well separated
///           (H^2 / BLR structure; neighbors stay dense and later fill in).
enum class Admissibility { Weak, Strong };

/// Strong-admissibility separation parameter: (i, j) is admissible iff
/// dist(c_i, c_j) >= eta * (r_i + r_j) with bounding-sphere radii r.
/// Smaller eta admits more blocks (faster, less accurate for a given rank).
struct AdmissibilityConfig {
  Admissibility kind = Admissibility::Strong;
  double eta = 0.75;
};

/// Decide admissibility of two same-level clusters.
inline bool is_admissible(const ClusterNode& a, const ClusterNode& b,
                          const AdmissibilityConfig& cfg) {
  if (a.level != b.level) return false;
  if (a.lid == b.lid) return false;  // diagonal is never admissible
  if (cfg.kind == Admissibility::Weak) return true;
  const double d = dist(a.center, b.center);
  return d >= cfg.eta * (a.radius + b.radius);
}

}  // namespace h2
