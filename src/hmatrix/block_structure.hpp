#pragma once

#include <utility>
#include <vector>

#include "geometry/cluster_tree.hpp"
#include "hmatrix/admissibility.hpp"

namespace h2 {

/// The hierarchical block partition of the matrix: which same-level cluster
/// pairs are stored as low-rank blocks (admissible at that level, parents
/// inadmissible) and which remain inadmissible (subdivided further; at the
/// leaf level these are the dense near-field blocks).
///
/// Invariant: the stored blocks of all levels tile the matrix exactly — every
/// (row point, col point) pair is covered by exactly one admissible block or
/// one leaf dense block. BlockStructureTest checks this.
class BlockStructure {
 public:
  BlockStructure() = default;
  BlockStructure(const ClusterTree& tree, const AdmissibilityConfig& cfg);

  [[nodiscard]] int depth() const { return depth_; }

  /// Admissible (low-rank) pairs stored at `level` (1 <= level <= depth).
  [[nodiscard]] const std::vector<std::pair<int, int>>& admissible_pairs(
      int level) const {
    return admissible_[level];
  }
  /// Inadmissible pairs at `level` (at the leaf: the dense blocks; above:
  /// the blocks that the factorization re-assembles by merging child
  /// skeletons).
  [[nodiscard]] const std::vector<std::pair<int, int>>& inadmissible_pairs(
      int level) const {
    return inadmissible_[level];
  }

  /// Low-rank column partners of cluster `i` in its block row at `level`.
  [[nodiscard]] const std::vector<int>& admissible_cols(int level, int i) const {
    return adm_cols_[level][i];
  }
  /// Low-rank row partners of cluster `j` in its block column at `level`.
  [[nodiscard]] const std::vector<int>& admissible_rows(int level, int j) const {
    return adm_rows_[level][j];
  }
  /// Inadmissible (dense) column partners of `i` at `level`, EXCLUDING the
  /// diagonal.
  [[nodiscard]] const std::vector<int>& dense_cols(int level, int i) const {
    return dense_cols_[level][i];
  }
  [[nodiscard]] const std::vector<int>& dense_rows(int level, int j) const {
    return dense_rows_[level][j];
  }

  [[nodiscard]] bool is_admissible_at(int level, int i, int j) const;
  [[nodiscard]] bool is_inadmissible_at(int level, int i, int j) const;

  /// Largest number of dense neighbors of any cluster at the leaf level
  /// (the paper's O(1) constant that makes the method O(N)).
  [[nodiscard]] int max_dense_row_size() const;

 private:
  int depth_ = 0;
  // Index 0 unused for pair lists (the root block is always inadmissible).
  std::vector<std::vector<std::pair<int, int>>> admissible_;
  std::vector<std::vector<std::pair<int, int>>> inadmissible_;
  std::vector<std::vector<std::vector<int>>> adm_cols_, adm_rows_;
  std::vector<std::vector<std::vector<int>>> dense_cols_, dense_rows_;
};

}  // namespace h2
