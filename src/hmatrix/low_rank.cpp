#include "hmatrix/low_rank.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "util/flops.hpp"

namespace h2 {

Matrix LowRank::to_dense() const {
  Matrix d(rows(), cols());
  if (rank() > 0) gemm(1.0, u, Trans::No, v, Trans::Yes, 0.0, d);
  return d;
}

LowRank compress_dense(ConstMatrixView a, double rel_tol, int max_rank) {
  const PivotedQr qr = pivoted_qr(a, rel_tol, max_rank);
  LowRank lr;
  lr.u = Matrix::from(qr.q.block(0, 0, a.rows(), qr.rank));
  // A(:, jpvt[k]) = Q R(:, k)  =>  V(jpvt[k], :) = R(:, k)^T.
  lr.v = Matrix(a.cols(), qr.rank);
  for (int k = 0; k < a.cols(); ++k)
    for (int i = 0; i < qr.rank; ++i) lr.v(qr.jpvt[k], i) = qr.r(i, k);
  return lr;
}

LowRank aca_compress(const Kernel& kernel, std::span<const Point> rows,
                     std::span<const Point> cols, double rel_tol,
                     int max_rank) {
  const int m = static_cast<int>(rows.size());
  const int n = static_cast<int>(cols.size());
  const int rmax0 = std::min(m, n);
  const int rmax = (max_rank >= 0 && max_rank < rmax0) ? max_rank : rmax0;

  std::vector<Matrix> us, vs;  // columns accumulated cross by cross
  std::vector<bool> row_used(m, false), col_used(n, false);
  double norm2_est = 0.0;  // running estimate of ||A||_F^2

  int pivot_row = 0;
  int rank = 0;
  int stalls = 0;
  while (rank < rmax) {
    // Residual row `pivot_row`: A(i,:) - sum_l u_l(i) v_l.
    Matrix rrow(n, 1);
    for (int j = 0; j < n; ++j) rrow(j, 0) = kernel.eval(rows[pivot_row], cols[j]);
    flops::add(flops::kernel_eval(n, kernel.flops_per_eval()));
    for (int l = 0; l < rank; ++l) {
      const double ui = us[l](pivot_row, 0);
      const double* vl = vs[l].data();
      double* r = rrow.data();
      for (int j = 0; j < n; ++j) r[j] -= ui * vl[j];
    }
    flops::add(2ull * rank * n);

    int pivot_col = -1;
    double vmax = 0.0;
    for (int j = 0; j < n; ++j) {
      if (col_used[j]) continue;
      const double v = std::fabs(rrow(j, 0));
      if (v > vmax) {
        vmax = v;
        pivot_col = j;
      }
    }
    row_used[pivot_row] = true;
    if (pivot_col < 0 || vmax == 0.0) {
      // Dead row; try another unused row a few times before giving up.
      ++stalls;
      if (stalls > 4) break;
      int next = -1;
      for (int i = 0; i < m; ++i)
        if (!row_used[i]) {
          next = i;
          break;
        }
      if (next < 0) break;
      pivot_row = next;
      continue;
    }
    stalls = 0;

    // Residual column `pivot_col`.
    Matrix rcol(m, 1);
    for (int i = 0; i < m; ++i)
      rcol(i, 0) = kernel.eval(rows[i], cols[pivot_col]);
    flops::add(flops::kernel_eval(m, kernel.flops_per_eval()));
    for (int l = 0; l < rank; ++l) {
      const double vj = vs[l](pivot_col, 0);
      const double* ul = us[l].data();
      double* r = rcol.data();
      for (int i = 0; i < m; ++i) r[i] -= vj * ul[i];
    }
    flops::add(2ull * rank * m);

    const double inv_pivot = 1.0 / rrow(pivot_col, 0);
    for (int i = 0; i < m; ++i) rcol(i, 0) *= inv_pivot;
    col_used[pivot_col] = true;

    double unorm2 = 0.0, vnorm2 = 0.0;
    for (int i = 0; i < m; ++i) unorm2 += rcol(i, 0) * rcol(i, 0);
    for (int j = 0; j < n; ++j) vnorm2 += rrow(j, 0) * rrow(j, 0);
    // Update the Frobenius-norm estimate with the new cross + cross terms.
    double cross = 0.0;
    for (int l = 0; l < rank; ++l) {
      double uu = 0.0, vv = 0.0;
      const double* ul = us[l].data();
      const double* vl = vs[l].data();
      const double* un = rcol.data();
      const double* vn = rrow.data();
      for (int i = 0; i < m; ++i) uu += ul[i] * un[i];
      for (int j = 0; j < n; ++j) vv += vl[j] * vn[j];
      cross += uu * vv;
    }
    norm2_est += unorm2 * vnorm2 + 2.0 * cross;
    flops::add(4ull * rank * (m + n));

    us.push_back(std::move(rcol));
    vs.push_back(std::move(rrow));
    ++rank;

    if (unorm2 * vnorm2 <= rel_tol * rel_tol * std::max(norm2_est, 0.0)) break;

    // Next pivot row: largest entry of the new u among unused rows.
    pivot_row = -1;
    double umax = -1.0;
    for (int i = 0; i < m; ++i) {
      if (row_used[i]) continue;
      const double v = std::fabs(us.back()(i, 0));
      if (v > umax) {
        umax = v;
        pivot_row = i;
      }
    }
    if (pivot_row < 0) break;
  }

  LowRank lr;
  lr.u = Matrix(m, rank);
  lr.v = Matrix(n, rank);
  for (int l = 0; l < rank; ++l) {
    std::copy_n(us[l].data(), m, lr.u.data() + static_cast<std::size_t>(l) * m);
    std::copy_n(vs[l].data(), n, lr.v.data() + static_cast<std::size_t>(l) * n);
  }
  return lr;
}

LowRank recompress(const LowRank& lr, double rel_tol, int max_rank) {
  const int r = lr.rank();
  if (r == 0) return lr;
  // QR both factors, SVD of the r x r core.
  Matrix uw = lr.u, vw = lr.v;
  std::vector<double> tau_u, tau_v;
  householder_qr(uw, tau_u);
  householder_qr(vw, tau_v);
  const int ru = std::min(lr.rows(), r), rv = std::min(lr.cols(), r);
  Matrix core = matmul(extract_r(uw).block(0, 0, ru, r),
                       extract_r(vw).block(0, 0, rv, r), Trans::No, Trans::Yes);
  const Svd svd = jacobi_svd(core);
  const int newr = svd_truncation_rank(svd.sigma, rel_tol, max_rank);

  Matrix qu = form_q(uw, tau_u, ru);
  Matrix qv = form_q(vw, tau_v, rv);
  LowRank out;
  out.u = matmul(qu, svd.u.block(0, 0, ru, newr));
  // Fold the singular values into V.
  Matrix vs(rv, newr);
  for (int j = 0; j < newr; ++j)
    for (int i = 0; i < rv; ++i) vs(i, j) = svd.v(i, j) * svd.sigma[j];
  out.v = matmul(qv, vs);
  return out;
}

}  // namespace h2
