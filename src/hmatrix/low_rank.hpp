#pragma once

#include <span>

#include "geometry/point.hpp"
#include "kernels/kernel.hpp"
#include "linalg/matrix.hpp"

namespace h2 {

/// A rank-r factorization U V^T of an m x n block.
struct LowRank {
  Matrix u;  ///< m x r
  Matrix v;  ///< n x r

  [[nodiscard]] int rank() const { return u.cols(); }
  [[nodiscard]] int rows() const { return u.rows(); }
  [[nodiscard]] int cols() const { return v.rows(); }

  /// Materialize U V^T (tests and small blocks only).
  [[nodiscard]] Matrix to_dense() const;
};

/// Compress an explicit matrix with column-pivoted QR truncated at rel_tol.
LowRank compress_dense(ConstMatrixView a, double rel_tol, int max_rank = -1);

/// Partially-pivoted Adaptive Cross Approximation of the kernel block
/// K(rows, cols), touching only O((m+n) r) kernel entries. Stops when the
/// new cross's norm falls below rel_tol times the running estimate of
/// ||A||_F, or at max_rank.
LowRank aca_compress(const Kernel& kernel, std::span<const Point> rows,
                     std::span<const Point> cols, double rel_tol,
                     int max_rank = -1);

/// Re-orthogonalize and re-truncate a low-rank factorization:
/// QR both factors, SVD of the small core, keep singular values above
/// rel_tol * sigma_max.
LowRank recompress(const LowRank& lr, double rel_tol, int max_rank = -1);

}  // namespace h2
