#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "linalg/matrix.hpp"

namespace h2 {

/// Counters and gauges of one SpillStore, snapshotted atomically by
/// SpillStore::stats(). Counters are lifetime totals; gauges are the value at
/// the snapshot. The out-of-core acceptance bound is
/// `peak_resident_bytes <= budget_bytes + max_block_bytes`: the store admits a
/// *required* block past the budget rather than deadlock a solve, but never
/// more than one block beyond it per concurrent sweep (peak_resident_bytes is
/// reset when adoption seals, so the bound is measured over the serve phase —
/// during adoption the blocks already exist and the store can only drain them).
struct SpillStats {
  std::uint64_t blocks = 0;            ///< blocks adopted into the store
  std::uint64_t block_bytes = 0;       ///< payload bytes adopted
  std::uint64_t spilled_blocks = 0;    ///< spill files written by the writers
  std::uint64_t spilled_bytes = 0;     ///< payload bytes written to disk
  std::uint64_t evictions = 0;         ///< resident payloads dropped to disk-only
  std::uint64_t evicted_bytes = 0;     ///< payload bytes dropped
  std::uint64_t faults = 0;            ///< synchronous (demand) reads
  std::uint64_t fault_bytes = 0;       ///< payload bytes read on demand
  std::uint64_t prefetches = 0;        ///< reads issued ahead of the sweep cursor
  std::uint64_t prefetch_bytes = 0;    ///< payload bytes read ahead
  std::uint64_t step_hits = 0;    ///< step-acquired blocks resident, in flight,
                                  ///< or already scheduled by the planner
  std::uint64_t step_misses = 0;  ///< step-acquired blocks whose read the sweep
                                  ///< itself had to initiate
  std::uint64_t resident_bytes = 0;    ///< gauge: managed payload bytes in RAM
  std::uint64_t peak_resident_bytes = 0;  ///< high-water mark of resident_bytes
  std::uint64_t budget_bytes = 0;      ///< gauge: current resident budget
  std::uint64_t max_block_bytes = 0;   ///< largest single adopted payload
};

/// File-backed tier for factor blocks: gives each adopted block the
/// resident -> spilled -> prefetched lifecycle that decouples solvable N from
/// RAM.
///
/// A block enters with adopt() at its factorization release point (its bytes
/// are final and read-only from then on; the solve only ever *reads* factors,
/// so moving a payload to disk and back can change where the bytes live but
/// never what they are — out-of-core execution is bitwise identical by
/// construction). Background writer threads persist every adopted payload to a
/// checksummed per-block file; once a block's file exists, dropping its
/// payload (eviction) and restoring it (fault-in) are pure byte moves through
/// BlockPool::global(), which hands the storage back on release and re-adopts
/// it on fault-in.
///
/// seal() fixes the *solve plan*: an ordered list of steps, each naming the
/// slots one phase chunk of the solve sweep reads. A Pass walks the steps in
/// order; Pass::advance(s) pins step s resident (counting prefetch hits and
/// demand misses) and releases the previous step. A planner thread walks the
/// plan ahead of the most recently acquired step, reserving resident budget
/// and queueing reads in plan order; the IO threads — idle as writers once the
/// plan is sealed — execute the queued reads concurrently, so a healthy sweep
/// overlaps its compute with several reads in flight and never initiates a
/// cold read itself. A step block counts as a hit when the sweep finds it
/// resident, in flight, or scheduled (the sweep executes a scheduled read in
/// the worker's stead rather than wait its turn); it is a miss only when the
/// planner never got to it and the sweep must initiate the read.
///
/// Budget policy: eviction keeps resident bytes at or under budget_bytes
/// whenever anything unpinned is evictable; a pinned (required) fault may
/// overshoot rather than stall the sweep — see SpillStats for the exact bound.
/// Setting the budget to zero turns the store into a pure disk tier (the
/// serving cache's "demoted" state): every release drains to disk, every use
/// faults back in.
///
/// Failure policy: any write or read error (short file, checksum mismatch,
/// out of disk) is recorded and rethrown as std::runtime_error naming the
/// spill file and block from every subsequent store entry point — never a
/// silently wrong answer. The destructor stops the threads, removes the
/// store's files and directory, and discharges its resident accounting, so
/// cleanup happens on every path including exceptions.
class SpillStore {
 public:
  /// Construction knobs (see H2_SPILL_DIR / H2_SPILL_MB / H2_SPILL_THREADS in
  /// docs/TUNING.md for the environment defaults they are usually fed from).
  struct Options {
    std::string dir;                 ///< existing writable parent directory
    std::uint64_t budget_bytes = 0;  ///< resident payload budget (0 = spill all)
    int io_threads = 2;  ///< background IO threads (>= 1): spill writers that
                         ///< double as prefetch readers once the plan is sealed
  };

  /// Index of an adopted block within this store.
  using SlotId = int;
  /// Sentinel for "no slot" in plan step lists (empty blocks are never
  /// adopted, so plans built from block tables use this for the gaps).
  static constexpr SlotId kNoSlot = -1;

  /// Creates `<dir>/h2spill-<pid>-<n>/` and starts the writer and prefetcher
  /// threads. Throws std::runtime_error if the directory cannot be created.
  explicit SpillStore(const Options& opt);
  /// Stops the threads, deletes every spill file and the store directory, and
  /// discharges the resident accounting of its managed blocks.
  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Hand `block` (non-empty, final, address-stable) to the store. The write
  /// is queued immediately; adopt() then pushes residency down toward the
  /// budget (waiting on the writers when needed) before returning, so
  /// adoption itself never accumulates more than the budget plus the blocks
  /// currently in flight. `name` labels the block in error messages.
  /// The store charges the payload to blockmem; the caller must drop its own
  /// accounting for the block before calling. fp32 blocks are first-class:
  /// a slot remembers its element type, its bytes are the real payload size
  /// (half the fp64 twin), and spill/restore stays a pure byte move either
  /// way — checksums, prefetch planning, and the budget policy are oblivious
  /// to precision.
  SlotId adopt(Matrix* block, std::string name);
  SlotId adopt(MatrixF* block, std::string name);

  /// Seal adoption and install the solve plan: steps[s] lists the slots step
  /// s reads (kNoSlot entries are skipped). Waits for every queued write,
  /// then resets the peak-resident mark and releases the prefetcher onto the
  /// first steps. Call once, after the last adopt().
  void seal(std::vector<std::vector<SlotId>> steps);

  /// Walks one solve sweep over the sealed plan. Destroying a Pass releases
  /// whatever step it still holds, so an exception unwinding a solve cannot
  /// leak pins.
  class Pass {
   public:
    /// Rewinds the store's prefetch cursor to the first step.
    explicit Pass(SpillStore& store);
    ~Pass();
    Pass(const Pass&) = delete;
    Pass& operator=(const Pass&) = delete;
    /// Releases the previously held step and pins every block of `step`
    /// resident, blocking on demand reads for the ones prefetch missed.
    void advance(int step);

   private:
    SpillStore* store_;
    int held_ = -1;
  };

  /// Pin an explicit slot set resident (demand-faulting as needed) — the
  /// hook for factor reads outside the solve sweep (logabsdet, the depth-0
  /// top solve). Ignores kNoSlot entries.
  void pin(const std::vector<SlotId>& ids);
  /// Undo pin(); eviction may reclaim the blocks again.
  void unpin(const std::vector<SlotId>& ids);

  /// Block until every queued spill write has completed (rethrows a recorded
  /// writer error).
  void quiesce();
  /// Fault every spilled block back in (promotion). Respects no budget; pair
  /// with set_budget() when turning a disk tier resident again.
  void fetch_all();
  /// Spill and drop every unpinned block (demotion). Blocks pinned by an
  /// in-flight sweep stay resident and drain on release.
  void drop_all();
  /// Replace the resident budget and immediately evict down toward it.
  void set_budget(std::uint64_t budget_bytes);

  /// Atomic snapshot of the counters and gauges.
  [[nodiscard]] SpillStats stats() const;
  /// The spill file backing slot `id` (exists once the writers got to it).
  [[nodiscard]] std::string file_path(SlotId id) const;
  /// This store's private directory, `<dir>/h2spill-<pid>-<n>`.
  [[nodiscard]] const std::string& directory() const;

  /// Test seam: make the next `n` spill writes fail as if the disk were full
  /// (a partial payload is written first, so the file is also invalid).
  void fail_next_writes_for_testing(int n);

 private:
  enum class State : std::uint8_t {
    kQueued,   // resident; write not yet picked up
    kWriting,  // resident; writer thread owns the file
    kClean,    // resident; file valid — evictable when unpinned
    kSpilled,  // disk only
    kReading,  // disk -> RAM transfer in flight (single-flight gate)
  };

  struct Slot {
    // Exactly one of block/blockf is set; the slot's element type (and hence
    // its payload byte size) follows the set pointer.
    Matrix* block = nullptr;
    MatrixF* blockf = nullptr;
    int rows = 0, cols = 0;
    std::uint64_t bytes = 0;
    std::string name;
    State state = State::kQueued;
    int pins = 0;
    bool prefetched = false;   // read ahead, not yet acquired: evict last
    bool read_queued = false;  // in read_q_; its bytes are budget-reserved
    int next_use = -1;         // earliest upcoming step reading this slot...
    std::uint64_t plan_gen = 0;  // ...valid while this matches plan_gen_
  };

  template <class T>
  SlotId adopt_impl(MatrixT<T>* block, std::string name);
  void writer_main();
  void prefetch_main();
  void write_slot(std::unique_lock<std::mutex>& lk, SlotId id);
  void read_slot(std::unique_lock<std::mutex>& lk, SlotId id, bool required);
  void evict_one(SlotId id);
  void evict_toward(std::uint64_t target, bool sweep);
  void dequeue_read(SlotId id);  // cancel one scheduled read (callers hold mu_)
  void schedule_reads();         // one planning pass (callers hold mu_)
  // Evict the evictable resident block whose next plan use is farthest past
  // `step` (Belady's rule on the sealed plan; a block with no upcoming use at
  // all goes first). Returns false when nothing qualifies.
  bool evict_farthest_after(int step);
  void ensure_resident(std::unique_lock<std::mutex>& lk, SlotId id,
                       bool count_step);
  void acquire_step(int step);
  void release_step(int step);
  void throw_if_failed() const;  // callers hold mu_
  void fail(const std::string& what);

  const std::string dir_;
  std::uint64_t budget_;
  SpillStats st_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // state / budget / error waiters
  std::condition_variable work_cv_;   // writer wakeups
  std::condition_variable fetch_cv_;  // prefetch-planner wakeups
  std::vector<Slot> slots_;
  std::deque<SlotId> write_q_;
  std::deque<SlotId> evict_q_;  // lazily validated eviction candidates
  std::deque<SlotId> read_q_;   // planner-scheduled prefetch reads, plan order
  // Budget bytes held by read_q_ entries and scheduled reads still in flight:
  // the planner admits a read only while resident + reserved stays under the
  // budget, so every scheduled read has room by the time it completes.
  std::uint64_t reserved_read_bytes_ = 0;
  std::uint64_t plan_gen_ = 0;  // bumped per planning walk; stamps next_use
  std::vector<std::vector<SlotId>> steps_;
  bool sealed_ = false;
  bool draining_ = false;  // drop_all in progress: planner paused, reads void
  int cursor_ = -1;        // most recently acquired step (prefetch oracle)
  int inject_write_failures_ = 0;
  std::string error_;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace h2
