#include "storage/spill_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "runtime/block_pool.hpp"

namespace h2 {

namespace {

/// On-disk layout of one spill file: this header, then rows*cols elements
/// (fp64 or fp32, whichever the slot holds — payload_bytes disambiguates) in
/// column-major order. All fields are fixed-width and naturally aligned, so
/// the struct has no padding and can be written/read as one block.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t slot;
  std::int32_t rows;
  std::int32_t cols;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
};
static_assert(sizeof(FileHeader) == 40, "FileHeader must be packed");

constexpr char kMagic[8] = {'H', '2', 'S', 'P', 'I', 'L', 'L', '\0'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// RAII fclose so every error path below closes the stream.
struct FileCloser {
  std::FILE* f = nullptr;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

std::string make_store_dir(const std::string& parent) {
  static std::atomic<int> counter{0};
  return parent + "/h2spill-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

SpillStore::SpillStore(const Options& opt)
    : dir_(make_store_dir(opt.dir)), budget_(opt.budget_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("SpillStore: cannot create spill directory '" +
                             dir_ + "': " + ec.message());
  }
  const int writers = std::max(1, opt.io_threads);
  threads_.reserve(writers + 1);
  for (int t = 0; t < writers; ++t)
    threads_.emplace_back([this] { writer_main(); });
  threads_.emplace_back([this] { prefetch_main(); });
}

SpillStore::~SpillStore() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    work_cv_.notify_all();
    fetch_cv_.notify_all();
    cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  // Discharge the accounting of every payload still resident; the Matrix
  // objects themselves belong to the factorization and outlive the store.
  std::uint64_t resident = 0;
  for (const Slot& s : slots_)
    if (s.state != State::kSpilled) resident += s.bytes;
  blockmem::discharge(resident);
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);  // best effort; nothing to throw into
}

void SpillStore::throw_if_failed() const {
  if (!error_.empty()) throw std::runtime_error(error_);
}

void SpillStore::fail(const std::string& what) {
  if (error_.empty()) error_ = what;  // first failure wins; the rest follow it
  cv_.notify_all();
  work_cv_.notify_all();
  fetch_cv_.notify_all();
}

template <class T>
SpillStore::SlotId SpillStore::adopt_impl(MatrixT<T>* block, std::string name) {
  assert(block != nullptr && !block->empty());
  const std::uint64_t bytes = sizeof(T) *
                              static_cast<std::uint64_t>(block->rows()) *
                              static_cast<std::uint64_t>(block->cols());
  std::unique_lock<std::mutex> lk(mu_);
  throw_if_failed();
  const SlotId id = static_cast<SlotId>(slots_.size());
  Slot s;
  if constexpr (std::is_same_v<T, float>) {
    s.blockf = block;
  } else {
    s.block = block;
  }
  s.rows = block->rows();
  s.cols = block->cols();
  s.bytes = bytes;
  s.name = std::move(name);
  slots_.push_back(std::move(s));
  st_.blocks += 1;
  st_.block_bytes += bytes;
  st_.max_block_bytes = std::max(st_.max_block_bytes, bytes);
  blockmem::charge(bytes);  // the caller dropped its own accounting first
  st_.resident_bytes += bytes;
  st_.peak_resident_bytes = std::max(st_.peak_resident_bytes, st_.resident_bytes);
  write_q_.push_back(id);
  work_cv_.notify_one();
  // Push residency back down toward the budget before accepting more: wait
  // for the writers while anything is still in flight, then sweep whatever
  // became evictable. Past that point the overshoot is blocks that cannot be
  // dropped yet (pinned, or this one while larger than the whole budget).
  while (true) {
    evict_toward(budget_, /*sweep=*/false);
    if (st_.resident_bytes <= budget_) break;
    const bool pending =
        !write_q_.empty() ||
        std::any_of(slots_.begin(), slots_.end(), [](const Slot& sl) {
          return sl.state == State::kWriting || sl.state == State::kReading;
        });
    if (!pending) {
      evict_toward(budget_, /*sweep=*/true);
      break;
    }
    cv_.wait(lk);
    throw_if_failed();
  }
  return id;
}

SpillStore::SlotId SpillStore::adopt(Matrix* block, std::string name) {
  return adopt_impl(block, std::move(name));
}

SpillStore::SlotId SpillStore::adopt(MatrixF* block, std::string name) {
  return adopt_impl(block, std::move(name));
}

void SpillStore::seal(std::vector<std::vector<SlotId>> steps) {
  std::unique_lock<std::mutex> lk(mu_);
  while ((!write_q_.empty() ||
          std::any_of(slots_.begin(), slots_.end(),
                      [](const Slot& s) { return s.state == State::kWriting; })) &&
         error_.empty())
    cv_.wait(lk);
  throw_if_failed();
  steps_ = std::move(steps);
  sealed_ = true;
  cursor_ = -1;
  // Adoption is over: from here on the resident high-water mark measures the
  // serve phase, where the budget (+ one required block) is enforceable.
  st_.peak_resident_bytes = st_.resident_bytes;
  fetch_cv_.notify_all();
}

void SpillStore::quiesce() {
  std::unique_lock<std::mutex> lk(mu_);
  while ((!write_q_.empty() ||
          std::any_of(slots_.begin(), slots_.end(),
                      [](const Slot& s) { return s.state == State::kWriting; })) &&
         error_.empty())
    cv_.wait(lk);
  throw_if_failed();
}

void SpillStore::evict_one(SlotId id) {
  Slot& s = slots_[id];
  assert(s.state == State::kClean && s.pins == 0);
  if (s.block != nullptr) {
    Matrix dead = std::move(*s.block);
    *s.block = Matrix();
    BlockPool::global().recycle(std::move(dead));
  } else {
    MatrixF dead = std::move(*s.blockf);
    *s.blockf = MatrixF();
    BlockPool::global().recycle(std::move(dead));
  }
  s.state = State::kSpilled;
  s.prefetched = false;
  st_.resident_bytes -= s.bytes;
  st_.evictions += 1;
  st_.evicted_bytes += s.bytes;
  blockmem::discharge(s.bytes);
}

void SpillStore::evict_toward(std::uint64_t target, bool sweep) {
  while (st_.resident_bytes > target && !evict_q_.empty()) {
    const SlotId id = evict_q_.front();
    evict_q_.pop_front();
    Slot& s = slots_[id];  // entries are lazily validated: skip stale ones
    if (s.state == State::kClean && s.pins == 0 && !s.prefetched) evict_one(id);
  }
  if (st_.resident_bytes <= target || !sweep) return;
  // The queue ran dry: scan for anything unpinned, spending blocks that were
  // read ahead of the cursor only as a last resort (a policy mistake here
  // costs a re-read, never correctness).
  for (int pass = 0; pass < 2 && st_.resident_bytes > target; ++pass) {
    for (SlotId id = 0;
         id < static_cast<SlotId>(slots_.size()) && st_.resident_bytes > target;
         ++id) {
      Slot& s = slots_[id];
      if (s.state == State::kClean && s.pins == 0 &&
          (pass == 1 || !s.prefetched))
        evict_one(id);
    }
  }
}

bool SpillStore::evict_farthest_after(int step) {
  SlotId victim = kNoSlot;
  bool victim_stale = false;
  int victim_use = step;
  for (SlotId id = 0; id < static_cast<SlotId>(slots_.size()); ++id) {
    Slot& s = slots_[id];
    if (s.state != State::kClean || s.pins != 0) continue;
    if (s.plan_gen != plan_gen_) {
      // No upcoming use in the last planning walk: the ideal victim.
      if (!victim_stale) {
        victim = id;
        victim_stale = true;
      }
    } else if (!victim_stale && s.next_use > victim_use) {
      victim = id;
      victim_use = s.next_use;
    }
  }
  if (victim == kNoSlot) return false;
  evict_one(victim);
  return true;
}

void SpillStore::dequeue_read(SlotId id) {
  Slot& s = slots_[id];
  assert(s.read_queued);
  s.read_queued = false;
  reserved_read_bytes_ -= s.bytes;
  const auto it = std::find(read_q_.begin(), read_q_.end(), id);
  assert(it != read_q_.end());
  read_q_.erase(it);
  fetch_cv_.notify_all();  // the freed reservation may unblock the planner
}

void SpillStore::ensure_resident(std::unique_lock<std::mutex>& lk, SlotId id,
                                 bool count_step) {
  bool counted = !count_step;
  while (true) {
    throw_if_failed();
    Slot& s = slots_[id];
    switch (s.state) {
      case State::kQueued:
      case State::kWriting:
      case State::kClean:
        if (!counted) st_.step_hits += 1;
        return;
      case State::kReading:
        // A prefetch got here first; waiting out an in-flight read is a hit.
        if (!counted) {
          st_.step_hits += 1;
          counted = true;
        }
        cv_.wait(lk);
        break;
      case State::kSpilled: {
        if (s.read_queued) {
          // The planner scheduled this read before the sweep asked for it;
          // the sweep executes it in the worker's stead rather than wait its
          // turn in the queue. Scheduled-ahead-of-demand counts as a hit.
          if (!counted) {
            st_.step_hits += 1;
            counted = true;
          }
          dequeue_read(id);
        } else if (!counted) {
          st_.step_misses += 1;
          counted = true;
        }
        // Make room gently first, leaving space for the reads already
        // reserved in flight (their completions would otherwise stack on
        // top of this admission past the one-block overshoot bound) —
        // but only from the FIFO queue, which spares read-ahead blocks.
        // If that is not enough, spend residents farthest from their next
        // use; blocks of the current step are pinned and safe either way.
        const std::uint64_t b = slots_[id].bytes;
        const std::uint64_t soft = reserved_read_bytes_ + b;
        evict_toward(soft > budget_ ? 0 : budget_ - soft, /*sweep=*/false);
        while (st_.resident_bytes + b > budget_ && evict_farthest_after(cursor_)) {
        }
        read_slot(lk, id, /*required=*/true);
        return;
      }
    }
  }
}

void SpillStore::acquire_step(int step) {
  std::unique_lock<std::mutex> lk(mu_);
  throw_if_failed();
  assert(sealed_ && step >= 0 && step < static_cast<int>(steps_.size()));
  cursor_ = step;
  draining_ = false;
  fetch_cv_.notify_all();
  // Pin the whole step before demand-reading the gaps, so a block this sweep
  // already needs cannot be evicted to make room for a later one of the same
  // step.
  for (const SlotId id : steps_[step]) {
    if (id == kNoSlot) continue;
    slots_[id].pins += 1;
    slots_[id].prefetched = false;
  }
  for (const SlotId id : steps_[step]) {
    if (id == kNoSlot) continue;
    ensure_resident(lk, id, /*count_step=*/true);
  }
}

void SpillStore::release_step(int step) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(sealed_ && step >= 0 && step < static_cast<int>(steps_.size()));
  for (const SlotId id : steps_[step]) {
    if (id == kNoSlot) continue;
    Slot& s = slots_[id];
    assert(s.pins > 0);
    if (--s.pins == 0 && s.state == State::kClean) evict_q_.push_back(id);
  }
  evict_toward(budget_, /*sweep=*/false);
  schedule_reads();
  cv_.notify_all();
  fetch_cv_.notify_all();
}

SpillStore::Pass::Pass(SpillStore& store) : store_(&store) {
  std::lock_guard<std::mutex> lk(store_->mu_);
  store_->cursor_ = -1;
  store_->draining_ = false;
  store_->fetch_cv_.notify_all();
}

SpillStore::Pass::~Pass() {
  if (held_ >= 0) store_->release_step(held_);
}

void SpillStore::Pass::advance(int step) {
  if (held_ >= 0) store_->release_step(held_);
  held_ = -1;  // if acquire throws, the dtor must not double-release
  store_->acquire_step(step);
  held_ = step;
}

void SpillStore::pin(const std::vector<SlotId>& ids) {
  std::unique_lock<std::mutex> lk(mu_);
  throw_if_failed();
  for (const SlotId id : ids) {
    if (id == kNoSlot) continue;
    slots_[id].pins += 1;
    slots_[id].prefetched = false;
    ensure_resident(lk, id, /*count_step=*/false);
  }
}

void SpillStore::unpin(const std::vector<SlotId>& ids) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const SlotId id : ids) {
    if (id == kNoSlot) continue;
    Slot& s = slots_[id];
    assert(s.pins > 0);
    if (--s.pins == 0 && s.state == State::kClean) evict_q_.push_back(id);
  }
  evict_toward(budget_, /*sweep=*/false);
  cv_.notify_all();
  fetch_cv_.notify_all();
}

void SpillStore::fetch_all() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = false;
  for (SlotId id = 0; id < static_cast<SlotId>(slots_.size()); ++id)
    ensure_resident(lk, id, /*count_step=*/false);
}

void SpillStore::drop_all() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;  // pause the planner until the next pass begins
  // Void the scheduled reads wholesale: the workers skip stale entries, but
  // draining must not wait on reads that would be dropped right back.
  for (const SlotId id : read_q_) {
    slots_[id].read_queued = false;
    reserved_read_bytes_ -= slots_[id].bytes;
  }
  read_q_.clear();
  while (error_.empty()) {
    const bool pending =
        !write_q_.empty() ||
        std::any_of(slots_.begin(), slots_.end(), [](const Slot& s) {
          return s.state == State::kWriting || s.state == State::kReading;
        });
    if (!pending) break;
    cv_.wait(lk);
  }
  throw_if_failed();
  for (SlotId id = 0; id < static_cast<SlotId>(slots_.size()); ++id) {
    Slot& s = slots_[id];
    if (s.state == State::kClean && s.pins == 0) evict_one(id);
  }
}

void SpillStore::set_budget(std::uint64_t budget_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  budget_ = budget_bytes;
  evict_toward(budget_, /*sweep=*/false);
  fetch_cv_.notify_all();
}

SpillStats SpillStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  SpillStats out = st_;
  out.budget_bytes = budget_;
  return out;
}

std::string SpillStore::file_path(SlotId id) const {
  return dir_ + "/blk-" + std::to_string(id) + ".bin";
}

const std::string& SpillStore::directory() const { return dir_; }

void SpillStore::fail_next_writes_for_testing(int n) {
  std::lock_guard<std::mutex> lk(mu_);
  inject_write_failures_ = n;
}

// ---------------------------------------------------------------------------
// Background threads and the file format.
// ---------------------------------------------------------------------------

void SpillStore::writer_main() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if ((write_q_.empty() && read_q_.empty()) || !error_.empty()) {
      work_cv_.wait(lk);
      continue;
    }
    if (!write_q_.empty()) {
      const SlotId id = write_q_.front();
      write_q_.pop_front();
      write_slot(lk, id);
      continue;
    }
    // No writes pending: execute a planner-scheduled prefetch read. The
    // reservation the planner took is released once the read settles (the
    // payload is then counted in resident_bytes instead).
    const SlotId id = read_q_.front();
    read_q_.pop_front();
    Slot& s = slots_[id];
    s.read_queued = false;
    const std::uint64_t b = s.bytes;
    if (s.state != State::kSpilled || draining_) {
      // A demand read got here first, or the pass is being drained; the
      // schedule entry is stale.
      reserved_read_bytes_ -= b;
      fetch_cv_.notify_all();
      continue;
    }
    try {
      read_slot(lk, id, /*required=*/false);
    } catch (const std::exception&) {
      // Recorded by fail(); every store entry point rethrows it.
    }
    reserved_read_bytes_ -= b;
    fetch_cv_.notify_all();
  }
}

void SpillStore::write_slot(std::unique_lock<std::mutex>& lk, SlotId id) {
  slots_[id].state = State::kWriting;
  // Everything the unlocked section needs is copied out: slots_ may grow
  // (invalidating references) while the lock is dropped.
  const std::string path = file_path(id);
  // Payload address stable while kWriting, whichever precision the slot holds.
  const void* data = slots_[id].block != nullptr
                         ? static_cast<const void*>(slots_[id].block->data())
                         : static_cast<const void*>(slots_[id].blockf->data());
  const int rows = slots_[id].rows, cols = slots_[id].cols;
  const std::uint64_t bytes = slots_[id].bytes;
  const std::string name = slots_[id].name;
  bool inject = false;
  if (inject_write_failures_ > 0) {
    --inject_write_failures_;
    inject = true;
  }
  lk.unlock();

  std::string err;
  {
    FileHeader h{};
    std::memcpy(h.magic, kMagic, sizeof(h.magic));
    h.version = kVersion;
    h.slot = static_cast<std::uint32_t>(id);
    h.rows = rows;
    h.cols = cols;
    h.payload_bytes = bytes;
    h.checksum = fnv1a(data, bytes);
    FileCloser fc{std::fopen(path.c_str(), "wb")};
    if (fc.f == nullptr) {
      err = std::string("cannot open for writing: ") + std::strerror(errno);
    } else if (std::fwrite(&h, sizeof(h), 1, fc.f) != 1) {
      err = "header write failed";
    } else if (inject) {
      // Simulated ENOSPC: a partial payload lands on disk, then the write
      // fails — exactly the state a full disk leaves behind.
      std::fwrite(data, 1, bytes / 2, fc.f);
      err = "No space left on device (injected fault)";
    } else if (std::fwrite(data, 1, bytes, fc.f) != bytes) {
      err = std::string("payload write failed: ") + std::strerror(errno);
    }
  }

  lk.lock();
  if (!err.empty()) {
    fail("SpillStore: spill write failed for spill file " + path + " (block " +
         name + ", " + std::to_string(rows) + "x" + std::to_string(cols) +
         "): " + err);
    return;
  }
  Slot& s = slots_[id];
  s.state = State::kClean;
  st_.spilled_blocks += 1;
  st_.spilled_bytes += bytes;
  if (s.pins == 0) evict_q_.push_back(id);
  cv_.notify_all();
  fetch_cv_.notify_all();
}

void SpillStore::read_slot(std::unique_lock<std::mutex>& lk, SlotId id,
                           bool required) {
  slots_[id].state = State::kReading;
  slots_[id].prefetched = !required;
  const std::string path = file_path(id);
  const bool is_f32 = slots_[id].blockf != nullptr;
  const int rows = slots_[id].rows, cols = slots_[id].cols;
  const std::uint64_t bytes = slots_[id].bytes;
  const std::string name = slots_[id].name;
  if (required) {
    st_.faults += 1;
    st_.fault_bytes += bytes;
  } else {
    st_.prefetches += 1;
    st_.prefetch_bytes += bytes;
  }
  lk.unlock();

  std::string err;
  Matrix m;
  MatrixF mf;
  void* dst = nullptr;
  if (is_f32) {
    mf = BlockPool::global().makef(rows, cols);
    dst = mf.data();
  } else {
    m = BlockPool::global().make(rows, cols);
    dst = m.data();
  }
  {
    FileHeader h{};
    FileCloser fc{std::fopen(path.c_str(), "rb")};
    if (fc.f == nullptr) {
      err = std::string("cannot open for reading: ") + std::strerror(errno);
    } else if (std::fread(&h, sizeof(h), 1, fc.f) != 1) {
      err = "truncated spill file (header short)";
    } else if (std::memcmp(h.magic, kMagic, sizeof(h.magic)) != 0 ||
               h.version != kVersion) {
      err = "corrupt spill file (bad magic/version)";
    } else if (h.slot != static_cast<std::uint32_t>(id) || h.rows != rows ||
               h.cols != cols || h.payload_bytes != bytes) {
      err = "corrupt spill file (header does not match block)";
    } else {
      const std::size_t got = std::fread(dst, 1, bytes, fc.f);
      if (got != bytes) {
        err = "truncated spill file (expected " + std::to_string(bytes) +
              " payload bytes, got " + std::to_string(got) + ")";
      } else if (fnv1a(dst, bytes) != h.checksum) {
        err = "checksum mismatch (corrupt spill file)";
      }
    }
  }

  lk.lock();
  if (!err.empty()) {
    const std::string msg = "SpillStore: spill read failed for spill file " +
                            path + " (block " + name + ", " +
                            std::to_string(rows) + "x" + std::to_string(cols) +
                            "): " + err;
    fail(msg);
    throw std::runtime_error(msg);
  }
  Slot& s = slots_[id];
  if (is_f32) {
    *s.blockf = std::move(mf);
  } else {
    *s.block = std::move(m);
  }
  s.state = State::kClean;
  blockmem::charge(bytes);
  st_.resident_bytes += bytes;
  st_.peak_resident_bytes = std::max(st_.peak_resident_bytes, st_.resident_bytes);
  cv_.notify_all();
}

void SpillStore::schedule_reads() {
  // The planning pass: walk the sealed plan ahead of the sweep cursor in step
  // order, reserving resident budget and queueing cold blocks for the IO
  // threads to read. Planning stops at the first block the budget cannot
  // cover (scheduling out of plan order would let a far-future block squat on
  // budget the very next step needs). Runs on the planner thread whenever
  // budget or the cursor moves, and synchronously inside release_step so
  // freshly freed budget flows into the next steps' reads before the sweep
  // can acquire them.
  if (!sealed_ || draining_ || !error_.empty()) return;
  // Stamp every slot's earliest upcoming use with this walk's generation:
  // eviction ranks residents by it (Belady), and a stale stamp means the
  // block is never read again this pass.
  ++plan_gen_;
  for (int s = cursor_ + 1; s < static_cast<int>(steps_.size()); ++s) {
    for (const SlotId id : steps_[s]) {
      if (id == kNoSlot) continue;
      Slot& sl = slots_[id];
      if (sl.plan_gen != plan_gen_) {
        sl.plan_gen = plan_gen_;
        sl.next_use = s;
      }
    }
  }
  bool scheduled = false, full = false;
  for (int s = cursor_ + 1; !full && s < static_cast<int>(steps_.size());
       ++s) {
    for (const SlotId id : steps_[s]) {
      if (id == kNoSlot) continue;
      Slot& sl = slots_[id];
      // A block of an upcoming step that is already resident (an adoption
      // leftover, or carried over from an earlier step) is as valuable as
      // one read ahead: flag it so the FIFO eviction path cannot spend
      // it — that would trade a certain re-read for a speculative one.
      if (sl.state == State::kClean) sl.prefetched = true;
      if (sl.state != State::kSpilled || sl.read_queued) continue;
      const std::uint64_t need = reserved_read_bytes_ + sl.bytes;
      // Make room with past-step leftovers first, then residents whose
      // next use lies beyond this step — never pinned blocks or blocks
      // this very window still needs.
      if (need <= budget_) evict_toward(budget_ - need, /*sweep=*/false);
      while (st_.resident_bytes + need > budget_ && evict_farthest_after(s)) {
      }
      if (st_.resident_bytes + need > budget_) {
        full = true;
        break;
      }
      sl.read_queued = true;
      reserved_read_bytes_ += sl.bytes;
      read_q_.push_back(id);
      scheduled = true;
    }
  }
  if (scheduled) work_cv_.notify_all();
}

void SpillStore::prefetch_main() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    schedule_reads();
    fetch_cv_.wait(lk);
  }
}

}  // namespace h2
