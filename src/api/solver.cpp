#include "api/solver.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "blr/blr_matrix.hpp"
#include "core/ulv_factorization.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "hodlr/hodlr.hpp"
#include "runtime/thread_pool.hpp"
#include "util/env.hpp"

namespace h2 {

std::string solver_default_spill_dir() {
  return env::get_string("H2_SPILL_DIR", std::string());
}

double solver_default_spill_mb() { return env::get_double("H2_SPILL_MB", 256.0); }

int solver_default_spill_threads() {
  return env::get_int("H2_SPILL_THREADS", 2);
}

Precision solver_default_precision() {
  std::string v = env::get_string("H2_PRECISION", std::string());
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return (v == "f32" || v == "fp32" || v == "single") ? Precision::F32
                                                      : Precision::F64;
}

UlvOptions SolverOptions::ulv_options() const {
  UlvOptions u;
  u.tol = tol;
  u.max_rank = max_rank;
  u.fill_tol_factor = fill_tol_factor;
  u.fillin_augmentation = fillin_augmentation;
  u.mode = mode;
  u.executor = executor;
  u.solve_executor = solve_executor;
  u.schedule = schedule;
  u.priority = priority;
  u.n_workers = n_workers;
  u.pool = pool;
  u.record_tasks = record_tasks;
  u.width_stable_solve = width_stable_solve;
  u.precision = precision;
  u.spill_dir = spill_dir;
  u.spill_budget_bytes =
      static_cast<std::uint64_t>(spill_budget_mb * (1ull << 20));
  u.spill_threads = spill_threads;
  return u;
}

void SolverOptions::validate() const {
  if (leaf_size < 2)
    throw std::invalid_argument(
        "SolverOptions: leaf_size must be >= 2 (got " +
        std::to_string(leaf_size) + "); clusters are split in halves");
  if (!(eta > 0.0))
    throw std::invalid_argument(
        "SolverOptions: eta must be > 0 (got " + std::to_string(eta) + ")");
  if (!(build_tol_factor > 0.0))
    throw std::invalid_argument(
        "SolverOptions: build_tol_factor must be > 0 (got " +
        std::to_string(build_tol_factor) + ")");
  if (spill_budget_mb < 0.0)
    throw std::invalid_argument(
        "SolverOptions: spill_budget_mb must be >= 0 (got " +
        std::to_string(spill_budget_mb) +
        "); it is the resident byte budget of the spill tier (H2_SPILL_MB)");
  if (refine_tol < 0.0)
    throw std::invalid_argument(
        "SolverOptions: refine_tol must be >= 0 (got " +
        std::to_string(refine_tol) + "); 0 means refine to tol");
  if (max_refine_iters < 1)
    throw std::invalid_argument(
        "SolverOptions: max_refine_iters must be >= 1 (got " +
        std::to_string(max_refine_iters) + ")");
  UlvOptions u = ulv_options();
  u.validate();  // tol, fill_tol_factor, n_workers checks live there
}

/// The whole pipeline, built once and shared (immutably) by every copy of
/// the Solver and every in-flight SolveHandle.
struct Solver::Impl {
  /// Materialized when n_workers > 0 and no explicit pool was given: ONE
  /// private pool shared by the factorization, every solve, and the
  /// solve_async/solve_batch pipelining — declared first so it outlives
  /// the backends that borrow it.
  std::unique_ptr<ThreadPool> owned_pool;
  SolverOptions opt;
  std::unique_ptr<ClusterTree> tree;
  // Exactly one backend is set, by opt.structure.
  std::unique_ptr<UlvFactorization> ulv;  // H2 / HSS
  std::unique_ptr<BlrMatrix> blr;
  std::unique_ptr<HodlrMatrix> hodlr;
  /// The fp64 operator mixed-precision solves refine against, retained only
  /// under Precision::F32 (for BLR/HODLR it is built specifically for the
  /// residual matvec — the Kernel does not outlive build()).
  std::unique_ptr<H2Matrix> op;
  /// Most recent refinement outcome (see Solver::last_refine). Mutable
  /// because the Impl is shared immutably; solves may race on it.
  mutable RefineResult last_refine;
  mutable std::mutex refine_mu;
};

Solver Solver::build(const PointCloud& points, const Kernel& kernel,
                     SolverOptions opt) {
  opt.validate();
  auto impl = std::make_shared<Impl>();
  Rng rng(opt.seed);
  impl->tree = std::make_unique<ClusterTree>(
      ClusterTree::build(points, opt.leaf_size, rng, opt.partitioner));
  switch (opt.structure) {
    case SolverStructure::H2:
    case SolverStructure::HSS: {
      // Only the ULV backends run on a borrowed pool; BLR/HODLR drive
      // their own workers, so materializing one here would just park
      // threads for the Solver's lifetime.
      if (opt.pool == nullptr && opt.n_workers > 0) {
        impl->owned_pool = std::make_unique<ThreadPool>(
            opt.n_workers, opt.ulv_options().queue_policy());
        opt.pool = impl->owned_pool.get();
      }
      H2BuildOptions ho;
      ho.admissibility = {opt.structure == SolverStructure::H2
                              ? Admissibility::Strong
                              : Admissibility::Weak,
                          opt.eta};
      ho.tol = opt.build_tol_factor * opt.tol;
      ho.max_rank = opt.max_rank;
      // The H2Matrix is only needed while factorizing — except under F32,
      // where it stays on as the refinement loop's fp64 residual operator.
      auto a = std::make_unique<H2Matrix>(*impl->tree, kernel, ho);
      impl->ulv = std::make_unique<UlvFactorization>(*a, opt.ulv_options());
      if (opt.precision == Precision::F32) impl->op = std::move(a);
      break;
    }
    case SolverStructure::BLR: {
      BlrOptions bo;
      bo.tol = opt.tol;
      bo.max_rank = opt.max_rank;
      // BLR drives its own task-graph workers rather than borrowing a
      // pool, so an explicit pool contributes its SIZE (the caller's
      // parallelism bound); otherwise n_workers, with 0 meaning "use the
      // hardware" as everywhere else in the options surface.
      bo.n_threads = opt.pool != nullptr ? opt.pool->size()
                     : opt.n_workers > 0 ? opt.n_workers
                                         : ThreadPool::env_threads();
      impl->blr = std::make_unique<BlrMatrix>(*impl->tree, kernel, bo);
      impl->blr->factorize();
      if (opt.precision == Precision::F32) impl->blr->round_storage_to_fp32();
      break;
    }
    case SolverStructure::HODLR: {
      impl->hodlr = std::make_unique<HodlrMatrix>(
          *impl->tree, kernel, HodlrMatrix::Options{opt.tol, opt.max_rank});
      if (opt.precision == Precision::F32) impl->hodlr->round_storage_to_fp32();
      break;
    }
  }
  if (opt.precision == Precision::F32 && impl->op == nullptr) {
    // BLR/HODLR factored (and rounded) their own storage above; build the
    // fp64 residual operator for the refinement loop while the kernel is
    // still alive. Weak admissibility matches their (weak/flat) families.
    // The operator's approximation error floors the dense residual the
    // refinement can reach, so its tolerance follows the TIGHTER of tol and
    // refine_tol — an explicit refine_tol below tol buys a more accurate
    // (larger) operator, not a silently unreachable target.
    H2BuildOptions ho;
    ho.admissibility = {Admissibility::Weak, opt.eta};
    ho.tol = opt.build_tol_factor *
             (opt.refine_tol > 0.0 ? std::min(opt.tol, opt.refine_tol)
                                   : opt.tol);
    ho.max_rank = opt.max_rank;
    impl->op = std::make_unique<H2Matrix>(*impl->tree, kernel, ho);
  }
  impl->opt = opt;  // after the switch: it may have bound opt.pool
  return Solver(std::move(impl));
}

namespace {

void check_rhs_rows(int got, int want) {
  // The permutation helpers and backends only assert() shapes, which
  // Release builds compile out — a facade caller with a stale rhs would
  // corrupt the heap instead of hearing about it.
  if (got != want)
    throw std::invalid_argument("Solver: rhs has " + std::to_string(got) +
                                " rows, but the solver was built over " +
                                std::to_string(want) + " points");
}

}  // namespace

void Solver::solve_in_place(MatrixView b) const {
  check_rhs_rows(b.rows(), n());
  auto raw = [this](MatrixView v) {
    if (impl_->ulv) {
      impl_->ulv->solve(v);
    } else if (impl_->blr) {
      impl_->blr->solve(v);
    } else {
      impl_->hodlr->solve(v);
    }
  };
  if (impl_->op == nullptr) {
    raw(b);
    return;
  }
  // Mixed precision: one raw reduced-precision solve seeds the iterate,
  // then fp64 refinement against the retained operator drives the residual
  // to refine_tol (tol when unset). b is both the rhs and, on exit, x.
  Matrix x = Matrix::from(b);
  raw(x);
  const double target = impl_->opt.refine_tol > 0.0 ? impl_->opt.refine_tol
                                                    : impl_->opt.tol;
  const RefineResult rr =
      refine(*impl_->op, raw, b, x, impl_->opt.max_refine_iters, target);
  {
    const std::lock_guard<std::mutex> lk(impl_->refine_mu);
    impl_->last_refine = rr;
  }
  copy_into(x, b);
}

RefineResult Solver::last_refine() const {
  const std::lock_guard<std::mutex> lk(impl_->refine_mu);
  return impl_->last_refine;
}

Matrix Solver::solve(ConstMatrixView b) const {
  check_rhs_rows(b.rows(), n());
  Matrix x = impl_->tree->to_tree_order(b);
  solve_in_place(x);
  return impl_->tree->from_tree_order(x);
}

ThreadPool& Solver::async_pool() const {
  // Pipeline on the USER's explicit pool or the process-wide pool — never
  // on the Impl-owned private pool: the queued task holds a shared_ptr to
  // Impl, and if it were the last reference, releasing it on an owned-pool
  // worker would run ~Impl -> ~ThreadPool on that pool's own thread (a
  // self-join). On the global pool, destroying the owned pool from a
  // worker of a DIFFERENT pool is safe; the solves inside still execute on
  // the private pool via opt.pool.
  ThreadPool* user_pool =
      impl_->opt.pool != impl_->owned_pool.get() ? impl_->opt.pool : nullptr;
  return user_pool != nullptr ? *user_pool : ThreadPool::global();
}

SolveHandle Solver::solve_async(Matrix b) const {
  auto task = std::make_shared<std::packaged_task<SolveHandle::Outcome()>>(
      [impl = impl_, b = std::move(b)] {
        const Solver s(impl);
        const std::uint64_t gen0 =
            impl->ulv ? impl->ulv->solve_stats_generation() : 0;
        Matrix x = s.solve(b);
        // Snapshot the backend's trace only if a DAG solve actually
        // completed since this one started — a solve that pipelined inline
        // (the level sweep) must come back EMPTY, not carry a stale
        // sibling's trace as its own. See SolveHandle::stats.
        SolveHandle::Outcome out{std::move(x), ExecStats{}};
        if (impl->ulv && impl->ulv->solve_stats_generation() != gen0)
          out.stats = impl->ulv->last_solve_stats();
        return out;
      });
  std::future<SolveHandle::Outcome> fut = task->get_future();
  ThreadPool& pool = async_pool();
  if (ThreadPool::current() == &pool) {
    // Already on a worker of the pipelining pool: run inline instead of
    // blocking a future on work queued behind this very task.
    (*task)();
  } else {
    pool.submit([task] { (*task)(); });
  }
  return SolveHandle(std::move(fut), impl_);
}

std::vector<Matrix> Solver::solve_batch(
    const std::vector<Matrix>& rhs) const {
  std::vector<SolveHandle> handles;
  handles.reserve(rhs.size());
  for (const Matrix& b : rhs) handles.push_back(solve_async(b));
  std::vector<Matrix> out;
  out.reserve(rhs.size());
  for (SolveHandle& h : handles) out.push_back(h.get());
  return out;
}

double Solver::logabsdet() const {
  if (impl_->ulv) return impl_->ulv->logabsdet();
  if (impl_->blr) return impl_->blr->logabsdet();
  return impl_->hodlr->logabsdet();
}

ExecStats Solver::last_solve_stats() const {
  return impl_->ulv ? impl_->ulv->last_solve_stats() : ExecStats{};
}

int Solver::n() const { return impl_->tree->n_points(); }

SolverStructure Solver::structure() const { return impl_->opt.structure; }

const ClusterTree& Solver::tree() const { return *impl_->tree; }

const UlvStats* Solver::ulv_stats() const {
  return impl_->ulv ? &impl_->ulv->stats() : nullptr;
}

int Solver::max_rank_used() const {
  if (impl_->ulv) return impl_->ulv->stats().max_rank;
  if (impl_->blr) return impl_->blr->max_rank_used();
  return impl_->hodlr->max_rank_used();
}

SpillStats Solver::spill_stats() const {
  return impl_->ulv ? impl_->ulv->spill_stats() : SpillStats{};
}

bool Solver::demote_to_disk(const std::string& dir) {
  return impl_->ulv ? impl_->ulv->demote_to_disk(dir) : false;
}

void Solver::promote() {
  if (impl_->ulv) impl_->ulv->promote();
}

Matrix SolveHandle::get() {
  Outcome out = future_.get();
  stats_ = std::move(out.stats);
  return std::move(out.x);
}

bool SolveHandle::ready() const {
  // After get() the future is invalid; wait_for on it would be UB.
  return !future_.valid() || future_.wait_for(std::chrono::seconds(0)) ==
                                 std::future_status::ready;
}

void SolveHandle::wait() const {
  if (future_.valid()) future_.wait();
}

}  // namespace h2
