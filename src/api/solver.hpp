#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/refine.hpp"
#include "core/ulv_options.hpp"
#include "storage/spill_store.hpp"
#include "geometry/cloud.hpp"
#include "geometry/cluster_tree.hpp"
#include "kernels/kernel.hpp"
#include "linalg/matrix.hpp"

/// \namespace h2
/// \brief A scalable linear-time dense direct solver: the H2-ULV
/// factorization without trailing sub-matrix dependencies (SC 2022), its
/// task-DAG runtime, baseline structures (HSS/BLR/HODLR), and the
/// distributed scheduling simulator behind the paper's scaling figures.
/// Start at h2::Solver; docs/ARCHITECTURE.md maps the layers.
namespace h2 {

class ThreadPool;

/// Environment default of SolverOptions::spill_dir: $H2_SPILL_DIR, else ""
/// (spilling off).
[[nodiscard]] std::string solver_default_spill_dir();
/// Environment default of SolverOptions::spill_budget_mb: $H2_SPILL_MB,
/// else 256.
[[nodiscard]] double solver_default_spill_mb();
/// Environment default of SolverOptions::spill_threads: $H2_SPILL_THREADS,
/// else 2.
[[nodiscard]] int solver_default_spill_threads();
/// Environment default of SolverOptions::precision: $H2_PRECISION
/// ("f32"/"fp32"/"single" selects Precision::F32; anything else, or unset,
/// Precision::F64).
[[nodiscard]] Precision solver_default_precision();

/// Which rank-structured representation (and hence which direct solver)
/// backs an h2::Solver — the paper's Table I families over one geometry.
enum class SolverStructure {
  /// Hierarchical, strong admissibility, shared nested bases, ULV
  /// factorization without trailing sub-matrix dependencies (the paper's
  /// method, and the default — bounded ranks in 3-D).
  H2,
  /// Hierarchical, weak admissibility, shared bases, same ULV engine
  /// (ranks grow with N in 3-D; kept as the ablation family).
  HSS,
  /// Flat block low-rank Cholesky with trailing updates (the LORAPO-class
  /// baseline). Requires an SPD kernel matrix.
  BLR,
  /// Hierarchical, independent bases, recursive Sherman-Morrison-Woodbury.
  HODLR,
};

/// Everything Solver::build needs, in one builder-style object: geometry
/// partitioning, representation construction (H2BuildOptions), and
/// factorization/solve execution (UlvOptions) — so callers configure one
/// surface instead of wiring three option structs through five steps. The
/// with_* setters chain:
///
///   auto s = Solver::build(points, kernel,
///                          SolverOptions{}.with_tol(1e-8).with_leaf_size(64));
struct SolverOptions {
  /// Which rank-structured family backs the solver (Table I; default H2).
  SolverStructure structure = SolverStructure::H2;

  // ---- Geometry / clustering.
  /// Maximum points per cluster-tree leaf.
  int leaf_size = 128;
  /// How points are split into clusters (recursive 2-means or Morton).
  Partitioner partitioner = Partitioner::KMeans;
  /// Seed of the (deterministic) clustering Rng.
  std::uint64_t seed = 42;

  // ---- Representation construction.
  /// Strong-admissibility separation parameter (H2; HSS/HODLR are weak).
  double eta = 0.75;
  /// Relative solve tolerance; the shared-basis truncation of the ULV
  /// factorization runs at this, construction (ACA) at build_tol_factor
  /// of it.
  double tol = 1e-8;
  /// Construction (ACA) tolerance as a fraction of `tol`.
  double build_tol_factor = 1e-2;
  int max_rank = -1;  ///< optional hard rank cap (-1: none)

  // ---- Execution (see UlvOptions for the full story).
  /// Parallel (the paper's dependency-free elimination) or the Sequential
  /// trailing-update baseline.
  UlvMode mode = UlvMode::Parallel;
  /// Factorization executor: the task DAG (default) or bulk-synchronous
  /// phase loops.
  UlvExecutor executor = UlvExecutor::TaskDag;
  /// Solve executor: the recorded solve DAG (default) or the level sweep.
  UlvExecutor solve_executor = UlvExecutor::TaskDag;
  /// Ready-queue discipline of the executing pool (work stealing or FIFO).
  UlvSchedule schedule = UlvSchedule::WorkSteal;
  /// Ready-task ordering (critical-path priorities or submission order).
  UlvPriority priority = UlvPriority::CriticalPath;
  /// 0: the process-wide pool; > 0: build() materializes ONE private pool
  /// of that size (H2/HSS), shared by the factorization and every solve.
  /// BLR and HODLR drive their own workers: BLR sizes them from this (0:
  /// hardware), HODLR is serial.
  int n_workers = 0;
  /// Explicit pool (wins over n_workers); also the pool solve_async
  /// pipelines batches on. BLR borrows only its SIZE as the worker bound.
  ThreadPool* pool = nullptr;
  /// Record per-task timings + the executed DAG (feeds UlvDistModel).
  bool record_tasks = false;
  /// Fill-in directions are truncated at fill_tol_factor * tol.
  double fill_tol_factor = 0.01;
  /// The paper's key idea: fold pre-computed fill-in directions into the
  /// shared bases (turn off only for the ablation).
  bool fillin_augmentation = true;
  /// Make each solution column's bits independent of nrhs (ULV backends):
  /// solving k right-hand sides as one n x k block is then bitwise equal to
  /// k separate solve() calls. The batching contract h2::Server coalesces
  /// under; see UlvOptions::width_stable_solve for mechanism and cost.
  bool width_stable_solve = false;

  // ---- Mixed precision (docs/ARCHITECTURE.md "Precision").
  /// Element precision of the stored factorization ($H2_PRECISION, f64).
  /// Precision::F32 halves every factor block's bytes (ULV backends run the
  /// native fp32 engine; BLR/HODLR round their factor storage through
  /// fp32), and every solve then finishes with fp64 iterative refinement
  /// against the retained fp64 operator — so solutions come back at
  /// fp64-grade residuals from an fp32-sized factor. Inspect the outcome
  /// with Solver::last_refine().
  Precision precision = solver_default_precision();
  /// Relative residual the refinement loop drives mixed-precision solves
  /// to (||b - A x||_F / ||b||_F). 0 (default): refine to `tol`, the
  /// factorization's own truncation accuracy. A target the factorization
  /// cannot reach reports RefineResult::converged = false (never loops
  /// past max_refine_iters). Ignored under Precision::F64.
  double refine_tol = 0.0;
  /// Iteration cap of the refinement loop (mixed-precision solves).
  int max_refine_iters = 20;

  // ---- Out-of-core factor store (src/storage; knobs in docs/TUNING.md).
  /// Existing writable directory for the spill tier; empty (the default
  /// unless $H2_SPILL_DIR is set) keeps the whole factor resident. When
  /// set, factor blocks spill to checksummed files at their release points
  /// and are prefetched ahead of each solve sweep — decoupling solvable N
  /// from RAM while keeping results bitwise identical to the in-RAM run
  /// (ULV structures only; BLR/HODLR ignore it).
  std::string spill_dir = solver_default_spill_dir();
  /// Resident budget for spilled factor blocks in MiB ($H2_SPILL_MB, 256).
  double spill_budget_mb = solver_default_spill_mb();
  /// Background spill-writer threads ($H2_SPILL_THREADS, 2).
  int spill_threads = solver_default_spill_threads();

  SolverOptions& with_structure(SolverStructure s) { structure = s; return *this; }  ///< chain-set structure
  SolverOptions& with_leaf_size(int v) { leaf_size = v; return *this; }  ///< chain-set leaf_size
  SolverOptions& with_partitioner(Partitioner p) { partitioner = p; return *this; }  ///< chain-set partitioner
  SolverOptions& with_seed(std::uint64_t v) { seed = v; return *this; }  ///< chain-set seed
  SolverOptions& with_eta(double v) { eta = v; return *this; }  ///< chain-set eta
  SolverOptions& with_tol(double v) { tol = v; return *this; }  ///< chain-set tol
  SolverOptions& with_build_tol_factor(double v) { build_tol_factor = v; return *this; }  ///< chain-set build_tol_factor
  SolverOptions& with_max_rank(int v) { max_rank = v; return *this; }  ///< chain-set max_rank
  SolverOptions& with_mode(UlvMode v) { mode = v; return *this; }  ///< chain-set mode
  SolverOptions& with_executor(UlvExecutor v) { executor = v; return *this; }  ///< chain-set executor
  SolverOptions& with_solve_executor(UlvExecutor v) { solve_executor = v; return *this; }  ///< chain-set solve_executor
  SolverOptions& with_schedule(UlvSchedule v) { schedule = v; return *this; }  ///< chain-set schedule
  SolverOptions& with_priority(UlvPriority v) { priority = v; return *this; }  ///< chain-set priority
  SolverOptions& with_workers(int v) { n_workers = v; return *this; }  ///< chain-set n_workers
  SolverOptions& with_pool(ThreadPool* p) { pool = p; return *this; }  ///< chain-set pool
  SolverOptions& with_record_tasks(bool v) { record_tasks = v; return *this; }  ///< chain-set record_tasks
  SolverOptions& with_width_stable_solve(bool v) { width_stable_solve = v; return *this; }  ///< chain-set width_stable_solve
  SolverOptions& with_precision(Precision p) { precision = p; return *this; }  ///< chain-set precision
  SolverOptions& with_refine_tol(double v) { refine_tol = v; return *this; }  ///< chain-set refine_tol
  SolverOptions& with_max_refine_iters(int v) { max_refine_iters = v; return *this; }  ///< chain-set max_refine_iters
  SolverOptions& with_spill_dir(std::string d) { spill_dir = std::move(d); return *this; }  ///< chain-set spill_dir
  SolverOptions& with_spill_budget_mb(double v) { spill_budget_mb = v; return *this; }  ///< chain-set spill_budget_mb
  SolverOptions& with_spill_threads(int v) { spill_threads = v; return *this; }  ///< chain-set spill_threads

  /// The UlvOptions this surface consolidates (H2/HSS structures).
  [[nodiscard]] UlvOptions ulv_options() const;
  /// Throws std::invalid_argument on nonsensical inputs (delegates the
  /// execution knobs to UlvOptions::validate).
  void validate() const;
};

/// Future-like handle to an in-flight solve_async: independent batches
/// pipeline on the shared ThreadPool while the caller keeps working. The
/// handle shares ownership of the solver's factorization, so it stays valid
/// even if the Solver goes out of scope first.
class SolveHandle {
 public:
  /// What an async solve delivers: the solution plus the execution trace
  /// observed when it completed (see SolveHandle::stats).
  struct Outcome {
    Matrix x;         ///< the solution, point ordering
    ExecStats stats;  ///< backend solve-DAG trace snapshot (may be empty)
  };

  /// Block until the solution (point ordering) is ready and take it.
  /// Rethrows any exception the solve raised. Valid once.
  [[nodiscard]] Matrix get();
  /// Non-blocking readiness probe (true once taken by get()).
  [[nodiscard]] bool ready() const;
  /// Block until the solve finishes (no-op once taken by get()).
  void wait() const;
  /// Snapshot of the ULV backend's DAG-solve ExecStats taken when this
  /// solve completed, valid after get(). Empty when no NEW DAG trace was
  /// produced during this solve: non-ULV structures, a PhaseLoops solve
  /// executor, or a solve that pipelined inline on a pool worker
  /// (whole-solve pipelining runs the level sweep, not the DAG) — a stale
  /// trace from an earlier solve is never presented as this one's.
  /// Diagnostic only: under CONCURRENT solves the snapshot may describe a
  /// sibling solve that finished in the same window.
  [[nodiscard]] const ExecStats& stats() const { return stats_; }

 private:
  friend class Solver;
  SolveHandle(std::future<Outcome> f, std::shared_ptr<const void> keep_alive)
      : future_(std::move(f)), keep_alive_(std::move(keep_alive)) {}

  std::future<Outcome> future_;
  ExecStats stats_;                         ///< filled by get()
  std::shared_ptr<const void> keep_alive_;  ///< the Solver's Impl
};

/// The one-object entry point to the library: owns the whole
/// points -> ClusterTree -> representation -> factorization pipeline behind
/// a redesigned solve surface.
///
///   Solver solver = Solver::build(points, kernel, opt);
///   Matrix x = solver.solve(b);   // b, x in the caller's POINT ordering
///
/// Ordering contract: solve/solve_batch/solve_async take and return
/// right-hand sides in the caller's original point ordering (row i of b
/// corresponds to points[i]); the tree permutation is handled internally
/// via ClusterTree::to_tree_order/from_tree_order. solve_in_place is the
/// zero-copy path and works in TREE ordering (the ordering of
/// tree().points()).
///
/// A Solver is cheap to copy (shared immutable factorization) and safe to
/// solve from many threads concurrently — the direct-solver reuse story:
/// factorize once, serve many right-hand sides.
class Solver {
 public:
  /// Build the full pipeline: cluster `points`, assemble the structure's
  /// representation of kernel(x_i, x_j), factorize. The kernel is only used
  /// during construction and need not outlive the call.
  static Solver build(const PointCloud& points, const Kernel& kernel,
                      SolverOptions opt = {});

  /// Out-of-place solve A x = b in POINT ordering; b is n x nrhs.
  [[nodiscard]] Matrix solve(ConstMatrixView b) const;

  /// Zero-copy in-place solve; b is n x nrhs in TREE ordering.
  void solve_in_place(MatrixView b) const;

  /// Solve many independent right-hand-side batches (each n x nrhs_i, point
  /// ordering). The batches pipeline concurrently on the pool; results come
  /// back in input order and match serial solve() calls bitwise.
  [[nodiscard]] std::vector<Matrix> solve_batch(
      const std::vector<Matrix>& rhs) const;

  /// Asynchronous solve (point ordering): enqueue on the pool and return
  /// immediately. Independent solves overlap; each runs its sweep inline on
  /// its worker, so a batch pipelines whole solves across the pool.
  [[nodiscard]] SolveHandle solve_async(Matrix b) const;

  /// log|det A| from the backend's triangular factors.
  [[nodiscard]] double logabsdet() const;

  /// ExecStats of the most recent DAG-executed solve on the ULV backend
  /// (UlvFactorization::last_solve_stats): worker lanes, per-task spans,
  /// executed/stolen counters. Empty for BLR/HODLR backends, before any
  /// solve, or when solves ran the PhaseLoops sweep. Set H2_SOLVE_TRACE to
  /// a path to also dump each DAG solve's trace CSV.
  [[nodiscard]] ExecStats last_solve_stats() const;

  /// Typed status of the most recent mixed-precision solve on this
  /// factorization: refinement iterations applied, the final relative
  /// residual, and whether refine_tol was actually reached (a too-tight
  /// target reports converged = false instead of looping). Default-
  /// constructed before any solve and for Precision::F64 solvers, which
  /// never refine. Last-writer-wins under concurrent solves — a
  /// diagnostic surface, like last_solve_stats().
  [[nodiscard]] RefineResult last_refine() const;

  /// Number of points (= matrix dimension).
  [[nodiscard]] int n() const;
  /// The structure family this solver was built with.
  [[nodiscard]] SolverStructure structure() const;
  /// The cluster tree (its points() are the TREE ordering solve_in_place
  /// works in).
  [[nodiscard]] const ClusterTree& tree() const;
  /// ULV statistics (H2/HSS structures; nullptr for BLR/HODLR).
  [[nodiscard]] const UlvStats* ulv_stats() const;
  /// Largest rank the factorization kept (skeleton / tile / off-diagonal
  /// rank, by structure).
  [[nodiscard]] int max_rank_used() const;

  /// Counters of the out-of-core factor store: adopted blocks, spill-file
  /// writes, evictions, demand faults vs. prefetch hits, and the resident
  /// high-water mark (see SpillStats for the budget bound). All zero when
  /// spilling is off and the solver was never demoted, and for BLR/HODLR
  /// backends.
  [[nodiscard]] SpillStats spill_stats() const;

  /// Demote the factorization to the disk tier under `dir`: every factor
  /// block is persisted to a checksummed spill file and its resident
  /// payload dropped, after in-flight solves drain. The solver stays fully
  /// usable — each solve faults its read set back in chunk by chunk — at
  /// near-zero resident factor bytes, which is how h2::Server turns its
  /// cache eviction into demotion. Affects every copy sharing this
  /// factorization. Returns false for BLR/HODLR backends (not demotable;
  /// the server erases those instead). Throws std::runtime_error if the
  /// spill directory cannot be created or a spill write fails.
  bool demote_to_disk(const std::string& dir);
  /// Undo demote_to_disk(): restore the previous resident budget and fault
  /// the factor back into RAM. No-op unless currently demoted.
  void promote();

 private:
  struct Impl;
  explicit Solver(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  [[nodiscard]] ThreadPool& async_pool() const;

  std::shared_ptr<const Impl> impl_;
};

}  // namespace h2
