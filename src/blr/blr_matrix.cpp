#include "blr/blr_matrix.hpp"

#include <cassert>
#include <cmath>

#include "kernels/assembly.hpp"

namespace h2 {

BlrMatrix::BlrMatrix(const ClusterTree& tree, const Kernel& kernel,
                     const BlrOptions& opt)
    : tree_(&tree), opt_(opt), nb_(tree.n_clusters(tree.depth())) {
  const int depth = tree.depth();
  for (int i = 0; i < nb_; ++i) {
    const auto rows = tree.cluster_points(depth, i);
    for (int j = 0; j <= i; ++j) {
      Tile t;
      if (i == j) {
        t.dense = true;
        t.d = kernel_block(kernel, rows, rows);
      } else {
        const auto cols = tree.cluster_points(depth, j);
        const int cap = opt.max_rank > 0
                            ? opt.max_rank
                            : static_cast<int>(std::min(rows.size(), cols.size()) / 2);
        LowRank lr = aca_compress(kernel, rows, cols, opt.tol, cap);
        if (lr.rank() >= cap) {
          // Near-field tile: adaptive rank saturated, keep it dense.
          t.dense = true;
          t.d = kernel_block(kernel, rows, cols);
        } else {
          t.dense = false;
          t.lr = std::move(lr);
        }
      }
      tiles_.emplace(Key{i, j}, std::move(t));
    }
  }
}

void BlrMatrix::task_potrf(int k) { potrf(at(k, k).d); }

void BlrMatrix::task_trsm(int i, int k) {
  // T(i,k) <- T(i,k) L(k,k)^-T.
  const Matrix& l = at(k, k).d;
  Tile& t = at(i, k);
  if (t.dense) {
    trsm(Side::Right, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, t.d);
  } else if (t.lr.rank() > 0) {
    // (U V^T) L^-T = U (L^-1 V)^T.
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, l, t.lr.v);
  }
}

void BlrMatrix::task_update(int i, int j, int k) {
  // T(i,j) -= T(i,k) T(j,k)^T, all low-rank-aware, adaptive recompression.
  const Tile& a = at(i, k);
  const Tile& b = at(j, k);
  Tile& c = at(i, j);
  const bool a_lr = !a.dense, b_lr = !b.dense;
  if (a_lr && a.lr.rank() == 0) return;
  if (b_lr && b.lr.rank() == 0) return;

  // Product P = T(i,k) T(j,k)^T as either dense or LowRank factors.
  bool p_dense = false;
  Matrix pd;
  LowRank p;
  if (a_lr && b_lr) {
    const Matrix m = matmul(a.lr.v, b.lr.v, Trans::Yes, Trans::No);  // ra x rb
    if (a.lr.rank() <= b.lr.rank()) {
      p.u = a.lr.u;
      p.v = matmul(b.lr.u, m, Trans::No, Trans::Yes);
    } else {
      p.u = matmul(a.lr.u, m);
      p.v = b.lr.u;
    }
  } else if (a_lr) {
    p.u = a.lr.u;
    p.v = matmul(b.d, a.lr.v);  // (U V^T) D^T = U (D V)^T
  } else if (b_lr) {
    p.u = matmul(a.d, b.lr.v);
    p.v = b.lr.u;
  } else {
    p_dense = true;
    pd = matmul(a.d, b.d, Trans::No, Trans::Yes);
  }

  if (c.dense) {
    if (p_dense) {
      axpy(-1.0, pd, c.d);
    } else {
      gemm(-1.0, p.u, Trans::No, p.v, Trans::Yes, 1.0, c.d);
    }
    return;
  }
  // Low-rank target: concatenate and recompress adaptively.
  if (p_dense) p = compress_dense(pd, opt_.tol);
  if (p.rank() == 0) return;
  scale(-1.0, p.u);
  LowRank sum;
  sum.u = hconcat({c.lr.u, p.u});
  sum.v = hconcat({c.lr.v, p.v});
  c.lr = recompress(sum, opt_.tol, opt_.max_rank);
}

ExecStats BlrMatrix::factorize() {
  assert(!factorized_);
  factorized_ = true;

  // Build the classic tiled-Cholesky DAG with last-writer dependencies —
  // exactly the trailing-sub-matrix dependency structure the paper contrasts
  // against (LORAPO/PaRSEC).
  std::map<Key, TaskId> last_writer;
  auto add = [&](std::function<void()> fn, const char* label, int row,
                 std::initializer_list<Key> reads, Key write) {
    const TaskId id = graph_.add_task(std::move(fn), label, /*owner=*/row);
    task_owner_col_.push_back(write.second);
    for (const Key& r : reads) {
      auto it = last_writer.find(r);
      if (it != last_writer.end()) graph_.add_dependency(it->second, id);
    }
    auto it = last_writer.find(write);
    if (it != last_writer.end()) graph_.add_dependency(it->second, id);
    last_writer[write] = id;
    return id;
  };

  for (int k = 0; k < nb_; ++k) {
    add([this, k] { task_potrf(k); }, "potrf", k, {}, {k, k});
    for (int i = k + 1; i < nb_; ++i)
      add([this, i, k] { task_trsm(i, k); }, "trsm", i, {{k, k}}, {i, k});
    for (int i = k + 1; i < nb_; ++i)
      for (int j = k + 1; j <= i; ++j)
        add([this, i, j, k] { task_update(i, j, k); }, "gemm", i,
            {{i, k}, {j, k}}, {i, j});
  }
  return graph_.execute(opt_.n_threads);
}

void BlrMatrix::round_storage_to_fp32() {
  assert(factorized_);
  for (auto& [key, tile] : tiles_) {
    if (tile.dense) {
      round_through_f32(tile.d);
    } else {
      round_through_f32(tile.lr.u);
      round_through_f32(tile.lr.v);
    }
  }
}

void BlrMatrix::solve(MatrixView b) const {
  assert(factorized_);
  const int depth = tree_->depth();
  const int nrhs = b.cols();
  auto chunk = [&](int i) {
    const ClusterNode& nd = tree_->node(depth, i);
    return b.block(nd.begin, 0, nd.size(), nrhs);
  };
  auto apply_offdiag = [&](int i, int j, ConstMatrixView x, MatrixView y,
                           bool transposed) {
    // y -= op(T(i,j)) x with i > j (lower tile).
    const Tile& t = at(i, j);
    if (t.dense) {
      gemm(-1.0, t.d, transposed ? Trans::Yes : Trans::No, x, Trans::No, 1.0, y);
    } else if (t.lr.rank() > 0) {
      const Matrix& first = transposed ? t.lr.v : t.lr.u;
      const Matrix& second = transposed ? t.lr.u : t.lr.v;
      Matrix tmp = matmul(second, x, Trans::Yes, Trans::No);
      gemm(-1.0, first, Trans::No, tmp, Trans::No, 1.0, y);
    }
  };

  // Forward: L z = b.
  for (int i = 0; i < nb_; ++i) {
    MatrixView bi = chunk(i);
    for (int j = 0; j < i; ++j) apply_offdiag(i, j, chunk(j), bi, false);
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::NonUnit, 1.0, at(i, i).d, bi);
  }
  // Backward: L^T x = z.
  for (int i = nb_ - 1; i >= 0; --i) {
    MatrixView bi = chunk(i);
    for (int j = i + 1; j < nb_; ++j) apply_offdiag(j, i, chunk(j), bi, true);
    trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::NonUnit, 1.0, at(i, i).d, bi);
  }
}

double BlrMatrix::logabsdet() const {
  assert(factorized_);
  double acc = 0.0;
  for (int k = 0; k < nb_; ++k) {
    const Matrix& l = at(k, k).d;
    for (int d = 0; d < l.rows(); ++d) acc += std::log(std::fabs(l(d, d)));
  }
  return 2.0 * acc;
}

int BlrMatrix::max_rank_used() const {
  int r = 0;
  for (const auto& [key, t] : tiles_)
    if (!t.dense) r = std::max(r, t.lr.rank());
  return r;
}

std::uint64_t BlrMatrix::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [key, t] : tiles_) {
    if (t.dense)
      bytes += 8ull * t.d.rows() * t.d.cols();
    else
      bytes += 8ull * (t.lr.rows() + t.lr.cols()) * t.lr.rank();
  }
  return bytes;
}

}  // namespace h2
