#pragma once

#include <map>
#include <utility>
#include <vector>

#include "geometry/cluster_tree.hpp"
#include "hmatrix/low_rank.hpp"
#include "kernels/kernel.hpp"
#include "linalg/linalg.hpp"
#include "runtime/task_graph.hpp"

namespace h2 {

/// Options for the BLR baseline (our LORAPO substitute: adaptive-rank block
/// low-rank Cholesky with trailing-sub-matrix dependencies, executed through
/// a task runtime).
struct BlrOptions {
  double tol = 1e-8;  ///< ACA / recompression relative tolerance
  /// Tiles whose adaptive rank exceeds tile_size/2 are stored dense (the
  /// near-field tiles of a 3-D problem).
  int max_rank = -1;
  int n_threads = 1;  ///< workers for the task-graph execution
};

/// Flat-tiled block low-rank matrix in Cholesky form (LORAPO's algorithm
/// class: O(N^2) factorization flops, trailing updates, PaRSEC-style task
/// graph — here our TaskGraph). Tiles are the leaf clusters of the same
/// ClusterTree the H^2 solver uses, so comparisons share one geometry.
///
/// The kernel matrix must be SPD (all built-in kernels are completely
/// monotone radial functions, SPD on distinct points).
class BlrMatrix {
 public:
  /// Assemble: diagonal tiles dense, off-diagonal tiles ACA-compressed with
  /// adaptive rank (dense fallback when the rank is not small).
  BlrMatrix(const ClusterTree& tree, const Kernel& kernel,
            const BlrOptions& opt);

  /// Tiled right-looking Cholesky through the dependency-counted task graph.
  /// Returns the execution stats (trace for Fig. 13; DAG replay inputs for
  /// the scaling simulators).
  ExecStats factorize();

  /// Expose the task DAG structure of the last factorize() for the
  /// scheduling simulator (durations are in the ExecStats records). The
  /// owner tile ROW of each task is the graph's TaskMeta::owner.
  [[nodiscard]] const TaskGraph& graph() const { return graph_; }
  /// Owner tile column of each task (2-D block-cyclic distributions; the
  /// row lives in the graph metadata).
  [[nodiscard]] const std::vector<int>& task_owner_col() const {
    return task_owner_col_;
  }

  /// In-place solve A x = b (b in tree ordering, n x nrhs). Requires
  /// factorize() to have completed.
  void solve(MatrixView b) const;

  /// Round every stored factor entry through fp32 (after factorize()):
  /// emulates fp32 factor storage for the mixed-precision facade — the
  /// perturbed factors still solve, and fp64 refinement against the
  /// original operator recovers the accuracy (Solver under Precision::F32).
  void round_storage_to_fp32();

  /// log(det A) = 2 sum log diag(L).
  [[nodiscard]] double logabsdet() const;

  [[nodiscard]] int n_tiles() const { return nb_; }
  [[nodiscard]] int max_rank_used() const;
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  struct Tile {
    bool dense = true;
    Matrix d;
    LowRank lr;
  };
  using Key = std::pair<int, int>;

  Tile& at(int i, int j) { return tiles_.at({i, j}); }
  [[nodiscard]] const Tile& at(int i, int j) const { return tiles_.at({i, j}); }

  void task_potrf(int k);
  void task_trsm(int i, int k);
  void task_update(int i, int j, int k);  // T(i,j) -= T(i,k) T(j,k)^T

  const ClusterTree* tree_;
  BlrOptions opt_;
  int nb_ = 0;
  std::map<Key, Tile> tiles_;  ///< lower triangle (i >= j)
  TaskGraph graph_;
  std::vector<int> task_owner_col_;
  bool factorized_ = false;
};

}  // namespace h2
