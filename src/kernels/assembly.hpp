#pragma once

#include <span>

#include "geometry/point.hpp"
#include "kernels/kernel.hpp"
#include "linalg/matrix.hpp"

namespace h2 {

/// Fill `out` (rows.size() x cols.size()) with K(rows[i], cols[j]).
void kernel_block_into(const Kernel& k, std::span<const Point> rows,
                       std::span<const Point> cols, MatrixView out);

/// Allocate and fill a kernel sub-block.
Matrix kernel_block(const Kernel& k, std::span<const Point> rows,
                    std::span<const Point> cols);

/// Full dense kernel matrix over `pts` (reference-solution sizes only).
Matrix kernel_dense(const Kernel& k, std::span<const Point> pts);

/// y = G x computed row-block by row-block without materializing G
/// (O(N^2) kernel evals, O(N) memory); used for residual checks at sizes
/// where the dense matrix would not fit.
void kernel_matvec(const Kernel& k, std::span<const Point> pts,
                   ConstMatrixView x, MatrixView y);

}  // namespace h2
