#include "kernels/assembly.hpp"

#include <cassert>

#include "util/flops.hpp"

namespace h2 {

void kernel_block_into(const Kernel& k, std::span<const Point> rows,
                       std::span<const Point> cols, MatrixView out) {
  const int m = static_cast<int>(rows.size());
  const int n = static_cast<int>(cols.size());
  assert(out.rows() == m && out.cols() == n);
  for (int j = 0; j < n; ++j) {
    double* cj = out.col(j);
    const Point& pj = cols[j];
    for (int i = 0; i < m; ++i) cj[i] = k.eval(rows[i], pj);
  }
  flops::add(flops::kernel_eval(static_cast<std::uint64_t>(m) * n,
                                k.flops_per_eval()));
}

Matrix kernel_block(const Kernel& k, std::span<const Point> rows,
                    std::span<const Point> cols) {
  Matrix out(static_cast<int>(rows.size()), static_cast<int>(cols.size()));
  kernel_block_into(k, rows, cols, out);
  return out;
}

Matrix kernel_dense(const Kernel& k, std::span<const Point> pts) {
  return kernel_block(k, pts, pts);
}

void kernel_matvec(const Kernel& k, std::span<const Point> pts,
                   ConstMatrixView x, MatrixView y) {
  const int n = static_cast<int>(pts.size());
  const int nrhs = x.cols();
  assert(x.rows() == n && y.rows() == n && y.cols() == nrhs);
  constexpr int kBlock = 256;
  Matrix buf(kBlock, n);
  for (int i0 = 0; i0 < n; i0 += kBlock) {
    const int mb = std::min(kBlock, n - i0);
    MatrixView rows = buf.block(0, 0, mb, n);
    kernel_block_into(k, pts.subspan(i0, mb), pts, rows);
    for (int c = 0; c < nrhs; ++c) {
      const double* xc = x.col(c);
      double* yc = y.col(c);
      for (int i = 0; i < mb; ++i) {
        double s = 0.0;
        for (int j = 0; j < n; ++j) s += rows(i, j) * xc[j];
        yc[i0 + i] = s;
      }
    }
    flops::add(2ull * mb * n * nrhs);
  }
}

}  // namespace h2
