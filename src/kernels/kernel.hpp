#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "geometry/point.hpp"

namespace h2 {

/// Interaction kernel K(x, y) generating the dense rank-structured matrix
/// G_ij = K(x_i, x_j). Implementations must be symmetric in (a, b).
class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual double eval(const Point& a, const Point& b) const = 0;

  /// Approximate flop cost of one eval (for the Fig. 10 flop accounting).
  [[nodiscard]] virtual std::uint64_t flops_per_eval() const { return 20; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Laplace Green's function 1/(4 pi r) (paper Eq. 29), regularized as
/// r <- r + pv so coincident points produce the finite diagonal 1/(4 pi pv).
/// A completely monotone radial kernel: SPD on distinct points.
class LaplaceKernel final : public Kernel {
 public:
  explicit LaplaceKernel(double pv = 1e-3) : pv_(pv) {}
  [[nodiscard]] double eval(const Point& a, const Point& b) const override {
    return 1.0 / (4.0 * kPi * (dist(a, b) + pv_));
  }
  [[nodiscard]] std::string name() const override { return "laplace"; }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  double pv_;
};

/// Yukawa / screened-Coulomb potential exp(-alpha r) / (4 pi r) (paper
/// Eq. 30 with the charge and permittivity constants folded into alpha and
/// an overall unit scale), regularized like the Laplace kernel.
class YukawaKernel final : public Kernel {
 public:
  explicit YukawaKernel(double alpha = 1.0, double pv = 1e-3)
      : alpha_(alpha), pv_(pv) {}
  [[nodiscard]] double eval(const Point& a, const Point& b) const override {
    const double r = dist(a, b);
    return std::exp(-alpha_ * r) / (4.0 * kPi * (r + pv_));
  }
  [[nodiscard]] std::uint64_t flops_per_eval() const override { return 30; }
  [[nodiscard]] std::string name() const override { return "yukawa"; }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  double alpha_, pv_;
};

/// Squared-exponential covariance exp(-r^2 / (2 l^2)) with a nugget on the
/// diagonal (r == 0). Used by the covariance log-determinant example, one of
/// the applications the paper's introduction motivates.
class GaussianKernel final : public Kernel {
 public:
  explicit GaussianKernel(double lengthscale = 0.5, double nugget = 1e-2)
      : inv2l2_(0.5 / (lengthscale * lengthscale)), nugget_(nugget) {}
  [[nodiscard]] double eval(const Point& a, const Point& b) const override {
    const double r2 = dist2(a, b);
    return std::exp(-r2 * inv2l2_) + (r2 == 0.0 ? nugget_ : 0.0);
  }
  [[nodiscard]] std::uint64_t flops_per_eval() const override { return 25; }
  [[nodiscard]] std::string name() const override { return "gaussian"; }

 private:
  double inv2l2_, nugget_;
};

/// Matern nu=3/2 covariance (1 + sqrt(3) r / l) exp(-sqrt(3) r / l) + nugget.
class Matern32Kernel final : public Kernel {
 public:
  explicit Matern32Kernel(double lengthscale = 0.5, double nugget = 1e-2)
      : s_(std::sqrt(3.0) / lengthscale), nugget_(nugget) {}
  [[nodiscard]] double eval(const Point& a, const Point& b) const override {
    const double sr = s_ * dist(a, b);
    return (1.0 + sr) * std::exp(-sr) + (sr == 0.0 ? nugget_ : 0.0);
  }
  [[nodiscard]] std::uint64_t flops_per_eval() const override { return 30; }
  [[nodiscard]] std::string name() const override { return "matern32"; }

 private:
  double s_, nugget_;
};

}  // namespace h2
