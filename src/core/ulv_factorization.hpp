#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/ulv_options.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "linalg/batch.hpp"
#include "linalg/linalg.hpp"
#include "storage/spill_store.hpp"

namespace h2 {

/// ULV factorization engine of an H^2 / HSS / BLR^2 matrix (the paper's core
/// algorithm, Secs. II-III), templated on the element precision T of the
/// stored factor: T = double is the historical engine, T = float the
/// mixed-precision backend whose blocks (and spill files, and pool traffic)
/// cost half the bytes. The fp64 input matrix is rounded to T exactly once,
/// where its data enters the engine (from_f64); everything after — the basis
/// pipeline, elimination, solve sweeps — runs in T, with norms and flop/byte
/// accounting reported in precision-true units (a block's bytes use
/// sizeof(T); a flop is a flop).
///
/// Per level, leaf to root:
///  1. pre-compute the fill-in column spaces per block row (Fig. 7);
///  2. build the square shared basis [U^S U^R] per cluster from the
///     concatenated fill-in and low-rank blocks (Eqs. 27-28);
///  3. project every block onto the bases (USV form, Eqs. 8-9);
///  4. eliminate the redundant variables — in Parallel mode every block row
///     independently (the paper's contribution), in Sequential mode
///     right-looking with trailing-sub-matrix updates (the Sec. II.D
///     baseline);
///  5. merge the skeleton sub-blocks into the parent level (Eq. 22).
/// The final merged block is LU-factorized densely.
///
/// The numerics of each phase live in per-cluster `body_*` methods — one
/// source of truth consumed by two executors. Parallel mode defaults to
/// UlvExecutor::TaskDag: the factorization is built as a dependency-counted
/// TaskGraph (one task per phase x cluster; fill→basis→project→eliminate
/// within a block row, project→schur→merge toward the parent, merge→fill
/// across levels so level L-1 starts while level L drains) and executed on a
/// ThreadPool. The bulk-synchronous phase loops remain as the PhaseLoops
/// ablation and as the Sequential baseline's only flow. Both executors and
/// any worker count produce bitwise-identical factors — per precision: the
/// fp32 engine has exactly the same determinism contract as the fp64 one.
///
/// The matrix must be symmetric (all built-in kernels are), which makes the
/// shared row and column bases coincide; the factorization itself is a
/// general LU (Eqs. 11-15), not a Cholesky, so SPD-ness is not required.
///
/// The ClusterTree referenced by the input H2Matrix must outlive this object;
/// the H2Matrix itself is only needed during construction.
///
/// Most callers want the UlvFactorization facade below, which picks the
/// engine from UlvOptions::precision and keeps the fp64 call surface.
template <class T>
class UlvEngine {
 public:
  /// The engine's element-precision block types. Member typedefs shadow the
  /// namespace-scope fp64 aliases on purpose: the phase bodies read exactly
  /// as they did when the engine was fp64-only.
  using Matrix = MatrixT<T>;
  using MatrixView = MatrixViewT<T>;
  using ConstMatrixView = ConstMatrixViewT<T>;
  using GemmTask = GemmTaskT<T>;
  using TrsmTask = TrsmTaskT<T>;
  using QrTask = QrTaskT<T>;
  using PivotedQr = PivotedQrT<T>;

  UlvEngine(const H2Matrix& a, const UlvOptions& opt);
  /// Discharges the factor's persistent blocks from the process-wide
  /// blockmem live-byte counter (runtime/block_pool): live bytes track
  /// blocks that exist, and the factor's cease to with the object.
  ~UlvEngine();

  /// In-place solve A x = b; b is n x nrhs in TREE ordering (the ordering of
  /// ClusterTree::points(), NOT the caller's original point order — use
  /// ClusterTree::to_tree_order/from_tree_order, or the h2::Solver facade
  /// which handles the permutation). Under opt.solve_executor == TaskDag
  /// (the default) the forward/backward sweeps execute as a task DAG whose
  /// structure was recorded once at factorization time (see solve_dag());
  /// PhaseLoops keeps the bulk-synchronous per-level sweep. Both executors,
  /// any scheduling policy, and any worker count produce bitwise-identical
  /// solutions. Thread-safe: concurrent solves on one factorization share
  /// only read-only factor data.
  void solve(MatrixView b) const;

  /// log|det A| from the triangular factors (orthogonal transforms drop out).
  [[nodiscard]] double logabsdet() const;

  [[nodiscard]] const UlvStats& stats() const { return stats_; }
  [[nodiscard]] int depth() const { return depth_; }

  /// Skeleton rank of a cluster (tests/ablations).
  [[nodiscard]] int rank(int level, int lid) const {
    return levels_[level].rank[lid];
  }

  /// Execution statistics of the most recent DAG-executed solve on this
  /// factorization (worker lanes, per-task spans, executed/stolen counters —
  /// the same ExecStats the factorization's own execution reports). Empty
  /// until a solve ran under the TaskDag solve executor; solves that fall
  /// back to the inline level sweep (PhaseLoops, or a solve submitted onto
  /// its own pool's worker) do not touch it. Concurrent solves overwrite it
  /// last-writer-wins — it is a diagnostic surface, not a per-solve result;
  /// SolveHandle::stats() snapshots it at solve completion. When the
  /// H2_SOLVE_TRACE environment variable names a file, every DAG solve also
  /// rewrites it with the trace CSV (TaskGraph::write_trace_csv format).
  [[nodiscard]] ExecStats last_solve_stats() const;

  /// Number of DAG-executed solves completed on this factorization — bumped
  /// exactly when last_solve_stats() changes. Snapshot it around a solve to
  /// tell whether THAT solve produced a new trace (a solve that fell back
  /// to the inline sweep does not): the facade's SolveHandle::stats uses
  /// this to avoid presenting a stale sibling trace as its own.
  [[nodiscard]] std::uint64_t solve_stats_generation() const;

  /// The solve DAG recorded at factorization time (empty unless Parallel
  /// mode with the TaskDag solve executor and depth > 0 — Sequential mode
  /// always sweeps, like its factorization). The first half is the
  /// forward sweep's block-row structure (fwd_xform -> fwd_subst ->
  /// fwd_down -> fwd_merge per level, rooted at "top"); the second half is
  /// its mirror for the backward sweep — every forward task has a backward
  /// twin and every forward edge is reused REVERSED (bwd_split <- bwd_xs <-
  /// bwd_y <- bwd_combine). DagRecord::priority carries the critical-path
  /// (bottom-level) ranks that drive the executor.
  [[nodiscard]] const DagRecord& solve_dag() const { return solve_dag_; }

  /// Counters of the out-of-core factor store (src/storage). All zero when
  /// the factorization runs in RAM (UlvOptions::spill_dir empty and never
  /// demoted).
  [[nodiscard]] SpillStats spill_stats() const;

  /// Demote the factor to disk under `dir`: every factor block is persisted
  /// and its resident payload dropped, leaving the factorization solvable
  /// (each solve faults its read set back in chunk by chunk) at near-zero
  /// resident factor bytes — the serving cache's cold tier. Creates the
  /// store on first call when the factorization was built without
  /// spill_dir. Waits for in-flight solves to drain (new solves block until
  /// the demotion finished), so it is safe under concurrent traffic.
  /// Returns true (the ULV factor is always demotable). Throws
  /// std::runtime_error if the spill directory cannot be created or a spill
  /// write fails.
  bool demote_to_disk(const std::string& dir);
  /// Undo demote_to_disk(): restore the resident budget the factor ran with
  /// (everything, for a store that only exists because of the demotion) and
  /// fault the blocks back in. No-op unless currently demoted.
  void promote();

 private:
  using Key = std::pair<int, int>;

  struct Level {
    int nb = 0;
    std::vector<int> size;  ///< current-coordinate size per cluster
    std::vector<int> rank;  ///< skeleton rank per cluster
    /// Square orthonormal basis per cluster, columns [skeleton | redundant].
    std::vector<Matrix> q;
    /// Projected (and, after elimination, strip-solved) dense blocks.
    std::map<Key, Matrix> dense;
    /// getrf pivots of each diagonal RR block.
    std::vector<std::vector<int>> rr_piv;
  };

  /// Transient per-level block storage consumed by the phase bodies: the
  /// current-coordinate blocks entering each level plus the intermediates of
  /// the basis pipeline. Defined in the .cpp; shared by both executors.
  struct Workspace;

  /// Copy an fp64 source block (the H2Matrix's data) into the engine's
  /// element type — the ONE place factorization inputs are rounded to T.
  static Matrix from_f64(ConstMatrixViewT<double> v) {
    if constexpr (std::is_same_v<T, float>) {
      return to_f32(v);
    } else {
      return Matrix::from(v);
    }
  }

  void factorize(const H2Matrix& a);
  /// Pre-size every level's containers and pre-insert every map key, so the
  /// phase bodies only ever assign through stable references (required for
  /// race-free concurrent execution; also what the loops did implicitly).
  void prepare(Workspace& w);
  /// Bulk-synchronous executor: phase loops with a barrier after every phase
  /// and level (UlvExecutor::PhaseLoops, and all of Sequential mode).
  void factorize_loops(const H2Matrix& a);
  void process_level(Workspace& w, int level);
  /// Dependency-driven executor: emit one task per (phase, cluster), wire
  /// the true data dependencies, and run the DAG on a ThreadPool
  /// (UlvExecutor::TaskDag, Parallel mode only).
  void factorize_dag(const H2Matrix& a);
  [[nodiscard]] bool task_dag_mode() const;

  // Phase bodies (single source of truth for the numerics). All bodies are
  // row-owned: a body with owner i writes only row-i state, so within a
  // phase no two bodies touch the same block. See factorize_dag for the
  // cross-phase write-set analysis behind the DAG's edges.
  void body_assemble(Workspace& w, int level, int i);
  void body_ry(Workspace& w, int level, int i);
  void body_project_lr(Workspace& w, int level, int i);
  void body_fill(Workspace& w, int level, int k);
  void body_basis(Workspace& w, int level, int i);
  void body_project_row(Workspace& w, int level, int i);
  void body_eliminate(int level, int k);
  void body_col_solve(int level, int k);
  void body_schur(int level, int i, int j, bool admissible);
  void body_dropped(int level, int k);
  void body_merge(Workspace& w, int level, int pi, int pj);
  void body_top(Workspace& w);

  /// Express rows of cluster (level, lid), given in full point coordinates
  /// (always fp64 — this is H2Matrix data), in the current (child-skeleton)
  /// coordinates of `level`, rounding to T at the leaves.
  auto current_rows(int level, int lid, ConstMatrixViewT<double> x_full) const
      -> Matrix;
  void eliminate_block(int level, int k);
  void eliminate_parallel(int level);
  void eliminate_sequential(int level);
  std::vector<int> schur_k_list(int level, int i, int j) const;

  void record_task(int level, const char* kind, int owner, double seconds);
  void add_dropped(double fro2);
  /// Loop over [0, n): pool-parallel when factorize_loops resolved a pool
  /// from the executor options (loops_pool_), serial otherwise.
  void for_indices(int n, const std::function<void(int)>& fn) const;

  // ---- Block lifetime (docs/ARCHITECTURE.md "Block lifetime & memory").
  // Every block stored into factor or workspace state goes through these, so
  // the blockmem live/peak counters and the per-factorization total stay
  // exact — in real sizeof(T) bytes, so an fp32 factorization's peak is
  // honestly half-weighted. All three only assign through the caller's
  // (pre-keyed, stable) reference — map structure is never mutated during
  // execution.
  /// Store a freshly built block into a tracked slot (charges its bytes).
  void track_store(Matrix& dst, Matrix&& fresh);
  /// Move a block between two tracked slots (net accounting unchanged).
  void track_take(Matrix& dst, Matrix& src);
  /// Free a tracked block: discharge its bytes and recycle the storage
  /// through the BlockPool arena. The slot is left empty.
  void track_drop(Matrix& m);

  // Per-resource releases, fired by the DAG's release tasks (TaskDag) or at
  // the equivalent end-of-phase points (PhaseLoops). All gated on
  // opt_.release_blocks by the callers.
  void release_ry_row(int level, int i);
  void release_skel_block(int level, int i, int j);
  /// Drop whatever the per-resource releases left in `level`'s containers
  /// (already-empty values, map nodes, the fill_p vector) once the level has
  /// fully drained — the level-complete remnant cleanup.
  void release_level_remnants(Workspace& w, int level);

  // ---- Solve (ulv_solve.cpp). Like the factorization, the numerics live in
  // per-cluster sbody_* methods — one source of truth consumed by the
  // bulk-synchronous level sweep (solve_loops) and the task-DAG executor
  // (solve_via_dag), which instantiates the recorded solve_dag_ plan.
  struct SolveScratch;
  void init_solve_scratch(SolveScratch& s, int nrhs) const;
  [[nodiscard]] bool solve_dag_mode() const;
  /// Record the solve's task structure (forward sweep + reversed backward
  /// mirror + critical-path priorities) into solve_dag_. Called once by the
  /// constructor; O(#tasks + #edges), independent of nrhs.
  void build_solve_plan();
  void solve_loops(MatrixView b) const;
  void solve_via_dag(MatrixView b, ThreadPool& pool) const;
  // Forward-sweep bodies (Eqs. 16-19).
  void sbody_transform(SolveScratch& s, ConstMatrixView b, int level,
                       int c) const;
  void sbody_subst(SolveScratch& s, int level, int k) const;
  void sbody_down(SolveScratch& s, int level, int i) const;
  void sbody_merge(SolveScratch& s, int level, int p) const;
  void sbody_top(SolveScratch& s) const;
  // Backward-sweep bodies (the forward bodies' mirrors).
  void sbody_xsplit(SolveScratch& s, int level, int c) const;
  void sbody_y(SolveScratch& s, int level, int k) const;
  void sbody_combine(SolveScratch& s, MatrixView b, int level, int c) const;

  // ---- Out-of-core tier (src/storage; docs/ARCHITECTURE.md "Storage
  // tier"). Active when opt_.spill_dir is set (store created before the
  // factorization so blocks spill at their release points) or after
  // demote_to_disk(). Spilling moves bytes, never transforms them, so every
  // spill/fault/prefetch decision is bitwise-invisible to the results.
  /// Create store_ (used by the constructor and by a first demotion).
  void spill_attach(const std::string& dir, std::uint64_t budget_bytes,
                    int io_threads);
  /// Hand level's final dense blocks to the store (called at the level's
  /// remnant-release point; idempotent). Swallows store errors when running
  /// inside a DAG task — they resurface from the next store entry point on
  /// the constructor's thread.
  void spill_register_dense(int level);
  /// Adopt everything the per-level hook does not cover (q bases — read by
  /// current_rows until the last level drains — top_lu_, and all dense
  /// levels when release_blocks is off). Called once, after factorize().
  void spill_finish_registration();
  /// Chunk the solve sweep into an ordered list of pin steps (per level and
  /// phase, clusters grouped to ~budget/4 bytes of factor reads), assign
  /// every recorded solve task its step, and seal the store with the
  /// step->slots plan — the prefetcher's oracle. Defined in ulv_solve.cpp.
  void build_spill_plan();
  /// Step chunking of one (level, phase): step_of[cluster] -> global step,
  /// plus the chunks in execution order as {step, first, last} ranges in
  /// iteration space (descending phases iterate cluster nb-1-j).
  struct SpillChunks {
    std::vector<int> step_of;
    std::vector<std::array<int, 3>> chunks;
  };
  /// RAII solve gate: demote_to_disk() drains these before evicting.
  struct SolveGuard {
    explicit SolveGuard(const UlvEngine& u);
    ~SolveGuard();
    const UlvEngine* u_;
  };
  void solve_loops_spill(SolveScratch& s, MatrixView b) const;

  /// Per-task body dispatch of the solve plan, fixed at recording time so
  /// per-solve instantiation is an array walk, not string comparisons.
  enum class SolveKind : std::uint8_t {
    kFwdXform,
    kFwdSubst,
    kFwdDown,
    kFwdMerge,
    kTop,
    kBwdSplit,
    kBwdXs,
    kBwdY,
    kBwdCombine,
  };

  const ClusterTree* tree_ = nullptr;
  BlockStructure structure_;  // copied: the H2Matrix may be discarded
  UlvOptions opt_;
  int depth_ = 0;
  /// Pool the bulk-synchronous phase loops parallelize on, resolved by
  /// factorize_loops from executor/pool/n_workers (null = serial). Only
  /// non-null while factorize_loops runs.
  ThreadPool* loops_pool_ = nullptr;
  /// Total tracked block bytes owned by THIS factorization — what the
  /// destructor discharges from the process-wide blockmem counter.
  std::atomic<std::uint64_t> tracked_bytes_{0};

  std::vector<Level> levels_;  ///< index = level; [0] unused (top is dense)
  /// Admissible skeleton blocks per level (filled during projection, updated
  /// by Schur products, consumed by the merge).
  std::vector<std::map<Key, Matrix>> skel_;
  /// R factor of the QR of each admissible block's V factor (per level):
  /// the magnitude-preserving right factor for basis concatenations.
  std::vector<std::map<Key, Matrix>> ry_;
  Matrix top_lu_;
  std::vector<int> top_piv_;
  /// The solve's task structure, recorded once at factorization time and
  /// instantiated per solve by solve_via_dag (see solve_dag()).
  DagRecord solve_dag_;
  std::vector<SolveKind> solve_kind_;  ///< parallel to solve_dag_.meta
  /// Owned pool for DAG solves when no explicit pool fits: n_workers > 0,
  /// or a Fifo schedule (the global pool is always WorkSteal). Created
  /// lazily on the FIRST solve (call_once: solves may race) and reused for
  /// every later one — per-solve pools would pay thread spawn/join on each
  /// right-hand side, and a factorize-only user should pay nothing.
  mutable std::once_flag solve_pool_once_;
  mutable std::unique_ptr<ThreadPool> solve_pool_;

  // ---- Out-of-core tier state. Declared after levels_/top_lu_ so the
  // store (whose threads may hold pointers into them) is destroyed first.
  std::unique_ptr<SpillStore> store_;
  /// dslot_[level][key] = (slot, payload bytes) of each adopted dense block;
  /// bytes are recorded here because the block itself may be evicted (empty)
  /// by the time the plan is chunked.
  std::vector<std::map<Key, std::pair<SpillStore::SlotId, std::uint64_t>>>
      dslot_;
  /// qslot_[level][c] = (slot, bytes) of each adopted basis (kNoSlot gaps).
  std::vector<std::vector<std::pair<SpillStore::SlotId, std::uint64_t>>>
      qslot_;
  SpillStore::SlotId topslot_ = SpillStore::kNoSlot;
  /// spill_plan_[level][phase] for phases 0 fwd_xform / 1 fwd_subst /
  /// 2 fwd_down (merges ride on it) / 3 bwd_y (descending) / 4 bwd_combine.
  std::vector<std::array<SpillChunks, 5>> spill_plan_;
  int top_step_ = -1;
  int n_spill_steps_ = 0;
  /// Step of every solve_dag_ task (parallel to solve_dag_.meta; empty under
  /// the PhaseLoops solve executor) — solve_via_dag wires one barrier task
  /// per step from it so a sweep never outruns the pinned window.
  std::vector<int> task_step_;
  std::uint64_t promote_budget_ = 0;
  bool demoted_ = false;
  std::mutex spill_mu_;  ///< registration tables (release tasks may race)
  mutable std::condition_variable solve_gate_cv_;
  mutable int active_solves_ = 0;  ///< guarded by solve_gate_mu_
  mutable std::mutex solve_gate_mu_;

  UlvStats stats_;
  /// Trace of the most recent DAG solve (see last_solve_stats()) and its
  /// completion count; guarded by stats_mutex_ because concurrent solves
  /// may finish at once.
  mutable ExecStats last_solve_stats_;
  mutable std::uint64_t solve_stats_gen_ = 0;
  mutable std::mutex stats_mutex_;
};

/// The engines are explicitly instantiated in core/ulv_factorization.cpp and
/// core/ulv_solve.cpp — nothing else should instantiate their members.
extern template class UlvEngine<double>;
extern template class UlvEngine<float>;

/// Precision-dispatching facade over UlvEngine: the historical fp64 call
/// surface (construct from an H2Matrix, solve fp64 right-hand sides in tree
/// ordering), with UlvOptions::precision choosing the engine underneath.
/// Under Precision::F32, solve() rounds b to fp32 once, runs the fp32
/// sweeps, and widens the result back — one fp32 backward-stable solve,
/// which the facade layer (api/solver + core/refine) wraps in fp64 iterative
/// refinement to recover fp64-grade residuals.
class UlvFactorization {
 public:
  UlvFactorization(const H2Matrix& a, const UlvOptions& opt);
  ~UlvFactorization();

  /// In-place solve A x = b in TREE ordering (see UlvEngine::solve). Under
  /// F32 this is the raw reduced-precision solve: expect ~fp32 residuals
  /// unless the caller refines (core/refine::ulv_refine does).
  void solve(MatrixView b) const;

  [[nodiscard]] double logabsdet() const;
  [[nodiscard]] const UlvStats& stats() const;
  [[nodiscard]] int depth() const;
  [[nodiscard]] int rank(int level, int lid) const;
  [[nodiscard]] ExecStats last_solve_stats() const;
  [[nodiscard]] std::uint64_t solve_stats_generation() const;
  [[nodiscard]] const DagRecord& solve_dag() const;
  [[nodiscard]] SpillStats spill_stats() const;
  bool demote_to_disk(const std::string& dir);
  void promote();

  /// The element precision this factorization stores and sweeps in.
  [[nodiscard]] Precision precision() const {
    return f_ != nullptr ? Precision::F32 : Precision::F64;
  }

 private:
  // Exactly one engine is live, chosen at construction.
  std::unique_ptr<UlvEngine<double>> d_;
  std::unique_ptr<UlvEngine<float>> f_;
};

}  // namespace h2
