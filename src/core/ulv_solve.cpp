#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/ulv_factorization.hpp"
#include "linalg/gemm_kernel.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool.hpp"
#include "util/env.hpp"

namespace h2 {

/// Per-solve working state: the right-hand side as it migrates through the
/// levels (Eqs. 16-19). One instance per solve call, so concurrent solves on
/// one factorization never share mutable state. Unlike the old rolling
/// per-level buffer, the migrating vectors are stored PER LEVEL so the DAG
/// executor can overlap levels without write-after-read hazards; the level
/// sweep fills them in the same order the rolling buffer did.
template <class T>
struct UlvEngine<T>::SolveScratch {
  int nrhs = 1;
  /// s[level][c]: skeleton part of the transformed rhs (rank x nrhs).
  std::vector<std::vector<Matrix>> s;
  /// z[level][c]: redundant part ((size-rank) x nrhs). The forward pass
  /// solves it to z; the backward pass downdates it to y. The final
  /// triangular solve y -> x^R happens OUT of place inside sbody_combine,
  /// so z[level][c] still holds y after the level is done — which is what
  /// lets the backward DAG reuse the forward edges reversed, with no
  /// write-after-read edge for the trsm.
  std::vector<std::vector<Matrix>> z;
  /// xs[level][c]: skeleton part of the solution (backward pass).
  std::vector<std::vector<Matrix>> xs;
  /// rhs[level][p]: merged rhs entering `level` (written by level+1's
  /// merges; rhs[0][0] is the root rhs, solved in place by the top task).
  std::vector<std::vector<Matrix>> rhs;
  /// x[level][c]: per-cluster solution leaving `level` in current
  /// coordinates (backward pass; the leaf level writes into b instead).
  std::vector<std::vector<Matrix>> x;
};

template <class T>
void UlvEngine<T>::init_solve_scratch(UlvEngine<T>::SolveScratch& s, int nrhs) const {
  s.nrhs = nrhs;
  s.s.resize(depth_ + 1);
  s.z.resize(depth_ + 1);
  s.xs.resize(depth_ + 1);
  s.rhs.resize(depth_ + 1);
  s.x.resize(depth_ + 1);
  s.rhs[0].resize(1);
  for (int l = 1; l <= depth_; ++l) {
    const int nb = levels_[l].nb;
    s.s[l].resize(nb);
    s.z[l].resize(nb);
    s.xs[l].resize(nb);
    s.x[l].resize(nb);
    if (l < depth_) s.rhs[l].resize(nb);
  }
}

// ---------------------------------------------------------------------------
// Solve bodies — one (phase, cluster) unit each, shared by both executors.
// Every migrating block has a single totally-ordered writer chain
// (transform -> subst -> y for z, transform -> down for s, ...), so any
// executor that respects the recorded edges reproduces the level sweep
// bitwise.
//
// Every body doing arithmetic opens a WidthStableScope gated on
// opt_.width_stable_solve, making its gemm dispatch independent of nrhs
// (see UlvOptions::width_stable_solve). The scope lives INSIDE the bodies —
// not around the solve() entry point — because the dispatch flag is
// thread_local and the DAG executor runs bodies on arbitrary pool workers;
// only the body itself executes on the thread whose flag matters.
// (sbody_merge and sbody_xsplit are pure copies and need none.)
// ---------------------------------------------------------------------------

template <class T>
void UlvEngine<T>::sbody_transform(UlvEngine<T>::SolveScratch& s, ConstMatrixView b,
                                       int level, int c) const {
  // b_hat = Q^T b, split into skeleton and redundant parts.
  const detail::WidthStableScope ws(opt_.width_stable_solve);
  const Level& ld = levels_[level];
  const int nrhs = s.nrhs;
  ConstMatrixView src =
      (level == depth_)
          ? b.block(tree_->node(depth_, c).begin, 0,
                    tree_->node(depth_, c).size(), nrhs)
          : ConstMatrixView(s.rhs[level][c]);
  const Matrix bhat = matmul(ld.q[c], src, Trans::Yes, Trans::No);
  s.s[level][c] = Matrix::from(bhat.block(0, 0, ld.rank[c], nrhs));
  s.z[level][c] =
      Matrix::from(bhat.block(ld.rank[c], 0, ld.size[c] - ld.rank[c], nrhs));
}

template <class T>
void UlvEngine<T>::sbody_subst(UlvEngine<T>::SolveScratch& s, int level, int k) const {
  // Forward substitution on the redundant variables of pivot k. The [R,R]
  // strips were pre-solved by the factorization, so the diagonal solve comes
  // first and the dense-neighbor couplings (i < k only) are subtracted with
  // already-final z_i — the one sequential chain of the sweep, O(N) total.
  const detail::WidthStableScope ws(opt_.width_stable_solve);
  const Level& ld = levels_[level];
  auto& zl = s.z[level];
  const int rk = ld.rank[k], nrk = ld.size[k] - rk;
  if (nrk == 0) return;
  MatrixView zk = zl[k];
  laswp(zk, ld.rr_piv[k], /*forward=*/true);
  ConstMatrixView rr = ld.dense.at({k, k}).block(rk, rk, nrk, nrk);
  trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, rr, zk);
  for (const int i : structure_.dense_cols(level, k)) {
    if (i >= k) break;  // sorted: couplings below the block diagonal only
    const int nri = ld.size[i] - ld.rank[i];
    if (nri == 0) continue;
    gemm(-1.0, ld.dense.at({k, i}).block(rk, ld.rank[i], nrk, nri), Trans::No,
         zl[i], Trans::No, 1.0, zk);
  }
}

template <class T>
void UlvEngine<T>::sbody_down(UlvEngine<T>::SolveScratch& s, int level, int i) const {
  // Downdate the skeleton rhs with the L_SR strips: b^S_i -= sum_k
  // D(i,k)[S,R] z_k over the diagonal and every dense partner.
  const detail::WidthStableScope ws(opt_.width_stable_solve);
  const Level& ld = levels_[level];
  auto& zl = s.z[level];
  const int ri = ld.rank[i];
  if (ri == 0) return;
  MatrixView si = s.s[level][i];
  auto update = [&](int k) {
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) return;
    gemm(-1.0, ld.dense.at({i, k}).block(0, rk, ri, nrk), Trans::No, zl[k],
         Trans::No, 1.0, si);
  };
  update(i);
  for (const int k : structure_.dense_cols(level, i)) update(k);
}

template <class T>
void UlvEngine<T>::sbody_merge(UlvEngine<T>::SolveScratch& s, int level, int p) const {
  // Merge sibling skeleton parts into the parent rhs (Eq. 22's rhs analog).
  s.rhs[level - 1][p] =
      vconcat({s.s[level][2 * p], s.s[level][2 * p + 1]});
}

template <class T>
void UlvEngine<T>::sbody_top(UlvEngine<T>::SolveScratch& s) const {
  const detail::WidthStableScope ws(opt_.width_stable_solve);
  getrs(top_lu_, top_piv_, s.rhs[0][0]);
}

template <class T>
void UlvEngine<T>::sbody_xsplit(UlvEngine<T>::SolveScratch& s, int level, int c) const {
  // Extract this cluster's skeleton solution from the parent-level solution
  // (the merge's mirror; the level-1 parent is the top solve's root vector).
  const Level& ld = levels_[level];
  const Matrix& xp = (level == 1) ? s.rhs[0][0] : s.x[level - 1][c / 2];
  const int row0 = (c % 2 == 0) ? 0 : ld.rank[c - 1];
  s.xs[level][c] = Matrix::from(xp.block(row0, 0, ld.rank[c], s.nrhs));
}

template <class T>
void UlvEngine<T>::sbody_y(UlvEngine<T>::SolveScratch& s, int level, int k) const {
  // y_k = z_k - sum_{j>k} [R,R]strip y_j - sum_j [R,S]strip x^S_j. The y_j
  // it reads are final (their own RR and RS updates done), pre-triangular-
  // solve values — the triangular solve happens out of place in
  // sbody_combine, so z keeps holding y.
  const detail::WidthStableScope ws(opt_.width_stable_solve);
  const Level& ld = levels_[level];
  auto& zl = s.z[level];
  auto& xsl = s.xs[level];
  const int rk = ld.rank[k], nrk = ld.size[k] - rk;
  if (nrk == 0) return;
  MatrixView yk = zl[k];
  const auto& cols = structure_.dense_cols(level, k);
  for (auto it = cols.rbegin(); it != cols.rend(); ++it) {
    const int j = *it;
    if (j <= k) break;  // sorted: couplings above the block diagonal only
    const int nrj = ld.size[j] - ld.rank[j];
    if (nrj == 0) continue;
    gemm(-1.0, ld.dense.at({k, j}).block(rk, ld.rank[j], nrk, nrj), Trans::No,
         zl[j], Trans::No, 1.0, yk);
  }
  auto update_rs = [&](int j) {
    if (ld.rank[j] == 0) return;
    gemm(-1.0, ld.dense.at({k, j}).block(rk, 0, nrk, ld.rank[j]), Trans::No,
         xsl[j], Trans::No, 1.0, yk);
  };
  update_rs(k);
  for (const int j : cols) update_rs(j);
}

template <class T>
void UlvEngine<T>::sbody_combine(UlvEngine<T>::SolveScratch& s, MatrixView b, int level,
                                     int c) const {
  // x^R_c = U_c^-1 y_c (out of place — see SolveScratch::z), then
  // x = Q [x^S; x^R] back in current coordinates; the leaf level scatters
  // straight into b.
  const detail::WidthStableScope ws(opt_.width_stable_solve);
  const Level& ld = levels_[level];
  const int nrhs = s.nrhs, rc = ld.rank[c], nrc = ld.size[c] - rc;
  Matrix xhat(ld.size[c], nrhs);
  if (rc > 0) copy_into(s.xs[level][c], xhat.block(0, 0, rc, nrhs));
  if (nrc > 0) {
    Matrix xr = s.z[level][c];
    ConstMatrixView rr = ld.dense.at({c, c}).block(rc, rc, nrc, nrc);
    trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr,
         MatrixView(xr));
    copy_into(xr, xhat.block(rc, 0, nrc, nrhs));
  }
  Matrix xc = matmul(ld.q[c], xhat);
  if (level == depth_) {
    const ClusterNode& nd = tree_->node(depth_, c);
    copy_into(xc, b.block(nd.begin, 0, nd.size(), nrhs));
  } else {
    s.x[level][c] = std::move(xc);
  }
}

// ---------------------------------------------------------------------------
// Executors.
// ---------------------------------------------------------------------------

template <class T>
bool UlvEngine<T>::solve_dag_mode() const {
  // Sequential mode is the inherently ordered ablation: its solve stays a
  // plain sweep, like its factorization. use_threads was normalized onto
  // PhaseLoops by UlvOptions::validate().
  return opt_.mode == UlvMode::Parallel &&
         opt_.solve_executor == UlvExecutor::TaskDag && depth_ > 0;
}

template <class T>
void UlvEngine<T>::solve_loops(MatrixView b) const {
  // Bulk-synchronous ablation: the per-level sweeps, one phase at a time —
  // exactly the bodies the DAG executes, in one fixed serial order.
  SolveScratch s;
  init_solve_scratch(s, b.cols());
  if (store_ != nullptr && n_spill_steps_ > 0) {
    solve_loops_spill(s, b);
    return;
  }
  for (int level = depth_; level >= 1; --level) {
    const int nb = levels_[level].nb;
    for (int c = 0; c < nb; ++c) sbody_transform(s, b, level, c);
    for (int k = 0; k < nb; ++k) sbody_subst(s, level, k);
    for (int i = 0; i < nb; ++i) sbody_down(s, level, i);
    for (int p = 0; p < nb / 2; ++p) sbody_merge(s, level, p);
  }
  sbody_top(s);
  for (int level = 1; level <= depth_; ++level) {
    const int nb = levels_[level].nb;
    for (int c = 0; c < nb; ++c) sbody_xsplit(s, level, c);
    for (int k = nb - 1; k >= 0; --k) sbody_y(s, level, k);
    for (int c = 0; c < nb; ++c) sbody_combine(s, b, level, c);
  }
}

template <class T>
void UlvEngine<T>::solve_loops_spill(UlvEngine<T>::SolveScratch& s, MatrixView b) const {
  // The level sweep walking the spill plan: the SAME bodies in the SAME
  // order, with a Pass advancing the pinned window one chunk at a time so
  // each phase only needs its current chunk of factor blocks resident.
  // sbody_merge and sbody_xsplit read no factor blocks and run unpinned.
  SpillStore::Pass pass(*store_);
  for (int level = depth_; level >= 1; --level) {
    const int nb = levels_[level].nb;
    for (const auto& ch : spill_plan_[level][0].chunks) {
      pass.advance(ch[0]);
      for (int j = ch[1]; j < ch[2]; ++j) sbody_transform(s, b, level, j);
    }
    for (const auto& ch : spill_plan_[level][1].chunks) {
      pass.advance(ch[0]);
      for (int j = ch[1]; j < ch[2]; ++j) sbody_subst(s, level, j);
    }
    for (const auto& ch : spill_plan_[level][2].chunks) {
      pass.advance(ch[0]);
      for (int j = ch[1]; j < ch[2]; ++j) sbody_down(s, level, j);
    }
    for (int p = 0; p < nb / 2; ++p) sbody_merge(s, level, p);
  }
  pass.advance(top_step_);
  sbody_top(s);
  for (int level = 1; level <= depth_; ++level) {
    const int nb = levels_[level].nb;
    for (int c = 0; c < nb; ++c) sbody_xsplit(s, level, c);
    // bwd_y's substitution chain runs k = nb-1 .. 0; its chunks were laid
    // out in that (descending) iteration order.
    for (const auto& ch : spill_plan_[level][3].chunks) {
      pass.advance(ch[0]);
      for (int j = ch[1]; j < ch[2]; ++j) sbody_y(s, level, nb - 1 - j);
    }
    for (const auto& ch : spill_plan_[level][4].chunks) {
      pass.advance(ch[0]);
      for (int j = ch[1]; j < ch[2]; ++j) sbody_combine(s, b, level, j);
    }
  }
}

template <class T>
void UlvEngine<T>::build_spill_plan() {
  // Chunk the solve sweep into pin steps. Per level the forward phases
  // (xform, subst, down) and backward phases (y descending, combine) each
  // chunk their clusters to ~budget/4 bytes of factor reads — small enough
  // that one pinned chunk plus the prefetcher's read-ahead fit the budget,
  // large enough to amortize the step barrier. Every solve body's factor
  // reads are row-local ({row,*} dense keys plus the row's basis), so a
  // chunk's slot list is exact, and the phase orders match the recorded
  // solve edges (subst ascends, y descends), so the per-step barrier tasks
  // solve_via_dag adds can never create a cycle.
  std::vector<std::vector<SpillStore::SlotId>> steps;
  if (depth_ == 0) {
    n_spill_steps_ = 0;
    store_->seal(std::move(steps));
    return;
  }
  const std::uint64_t target =
      std::max<std::uint64_t>(store_->stats().budget_bytes / 4, 1);
  spill_plan_.assign(depth_ + 1, {});
  auto add_step = [&steps](std::vector<SpillStore::SlotId>&& ids) {
    steps.push_back(std::move(ids));
    return static_cast<int>(steps.size()) - 1;
  };
  // append_cluster(c, ids) appends cluster c's slots, returning their bytes.
  auto chunked = [&](int nb, bool desc, auto&& append_cluster) {
    SpillChunks P;
    P.step_of.assign(nb, -1);
    int i = 0;
    while (i < nb) {
      std::vector<SpillStore::SlotId> ids;
      std::uint64_t got = 0;
      const int first = i;
      do {
        got += append_cluster(desc ? nb - 1 - i : i, ids);
        ++i;
      } while (i < nb && got < target);
      const int step = add_step(std::move(ids));
      for (int j = first; j < i; ++j) P.step_of[desc ? nb - 1 - j : j] = step;
      P.chunks.push_back({step, first, i});
    }
    return P;
  };
  auto row_slots = [&](int l) {
    return [this, l](int r, std::vector<SpillStore::SlotId>& ids) {
      std::uint64_t b = 0;
      auto it = dslot_[l].lower_bound({r, std::numeric_limits<int>::min()});
      for (; it != dslot_[l].end() && it->first.first == r; ++it) {
        ids.push_back(it->second.first);
        b += it->second.second;
      }
      return b;
    };
  };
  for (int l = depth_; l >= 1; --l) {
    const int nb = levels_[l].nb;
    spill_plan_[l][0] = chunked(
        nb, false, [&](int c, std::vector<SpillStore::SlotId>& ids) {
          if (qslot_[l][c].first != SpillStore::kNoSlot)
            ids.push_back(qslot_[l][c].first);
          return qslot_[l][c].second;
        });
    spill_plan_[l][1] = chunked(nb, false, row_slots(l));
    spill_plan_[l][2] = chunked(nb, false, row_slots(l));
  }
  top_step_ = add_step(topslot_ != SpillStore::kNoSlot
                           ? std::vector<SpillStore::SlotId>{topslot_}
                           : std::vector<SpillStore::SlotId>{});
  for (int l = 1; l <= depth_; ++l) {
    const int nb = levels_[l].nb;
    spill_plan_[l][3] = chunked(nb, true, row_slots(l));
    spill_plan_[l][4] = chunked(
        nb, false, [&](int c, std::vector<SpillStore::SlotId>& ids) {
          std::uint64_t b = qslot_[l][c].second;
          if (qslot_[l][c].first != SpillStore::kNoSlot)
            ids.push_back(qslot_[l][c].first);
          const auto it = dslot_[l].find({c, c});
          if (it != dslot_[l].end()) {
            ids.push_back(it->second.first);
            b += it->second.second;
          }
          return b;
        });
  }
  n_spill_steps_ = static_cast<int>(steps.size());
  // Step of every recorded solve task. Tasks without factor reads ride on a
  // step that respects their edges: merges on the down chunk of their odd
  // child; bwd_split/bwd_xs on their level's first y step (every y step of
  // the level is at or after it, every combine strictly after).
  if (!solve_dag_.empty()) {
    task_step_.assign(solve_dag_.n_tasks(), -1);
    for (TaskId t = 0; t < solve_dag_.n_tasks(); ++t) {
      const int l = solve_dag_.meta[t].level, o = solve_dag_.meta[t].owner;
      switch (solve_kind_[t]) {
        case SolveKind::kFwdXform:
          task_step_[t] = spill_plan_[l][0].step_of[o];
          break;
        case SolveKind::kFwdSubst:
          task_step_[t] = spill_plan_[l][1].step_of[o];
          break;
        case SolveKind::kFwdDown:
          task_step_[t] = spill_plan_[l][2].step_of[o];
          break;
        case SolveKind::kFwdMerge:
          task_step_[t] = spill_plan_[l][2].step_of[2 * o + 1];
          break;
        case SolveKind::kTop:
          task_step_[t] = top_step_;
          break;
        case SolveKind::kBwdSplit:
        case SolveKind::kBwdXs:
          task_step_[t] = spill_plan_[l][3].chunks.front()[0];
          break;
        case SolveKind::kBwdY:
          task_step_[t] = spill_plan_[l][3].step_of[o];
          break;
        case SolveKind::kBwdCombine:
          task_step_[t] = spill_plan_[l][4].step_of[o];
          break;
      }
    }
  }
  store_->seal(std::move(steps));
}

template <class T>
void UlvEngine<T>::build_solve_plan() {
  // The solve's task structure depends only on the block structure — not on
  // ranks, the rhs, or nrhs — so it is recorded ONCE here and instantiated
  // per solve. Forward sweep: fwd_xform -> fwd_subst -> fwd_down ->
  // fwd_merge per level, the merges feeding the parent level's transforms
  // and finally "top". Backward sweep: every forward task gets a twin
  // (fwd_xform ~ bwd_combine, fwd_subst ~ bwd_y, fwd_down ~ bwd_xs,
  // fwd_merge ~ bwd_split) and every forward edge is reused REVERSED — the
  // backward substitution consumes values in exactly the mirrored order the
  // forward sweep produced them. bwd_split is a pure gate (the split's
  // children read their parent sub-blocks directly in bwd_xs).
  const int d = depth_;
  DagRecord rec;
  std::vector<SolveKind> kinds;
  auto add = [&rec, &kinds](SolveKind kind, const char* label, int owner,
                            int level) {
    rec.meta.push_back({label, owner, level});
    rec.successors.emplace_back();
    kinds.push_back(kind);
    return static_cast<TaskId>(rec.meta.size()) - 1;
  };
  std::vector<std::vector<TaskId>> t_xf(d + 1), t_su(d + 1), t_dn(d + 1),
      t_mg(d + 1);
  std::vector<std::pair<TaskId, TaskId>> fwd_edges;
  auto edge = [&fwd_edges](TaskId u, TaskId v) { fwd_edges.emplace_back(u, v); };

  for (int level = d; level >= 1; --level) {
    const int nb = tree_->n_clusters(level);
    t_xf[level].resize(nb);
    t_su[level].resize(nb);
    t_dn[level].resize(nb);
    t_mg[level].resize(nb / 2);
    for (int c = 0; c < nb; ++c) {
      t_xf[level][c] = add(SolveKind::kFwdXform, "fwd_xform", c, level);
      if (level < d) edge(t_mg[level + 1][c], t_xf[level][c]);
    }
    for (int k = 0; k < nb; ++k) {
      t_su[level][k] = add(SolveKind::kFwdSubst, "fwd_subst", k, level);
      edge(t_xf[level][k], t_su[level][k]);
      for (const int i : structure_.dense_cols(level, k)) {
        if (i >= k) break;
        edge(t_su[level][i], t_su[level][k]);
      }
    }
    for (int i = 0; i < nb; ++i) {
      t_dn[level][i] = add(SolveKind::kFwdDown, "fwd_down", i, level);
      edge(t_xf[level][i], t_dn[level][i]);
      edge(t_su[level][i], t_dn[level][i]);
      for (const int k : structure_.dense_cols(level, i))
        edge(t_su[level][k], t_dn[level][i]);
    }
    for (int p = 0; p < nb / 2; ++p) {
      t_mg[level][p] = add(SolveKind::kFwdMerge, "fwd_merge", p, level);
      edge(t_dn[level][2 * p], t_mg[level][p]);
      edge(t_dn[level][2 * p + 1], t_mg[level][p]);
    }
  }
  const TaskId t_top = add(SolveKind::kTop, "top", 0, 0);
  edge(t_mg[1][0], t_top);

  // Backward twins, appended in forward id order: bwd(t) = t_top + 1 + t.
  for (TaskId t = 0; t < t_top; ++t) {
    const TaskMeta& m = rec.meta[t];
    switch (kinds[t]) {
      case SolveKind::kFwdXform:
        add(SolveKind::kBwdCombine, "bwd_combine", m.owner, m.level);
        break;
      case SolveKind::kFwdSubst:
        add(SolveKind::kBwdY, "bwd_y", m.owner, m.level);
        break;
      case SolveKind::kFwdDown:
        add(SolveKind::kBwdXs, "bwd_xs", m.owner, m.level);
        break;
      default:
        add(SolveKind::kBwdSplit, "bwd_split", m.owner, m.level);
        break;
    }
  }
  auto bwd = [t_top](TaskId t) { return t_top + 1 + t; };
  for (const auto& [u, v] : fwd_edges) {
    rec.successors[u].push_back(v);
    // Reversed for the backward pass; the edge into "top" reverses into the
    // edge out of it (top is its own twin — the turning point of the solve).
    if (v == t_top)
      rec.successors[t_top].push_back(bwd(u));
    else
      rec.successors[bwd(v)].push_back(bwd(u));
  }
  // Priorities follow the same knob as the factorization: under
  // UlvPriority::None the record carries none (per DagRecord's contract),
  // so the None-vs-CriticalPath scheduling ablation covers the solve too.
  if (opt_.priority == UlvPriority::CriticalPath)
    rec.priority = bottom_levels(rec.n_tasks(), rec.successors);
  solve_dag_ = std::move(rec);
  solve_kind_ = std::move(kinds);
}

template <class T>
void UlvEngine<T>::solve_via_dag(MatrixView b, ThreadPool& pool) const {
  SolveScratch s;
  init_solve_scratch(s, b.cols());
  TaskGraph g;
  // Out-of-core: one barrier task per spill step advances the Pass (release
  // step s-1, pin step s); every solve task runs between its step's barrier
  // and the next, so the sweep's reads are always pinned and the prefetcher
  // always knows the cursor. A store failure must not throw on a pool
  // worker — the barrier catches it, later tasks degrade to no-ops, and the
  // exception rethrows on this (the calling) thread after execution drains.
  const bool ooc = store_ != nullptr && n_spill_steps_ > 0;
  std::optional<SpillStore::Pass> pass;
  std::atomic<bool> aborted{false};
  std::exception_ptr spill_err;
  std::mutex spill_err_mu;
  if (ooc) pass.emplace(*store_);
  for (TaskId t = 0; t < solve_dag_.n_tasks(); ++t) {
    const TaskMeta& m = solve_dag_.meta[t];
    const int level = m.level, id = m.owner;
    std::function<void()> fn;
    switch (solve_kind_[t]) {
      case SolveKind::kFwdXform:
        fn = [this, &s, b, level, id] { sbody_transform(s, b, level, id); };
        break;
      case SolveKind::kFwdSubst:
        fn = [this, &s, level, id] { sbody_subst(s, level, id); };
        break;
      case SolveKind::kFwdDown:
        fn = [this, &s, level, id] { sbody_down(s, level, id); };
        break;
      case SolveKind::kFwdMerge:
        fn = [this, &s, level, id] { sbody_merge(s, level, id); };
        break;
      case SolveKind::kTop:
        fn = [this, &s] { sbody_top(s); };
        break;
      case SolveKind::kBwdSplit:
        fn = [] {};  // gate: children read their parent sub-blocks in bwd_xs
        break;
      case SolveKind::kBwdXs:
        fn = [this, &s, level, id] { sbody_xsplit(s, level, id); };
        break;
      case SolveKind::kBwdY:
        fn = [this, &s, level, id] { sbody_y(s, level, id); };
        break;
      case SolveKind::kBwdCombine:
        fn = [this, &s, b, level, id] { sbody_combine(s, b, level, id); };
        break;
    }
    if (ooc)
      fn = [body = std::move(fn), &aborted] {
        if (!aborted.load(std::memory_order_acquire)) body();
      };
    g.add_task(std::move(fn), m.label, m.owner, m.level);
  }
  for (TaskId u = 0; u < solve_dag_.n_tasks(); ++u)
    for (const TaskId v : solve_dag_.successors[u]) g.add_dependency(u, v);
  for (std::size_t t = 0; t < solve_dag_.priority.size(); ++t)
    g.set_priority(static_cast<TaskId>(t), solve_dag_.priority[t]);
  SpillStats ss0;
  if (ooc) {
    ss0 = store_->stats();
    // Barriers outrank every real task: once a step's work is done, the
    // window must move before stragglers of the same priority band run.
    double bar_priority = 0.0;
    if (!solve_dag_.priority.empty())
      bar_priority = 1.0 + *std::max_element(solve_dag_.priority.begin(),
                                             solve_dag_.priority.end());
    std::vector<TaskId> bar(n_spill_steps_);
    for (int st = 0; st < n_spill_steps_; ++st) {
      bar[st] = g.add_task(
          [&pass, &aborted, &spill_err, &spill_err_mu, st] {
            if (aborted.load(std::memory_order_acquire)) return;
            try {
              pass->advance(st);
            } catch (...) {
              {
                std::lock_guard<std::mutex> lk(spill_err_mu);
                if (!spill_err) spill_err = std::current_exception();
              }
              aborted.store(true, std::memory_order_release);
            }
          },
          "spill_step", st, -1);
      if (st > 0) g.add_dependency(bar[st - 1], bar[st]);
      if (!solve_dag_.priority.empty()) g.set_priority(bar[st], bar_priority);
    }
    for (TaskId t = 0; t < solve_dag_.n_tasks(); ++t) {
      const int st = task_step_[t];
      g.add_dependency(bar[st], t);
      if (st + 1 < n_spill_steps_) g.add_dependency(t, bar[st + 1]);
    }
  }
  ExecStats ex = g.execute(pool);
  if (ooc) {
    pass.reset();  // release the last step before surfacing anything
    if (spill_err) std::rethrow_exception(spill_err);
    const SpillStats ss1 = store_->stats();
    ex.prefetch_hits = ss1.step_hits - ss0.step_hits;
    ex.prefetch_misses = ss1.step_misses - ss0.step_misses;
    ex.spill_fault_bytes = ss1.fault_bytes - ss0.fault_bytes;
  }
  // Surface what the execution measured instead of discarding it: the
  // H2_SOLVE_TRACE hook mirrors the factorization's fig13 trace (rewritten
  // per solve — point it at a per-run path when batching), and
  // last_solve_stats() keeps the most recent trace for programmatic access.
  const std::string trace_path =
      env::get_string("H2_SOLVE_TRACE", std::string());
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    // The CSV write shares the lock so concurrent solves finishing at once
    // cannot interleave (truncate-while-writing) on one trace file.
    if (!trace_path.empty()) TaskGraph::write_trace_csv(ex, trace_path);
    last_solve_stats_ = std::move(ex);
    ++solve_stats_gen_;
  }
}

template <class T>
ExecStats UlvEngine<T>::last_solve_stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return last_solve_stats_;
}

template <class T>
std::uint64_t UlvEngine<T>::solve_stats_generation() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return solve_stats_gen_;
}

template <class T>
void UlvEngine<T>::solve(MatrixView b) const {
  assert(b.rows() == tree_->n_points());
  // Out-of-core only: registers this solve with the gate demote_to_disk()
  // drains, so a demotion never evicts under a sweep that predates it.
  const SolveGuard guard(*this);
  if (depth_ == 0) {
    // Degenerate one-cluster tree: the whole solve is this getrs, so the
    // width-stable scope wraps it here (no DAG, runs on the caller's thread).
    const detail::WidthStableScope ws(opt_.width_stable_solve);
    getrs(top_lu_, top_piv_, b);
    return;
  }
  if (!solve_dag_mode()) {
    solve_loops(b);
    return;
  }
  // Pool selection: the caller's pool; else the owned solve pool when the
  // (WorkSteal-only) global pool does not fit — n_workers > 0 or a Fifo
  // schedule — created on the FIRST solve and reused for every later one;
  // else the process-wide pool. A factorize-only user never pays for it.
  ThreadPool* pool = opt_.pool;
  if (pool == nullptr) {
    const ThreadPool::QueuePolicy want = opt_.queue_policy();
    if (opt_.n_workers > 0 || want == ThreadPool::QueuePolicy::Fifo) {
      std::call_once(solve_pool_once_, [&] {
        solve_pool_ = std::make_unique<ThreadPool>(
            std::max(1, opt_.n_workers > 0 ? opt_.n_workers
                                           : ThreadPool::env_threads()),
            want);
      });
      pool = solve_pool_.get();
    } else {
      pool = &ThreadPool::global();
    }
  }
  if (pool == ThreadPool::current()) {
    // A solve running ON a worker of its own pool (a pipelined solve_async
    // batch) cannot block on that pool; the sweep is bitwise identical, so
    // run it inline — whole solves then pipeline across the pool's workers
    // instead of splitting one solve into tasks.
    solve_loops(b);
    return;
  }
  solve_via_dag(b, *pool);
}

// The header's extern template declarations suppress implicit instantiation
// everywhere, so every member defined in THIS file is explicitly
// instantiated here for both engine precisions (the factorization-side
// members ride on the class-level instantiations in ulv_factorization.cpp).
#define H2_INSTANTIATE_ULV_SOLVE(T)                                            \
  template void UlvEngine<T>::init_solve_scratch(UlvEngine<T>::SolveScratch& s, int nrhs)    \
      const;                                                                   \
  template bool UlvEngine<T>::solve_dag_mode() const;                          \
  template void UlvEngine<T>::build_solve_plan();                              \
  template void UlvEngine<T>::build_spill_plan();                              \
  template void UlvEngine<T>::solve_loops(MatrixViewT<T> b) const;             \
  template void UlvEngine<T>::solve_loops_spill(UlvEngine<T>::SolveScratch& s,               \
                                                MatrixViewT<T> b) const;       \
  template void UlvEngine<T>::solve_via_dag(MatrixViewT<T> b,                  \
                                            ThreadPool& pool) const;           \
  template void UlvEngine<T>::sbody_transform(UlvEngine<T>::SolveScratch& s,                 \
                                              ConstMatrixViewT<T> b,           \
                                              int level, int c) const;         \
  template void UlvEngine<T>::sbody_subst(UlvEngine<T>::SolveScratch& s, int level, int k)   \
      const;                                                                   \
  template void UlvEngine<T>::sbody_down(UlvEngine<T>::SolveScratch& s, int level, int i)    \
      const;                                                                   \
  template void UlvEngine<T>::sbody_merge(UlvEngine<T>::SolveScratch& s, int level, int p)   \
      const;                                                                   \
  template void UlvEngine<T>::sbody_top(UlvEngine<T>::SolveScratch& s) const;                \
  template void UlvEngine<T>::sbody_xsplit(UlvEngine<T>::SolveScratch& s, int level, int c)  \
      const;                                                                   \
  template void UlvEngine<T>::sbody_y(UlvEngine<T>::SolveScratch& s, int level, int k)       \
      const;                                                                   \
  template void UlvEngine<T>::sbody_combine(UlvEngine<T>::SolveScratch& s, MatrixViewT<T> b, \
                                            int level, int c) const;           \
  template ExecStats UlvEngine<T>::last_solve_stats() const;                   \
  template std::uint64_t UlvEngine<T>::solve_stats_generation() const;         \
  template void UlvEngine<T>::solve(MatrixViewT<T> b) const;

H2_INSTANTIATE_ULV_SOLVE(double)
H2_INSTANTIATE_ULV_SOLVE(float)
#undef H2_INSTANTIATE_ULV_SOLVE

}  // namespace h2
