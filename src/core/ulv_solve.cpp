#include <cassert>

#include "core/ulv_factorization.hpp"

namespace h2 {

/// Per-solve working state: the right-hand side as it migrates through the
/// levels (Eqs. 16-19).
struct UlvFactorization::SolveScratch {
  int nrhs = 1;
  /// s[level][c]: skeleton part of the transformed rhs (rank x nrhs).
  std::vector<std::vector<Matrix>> s;
  /// z[level][c]: redundant solution in the forward pass; re-used as the
  /// y / x^R buffer in the backward pass ((size-rank) x nrhs).
  std::vector<std::vector<Matrix>> z;
  /// xs[level][c]: skeleton part of the solution (backward pass).
  std::vector<std::vector<Matrix>> xs;
  /// Current per-cluster rhs/solution at the level being processed.
  std::vector<Matrix> cur;
};

void UlvFactorization::forward_level(int level, SolveScratch& s) const {
  const Level& ld = levels_[level];
  const int nb = ld.nb, nrhs = s.nrhs;
  auto& sl = s.s[level];
  auto& zl = s.z[level];
  sl.resize(nb);
  zl.resize(nb);

  // b_hat = Q^T b, split into skeleton and redundant parts.
  for (int c = 0; c < nb; ++c) {
    const Matrix bhat = matmul(ld.q[c], s.cur[c], Trans::Yes, Trans::No);
    sl[c] = Matrix::from(bhat.block(0, 0, ld.rank[c], nrhs));
    zl[c] = Matrix::from(
        bhat.block(ld.rank[c], 0, ld.size[c] - ld.rank[c], nrhs));
  }

  // Forward substitution on the redundant variables. The dense-neighbor
  // couplings of the L factor are the (solved) [R,R] strips; they make this
  // loop sequential in k, but its cost is O(N) and negligible.
  for (int k = 0; k < nb; ++k) {
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) continue;
    MatrixView zk = zl[k];
    laswp(zk, ld.rr_piv[k], /*forward=*/true);
    ConstMatrixView rr = ld.dense.at({k, k}).block(rk, rk, nrk, nrk);
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, rr, zk);
    for (const int i : structure_.dense_cols(level, k)) {
      if (i >= k) break;  // sorted: couplings below the block diagonal only
      const int nri = ld.size[i] - ld.rank[i];
      if (nri == 0) continue;
      gemm(-1.0, ld.dense.at({k, i}).block(rk, ld.rank[i], nrk, nri),
           Trans::No, zl[i], Trans::No, 1.0, zk);
    }
  }

  // Downdate the skeleton rhs with the L_SR strips: b^S_i -= sum_k
  // D(i,k)[S,R] z_k over the diagonal and every dense partner.
  for (int i = 0; i < nb; ++i) {
    const int ri = ld.rank[i];
    if (ri == 0) continue;
    auto update = [&](int k) {
      const int rk = ld.rank[k], nrk = ld.size[k] - rk;
      if (nrk == 0) return;
      gemm(-1.0, ld.dense.at({i, k}).block(0, rk, ri, nrk), Trans::No, zl[k],
           Trans::No, 1.0, sl[i]);
    };
    update(i);
    for (const int k : structure_.dense_cols(level, i)) update(k);
  }

  // Merge sibling skeleton parts into the parent rhs (Eq. 22's rhs analog).
  std::vector<Matrix> next(nb / 2);
  for (int p = 0; p < nb / 2; ++p)
    next[p] = vconcat({sl[2 * p], sl[2 * p + 1]});
  s.cur = std::move(next);
}

void UlvFactorization::backward_level(int level, SolveScratch& s) const {
  const Level& ld = levels_[level];
  const int nb = ld.nb, nrhs = s.nrhs;
  auto& xsl = s.xs[level];
  auto& zl = s.z[level];  // holds z from the forward pass; becomes y, then x^R
  xsl.resize(nb);

  // Split the parent-level solution into this level's skeleton solutions.
  for (int p = 0; p < nb / 2; ++p) {
    const Matrix& xp = s.cur[p];
    xsl[2 * p] = Matrix::from(xp.block(0, 0, ld.rank[2 * p], nrhs));
    xsl[2 * p + 1] = Matrix::from(
        xp.block(ld.rank[2 * p], 0, ld.rank[2 * p + 1], nrhs));
  }

  // y_k = z_k - sum_{j>k} [R,R]strip y_j - sum_j [R,S]strip x^S_j, computed
  // descending (y_j for j > k must still be pre-triangular-solve values).
  for (int k = nb - 1; k >= 0; --k) {
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) continue;
    MatrixView yk = zl[k];
    const auto& cols = structure_.dense_cols(level, k);
    for (auto it = cols.rbegin(); it != cols.rend(); ++it) {
      const int j = *it;
      if (j <= k) break;  // sorted: couplings above the block diagonal only
      const int nrj = ld.size[j] - ld.rank[j];
      if (nrj == 0) continue;
      gemm(-1.0, ld.dense.at({k, j}).block(rk, ld.rank[j], nrk, nrj),
           Trans::No, zl[j], Trans::No, 1.0, yk);
    }
    auto update_rs = [&](int j) {
      if (ld.rank[j] == 0) return;
      gemm(-1.0, ld.dense.at({k, j}).block(rk, 0, nrk, ld.rank[j]), Trans::No,
           xsl[j], Trans::No, 1.0, yk);
    };
    update_rs(k);
    for (const int j : cols) update_rs(j);
  }
  // x^R_k = U_k^-1 y_k (separate pass: couplings above needed y, not x^R).
  for (int k = 0; k < nb; ++k) {
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) continue;
    ConstMatrixView rr = ld.dense.at({k, k}).block(rk, rk, nrk, nrk);
    trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr,
         MatrixView(zl[k]));
  }

  // x = Q [x^S; x^R] back in current coordinates.
  std::vector<Matrix> out(nb);
  for (int c = 0; c < nb; ++c) {
    Matrix xhat(ld.size[c], nrhs);
    if (ld.rank[c] > 0)
      copy_into(xsl[c], xhat.block(0, 0, ld.rank[c], nrhs));
    if (ld.size[c] - ld.rank[c] > 0)
      copy_into(zl[c],
                xhat.block(ld.rank[c], 0, ld.size[c] - ld.rank[c], nrhs));
    out[c] = matmul(ld.q[c], xhat);
  }
  s.cur = std::move(out);
}

void UlvFactorization::solve(MatrixView b) const {
  assert(b.rows() == tree_->n_points());
  if (depth_ == 0) {
    getrs(top_lu_, top_piv_, b);
    return;
  }
  SolveScratch s;
  s.nrhs = b.cols();
  s.s.resize(depth_ + 1);
  s.z.resize(depth_ + 1);
  s.xs.resize(depth_ + 1);

  const int n_leaves = tree_->n_clusters(depth_);
  s.cur.resize(n_leaves);
  for (int c = 0; c < n_leaves; ++c) {
    const ClusterNode& nd = tree_->node(depth_, c);
    s.cur[c] = Matrix::from(b.block(nd.begin, 0, nd.size(), s.nrhs));
  }

  for (int level = depth_; level >= 1; --level) forward_level(level, s);

  assert(s.cur.size() == 1);
  getrs(top_lu_, top_piv_, s.cur[0]);

  for (int level = 1; level <= depth_; ++level) backward_level(level, s);

  for (int c = 0; c < n_leaves; ++c) {
    const ClusterNode& nd = tree_->node(depth_, c);
    copy_into(s.cur[c], b.block(nd.begin, 0, nd.size(), s.nrhs));
  }
}

}  // namespace h2
