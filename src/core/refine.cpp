#include "core/refine.hpp"

#include "core/ulv_factorization.hpp"
#include "hmatrix/h2_matrix.hpp"
#include "linalg/norms.hpp"

namespace h2 {

RefineResult refine(const H2Matrix& a,
                    const std::function<void(MatrixView)>& apply_inv,
                    ConstMatrixView b, MatrixView x, int max_iters,
                    double target) {
  const int n = b.rows(), nrhs = b.cols();
  const double bnorm = norm_fro(b);
  if (bnorm == 0.0) return {};

  Matrix r(n, nrhs);
  RefineResult res;
  double prev = 0.0;
  for (int it = 0; it <= max_iters; ++it) {
    // r = b - A x.
    a.matvec(x, r);
    for (int j = 0; j < nrhs; ++j) {
      double* rj = r.data() + static_cast<std::size_t>(j) * n;
      const double* bj = b.col(j);
      for (int i = 0; i < n; ++i) rj[i] = bj[i] - rj[i];
    }
    res.rel_residual = norm_fro(r) / bnorm;
    if (res.rel_residual <= target) break;
    // A correction that no longer shrinks the residual means the loop is at
    // the factorization's accuracy floor — more iterations cannot reach a
    // tighter target, so stop and report where it stalled.
    if (it > 0 && res.rel_residual >= 0.5 * prev) break;
    if (it == max_iters) break;
    prev = res.rel_residual;
    // x += F^-1 r.
    apply_inv(r);
    for (int j = 0; j < nrhs; ++j) {
      double* xj = x.col(j);
      const double* rj = r.data() + static_cast<std::size_t>(j) * n;
      for (int i = 0; i < n; ++i) xj[i] += rj[i];
    }
    ++res.iterations;
  }
  res.converged = target <= 0.0 || res.rel_residual <= target;
  return res;
}

double ulv_refine(const H2Matrix& a, const UlvFactorization& f,
                  ConstMatrixView b, MatrixView x, int max_iters,
                  double target) {
  return refine(
             a, [&f](MatrixView r) { f.solve(r); }, b, x, max_iters, target)
      .rel_residual;
}

}  // namespace h2
