#include "core/refine.hpp"

#include "linalg/norms.hpp"

namespace h2 {

double ulv_refine(const H2Matrix& a, const UlvFactorization& f,
                  ConstMatrixView b, MatrixView x, int max_iters,
                  double target) {
  const int n = b.rows(), nrhs = b.cols();
  const double bnorm = norm_fro(b);
  if (bnorm == 0.0) return 0.0;

  Matrix r(n, nrhs);
  double rel = 0.0;
  for (int it = 0; it <= max_iters; ++it) {
    // r = b - A x.
    a.matvec(x, r);
    for (int j = 0; j < nrhs; ++j) {
      double* rj = r.data() + static_cast<std::size_t>(j) * n;
      const double* bj = b.col(j);
      for (int i = 0; i < n; ++i) rj[i] = bj[i] - rj[i];
    }
    rel = norm_fro(r) / bnorm;
    if (it == max_iters || rel <= target) break;
    // x += F^-1 r.
    f.solve(r);
    for (int j = 0; j < nrhs; ++j) {
      double* xj = x.col(j);
      const double* rj = r.data() + static_cast<std::size_t>(j) * n;
      for (int i = 0; i < n; ++i) xj[i] += rj[i];
    }
  }
  return rel;
}

}  // namespace h2
