#pragma once

#include "core/ulv_factorization.hpp"
#include "hmatrix/h2_matrix.hpp"

namespace h2 {

/// Iterative refinement: x <- x + F^-1 (b - A x), using the H^2 matvec for
/// the residual. A handful of steps recovers most of the digits the
/// approximate factorization truncated away, at O(N) per step — the standard
/// companion to approximate direct solvers like this one.
///
/// `b` and `x` are n x nrhs in tree ordering; returns the final residual
/// Frobenius norm relative to ||b||.
double ulv_refine(const H2Matrix& a, const UlvFactorization& f,
                  ConstMatrixView b, MatrixView x, int max_iters = 3,
                  double target = 0.0);

}  // namespace h2
