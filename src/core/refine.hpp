#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace h2 {

class H2Matrix;
class UlvFactorization;

/// Typed outcome of an iterative-refinement run (see refine()). The facade
/// surfaces it from mixed-precision solves so callers can distinguish "the
/// target was reached" from "the loop hit its iteration cap" — a
/// deliberately-too-tight target reports converged = false here instead of
/// looping or throwing.
struct RefineResult {
  /// Correction steps applied (x += F^-1 r), not counting the final
  /// residual evaluation.
  int iterations = 0;
  /// Final relative residual ||b - A x||_F / ||b||_F.
  double rel_residual = 0.0;
  /// True when rel_residual <= target at exit (always true for target = 0:
  /// "no target" runs the full iteration budget and accepts the result).
  bool converged = true;
};

/// Iterative refinement against an arbitrary approximate inverse:
/// x <- x + apply_inv(b - A x), using the H^2 matvec for the fp64 residual.
/// A handful of steps recovers most of the digits the approximate (or
/// reduced-precision) factorization lost, at O(N) per step — the standard
/// companion to approximate direct solvers, and the recovery half of the
/// mixed-precision path: factor and sweep in fp32, refine the result
/// against the fp64 operator.
///
/// `apply_inv` must overwrite its argument with F^-1 applied to it (the
/// in-place solve contract of every backend). `b` and `x` are n x nrhs in
/// tree ordering; `x` holds the initial guess on entry (typically the raw
/// reduced-precision solve) and the refined solution on exit. Stops when
/// the relative residual reaches `target`, stops improving, or after
/// `max_iters` corrections — whichever comes first.
RefineResult refine(const H2Matrix& a,
                    const std::function<void(MatrixView)>& apply_inv,
                    ConstMatrixView b, MatrixView x, int max_iters,
                    double target);

/// The classic entry point: refinement against a ULV factorization's solve.
/// Returns the final relative residual (RefineResult::rel_residual).
double ulv_refine(const H2Matrix& a, const UlvFactorization& f,
                  ConstMatrixView b, MatrixView x, int max_iters = 3,
                  double target = 0.0);

}  // namespace h2
