#pragma once

#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/task_graph.hpp"

namespace h2 {

class ThreadPool;

/// Which variant of the ULV factorization to run.
enum class UlvMode {
  /// The paper's contribution (Sec. III): fill-ins are pre-computed per block
  /// row/column and folded into the shared bases, so the per-level
  /// elimination has NO trailing sub-matrix dependencies and every block row
  /// factorizes independently.
  Parallel,
  /// The conventional H2-ULV flow (Sec. II.D): block rows are eliminated in
  /// order; Schur updates are applied to the trailing sub-matrix (all four
  /// S-parts of dense targets) and fill-ins into admissible targets are
  /// recompressed on the fly by projection onto the shared bases. Inherently
  /// serial; kept as the ablation baseline.
  Sequential,
};

/// How the Parallel-mode factorization is executed. (Sequential mode is an
/// inherently ordered ablation and always runs as plain loops.)
enum class UlvExecutor {
  /// Build the factorization as a dependency-counted TaskGraph — one task
  /// per (phase, cluster) with fill→basis→project→eliminate edges inside a
  /// block row, project→schur→merge edges toward the parent, and merge→fill
  /// edges that let level L-1 start while level L drains — and execute it on
  /// a ThreadPool. This is the runtime realization of the paper's "no
  /// trailing sub-matrix dependencies" claim, and the default.
  TaskDag,
  /// Bulk-synchronous phase loops with a barrier after every phase and every
  /// level (serial, or pool-parallel via the deprecated `use_threads`). Kept
  /// as an ablation: same arithmetic, no inter-phase/inter-level overlap.
  PhaseLoops,
};

/// Ready-queue discipline of the pool the TaskDag executor runs on.
enum class UlvSchedule {
  /// One shared queue (highest priority first, submission order on ties):
  /// the pre-work-stealing behaviour, kept as the contention ablation — at
  /// high worker counts every ready task crosses one lock.
  Fifo,
  /// Per-worker deques with randomized stealing (the default): LIFO-local
  /// pops keep a block row's fill→basis→project chain on the worker whose
  /// cache holds it; idle workers steal the oldest task from a random
  /// victim, spreading breadth instead of leaves.
  WorkSteal,
};

/// Element precision of the factorization's stored blocks and sweeps.
/// F32 halves every factor block (storage, spill files, pool traffic) and
/// runs the factorization and solve arithmetic in fp32; inputs are rounded
/// once where the H2Matrix's fp64 data enters the engine, and accuracy is
/// recovered by fp64 iterative refinement at the facade (see
/// SolverOptions::precision / core/refine). Determinism contracts are
/// per-precision: fp32 runs are bitwise identical across executors,
/// schedules, and worker counts, exactly like fp64 runs.
enum class Precision : std::uint8_t { F64, F32 };

/// Ready-task ordering of the TaskDag executor.
enum class UlvPriority {
  /// Submission order only.
  None,
  /// Bottom-level (critical-path) priorities on the real DAG (the default),
  /// computed by the same bottom_levels() the scheduling simulator ranks
  /// by: tasks on the cross-level schur→merge→fill spine run before
  /// same-level stragglers, so a level's drain no longer tails behind
  /// width-1 readiness.
  CriticalPath,
};

struct UlvOptions {
  /// Relative truncation tolerance of the shared-basis QR (and the skeleton
  /// rank it implies).
  double tol = 1e-8;
  /// Optional hard cap on skeleton ranks (-1: none).
  int max_rank = -1;
  /// The fill-in column spaces entering the shared bases are truncated at
  /// fill_tol_factor * tol (relative). Smaller keeps more fill directions
  /// (more accurate elimination, larger skeleton ranks).
  double fill_tol_factor = 0.01;
  /// The paper's key idea: include the pre-computed fill-in directions in the
  /// shared bases (Eqs. 27-28). Turning this off with strong admissibility
  /// reproduces the failure mode the paper fixes (see bench_ablation_fillin).
  bool fillin_augmentation = true;
  UlvMode mode = UlvMode::Parallel;
  /// Element type of the stored factor (see Precision). F32 is the
  /// mixed-precision factorization backend: blocks, spills, and solve sweeps
  /// in fp32 at half the bytes; pair with refinement for fp64 accuracy.
  Precision precision = Precision::F64;
  /// Execution policy for Parallel mode (see UlvExecutor). Results are
  /// bitwise identical across executors and worker counts: every task
  /// performs the same block operations in the same order.
  UlvExecutor executor = UlvExecutor::TaskDag;
  /// Execution policy of the SOLVE sweeps (Parallel mode): TaskDag (the
  /// default) replays the solve DAG recorded at factorization time — the
  /// forward sweep's block-row structure, reversed for the backward pass —
  /// on the pool; PhaseLoops keeps the bulk-synchronous per-level sweep as
  /// the ablation. Like the factorization, the two solve executors are
  /// bitwise identical at any worker count and scheduling policy.
  UlvExecutor solve_executor = UlvExecutor::TaskDag;
  /// Ready-queue discipline for the TaskDag pool. Applies to the pool the
  /// factorization creates (n_workers > 0, or a policy-mismatched global
  /// pool); an explicit `pool` brings its own policy, which wins. Scheduling
  /// never changes results — only when each task runs.
  UlvSchedule schedule = UlvSchedule::WorkSteal;
  /// Ready-task ordering for the TaskDag executor (see UlvPriority).
  UlvPriority priority = UlvPriority::CriticalPath;
  /// TaskDag worker count when no `pool` is given: a positive value spawns
  /// a private pool of that size for this factorization; 0 uses the global
  /// pool. Ignored when `pool` is set — an explicit pool always wins. Use
  /// n_workers = 1 when recording task durations for the scheduling
  /// simulator: replayed timings should be contention-free.
  int n_workers = 0;
  /// Pool for the TaskDag executor and pool-parallel phase loops
  /// (nullptr: by n_workers / the global pool).
  ThreadPool* pool = nullptr;
  /// Deprecated alias (pre-Executor API): `true` selects pool-parallel
  /// bulk-synchronous phase loops. validate() maps it explicitly onto
  /// `executor = solve_executor = PhaseLoops` (no silent behavior left in
  /// the executor dispatch). Prefer `executor`/`n_workers`.
  bool use_threads = false;
  /// Free every workspace block the moment its last consumer retires — as
  /// reference-counted release tasks wired into the factorization DAG
  /// (TaskDag), or as end-of-phase frees at the equivalent points of the
  /// bulk-synchronous sweep (PhaseLoops) — with freed storage recycled
  /// through the BlockPool arena. This is what keeps peak factorization
  /// memory at O(a few active levels) instead of O(whole tree). `false`
  /// retains every block until the factorization ends: the retain-everything
  /// ablation the peak-memory bench baselines against. Results are bitwise
  /// identical either way — releases only ever free dead blocks.
  bool release_blocks = true;
  /// Accumulate the Frobenius mass of all dropped (non-SS) Schur update
  /// components — the quantity the paper argues is negligible once the bases
  /// contain the fill-ins. Costs extra GEMMs; enable in tests/ablations.
  bool measure_dropped = false;
  /// Record a per-task timing log (level, kind, owner cluster, seconds) used
  /// by the distributed-memory scheduling simulator. Under the TaskDag
  /// executor this additionally keeps the executed DAG (UlvStats::dag) and
  /// its execution trace (UlvStats::exec).
  bool record_tasks = false;
  /// Existing writable directory for the out-of-core factor store
  /// (src/storage). Empty (the default) keeps every factor block resident.
  /// Non-empty hands each factor block to a SpillStore at its release point:
  /// background writers persist it, eviction keeps resident factor bytes at
  /// or under spill_budget_bytes, and a prefetcher reads blocks back ahead
  /// of each solve sweep's cursor. Spilling moves bytes, never transforms
  /// them — results stay bitwise identical to the in-RAM run across both
  /// executors and worker counts. Env default: H2_SPILL_DIR.
  std::string spill_dir;
  /// Resident budget (bytes) for spilled factor blocks; only meaningful with
  /// spill_dir set. 0 keeps nothing resident between sweeps (pure disk
  /// tier). Env default: H2_SPILL_MB (mebibytes).
  std::uint64_t spill_budget_bytes = 256ull << 20;
  /// Background writer threads of the spill store (>= 1 when spilling).
  /// Env default: H2_SPILL_THREADS.
  int spill_threads = 2;
  /// Make every solve's per-column bits independent of nrhs: the solve
  /// bodies run their gemms under a width-stable dispatch scope
  /// (detail::WidthStableScope), so the blocked/naive choice — the ONE
  /// nrhs-dependent decision in the solve arithmetic — ignores the column
  /// count. With this on, solving k right-hand sides as one n x k block is
  /// bitwise identical to k separate single-column solves: the contract the
  /// server tier's admission batching is built on (coalesced batch ==
  /// serial requests, bit for bit). Cost: single-column solves above the
  /// dispatch threshold run the packed microkernel at partial lane
  /// occupancy instead of the naive sweep — measured by
  /// bench_server_traffic's latency mode. Off by default: a standalone
  /// solve has no batch to be consistent with.
  bool width_stable_solve = false;

  /// The ThreadPool queue discipline `schedule` maps onto — the ONE place
  /// the mapping lives (executors and the api facade all size/spawn pools
  /// through it).
  [[nodiscard]] ThreadPool::QueuePolicy queue_policy() const {
    return schedule == UlvSchedule::Fifo ? ThreadPool::QueuePolicy::Fifo
                                         : ThreadPool::QueuePolicy::WorkSteal;
  }

  /// Normalize and check the options; UlvFactorization runs this on its copy
  /// before factorizing. Maps the deprecated `use_threads` alias onto
  /// `executor = solve_executor = PhaseLoops` (its documented meaning — the
  /// executor dispatch itself no longer special-cases the flag) and rejects
  /// nonsensical inputs with std::invalid_argument instead of letting them
  /// produce undefined behavior downstream.
  void validate() {
    if (!(tol > 0.0))
      throw std::invalid_argument(
          "UlvOptions: tol must be > 0 (got " + std::to_string(tol) +
          "); the shared-basis truncation is relative to it");
    if (!(fill_tol_factor > 0.0))
      throw std::invalid_argument(
          "UlvOptions: fill_tol_factor must be > 0 (got " +
          std::to_string(fill_tol_factor) +
          "); fill-in directions are truncated at fill_tol_factor * tol");
    if (n_workers < 0)
      throw std::invalid_argument(
          "UlvOptions: n_workers must be >= 0 (got " +
          std::to_string(n_workers) +
          "); 0 selects the process-wide pool, > 0 a private pool");
    if (!spill_dir.empty()) {
      if (::access(spill_dir.c_str(), W_OK) != 0)
        throw std::invalid_argument(
            "UlvOptions: spill_dir must name an existing writable directory "
            "(got '" +
            spill_dir +
            "'); the out-of-core store creates its files under it "
            "(H2_SPILL_DIR)");
      if (spill_threads < 1)
        throw std::invalid_argument(
            "UlvOptions: spill_threads must be >= 1 when spill_dir is set "
            "(got " +
            std::to_string(spill_threads) +
            "); someone has to write the spill files (H2_SPILL_THREADS)");
    }
    if (use_threads) {
      executor = UlvExecutor::PhaseLoops;
      solve_executor = UlvExecutor::PhaseLoops;
    }
  }
};

/// One timed unit of factorization work (granularity = one block task).
struct UlvTaskRecord {
  int level;         ///< tree level the task belongs to (0 = top)
  const char* kind;  ///< "fill", "basis", "project", "eliminate", ...
  int owner;         ///< block row / cluster id owning the task
  double seconds;
};

struct UlvStats {
  /// ranks[level][cluster] = skeleton rank chosen at that level.
  std::vector<std::vector<int>> ranks;
  int max_rank = 0;
  /// Accumulated SQUARED Frobenius norms of all dropped update components
  /// (only populated when measure_dropped); take sqrt for a norm-like value.
  double dropped_mass = 0.0;
  double factor_seconds = 0.0;
  double setup_seconds = 0.0;  ///< fills + bases + projections
  std::uint64_t factor_flops = 0;
  /// High-water mark of tracked block bytes during the factorization
  /// (blockmem window over the executor's span — both executors fill it),
  /// and the bytes still live when it finished (the persistent factor:
  /// projected dense blocks, bases, pivots — what solve() needs). With
  /// release_blocks the peak stays near the final footprint; without it the
  /// whole workspace stacks on top.
  std::uint64_t peak_block_bytes = 0;
  std::uint64_t final_block_bytes = 0;
  /// Out-of-core store (only nonzero when UlvOptions::spill_dir is set):
  /// factor blocks handed to the spill tier, their payload bytes, and the
  /// resident budget they are kept under. The live spill counters (faults,
  /// prefetch hits, resident high-water mark) are on Solver::spill_stats().
  std::uint64_t spilled_blocks = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t spill_budget_bytes = 0;
  /// Flat per-task timing log (only when record_tasks). Under TaskDag the
  /// same tasks also appear in `exec` with wall-clock spans and in `dag`
  /// with their true edge structure — the flat list stays for consumers
  /// that only need (level, kind, owner, seconds) aggregates.
  std::vector<UlvTaskRecord> tasks;
  /// The executed factorization DAG (TaskDag executor + record_tasks): the
  /// one structure shared by the real execution, the Fig. 13 trace, and the
  /// src/dist scheduling simulator.
  DagRecord dag;
  /// Execution trace of `dag` (worker lanes + spans).
  ExecStats exec;
};

}  // namespace h2
