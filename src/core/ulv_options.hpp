#pragma once

#include <cstdint>
#include <vector>

namespace h2 {

class ThreadPool;

/// Which variant of the ULV factorization to run.
enum class UlvMode {
  /// The paper's contribution (Sec. III): fill-ins are pre-computed per block
  /// row/column and folded into the shared bases, so the per-level
  /// elimination has NO trailing sub-matrix dependencies and every block row
  /// factorizes independently.
  Parallel,
  /// The conventional H2-ULV flow (Sec. II.D): block rows are eliminated in
  /// order; Schur updates are applied to the trailing sub-matrix (all four
  /// S-parts of dense targets) and fill-ins into admissible targets are
  /// recompressed on the fly by projection onto the shared bases. Inherently
  /// serial; kept as the ablation baseline.
  Sequential,
};

struct UlvOptions {
  /// Relative truncation tolerance of the shared-basis QR (and the skeleton
  /// rank it implies).
  double tol = 1e-8;
  /// Optional hard cap on skeleton ranks (-1: none).
  int max_rank = -1;
  /// The fill-in column spaces entering the shared bases are truncated at
  /// fill_tol_factor * tol (relative). Smaller keeps more fill directions
  /// (more accurate elimination, larger skeleton ranks).
  double fill_tol_factor = 0.01;
  /// The paper's key idea: include the pre-computed fill-in directions in the
  /// shared bases (Eqs. 27-28). Turning this off with strong admissibility
  /// reproduces the failure mode the paper fixes (see bench_ablation_fillin).
  bool fillin_augmentation = true;
  UlvMode mode = UlvMode::Parallel;
  /// Execute block-level phases through a thread pool (Parallel mode only).
  bool use_threads = false;
  ThreadPool* pool = nullptr;  ///< nullptr: the global pool
  /// Accumulate the Frobenius mass of all dropped (non-SS) Schur update
  /// components — the quantity the paper argues is negligible once the bases
  /// contain the fill-ins. Costs extra GEMMs; enable in tests/ablations.
  bool measure_dropped = false;
  /// Record a per-task timing log (level, kind, owner cluster, seconds) used
  /// by the distributed-memory scheduling simulator.
  bool record_tasks = false;
};

/// One timed unit of factorization work (granularity = one block task).
struct UlvTaskRecord {
  int level;         ///< tree level the task belongs to (0 = top)
  const char* kind;  ///< "fill", "basis", "project", "eliminate", ...
  int owner;         ///< block row / cluster id owning the task
  double seconds;
};

struct UlvStats {
  /// ranks[level][cluster] = skeleton rank chosen at that level.
  std::vector<std::vector<int>> ranks;
  int max_rank = 0;
  /// Accumulated SQUARED Frobenius norms of all dropped update components
  /// (only populated when measure_dropped); take sqrt for a norm-like value.
  double dropped_mass = 0.0;
  double factor_seconds = 0.0;
  double setup_seconds = 0.0;  ///< fills + bases + projections
  std::uint64_t factor_flops = 0;
  std::vector<UlvTaskRecord> tasks;  ///< only when record_tasks
};

}  // namespace h2
