#include "core/ulv_factorization.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <memory>

#include "linalg/batch.hpp"
#include "runtime/block_pool.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/thread_pool.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace h2 {

namespace {

template <class T>
std::uint64_t bytes_of(const MatrixT<T>& m) {
  return sizeof(T) * static_cast<std::uint64_t>(m.rows()) *
         static_cast<std::uint64_t>(m.cols());
}

}  // namespace

/// Transient per-level storage of the factorization pipeline. Every map is
/// fully keyed by prepare() before any body runs, so concurrent bodies only
/// assign mapped values through stable node references — the map structure
/// itself is never mutated during execution.
template <class T>
struct UlvEngine<T>::Workspace {
  const H2Matrix* a = nullptr;
  /// cur[l]: stored blocks of level l in current (child-skeleton)
  /// coordinates — leaf dense blocks at l = depth, merged skeletons above.
  /// Freed row-by-row by body_project_row, their last consumer.
  std::vector<std::map<Key, Matrix>> cur;
  /// Admissible U/V factors of each level in current coordinates.
  std::vector<std::map<Key, Matrix>> ucur, vcur;
  /// Compressed fill-in column spaces per pivot row (Fig. 7).
  std::vector<std::vector<Matrix>> fill_p;
};

template <class T>
UlvEngine<T>::UlvEngine(const H2Matrix& a, const UlvOptions& opt)
    : tree_(&a.tree()),
      structure_(a.structure()),
      opt_(opt),
      depth_(a.tree().depth()) {
  opt_.validate();  // rejects nonsense, maps use_threads onto PhaseLoops
  // Out-of-core tier: the store must exist before factorize() so factor
  // blocks can spill at their release points instead of stacking up.
  if (!opt_.spill_dir.empty())
    spill_attach(opt_.spill_dir, opt_.spill_budget_bytes, opt_.spill_threads);
  const Timer total;
  const std::uint64_t flops0 = flops::total();
  factorize(a);
  stats_.factor_flops = flops::total() - flops0;
  stats_.factor_seconds = total.seconds();
  for (const auto& level_ranks : stats_.ranks)
    for (const int r : level_ranks) stats_.max_rank = std::max(stats_.max_rank, r);
  if (solve_dag_mode()) build_solve_plan();
  if (store_ != nullptr) {
    spill_finish_registration();
    build_spill_plan();  // seals the store; rethrows any recorded IO error
    const SpillStats ss = store_->stats();
    stats_.spilled_blocks = ss.blocks;
    stats_.spilled_bytes = ss.block_bytes;
    stats_.spill_budget_bytes = ss.budget_bytes;
  }
}

template <class T>
UlvEngine<T>::~UlvEngine() {
  blockmem::discharge(tracked_bytes_.load(std::memory_order_relaxed));
}

template <class T>
void UlvEngine<T>::track_store(Matrix& dst, Matrix&& fresh) {
  const std::uint64_t before = bytes_of(dst), after = bytes_of(fresh);
  dst = std::move(fresh);
  if (after >= before) {
    blockmem::charge(after - before);
    tracked_bytes_.fetch_add(after - before, std::memory_order_relaxed);
  } else {
    blockmem::discharge(before - after);
    tracked_bytes_.fetch_sub(before - after, std::memory_order_relaxed);
  }
}

template <class T>
void UlvEngine<T>::track_take(Matrix& dst, Matrix& src) {
  const std::uint64_t overwritten = bytes_of(dst);
  blockmem::discharge(overwritten);
  tracked_bytes_.fetch_sub(overwritten, std::memory_order_relaxed);
  dst = std::move(src);
  src = Matrix();  // moved-from shape is unspecified; make the slot empty
}

template <class T>
void UlvEngine<T>::track_drop(Matrix& m) {
  const std::uint64_t b = bytes_of(m);
  if (b == 0) {
    m = Matrix();
    return;
  }
  blockmem::discharge(b);
  tracked_bytes_.fetch_sub(b, std::memory_order_relaxed);
  Matrix dead = std::move(m);
  m = Matrix();
  BlockPool::global().recycle(std::move(dead));
}

template <class T>
void UlvEngine<T>::release_ry_row(int level, int i) {
  for (const int j : structure_.admissible_cols(level, i))
    track_drop(ry_[level].at({i, j}));
}

template <class T>
void UlvEngine<T>::release_skel_block(int level, int i, int j) {
  track_drop(skel_[level].at({i, j}));
}

template <class T>
void UlvEngine<T>::release_level_remnants(Workspace& w, int level) {
  // The per-resource releases emptied the VALUES; this retires the node
  // storage (and any value the fine-grained path does not cover, e.g. the
  // already-emptied cur/ucur/vcur slots). Callers order it after every task
  // touching the level, so clearing the maps is exclusive.
  for (auto& [key, m] : w.cur[level]) track_drop(m);
  w.cur[level].clear();
  for (auto& [key, m] : w.ucur[level]) track_drop(m);
  w.ucur[level].clear();
  for (auto& [key, m] : w.vcur[level]) track_drop(m);
  w.vcur[level].clear();
  for (Matrix& m : w.fill_p[level]) track_drop(m);
  w.fill_p[level].clear();
  w.fill_p[level].shrink_to_fit();
  for (auto& [key, m] : ry_[level]) track_drop(m);
  ry_[level].clear();
  for (auto& [key, m] : skel_[level]) track_drop(m);
  skel_[level].clear();
  // The level's projected dense blocks are final once it drained: hand them
  // to the out-of-core tier here — its release point — so the factorization
  // never holds more spilled-tier bytes than the resident budget. (The q
  // bases are NOT final-read yet: current_rows reads every deeper level's
  // bases until the last level merges, so they adopt at the end.)
  if (store_ != nullptr) spill_register_dense(level);
}

template <class T>
void UlvEngine<T>::spill_attach(const std::string& dir,
                                    std::uint64_t budget_bytes,
                                    int io_threads) {
  SpillStore::Options so;
  so.dir = dir;
  so.budget_bytes = budget_bytes;
  so.io_threads = io_threads;
  store_ = std::make_unique<SpillStore>(so);
  dslot_.assign(depth_ + 1, {});
  qslot_.assign(depth_ + 1, {});
}

template <class T>
void UlvEngine<T>::spill_register_dense(int level) {
  std::lock_guard<std::mutex> lk(spill_mu_);
  auto& slots = dslot_[level];
  for (auto& [key, m] : levels_[level].dense) {
    if (m.empty() || slots.count(key) != 0) continue;
    const std::uint64_t b = bytes_of(m);
    SpillStore::SlotId id;
    try {
      id = store_->adopt(&m, "dense L" + std::to_string(level) + " (" +
                                 std::to_string(key.first) + "," +
                                 std::to_string(key.second) + ")");
    } catch (const std::exception&) {
      // Possibly on a DAG worker, where a throw would terminate the pool.
      // The store recorded the error; spill_finish_registration / seal
      // rethrows it on the constructor's thread.
      return;
    }
    // Accounting ownership moves to the store (adopt charged it); dropping
    // ours second keeps the blockmem counter from dipping below live.
    blockmem::discharge(b);
    tracked_bytes_.fetch_sub(b, std::memory_order_relaxed);
    slots.emplace(key, std::make_pair(id, b));
  }
}

template <class T>
void UlvEngine<T>::spill_finish_registration() {
  if (depth_ == 0) return;  // degenerate tree: one dense LU, keep it in RAM
  for (int l = 1; l <= depth_; ++l) spill_register_dense(l);
  std::lock_guard<std::mutex> lk(spill_mu_);
  for (int l = 1; l <= depth_; ++l) {
    auto& qs = qslot_[l];
    qs.assign(levels_[l].nb, {SpillStore::kNoSlot, 0});
    for (int c = 0; c < levels_[l].nb; ++c) {
      Matrix& q = levels_[l].q[c];
      if (q.empty()) continue;
      const std::uint64_t b = bytes_of(q);
      const SpillStore::SlotId id =
          store_->adopt(&q, "q L" + std::to_string(l) + " c" + std::to_string(c));
      blockmem::discharge(b);
      tracked_bytes_.fetch_sub(b, std::memory_order_relaxed);
      qs[c] = {id, b};
    }
  }
  if (!top_lu_.empty()) {
    const std::uint64_t b = bytes_of(top_lu_);
    topslot_ = store_->adopt(&top_lu_, "top_lu");
    blockmem::discharge(b);
    tracked_bytes_.fetch_sub(b, std::memory_order_relaxed);
  }
}

template <class T>
UlvEngine<T>::SolveGuard::SolveGuard(const UlvEngine<T>& u)
    : u_(u.store_ != nullptr ? &u : nullptr) {
  if (u_ == nullptr) return;
  std::lock_guard<std::mutex> lk(u_->solve_gate_mu_);
  ++u_->active_solves_;
}

template <class T>
UlvEngine<T>::SolveGuard::~SolveGuard() {
  if (u_ == nullptr) return;
  std::lock_guard<std::mutex> lk(u_->solve_gate_mu_);
  --u_->active_solves_;
  u_->solve_gate_cv_.notify_all();
}

template <class T>
SpillStats UlvEngine<T>::spill_stats() const {
  return store_ != nullptr ? store_->stats() : SpillStats{};
}

template <class T>
bool UlvEngine<T>::demote_to_disk(const std::string& dir) {
  // Hold the solve gate across the whole demotion: in-flight solves drain
  // first (their pins would keep blocks resident anyway), and solves
  // arriving meanwhile block in their SolveGuard until the factor is cold.
  std::unique_lock<std::mutex> lk(solve_gate_mu_);
  solve_gate_cv_.wait(lk, [&] { return active_solves_ == 0; });
  if (store_ == nullptr) {
    promote_budget_ = ~0ull;  // promotion = fully resident again
    spill_attach(dir, /*budget_bytes=*/0, opt_.spill_threads);
    spill_finish_registration();
    build_spill_plan();
  } else if (!demoted_) {
    promote_budget_ = store_->stats().budget_bytes;
    store_->set_budget(0);
  }
  store_->drop_all();
  demoted_ = true;
  return true;
}

template <class T>
void UlvEngine<T>::promote() {
  std::lock_guard<std::mutex> lk(solve_gate_mu_);
  if (store_ == nullptr || !demoted_) return;
  store_->set_budget(promote_budget_);
  if (promote_budget_ == ~0ull) store_->fetch_all();
  demoted_ = false;
}

template <class T>
void UlvEngine<T>::record_task(int level, const char* kind, int owner,
                                   double seconds) {
  if (!opt_.record_tasks) return;
  std::lock_guard<std::mutex> lk(stats_mutex_);
  stats_.tasks.push_back({level, kind, owner, seconds});
}

template <class T>
void UlvEngine<T>::add_dropped(double fro2) {
  if (fro2 <= 0.0) return;
  std::lock_guard<std::mutex> lk(stats_mutex_);
  stats_.dropped_mass += fro2;  // accumulated squared; sqrt at the end
}

template <class T>
void UlvEngine<T>::for_indices(int n,
                                   const std::function<void(int)>& fn) const {
  if (loops_pool_ != nullptr) {
    parallel_for(0, n, fn, loops_pool_);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

template <class T>
bool UlvEngine<T>::task_dag_mode() const {
  // use_threads was already normalized onto PhaseLoops by validate().
  return opt_.mode == UlvMode::Parallel &&
         opt_.executor == UlvExecutor::TaskDag;
}

template <class T>
auto UlvEngine<T>::current_rows(int level, int lid,
                                ConstMatrixViewT<double> x_full) const
    -> Matrix {
  if (level == depth_) return from_f64(x_full);
  const int c0 = 2 * lid, c1 = 2 * lid + 1;
  const int pts0 = tree_->node(level + 1, c0).size();
  const int pts1 = tree_->node(level + 1, c1).size();
  assert(x_full.rows() == pts0 + pts1);
  const int w = x_full.cols();
  const Matrix y0 = current_rows(level + 1, c0, x_full.block(0, 0, pts0, w));
  const Matrix y1 = current_rows(level + 1, c1, x_full.block(pts0, 0, pts1, w));
  const Level& child = levels_[level + 1];
  const int r0 = child.rank[c0], r1 = child.rank[c1];
  Matrix out(r0 + r1, w);
  if (r0 > 0)
    gemm(1.0, child.q[c0].block(0, 0, child.size[c0], r0), Trans::Yes, y0,
         Trans::No, 0.0, out.block(0, 0, r0, w));
  if (r1 > 0)
    gemm(1.0, child.q[c1].block(0, 0, child.size[c1], r1), Trans::Yes, y1,
         Trans::No, 0.0, out.block(r0, 0, r1, w));
  return out;
}

template <class T>
void UlvEngine<T>::prepare(Workspace& w) {
  levels_.resize(depth_ + 1);
  skel_.resize(depth_ + 1);
  ry_.resize(depth_ + 1);
  stats_.ranks.resize(depth_ + 1);
  w.cur.resize(depth_ + 1);
  w.ucur.resize(depth_ + 1);
  w.vcur.resize(depth_ + 1);
  w.fill_p.resize(depth_ + 1);
  for (int l = 0; l <= depth_; ++l)
    for (const auto& [i, j] : structure_.inadmissible_pairs(l))
      w.cur[l].emplace(Key{i, j}, Matrix());
  for (int l = 1; l <= depth_; ++l) {
    Level& ld = levels_[l];
    const int nb = tree_->n_clusters(l);
    ld.nb = nb;
    ld.size.assign(nb, 0);
    ld.rank.assign(nb, 0);
    ld.q.assign(nb, Matrix());
    ld.rr_piv.assign(nb, {});
    stats_.ranks[l].assign(nb, 0);
    w.fill_p[l].assign(nb, Matrix());
    for (const auto& [i, j] : structure_.inadmissible_pairs(l))
      ld.dense.emplace(Key{i, j}, Matrix());
    for (const auto& [i, j] : structure_.admissible_pairs(l)) {
      skel_[l].emplace(Key{i, j}, Matrix());
      ry_[l].emplace(Key{i, j}, Matrix());
      w.ucur[l].emplace(Key{i, j}, Matrix());
      w.vcur[l].emplace(Key{i, j}, Matrix());
    }
  }
}

// ---------------------------------------------------------------------------
// Phase bodies — one (phase, cluster) unit of work each. Both executors call
// exactly these, in the same per-body operation order, which is what makes
// the results bitwise identical across executors and worker counts.
// ---------------------------------------------------------------------------

// assemble and ry are deliberately absent from the flat UlvTaskRecord log:
// they are dependency-free roots the flat replay would wrongly wall off into
// barrier-separated phases (and the pre-DAG model never counted them). They
// still appear in the DAG trace (UlvStats::dag/exec) with their true,
// unordered structure.

template <class T>
void UlvEngine<T>::body_assemble(Workspace& w, int level, int i) {
  track_store(w.cur[level].at({i, i}), from_f64(w.a->dense_block(i, i)));
  for (const int j : structure_.dense_cols(level, i))
    track_store(w.cur[level].at({i, j}), from_f64(w.a->dense_block(i, j)));
}

template <class T>
void UlvEngine<T>::body_ry(Workspace& w, int level, int i) {
  // R factors of the QR of every admissible block's V factor: the magnitude-
  // preserving right factor used when a block's column space enters a basis
  // concatenation (u * ry^T has the same Gram matrix as u * v^T). The row's
  // factorizations go down as one qr_batch.
  std::vector<int> js;
  std::vector<Matrix> vqs;
  for (const int j : structure_.admissible_cols(level, i)) {
    const LowRank& lr = w.a->lowrank_block(level, i, j);
    if (lr.rank() == 0) continue;
    js.push_back(j);
    vqs.push_back(from_f64(lr.v));
  }
  std::vector<std::vector<T>> taus(js.size());
  std::vector<QrTask> tasks;
  tasks.reserve(js.size());
  for (std::size_t t = 0; t < js.size(); ++t) tasks.push_back({vqs[t], &taus[t]});
  qr_batch(tasks);
  for (std::size_t t = 0; t < js.size(); ++t)
    track_store(ry_[level].at({i, js[t]}), extract_r(vqs[t]));  // rank x rank
}

template <class T>
void UlvEngine<T>::body_project_lr(Workspace& w, int level, int i) {
  const Timer t;
  for (const int j : structure_.admissible_cols(level, i)) {
    const LowRank& lr = w.a->lowrank_block(level, i, j);
    if (lr.rank() == 0) continue;
    track_store(w.ucur[level].at({i, j}), current_rows(level, i, lr.u));
    track_store(w.vcur[level].at({i, j}), current_rows(level, j, lr.v));
  }
  record_task(level, "project_lr", i, t.seconds());
}

template <class T>
void UlvEngine<T>::body_fill(Workspace& w, int level, int k) {
  // Fig. 7: the column space that every fill-in F(i,j) = A(i,k) A(k,k)^-1
  // A(k,j) through pivot k can occupy. We factor the concatenation
  // [A(k,k)^-1 A(k,j)]_j once per k (the paper's "not redundantly computed"
  // note) and compress it to P_k so that A(i,k) * P_k spans exactly the same
  // space as [F(i,j)]_j with the same Gram matrix — equivalent to
  // concatenating the fill-ins themselves.
  const auto& dcols = structure_.dense_cols(level, k);
  if (dcols.empty()) return;
  const Timer t;
  Matrix lu = w.cur[level].at({k, k});
  const int nk = lu.rows();
  std::vector<int> piv;
  getrf(lu, piv);
  std::vector<Matrix> tblocks;
  tblocks.reserve(dcols.size());
  for (const int j : dcols) tblocks.push_back(w.cur[level].at({k, j}));
  // getrs unrolled into batches (laswp + L solve + U solve per block, same
  // per-block operation order) so the LU triangle's panels pack once.
  std::vector<TrsmTask> lsolves, usolves;
  lsolves.reserve(tblocks.size());
  usolves.reserve(tblocks.size());
  for (Matrix& tb : tblocks) {
    laswp(tb, piv, /*forward=*/true);
    lsolves.push_back(
        {Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, lu, tb});
    usolves.push_back(
        {Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, lu, tb});
  }
  trsm_batch(lsolves);
  trsm_batch(usolves);
  std::vector<ConstMatrixView> views(tblocks.begin(), tblocks.end());
  const Matrix tc = hconcat(views);
  // Keep fill directions somewhat below the basis tolerance.
  const PivotedQr qr = pivoted_qr(tc, opt_.fill_tol_factor * opt_.tol, -1);
  if (qr.rank == 0) return;
  Matrix rt = qr.r.transposed();
  std::vector<T> tau;
  householder_qr(rt, tau);
  const Matrix rtr = extract_r(rt);  // r_T x r_T
  track_store(w.fill_p[level][k],
              matmul(qr.q.block(0, 0, nk, qr.rank), rtr, Trans::No, Trans::Yes));
  record_task(level, "fill", k, t.seconds());
}

template <class T>
void UlvEngine<T>::body_basis(Workspace& w, int level, int i) {
  // Eqs. 27-28 + nestedness: shared basis per cluster from
  // [fill-in spaces | this level's low-rank blocks | ancestor-block rows].
  const Timer t;
  Level& ld = levels_[level];
  ld.size[i] = (level == depth_) ? tree_->node(level, i).size()
                                 : levels_[level + 1].rank[2 * i] +
                                       levels_[level + 1].rank[2 * i + 1];
  // Collect every contribution as one gemm batch (outputs preallocated, a
  // Matrix move never invalidates views into its heap storage).
  std::vector<Matrix> parts;
  std::vector<Matrix> xis;  // ancestor row-slice temporaries
  std::vector<GemmTask> tasks;
  auto add_part = [&](ConstMatrixView a, ConstMatrixView b, Trans tb) {
    parts.emplace_back(a.rows(), tb == Trans::No ? b.cols() : b.rows());
    tasks.push_back({1.0, a, Trans::No, b, tb, 0.0, parts.back()});
  };
  if (opt_.fillin_augmentation) {
    for (const int k : structure_.dense_cols(level, i))
      if (!w.fill_p[level][k].empty())
        add_part(w.cur[level].at({i, k}), w.fill_p[level][k], Trans::No);
  }
  for (const int j : structure_.admissible_cols(level, i)) {
    const Matrix& u = w.ucur[level].at({i, j});
    if (!u.empty()) add_part(u, ry_[level].at({i, j}), Trans::Yes);
  }
  for (int lambda = 1; lambda < level; ++lambda) {
    const int anc = i >> (level - lambda);
    const int row0 = tree_->node(level, i).begin;
    const int anc0 = tree_->node(lambda, anc).begin;
    const int npts = tree_->node(level, i).size();
    for (const int j : structure_.admissible_cols(lambda, anc)) {
      const LowRank& lr = w.a->lowrank_block(lambda, anc, j);
      if (lr.rank() == 0) continue;
      xis.push_back(
          current_rows(level, i, lr.u.block(row0 - anc0, 0, npts, lr.rank())));
      add_part(xis.back(), ry_[lambda].at({anc, j}), Trans::Yes);
    }
  }
  gemm_batch(tasks);
  if (parts.empty()) {
    track_store(ld.q[i], Matrix::identity(ld.size[i]));
    ld.rank[i] = 0;
  } else {
    std::vector<ConstMatrixView> views(parts.begin(), parts.end());
    const Matrix concat = hconcat(views);
    PivotedQr qr = pivoted_qr(concat, opt_.tol, opt_.max_rank);
    track_store(ld.q[i], std::move(qr.q));
    ld.rank[i] = qr.rank;
  }
  stats_.ranks[level][i] = ld.rank[i];
  record_task(level, "basis", i, t.seconds());
}

template <class T>
void UlvEngine<T>::body_project_row(Workspace& w, int level, int i) {
  // Eqs. 8-9: project row i's blocks onto the bases, then (release_blocks)
  // free the row's inputs — the projection is their last consumer (fill and
  // basis of this row are ordered before it in both executors).
  const Timer t;
  Level& ld = levels_[level];
  // Dense blocks in two batched passes (Q_i^T A, then * Q_j): Q_i is the
  // shared left operand of the whole first pass, so it packs once.
  std::vector<int> djs{i};
  const auto& dcols = structure_.dense_cols(level, i);
  djs.insert(djs.end(), dcols.begin(), dcols.end());
  std::vector<Matrix> tmps, outs;
  std::vector<GemmTask> pass1, pass2;
  for (const int j : djs) {
    const Matrix& cij = w.cur[level].at({i, j});
    tmps.emplace_back(ld.q[i].cols(), cij.cols());
    pass1.push_back(
        {1.0, ld.q[i], Trans::Yes, cij, Trans::No, 0.0, tmps.back()});
  }
  gemm_batch(pass1);
  for (std::size_t x = 0; x < djs.size(); ++x) {
    outs.emplace_back(tmps[x].rows(), ld.q[djs[x]].cols());
    pass2.push_back(
        {1.0, tmps[x], Trans::No, ld.q[djs[x]], Trans::No, 0.0, outs.back()});
  }
  gemm_batch(pass2);
  for (std::size_t x = 0; x < djs.size(); ++x)
    track_store(ld.dense.at({i, djs[x]}), std::move(outs[x]));

  // Admissible skeletons: su / sv / s passes, each batched (su shares the
  // Q_i column block, sv varies, s is rank x rank).
  const auto& ajs = structure_.admissible_cols(level, i);
  std::vector<int> bjs;
  for (const int j : ajs) {
    const Matrix& u = w.ucur[level].at({i, j});
    if (!u.empty() && ld.rank[i] > 0 && ld.rank[j] > 0) bjs.push_back(j);
  }
  std::vector<Matrix> sus, svs, ss;
  std::vector<GemmTask> tsu, tsv, ts;
  for (const int j : bjs) {
    const Matrix& u = w.ucur[level].at({i, j});
    sus.emplace_back(ld.rank[i], u.cols());
    tsu.push_back({1.0, ld.q[i].block(0, 0, ld.size[i], ld.rank[i]),
                   Trans::Yes, u, Trans::No, 0.0, sus.back()});
  }
  gemm_batch(tsu);
  for (std::size_t x = 0; x < bjs.size(); ++x) {
    const int j = bjs[x];
    const Matrix& v = w.vcur[level].at({i, j});
    svs.emplace_back(ld.rank[j], v.cols());
    tsv.push_back({1.0, ld.q[j].block(0, 0, ld.size[j], ld.rank[j]),
                   Trans::Yes, v, Trans::No, 0.0, svs.back()});
  }
  gemm_batch(tsv);
  for (std::size_t x = 0; x < bjs.size(); ++x) {
    ss.emplace_back(sus[x].rows(), svs[x].rows());
    ts.push_back(
        {1.0, sus[x], Trans::No, svs[x], Trans::Yes, 0.0, ss.back()});
  }
  gemm_batch(ts);
  std::size_t bx = 0;
  for (const int j : ajs) {
    const bool batched = bx < bjs.size() && bjs[bx] == j;
    Matrix s = batched ? std::move(ss[bx++])
                       : BlockPool::global().make_as<T>(ld.rank[i], ld.rank[j]);
    track_store(skel_[level].at({i, j}), std::move(s));
  }
  if (opt_.release_blocks) {
    track_drop(w.cur[level].at({i, i}));
    for (const int j : structure_.dense_cols(level, i))
      track_drop(w.cur[level].at({i, j}));
    for (const int j : structure_.admissible_cols(level, i)) {
      track_drop(w.ucur[level].at({i, j}));
      track_drop(w.vcur[level].at({i, j}));
    }
  }
  record_task(level, "project", i, t.seconds());
}

template <class T>
void UlvEngine<T>::eliminate_block(int level, int k) {
  Level& ld = levels_[level];
  const int n = ld.size[k], r = ld.rank[k], nr = n - r;
  ld.rr_piv[k].clear();
  if (nr == 0) return;
  Matrix& dkk = ld.dense.at({k, k});
  MatrixView rr = dkk.block(r, r, nr, nr);
  getrf(rr, ld.rr_piv[k]);
  if (r > 0) {
    MatrixView rs = dkk.block(r, 0, nr, r);
    laswp(rs, ld.rr_piv[k], true);
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, rr, rs);
    MatrixView sr = dkk.block(0, r, r, nr);
    trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr, sr);
  }
  // Row strips share the pivot triangle: batch them so it packs once.
  std::vector<TrsmTask> tasks;
  for (const int j : structure_.dense_cols(level, k)) {
    MatrixView strip = ld.dense.at({k, j}).block(r, 0, nr, ld.size[j]);
    laswp(strip, ld.rr_piv[k], true);
    tasks.push_back(
        {Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, rr, strip});
  }
  trsm_batch(tasks);
}

template <class T>
void UlvEngine<T>::body_eliminate(int level, int k) {
  const Timer t;
  eliminate_block(level, k);
  record_task(level, "eliminate", k, t.seconds());
}

template <class T>
void UlvEngine<T>::body_col_solve(int level, int k) {
  // Column strips of pivot k. Separated from body_eliminate so that no two
  // elimination tasks touch one block: this is a same-block exclusion with
  // the row tasks, NOT a trailing-sub-matrix data dependency — eliminate
  // tasks themselves stay pairwise independent (the paper's property).
  Level& ld = levels_[level];
  const int n = ld.size[k], r = ld.rank[k], nr = n - r;
  if (nr == 0) return;
  const Timer t;
  ConstMatrixView rr = ld.dense.at({k, k}).block(r, r, nr, nr);
  std::vector<TrsmTask> tasks;
  for (const int i : structure_.dense_rows(level, k)) {
    MatrixView strip = ld.dense.at({i, k}).block(0, r, ld.size[i], nr);
    tasks.push_back(
        {Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr, strip});
  }
  trsm_batch(tasks);
  record_task(level, "col_solve", k, t.seconds());
}

template <class T>
std::vector<int> UlvEngine<T>::schur_k_list(int level, int i, int j) const {
  // k qualifies when both (i,k) and (k,j) are stored dense blocks (the
  // diagonal counts), i.e. k in (dense partners of row i + {i}) intersected
  // with (dense partners of column j + {j}).
  auto with_self = [](const std::vector<int>& v, int self) {
    std::vector<int> out(v);
    out.insert(std::lower_bound(out.begin(), out.end(), self), self);
    return out;
  };
  const std::vector<int> rows = with_self(structure_.dense_cols(level, i), i);
  const std::vector<int> cols = with_self(structure_.dense_rows(level, j), j);
  std::vector<int> ks;
  std::set_intersection(rows.begin(), rows.end(), cols.begin(), cols.end(),
                        std::back_inserter(ks));
  return ks;
}

template <class T>
void UlvEngine<T>::body_schur(int level, int i, int j, bool admissible) {
  // Schur products organized by *target* so accumulation is race-free.
  const Timer t;
  Level& ld = levels_[level];
  const int ri = ld.rank[i], rj = ld.rank[j];
  if (ri == 0 || rj == 0) return;
  MatrixView tgt = admissible ? MatrixView(skel_[level].at({i, j}))
                              : ld.dense.at({i, j}).block(0, 0, ri, rj);
  std::vector<GemmTask> tasks;
  for (const int k : schur_k_list(level, i, j)) {
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) continue;
    ConstMatrixView left = ld.dense.at({i, k}).block(0, rk, ri, nrk);
    ConstMatrixView right = ld.dense.at({k, j}).block(rk, 0, nrk, rj);
    tasks.push_back({-1.0, left, Trans::No, right, Trans::No, 1.0, tgt});
  }
  gemm_batch(tasks);
  record_task(level, "schur", i, t.seconds());
}

template <class T>
void UlvEngine<T>::body_dropped(int level, int k) {
  // Diagnostics: Frobenius mass of everything the method *drops* — the
  // non-SS components of cross-block updates, which the fill-in-augmented
  // bases are supposed to annihilate (the paper's central claim).
  Level& ld = levels_[level];
  const int rk = ld.rank[k], nrk = ld.size[k] - rk;
  if (nrk == 0) return;
  auto rows_of = [&](int i) {
    return ld.dense.at({i, k}).block(0, rk, ld.size[i], nrk);
  };
  auto cols_of = [&](int j) {
    return ld.dense.at({k, j}).block(rk, 0, nrk, ld.size[j]);
  };
  std::vector<int> is = structure_.dense_rows(level, k);
  is.push_back(k);
  std::vector<int> js = structure_.dense_cols(level, k);
  js.push_back(k);
  for (const int i : is) {
    for (const int j : js) {
      if (i == k && j == k) continue;
      const Matrix full = matmul(rows_of(i), cols_of(j));
      double applied2 = 0.0;
      const int ri = ld.rank[i], rj = ld.rank[j];
      const bool stored = structure_.is_admissible_at(level, i, j) ||
                          structure_.is_inadmissible_at(level, i, j);
      if (stored && ri > 0 && rj > 0) {
        const double ss = norm_fro(full.block(0, 0, ri, rj));
        applied2 = ss * ss;
      }
      const double all = norm_fro(full);
      add_dropped(all * all - applied2);
    }
  }
}

template <class T>
void UlvEngine<T>::body_merge(Workspace& w, int level, int pi, int pj) {
  // Eq. 22: merge the four children's skeleton sub-blocks into one parent
  // block of level - 1.
  const Timer t;
  Level& ld = levels_[level];
  const int rows = ld.rank[2 * pi] + ld.rank[2 * pi + 1];
  const int cols = ld.rank[2 * pj] + ld.rank[2 * pj + 1];
  Matrix m = BlockPool::global().make_as<T>(rows, cols);
  int r0 = 0;
  for (int ci = 2 * pi; ci <= 2 * pi + 1; ++ci) {
    int c0 = 0;
    for (int cj = 2 * pj; cj <= 2 * pj + 1; ++cj) {
      const int ri = ld.rank[ci], rj = ld.rank[cj];
      if (ri > 0 && rj > 0) {
        if (structure_.is_admissible_at(level, ci, cj)) {
          copy_into(skel_[level].at({ci, cj}), m.block(r0, c0, ri, rj));
        } else {
          copy_into(ld.dense.at({ci, cj}).block(0, 0, ri, rj),
                    m.block(r0, c0, ri, rj));
        }
      }
      c0 += rj;
    }
    r0 += ld.rank[ci];
  }
  track_store(w.cur[level - 1].at({pi, pj}), std::move(m));
  record_task(level - 1, "merge", pi, t.seconds());
}

template <class T>
void UlvEngine<T>::body_top(Workspace& w) {
  const Timer t;
  track_take(top_lu_, w.cur[0].at({0, 0}));
  getrf(top_lu_, top_piv_);
  record_task(0, "top", 0, t.seconds());
}

// ---------------------------------------------------------------------------
// Executors.
// ---------------------------------------------------------------------------

template <class T>
void UlvEngine<T>::factorize(const H2Matrix& a) {
  if (depth_ == 0) {
    // Degenerate single-cluster problem: plain dense LU.
    levels_.resize(1);
    skel_.resize(1);
    ry_.resize(1);
    stats_.ranks.resize(1);
    const Timer t;
    track_store(top_lu_, from_f64(a.dense_block(0, 0)));
    getrf(top_lu_, top_piv_);
    record_task(0, "top", 0, t.seconds());
    return;
  }
  if (task_dag_mode()) {
    factorize_dag(a);
  } else {
    factorize_loops(a);
  }
}

template <class T>
void UlvEngine<T>::factorize_loops(const H2Matrix& a) {
  // Resolve the phase-loop pool from the SAME options the TaskDag executor
  // dispatches on — an explicit pool, then n_workers, then (only for the
  // deprecated use_threads alias) the process-wide pool. The historical
  // dispatch keyed on use_threads alone, so `executor = PhaseLoops` with
  // n_workers > 0 or a supplied pool silently ran serial.
  std::unique_ptr<ThreadPool> owned;
  if (opt_.mode == UlvMode::Parallel) {
    ThreadPool* pool = opt_.pool;
    if (pool == nullptr && opt_.n_workers > 0) {
      owned = std::make_unique<ThreadPool>(opt_.n_workers, opt_.queue_policy());
      pool = owned.get();
    } else if (pool == nullptr && opt_.use_threads) {
      pool = &ThreadPool::global();
    }
    // parallel_for blocks its caller; draining into our own pool could
    // deadlock it (same guard as factorize_dag).
    if (pool != nullptr && pool != ThreadPool::current()) loops_pool_ = pool;
  }

  blockmem::reset_peak();  // measurement window, like TaskGraph::execute
  Workspace w;
  w.a = &a;
  prepare(w);
  for (int l = 1; l <= depth_; ++l)
    for_indices(tree_->n_clusters(l), [&](int i) { body_ry(w, l, i); });
  for_indices(tree_->n_clusters(depth_),
              [&](int i) { body_assemble(w, depth_, i); });
  for (int level = depth_; level >= 1; --level) process_level(w, level);
  body_top(w);
  loops_pool_ = nullptr;
  stats_.peak_block_bytes = blockmem::peak();
  stats_.final_block_bytes = blockmem::live();
}

template <class T>
void UlvEngine<T>::process_level(Workspace& w, int level) {
  const int nb = tree_->n_clusters(level);
  const Timer setup_timer;

  // ---- Phase P0: admissible blocks of this level in current coordinates.
  for_indices(nb, [&](int i) { body_project_lr(w, level, i); });

  // ---- Phase B1 (Fig. 7): fill-in column spaces per pivot row.
  if (opt_.fillin_augmentation)
    for_indices(nb, [&](int k) { body_fill(w, level, k); });

  // ---- Phase B2 (Eqs. 27-28): shared basis per cluster.
  for_indices(nb, [&](int i) { body_basis(w, level, i); });

  // ry_[level]'s readers are the basis phases of levels >= level (deeper
  // levels ran first in the depth -> 1 sweep, this one just finished) and
  // fill_p[level]'s are this level's bases alone — both are dead here, the
  // bulk-synchronous mirror of the DAG's release tasks.
  if (opt_.release_blocks) {
    for (int i = 0; i < nb; ++i) release_ry_row(level, i);
    for (Matrix& p : w.fill_p[level]) track_drop(p);
  }

  // ---- Phase P1 (Eqs. 8-9): project everything onto the bases.
  for_indices(nb, [&](int i) { body_project_row(w, level, i); });
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    stats_.setup_seconds += setup_timer.seconds();
  }

  // ---- Phase E: eliminate the redundant variables.
  if (opt_.mode == UlvMode::Parallel) {
    eliminate_parallel(level);
  } else {
    eliminate_sequential(level);
  }

  // ---- Phase M (Eq. 22): merge skeleton sub-blocks into the parent level.
  const auto& parent_pairs = structure_.inadmissible_pairs(level - 1);
  for_indices(static_cast<int>(parent_pairs.size()), [&](int p) {
    body_merge(w, level, parent_pairs[p].first, parent_pairs[p].second);
  });

  // The merges were the skeletons' last consumers; the level is complete.
  if (opt_.release_blocks) release_level_remnants(w, level);
}

template <class T>
void UlvEngine<T>::eliminate_parallel(int level) {
  const int nb = levels_[level].nb;
  // E1: pivots, diagonal strips and row strips — one independent task per
  // block row (the paper's "no trailing sub-matrix dependencies").
  for_indices(nb, [&](int k) { body_eliminate(level, k); });
  // E2: column strips (separated from E1 so no two tasks touch one block).
  for_indices(nb, [&](int k) { body_col_solve(level, k); });
  // E3: Schur products by target.
  const auto& inadm = structure_.inadmissible_pairs(level);
  const auto& adm = structure_.admissible_pairs(level);
  for_indices(static_cast<int>(inadm.size()), [&](int p) {
    body_schur(level, inadm[p].first, inadm[p].second, false);
  });
  for_indices(static_cast<int>(adm.size()), [&](int p) {
    body_schur(level, adm[p].first, adm[p].second, true);
  });
  if (opt_.measure_dropped)
    for (int k = 0; k < nb; ++k) body_dropped(level, k);
}

template <class T>
void UlvEngine<T>::factorize_dag(const H2Matrix& a) {
  Workspace w;
  w.a = &a;
  prepare(w);

  // Build the DAG: one task per (phase, cluster), edges = the phase bodies'
  // true read/write sets. Within a level: fill -> basis -> project ->
  // eliminate -> col_solve -> schur per block row; NO eliminate -> eliminate
  // edges (the paper's "no trailing sub-matrix dependencies"). Across
  // levels: schur -> merge -> {fill, basis, project} of the parent level, so
  // level L-1 starts while level L still drains.
  TaskGraph g;
  const int d = depth_;
  std::vector<std::vector<TaskId>> t_ry(d + 1), t_fill(d + 1), t_basis(d + 1),
      t_project(d + 1), t_elim(d + 1), t_col(d + 1);
  // Producer of each cur[level] block: leaf assembly or a parent merge.
  std::vector<std::map<Key, TaskId>> t_producer(d + 1), t_schur(d + 1);

  auto dep = [&](TaskId before, TaskId after) {
    if (before >= 0) g.add_dependency(before, after);
  };

  // Per-task output payloads for the distributed model (DagRecord::out_bytes,
  // charged by the alpha-beta CommModel on cross-rank edges). The byte counts
  // depend on the skeleton ranks the numerics choose, so each task captures
  // its formula at FREE time — inside its own closure, right after its body
  // runs: its outputs exist and nothing it measures has been released yet
  // (release tasks depend on it). The pre-release design evaluated the
  // formulas post-hoc over retained state (ry_, fill_p) — exactly the blocks
  // the release tasks now free mid-run.
  const auto add_noted = [&](std::function<void()> body,
                             std::function<double()> bytes, const char* label,
                             int owner, int level) {
    if (!opt_.record_tasks)
      return g.add_task(std::move(body), label, owner, level);
    // The closure needs its own TaskId, which add_task only mints afterwards.
    auto id = std::make_shared<TaskId>(-1);
    const TaskId t = g.add_task(
        [body = std::move(body), bytes = std::move(bytes), &g, id] {
          body();
          g.set_out_bytes(*id, bytes());
        },
        label, owner, level);
    *id = t;
    return t;
  };

  // ry factors have no predecessors; every level's basis phase may consume
  // the ry of any ancestor level, so emit them all up front.
  for (int l = 1; l <= d; ++l) {
    const int nb = tree_->n_clusters(l);
    t_ry[l].resize(nb);
    for (int i = 0; i < nb; ++i) {
      t_ry[l][i] = add_noted(
          [this, &w, l, i] { body_ry(w, l, i); },
          [this, l, i] {
            double b = 0.0;  // rank x rank R factor per admissible partner
            for (const int j : structure_.admissible_cols(l, i)) {
              const Matrix& r = ry_[l].at({i, j});
              b += static_cast<double>(r.rows()) * r.cols();
            }
            return static_cast<double>(sizeof(T)) * b;
          },
          "ry", i, l);
    }
  }

  // Leaf assembly: the producers of cur[depth].
  {
    const int nb = tree_->n_clusters(d);
    std::vector<TaskId> t_asm(nb);
    for (int i = 0; i < nb; ++i) {
      t_asm[i] = add_noted(
          [this, &w, i] { body_assemble(w, depth_, i); },
          [this, i] {
            const double pts = tree_->node(depth_, i).size();
            double b = pts * pts;  // the diagonal block
            for (const int j : structure_.dense_cols(depth_, i))
              b += pts * tree_->node(depth_, j).size();
            return static_cast<double>(sizeof(T)) * b;
          },
          "assemble", i, d);
    }
    for (const auto& [i, j] : structure_.inadmissible_pairs(d))
      t_producer[d][{i, j}] = t_asm[i];
  }

  for (int level = d; level >= 1; --level) {
    const int nb = tree_->n_clusters(level);
    const bool leaf = (level == d);
    // basis(l+1, c) transitively orders all of c's subtree bases, so one
    // child edge is enough wherever a task needs a whole subtree projected.
    auto child_basis = [&](int c) { return leaf ? -1 : t_basis[level + 1][c]; };

    // P0: needs the subtree bases of row i and of every admissible partner.
    std::vector<TaskId> t_plr(nb);
    for (int i = 0; i < nb; ++i) {
      const TaskId t = add_noted(
          [this, &w, level, i] { body_project_lr(w, level, i); },
          // Measured off the produced factors themselves ((size_i + size_j) x
          // rank each): level sizes/ranks are not set yet when this task
          // finishes, and the ry blocks it used to read get released.
          [this, &w, level, i] {
            double b = 0.0;  // U and V factors in current coordinates
            for (const int j : structure_.admissible_cols(level, i)) {
              const Matrix& u = w.ucur[level].at({i, j});
              const Matrix& v = w.vcur[level].at({i, j});
              b += static_cast<double>(u.rows()) * u.cols() +
                   static_cast<double>(v.rows()) * v.cols();
            }
            return static_cast<double>(sizeof(T)) * b;
          },
          "project_lr", i, level);
      dep(child_basis(2 * i), t);
      dep(child_basis(2 * i + 1), t);
      for (const int j : structure_.admissible_cols(level, i)) {
        dep(child_basis(2 * j), t);
        dep(child_basis(2 * j + 1), t);
      }
      t_plr[i] = t;
    }

    // B1: needs row k's merged/assembled blocks.
    t_fill[level].assign(nb, -1);
    if (opt_.fillin_augmentation) {
      for (int k = 0; k < nb; ++k) {
        if (structure_.dense_cols(level, k).empty()) continue;
        const TaskId t = add_noted(
            [this, &w, level, k] { body_fill(w, level, k); },
            [&w, level, k] {
              const Matrix& p = w.fill_p[level][k];
              return static_cast<double>(sizeof(T)) * static_cast<double>(p.rows()) * p.cols();
            },
            "fill", k, level);
        dep(t_producer[level].at({k, k}), t);
        for (const int j : structure_.dense_cols(level, k))
          dep(t_producer[level].at({k, j}), t);
        t_fill[level][k] = t;
      }
    }

    // B2: needs row i's fill spaces + low-rank factors + subtree bases +
    // the ry of this row and of every ancestor's row.
    t_basis[level].resize(nb);
    for (int i = 0; i < nb; ++i) {
      const TaskId t = add_noted(
          [this, &w, level, i] { body_basis(w, level, i); },
          [this, level, i] {
            const double s = levels_[level].size[i];
            return static_cast<double>(sizeof(T)) * s * s;  // the square orthonormal basis Q
          },
          "basis", i, level);
      dep(t_plr[i], t);
      dep(child_basis(2 * i), t);
      dep(child_basis(2 * i + 1), t);
      dep(t_ry[level][i], t);
      for (int lambda = 1; lambda < level; ++lambda)
        dep(t_ry[lambda][i >> (level - lambda)], t);
      if (opt_.fillin_augmentation) {
        for (const int k : structure_.dense_cols(level, i)) {
          dep(t_fill[level][k], t);
          dep(t_producer[level].at({i, k}), t);
        }
      }
      t_basis[level][i] = t;
    }

    // P1: needs this row's basis and every partner's basis, plus the row's
    // blocks (which it frees — hence the explicit fill(k) edge: the fill of
    // pivot k reads row k before its projection recycles it).
    t_project[level].resize(nb);
    for (int i = 0; i < nb; ++i) {
      const TaskId t = add_noted(
          [this, &w, level, i] { body_project_row(w, level, i); },
          [this, level, i] {
            const Level& ld = levels_[level];
            double b = static_cast<double>(ld.size[i]) * ld.size[i];
            for (const int j : structure_.dense_cols(level, i))
              b += static_cast<double>(ld.size[i]) * ld.size[j];
            for (const int j : structure_.admissible_cols(level, i))
              b += static_cast<double>(ld.rank[i]) * ld.rank[j];
            return static_cast<double>(sizeof(T)) * b;
          },
          "project", i, level);
      dep(t_basis[level][i], t);
      dep(t_fill[level][i], t);
      dep(t_producer[level].at({i, i}), t);
      for (const int j : structure_.dense_cols(level, i)) {
        dep(t_basis[level][j], t);
        dep(t_producer[level].at({i, j}), t);
      }
      for (const int j : structure_.admissible_cols(level, i))
        dep(t_basis[level][j], t);
      t_project[level][i] = t;
    }

    // E1: one independent task per block row — no edges among them.
    t_elim[level].resize(nb);
    for (int k = 0; k < nb; ++k) {
      const TaskId t = add_noted(
          [this, level, k] { body_eliminate(level, k); },
          [this, level, k] {
            const Level& ld = levels_[level];
            const double nr = ld.size[k] - ld.rank[k];
            // The factored diagonal (RR + its RS/SR strips) plus the solved
            // redundant row strips of every dense neighbor.
            double b = nr * ld.size[k] + static_cast<double>(ld.rank[k]) * nr;
            for (const int j : structure_.dense_cols(level, k))
              b += nr * ld.size[j];
            return static_cast<double>(sizeof(T)) * b;
          },
          "eliminate", k, level);
      dep(t_project[level][k], t);
      t_elim[level][k] = t;
    }

    // E2: column strips share blocks with the row tasks of their dense
    // neighbors (same-block exclusion, not a data chain).
    t_col[level].resize(nb);
    for (int k = 0; k < nb; ++k) {
      const TaskId t = add_noted(
          [this, level, k] { body_col_solve(level, k); },
          [this, level, k] {
            const Level& ld = levels_[level];
            const double nr = ld.size[k] - ld.rank[k];
            double b = 0.0;  // the solved redundant column strips
            for (const int i : structure_.dense_rows(level, k))
              b += static_cast<double>(ld.size[i]) * nr;
            return static_cast<double>(sizeof(T)) * b;
          },
          "col_solve", k, level);
      dep(t_elim[level][k], t);
      for (const int i : structure_.dense_rows(level, k)) dep(t_elim[level][i], t);
      t_col[level][k] = t;
    }

    // E3: per stored target; reads the solved strips of every qualifying
    // pivot k, all final once col_solve(k) ran.
    auto emit_schur = [&](int i, int j, bool admissible) {
      const TaskId t = add_noted(
          [this, level, i, j, admissible] { body_schur(level, i, j, admissible); },
          [this, level, i, j] {
            const Level& ld = levels_[level];
            return static_cast<double>(sizeof(T)) * static_cast<double>(ld.rank[i]) * ld.rank[j];
          },
          "schur", i, level);
      dep(t_project[level][i], t);
      for (const int k : schur_k_list(level, i, j)) dep(t_col[level][k], t);
      t_schur[level][{i, j}] = t;
    };
    for (const auto& [i, j] : structure_.inadmissible_pairs(level))
      emit_schur(i, j, false);
    for (const auto& [i, j] : structure_.admissible_pairs(level))
      emit_schur(i, j, true);

    if (opt_.measure_dropped) {
      for (int k = 0; k < nb; ++k) {
        const TaskId t = g.add_task(
            [this, level, k] { body_dropped(level, k); }, "dropped", k, level);
        // Reads pivot k's solved strips FULL-width: col_solve(j) of every
        // dense neighbor still writes the right columns of (k, j).
        dep(t_col[level][k], t);
        for (const int j : structure_.dense_cols(level, k))
          dep(t_col[level][j], t);
      }
    }

    // M: the four child targets feed one parent block; the merge is the
    // producer the next level's fill/basis/project wait on — and the only
    // cross-level synchronization there is.
    for (const auto& [pi, pj] : structure_.inadmissible_pairs(level - 1)) {
      const TaskId t = add_noted(
          [this, &w, level, pi, pj] { body_merge(w, level, pi, pj); },
          [this, level, pi, pj] {
            const Level& ld = levels_[level];
            // The merged parent block: what actually crosses subtree
            // boundaries on the way up the process tree.
            return static_cast<double>(sizeof(T)) *
                   static_cast<double>(ld.rank[2 * pi] + ld.rank[2 * pi + 1]) *
                   (ld.rank[2 * pj] + ld.rank[2 * pj + 1]);
          },
          "merge", pi, level - 1);
      for (int ci = 2 * pi; ci <= 2 * pi + 1; ++ci)
        for (int cj = 2 * pj; cj <= 2 * pj + 1; ++cj)
          dep(t_schur[level].at({ci, cj}), t);
      t_producer[level - 1][{pi, pj}] = t;
    }
  }

  const TaskId t_top =
      g.add_task([this, &w] { body_top(w); }, "top", 0, 0);
  dep(t_producer[0].at({0, 0}), t_top);

  // Reference-counted block release: every edge added above is a read of its
  // producer's output, so a block's consumer count IS its producer's
  // successor count at this point. A release task depending on the producer
  // plus a snapshot of those successors therefore fires the moment the last
  // consumer retires — the TaskGraph's dependency counter is the block's
  // reference count. This is what bounds peak memory at O(active levels):
  // without it every ry factor, fill space, and skeleton block of the whole
  // tree stays live until the factorization ends (the release_blocks=false
  // ablation, which bench_fig9 baselines against).
  std::vector<TaskId> releases;
  if (opt_.release_blocks) {
    // Per-level release tasks whose drops go through refs into pre-keyed
    // containers; the level-complete remnant task below clears the
    // containers themselves, so it must run after these.
    std::vector<std::vector<TaskId>> level_releases(d + 1);
    const auto add_release = [&](std::function<void()> fn, int owner, int level,
                                 TaskId producer) {
      const std::vector<TaskId> consumers = g.successors()[producer];
      const TaskId t = g.add_task(std::move(fn), "release", owner, level);
      g.add_dependency(producer, t);
      for (const TaskId c : consumers) g.add_dependency(c, t);
      releases.push_back(t);
      level_releases[level].push_back(t);
    };
    for (int l = 1; l <= d; ++l) {
      const int nb = tree_->n_clusters(l);
      // ry factors: last readers are the basis tasks of this level and of
      // every descendant level (ancestor gathers) — all in the snapshot.
      for (int i = 0; i < nb; ++i)
        add_release([this, l, i] { release_ry_row(l, i); }, i, l, t_ry[l][i]);
      // Fill spaces: read by the basis tasks of their dense neighbors and
      // anti-ordered against project(k).
      for (int k = 0; k < nb; ++k)
        if (t_fill[l][k] >= 0)
          add_release([this, &w, l, k] { track_drop(w.fill_p[l][k]); }, k, l,
                      t_fill[l][k]);
      // Skeleton (SS) blocks of admissible pairs: last writer is the schur
      // update, last reader the parent merge. (Inadmissible SS parts live in
      // the dense blocks, which the solve needs — never released.)
      for (const auto& [i, j] : structure_.admissible_pairs(l))
        add_release([this, l, i, j] { release_skel_block(l, i, j); }, i, l,
                    t_schur[l].at({i, j}));
    }
    // Level-complete cleanup: once every project of level l (the per-block
    // cur/ucur/vcur frees), every per-block release of level l (the map
    // values), and — transitively through the skel releases — every merge
    // into level l-1 has retired, the level's containers are exclusively
    // ours to clear.
    for (int l = 1; l <= d; ++l) {
      const TaskId t = g.add_task(
          [this, &w, l] { release_level_remnants(w, l); }, "release_level", 0, l);
      for (const TaskId p : t_project[l]) g.add_dependency(p, t);
      for (const TaskId r : level_releases[l]) g.add_dependency(r, t);
      for (const auto& [key, mt] : t_producer[l - 1]) g.add_dependency(mt, t);
      releases.push_back(t);
    }
  }

  // Bottom-level priorities: the same ranking the scheduling simulator
  // list-schedules by, now driving the real executor.
  if (opt_.priority == UlvPriority::CriticalPath) {
    g.set_critical_path_priorities();
    // Releases preempt compute the moment they fire: a ready release is
    // microseconds of pointer work that returns megabytes. Left at their
    // structural rank (sinks: bottom level 1) they would queue behind a
    // whole level's compute and hold blocks exactly as long as the
    // no-release ablation does.
    if (!releases.empty()) {
      const double top_rank =
          1.0 + *std::max_element(g.priorities().begin(), g.priorities().end());
      for (const TaskId t : releases) g.set_priority(t, top_rank);
    }
  }

  // Execute on the configured pool: the caller's, a private one of
  // n_workers, or the process-wide pool — never one the graph spawns
  // itself. An explicit pool brings its own queue policy; otherwise the
  // pool must match opt_.schedule, so a Fifo ablation never silently runs
  // on the work-stealing global pool (or vice versa). Refuse a pool this
  // thread is already a worker of (e.g. a factorization submitted onto the
  // global pool): execute() blocks its caller, so feeding the DAG to our
  // own pool could deadlock it.
  const ThreadPool::QueuePolicy want = opt_.queue_policy();
  ThreadPool* pool = opt_.pool;
  std::unique_ptr<ThreadPool> owned;
  // global() is always WorkSteal, so test `want` directly rather than
  // global().policy(): a Fifo ablation must not lazily instantiate (and
  // keep, for the process lifetime) a hardware-wide pool it will never use.
  if (pool == nullptr && opt_.n_workers <= 0 &&
      want == ThreadPool::QueuePolicy::WorkSteal)
    pool = &ThreadPool::global();
  if (pool == nullptr || pool == ThreadPool::current()) {
    // The deadlock fallback mirrors the refused pool: same size, same
    // policy (an explicit pool's policy wins even here — a Fifo ablation
    // must not silently turn into a work-stealing run).
    const int fallback = pool != nullptr      ? pool->size()
                         : opt_.n_workers > 0 ? opt_.n_workers
                                              : ThreadPool::env_threads();
    owned = std::make_unique<ThreadPool>(
        std::max(1, fallback), pool != nullptr ? pool->policy() : want);
    pool = owned.get();
  }
  ExecStats ex = g.execute(*pool);

  {
    // Setup time = wall clock during which basis-construction work was in
    // flight: the interval union of the setup-phase task spans. Same phase
    // set as the loops executor's per-level setup windows (P0..P1, ry and
    // assemble excluded there too); on one worker the union degenerates to
    // the same phase-duration sum, and on any worker count it stays within
    // the execution wall time, so factor_seconds >= setup_seconds holds.
    std::vector<std::pair<double, double>> spans;
    for (const auto& r : ex.records)
      if (r.label == "project_lr" || r.label == "fill" || r.label == "basis" ||
          r.label == "project")
        spans.emplace_back(r.t_start, r.t_end);
    std::sort(spans.begin(), spans.end());
    double setup = 0.0, open_until = -1.0;
    for (const auto& [t0, t1] : spans) {
      setup += std::max(0.0, t1 - std::max(t0, open_until));
      open_until = std::max(open_until, t1);
    }
    std::lock_guard<std::mutex> lk(stats_mutex_);
    stats_.setup_seconds += setup;
  }
  stats_.peak_block_bytes = ex.peak_block_bytes;
  stats_.final_block_bytes = ex.live_block_bytes;
  if (opt_.record_tasks) {
    stats_.dag = g.record();
    stats_.exec = std::move(ex);
  }
}

template <class T>
void UlvEngine<T>::eliminate_sequential(int level) {
  Level& ld = levels_[level];
  const int nb = ld.nb;
  // Right-looking block elimination with trailing-sub-matrix updates (the
  // Sec. II.D flow). Fill-ins into admissible targets are recompressed by
  // projection onto the shared bases; their out-of-basis residual is dropped
  // (and measured when requested) — exactly the residual the paper's
  // pre-computed-fill-in bases make negligible.
  for (int k = 0; k < nb; ++k) {
    const Timer t;
    eliminate_block(level, k);
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) {
      record_task(level, "eliminate", k, t.seconds());
      continue;
    }
    ConstMatrixView rr = ld.dense.at({k, k}).block(rk, rk, nrk, nrk);
    for (const int i : structure_.dense_rows(level, k)) {
      MatrixView strip = ld.dense.at({i, k}).block(0, rk, ld.size[i], nrk);
      trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr, strip);
    }

    std::vector<int> is = structure_.dense_rows(level, k);
    is.push_back(k);
    std::vector<int> js = structure_.dense_cols(level, k);
    js.push_back(k);
    for (const int i : is) {
      for (const int j : js) {
        // (k,k) itself gets the classic SS downdate (Eq. 14) through the
        // same path: rsel = csel = rank[k].
        // Rows of i still active: all of them while i awaits elimination,
        // only the skeleton rows afterwards (and for i == k).
        const int rsel = (i > k) ? ld.size[i] : ld.rank[i];
        const int csel = (j > k) ? ld.size[j] : ld.rank[j];
        if (rsel == 0 || csel == 0) continue;
        ConstMatrixView left = ld.dense.at({i, k}).block(0, rk, rsel, nrk);
        ConstMatrixView right = ld.dense.at({k, j}).block(rk, 0, nrk, csel);
        if (structure_.is_inadmissible_at(level, i, j)) {
          gemm(-1.0, left, Trans::No, right, Trans::No, 1.0,
               ld.dense.at({i, j}).block(0, 0, rsel, csel));
        } else if (structure_.is_admissible_at(level, i, j)) {
          const int ri = ld.rank[i], rj = ld.rank[j];
          if (ri > 0 && rj > 0) {
            gemm(-1.0, left.block(0, 0, ri, nrk), Trans::No,
                 right.block(0, 0, nrk, rj), Trans::No, 1.0,
                 skel_[level].at({i, j}));
          }
          if (opt_.measure_dropped) {
            const Matrix full = matmul(left, right);
            const double all = norm_fro(full);
            const double ss =
                (ri > 0 && rj > 0) ? norm_fro(full.block(0, 0, ri, rj)) : 0.0;
            add_dropped(all * all - ss * ss);
          }
        } else if (opt_.measure_dropped) {
          const Matrix full = matmul(left, right);
          const double all = norm_fro(full);
          add_dropped(all * all);
        }
      }
    }
    record_task(level, "eliminate", k, t.seconds());
  }
}

template <class T>
double UlvEngine<T>::logabsdet() const {
  // Reads outside the solve sweep pin explicitly: every diagonal block plus
  // the top factor, faulted in as needed and released when done.
  std::vector<SpillStore::SlotId> pinned;
  if (store_ != nullptr) {
    for (int level = 1; level <= depth_; ++level)
      for (int k = 0; k < levels_[level].nb; ++k) {
        const auto it = dslot_[level].find({k, k});
        if (it != dslot_[level].end()) pinned.push_back(it->second.first);
      }
    if (topslot_ != SpillStore::kNoSlot) pinned.push_back(topslot_);
    store_->pin(pinned);
  }
  double acc = 0.0;
  for (int level = depth_; level >= 1; --level) {
    const Level& ld = levels_[level];
    for (int k = 0; k < ld.nb; ++k) {
      const int r = ld.rank[k], n = ld.size[k];
      if (n == r) continue;
      const Matrix& dkk = ld.dense.at({k, k});
      for (int d = r; d < n; ++d) acc += std::log(std::fabs(dkk(d, d)));
    }
  }
  for (int d = 0; d < top_lu_.rows(); ++d)
    acc += std::log(std::fabs(top_lu_(d, d)));
  if (store_ != nullptr) store_->unpin(pinned);
  return acc;
}

template class UlvEngine<double>;
template class UlvEngine<float>;

// ---------------------------------------------------------------------------
// UlvFactorization: the precision-dispatching facade.
// ---------------------------------------------------------------------------

UlvFactorization::UlvFactorization(const H2Matrix& a, const UlvOptions& opt) {
  if (opt.precision == Precision::F32) {
    f_ = std::make_unique<UlvEngine<float>>(a, opt);
  } else {
    d_ = std::make_unique<UlvEngine<double>>(a, opt);
  }
}

UlvFactorization::~UlvFactorization() = default;

void UlvFactorization::solve(MatrixView b) const {
  if (f_ != nullptr) {
    // Round the rhs to fp32 once, sweep in fp32, widen the result back.
    // One backward-stable reduced-precision solve: callers wanting fp64
    // residuals refine against the fp64 operator (core/refine).
    MatrixF bf = to_f32(b);
    f_->solve(bf);
    convert_into(bf, b);
    return;
  }
  d_->solve(b);
}

double UlvFactorization::logabsdet() const {
  return f_ != nullptr ? f_->logabsdet() : d_->logabsdet();
}

const UlvStats& UlvFactorization::stats() const {
  return f_ != nullptr ? f_->stats() : d_->stats();
}

int UlvFactorization::depth() const {
  return f_ != nullptr ? f_->depth() : d_->depth();
}

int UlvFactorization::rank(int level, int lid) const {
  return f_ != nullptr ? f_->rank(level, lid) : d_->rank(level, lid);
}

ExecStats UlvFactorization::last_solve_stats() const {
  return f_ != nullptr ? f_->last_solve_stats() : d_->last_solve_stats();
}

std::uint64_t UlvFactorization::solve_stats_generation() const {
  return f_ != nullptr ? f_->solve_stats_generation()
                       : d_->solve_stats_generation();
}

const DagRecord& UlvFactorization::solve_dag() const {
  return f_ != nullptr ? f_->solve_dag() : d_->solve_dag();
}

SpillStats UlvFactorization::spill_stats() const {
  return f_ != nullptr ? f_->spill_stats() : d_->spill_stats();
}

bool UlvFactorization::demote_to_disk(const std::string& dir) {
  return f_ != nullptr ? f_->demote_to_disk(dir) : d_->demote_to_disk(dir);
}

void UlvFactorization::promote() {
  if (f_ != nullptr) {
    f_->promote();
  } else {
    d_->promote();
  }
}

}  // namespace h2
