#include "core/ulv_factorization.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "runtime/thread_pool.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace h2 {

UlvFactorization::UlvFactorization(const H2Matrix& a, const UlvOptions& opt)
    : tree_(&a.tree()),
      structure_(a.structure()),
      opt_(opt),
      depth_(a.tree().depth()) {
  const Timer total;
  const std::uint64_t flops0 = flops::total();
  factorize(a);
  stats_.factor_flops = flops::total() - flops0;
  stats_.factor_seconds = total.seconds();
  for (const auto& level_ranks : stats_.ranks)
    for (const int r : level_ranks) stats_.max_rank = std::max(stats_.max_rank, r);
}

void UlvFactorization::record_task(int level, const char* kind, int owner,
                                   double seconds) {
  if (!opt_.record_tasks) return;
  std::lock_guard<std::mutex> lk(stats_mutex_);
  stats_.tasks.push_back({level, kind, owner, seconds});
}

void UlvFactorization::add_dropped(double fro2) {
  if (fro2 <= 0.0) return;
  std::lock_guard<std::mutex> lk(stats_mutex_);
  stats_.dropped_mass += fro2;  // accumulated squared; sqrt at the end
}

void UlvFactorization::for_indices(int n,
                                   const std::function<void(int)>& fn) const {
  if (opt_.use_threads && opt_.mode == UlvMode::Parallel) {
    parallel_for(0, n, fn, opt_.pool);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

Matrix UlvFactorization::current_rows(int level, int lid,
                                      ConstMatrixView x_full) const {
  if (level == depth_) return Matrix::from(x_full);
  const int c0 = 2 * lid, c1 = 2 * lid + 1;
  const int pts0 = tree_->node(level + 1, c0).size();
  const int pts1 = tree_->node(level + 1, c1).size();
  assert(x_full.rows() == pts0 + pts1);
  const int w = x_full.cols();
  const Matrix y0 = current_rows(level + 1, c0, x_full.block(0, 0, pts0, w));
  const Matrix y1 = current_rows(level + 1, c1, x_full.block(pts0, 0, pts1, w));
  const Level& child = levels_[level + 1];
  const int r0 = child.rank[c0], r1 = child.rank[c1];
  Matrix out(r0 + r1, w);
  if (r0 > 0)
    gemm(1.0, child.q[c0].block(0, 0, child.size[c0], r0), Trans::Yes, y0,
         Trans::No, 0.0, out.block(0, 0, r0, w));
  if (r1 > 0)
    gemm(1.0, child.q[c1].block(0, 0, child.size[c1], r1), Trans::Yes, y1,
         Trans::No, 0.0, out.block(r0, 0, r1, w));
  return out;
}

void UlvFactorization::factorize(const H2Matrix& a) {
  levels_.resize(depth_ + 1);
  skel_.resize(depth_ + 1);
  ry_.resize(depth_ + 1);
  stats_.ranks.resize(depth_ + 1);

  if (depth_ == 0) {
    // Degenerate single-cluster problem: plain dense LU.
    const Timer t;
    top_lu_ = a.dense_block(0, 0);
    getrf(top_lu_, top_piv_);
    record_task(0, "top", 0, t.seconds());
    return;
  }

  // R factors of the QR of every admissible block's V factor: the magnitude-
  // preserving right factor used when a block's column space enters a basis
  // concatenation (u * ry^T has the same Gram matrix as u * v^T).
  for (int l = 1; l <= depth_; ++l) {
    const auto& pairs = structure_.admissible_pairs(l);
    for (const auto& [i, j] : pairs) ry_[l].emplace(Key{i, j}, Matrix());
    for_indices(static_cast<int>(pairs.size()), [&](int p) {
      const auto& [i, j] = pairs[p];
      const LowRank& lr = a.lowrank_block(l, i, j);
      if (lr.rank() == 0) return;
      Matrix vq = lr.v;
      std::vector<double> tau;
      householder_qr(vq, tau);
      ry_[l][{i, j}] = extract_r(vq);  // rank x rank upper triangle
    });
  }

  std::map<Key, Matrix> cur;
  for (const auto& [i, j] : structure_.inadmissible_pairs(depth_))
    cur.emplace(Key{i, j}, a.dense_block(i, j));

  for (int level = depth_; level >= 1; --level) {
    std::map<Key, Matrix> parent;
    process_level(a, level, cur, parent);
    cur = std::move(parent);
  }

  const Timer t;
  top_lu_ = std::move(cur.at({0, 0}));
  getrf(top_lu_, top_piv_);
  record_task(0, "top", 0, t.seconds());
}

void UlvFactorization::process_level(const H2Matrix& a, int level,
                                     std::map<Key, Matrix>& cur,
                                     std::map<Key, Matrix>& parent) {
  Level& ld = levels_[level];
  const int nb = tree_->n_clusters(level);
  ld.nb = nb;
  ld.size.resize(nb);
  ld.rank.assign(nb, 0);
  ld.q.resize(nb);
  ld.rr_piv.resize(nb);
  for (int c = 0; c < nb; ++c) {
    ld.size[c] = (level == depth_)
                     ? tree_->node(level, c).size()
                     : levels_[level + 1].rank[2 * c] +
                           levels_[level + 1].rank[2 * c + 1];
  }

  const auto& adm = structure_.admissible_pairs(level);
  const auto& inadm = structure_.inadmissible_pairs(level);
  const Timer setup_timer;

  // ---- Phase P0: admissible blocks of this level in current coordinates.
  std::map<Key, Matrix> ucur, vcur;
  for (const auto& [i, j] : adm) {
    ucur.emplace(Key{i, j}, Matrix());
    vcur.emplace(Key{i, j}, Matrix());
  }
  for_indices(static_cast<int>(adm.size()), [&](int p) {
    const auto& [i, j] = adm[p];
    const LowRank& lr = a.lowrank_block(level, i, j);
    if (lr.rank() == 0) return;
    const Timer t;
    ucur[{i, j}] = current_rows(level, i, lr.u);
    vcur[{i, j}] = current_rows(level, j, lr.v);
    record_task(level, "project_lr", i, t.seconds());
  });

  // ---- Phase B1 (Fig. 7): per block row k, the column space that every
  // fill-in F(i,j) = A(i,k) A(k,k)^-1 A(k,j) through pivot k can occupy.
  // We factor the concatenation [A(k,k)^-1 A(k,j)]_j once per k (the paper's
  // "not redundantly computed" note) and compress it to P_k so that
  // A(i,k) * P_k spans exactly the same space as [F(i,j)]_j with the same
  // Gram matrix — equivalent to concatenating the fill-ins themselves.
  std::vector<Matrix> fill_p(nb);
  if (opt_.fillin_augmentation) {
    for_indices(nb, [&](int k) {
      const auto& dcols = structure_.dense_cols(level, k);
      if (dcols.empty()) return;
      const Timer t;
      Matrix lu = cur.at({k, k});
      std::vector<int> piv;
      getrf(lu, piv);
      std::vector<Matrix> tblocks;
      tblocks.reserve(dcols.size());
      for (const int j : dcols) {
        Matrix tj = cur.at({k, j});
        getrs(lu, piv, tj);
        tblocks.push_back(std::move(tj));
      }
      std::vector<ConstMatrixView> views(tblocks.begin(), tblocks.end());
      const Matrix tc = hconcat(views);
      // Keep fill directions somewhat below the basis tolerance.
      const PivotedQr qr = pivoted_qr(tc, opt_.fill_tol_factor * opt_.tol, -1);
      if (qr.rank == 0) return;
      Matrix rt = qr.r.transposed();
      std::vector<double> tau;
      householder_qr(rt, tau);
      const Matrix rtr = extract_r(rt);  // r_T x r_T
      fill_p[k] = matmul(qr.q.block(0, 0, ld.size[k], qr.rank), rtr, Trans::No,
                         Trans::Yes);
      record_task(level, "fill", k, t.seconds());
    });
  }

  // ---- Phase B2 (Eqs. 27-28 + nestedness): shared basis per cluster from
  // [fill-in spaces | this level's low-rank blocks | ancestor-block rows].
  for_indices(nb, [&](int i) {
    const Timer t;
    std::vector<Matrix> parts;
    if (opt_.fillin_augmentation) {
      for (const int k : structure_.dense_cols(level, i))
        if (!fill_p[k].empty()) parts.push_back(matmul(cur.at({i, k}), fill_p[k]));
    }
    for (const int j : structure_.admissible_cols(level, i)) {
      const Matrix& u = ucur.at({i, j});
      if (!u.empty())
        parts.push_back(matmul(u, ry_[level].at({i, j}), Trans::No, Trans::Yes));
    }
    for (int lambda = 1; lambda < level; ++lambda) {
      const int anc = i >> (level - lambda);
      const int row0 = tree_->node(level, i).begin;
      const int anc0 = tree_->node(lambda, anc).begin;
      const int npts = tree_->node(level, i).size();
      for (const int j : structure_.admissible_cols(lambda, anc)) {
        const LowRank& lr = a.lowrank_block(lambda, anc, j);
        if (lr.rank() == 0) continue;
        const Matrix xi = current_rows(
            level, i, lr.u.block(row0 - anc0, 0, npts, lr.rank()));
        parts.push_back(
            matmul(xi, ry_[lambda].at({anc, j}), Trans::No, Trans::Yes));
      }
    }
    if (parts.empty()) {
      ld.q[i] = Matrix::identity(ld.size[i]);
      ld.rank[i] = 0;
    } else {
      std::vector<ConstMatrixView> views(parts.begin(), parts.end());
      const Matrix concat = hconcat(views);
      PivotedQr qr = pivoted_qr(concat, opt_.tol, opt_.max_rank);
      ld.q[i] = std::move(qr.q);
      ld.rank[i] = qr.rank;
    }
    record_task(level, "basis", i, t.seconds());
  });
  stats_.ranks[level] = ld.rank;

  // ---- Phase P1 (Eqs. 8-9): project everything onto the bases.
  for (const auto& [i, j] : inadm) ld.dense.emplace(Key{i, j}, Matrix());
  for (const auto& [i, j] : adm) skel_[level].emplace(Key{i, j}, Matrix());
  for_indices(static_cast<int>(inadm.size()), [&](int p) {
    const auto& [i, j] = inadm[p];
    const Timer t;
    const Matrix tmp = matmul(ld.q[i], cur.at({i, j}), Trans::Yes, Trans::No);
    ld.dense[{i, j}] = matmul(tmp, ld.q[j]);
    record_task(level, "project", i, t.seconds());
  });
  for_indices(static_cast<int>(adm.size()), [&](int p) {
    const auto& [i, j] = adm[p];
    const Timer t;
    Matrix s(ld.rank[i], ld.rank[j]);
    const Matrix& u = ucur.at({i, j});
    if (!u.empty() && ld.rank[i] > 0 && ld.rank[j] > 0) {
      const Matrix su = matmul(ld.q[i].block(0, 0, ld.size[i], ld.rank[i]), u,
                               Trans::Yes, Trans::No);
      const Matrix sv = matmul(ld.q[j].block(0, 0, ld.size[j], ld.rank[j]),
                               vcur.at({i, j}), Trans::Yes, Trans::No);
      s = matmul(su, sv, Trans::No, Trans::Yes);
    }
    skel_[level][{i, j}] = std::move(s);
    record_task(level, "project", i, t.seconds());
  });
  cur.clear();
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    stats_.setup_seconds += setup_timer.seconds();
  }

  // ---- Phase E: eliminate the redundant variables.
  if (opt_.mode == UlvMode::Parallel) {
    eliminate_parallel(level);
  } else {
    eliminate_sequential(level);
  }

  // ---- Phase M (Eq. 22): merge skeleton sub-blocks into the parent level.
  const auto& parent_pairs = structure_.inadmissible_pairs(level - 1);
  for (const auto& [pi, pj] : parent_pairs) parent.emplace(Key{pi, pj}, Matrix());
  for_indices(static_cast<int>(parent_pairs.size()), [&](int p) {
    const auto& [pi, pj] = parent_pairs[p];
    const Timer t;
    const int rows = ld.rank[2 * pi] + ld.rank[2 * pi + 1];
    const int cols = ld.rank[2 * pj] + ld.rank[2 * pj + 1];
    Matrix m(rows, cols);
    int r0 = 0;
    for (int ci = 2 * pi; ci <= 2 * pi + 1; ++ci) {
      int c0 = 0;
      for (int cj = 2 * pj; cj <= 2 * pj + 1; ++cj) {
        const int ri = ld.rank[ci], rj = ld.rank[cj];
        if (ri > 0 && rj > 0) {
          if (structure_.is_admissible_at(level, ci, cj)) {
            copy_into(skel_[level].at({ci, cj}), m.block(r0, c0, ri, rj));
          } else {
            copy_into(ld.dense.at({ci, cj}).block(0, 0, ri, rj),
                      m.block(r0, c0, ri, rj));
          }
        }
        c0 += rj;
      }
      r0 += ld.rank[ci];
    }
    parent[{pi, pj}] = std::move(m);
    record_task(level - 1, "merge", pi, t.seconds());
  });
}

void UlvFactorization::eliminate_block(int level, int k) {
  Level& ld = levels_[level];
  const int n = ld.size[k], r = ld.rank[k], nr = n - r;
  ld.rr_piv[k].clear();
  if (nr == 0) return;
  Matrix& dkk = ld.dense.at({k, k});
  MatrixView rr = dkk.block(r, r, nr, nr);
  getrf(rr, ld.rr_piv[k]);
  if (r > 0) {
    MatrixView rs = dkk.block(r, 0, nr, r);
    laswp(rs, ld.rr_piv[k], true);
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, rr, rs);
    MatrixView sr = dkk.block(0, r, r, nr);
    trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr, sr);
  }
  for (const int j : structure_.dense_cols(level, k)) {
    MatrixView strip = ld.dense.at({k, j}).block(r, 0, nr, ld.size[j]);
    laswp(strip, ld.rr_piv[k], true);
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, rr, strip);
  }
}

std::vector<int> UlvFactorization::schur_k_list(int level, int i, int j) const {
  // k qualifies when both (i,k) and (k,j) are stored dense blocks (the
  // diagonal counts), i.e. k in (dense partners of row i + {i}) intersected
  // with (dense partners of column j + {j}).
  auto with_self = [](const std::vector<int>& v, int self) {
    std::vector<int> out(v);
    out.insert(std::lower_bound(out.begin(), out.end(), self), self);
    return out;
  };
  const std::vector<int> rows = with_self(structure_.dense_cols(level, i), i);
  const std::vector<int> cols = with_self(structure_.dense_rows(level, j), j);
  std::vector<int> ks;
  std::set_intersection(rows.begin(), rows.end(), cols.begin(), cols.end(),
                        std::back_inserter(ks));
  return ks;
}

void UlvFactorization::eliminate_parallel(int level) {
  Level& ld = levels_[level];
  const int nb = ld.nb;

  // E1: pivots, diagonal strips and row strips — one independent task per
  // block row (the paper's "no trailing sub-matrix dependencies").
  for_indices(nb, [&](int k) {
    const Timer t;
    eliminate_block(level, k);
    record_task(level, "eliminate", k, t.seconds());
  });
  // E2: column strips (separated from E1 so no two tasks touch one block).
  for_indices(nb, [&](int k) {
    const int n = ld.size[k], r = ld.rank[k], nr = n - r;
    if (nr == 0) return;
    const Timer t;
    ConstMatrixView rr = ld.dense.at({k, k}).block(r, r, nr, nr);
    for (const int i : structure_.dense_rows(level, k)) {
      MatrixView strip = ld.dense.at({i, k}).block(0, r, ld.size[i], nr);
      trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr, strip);
    }
    record_task(level, "eliminate", k, t.seconds());
  });

  // E3: Schur products, organized by *target* so accumulation is race-free.
  auto apply_target = [&](int i, int j, bool admissible) {
    const Timer t;
    const int ri = ld.rank[i], rj = ld.rank[j];
    if (ri == 0 || rj == 0) return;
    MatrixView tgt = admissible ? MatrixView(skel_[level].at({i, j}))
                                : ld.dense.at({i, j}).block(0, 0, ri, rj);
    for (const int k : schur_k_list(level, i, j)) {
      const int rk = ld.rank[k], nrk = ld.size[k] - rk;
      if (nrk == 0) continue;
      ConstMatrixView left = ld.dense.at({i, k}).block(0, rk, ri, nrk);
      ConstMatrixView right = ld.dense.at({k, j}).block(rk, 0, nrk, rj);
      gemm(-1.0, left, Trans::No, right, Trans::No, 1.0, tgt);
    }
    record_task(level, "schur", i, t.seconds());
  };
  const auto& inadm = structure_.inadmissible_pairs(level);
  const auto& adm = structure_.admissible_pairs(level);
  for_indices(static_cast<int>(inadm.size()), [&](int p) {
    apply_target(inadm[p].first, inadm[p].second, false);
  });
  for_indices(static_cast<int>(adm.size()), [&](int p) {
    apply_target(adm[p].first, adm[p].second, true);
  });

  // Diagnostics: Frobenius mass of everything the method *drops* — the
  // non-SS components of cross-block updates, which the fill-in-augmented
  // bases are supposed to annihilate (the paper's central claim).
  if (opt_.measure_dropped) {
    for (int k = 0; k < nb; ++k) {
      const int rk = ld.rank[k], nrk = ld.size[k] - rk;
      if (nrk == 0) continue;
      auto rows_of = [&](int i) {
        return ld.dense.at({i, k}).block(0, rk, ld.size[i], nrk);
      };
      auto cols_of = [&](int j) {
        return ld.dense.at({k, j}).block(rk, 0, nrk, ld.size[j]);
      };
      std::vector<int> is = structure_.dense_rows(level, k);
      is.push_back(k);
      std::vector<int> js = structure_.dense_cols(level, k);
      js.push_back(k);
      for (const int i : is) {
        for (const int j : js) {
          if (i == k && j == k) continue;
          const Matrix full = matmul(rows_of(i), cols_of(j));
          double applied2 = 0.0;
          const int ri = ld.rank[i], rj = ld.rank[j];
          const bool stored = structure_.is_admissible_at(level, i, j) ||
                              structure_.is_inadmissible_at(level, i, j);
          if (stored && ri > 0 && rj > 0) {
            const double ss = norm_fro(full.block(0, 0, ri, rj));
            applied2 = ss * ss;
          }
          const double all = norm_fro(full);
          add_dropped(all * all - applied2);
        }
      }
    }
  }
}

void UlvFactorization::eliminate_sequential(int level) {
  Level& ld = levels_[level];
  const int nb = ld.nb;
  // Right-looking block elimination with trailing-sub-matrix updates (the
  // Sec. II.D flow). Fill-ins into admissible targets are recompressed by
  // projection onto the shared bases; their out-of-basis residual is dropped
  // (and measured when requested) — exactly the residual the paper's
  // pre-computed-fill-in bases make negligible.
  for (int k = 0; k < nb; ++k) {
    const Timer t;
    eliminate_block(level, k);
    const int rk = ld.rank[k], nrk = ld.size[k] - rk;
    if (nrk == 0) {
      record_task(level, "eliminate", k, t.seconds());
      continue;
    }
    ConstMatrixView rr = ld.dense.at({k, k}).block(rk, rk, nrk, nrk);
    for (const int i : structure_.dense_rows(level, k)) {
      MatrixView strip = ld.dense.at({i, k}).block(0, rk, ld.size[i], nrk);
      trsm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rr, strip);
    }

    std::vector<int> is = structure_.dense_rows(level, k);
    is.push_back(k);
    std::vector<int> js = structure_.dense_cols(level, k);
    js.push_back(k);
    for (const int i : is) {
      for (const int j : js) {
        // (k,k) itself gets the classic SS downdate (Eq. 14) through the
        // same path: rsel = csel = rank[k].
        // Rows of i still active: all of them while i awaits elimination,
        // only the skeleton rows afterwards (and for i == k).
        const int rsel = (i > k) ? ld.size[i] : ld.rank[i];
        const int csel = (j > k) ? ld.size[j] : ld.rank[j];
        if (rsel == 0 || csel == 0) continue;
        ConstMatrixView left = ld.dense.at({i, k}).block(0, rk, rsel, nrk);
        ConstMatrixView right = ld.dense.at({k, j}).block(rk, 0, nrk, csel);
        if (structure_.is_inadmissible_at(level, i, j)) {
          gemm(-1.0, left, Trans::No, right, Trans::No, 1.0,
               ld.dense.at({i, j}).block(0, 0, rsel, csel));
        } else if (structure_.is_admissible_at(level, i, j)) {
          const int ri = ld.rank[i], rj = ld.rank[j];
          if (ri > 0 && rj > 0) {
            gemm(-1.0, left.block(0, 0, ri, nrk), Trans::No,
                 right.block(0, 0, nrk, rj), Trans::No, 1.0,
                 skel_[level].at({i, j}));
          }
          if (opt_.measure_dropped) {
            const Matrix full = matmul(left, right);
            const double all = norm_fro(full);
            const double ss =
                (ri > 0 && rj > 0) ? norm_fro(full.block(0, 0, ri, rj)) : 0.0;
            add_dropped(all * all - ss * ss);
          }
        } else if (opt_.measure_dropped) {
          const Matrix full = matmul(left, right);
          const double all = norm_fro(full);
          add_dropped(all * all);
        }
      }
    }
    record_task(level, "eliminate", k, t.seconds());
  }
}

double UlvFactorization::logabsdet() const {
  double acc = 0.0;
  for (int level = depth_; level >= 1; --level) {
    const Level& ld = levels_[level];
    for (int k = 0; k < ld.nb; ++k) {
      const int r = ld.rank[k], n = ld.size[k];
      if (n == r) continue;
      const Matrix& dkk = ld.dense.at({k, k});
      for (int d = r; d < n; ++d) acc += std::log(std::fabs(dkk(d, d)));
    }
  }
  for (int d = 0; d < top_lu_.rows(); ++d)
    acc += std::log(std::fabs(top_lu_(d, d)));
  return acc;
}

}  // namespace h2
