#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace h2 {

namespace {
thread_local int tl_worker_index = -1;
thread_local ThreadPool* tl_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int n_threads, QueuePolicy policy) : policy_(policy) {
  if (n_threads < 1) n_threads = 1;
  lanes_.reserve(n_threads);
  for (int i = 0; i < n_threads; ++i) lanes_.push_back(std::make_unique<Lane>());
  workers_.reserve(n_threads);
  for (int i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::heap_less(const Item& a, const Item& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.seq > b.seq;  // equal priority: earlier submission pops first
}

void ThreadPool::submit(std::function<void()> task, double priority) {
  Item item{std::move(task), priority,
            seq_.fetch_add(1, std::memory_order_relaxed)};
  // pending up BEFORE the item is visible in any queue: a thief may pop and
  // finish the task the instant it is published, and its pending decrement
  // must never land before our increment (the count would go negative and
  // the thief's "state_ == 0" idle edge would fire early or not at all).
  state_.fetch_add(kPendingOne);
  const bool local = policy_ == QueuePolicy::WorkSteal && tl_pool == this;
  try {
    if (local) {
      // LIFO-local: a worker's freshly made-ready task goes on top of its
      // own deque, where its next pop (not a thief's) finds it.
      Lane& self = *lanes_[tl_worker_index];
      std::lock_guard<std::mutex> lk(self.m);
      self.deque.push_back(std::move(item));
    } else {
      std::lock_guard<std::mutex> lk(mutex_);
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), heap_less);
    }
  } catch (...) {
    // Enqueue failed (allocation): no task will ever drain the count we
    // raised, and a leaked pending wedges wait_idle and the destructor
    // forever — roll it back before letting the exception out. If the
    // rollback itself drains the pool, deliver the idle edge exactly like
    // the last finishing worker would: a wait_idle caller that parked on
    // our transient increment has no one else to wake it.
    if (state_.fetch_sub(kPendingOne) == kPendingOne) {
      std::lock_guard<std::mutex> lk(mutex_);
      cv_idle_.notify_all();
    }
    throw;
  }
  if (sleepers_.load() > 0) {
    // A sleeper registered itself (under mutex_) before it could have seen
    // our pending increment, so the wakeup handoff is on us. When
    // sleepers_ == 0 the handoff is skipped entirely — every worker either
    // runs or will observe the increment before parking (both seq_cst) —
    // which keeps the saturated-pool fast path off the pool-global lock.
    if (local) {
      // Empty critical section: serializes this wakeup against a worker
      // between its predicate check and its park, closing the missed-wakeup
      // window. The shared-heap branch needs none — its publication already
      // ran under mutex_, which serializes against the sleeper by itself.
      std::lock_guard<std::mutex> lk(mutex_);
    }
    cv_work_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mutex_);
  // One load of the packed word — "queues drained AND workers idle" cannot
  // be assembled from counters read at different instants.
  cv_idle_.wait(lk, [this] { return state_.load() == 0; });
}

bool ThreadPool::try_pop_local(int index, Item& out) {
  Lane& self = *lanes_[index];
  std::lock_guard<std::mutex> lk(self.m);
  if (self.deque.empty()) return false;
  out = std::move(self.deque.back());
  self.deque.pop_back();
  // pending→active in one transition, under the queue's lock: outside the
  // lock pending always matches what a scan can still find, and the pair
  // never passes through (0, 0) between pop and execution.
  state_.fetch_add(kActiveOne - kPendingOne);
  return true;
}

bool ThreadPool::try_pop_shared(Item& out) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), heap_less);
  out = std::move(heap_.back());
  heap_.pop_back();
  state_.fetch_add(kActiveOne - kPendingOne);
  return true;
}

bool ThreadPool::try_steal(int index, std::uint32_t& rng, Item& out) {
  const int n = static_cast<int>(lanes_.size());
  if (n <= 1) return false;
  // Randomized start, then a full sweep: a task sitting in some deque cannot
  // be missed by an idle worker, only raced for.
  rng ^= rng << 13;
  rng ^= rng >> 17;
  rng ^= rng << 5;
  const int start = static_cast<int>(rng % static_cast<std::uint32_t>(n));
  for (int k = 0; k < n; ++k) {
    const int v = (start + k) % n;
    if (v == index) continue;
    Lane& victim = *lanes_[v];
    std::lock_guard<std::mutex> lk(victim.m);
    if (victim.deque.empty()) continue;
    // FIFO-steal: the victim's OLDEST task — the breadth end of its deque.
    out = std::move(victim.deque.front());
    victim.deque.pop_front();
    state_.fetch_add(kActiveOne - kPendingOne);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(int index) {
  tl_worker_index = index;
  tl_pool = this;
  Lane& self = *lanes_[index];
  std::uint32_t rng = 0x9e3779b9u * static_cast<std::uint32_t>(index + 1) | 1u;
  int misses = 0;  // consecutive scans that found nothing
  for (;;) {
    Item item;
    bool stolen = false;
    bool got = (policy_ == QueuePolicy::WorkSteal && try_pop_local(index, item)) ||
               try_pop_shared(item);
    if (!got && policy_ == QueuePolicy::WorkSteal) {
      got = stolen = try_steal(index, rng, item);
    }
    if (!got) {
      {
        std::unique_lock<std::mutex> lk(mutex_);
        sleepers_.fetch_add(1);
        cv_work_.wait(
            lk, [this] { return stop_ || (state_.load() >> 32) != 0; });
        sleepers_.fetch_sub(1);
        if (stop_ && (state_.load() >> 32) == 0) return;
      }
      // Pending > 0 means work exists somewhere — but it can be a task whose
      // count was raised and whose publication hasn't landed yet, in which
      // case the wait above returns immediately and the rescan misses again.
      // Yield on repeated misses so that window is a bounded backoff, not a
      // lock-hammering spin.
      if (++misses > 1) std::this_thread::yield();
      continue;  // re-scan the queues
    }
    misses = 0;
    // The pop already moved this task pending→active, so wait_idle can never
    // observe it as (no queue, no worker) idle while we run it.
    self.executed.fetch_add(1, std::memory_order_relaxed);
    if (stolen) self.stolen.fetch_add(1, std::memory_order_relaxed);
    item.fn();
    if (state_.fetch_sub(kActiveOne) == kActiveOne) {
      // Last task out of a fully drained pool: hand the idle edge to
      // wait_idle through the cv's mutex (the empty-section pattern again —
      // the waiter either re-checks after us or is already parked).
      std::lock_guard<std::mutex> lk(mutex_);
      cv_idle_.notify_all();
    }
  }
}

const char* ThreadPool::policy_name() const {
  return policy_ == QueuePolicy::Fifo ? "fifo" : "worksteal";
}

std::vector<ThreadPool::WorkerCounters> ThreadPool::worker_counters() const {
  std::vector<WorkerCounters> out(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    out[i] = {lanes_[i]->executed.load(std::memory_order_acquire),
              lanes_[i]->stolen.load(std::memory_order_acquire)};
  return out;
}

int ThreadPool::worker_index() { return tl_worker_index; }

ThreadPool* ThreadPool::current() { return tl_pool; }

int ThreadPool::env_threads() {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // 0 doubles as the "unset" sentinel: zero, negative and garbage values are
  // all invalid, and all of them fall back to the hardware count.
  const long v = env::get_int("H2_THREADS", 0);
  if (v < 1) return hw;
  return static_cast<int>(std::min(v, 1024L));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_threads());
  return pool;
}

void parallel_for(int begin, int end, const std::function<void(int)>& fn,
                  ThreadPool* pool) {
  const int n = end - begin;
  if (n <= 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  if (pool->size() <= 1 || n == 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic self-scheduling over indices. All state is shared-owned so that
  // straggler workers stay valid after the caller has been released.
  struct State {
    std::function<void(int)> fn;
    int end;
    std::atomic<int> next;
    std::atomic<int> remaining;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  auto st = std::make_shared<State>();
  st->fn = fn;
  st->end = end;
  st->next.store(begin);
  st->remaining.store(n);

  const int n_tasks = std::min(pool->size(), n);
  for (int t = 0; t < n_tasks; ++t) {
    pool->submit([st] {
      for (;;) {
        const int i = st->next.fetch_add(1);
        if (i >= st->end) break;
        st->fn(i);
        if (st->remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> lk(st->mutex);
          st->done = true;
          st->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lk(st->mutex);
  st->cv.wait(lk, [&] { return st->done; });
}

}  // namespace h2
