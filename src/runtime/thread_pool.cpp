#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/env.hpp"

namespace h2 {

namespace {
thread_local int tl_worker_index = -1;
thread_local ThreadPool* tl_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int n_threads) {
  if (n_threads < 1) n_threads = 1;
  workers_.reserve(n_threads);
  for (int i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(int index) {
  tl_worker_index = index;
  tl_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_work_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

int ThreadPool::worker_index() { return tl_worker_index; }

ThreadPool* ThreadPool::current() { return tl_pool; }

int ThreadPool::env_threads() {
  const long hw =
      std::max(1L, static_cast<long>(std::thread::hardware_concurrency()));
  const long v = env::get_int("H2_THREADS", hw);
  return static_cast<int>(std::clamp(v, 1L, 1024L));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_threads());
  return pool;
}

void parallel_for(int begin, int end, const std::function<void(int)>& fn,
                  ThreadPool* pool) {
  const int n = end - begin;
  if (n <= 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  if (pool->size() <= 1 || n == 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic self-scheduling over indices. All state is shared-owned so that
  // straggler workers stay valid after the caller has been released.
  struct State {
    std::function<void(int)> fn;
    int end;
    std::atomic<int> next;
    std::atomic<int> remaining;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  auto st = std::make_shared<State>();
  st->fn = fn;
  st->end = end;
  st->next.store(begin);
  st->remaining.store(n);

  const int n_tasks = std::min(pool->size(), n);
  for (int t = 0; t < n_tasks; ++t) {
    pool->submit([st] {
      for (;;) {
        const int i = st->next.fetch_add(1);
        if (i >= st->end) break;
        st->fn(i);
        if (st->remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> lk(st->mutex);
          st->done = true;
          st->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lk(st->mutex);
  st->cv.wait(lk, [&] { return st->done; });
}

}  // namespace h2
