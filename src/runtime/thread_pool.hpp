#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace h2 {

/// Fixed-size worker pool. Two ready-queue disciplines:
///
///  - WorkSteal (default): one deque per worker. A worker pushes and pops its
///    own deque at the BACK (LIFO — the task it just made ready is the one
///    whose inputs are still hot, so a block row's fill→basis→project chain
///    tends to stay on one worker), while idle workers steal from a random
///    victim's FRONT (FIFO — the oldest task is the root of the largest
///    untouched subtree, so steals spread breadth, not leaves). Submissions
///    from non-worker threads land in a shared priority heap that every
///    worker also drains.
///  - Fifo: the pre-work-stealing behaviour, kept as the contention
///    ablation — every task goes through one shared queue ordered by
///    (priority desc, submission order asc); with no priorities this is the
///    plain FIFO the library used before.
///
/// The `priority` argument of submit() orders the shared queue only; a
/// worker's own deque is ordered by push order (callers that care — the
/// TaskGraph executor — push ascending so the highest priority pops first).
class ThreadPool {
 public:
  /// Ready-queue discipline (see class comment).
  enum class QueuePolicy { Fifo, WorkSteal };

  /// Per-worker execution counters since pool construction. `stolen` counts
  /// the subset of `executed` that was taken from another worker's deque —
  /// the direct measure of how much the stealing path actually runs.
  struct WorkerCounters {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
  };

  explicit ThreadPool(int n_threads,
                      QueuePolicy policy = QueuePolicy::WorkSteal);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. `priority` (higher runs earlier) orders the shared
  /// queue; ties keep submission order. Calls from a worker of this pool
  /// under the WorkSteal policy push to that worker's own deque instead
  /// (LIFO-local; `priority` is then only a hint for thieves' victims).
  void submit(std::function<void()> task, double priority = 0.0);

  /// Block until every queue is drained and every worker is idle.
  void wait_idle();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] QueuePolicy policy() const { return policy_; }
  /// "fifo" or "worksteal" — the trace/CSV spelling of policy().
  [[nodiscard]] const char* policy_name() const;

  /// Snapshot of the per-worker counters (index = worker lane). Counters are
  /// cumulative over the pool's lifetime; executors that need per-run values
  /// (TaskGraph) difference two snapshots.
  [[nodiscard]] std::vector<WorkerCounters> worker_counters() const;

  /// Index of the calling thread within its owning pool ([0, size)), or -1
  /// when called from a thread no pool owns. Lets executors (TaskGraph) tag
  /// trace records with a stable per-worker lane without handing out ad-hoc
  /// ids.
  static int worker_index();

  /// The pool that owns the calling thread, or nullptr for non-pool threads.
  /// Executors use this to refuse a pool they are already running on — a
  /// worker that submits work to its own pool and then blocks on it
  /// deadlocks once all workers do the same.
  static ThreadPool* current();

  /// Worker count implied by the environment: H2_THREADS when set to a
  /// positive integer (clamped to 1024), hardware concurrency otherwise.
  /// Invalid values — zero, negative, or not a plain integer — are all
  /// rejected the same way: the variable is ignored and the hardware
  /// fallback applies. Factored out of global() so the parsing is
  /// testable — global() is initialized only once.
  static int env_threads();

  /// Process-wide pool sized by env_threads() (WorkSteal policy).
  static ThreadPool& global();

 private:
  /// A queued task. `seq` breaks priority ties in submission order so the
  /// Fifo policy without priorities stays exactly FIFO.
  struct Item {
    std::function<void()> fn;
    double priority = 0.0;
    std::uint64_t seq = 0;
  };

  /// One worker's deque + counters. Heap-allocated so lane addresses stay
  /// stable while thieves hold references.
  struct Lane {
    std::mutex m;
    std::deque<Item> deque;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  static bool heap_less(const Item& a, const Item& b);
  void worker_loop(int index);
  bool try_pop_local(int index, Item& out);
  bool try_pop_shared(Item& out);
  bool try_steal(int index, std::uint32_t& rng, Item& out);

  const QueuePolicy policy_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  std::mutex mutex_;  ///< guards heap_ and stop_; anchors both cvs
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::vector<Item> heap_;  ///< shared queue as a binary max-heap
  std::atomic<std::uint64_t> seq_{0};
  /// Pool occupancy packed into ONE atomic word: tasks in any queue
  /// (shared heap or worker deques) in the high 32 bits ("pending"),
  /// tasks currently executing in the low 32 bits ("active"). One word,
  /// not two atomics: wait_idle's "all drained AND all idle" predicate is
  /// a single load (state_ == 0), so it can never pair a stale pending
  /// with a fresh active. Not mutex-guarded: under WorkSteal the
  /// local-deque fast path must not cross the pool-global lock per task —
  /// submitters and finishing workers hand off to sleepers through the
  /// empty-critical-section pattern (state change, then lock/unlock
  /// mutex_, then notify), so a waiter either sees the new value or is
  /// already inside wait() when the notify lands. Invariants: pending is
  /// raised BEFORE the item is published to a queue (a thief finishing
  /// the task early must not drive the count negative), and a pop moves
  /// pending→active in one fetch_add under the queue's lock (the pair
  /// never transits through (0, 0) mid-handoff).
  std::atomic<std::uint64_t> state_{0};
  static constexpr std::uint64_t kActiveOne = 1;
  static constexpr std::uint64_t kPendingOne = std::uint64_t{1} << 32;
  /// Workers parked (or about to park) in cv_work_.wait — raised under
  /// mutex_ BEFORE the predicate's pending check. submit() skips the
  /// lock+notify handoff when this is zero: with both counters seq_cst,
  /// any worker that missed the pending increment has already registered
  /// here, so a submitter sees either no sleepers (all workers will rescan
  /// on their own) or takes the handoff path. In a saturated pool that
  /// keeps submission entirely off the pool-global lock.
  std::atomic<int> sleepers_{0};
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [begin, end) across the pool (caller blocks).
/// Falls back to a plain loop when the pool has a single worker or the
/// range is tiny.
void parallel_for(int begin, int end, const std::function<void(int)>& fn,
                  ThreadPool* pool = nullptr);

}  // namespace h2
