#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace h2 {

/// Fixed-size worker pool with a shared FIFO queue. Deliberately simple:
/// block-level tasks in this library are coarse (>= tens of microseconds),
/// so queue contention is negligible and the behaviour easy to reason about.
class ThreadPool {
 public:
  explicit ThreadPool(int n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until the queue is drained and every worker is idle.
  void wait_idle();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling thread within its owning pool ([0, size)), or -1
  /// when called from a thread no pool owns. Lets executors (TaskGraph) tag
  /// trace records with a stable per-worker lane without handing out ad-hoc
  /// ids.
  static int worker_index();

  /// The pool that owns the calling thread, or nullptr for non-pool threads.
  /// Executors use this to refuse a pool they are already running on — a
  /// worker that submits work to its own pool and then blocks on it
  /// deadlocks once all workers do the same.
  static ThreadPool* current();

  /// Worker count implied by the environment: H2_THREADS when set to a
  /// positive integer, hardware concurrency otherwise; always >= 1 (garbage,
  /// zero and negative values fall back / clamp). Factored out of global()
  /// so the parsing is testable — global() is initialized only once.
  static int env_threads();

  /// Process-wide pool sized by env_threads().
  static ThreadPool& global();

 private:
  void worker_loop(int index);

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [begin, end) across the pool (caller blocks).
/// Falls back to a plain loop when the pool has a single worker or the
/// range is tiny.
void parallel_for(int begin, int end, const std::function<void(int)>& fn,
                  ThreadPool* pool = nullptr);

}  // namespace h2
