#include "runtime/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "runtime/block_pool.hpp"
#include "util/timer.hpp"

namespace h2 {

std::vector<double> bottom_levels(
    int n_tasks, const std::vector<std::vector<TaskId>>& successors,
    const std::vector<double>& durations, double per_task_overhead) {
  const auto succs_of = [&](int i) -> const std::vector<TaskId>& {
    static const std::vector<TaskId> kNone;
    return static_cast<std::size_t>(i) < successors.size()
               ? successors[static_cast<std::size_t>(i)]
               : kNone;
  };
  if (static_cast<int>(successors.size()) > n_tasks)
    throw std::invalid_argument("bottom_levels: more successor lists than tasks");
  std::vector<int> indeg(n_tasks, 0);
  for (int i = 0; i < n_tasks; ++i)
    for (const TaskId s : succs_of(i)) {
      if (s < 0 || s >= n_tasks)
        throw std::invalid_argument("bottom_levels: successor index out of range");
      ++indeg[s];
    }
  std::vector<int> order;
  order.reserve(n_tasks);
  for (int i = 0; i < n_tasks; ++i)
    if (indeg[i] == 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (const TaskId s : succs_of(order[head]))
      if (--indeg[s] == 0) order.push_back(s);
  if (static_cast<int>(order.size()) != n_tasks)
    throw std::logic_error("bottom_levels: dependency cycle");

  std::vector<double> bl(n_tasks, 0.0);
  for (int k = n_tasks - 1; k >= 0; --k) {
    const int i = order[k];
    double tail = 0.0;
    for (const TaskId s : succs_of(i)) tail = std::max(tail, bl[s]);
    const double dur =
        static_cast<std::size_t>(i) < durations.size() ? durations[i] : 1.0;
    bl[i] = dur + per_task_overhead + tail;
  }
  return bl;
}

TaskId TaskGraph::add_task(std::function<void()> fn, std::string label,
                           int owner, int level) {
  assert(!executed_);
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(fn));
  meta_.push_back({std::move(label), owner, level});
  successors_.emplace_back();
  n_predecessors_.push_back(0);
  priority_.push_back(0.0);
  out_bytes_.push_back(0.0);
  return id;
}

void TaskGraph::set_out_bytes(TaskId id, double bytes) {
  assert(id >= 0 && id < n_tasks());
  out_bytes_[id] = bytes;
  out_bytes_set_.store(true, std::memory_order_release);
}

void TaskGraph::set_priority(TaskId id, double priority) {
  assert(id >= 0 && id < n_tasks());
  priority_[id] = priority;
  // Refinements on top of a structural policy keep its classification; only
  // hand-assigned priorities from scratch are "custom".
  if (std::string_view(priority_policy_) == "none") priority_policy_ = "custom";
}

void TaskGraph::set_critical_path_priorities() {
  // Bottom levels on unit durations: priority = number of tasks on the
  // longest chain from here to the DAG's end. Task durations are unknown
  // before execution, and hop counts already give schur/merge drains their
  // head start (they sit on the cross-level spine).
  priority_ = bottom_levels(n_tasks(), successors_);
  priority_policy_ = "critical-path";
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  assert(before >= 0 && before < n_tasks() && after >= 0 && after < n_tasks());
  successors_[before].push_back(after);
  ++n_predecessors_[after];
}

void TaskGraph::throw_if_cyclic() const {
  // Kahn's algorithm on the static structure: anything a topological sweep
  // cannot reach sits on (or behind) a cycle and would deadlock execution.
  const int n = n_tasks();
  std::vector<int> degree = n_predecessors_;
  std::vector<TaskId> order;
  order.reserve(n);
  for (TaskId i = 0; i < n; ++i)
    if (degree[i] == 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (const TaskId succ : successors_[order[head]])
      if (--degree[succ] == 0) order.push_back(succ);
  if (static_cast<int>(order.size()) == n) return;

  const int stuck = n - static_cast<int>(order.size());
  std::ostringstream msg;
  msg << "TaskGraph: dependency cycle — " << stuck << " of " << n
      << " tasks unexecutable (stuck:";
  int shown = 0;
  for (TaskId i = 0; i < n && shown < 4; ++i) {
    if (degree[i] <= 0) continue;
    msg << (shown ? ", " : " ");
    if (meta_[i].label.empty())
      msg << '#' << i;
    else
      msg << '\'' << meta_[i].label << "' (#" << i << ')';
    ++shown;
  }
  if (stuck > shown) msg << ", ...";
  msg << ')';
  throw std::logic_error(msg.str());
}

ExecStats TaskGraph::execute(ThreadPool& pool) {
  if (executed_) throw std::logic_error("TaskGraph::execute called twice");
  if (ThreadPool::current() == &pool)
    throw std::logic_error(
        "TaskGraph::execute called from a worker of the target pool — the "
        "caller would block on work queued behind itself (use a different "
        "pool, as UlvFactorization's fallback does)");
  executed_ = true;
  throw_if_cyclic();
  const int n = n_tasks();

  ExecStats stats;
  stats.n_workers = pool.size();
  stats.records.resize(n);
  stats.schedule_policy = pool.policy_name();
  stats.priority_policy = priority_policy_;
  const std::vector<ThreadPool::WorkerCounters> counters0 =
      pool.worker_counters();

  std::vector<std::atomic<int>> pending(n);
  for (int i = 0; i < n; ++i) pending[i].store(n_predecessors_[i]);

  std::atomic<int> remaining{n};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = (n == 0);

  // Block-byte measurement window (see ExecStats::peak_block_bytes).
  blockmem::reset_peak();
  const Timer wall;

  // Declared before `run` so it can be captured by reference.
  std::function<void(TaskId)> schedule;
  auto run = [&](TaskId id) {
    TaskRecord& rec = stats.records[id];
    rec.id = id;
    rec.worker = std::max(0, ThreadPool::worker_index());
    rec.owner = meta_[id].owner;
    rec.level = meta_[id].level;
    rec.label = meta_[id].label;
    rec.t_start = now_sec();
    tasks_[id]();
    rec.t_end = now_sec();
    // Release the newly ready successors lowest priority FIRST: on a
    // work-stealing pool each push lands on this worker's LIFO deque, so the
    // last push — the highest bottom level — is the task it pops next, while
    // thieves take the breadth end. On a Fifo pool the shared priority queue
    // orders them anyway (stable sort keeps submission order on ties, which
    // without priorities is the exact pre-priority behaviour).
    std::vector<TaskId> ready;
    for (const TaskId succ : successors_[id])
      if (pending[succ].fetch_sub(1) == 1) ready.push_back(succ);
    std::stable_sort(ready.begin(), ready.end(), [this](TaskId a, TaskId b) {
      return priority_[a] < priority_[b];
    });
    for (const TaskId succ : ready) schedule(succ);
    if (remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lk(done_mutex);
      done = true;
      done_cv.notify_all();
    }
  };
  schedule = [&](TaskId id) {
    pool.submit([&run, id] { run(id); }, priority_[id]);
  };

  for (TaskId i = 0; i < n; ++i)
    if (n_predecessors_[i] == 0) schedule(i);

  {
    std::unique_lock<std::mutex> lk(done_mutex);
    done_cv.wait(lk, [&] { return done; });
  }
  stats.wall_seconds = wall.seconds();
  stats.peak_block_bytes = blockmem::peak();
  stats.live_block_bytes = blockmem::live();

  if (remaining.load() != 0)
    throw std::logic_error("TaskGraph: tasks left unexecuted after drain");
  for (const auto& rec : stats.records) stats.useful_seconds += rec.duration();

  const std::vector<ThreadPool::WorkerCounters> counters1 =
      pool.worker_counters();
  stats.worker_counters.resize(counters1.size());
  for (std::size_t w = 0; w < counters1.size(); ++w)
    stats.worker_counters[w] = {counters1[w].executed - counters0[w].executed,
                                counters1[w].stolen - counters0[w].stolen};
  return stats;
}

ExecStats TaskGraph::execute(int n_threads) {
  ThreadPool pool(n_threads);
  return execute(pool);
}

bool TaskGraph::write_trace_csv(const ExecStats& stats, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  if (*stats.schedule_policy != '\0')
    f << "# schedule=" << stats.schedule_policy
      << " priority=" << stats.priority_policy
      << " workers=" << stats.n_workers << '\n';
  for (std::size_t w = 0; w < stats.worker_counters.size(); ++w)
    f << "# worker=" << w
      << " executed=" << stats.worker_counters[w].executed
      << " stolen=" << stats.worker_counters[w].stolen << '\n';
  f << "task,label,owner,level,worker,t_start,t_end\n";
  double t0 = stats.records.empty() ? 0.0 : stats.records.front().t_start;
  for (const auto& r : stats.records) t0 = std::min(t0, r.t_start);
  for (const auto& r : stats.records)
    f << r.id << ',' << r.label << ',' << r.owner << ',' << r.level << ','
      << r.worker << ',' << (r.t_start - t0) << ',' << (r.t_end - t0) << '\n';
  return static_cast<bool>(f);
}

}  // namespace h2
