#include "runtime/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "util/timer.hpp"

namespace h2 {

TaskId TaskGraph::add_task(std::function<void()> fn, std::string label,
                           int owner, int level) {
  assert(!executed_);
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(fn));
  meta_.push_back({std::move(label), owner, level});
  successors_.emplace_back();
  n_predecessors_.push_back(0);
  return id;
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  assert(before >= 0 && before < n_tasks() && after >= 0 && after < n_tasks());
  successors_[before].push_back(after);
  ++n_predecessors_[after];
}

void TaskGraph::throw_if_cyclic() const {
  // Kahn's algorithm on the static structure: anything a topological sweep
  // cannot reach sits on (or behind) a cycle and would deadlock execution.
  const int n = n_tasks();
  std::vector<int> degree = n_predecessors_;
  std::vector<TaskId> order;
  order.reserve(n);
  for (TaskId i = 0; i < n; ++i)
    if (degree[i] == 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (const TaskId succ : successors_[order[head]])
      if (--degree[succ] == 0) order.push_back(succ);
  if (static_cast<int>(order.size()) == n) return;

  const int stuck = n - static_cast<int>(order.size());
  std::ostringstream msg;
  msg << "TaskGraph: dependency cycle — " << stuck << " of " << n
      << " tasks unexecutable (stuck:";
  int shown = 0;
  for (TaskId i = 0; i < n && shown < 4; ++i) {
    if (degree[i] <= 0) continue;
    msg << (shown ? ", " : " ");
    if (meta_[i].label.empty())
      msg << '#' << i;
    else
      msg << '\'' << meta_[i].label << "' (#" << i << ')';
    ++shown;
  }
  if (stuck > shown) msg << ", ...";
  msg << ')';
  throw std::logic_error(msg.str());
}

ExecStats TaskGraph::execute(ThreadPool& pool) {
  if (executed_) throw std::logic_error("TaskGraph::execute called twice");
  executed_ = true;
  throw_if_cyclic();
  const int n = n_tasks();

  ExecStats stats;
  stats.n_workers = pool.size();
  stats.records.resize(n);

  std::vector<std::atomic<int>> pending(n);
  for (int i = 0; i < n; ++i) pending[i].store(n_predecessors_[i]);

  std::atomic<int> remaining{n};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = (n == 0);

  const Timer wall;

  // Declared before `run` so it can be captured by reference.
  std::function<void(TaskId)> schedule;
  auto run = [&](TaskId id) {
    TaskRecord& rec = stats.records[id];
    rec.id = id;
    rec.worker = std::max(0, ThreadPool::worker_index());
    rec.owner = meta_[id].owner;
    rec.level = meta_[id].level;
    rec.label = meta_[id].label;
    rec.t_start = now_sec();
    tasks_[id]();
    rec.t_end = now_sec();
    for (const TaskId succ : successors_[id])
      if (pending[succ].fetch_sub(1) == 1) schedule(succ);
    if (remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lk(done_mutex);
      done = true;
      done_cv.notify_all();
    }
  };
  schedule = [&](TaskId id) { pool.submit([&run, id] { run(id); }); };

  for (TaskId i = 0; i < n; ++i)
    if (n_predecessors_[i] == 0) schedule(i);

  {
    std::unique_lock<std::mutex> lk(done_mutex);
    done_cv.wait(lk, [&] { return done; });
  }
  stats.wall_seconds = wall.seconds();

  if (remaining.load() != 0)
    throw std::logic_error("TaskGraph: tasks left unexecuted after drain");
  for (const auto& rec : stats.records) stats.useful_seconds += rec.duration();
  return stats;
}

ExecStats TaskGraph::execute(int n_threads) {
  ThreadPool pool(n_threads);
  return execute(pool);
}

bool TaskGraph::write_trace_csv(const ExecStats& stats, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "task,label,owner,level,worker,t_start,t_end\n";
  double t0 = stats.records.empty() ? 0.0 : stats.records.front().t_start;
  for (const auto& r : stats.records) t0 = std::min(t0, r.t_start);
  for (const auto& r : stats.records)
    f << r.id << ',' << r.label << ',' << r.owner << ',' << r.level << ','
      << r.worker << ',' << (r.t_start - t0) << ',' << (r.t_end - t0) << '\n';
  return static_cast<bool>(f);
}

}  // namespace h2
