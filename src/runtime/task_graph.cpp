#include "runtime/task_graph.hpp"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "util/timer.hpp"

namespace h2 {

TaskId TaskGraph::add_task(std::function<void()> fn, std::string label) {
  assert(!executed_);
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(fn));
  labels_.push_back(std::move(label));
  successors_.emplace_back();
  n_predecessors_.push_back(0);
  return id;
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  assert(before >= 0 && before < n_tasks() && after >= 0 && after < n_tasks());
  successors_[before].push_back(after);
  ++n_predecessors_[after];
}

ExecStats TaskGraph::execute(int n_threads) {
  if (executed_) throw std::logic_error("TaskGraph::execute called twice");
  executed_ = true;
  const int n = n_tasks();

  ExecStats stats;
  stats.n_workers = n_threads;
  stats.records.resize(n);

  std::vector<std::atomic<int>> pending(n);
  for (int i = 0; i < n; ++i) pending[i].store(n_predecessors_[i]);

  std::atomic<int> remaining{n};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = (n == 0);

  // Worker ids handed out on first use so trace rows are per-worker lanes.
  std::atomic<int> next_worker{0};

  ThreadPool pool(n_threads);
  const Timer wall;

  // Declared before `run` so it can be captured by reference.
  std::function<void(TaskId)> schedule;
  auto run = [&](TaskId id) {
    thread_local int worker_id = -1;
    if (worker_id < 0) worker_id = next_worker.fetch_add(1);
    TaskRecord& rec = stats.records[id];
    rec.id = id;
    rec.worker = worker_id;
    rec.label = labels_[id];
    rec.t_start = now_sec();
    tasks_[id]();
    rec.t_end = now_sec();
    for (const TaskId succ : successors_[id])
      if (pending[succ].fetch_sub(1) == 1) schedule(succ);
    if (remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lk(done_mutex);
      done = true;
      done_cv.notify_all();
    }
  };
  schedule = [&](TaskId id) { pool.submit([&run, id] { run(id); }); };

  for (TaskId i = 0; i < n; ++i)
    if (n_predecessors_[i] == 0) schedule(i);

  {
    std::unique_lock<std::mutex> lk(done_mutex);
    done_cv.wait(lk, [&] { return done; });
  }
  stats.wall_seconds = wall.seconds();

  if (remaining.load() != 0)
    throw std::logic_error("TaskGraph: dependency cycle (unexecuted tasks)");
  for (const auto& rec : stats.records) stats.useful_seconds += rec.duration();
  return stats;
}

bool TaskGraph::write_trace_csv(const ExecStats& stats, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "task,label,worker,t_start,t_end\n";
  double t0 = stats.records.empty() ? 0.0 : stats.records.front().t_start;
  for (const auto& r : stats.records) t0 = std::min(t0, r.t_start);
  for (const auto& r : stats.records)
    f << r.id << ',' << r.label << ',' << r.worker << ',' << (r.t_start - t0)
      << ',' << (r.t_end - t0) << '\n';
  return static_cast<bool>(f);
}

}  // namespace h2
