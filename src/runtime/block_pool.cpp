#include "runtime/block_pool.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "util/env.hpp"

namespace h2 {

namespace blockmem {
namespace {

std::atomic<std::uint64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};

}  // namespace

void charge(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  const std::uint64_t now =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t seen = g_peak.load(std::memory_order_relaxed);
  while (now > seen &&
         !g_peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

void discharge(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t live() noexcept { return g_live.load(std::memory_order_relaxed); }

std::uint64_t peak() noexcept { return g_peak.load(std::memory_order_relaxed); }

void reset_peak() noexcept {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

}  // namespace blockmem

namespace {

int bucket_of(std::size_t n_elems) {
  return n_elems == 0 ? 0 : std::bit_width(n_elems);
}

}  // namespace

BlockPool::BlockPool(std::size_t cap_bytes) : cap_bytes_(cap_bytes) {}

BlockPool& BlockPool::global() {
  // Immortal (never destroyed): release tasks may run on pool workers that
  // outlive main()'s statics during teardown, like ThreadPool::global().
  static auto* pool = new BlockPool(
      static_cast<std::size_t>(env::get_int("H2_BLOCK_POOL_MB", 256)) << 20);
  return *pool;
}

namespace {

// The make/recycle bodies, generic over the element type; the free-list
// array is passed in because the per-type lists live side by side in the
// pool (a parked buffer's element type is part of its identity). Bytes —
// cap, cached accounting — always use the real element size, so an fp32
// block costs the cache exactly half its fp64 twin.
template <class T, class Mutex, class Stats>
MatrixT<T> pool_make(Mutex& mutex, std::vector<AlignedBufferT<T>>* buckets,
                     int n_buckets, std::size_t& cached_bytes, Stats& stats,
                     int rows, int cols) {
  const std::size_t n =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (n == 0) return MatrixT<T>(rows, cols);
  AlignedBufferT<T> storage;
  {
    std::lock_guard<std::mutex> lk(mutex);
    // A parked buffer's capacity shares the request's bit_width, so it can
    // still undershoot n within the bucket — scan for the first that fits.
    auto& bucket = buckets[std::min(bucket_of(n), n_buckets - 1)];
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      if (bucket[b].capacity() >= n) {
        storage = std::move(bucket[b]);
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(b));
        cached_bytes -= storage.capacity() * sizeof(T);
        stats.cached_bytes = cached_bytes;
        ++stats.reused;
        break;
      }
    }
    if (storage.capacity() < n) ++stats.fresh;
  }
  storage.assign(n, T(0));  // zero-filled, like MatrixT<T>(rows, cols)
  return MatrixT<T>(rows, cols, std::move(storage));
}

template <class T, class Mutex, class Stats>
void pool_recycle(Mutex& mutex, std::vector<AlignedBufferT<T>>* buckets,
                  int n_buckets, std::size_t& cached_bytes,
                  std::size_t cap_bytes, Stats& stats, MatrixT<T>&& m) {
  AlignedBufferT<T> storage = std::move(m).take_storage();
  const std::size_t bytes = storage.capacity() * sizeof(T);
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lk(mutex);
  if (cached_bytes + bytes > cap_bytes) {
    ++stats.dropped;
    return;  // storage frees on scope exit — the cap bounds the cache
  }
  buckets[std::min(bucket_of(storage.capacity()), n_buckets - 1)].push_back(
      std::move(storage));
  cached_bytes += bytes;
  stats.cached_bytes = cached_bytes;
  ++stats.parked;
}

}  // namespace

Matrix BlockPool::make(int rows, int cols) {
  return pool_make<double>(mutex_, bucket_, kBuckets, cached_bytes_, stats_,
                           rows, cols);
}

MatrixF BlockPool::makef(int rows, int cols) {
  return pool_make<float>(mutex_, bucketf_, kBuckets, cached_bytes_, stats_,
                          rows, cols);
}

void BlockPool::recycle(Matrix&& m) {
  pool_recycle<double>(mutex_, bucket_, kBuckets, cached_bytes_, cap_bytes_,
                       stats_, std::move(m));
}

void BlockPool::recycle(MatrixF&& m) {
  pool_recycle<float>(mutex_, bucketf_, kBuckets, cached_bytes_, cap_bytes_,
                      stats_, std::move(m));
}

void BlockPool::trim() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& bucket : bucket_) bucket.clear();
  for (auto& bucket : bucketf_) bucket.clear();
  cached_bytes_ = 0;
  stats_.cached_bytes = 0;
}

BlockPool::Stats BlockPool::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

}  // namespace h2
