#include "runtime/block_pool.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "util/env.hpp"

namespace h2 {

namespace blockmem {
namespace {

std::atomic<std::uint64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};

}  // namespace

void charge(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  const std::uint64_t now =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t seen = g_peak.load(std::memory_order_relaxed);
  while (now > seen &&
         !g_peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

void discharge(std::uint64_t bytes) noexcept {
  if (bytes == 0) return;
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t live() noexcept { return g_live.load(std::memory_order_relaxed); }

std::uint64_t peak() noexcept { return g_peak.load(std::memory_order_relaxed); }

void reset_peak() noexcept {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

}  // namespace blockmem

namespace {

int bucket_of(std::size_t n_elems) {
  return n_elems == 0 ? 0 : std::bit_width(n_elems);
}

}  // namespace

BlockPool::BlockPool(std::size_t cap_bytes) : cap_bytes_(cap_bytes) {}

BlockPool& BlockPool::global() {
  // Immortal (never destroyed): release tasks may run on pool workers that
  // outlive main()'s statics during teardown, like ThreadPool::global().
  static auto* pool = new BlockPool(
      static_cast<std::size_t>(env::get_int("H2_BLOCK_POOL_MB", 256)) << 20);
  return *pool;
}

Matrix BlockPool::make(int rows, int cols) {
  const std::size_t n =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (n == 0) return Matrix(rows, cols);
  AlignedBuffer storage;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    // A parked buffer's capacity shares the request's bit_width, so it can
    // still undershoot n within the bucket — scan for the first that fits.
    auto& bucket = bucket_[std::min(bucket_of(n), kBuckets - 1)];
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      if (bucket[b].capacity() >= n) {
        storage = std::move(bucket[b]);
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(b));
        cached_bytes_ -= storage.capacity() * sizeof(double);
        stats_.cached_bytes = cached_bytes_;
        ++stats_.reused;
        break;
      }
    }
    if (storage.capacity() < n) ++stats_.fresh;
  }
  storage.assign(n, 0.0);  // zero-filled, like Matrix(rows, cols)
  return Matrix(rows, cols, std::move(storage));
}

void BlockPool::recycle(Matrix&& m) {
  AlignedBuffer storage = std::move(m).take_storage();
  const std::size_t bytes = storage.capacity() * sizeof(double);
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lk(mutex_);
  if (cached_bytes_ + bytes > cap_bytes_) {
    ++stats_.dropped;
    return;  // storage frees on scope exit — the cap bounds the cache
  }
  bucket_[std::min(bucket_of(storage.capacity()), kBuckets - 1)].push_back(
      std::move(storage));
  cached_bytes_ += bytes;
  stats_.cached_bytes = cached_bytes_;
  ++stats_.parked;
}

void BlockPool::trim() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& bucket : bucket_) bucket.clear();
  cached_bytes_ = 0;
  stats_.cached_bytes = 0;
}

BlockPool::Stats BlockPool::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

}  // namespace h2
