#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <vector>

#include "linalg/matrix.hpp"

namespace h2 {

/// Process-wide live/peak accounting of tracked factorization block bytes.
///
/// Every block the ULV factorization stores (workspace blocks, skeletons,
/// ry factors, the persistent factor itself) is charged here when stored and
/// discharged when released — so `live()` is the method's actual block
/// footprint and `peak()` its high-water mark, the number the paper's
/// linear-memory claim is about. Unlike util/flops (per-thread retired
/// slots), the counters are a single atomic pair: a peak of a SUM cannot be
/// reconstructed from per-thread parts after the fact, it has to be observed
/// on the coherent global value at every charge. Charges are per-block (a
/// handful per task), so the shared-cache-line traffic is noise next to the
/// BLAS work between them.
///
/// Windows: TaskGraph::execute calls reset_peak() at entry and snapshots
/// peak()/live() into ExecStats at exit. Like ExecStats::worker_counters,
/// the window is meaningful when one tracked graph runs at a time — which is
/// how every executor in this repo uses it.
namespace blockmem {

/// live += bytes; peak = max(peak, live).
void charge(std::uint64_t bytes) noexcept;
/// live -= bytes (bytes must have been charged).
void discharge(std::uint64_t bytes) noexcept;
[[nodiscard]] std::uint64_t live() noexcept;
[[nodiscard]] std::uint64_t peak() noexcept;
/// Start a measurement window: peak = live.
void reset_peak() noexcept;

}  // namespace blockmem

/// Pooled allocator for Matrix backing storage: released blocks park their
/// AlignedBuffer (64-byte-aligned) buffers in power-of-two size-class free
/// lists, and
/// make() re-uses a parked buffer instead of hitting the allocator. The ULV
/// release tasks free a level's blocks while the next level allocates
/// comparably-sized ones, so without the pool the factorization churns
/// malloc at exactly its hottest moment.
///
/// A buffer parks in bucket bit_width(capacity), so any reused buffer wastes
/// < 2x the requested capacity — bounded slack, never a 4 KB block riding a
/// megabyte buffer. Cached bytes are capped (H2_BLOCK_POOL_MB, default 256):
/// a release beyond the cap frees to the allocator, so the pool can never
/// silently re-grow the footprint the release tasks just bounded. Cached
/// buffers are NOT counted by blockmem — they are capacity, not live blocks.
///
/// Thread-safe: one mutex over the free lists (taken per block release /
/// acquire, not per element).
class BlockPool {
 public:
  explicit BlockPool(std::size_t cap_bytes);

  /// The process-wide pool every tracked factorization block routes through
  /// (capacity from H2_BLOCK_POOL_MB). Immortal, like ThreadPool::global().
  static BlockPool& global();

  /// Zero-filled rows x cols matrix, backed by a recycled buffer when one of
  /// a fitting size class is parked. fp32 blocks park in their own free lists
  /// (a buffer's element type is part of its identity — no reinterpreting),
  /// but share the byte cap and the stats with the fp64 side.
  [[nodiscard]] Matrix make(int rows, int cols);
  [[nodiscard]] MatrixF makef(int rows, int cols);

  /// Precision-generic face of make()/makef() for templated callers (the
  /// mixed-precision ULV engine allocates through this).
  template <class T>
  [[nodiscard]] MatrixT<T> make_as(int rows, int cols) {
    if constexpr (std::is_same_v<T, float>) {
      return makef(rows, cols);
    } else {
      return make(rows, cols);
    }
  }

  /// Park `m`'s backing storage for reuse (frees it instead when the cache
  /// cap is reached or the buffer is empty). `m` is left empty (0 x 0).
  void recycle(Matrix&& m);
  void recycle(MatrixF&& m);

  /// Drop every cached buffer back to the allocator.
  void trim();

  struct Stats {
    std::uint64_t reused = 0;   ///< make() calls served from the cache
    std::uint64_t fresh = 0;    ///< make() calls that hit the allocator
    std::uint64_t parked = 0;   ///< recycle() calls that cached the buffer
    std::uint64_t dropped = 0;  ///< recycle() calls past the cap (freed)
    std::size_t cached_bytes = 0;  ///< bytes currently parked
  };
  [[nodiscard]] Stats stats() const;

 private:
  static constexpr int kBuckets = 48;  // bit_width of element counts

  mutable std::mutex mutex_;
  std::vector<AlignedBuffer> bucket_[kBuckets];
  std::vector<AlignedBufferF> bucketf_[kBuckets];
  std::size_t cap_bytes_ = 0;
  std::size_t cached_bytes_ = 0;
  Stats stats_;
};

}  // namespace h2
