#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace h2 {

using TaskId = int;

/// One executed-task record; the trace is the Fig. 13 artifact and the input
/// to the distributed scheduling simulator (src/dist).
struct TaskRecord {
  TaskId id = -1;
  int worker = -1;
  double t_start = 0.0;  ///< seconds, monotonic epoch
  double t_end = 0.0;
  std::string label;

  [[nodiscard]] double duration() const { return t_end - t_start; }
};

/// Aggregate statistics of one task-graph execution.
struct ExecStats {
  double wall_seconds = 0.0;
  double useful_seconds = 0.0;    ///< sum of task durations
  int n_workers = 0;
  std::vector<TaskRecord> records;

  /// Fraction of worker-time NOT spent inside tasks (scheduling overhead +
  /// dependency stalls) — the red-vs-green ratio of the paper's Fig. 13.
  [[nodiscard]] double overhead_fraction() const {
    const double capacity = wall_seconds * n_workers;
    return capacity > 0.0 ? 1.0 - useful_seconds / capacity : 0.0;
  }
};

/// A one-shot dependency-counted task DAG (PaRSEC/StarPU substitute).
///
/// Tasks become ready when all their predecessors finish; ready tasks are
/// executed by a ThreadPool. Execution records per-task spans so that the
/// same DAG can afterwards be *replayed* on any number of simulated workers
/// by the scheduling simulator — this is how the strong-scaling figures are
/// produced on a single-core host.
class TaskGraph {
 public:
  /// Register a task; returns its id. `label` classifies the task for traces
  /// (e.g. "getrf", "trsm", "gemm").
  TaskId add_task(std::function<void()> fn, std::string label = {});

  /// `after` may not start until `before` has finished.
  void add_dependency(TaskId before, TaskId after);

  [[nodiscard]] int n_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const std::vector<std::vector<TaskId>>& successors() const {
    return successors_;
  }
  [[nodiscard]] const std::vector<int>& predecessor_counts() const {
    return n_predecessors_;
  }

  /// Execute the whole DAG on `n_threads` workers (its own pool). Can only be
  /// called once. Throws std::logic_error on dependency cycles (detected as
  /// non-executed tasks).
  ExecStats execute(int n_threads);

  /// Write the trace as CSV (task id, label, worker, start, end).
  static bool write_trace_csv(const ExecStats& stats, const std::string& path);

 private:
  std::vector<std::function<void()>> tasks_;
  std::vector<std::string> labels_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<int> n_predecessors_;
  bool executed_ = false;
};

}  // namespace h2
