#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace h2 {

using TaskId = int;

/// Static per-task classification carried by the graph: `label` names the
/// task kind for traces ("getrf", "basis", ...), `owner` the block row /
/// cluster / tile that owns the work (distributed ownership models), `level`
/// the tree level the task belongs to (-1 when not level-structured).
struct TaskMeta {
  std::string label;
  int owner = -1;
  int level = -1;
};

/// One executed-task record; the trace is the Fig. 13 artifact and the input
/// to the distributed scheduling simulator (src/dist).
struct TaskRecord {
  TaskId id = -1;
  int worker = -1;
  int owner = -1;     ///< owning cluster / tile row (from TaskMeta)
  int level = -1;     ///< tree level (from TaskMeta)
  double t_start = 0.0;  ///< seconds, monotonic epoch
  double t_end = 0.0;
  std::string label;

  [[nodiscard]] double duration() const { return t_end - t_start; }
};

/// Aggregate statistics of one task-graph execution.
struct ExecStats {
  double wall_seconds = 0.0;
  double useful_seconds = 0.0;    ///< sum of task durations
  int n_workers = 0;
  std::vector<TaskRecord> records;

  /// Fraction of worker-time NOT spent inside tasks (scheduling overhead +
  /// dependency stalls) — the red-vs-green ratio of the paper's Fig. 13.
  [[nodiscard]] double overhead_fraction() const {
    const double capacity = wall_seconds * n_workers;
    return capacity > 0.0 ? 1.0 - useful_seconds / capacity : 0.0;
  }
};

/// The callable-free skeleton of a TaskGraph: per-task metadata plus the
/// edge structure. Value-copyable, so a factorization can hand its recorded
/// DAG to the scheduling simulator (src/dist) long after the graph — whose
/// task closures reference factorization internals — is gone.
struct DagRecord {
  std::vector<TaskMeta> meta;
  std::vector<std::vector<TaskId>> successors;

  [[nodiscard]] int n_tasks() const { return static_cast<int>(meta.size()); }
  [[nodiscard]] bool empty() const { return meta.empty(); }
};

/// A one-shot dependency-counted task DAG (PaRSEC/StarPU substitute).
///
/// Tasks become ready when all their predecessors finish; ready tasks are
/// executed by a ThreadPool. Execution records per-task spans so that the
/// same DAG can afterwards be *replayed* on any number of simulated workers
/// by the scheduling simulator — this is how the strong-scaling figures are
/// produced on a single-core host.
class TaskGraph {
 public:
  /// Register a task; returns its id. `label` classifies the task for traces
  /// (e.g. "getrf", "trsm", "gemm"); `owner`/`level` tag the owning block
  /// row and tree level for ownership-aware replay (-1: untagged).
  TaskId add_task(std::function<void()> fn, std::string label = {},
                  int owner = -1, int level = -1);

  /// `after` may not start until `before` has finished.
  void add_dependency(TaskId before, TaskId after);

  [[nodiscard]] int n_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const std::vector<std::vector<TaskId>>& successors() const {
    return successors_;
  }
  [[nodiscard]] const std::vector<int>& predecessor_counts() const {
    return n_predecessors_;
  }
  [[nodiscard]] const std::vector<TaskMeta>& meta() const { return meta_; }

  /// Copy out the callable-free structure (metadata + edges).
  [[nodiscard]] DagRecord record() const { return {meta_, successors_}; }

  /// Execute the whole DAG on `pool`'s workers — the pool is borrowed, not
  /// owned, so callers can run many graphs through one process-wide pool.
  /// Can only be called once. Throws std::logic_error (before running any
  /// task) when dependency cycles make part of the graph unexecutable; the
  /// message names the stuck tasks. Must not be called from a worker of
  /// `pool` itself: execute() blocks the calling thread, so a pool draining
  /// into itself can deadlock (check ThreadPool::current()).
  ExecStats execute(ThreadPool& pool);

  /// Convenience overload: execute on a freshly spawned pool of `n_threads`
  /// workers that lives only for this call.
  ExecStats execute(int n_threads);

  /// Write the trace as CSV (task id, label, owner, level, worker, span).
  static bool write_trace_csv(const ExecStats& stats, const std::string& path);

 private:
  void throw_if_cyclic() const;

  std::vector<std::function<void()>> tasks_;
  std::vector<TaskMeta> meta_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<int> n_predecessors_;
  bool executed_ = false;
};

}  // namespace h2
