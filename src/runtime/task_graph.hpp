#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace h2 {

using TaskId = int;

/// Static per-task classification carried by the graph: `label` names the
/// task kind for traces ("getrf", "basis", ...), `owner` the block row /
/// cluster / tile that owns the work (distributed ownership models), `level`
/// the tree level the task belongs to (-1 when not level-structured).
struct TaskMeta {
  std::string label;
  int owner = -1;
  int level = -1;
};

/// One executed-task record; the trace is the Fig. 13 artifact and the input
/// to the distributed scheduling simulator (src/dist).
struct TaskRecord {
  TaskId id = -1;
  int worker = -1;
  int owner = -1;     ///< owning cluster / tile row (from TaskMeta)
  int level = -1;     ///< tree level (from TaskMeta)
  double t_start = 0.0;  ///< seconds, monotonic epoch
  double t_end = 0.0;
  std::string label;

  [[nodiscard]] double duration() const { return t_end - t_start; }
};

/// Aggregate statistics of one task-graph execution.
struct ExecStats {
  double wall_seconds = 0.0;
  double useful_seconds = 0.0;    ///< sum of task durations
  int n_workers = 0;
  std::vector<TaskRecord> records;
  /// Ready-queue discipline of the executing pool ("fifo" / "worksteal").
  const char* schedule_policy = "";
  /// Task-ordering policy in effect ("none" / "critical-path").
  const char* priority_policy = "";
  /// Per-worker-lane executed/stolen counts of THIS execution (deltas of the
  /// pool's cumulative counters; meaningful when the pool runs one graph at
  /// a time, which is how every executor in this repo uses it).
  std::vector<ThreadPool::WorkerCounters> worker_counters;
  /// High-water mark of the tracked block bytes (runtime/block_pool's
  /// blockmem counters) during this execution's window, and the live bytes
  /// at its end. The factorization's release tasks exist to keep the peak at
  /// O(active levels); this is where that bound is measured. Same caveat as
  /// worker_counters: the window is per-process, so it is meaningful when
  /// one block-tracking graph executes at a time.
  std::uint64_t peak_block_bytes = 0;
  std::uint64_t live_block_bytes = 0;
  /// Out-of-core traffic of this execution's window (solve sweeps on a
  /// spill-enabled factorization; all zero otherwise): step-acquired blocks
  /// that were already resident when the sweep reached them vs. blocks the
  /// sweep had to demand-read, and the payload bytes of those demand reads.
  /// A healthy prefetcher keeps prefetch_misses near zero.
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_misses = 0;
  std::uint64_t spill_fault_bytes = 0;

  /// Tasks that arrived at their worker by stealing (0 under Fifo or with a
  /// single worker — a worker cannot steal from itself).
  [[nodiscard]] std::uint64_t total_steals() const {
    std::uint64_t s = 0;
    for (const auto& w : worker_counters) s += w.stolen;
    return s;
  }

  /// Fraction of worker-time NOT spent inside tasks (scheduling overhead +
  /// dependency stalls) — the red-vs-green ratio of the paper's Fig. 13.
  [[nodiscard]] double overhead_fraction() const {
    const double capacity = wall_seconds * n_workers;
    return capacity > 0.0 ? 1.0 - useful_seconds / capacity : 0.0;
  }
};

/// The callable-free skeleton of a TaskGraph: per-task metadata plus the
/// edge structure. Value-copyable, so a factorization can hand its recorded
/// DAG to the scheduling simulator (src/dist) long after the graph — whose
/// task closures reference factorization internals — is gone.
struct DagRecord {
  std::vector<TaskMeta> meta;
  std::vector<std::vector<TaskId>> successors;
  /// Per-task scheduling priorities at execution time (empty when none were
  /// set). Replayers can hand these straight back to a scheduler.
  std::vector<double> priority;
  /// Per-task output payload in bytes — the data a consumer on another rank
  /// would have to receive over an edge from this task. Empty when the
  /// producer never recorded payloads (TaskGraph::set_out_bytes), mirroring
  /// the `priority` contract, so replayers branch on .empty() rather than
  /// charging phantom zero-byte messages as if they were measured.
  std::vector<double> out_bytes;

  [[nodiscard]] int n_tasks() const { return static_cast<int>(meta.size()); }
  [[nodiscard]] bool empty() const { return meta.empty(); }
};

/// bottom_level[i] = longest remaining occupancy (duration + per-task
/// overhead) path starting at task i — the classic list-scheduling priority.
/// `successors` may have fewer entries than `n_tasks` (missing = none);
/// empty `durations` means unit durations (the bottom level is then the
/// longest chain length in tasks). The one shared priority policy: both
/// TaskGraph::set_critical_path_priorities() and the dist scheduling
/// simulator rank tasks through this function. Throws std::invalid_argument
/// on out-of-range successor indices, std::logic_error on cycles.
std::vector<double> bottom_levels(int n_tasks,
                                  const std::vector<std::vector<TaskId>>& successors,
                                  const std::vector<double>& durations = {},
                                  double per_task_overhead = 0.0);

/// A one-shot dependency-counted task DAG (PaRSEC/StarPU substitute).
///
/// Tasks become ready when all their predecessors finish; ready tasks are
/// executed by a ThreadPool. Execution records per-task spans so that the
/// same DAG can afterwards be *replayed* on any number of simulated workers
/// by the scheduling simulator — this is how the strong-scaling figures are
/// produced on a single-core host.
class TaskGraph {
 public:
  /// Register a task; returns its id. `label` classifies the task for traces
  /// (e.g. "getrf", "trsm", "gemm"); `owner`/`level` tag the owning block
  /// row and tree level for ownership-aware replay (-1: untagged).
  TaskId add_task(std::function<void()> fn, std::string label = {},
                  int owner = -1, int level = -1);

  /// `after` may not start until `before` has finished.
  void add_dependency(TaskId before, TaskId after);

  /// Scheduling priority of one task (higher runs earlier once ready;
  /// default 0). Under a Fifo pool the shared queue is a priority queue;
  /// under WorkSteal the executor releases a task's ready successors lowest
  /// priority first, so the highest sits on top of the worker's LIFO deque.
  /// Classifies the policy as "custom" when no structural policy ran;
  /// called after set_critical_path_priorities it refines individual ranks
  /// without reclassifying (the factorization overlays its release tasks on
  /// top of the critical-path ranking this way — the record's priority
  /// vector always carries the actual values either way).
  void set_priority(TaskId id, double priority);

  /// Output payload of one task in bytes (what a cross-rank consumer of its
  /// result would receive). Purely descriptive — execution ignores it; it is
  /// exported by record() for the dist-layer simulator, which charges the
  /// alpha-beta CommModel on cross-rank DAG edges. Payloads (skeleton ranks)
  /// are only known once the numerics ran, so tasks capture them at FREE
  /// time: a task may call this on its OWN id from inside its body (each
  /// slot is pre-sized by add_task and written by exactly one task, so
  /// concurrent captures never touch the same element), or the owner may
  /// call it after execute().
  void set_out_bytes(TaskId id, double bytes);

  /// Set every task's priority to its bottom level — the length (in tasks)
  /// of the longest dependency chain hanging off it, i.e. the critical-path
  /// distance to the DAG's end. Computed by bottom_levels() on unit
  /// durations — the same function the dist scheduling simulator ranks by,
  /// so executor and simulator share one policy. Call after all edges are
  /// added.
  void set_critical_path_priorities();

  [[nodiscard]] const std::vector<double>& priorities() const {
    return priority_;
  }

  [[nodiscard]] int n_tasks() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const std::vector<std::vector<TaskId>>& successors() const {
    return successors_;
  }
  [[nodiscard]] const std::vector<int>& predecessor_counts() const {
    return n_predecessors_;
  }
  [[nodiscard]] const std::vector<TaskMeta>& meta() const { return meta_; }

  /// Copy out the callable-free structure (metadata + edges + priorities +
  /// payloads). `priority` is exported only when a policy actually assigned
  /// one (set_priority / set_critical_path_priorities); under the default
  /// "none" policy it is empty — per DagRecord's contract — so replayers
  /// branch on .empty() instead of misreading placeholder zeros. `out_bytes`
  /// follows the same contract: empty unless set_out_bytes recorded any.
  [[nodiscard]] DagRecord record() const {
    const bool assigned = std::string_view(priority_policy_) != "none";
    return {meta_, successors_,
            assigned ? priority_ : std::vector<double>{},
            out_bytes_set_.load(std::memory_order_acquire)
                ? out_bytes_
                : std::vector<double>{}};
  }

  /// Execute the whole DAG on `pool`'s workers — the pool is borrowed, not
  /// owned, so callers can run many graphs through one process-wide pool.
  /// Can only be called once. Throws std::logic_error (before running any
  /// task) when dependency cycles make part of the graph unexecutable (the
  /// message names the stuck tasks), or when called from a worker of `pool`
  /// itself: execute() blocks the calling thread, so a pool draining into
  /// itself can deadlock silently — the guard turns that into an error.
  ExecStats execute(ThreadPool& pool);

  /// Convenience overload: execute on a freshly spawned pool of `n_threads`
  /// workers that lives only for this call.
  ExecStats execute(int n_threads);

  /// Write the trace as CSV (task id, label, owner, level, worker, span).
  /// `#`-prefixed comment lines ahead of the header carry the scheduling
  /// policy and the per-worker executed/stolen counters.
  static bool write_trace_csv(const ExecStats& stats, const std::string& path);

 private:
  void throw_if_cyclic() const;

  std::vector<std::function<void()>> tasks_;
  std::vector<TaskMeta> meta_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<int> n_predecessors_;
  std::vector<double> priority_;
  std::vector<double> out_bytes_;
  const char* priority_policy_ = "none";  // "none" / "custom" / "critical-path"
  /// Atomic because tasks may record their own payload mid-execution; the
  /// release store pairs with record()'s acquire load (record() runs after
  /// execute() returns, so the values themselves are already synchronized —
  /// the atomic keeps the flag itself race-free).
  std::atomic<bool> out_bytes_set_{false};
  bool executed_ = false;
};

}  // namespace h2
