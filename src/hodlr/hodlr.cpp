#include "hodlr/hodlr.hpp"

#include <cassert>
#include <cmath>

#include "kernels/assembly.hpp"

namespace h2 {
namespace {

int heap_index(int level, int lid) { return (1 << level) - 1 + lid; }

}  // namespace

HodlrMatrix::HodlrMatrix(const ClusterTree& tree, const Kernel& kernel,
                         const Options& opt)
    : tree_(&tree), depth_(tree.depth()) {
  nodes_.resize((2 << depth_) - 1);

  // Bottom-up: leaf dense LUs first, then each internal node's Woodbury data
  // (the D^-1 W solves need the children factored).
  for (int lid = 0; lid < tree.n_clusters(depth_); ++lid) {
    Node& nd = nodes_[heap_index(depth_, lid)];
    const auto pts = tree.cluster_points(depth_, lid);
    nd.lu = kernel_block(kernel, pts, pts);
    getrf(nd.lu, nd.piv);
  }

  for (int level = depth_ - 1; level >= 0; --level) {
    for (int lid = 0; lid < tree.n_clusters(level); ++lid) {
      Node& nd = nodes_[heap_index(level, lid)];
      const auto p0 = tree.cluster_points(level + 1, 2 * lid);
      const auto p1 = tree.cluster_points(level + 1, 2 * lid + 1);
      const int n0 = static_cast<int>(p0.size());
      const int n1 = static_cast<int>(p1.size());
      const int n = n0 + n1;

      // Independent compression of the two sibling blocks.
      LowRank a01 = aca_compress(kernel, p0, p1, opt.tol, opt.max_rank);
      LowRank a10 = aca_compress(kernel, p1, p0, opt.tol, opt.max_rank);
      const int r0 = a01.rank(), r1 = a10.rank();
      nd.rank = std::max(r0, r1);
      max_rank_used_ = std::max(max_rank_used_, nd.rank);

      // Coupling = W Z^T with W = [U01 0; 0 U10], Z = [0 V10; V01 0].
      const int r = r0 + r1;
      nd.w = Matrix(n, r);
      nd.z = Matrix(n, r);
      if (r0 > 0) {
        copy_into(a01.u, nd.w.block(0, 0, n0, r0));
        copy_into(a01.v, nd.z.block(n0, 0, n1, r0));
      }
      if (r1 > 0) {
        copy_into(a10.u, nd.w.block(n0, r0, n1, r1));
        copy_into(a10.v, nd.z.block(0, r0, n0, r1));
      }

      // dw = D^-1 W through the already-factored children.
      nd.dw = nd.w;
      if (r > 0) {
        const int base = tree.node(level, lid).begin;
        (void)base;
        solve_node(level + 1, 2 * lid, nd.dw.block(0, 0, n0, r));
        solve_node(level + 1, 2 * lid + 1, nd.dw.block(n0, 0, n1, r));
        // Capacitance K = I + Z^T D^-1 W.
        nd.cap_lu = matmul(nd.z, nd.dw, Trans::Yes, Trans::No);
        add_identity(nd.cap_lu, 1.0);
        getrf(nd.cap_lu, nd.cap_piv);
      }
    }
  }
}

void HodlrMatrix::solve_node(int level, int lid, MatrixView b) const {
  const Node& nd = nodes_[heap_index(level, lid)];
  if (level == depth_) {
    getrs(nd.lu, nd.piv, b);
    return;
  }
  const int n0 = tree_->node(level + 1, 2 * lid).size();
  const int n1 = tree_->node(level + 1, 2 * lid + 1).size();
  const int nrhs = b.cols();
  // y = D^-1 b.
  solve_node(level + 1, 2 * lid, b.block(0, 0, n0, nrhs));
  solve_node(level + 1, 2 * lid + 1, b.block(n0, 0, n1, nrhs));
  if (nd.rank == 0) return;
  // x = y - D^-1 W K^-1 Z^T y  (Sherman-Morrison-Woodbury).
  Matrix t = matmul(nd.z, b, Trans::Yes, Trans::No);  // 2r x nrhs
  getrs(nd.cap_lu, nd.cap_piv, t);
  gemm(-1.0, nd.dw, Trans::No, t, Trans::No, 1.0, b);
}

void HodlrMatrix::solve(MatrixView b) const {
  assert(b.rows() == tree_->n_points());
  solve_node(0, 0, b);
}

void HodlrMatrix::round_storage_to_fp32() {
  for (Node& nd : nodes_) {
    round_through_f32(nd.lu);
    round_through_f32(nd.w);
    round_through_f32(nd.dw);
    round_through_f32(nd.z);
    round_through_f32(nd.cap_lu);
  }
}

double HodlrMatrix::logabsdet() const {
  // det A = prod_leaves det(LU) * prod_internal det(K).
  double acc = 0.0;
  for (int lid = 0; lid < tree_->n_clusters(depth_); ++lid) {
    const Node& nd = nodes_[heap_index(depth_, lid)];
    for (int i = 0; i < nd.lu.rows(); ++i)
      acc += std::log(std::fabs(nd.lu(i, i)));
  }
  for (int level = 0; level < depth_; ++level) {
    for (int lid = 0; lid < tree_->n_clusters(level); ++lid) {
      const Node& nd = nodes_[heap_index(level, lid)];
      for (int i = 0; i < nd.cap_lu.rows(); ++i)
        acc += std::log(std::fabs(nd.cap_lu(i, i)));
    }
  }
  return acc;
}

}  // namespace h2
