#pragma once

#include <memory>
#include <vector>

#include "geometry/cluster_tree.hpp"
#include "hmatrix/low_rank.hpp"
#include "kernels/kernel.hpp"
#include "linalg/linalg.hpp"

namespace h2 {

/// HODLR direct solver (Table I: independent bases, weak admissibility,
/// O(N log^2 N) factorization) — Ambikasaran & Darve's recursive
/// Sherman-Morrison-Woodbury scheme.
///
/// At every tree node the two off-diagonal sibling blocks are independent
/// low-rank factorizations (no shared or nested bases). Factorization
/// proceeds bottom-up: leaves take a dense LU; each internal node writes its
/// off-diagonal coupling as a low-rank perturbation of the block-diagonal
/// solve below it,
///     A = D (I + D^-1 W Z^T),
/// and LU-factorizes the small 2r x 2r capacitance matrix
/// K = I + Z^T D^-1 W. Solving descends the same telescope; log|det| is the
/// sum of the leaf LU and capacitance determinants.
///
/// Implements the structure family the paper contrasts against in Table I —
/// simpler than HSS/H^2 (no shared bases) but with the extra log factors and
/// 3-D rank growth of weak admissibility.
class HodlrMatrix {
 public:
  struct Options {
    double tol = 1e-8;  ///< ACA tolerance for the off-diagonal blocks
    int max_rank = -1;
  };

  /// Assemble and factorize in one pass (the structure exists only in
  /// factored form).
  HodlrMatrix(const ClusterTree& tree, const Kernel& kernel,
              const Options& opt);

  /// In-place solve A x = b, b is n x nrhs in tree ordering.
  void solve(MatrixView b) const;

  /// Round every stored factor entry through fp32: emulates fp32 factor
  /// storage for the mixed-precision facade — the perturbed telescope still
  /// solves, and fp64 refinement against the original operator recovers the
  /// accuracy (Solver under Precision::F32).
  void round_storage_to_fp32();

  /// log|det A| from the leaf LUs and capacitance LUs.
  [[nodiscard]] double logabsdet() const;

  /// Largest off-diagonal block rank encountered (Table I rank statistics).
  [[nodiscard]] int max_rank_used() const { return max_rank_used_; }

 private:
  struct Node {
    // Leaf: dense LU of the diagonal block.
    Matrix lu;
    std::vector<int> piv;
    // Internal: low-rank coupling [0 U1 V1^T; U2 V2^T 0] in Woodbury form.
    Matrix w;        ///< n_node x 2r: [U1 0; 0 U2], columns D^-1-applied into dw
    Matrix dw;       ///< D^-1 W (n_node x 2r)
    Matrix z;        ///< n_node x 2r: [0 V2; V1 0] (so coupling = W Z^T)
    Matrix cap_lu;   ///< 2r x 2r capacitance LU
    std::vector<int> cap_piv;
    int rank = 0;
  };

  /// Solve with the sub-factorization rooted at (level, lid) on rows
  /// [node.begin, node.end) of b.
  void solve_node(int level, int lid, MatrixView b) const;

  const ClusterTree* tree_;
  std::vector<Node> nodes_;  ///< heap order, as in ClusterTree
  int depth_ = 0;
  int max_rank_used_ = 0;
};

}  // namespace h2
