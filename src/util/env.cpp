#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>

namespace h2::env {

long get_int(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;  // strtol only writes errno on failure; clear stale values
  const long parsed = std::strtol(v, &end, 10);
  // ERANGE means strtol silently saturated to LONG_MIN/LONG_MAX — a
  // saturated value is not what the user configured, so treat overflow the
  // same as any other unparsable input and keep the fallback.
  if (errno == ERANGE) return fallback;
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double get_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  // Overflow saturates to +/-HUGE_VAL and underflow to ~0 with ERANGE set;
  // both silently misrepresent the configured value — keep the fallback.
  if (errno == ERANGE) return fallback;
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string get_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace h2::env
