#include "util/env.hpp"

#include <cstdlib>

namespace h2::env {

long get_int(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double get_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string get_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace h2::env
