#pragma once

#include <chrono>

namespace h2 {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Seconds since an arbitrary monotonic epoch; use for trace timestamps.
inline double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace h2
