#include "util/flops.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace h2::flops {
namespace {

// Thread-local counter registered into a global registry so total()/reset()
// can see every thread's contribution without per-add atomic traffic.
struct Slot {
  std::atomic<std::uint64_t> count{0};
};

std::mutex g_registry_mutex;
std::vector<Slot*>& registry() {
  static std::vector<Slot*> r;
  return r;
}

Slot& local_slot() {
  thread_local Slot* slot = [] {
    auto* s = new Slot();  // intentionally leaked: lives for process lifetime
    std::lock_guard<std::mutex> lk(g_registry_mutex);
    registry().push_back(s);
    return s;
  }();
  return *slot;
}

}  // namespace

void add(std::uint64_t n) noexcept {
  local_slot().count.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total() noexcept {
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  std::uint64_t sum = 0;
  for (const Slot* s : registry()) sum += s->count.load(std::memory_order_relaxed);
  return sum;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  for (Slot* s : registry()) s->count.store(0, std::memory_order_relaxed);
}

}  // namespace h2::flops
