#include "util/flops.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

namespace h2::flops {
namespace {

// Thread-local counter registered into a global registry so total()/reset()
// can see every thread's contribution without per-add atomic traffic. Slots
// are reclaimed when their thread exits (short-lived worker pools would
// otherwise leak one slot per worker, which the ASan CI job rejects): the
// exiting thread folds its count into `retired` and unregisters.
struct Slot {
  std::atomic<std::uint64_t> count{0};
};

// The registry and its mutex are immortal (never destroyed): worker-thread
// exit — and with it ~LocalSlot — can run during static destruction, after
// any non-leaked static here would already be gone.
std::mutex& registry_mutex() {
  static auto* m = new std::mutex();
  return *m;
}
std::vector<Slot*>& registry() {
  static auto* r = new std::vector<Slot*>();
  return *r;
}
std::uint64_t& retired() {  // guarded by registry_mutex()
  static auto* c = new std::uint64_t(0);
  return *c;
}

struct LocalSlot {
  Slot* slot = new Slot();
  LocalSlot() {
    std::lock_guard<std::mutex> lk(registry_mutex());
    registry().push_back(slot);
  }
  ~LocalSlot() {
    std::lock_guard<std::mutex> lk(registry_mutex());
    retired() += slot->count.load(std::memory_order_relaxed);
    auto& r = registry();
    r.erase(std::find(r.begin(), r.end(), slot));
    delete slot;
  }
};

Slot& local_slot() {
  thread_local LocalSlot ls;
  return *ls.slot;
}

}  // namespace

void add(std::uint64_t n) noexcept {
  local_slot().count.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total() noexcept {
  std::lock_guard<std::mutex> lk(registry_mutex());
  std::uint64_t sum = retired();
  for (const Slot* s : registry()) sum += s->count.load(std::memory_order_relaxed);
  return sum;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lk(registry_mutex());
  retired() = 0;
  for (Slot* s : registry()) s->count.store(0, std::memory_order_relaxed);
}

}  // namespace h2::flops
