#pragma once

#include <string>
#include <vector>

namespace h2 {

/// Accumulates rows and renders a GitHub-flavoured markdown table (the
/// format every bench harness uses to print paper-figure reproductions),
/// with optional CSV export for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells are pre-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Render as a markdown table.
  [[nodiscard]] std::string markdown() const;

  /// Render as CSV (header row + data rows).
  [[nodiscard]] std::string csv() const;

  /// Write CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }

  /// printf-style float formatting helpers for cells.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_sci(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace h2
