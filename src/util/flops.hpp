#pragma once

#include <cstdint>

/// Exact floating-point-operation accounting.
///
/// Every dense kernel in `src/linalg` reports its analytic flop count here.
/// This substitutes for the PAPI_FP_OPS hardware counters the paper uses in
/// Fig. 10: it counts the same quantity, exactly and deterministically.
///
/// Counters are thread-local and flushed into a process-wide total, so they
/// are cheap to update from parallel block-level code. A typical measurement:
///
///     h2::flops::reset();
///     run_factorization();
///     std::uint64_t n = h2::flops::total();
namespace h2::flops {

/// Add `n` floating-point operations to the calling thread's counter.
void add(std::uint64_t n) noexcept;

/// Sum of all threads' counters since the last reset().
std::uint64_t total() noexcept;

/// Zero all counters (all threads).
void reset() noexcept;

/// Analytic counts for the standard kernels (LAPACK working-note formulas).
constexpr std::uint64_t gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k) noexcept {
  return 2 * m * n * k;
}
constexpr std::uint64_t trsm_left(std::uint64_t m, std::uint64_t n) noexcept {
  return m * m * n;  // triangular solve with m x m triangle, n right-hand sides
}
constexpr std::uint64_t trsm_right(std::uint64_t m, std::uint64_t n) noexcept {
  return n * n * m;
}
constexpr std::uint64_t getrf(std::uint64_t m, std::uint64_t n) noexcept {
  const std::uint64_t k = m < n ? m : n;
  return 2 * m * n * k / 3 + k * k;  // ~ 2/3 n^3 for square
}
constexpr std::uint64_t potrf(std::uint64_t n) noexcept { return n * n * n / 3; }
constexpr std::uint64_t geqrf(std::uint64_t m, std::uint64_t n) noexcept {
  const std::uint64_t k = m < n ? m : n;
  return 2 * m * n * k;  // Householder QR, counts reflector formation+apply
}
constexpr std::uint64_t kernel_eval(std::uint64_t n_entries, std::uint64_t per_entry) noexcept {
  return n_entries * per_entry;
}

}  // namespace h2::flops
