#pragma once

#include <string>

/// Environment-variable configuration helpers used by benches and examples
/// (e.g. H2_BENCH_SCALE to enlarge problem sizes on bigger machines).
namespace h2::env {

/// Integer env var, or `fallback` when unset, unparsable, or out of `long`
/// range (strtol's silent ERANGE saturation to LONG_MIN/LONG_MAX counts as
/// unparsable — a saturated value is not what was configured).
long get_int(const char* name, long fallback);

/// Floating-point env var, or `fallback` when unset, unparsable, or out of
/// range (ERANGE overflow to +/-HUGE_VAL or underflow toward 0).
double get_double(const char* name, double fallback);

/// String env var, or `fallback` when unset.
std::string get_string(const char* name, const std::string& fallback);

}  // namespace h2::env
