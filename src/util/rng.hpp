#pragma once

#include <cstdint>

namespace h2 {

/// Small, fast, reproducible PRNG (xoshiro256**). Deterministic across
/// platforms given the same seed, unlike std::mt19937 + distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (caches the paired deviate).
  double normal();

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

inline double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box-Muller on two uniforms in (0,1].
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
  const double theta = 6.283185307179586476925286766559 * u2;
  cached_ = r * __builtin_sin(theta);
  have_cached_ = true;
  return r * __builtin_cos(theta);
}

}  // namespace h2
