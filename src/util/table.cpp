#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace h2 {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << csv();
  return static_cast<bool>(f);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace h2
